//! Offline stand-in for `serde` (see `shims/bytes` for why).
//!
//! Re-exports the no-op derives from the `serde_derive` shim plus empty
//! marker traits, which is all the workspace needs: `fedra` annotates types
//! with `#[derive(Serialize, Deserialize)]` for downstream consumers but
//! performs all of its own serialization through the wire codec.

#![forbid(unsafe_code)]

pub use serde_derive::{Deserialize, Serialize};

/// Marker trait standing in for `serde::Serialize`.
pub trait Serialize {}

/// Marker trait standing in for `serde::Deserialize`.
pub trait Deserialize<'de> {}
