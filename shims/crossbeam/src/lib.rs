//! Offline stand-in for the `crossbeam` crate (see `shims/bytes` for why).
//!
//! Only `crossbeam::channel` is provided: MPMC `bounded`/`unbounded`
//! channels whose `Sender`/`Receiver` are `Clone + Send + Sync`, built on a
//! mutex + condvar queue. Disconnection semantics match crossbeam: `send`
//! fails once every receiver is gone, `recv` fails once the queue is empty
//! and every sender is gone.

#![forbid(unsafe_code)]

pub mod channel {
    use std::collections::VecDeque;
    use std::sync::{Arc, Condvar, Mutex};
    use std::time::{Duration, Instant};

    struct State<T> {
        queue: VecDeque<T>,
        senders: usize,
        receivers: usize,
    }

    struct Chan<T> {
        state: Mutex<State<T>>,
        not_empty: Condvar,
        not_full: Condvar,
        capacity: Option<usize>,
    }

    /// Error returned by [`Sender::send`] when all receivers are gone;
    /// carries the unsent value.
    #[derive(Debug, PartialEq, Eq)]
    pub struct SendError<T>(pub T);

    impl<T> std::fmt::Display for SendError<T> {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            write!(f, "sending on a disconnected channel")
        }
    }

    /// Error returned by [`Receiver::recv`] when the channel is empty and
    /// all senders are gone.
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub struct RecvError;

    impl std::fmt::Display for RecvError {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            write!(f, "receiving on an empty and disconnected channel")
        }
    }

    impl std::error::Error for RecvError {}

    /// Error returned by [`Receiver::try_recv`].
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub enum TryRecvError {
        /// The channel is currently empty (senders still connected).
        Empty,
        /// The channel is empty and all senders are gone.
        Disconnected,
    }

    impl std::fmt::Display for TryRecvError {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            match self {
                TryRecvError::Empty => write!(f, "receiving on an empty channel"),
                TryRecvError::Disconnected => {
                    write!(f, "receiving on an empty and disconnected channel")
                }
            }
        }
    }

    impl std::error::Error for TryRecvError {}

    /// Error returned by [`Receiver::recv_timeout`] /
    /// [`Receiver::recv_deadline`].
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub enum RecvTimeoutError {
        /// No value arrived before the timeout elapsed.
        Timeout,
        /// The channel is empty and all senders are gone.
        Disconnected,
    }

    impl std::fmt::Display for RecvTimeoutError {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            match self {
                RecvTimeoutError::Timeout => write!(f, "timed out waiting on channel"),
                RecvTimeoutError::Disconnected => {
                    write!(f, "receiving on an empty and disconnected channel")
                }
            }
        }
    }

    impl std::error::Error for RecvTimeoutError {}

    /// The sending half of a channel.
    pub struct Sender<T> {
        chan: Arc<Chan<T>>,
    }

    /// The receiving half of a channel.
    pub struct Receiver<T> {
        chan: Arc<Chan<T>>,
    }

    impl<T> Sender<T> {
        /// Sends a value, blocking while a bounded channel is full.
        pub fn send(&self, value: T) -> Result<(), SendError<T>> {
            let mut state = self.chan.state.lock().unwrap();
            loop {
                if state.receivers == 0 {
                    return Err(SendError(value));
                }
                let full = self
                    .chan
                    .capacity
                    .is_some_and(|cap| state.queue.len() >= cap);
                if !full {
                    state.queue.push_back(value);
                    drop(state);
                    self.chan.not_empty.notify_one();
                    return Ok(());
                }
                state = self.chan.not_full.wait(state).unwrap();
            }
        }
    }

    impl<T> Receiver<T> {
        /// Receives a value, blocking while the channel is empty.
        pub fn recv(&self) -> Result<T, RecvError> {
            let mut state = self.chan.state.lock().unwrap();
            loop {
                if let Some(value) = state.queue.pop_front() {
                    drop(state);
                    self.chan.not_full.notify_one();
                    return Ok(value);
                }
                if state.senders == 0 {
                    return Err(RecvError);
                }
                state = self.chan.not_empty.wait(state).unwrap();
            }
        }

        /// Receives a value if one is already queued, without blocking.
        pub fn try_recv(&self) -> Result<T, TryRecvError> {
            let mut state = self.chan.state.lock().unwrap();
            if let Some(value) = state.queue.pop_front() {
                drop(state);
                self.chan.not_full.notify_one();
                return Ok(value);
            }
            if state.senders == 0 {
                Err(TryRecvError::Disconnected)
            } else {
                Err(TryRecvError::Empty)
            }
        }

        /// Receives a value, blocking at most until `deadline`.
        ///
        /// A queued value is returned even when the deadline is already in
        /// the past, matching crossbeam: the queue is checked before the
        /// clock.
        pub fn recv_deadline(&self, deadline: Instant) -> Result<T, RecvTimeoutError> {
            let mut state = self.chan.state.lock().unwrap();
            loop {
                if let Some(value) = state.queue.pop_front() {
                    drop(state);
                    self.chan.not_full.notify_one();
                    return Ok(value);
                }
                if state.senders == 0 {
                    return Err(RecvTimeoutError::Disconnected);
                }
                let now = Instant::now();
                if now >= deadline {
                    return Err(RecvTimeoutError::Timeout);
                }
                let (next, _timed_out) = self
                    .chan
                    .not_empty
                    .wait_timeout(state, deadline - now)
                    .unwrap();
                state = next;
            }
        }

        /// Receives a value, blocking at most `timeout`.
        pub fn recv_timeout(&self, timeout: Duration) -> Result<T, RecvTimeoutError> {
            match Instant::now().checked_add(timeout) {
                Some(deadline) => self.recv_deadline(deadline),
                // An unrepresentable deadline means "effectively forever".
                None => self.recv().map_err(|_| RecvTimeoutError::Disconnected),
            }
        }

        /// A blocking iterator over received values; ends on disconnect.
        pub fn iter(&self) -> Iter<'_, T> {
            Iter { receiver: self }
        }
    }

    impl<T> Clone for Sender<T> {
        fn clone(&self) -> Self {
            self.chan.state.lock().unwrap().senders += 1;
            Sender {
                chan: Arc::clone(&self.chan),
            }
        }
    }

    impl<T> Clone for Receiver<T> {
        fn clone(&self) -> Self {
            self.chan.state.lock().unwrap().receivers += 1;
            Receiver {
                chan: Arc::clone(&self.chan),
            }
        }
    }

    impl<T> Drop for Sender<T> {
        fn drop(&mut self) {
            let mut state = self.chan.state.lock().unwrap();
            state.senders -= 1;
            if state.senders == 0 {
                drop(state);
                // Wake receivers so they can observe the disconnect.
                self.chan.not_empty.notify_all();
            }
        }
    }

    impl<T> Drop for Receiver<T> {
        fn drop(&mut self) {
            let mut state = self.chan.state.lock().unwrap();
            state.receivers -= 1;
            if state.receivers == 0 {
                drop(state);
                // Wake senders blocked on a full bounded channel.
                self.chan.not_full.notify_all();
            }
        }
    }

    /// Blocking iterator returned by [`Receiver::iter`].
    pub struct Iter<'a, T> {
        receiver: &'a Receiver<T>,
    }

    impl<T> Iterator for Iter<'_, T> {
        type Item = T;
        fn next(&mut self) -> Option<T> {
            self.receiver.recv().ok()
        }
    }

    /// Owning blocking iterator (`for value in receiver`).
    pub struct IntoIter<T> {
        receiver: Receiver<T>,
    }

    impl<T> Iterator for IntoIter<T> {
        type Item = T;
        fn next(&mut self) -> Option<T> {
            self.receiver.recv().ok()
        }
    }

    impl<T> IntoIterator for Receiver<T> {
        type Item = T;
        type IntoIter = IntoIter<T>;
        fn into_iter(self) -> IntoIter<T> {
            IntoIter { receiver: self }
        }
    }

    impl<'a, T> IntoIterator for &'a Receiver<T> {
        type Item = T;
        type IntoIter = Iter<'a, T>;
        fn into_iter(self) -> Iter<'a, T> {
            self.iter()
        }
    }

    fn with_capacity<T>(capacity: Option<usize>) -> (Sender<T>, Receiver<T>) {
        let chan = Arc::new(Chan {
            state: Mutex::new(State {
                queue: VecDeque::new(),
                senders: 1,
                receivers: 1,
            }),
            not_empty: Condvar::new(),
            not_full: Condvar::new(),
            capacity,
        });
        (
            Sender {
                chan: Arc::clone(&chan),
            },
            Receiver { chan },
        )
    }

    /// Creates a channel holding at most `cap` in-flight values.
    pub fn bounded<T>(cap: usize) -> (Sender<T>, Receiver<T>) {
        with_capacity(Some(cap))
    }

    /// Creates a channel with no capacity bound.
    pub fn unbounded<T>() -> (Sender<T>, Receiver<T>) {
        with_capacity(None)
    }

    #[cfg(test)]
    mod tests {
        use super::*;

        #[test]
        fn values_arrive_in_order() {
            let (tx, rx) = unbounded();
            for i in 0..10 {
                tx.send(i).unwrap();
            }
            drop(tx);
            let got: Vec<i32> = rx.into_iter().collect();
            assert_eq!(got, (0..10).collect::<Vec<_>>());
        }

        #[test]
        fn recv_fails_after_all_senders_drop() {
            let (tx, rx) = unbounded::<u8>();
            drop(tx);
            assert_eq!(rx.recv(), Err(RecvError));
        }

        #[test]
        fn send_fails_after_all_receivers_drop() {
            let (tx, rx) = bounded::<u8>(1);
            drop(rx);
            assert_eq!(tx.send(9), Err(SendError(9)));
        }

        #[test]
        fn try_recv_never_blocks() {
            let (tx, rx) = unbounded();
            assert_eq!(rx.try_recv(), Err(TryRecvError::Empty));
            tx.send(7).unwrap();
            assert_eq!(rx.try_recv(), Ok(7));
            drop(tx);
            assert_eq!(rx.try_recv(), Err(TryRecvError::Disconnected));
        }

        #[test]
        fn recv_timeout_times_out_then_succeeds() {
            let (tx, rx) = unbounded();
            assert_eq!(
                rx.recv_timeout(Duration::from_millis(10)),
                Err(RecvTimeoutError::Timeout)
            );
            tx.send(42).unwrap();
            assert_eq!(rx.recv_timeout(Duration::from_millis(10)), Ok(42));
            drop(tx);
            assert_eq!(
                rx.recv_timeout(Duration::from_millis(10)),
                Err(RecvTimeoutError::Disconnected)
            );
        }

        #[test]
        fn recv_deadline_returns_queued_value_even_when_expired() {
            let (tx, rx) = unbounded();
            tx.send(5).unwrap();
            let past = Instant::now() - Duration::from_secs(1);
            assert_eq!(rx.recv_deadline(past), Ok(5));
            assert_eq!(rx.recv_deadline(past), Err(RecvTimeoutError::Timeout));
        }

        #[test]
        fn recv_timeout_wakes_on_cross_thread_send() {
            let (tx, rx) = bounded(1);
            let handle = std::thread::spawn(move || {
                std::thread::sleep(Duration::from_millis(20));
                tx.send(1).unwrap();
            });
            assert_eq!(rx.recv_timeout(Duration::from_secs(5)), Ok(1));
            handle.join().unwrap();
        }

        #[test]
        fn cross_thread_round_trip() {
            let (tx, rx) = bounded(1);
            let handle = std::thread::spawn(move || {
                for i in 0..100 {
                    tx.send(i).unwrap();
                }
            });
            let mut sum = 0;
            for v in &rx {
                sum += v;
            }
            handle.join().unwrap();
            assert_eq!(sum, (0..100).sum::<i32>());
        }
    }
}
