//! Offline stand-in for the `rand` crate (see `shims/bytes` for why).
//!
//! Provides the 0.9-series API surface `fedra` uses — `StdRng` (seeded via
//! `SeedableRng::seed_from_u64`), the `Rng` extension methods
//! (`random`, `random_range`, `random_bool`), and the slice helpers
//! `SliceRandom::shuffle` / `IndexedRandom::choose` — backed by a
//! xoshiro256++ generator. Statistical quality is more than sufficient for
//! sampling estimators and test workloads; this is not a cryptographic RNG.

#![forbid(unsafe_code)]

use std::ops::{Range, RangeInclusive};

/// Low-level uniform bit source.
pub trait RngCore {
    /// The next 64 uniformly random bits.
    fn next_u64(&mut self) -> u64;

    /// The next 32 uniformly random bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// Types producible directly from an RNG (stand-in for sampling from
/// `StandardUniform`).
pub trait Standard: Sized {
    /// Draws one value.
    fn draw<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for bool {
    fn draw<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // Use a high bit: low bits of some generators are weaker.
        rng.next_u64() >> 63 == 1
    }
}

impl Standard for f64 {
    fn draw<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 uniform mantissa bits in [0, 1).
        (rng.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }
}

impl Standard for f32 {
    fn draw<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u32() >> 8) as f32 / (1u32 << 24) as f32
    }
}

macro_rules! standard_int {
    ($($t:ty),+) => {$(
        impl Standard for $t {
            fn draw<R: RngCore + ?Sized>(rng: &mut R) -> Self {
                rng.next_u64() as $t
            }
        }
    )+};
}
standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// Ranges that can be sampled uniformly.
pub trait SampleRange<T> {
    /// Draws one value from the range.
    ///
    /// # Panics
    /// Panics if the range is empty.
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

impl SampleRange<f64> for Range<f64> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "cannot sample empty range");
        let unit = f64::draw(rng);
        self.start + unit * (self.end - self.start)
    }
}

impl SampleRange<f32> for Range<f32> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> f32 {
        assert!(self.start < self.end, "cannot sample empty range");
        let unit = f32::draw(rng);
        self.start + unit * (self.end - self.start)
    }
}

macro_rules! sample_int_range {
    ($($t:ty),+) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let lo = self.start as i128;
                let width = (self.end as i128 - lo) as u128;
                let r = rng.next_u64() as u128 % width;
                (lo + r as i128) as $t
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "cannot sample empty range");
                let lo = start as i128;
                let width = (end as i128 - lo) as u128 + 1;
                let r = rng.next_u64() as u128 % width;
                (lo + r as i128) as $t
            }
        }
    )+};
}
sample_int_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// High-level convenience methods, available on every [`RngCore`].
pub trait Rng: RngCore {
    /// Draws a value of type `T` (uniform bits / unit interval).
    fn random<T: Standard>(&mut self) -> T {
        T::draw(self)
    }

    /// Draws uniformly from a range.
    fn random_range<T, S: SampleRange<T>>(&mut self, range: S) -> T {
        range.sample_from(self)
    }

    /// Draws `true` with probability `p`.
    fn random_bool(&mut self, p: f64) -> bool {
        f64::draw(self) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Deterministically seedable generators.
pub trait SeedableRng: Sized {
    /// Builds a generator from a 64-bit seed (SplitMix64-expanded).
    fn seed_from_u64(seed: u64) -> Self;
}

pub mod rngs {
    //! Concrete generators.

    use super::{RngCore, SeedableRng};

    /// The workspace's standard generator: xoshiro256++ seeded via
    /// SplitMix64. Deterministic for a given seed across platforms.
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct StdRng {
        s: [u64; 4],
    }

    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            let mut state = seed;
            let mut s = [0u64; 4];
            for slot in &mut s {
                *slot = splitmix64(&mut state);
            }
            // All-zero state would be a fixed point; SplitMix64 cannot
            // produce four zeros from any seed, but guard anyway.
            if s == [0; 4] {
                s[0] = 0x9E37_79B9_7F4A_7C15;
            }
            StdRng { s }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            // xoshiro256++ by Blackman & Vigna (public domain reference).
            let result = self.s[0]
                .wrapping_add(self.s[3])
                .rotate_left(23)
                .wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }

    /// Alias: the small generator is the same engine here.
    pub type SmallRng = StdRng;
}

pub mod seq {
    //! Slice sampling helpers.

    use super::Rng;

    /// In-place random reordering.
    pub trait SliceRandom {
        /// Fisher–Yates shuffle.
        fn shuffle<R: Rng + ?Sized>(&mut self, rng: &mut R);
    }

    impl<T> SliceRandom for [T] {
        fn shuffle<R: Rng + ?Sized>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = rng.random_range(0..=i);
                self.swap(i, j);
            }
        }
    }

    /// Uniform element selection.
    pub trait IndexedRandom {
        /// The element type.
        type Output;
        /// A uniformly random element, or `None` if empty.
        fn choose<R: Rng + ?Sized>(&self, rng: &mut R) -> Option<&Self::Output>;
    }

    impl<T> IndexedRandom for [T] {
        type Output = T;
        fn choose<R: Rng + ?Sized>(&self, rng: &mut R) -> Option<&T> {
            if self.is_empty() {
                None
            } else {
                Some(&self[rng.random_range(0..self.len())])
            }
        }
    }
}

pub mod prelude {
    //! Common imports.
    pub use super::rngs::{SmallRng, StdRng};
    pub use super::seq::{IndexedRandom, SliceRandom};
    pub use super::{Rng, RngCore, SeedableRng};
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::seq::{IndexedRandom, SliceRandom};
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_for_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.random::<u64>(), b.random::<u64>());
        }
        let mut c = StdRng::seed_from_u64(43);
        assert_ne!(a.random::<u64>(), c.random::<u64>());
    }

    #[test]
    fn ranges_respect_bounds() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..1000 {
            let f = rng.random_range(2.0f64..3.0);
            assert!((2.0..3.0).contains(&f));
            let u = rng.random_range(10usize..20);
            assert!((10..20).contains(&u));
            let i = rng.random_range(-5i64..5);
            assert!((-5..5).contains(&i));
            let inc = rng.random_range(0..=4u32);
            assert!(inc <= 4);
        }
    }

    #[test]
    fn unit_f64_is_roughly_uniform() {
        let mut rng = StdRng::seed_from_u64(11);
        let n = 10_000;
        let mean: f64 = (0..n).map(|_| rng.random::<f64>()).sum::<f64>() / n as f64;
        assert!((mean - 0.5).abs() < 0.02, "mean {mean}");
    }

    #[test]
    fn shuffle_permutes_and_choose_selects() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut v: Vec<u32> = (0..50).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
        assert_ne!(
            v, sorted,
            "shuffle left the slice sorted (astronomically unlikely)"
        );
        assert!(v.choose(&mut rng).is_some());
        let empty: [u32; 0] = [];
        assert!(empty.choose(&mut rng).is_none());
    }
}
