//! Offline stand-in for the `bytes` crate.
//!
//! The build environment has no network access to a cargo registry, so the
//! workspace vendors minimal API-compatible implementations of its external
//! dependencies under `shims/`. This crate covers the subset of `bytes`
//! that `fedra` uses: `Bytes` (cheaply cloneable, sliceable, immutable
//! buffer), `BytesMut` (growable write buffer) and the little-endian
//! accessor methods of the `Buf`/`BufMut` traits.

#![forbid(unsafe_code)]

use std::ops::Deref;
use std::sync::Arc;

/// Read access to a byte cursor.
pub trait Buf {
    /// Bytes left to read.
    fn remaining(&self) -> usize;
    /// The unread bytes.
    fn chunk(&self) -> &[u8];
    /// Advances the cursor by `cnt` bytes.
    fn advance(&mut self, cnt: usize);

    /// Reads one byte.
    fn get_u8(&mut self) -> u8 {
        let v = self.chunk()[0];
        self.advance(1);
        v
    }
    /// Reads a little-endian `u32`.
    fn get_u32_le(&mut self) -> u32 {
        let mut raw = [0u8; 4];
        self.copy_to_slice(&mut raw);
        u32::from_le_bytes(raw)
    }
    /// Reads a little-endian `u64`.
    fn get_u64_le(&mut self) -> u64 {
        let mut raw = [0u8; 8];
        self.copy_to_slice(&mut raw);
        u64::from_le_bytes(raw)
    }
    /// Reads a little-endian `f64`.
    fn get_f64_le(&mut self) -> f64 {
        f64::from_bits(self.get_u64_le())
    }
    /// Copies `dst.len()` bytes out, advancing the cursor.
    fn copy_to_slice(&mut self, dst: &mut [u8]) {
        let n = dst.len();
        dst.copy_from_slice(&self.chunk()[..n]);
        self.advance(n);
    }
}

/// Write access to a growable byte buffer.
pub trait BufMut {
    /// Appends raw bytes.
    fn put_slice(&mut self, src: &[u8]);

    /// Appends one byte.
    fn put_u8(&mut self, v: u8) {
        self.put_slice(&[v]);
    }
    /// Appends a little-endian `u32`.
    fn put_u32_le(&mut self, v: u32) {
        self.put_slice(&v.to_le_bytes());
    }
    /// Appends a little-endian `u64`.
    fn put_u64_le(&mut self, v: u64) {
        self.put_slice(&v.to_le_bytes());
    }
    /// Appends a little-endian `f64`.
    fn put_f64_le(&mut self, v: f64) {
        self.put_u64_le(v.to_bits());
    }
}

/// A cheaply cloneable immutable byte buffer (a view into shared storage).
#[derive(Clone, Default)]
pub struct Bytes {
    data: Arc<Vec<u8>>,
    start: usize,
    end: usize,
}

impl Bytes {
    /// An empty buffer.
    pub fn new() -> Self {
        Self::default()
    }

    /// Length of the view.
    pub fn len(&self) -> usize {
        self.end - self.start
    }

    /// Whether the view is empty.
    pub fn is_empty(&self) -> bool {
        self.start == self.end
    }

    /// Returns a sub-view; `range` is relative to this view.
    ///
    /// # Panics
    /// Panics if the range is out of bounds.
    pub fn slice(&self, range: std::ops::Range<usize>) -> Bytes {
        assert!(
            range.start <= range.end && range.end <= self.len(),
            "slice out of bounds"
        );
        Bytes {
            data: Arc::clone(&self.data),
            start: self.start + range.start,
            end: self.start + range.end,
        }
    }

    /// Splits off and returns the first `at` bytes, keeping the rest.
    pub fn split_to(&mut self, at: usize) -> Bytes {
        assert!(at <= self.len(), "split_to out of bounds");
        let head = Bytes {
            data: Arc::clone(&self.data),
            start: self.start,
            end: self.start + at,
        };
        self.start += at;
        head
    }

    /// Copies the view into a fresh `Vec<u8>`.
    pub fn to_vec(&self) -> Vec<u8> {
        self.as_ref().to_vec()
    }
}

impl Deref for Bytes {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        &self.data[self.start..self.end]
    }
}

impl AsRef<[u8]> for Bytes {
    fn as_ref(&self) -> &[u8] {
        self
    }
}

impl From<Vec<u8>> for Bytes {
    fn from(data: Vec<u8>) -> Self {
        let end = data.len();
        Bytes {
            data: Arc::new(data),
            start: 0,
            end,
        }
    }
}

impl From<&[u8]> for Bytes {
    fn from(data: &[u8]) -> Self {
        Bytes::from(data.to_vec())
    }
}

impl From<&'static str> for Bytes {
    fn from(data: &'static str) -> Self {
        Bytes::from(data.as_bytes().to_vec())
    }
}

impl PartialEq for Bytes {
    fn eq(&self, other: &Self) -> bool {
        self.as_ref() == other.as_ref()
    }
}

impl Eq for Bytes {}

impl std::fmt::Debug for Bytes {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "b\"")?;
        for &b in self.as_ref() {
            write!(f, "\\x{b:02x}")?;
        }
        write!(f, "\"")
    }
}

impl Buf for Bytes {
    fn remaining(&self) -> usize {
        self.len()
    }
    fn chunk(&self) -> &[u8] {
        self
    }
    fn advance(&mut self, cnt: usize) {
        assert!(cnt <= self.len(), "advance out of bounds");
        self.start += cnt;
    }
}

/// A growable write buffer that freezes into [`Bytes`].
#[derive(Clone, Default, Debug, PartialEq, Eq)]
pub struct BytesMut {
    data: Vec<u8>,
}

impl BytesMut {
    /// An empty buffer.
    pub fn new() -> Self {
        Self::default()
    }

    /// An empty buffer with `capacity` bytes pre-reserved.
    pub fn with_capacity(capacity: usize) -> Self {
        BytesMut {
            data: Vec::with_capacity(capacity),
        }
    }

    /// Written length.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// Whether nothing has been written.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Current capacity.
    pub fn capacity(&self) -> usize {
        self.data.capacity()
    }

    /// Reserves space for `additional` more bytes.
    pub fn reserve(&mut self, additional: usize) {
        self.data.reserve(additional);
    }

    /// Appends raw bytes.
    pub fn extend_from_slice(&mut self, src: &[u8]) {
        self.data.extend_from_slice(src);
    }

    /// Clears the buffer, keeping its capacity.
    pub fn clear(&mut self) {
        self.data.clear();
    }

    /// Converts into an immutable [`Bytes`].
    pub fn freeze(self) -> Bytes {
        Bytes::from(self.data)
    }
}

impl Deref for BytesMut {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        &self.data
    }
}

impl AsRef<[u8]> for BytesMut {
    fn as_ref(&self) -> &[u8] {
        &self.data
    }
}

impl BufMut for BytesMut {
    fn put_slice(&mut self, src: &[u8]) {
        self.data.extend_from_slice(src);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trip_scalars() {
        let mut buf = BytesMut::with_capacity(32);
        buf.put_u8(7);
        buf.put_u32_le(0xDEAD_BEEF);
        buf.put_u64_le(u64::MAX - 1);
        buf.put_f64_le(1.5);
        let mut b = buf.freeze();
        assert_eq!(b.remaining(), 1 + 4 + 8 + 8);
        assert_eq!(b.get_u8(), 7);
        assert_eq!(b.get_u32_le(), 0xDEAD_BEEF);
        assert_eq!(b.get_u64_le(), u64::MAX - 1);
        assert_eq!(b.get_f64_le(), 1.5);
        assert!(b.is_empty());
    }

    #[test]
    fn slice_and_split() {
        let b = Bytes::from(vec![0, 1, 2, 3, 4, 5]);
        let s = b.slice(1..4);
        assert_eq!(s.as_ref(), &[1, 2, 3]);
        let mut rest = s.clone();
        let head = rest.split_to(2);
        assert_eq!(head.as_ref(), &[1, 2]);
        assert_eq!(rest.as_ref(), &[3]);
        assert_eq!(s.to_vec(), vec![1, 2, 3]);
    }
}
