//! Offline stand-in for `proptest` (see `shims/bytes` for why).
//!
//! A deterministic random-testing harness covering the surface `fedra`'s
//! property tests use: the `proptest!`/`prop_assert!`/`prop_oneof!` macros,
//! `Strategy` with `prop_map`, `any::<T>()`, `Just`, numeric-range and
//! tuple strategies, and `collection::vec`. Unlike real proptest there is
//! no shrinking: a failing case reports its inputs (via the assertion
//! message) and the case number, which is reproducible because every case
//! derives its RNG seed from the case index alone.

#![forbid(unsafe_code)]

pub mod test_runner {
    //! Execution config, case RNG and failure type.

    use rand::rngs::StdRng;
    use rand::SeedableRng;

    /// The per-case random source.
    pub type TestRng = StdRng;

    /// Harness configuration.
    #[derive(Debug, Clone, Copy)]
    pub struct Config {
        /// Number of random cases per property.
        pub cases: u32,
    }

    impl Config {
        /// A config running `cases` random cases.
        pub fn with_cases(cases: u32) -> Self {
            Config { cases }
        }
    }

    impl Default for Config {
        fn default() -> Self {
            Config { cases: 64 }
        }
    }

    /// A failed property case.
    #[derive(Debug, Clone)]
    pub struct TestCaseError(String);

    impl TestCaseError {
        /// Builds a failure with the given message.
        pub fn fail(message: String) -> Self {
            TestCaseError(message)
        }
    }

    impl std::fmt::Display for TestCaseError {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            f.write_str(&self.0)
        }
    }

    /// Deterministic RNG for case number `case`.
    pub fn rng_for_case(case: u64) -> TestRng {
        StdRng::seed_from_u64(0x5EED_0000_0000_0000 ^ case.wrapping_mul(0x9E37_79B9_7F4A_7C15))
    }
}

pub mod strategy {
    //! Value-generation strategies.

    use super::test_runner::TestRng;
    use rand::{Rng, RngCore};
    use std::marker::PhantomData;
    use std::ops::Range;

    /// A recipe for generating values of `Self::Value`.
    pub trait Strategy {
        /// The generated type.
        type Value;

        /// Generates one value.
        fn gen_value(&self, rng: &mut TestRng) -> Self::Value;

        /// Maps generated values through `f`.
        fn prop_map<U, F: Fn(Self::Value) -> U>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
        {
            Map { inner: self, f }
        }

        /// Type-erases the strategy (needed by `prop_oneof!`).
        fn boxed(self) -> BoxedStrategy<Self::Value>
        where
            Self: Sized + 'static,
        {
            BoxedStrategy(Box::new(self))
        }
    }

    /// See [`Strategy::prop_map`].
    pub struct Map<S, F> {
        inner: S,
        f: F,
    }

    impl<S: Strategy, U, F: Fn(S::Value) -> U> Strategy for Map<S, F> {
        type Value = U;
        fn gen_value(&self, rng: &mut TestRng) -> U {
            (self.f)(self.inner.gen_value(rng))
        }
    }

    /// A type-erased strategy.
    pub struct BoxedStrategy<V>(Box<dyn Strategy<Value = V>>);

    impl<V> Strategy for BoxedStrategy<V> {
        type Value = V;
        fn gen_value(&self, rng: &mut TestRng) -> V {
            self.0.gen_value(rng)
        }
    }

    /// Uniform choice among alternatives (the `prop_oneof!` backend).
    pub struct Union<V> {
        options: Vec<BoxedStrategy<V>>,
    }

    impl<V> Union<V> {
        /// Builds a union; panics on an empty option list.
        pub fn new(options: Vec<BoxedStrategy<V>>) -> Self {
            assert!(!options.is_empty(), "prop_oneof! needs at least one option");
            Union { options }
        }
    }

    impl<V> Strategy for Union<V> {
        type Value = V;
        fn gen_value(&self, rng: &mut TestRng) -> V {
            let idx = rng.random_range(0..self.options.len());
            self.options[idx].gen_value(rng)
        }
    }

    /// Always generates a clone of the given value.
    #[derive(Debug, Clone)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;
        fn gen_value(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    /// Types with a canonical "any value" strategy.
    pub trait Arbitrary: Sized {
        /// Draws an unconstrained value.
        fn arbitrary(rng: &mut TestRng) -> Self;
    }

    impl Arbitrary for bool {
        fn arbitrary(rng: &mut TestRng) -> Self {
            rng.random()
        }
    }

    impl Arbitrary for f64 {
        fn arbitrary(rng: &mut TestRng) -> Self {
            // Raw bit patterns: exercises NaN, infinities and subnormals,
            // which is exactly what wire-codec fuzzing wants.
            f64::from_bits(rng.next_u64())
        }
    }

    macro_rules! arbitrary_int {
        ($($t:ty),+) => {$(
            impl Arbitrary for $t {
                fn arbitrary(rng: &mut TestRng) -> Self {
                    rng.next_u64() as $t
                }
            }
        )+};
    }
    arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    /// See [`super::any`].
    pub struct Any<T>(PhantomData<T>);

    impl<T> Default for Any<T> {
        fn default() -> Self {
            Any(PhantomData)
        }
    }

    impl<T: Arbitrary> Strategy for Any<T> {
        type Value = T;
        fn gen_value(&self, rng: &mut TestRng) -> T {
            T::arbitrary(rng)
        }
    }

    impl Strategy for Range<f64> {
        type Value = f64;
        fn gen_value(&self, rng: &mut TestRng) -> f64 {
            rng.random_range(self.start..self.end)
        }
    }

    impl Strategy for Range<f32> {
        type Value = f32;
        fn gen_value(&self, rng: &mut TestRng) -> f32 {
            rng.random_range(self.start..self.end)
        }
    }

    macro_rules! int_range_strategy {
        ($($t:ty),+) => {$(
            impl Strategy for Range<$t> {
                type Value = $t;
                fn gen_value(&self, rng: &mut TestRng) -> $t {
                    rng.random_range(self.start..self.end)
                }
            }
        )+};
    }
    int_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    /// Pattern strategies (`".{0,120}"`) degrade to "printable ASCII string
    /// up to 120 chars" — the tests only need arbitrary well-formed
    /// strings, not full regex support.
    impl Strategy for &str {
        type Value = String;
        fn gen_value(&self, rng: &mut TestRng) -> String {
            let len = rng.random_range(0..121usize);
            (0..len)
                .map(|_| rng.random_range(32u32..127) as u8 as char)
                .collect()
        }
    }

    macro_rules! tuple_strategy {
        ($($s:ident . $idx:tt),+) => {
            impl<$($s: Strategy),+> Strategy for ($($s,)+) {
                type Value = ($($s::Value,)+);
                fn gen_value(&self, rng: &mut TestRng) -> Self::Value {
                    ($(self.$idx.gen_value(rng),)+)
                }
            }
        };
    }
    tuple_strategy!(A.0);
    tuple_strategy!(A.0, B.1);
    tuple_strategy!(A.0, B.1, C.2);
    tuple_strategy!(A.0, B.1, C.2, D.3);
    tuple_strategy!(A.0, B.1, C.2, D.3, E.4);
    tuple_strategy!(A.0, B.1, C.2, D.3, E.4, F.5);
}

pub mod collection {
    //! Collection strategies.

    use super::strategy::Strategy;
    use super::test_runner::TestRng;
    use rand::Rng;
    use std::ops::Range;

    /// See [`vec`].
    pub struct VecStrategy<S> {
        element: S,
        size: Range<usize>,
    }

    /// Generates `Vec`s of `element`-generated values with a length drawn
    /// from `size`.
    pub fn vec<S: Strategy>(element: S, size: Range<usize>) -> VecStrategy<S> {
        VecStrategy { element, size }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn gen_value(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let len = if self.size.start + 1 >= self.size.end {
                self.size.start
            } else {
                rng.random_range(self.size.start..self.size.end)
            };
            (0..len).map(|_| self.element.gen_value(rng)).collect()
        }
    }
}

pub use strategy::Arbitrary;

/// The canonical strategy for `T` (raw bit patterns / uniform values).
pub fn any<T: Arbitrary>() -> strategy::Any<T> {
    strategy::Any::default()
}

/// Defines property-test functions: each `fn name(pat in strategy, ...)`
/// body runs for `Config::cases` deterministic random cases.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { config = ($cfg); $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! { config = ($crate::test_runner::Config::default()); $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    (config = ($cfg:expr);
     $($(#[$meta:meta])*
       fn $name:ident($($pat:pat_param in $strat:expr),+ $(,)?) $body:block)*) => {
        $(
            $(#[$meta])*
            fn $name() {
                let __config: $crate::test_runner::Config = $cfg;
                for __case in 0..__config.cases {
                    let mut __rng = $crate::test_runner::rng_for_case(__case as u64);
                    $(let $pat =
                        $crate::strategy::Strategy::gen_value(&($strat), &mut __rng);)+
                    let __outcome: ::std::result::Result<(), $crate::test_runner::TestCaseError> =
                        (|| {
                            $body
                            ::std::result::Result::Ok(())
                        })();
                    if let ::std::result::Result::Err(e) = __outcome {
                        panic!(
                            "proptest {} failed at case {}/{}: {}",
                            stringify!($name),
                            __case + 1,
                            __config.cases,
                            e
                        );
                    }
                }
            }
        )*
    };
}

/// Uniform choice among the listed strategies (all must generate the same
/// value type).
#[macro_export]
macro_rules! prop_oneof {
    ($($strategy:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $($crate::strategy::Strategy::boxed($strategy)),+
        ])
    };
}

/// Fails the current case unless the condition holds.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        if !$cond {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!("assertion failed: {}", stringify!($cond)),
            ));
        }
    };
    ($cond:expr, $($arg:tt)+) => {
        if !$cond {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!($($arg)+),
            ));
        }
    };
}

/// Fails the current case unless both sides compare equal.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (__l, __r) = (&$left, &$right);
        if !(*__l == *__r) {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!("assertion failed: `{:?}` == `{:?}`", __l, __r),
            ));
        }
    }};
    ($left:expr, $right:expr, $($arg:tt)+) => {{
        let (__l, __r) = (&$left, &$right);
        if !(*__l == *__r) {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!("assertion failed: `{:?}` == `{:?}`: {}", __l, __r, format!($($arg)+)),
            ));
        }
    }};
}

/// Skips the current case (counted as a pass) unless the precondition
/// holds.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr $(,)?) => {
        if !$cond {
            return ::std::result::Result::Ok(());
        }
    };
}

pub mod prelude {
    //! Glob-import surface matching `proptest::prelude::*`.
    pub use super::strategy::{Arbitrary, BoxedStrategy, Just, Strategy, Union};
    pub use super::test_runner::{Config as ProptestConfig, TestCaseError, TestRng};
    pub use super::{any, prop_assert, prop_assert_eq, prop_assume, prop_oneof, proptest};
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn ranges_stay_in_bounds(x in 1.0f64..2.0, n in 3usize..9) {
            prop_assert!((1.0..2.0).contains(&x));
            prop_assert!((3..9).contains(&n), "n = {}", n);
        }

        #[test]
        fn tuples_and_maps_compose((a, b) in (0u32..10, 10u32..20).prop_map(|(x, y)| (y, x))) {
            prop_assert!(a >= 10);
            prop_assert_eq!(b / 10, 0);
        }

        #[test]
        fn oneof_and_just(v in prop_oneof![Just(1u8), Just(2u8), (3u8..5)]) {
            prop_assume!(v != 2);
            prop_assert!(v == 1 || v == 3 || v == 4);
        }

        #[test]
        fn vec_lengths_respect_range(v in crate::collection::vec(any::<u8>(), 2..5)) {
            prop_assert!(v.len() >= 2 && v.len() < 5);
        }

        #[test]
        fn string_patterns_generate_strings(s in ".{0,120}") {
            prop_assert!(s.len() <= 120);
            return Ok(());
        }
    }

    #[test]
    fn cases_are_deterministic() {
        let mut a = crate::test_runner::rng_for_case(7);
        let mut b = crate::test_runner::rng_for_case(7);
        let s = crate::any::<u64>();
        assert_eq!(s.gen_value(&mut a), s.gen_value(&mut b));
    }
}
