//! Offline stand-in for `criterion` (see `shims/bytes` for why).
//!
//! A small wall-clock benchmarking harness exposing the criterion API
//! surface the workspace uses: `Criterion::benchmark_group`,
//! `BenchmarkGroup::{sample_size, bench_function, bench_with_input,
//! finish}`, `Bencher::iter`, `BenchmarkId` and the
//! `criterion_group!`/`criterion_main!` macros. Each benchmark
//! self-calibrates a batch size so cheap closures are timed over many
//! iterations, then reports the median per-iteration time across samples.

#![forbid(unsafe_code)]

use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Target wall-clock time per measurement sample.
const TARGET_SAMPLE_TIME: Duration = Duration::from_millis(25);

/// Identifies one benchmark within a group.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    label: String,
}

impl BenchmarkId {
    /// A function name plus a parameter value, rendered `name/param`.
    pub fn new(function_name: &str, parameter: impl std::fmt::Display) -> Self {
        BenchmarkId {
            label: format!("{function_name}/{parameter}"),
        }
    }

    /// A parameter-only id.
    pub fn from_parameter(parameter: impl std::fmt::Display) -> Self {
        BenchmarkId {
            label: parameter.to_string(),
        }
    }
}

impl From<&str> for BenchmarkId {
    fn from(label: &str) -> Self {
        BenchmarkId {
            label: label.to_string(),
        }
    }
}

impl From<String> for BenchmarkId {
    fn from(label: String) -> Self {
        BenchmarkId { label }
    }
}

/// Runs and times one benchmark body.
pub struct Bencher {
    samples: usize,
    /// Median per-iteration time of the last `iter` call.
    measured: Option<Duration>,
}

impl Bencher {
    fn new(samples: usize) -> Self {
        Bencher {
            samples,
            measured: None,
        }
    }

    /// Measures `f`: calibrates a batch size targeting
    /// [`TARGET_SAMPLE_TIME`] per sample, times `samples` batches, and
    /// records the median per-iteration duration.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        // Warm-up + calibration: grow the batch until one batch takes a
        // measurable fraction of the target time.
        let mut batch: u64 = 1;
        let per_iter_estimate = loop {
            let start = Instant::now();
            for _ in 0..batch {
                black_box(f());
            }
            let elapsed = start.elapsed();
            if elapsed >= TARGET_SAMPLE_TIME / 4 || batch >= 1 << 20 {
                break elapsed / batch.max(1) as u32;
            }
            batch = (batch * 4).min(1 << 20);
        };
        let per_sample = TARGET_SAMPLE_TIME.as_nanos().max(1) as u64;
        let est = per_iter_estimate.as_nanos().max(1) as u64;
        let batch = (per_sample / est).clamp(1, 1 << 20);

        let mut per_iter: Vec<Duration> = (0..self.samples.max(1))
            .map(|_| {
                let start = Instant::now();
                for _ in 0..batch {
                    black_box(f());
                }
                start.elapsed() / batch as u32
            })
            .collect();
        per_iter.sort_unstable();
        self.measured = Some(per_iter[per_iter.len() / 2]);
    }
}

fn format_duration(d: Duration) -> String {
    let nanos = d.as_nanos();
    if nanos < 1_000 {
        format!("{nanos} ns")
    } else if nanos < 1_000_000 {
        format!("{:.2} µs", nanos as f64 / 1e3)
    } else if nanos < 1_000_000_000 {
        format!("{:.2} ms", nanos as f64 / 1e6)
    } else {
        format!("{:.3} s", nanos as f64 / 1e9)
    }
}

/// A named set of related benchmarks.
pub struct BenchmarkGroup<'a> {
    name: String,
    sample_size: usize,
    _criterion: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Sets the number of measurement samples per benchmark.
    pub fn sample_size(&mut self, samples: usize) -> &mut Self {
        self.sample_size = samples;
        self
    }

    fn run<F: FnMut(&mut Bencher)>(&mut self, label: &str, mut f: F) {
        let mut bencher = Bencher::new(self.sample_size);
        f(&mut bencher);
        match bencher.measured {
            Some(t) => println!("{}/{}: {}/iter", self.name, label, format_duration(t)),
            None => println!(
                "{}/{}: no measurement (b.iter never called)",
                self.name, label
            ),
        }
    }

    /// Benchmarks `f` under `id`.
    pub fn bench_function<F: FnMut(&mut Bencher)>(
        &mut self,
        id: impl Into<BenchmarkId>,
        f: F,
    ) -> &mut Self {
        let id: BenchmarkId = id.into();
        self.run(&id.label, f);
        self
    }

    /// Benchmarks `f` with a borrowed input under `id`.
    pub fn bench_with_input<I: ?Sized, F: FnMut(&mut Bencher, &I)>(
        &mut self,
        id: impl Into<BenchmarkId>,
        input: &I,
        mut f: F,
    ) -> &mut Self {
        let id: BenchmarkId = id.into();
        self.run(&id.label, |b| f(b, input));
        self
    }

    /// Ends the group (printing happens eagerly; this is API parity).
    pub fn finish(self) {}
}

/// Top-level benchmark driver.
#[derive(Default)]
pub struct Criterion {}

impl Criterion {
    /// Starts a named group of benchmarks.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.to_string(),
            sample_size: 10,
            _criterion: self,
        }
    }

    /// Benchmarks `f` outside any group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: &str, mut f: F) -> &mut Self {
        let mut bencher = Bencher::new(10);
        f(&mut bencher);
        match bencher.measured {
            Some(t) => println!("{id}: {}/iter", format_duration(t)),
            None => println!("{id}: no measurement (b.iter never called)"),
        }
        self
    }

    /// End-of-run hook (API parity; reporting is eager).
    pub fn final_summary(&mut self) {}
}

/// Declares a benchmark group function running each target in order.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion: $crate::Criterion = $config;
            $($target(&mut criterion);)+
            criterion.final_summary();
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
            criterion.final_summary();
        }
    };
}

/// Declares `main` running the listed benchmark groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bencher_measures_and_reports() {
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("shim_selftest");
        group.sample_size(5);
        let mut ran = 0u64;
        group.bench_function(BenchmarkId::new("sum", 100), |b| {
            b.iter(|| {
                ran += 1;
                (0..100u64).sum::<u64>()
            })
        });
        group.finish();
        assert!(ran > 0, "benchmark closure never executed");
    }

    #[test]
    fn duration_formatting() {
        assert_eq!(format_duration(Duration::from_nanos(500)), "500 ns");
        assert_eq!(format_duration(Duration::from_micros(2)), "2.00 µs");
        assert_eq!(format_duration(Duration::from_millis(3)), "3.00 ms");
        assert_eq!(format_duration(Duration::from_secs(2)), "2.000 s");
    }
}
