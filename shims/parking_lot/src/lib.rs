//! Offline stand-in for the `parking_lot` crate (see `shims/bytes` for why).
//!
//! Wraps `std::sync` primitives with `parking_lot`'s non-poisoning API:
//! `lock()`/`read()`/`write()` return guards directly, recovering the inner
//! value if a previous holder panicked.

#![forbid(unsafe_code)]

/// Guard returned by [`Mutex::lock`].
pub type MutexGuard<'a, T> = std::sync::MutexGuard<'a, T>;
/// Guard returned by [`RwLock::read`].
pub type RwLockReadGuard<'a, T> = std::sync::RwLockReadGuard<'a, T>;
/// Guard returned by [`RwLock::write`].
pub type RwLockWriteGuard<'a, T> = std::sync::RwLockWriteGuard<'a, T>;

/// A mutual-exclusion lock whose `lock()` never returns a poison error.
#[derive(Debug, Default)]
pub struct Mutex<T: ?Sized>(std::sync::Mutex<T>);

impl<T> Mutex<T> {
    /// Creates a mutex holding `value`.
    pub const fn new(value: T) -> Self {
        Mutex(std::sync::Mutex::new(value))
    }

    /// Consumes the mutex, returning the inner value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquires the lock, blocking until available.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.0.lock().unwrap_or_else(|e| e.into_inner())
    }

    /// Mutable access without locking (requires exclusive borrow).
    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(|e| e.into_inner())
    }
}

/// A readers-writer lock whose accessors never return poison errors.
#[derive(Debug, Default)]
pub struct RwLock<T: ?Sized>(std::sync::RwLock<T>);

impl<T> RwLock<T> {
    /// Creates a lock holding `value`.
    pub const fn new(value: T) -> Self {
        RwLock(std::sync::RwLock::new(value))
    }

    /// Consumes the lock, returning the inner value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquires shared read access.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        self.0.read().unwrap_or_else(|e| e.into_inner())
    }

    /// Acquires exclusive write access.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        self.0.write().unwrap_or_else(|e| e.into_inner())
    }

    /// Mutable access without locking (requires exclusive borrow).
    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(|e| e.into_inner())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mutex_guards_exclusive_access() {
        let m = Mutex::new(0u32);
        *m.lock() += 5;
        assert_eq!(*m.lock(), 5);
        assert_eq!(m.into_inner(), 5);
    }

    #[test]
    fn rwlock_read_write() {
        let l = RwLock::new(vec![1, 2]);
        assert_eq!(l.read().len(), 2);
        l.write().push(3);
        assert_eq!(*l.read(), vec![1, 2, 3]);
    }
}
