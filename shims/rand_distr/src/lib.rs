//! Offline stand-in for `rand_distr` (see `shims/bytes` for why).
//!
//! Only the pieces `fedra` uses: the `Distribution` trait and a Box–Muller
//! `Normal<f64>`.

#![forbid(unsafe_code)]

use rand::{Rng, RngCore};

/// Types that generate values of `T` from an RNG.
pub trait Distribution<T> {
    /// Draws one value.
    fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> T;
}

/// Invalid `Normal` parameters (non-finite or negative standard deviation).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct NormalError;

impl std::fmt::Display for NormalError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "invalid normal distribution parameters")
    }
}

impl std::error::Error for NormalError {}

/// The normal (Gaussian) distribution `N(mean, std_dev²)`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Normal<F = f64> {
    mean: F,
    std_dev: F,
}

impl Normal<f64> {
    /// Creates `N(mean, std_dev²)`; errors on non-finite or negative
    /// `std_dev`.
    pub fn new(mean: f64, std_dev: f64) -> Result<Self, NormalError> {
        if !mean.is_finite() || !std_dev.is_finite() || std_dev < 0.0 {
            return Err(NormalError);
        }
        Ok(Normal { mean, std_dev })
    }

    /// The distribution mean.
    pub fn mean(&self) -> f64 {
        self.mean
    }

    /// The distribution standard deviation.
    pub fn std_dev(&self) -> f64 {
        self.std_dev
    }
}

impl Distribution<f64> for Normal<f64> {
    fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> f64 {
        // Box–Muller: two uniforms per draw, second output discarded to
        // keep the distribution stateless.
        let u1: f64 = (1.0 - rng.random::<f64>()).max(f64::MIN_POSITIVE);
        let u2: f64 = rng.random();
        let z = (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos();
        self.mean + self.std_dev * z
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn rejects_bad_parameters() {
        assert!(Normal::new(0.0, -1.0).is_err());
        assert!(Normal::new(f64::NAN, 1.0).is_err());
        assert!(Normal::new(0.0, 0.0).is_ok());
    }

    #[test]
    fn sample_moments_are_close() {
        let normal = Normal::new(40.0, 12.0).unwrap();
        let mut rng = StdRng::seed_from_u64(5);
        let n = 20_000;
        let samples: Vec<f64> = (0..n).map(|_| normal.sample(&mut rng)).collect();
        let mean = samples.iter().sum::<f64>() / n as f64;
        let var = samples.iter().map(|x| (x - mean) * (x - mean)).sum::<f64>() / n as f64;
        assert!((mean - 40.0).abs() < 0.5, "mean {mean}");
        assert!((var.sqrt() - 12.0).abs() < 0.5, "std {}", var.sqrt());
    }
}
