//! Offline stand-in for `serde_derive` (see `shims/bytes` for why).
//!
//! `fedra` derives `Serialize`/`Deserialize` on its geometry and index
//! types but serializes exclusively through its own byte-counted wire
//! codec (`fedra-federation::wire`), so nothing in the workspace consumes
//! the serde impls. These derives therefore expand to nothing, keeping the
//! annotations compiling without a real serde implementation.

use proc_macro::TokenStream;

/// No-op `#[derive(Serialize)]`.
#[proc_macro_derive(Serialize)]
pub fn derive_serialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}

/// No-op `#[derive(Deserialize)]`.
#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}
