#!/usr/bin/env bash
# Local CI gate: build, test, lint, format.
#
# Usage: ./ci.sh
# Fails fast on the first broken step. rustfmt is optional (offline
# toolchains may lack it); every other step is mandatory.

set -euo pipefail
cd "$(dirname "$0")"

echo "==> cargo build --release"
cargo build --release

echo "==> cargo test -q (workspace)"
cargo test -q --workspace

# The pool-size equivalence suite again under forced pool sizes. The
# FEDRA_SILO_THREADS override steers every auto-sized pool (the
# reproducibility suite builds with the default), and the equivalence
# suite's explicit 1-vs-4 comparison must hold in both environments.
for threads in 1 4; do
    echo "==> parallel equivalence (FEDRA_SILO_THREADS=$threads)"
    FEDRA_SILO_THREADS=$threads cargo test -q -p fedra \
        --test parallel_equivalence --test reproducibility
done

echo "==> fedra-lint check"
cargo run -q -p fedra-lint -- check

# Observability smoke: the quickstart ends with an instrumented batch
# and a Prometheus dump; an empty or counter-less dump means the
# exporter or the engine instrumentation broke.
echo "==> observability smoke (quickstart metrics dump)"
obs_dump=$(cargo run -q --release --example quickstart | sed -n '/^fedra_/p')
test -n "$obs_dump" || { echo "obs smoke: exporter output empty"; exit 1; }
echo "$obs_dump" | grep -q '^fedra_queries_total 32$' \
    || { echo "obs smoke: fedra_queries_total missing or wrong"; exit 1; }
echo "$obs_dump" | grep -q '^fedra_comm_bytes_up_total ' \
    || { echo "obs smoke: comm mirror missing"; exit 1; }
echo "    ok ($(echo "$obs_dump" | wc -l) exporter lines)"

# Chaos smoke: the resilience example runs its timing-fault ladder under
# a fixed FaultPlan seed. The hedge machinery must actually fire, no
# query may fail, and every circuit breaker must be closed again by the
# end of the run ("breaker leaks: 0").
echo "==> chaos smoke (resilience example, seeded FaultPlan)"
chaos_out=$(cargo run -q --release --example resilience)
echo "$chaos_out" | grep -q ' 0 failed, ' \
    || { echo "chaos smoke: queries failed under the fault plan"; exit 1; }
echo "$chaos_out" | grep -Eq 'hedges fired/won: [1-9][0-9]*/' \
    || { echo "chaos smoke: slow silo never triggered a hedge"; exit 1; }
echo "$chaos_out" | grep -q '^breaker leaks: 0$' \
    || { echo "chaos smoke: breaker leaked out of the run"; exit 1; }
echo "    ok (hedges fired, no breaker leaks)"

# Cache smoke: the city dashboard's refresh loop runs through the
# ε-aware answer cache with per-serve truth checks. The steady-state hit
# rate must be nonzero and no served answer may exceed the requested ε.
echo "==> cache smoke (city_dashboard, ε-aware answer cache)"
cache_out=$(cargo run -q --release --example city_dashboard)
echo "$cache_out" | grep -Eq '^cache hit rate: [1-9][0-9]*\.' \
    || { echo "cache smoke: steady-state hit rate is zero"; exit 1; }
echo "$cache_out" | grep -q '^cache ε violations: 0$' \
    || { echo "cache smoke: a served answer exceeded the requested ε"; exit 1; }
echo "    ok (nonzero hit rate, zero ε violations)"

# Overhead gate: the pure-miss cache path (zero TTL, every probe a miss)
# must stay within noise of the uncached algorithm. The bench asserts
# the <= 3 % budget itself; any violation fails this step.
echo "==> cache overhead gate (micro_cache)"
cargo bench -q -p fedra-bench --bench micro_cache | tail -n 4

if command -v rustfmt >/dev/null 2>&1; then
    echo "==> cargo fmt --check"
    cargo fmt --check
else
    echo "==> cargo fmt --check: SKIPPED (rustfmt not installed)"
fi

echo "CI gate passed."
