#!/usr/bin/env bash
# Local CI gate: build, test, lint, format.
#
# Usage: ./ci.sh
# Fails fast on the first broken step. rustfmt is optional (offline
# toolchains may lack it); every other step is mandatory.

set -euo pipefail
cd "$(dirname "$0")"

echo "==> cargo build --release"
cargo build --release

echo "==> cargo test -q (workspace)"
cargo test -q --workspace

# The pool-size equivalence suite again under forced pool sizes. The
# FEDRA_SILO_THREADS override steers every auto-sized pool (the
# reproducibility suite builds with the default), and the equivalence
# suite's explicit 1-vs-4 comparison must hold in both environments.
for threads in 1 4; do
    echo "==> parallel equivalence (FEDRA_SILO_THREADS=$threads)"
    FEDRA_SILO_THREADS=$threads cargo test -q -p fedra \
        --test parallel_equivalence --test reproducibility
done

echo "==> fedra-lint check"
cargo run -q -p fedra-lint -- check

if command -v rustfmt >/dev/null 2>&1; then
    echo "==> cargo fmt --check"
    cargo fmt --check
else
    echo "==> cargo fmt --check: SKIPPED (rustfmt not installed)"
fi

echo "CI gate passed."
