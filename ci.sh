#!/usr/bin/env bash
# Local CI gate: build, test, lint, format.
#
# Usage: ./ci.sh
# Fails fast on the first broken step. rustfmt is optional (offline
# toolchains may lack it); every other step is mandatory.
#
# Opt-in sanitizer smoke (FEDRA_SANITIZE=1 ./ci.sh): the dynamic
# counterpart to the determinism-discipline and lock-order static
# passes — runs the parallel-equivalence suite under ThreadSanitizer
# and the federation wire tests under Miri. Skipped by default because
# both need a nightly toolchain with the `rust-src` (for -Zbuild-std)
# and `miri` components; the stage probes for them and fails with a
# pointed message instead of attempting any install.

set -euo pipefail
cd "$(dirname "$0")"

echo "==> cargo build --release"
cargo build --release

echo "==> cargo test -q (workspace)"
cargo test -q --workspace

# The pool-size equivalence suite again under forced pool sizes. The
# FEDRA_SILO_THREADS override steers every auto-sized pool (the
# reproducibility suite builds with the default), and the equivalence
# suite's explicit 1-vs-4 comparison must hold in both environments.
for threads in 1 4; do
    echo "==> parallel equivalence (FEDRA_SILO_THREADS=$threads)"
    FEDRA_SILO_THREADS=$threads cargo test -q -p fedra \
        --test parallel_equivalence --test reproducibility \
        --test concurrent_equivalence
done

# Lint gate plus machine-readable artifact: the JSON output is
# byte-stable, so target/ci/fedra-lint.json can be archived and diffed
# between runs. Per-rule totals must match the committed baseline
# exactly — with all lints at deny and the gate requiring zero failing
# findings, every counted finding is a baselined one, so the totals are
# exactly the per-rule line counts of crates/lint/baseline.txt.
echo "==> fedra-lint check (JSON artifact + rule-count diff)"
mkdir -p target/ci
cargo run -q -p fedra-lint -- check --format json > target/ci/fedra-lint.json \
    || { echo "fedra-lint: check failed (artifact: target/ci/fedra-lint.json)"; exit 1; }
jq -r '.rule_counts | to_entries[] | "\(.key) \(.value)"' target/ci/fedra-lint.json \
    > target/ci/rule-counts.txt
# (grep exits 1 on an all-comment baseline — the healthy case — so it
# must not trip set -e/pipefail.)
{ grep -v '^#' crates/lint/baseline.txt || true; } | awk -F'\t' 'NF { print $1 }' \
    | sort | uniq -c | awk '{ print $2, $1 }' > target/ci/baseline-counts.txt
while read -r rule count; do
    base=$(awk -v r="$rule" '$1 == r { print $2 }' target/ci/baseline-counts.txt)
    if [ "$count" -ne "${base:-0}" ]; then
        echo "fedra-lint: rule $rule reports $count findings, baseline records ${base:-0}"
        exit 1
    fi
done < target/ci/rule-counts.txt
echo "    ok ($(wc -l < target/ci/rule-counts.txt) rules match the committed baseline)"

# Observability smoke: the quickstart ends with an instrumented batch
# and a Prometheus dump; an empty or counter-less dump means the
# exporter or the engine instrumentation broke.
echo "==> observability smoke (quickstart metrics dump)"
obs_dump=$(cargo run -q --release --example quickstart | sed -n '/^fedra_/p')
test -n "$obs_dump" || { echo "obs smoke: exporter output empty"; exit 1; }
echo "$obs_dump" | grep -q '^fedra_queries_total 32$' \
    || { echo "obs smoke: fedra_queries_total missing or wrong"; exit 1; }
echo "$obs_dump" | grep -q '^fedra_comm_bytes_up_total ' \
    || { echo "obs smoke: comm mirror missing"; exit 1; }
echo "    ok ($(echo "$obs_dump" | wc -l) exporter lines)"

# Chaos smoke: the resilience example runs its timing-fault ladder under
# a fixed FaultPlan seed. The hedge machinery must actually fire, no
# query may fail, and every circuit breaker must be closed again by the
# end of the run ("breaker leaks: 0").
echo "==> chaos smoke (resilience example, seeded FaultPlan)"
chaos_out=$(cargo run -q --release --example resilience)
echo "$chaos_out" | grep -q ' 0 failed, ' \
    || { echo "chaos smoke: queries failed under the fault plan"; exit 1; }
echo "$chaos_out" | grep -Eq 'hedges fired/won: [1-9][0-9]*/' \
    || { echo "chaos smoke: slow silo never triggered a hedge"; exit 1; }
echo "$chaos_out" | grep -q '^breaker leaks: 0$' \
    || { echo "chaos smoke: breaker leaked out of the run"; exit 1; }
echo "    ok (hedges fired, no breaker leaks)"

# Socket smoke: the same federation served two ways. Three fedra-silo
# processes host the exported partitions over Unix-domain sockets, and
# the remote run's ANSWER lines — aggregate values AND comm-byte
# counts — must be byte-identical to the in-process run. The socket
# payloads are the exact in-memory Wire encoding, so any divergence
# here is a framing or accounting bug, not noise.
echo "==> socket smoke (fedra-silo serve over unix sockets)"
sock_dir=target/ci/socket-smoke
rm -rf "$sock_dir" && mkdir -p "$sock_dir"
cargo run -q --release --example remote_federation -- export "$sock_dir" >/dev/null
silo_pids=""
for k in 0 1 2; do
    ./target/release/fedra-silo serve \
        --addr "unix:$sock_dir/s$k.sock" --data "$sock_dir/silo$k.csv" \
        --silo-id "$k" --bounds "$(cat "$sock_dir/bounds.txt")" \
        >"$sock_dir/silo$k.log" 2>&1 &
    silo_pids="$silo_pids $!"
done
trap 'kill $silo_pids 2>/dev/null || true' EXIT
for _ in $(seq 1 100); do
    [ -S "$sock_dir/s0.sock" ] && [ -S "$sock_dir/s1.sock" ] && [ -S "$sock_dir/s2.sock" ] && break
    sleep 0.1
done
cargo run -q --release --example remote_federation -- local \
    | grep '^ANSWER' >"$sock_dir/local.txt"
cargo run -q --release --example remote_federation -- remote "$sock_dir/bounds.txt" \
    "unix:$sock_dir/s0.sock" "unix:$sock_dir/s1.sock" "unix:$sock_dir/s2.sock" \
    | grep '^ANSWER' >"$sock_dir/remote.txt"
kill $silo_pids 2>/dev/null || true
trap - EXIT
wait $silo_pids 2>/dev/null || true
test -s "$sock_dir/local.txt" \
    || { echo "socket smoke: no ANSWER lines produced"; exit 1; }
diff "$sock_dir/local.txt" "$sock_dir/remote.txt" \
    || { echo "socket smoke: remote answers diverge from the in-process run"; exit 1; }
echo "    ok ($(wc -l <"$sock_dir/local.txt") answers byte-identical across processes)"

# The chaos, failure-injection, and equivalence suites again with every
# in-process silo behind a loopback socket transport: shed / retry /
# hedge semantics and answers must not depend on the backend.
echo "==> socket backend suites (FEDRA_TRANSPORT=socket)"
FEDRA_TRANSPORT=socket cargo test -q -p fedra \
    --test chaos --test failure_injection --test concurrent_equivalence
chaos_sock=$(FEDRA_TRANSPORT=socket cargo run -q --release --example resilience)
echo "$chaos_sock" | grep -q ' 0 failed, ' \
    || { echo "socket chaos: queries failed under the fault plan"; exit 1; }
echo "$chaos_sock" | grep -Eq 'hedges fired/won: [1-9][0-9]*/' \
    || { echo "socket chaos: slow silo never triggered a hedge"; exit 1; }
echo "$chaos_sock" | grep -q '^breaker leaks: 0$' \
    || { echo "socket chaos: breaker leaked out of the run"; exit 1; }
echo "    ok (chaos + failure injection + equivalence green over sockets)"

# Partition smoke: the §5i drill against real fedra-silo processes. The
# driver streams queries while silo 2 is SIGKILL'd mid-stream: a
# degraded answer with an honest coverage record must appear, the silo
# must respawn warm from its checksummed grid snapshot (its stdout says
# so), a stale reply crossing a dropped connection must be fenced by
# epoch, and both the healthy and the post-recovery answers must be
# byte-identical to the in-process reference.
echo "==> partition smoke (SIGKILL + snapshot respawn + epoch fencing)"
part_dir=target/ci/partition-smoke
rm -rf "$part_dir" && mkdir -p "$part_dir/snap"
cargo build -q --release --example partition_drill
cargo run -q --release --example remote_federation -- export "$part_dir" >/dev/null
cargo run -q --release --example partition_drill -- local \
    | grep '^ANSWER' >"$part_dir/local.txt"
part_pids=()
for k in 0 1 2; do
    ./target/release/fedra-silo serve \
        --addr "unix:$part_dir/s$k.sock" --data "$part_dir/silo$k.csv" \
        --silo-id "$k" --bounds "$(cat "$part_dir/bounds.txt")" \
        --snapshot-dir "$part_dir/snap" \
        >"$part_dir/silo$k.log" 2>&1 &
    part_pids+=($!)
done
drill_pid=""
trap 'kill -9 ${part_pids[*]} $drill_pid 2>/dev/null || true' EXIT
for _ in $(seq 1 100); do
    [ -S "$part_dir/s0.sock" ] && [ -S "$part_dir/s1.sock" ] && [ -S "$part_dir/s2.sock" ] && break
    sleep 0.1
done
./target/release/examples/partition_drill drive "$part_dir" "$part_dir/bounds.txt" \
    "unix:$part_dir/s0.sock" "unix:$part_dir/s1.sock" "unix:$part_dir/s2.sock" \
    >"$part_dir/drive.log" 2>&1 &
drill_pid=$!
await_marker() { # <regex> — poll drive.log until it appears or the drill dies
    for _ in $(seq 1 600); do
        grep -Eq "$1" "$part_dir/drive.log" 2>/dev/null && return 0
        kill -0 "$drill_pid" 2>/dev/null || return 1
        sleep 0.1
    done
    return 1
}
await_marker '^PHASE-A-DONE$' \
    || { cat "$part_dir/drive.log"; echo "partition smoke: healthy phase never finished"; exit 1; }
kill -9 "${part_pids[2]}" 2>/dev/null || true
wait "${part_pids[2]}" 2>/dev/null || true
touch "$part_dir/killed"
await_marker '^PHASE-B-DONE$' \
    || { cat "$part_dir/drive.log"; echo "partition smoke: no degraded phase"; exit 1; }
rm -f "$part_dir/s2.sock"    # the SIGKILL'd process left its socket file behind
./target/release/fedra-silo serve \
    --addr "unix:$part_dir/s2.sock" --data "$part_dir/silo2.csv" \
    --silo-id 2 --bounds "$(cat "$part_dir/bounds.txt")" \
    --snapshot-dir "$part_dir/snap" \
    >"$part_dir/silo2-respawn.log" 2>&1 &
part_pids[2]=$!
wait "$drill_pid" \
    || { cat "$part_dir/drive.log"; echo "partition smoke: drill failed"; exit 1; }
drill_pid=""
kill "${part_pids[@]}" 2>/dev/null || true
trap - EXIT
wait "${part_pids[@]}" 2>/dev/null || true
grep -q 'loaded grid snapshot' "$part_dir/silo2-respawn.log" \
    || { echo "partition smoke: respawned silo did not warm-start from its snapshot"; exit 1; }
grep -Eq '^DEGRADED count=[1-9]' "$part_dir/drive.log" \
    || { echo "partition smoke: no honest degraded answer surfaced"; exit 1; }
grep -Eq '^FENCED [1-9]' "$part_dir/drive.log" \
    || { echo "partition smoke: no stale reply was fenced"; exit 1; }
grep -q '^breaker leaks: 0$' "$part_dir/drive.log" \
    || { echo "partition smoke: a breaker leaked out of the drill"; exit 1; }
grep '^ANSWER' "$part_dir/drive.log" >"$part_dir/healthy.txt"
diff "$part_dir/local.txt" "$part_dir/healthy.txt" \
    || { echo "partition smoke: healthy remote answers diverge from the in-process run"; exit 1; }
sed -n 's/^FINAL /ANSWER /p' "$part_dir/drive.log" >"$part_dir/final.txt"
diff "$part_dir/local.txt" "$part_dir/final.txt" \
    || { echo "partition smoke: post-recovery answers diverge from the in-process run"; exit 1; }
echo "    ok (degraded honestly, respawned from snapshot, $(grep -c '^ANSWER' "$part_dir/local.txt") answers bit-identical after recovery)"

# Cache smoke: the city dashboard's refresh loop runs through the
# ε-aware answer cache with per-serve truth checks. The steady-state hit
# rate must be nonzero and no served answer may exceed the requested ε.
echo "==> cache smoke (city_dashboard, ε-aware answer cache)"
cache_out=$(cargo run -q --release --example city_dashboard)
echo "$cache_out" | grep -Eq '^cache hit rate: [1-9][0-9]*\.' \
    || { echo "cache smoke: steady-state hit rate is zero"; exit 1; }
echo "$cache_out" | grep -q '^cache ε violations: 0$' \
    || { echo "cache smoke: a served answer exceeded the requested ε"; exit 1; }
echo "    ok (nonzero hit rate, zero ε violations)"

# Overhead gate: the pure-miss cache path (zero TTL, every probe a miss)
# must stay within noise of the uncached algorithm. The bench asserts
# the <= 3 % budget itself; any violation fails this step. Runs before
# the load smoke on purpose: the saturation run thrashes a small host's
# scheduler hard enough to tip this timing-sensitive gate over budget.
echo "==> cache overhead gate (micro_cache)"
cargo bench -q -p fedra-bench --bench micro_cache | tail -n 4

# Load smoke: a short saturation run of the scheduler load generator.
# The offered-load ladder tops out well past capacity, so admission
# control must visibly shed (nonzero count), the determinism audit must
# hold bit for bit, and no breaker may leak out of the run. The
# short-window JSON is archived next to the lint artifact — the
# committed BENCH_load.json keeps its full-window numbers.
echo "==> load smoke (ab_load, short window)"
mkdir -p target/ci
load_out=$(FEDRA_LOAD_MS=250 FEDRA_LOAD_OUT=target/ci/BENCH_load.json \
    cargo run -q --release -p fedra-bench --example ab_load)
echo "$load_out" | grep -Eq '^shed total: [1-9][0-9]*$' \
    || { echo "load smoke: saturation never shed a query"; exit 1; }
echo "$load_out" | grep -q '^load ε violations: 0$' \
    || { echo "load smoke: a scheduled answer diverged from serial execution"; exit 1; }
echo "$load_out" | grep -q '^breaker leaks: 0$' \
    || { echo "load smoke: load shedding poisoned breaker state"; exit 1; }
test -s target/ci/BENCH_load.json \
    || { echo "load smoke: BENCH_load.json artifact missing"; exit 1; }
echo "    ok (sheds under saturation, zero ε violations, artifact archived)"

# Sanitizer smoke (opt-in; see header). TSan re-runs the pool-size
# equivalence suite looking for data races the deterministic harness
# can't surface as wrong answers; Miri runs the federation crate's
# wire tests for UB in the encode/decode paths.
if [ "${FEDRA_SANITIZE:-0}" = "1" ]; then
    echo "==> sanitizer smoke (TSan + Miri, FEDRA_SANITIZE=1)"
    command -v rustup >/dev/null 2>&1 \
        || { echo "sanitize: rustup not found; cannot select a nightly toolchain"; exit 1; }
    rustup toolchain list 2>/dev/null | grep -q '^nightly' \
        || { echo "sanitize: no nightly toolchain (need: rustup toolchain install nightly)"; exit 1; }
    components=$(rustup component list --toolchain nightly 2>/dev/null || true)
    echo "$components" | grep -q '^rust-src.*(installed)' \
        || { echo "sanitize: nightly lacks rust-src (need: rustup component add rust-src --toolchain nightly)"; exit 1; }
    echo "$components" | grep -Eq '^miri.*\(installed\)' \
        || { echo "sanitize: nightly lacks miri (need: rustup component add miri --toolchain nightly)"; exit 1; }
    host=$(rustc -vV | sed -n 's/^host: //p')
    echo "    TSan: parallel equivalence suite ($host)"
    RUSTFLAGS="-Zsanitizer=thread" cargo +nightly test -q -p fedra \
        --test parallel_equivalence -Zbuild-std --target "$host"
    echo "    Miri: federation wire tests"
    cargo +nightly miri test -q -p fedra-federation wire
    echo "    ok (TSan + Miri smoke passed)"
else
    echo "==> sanitizer smoke: SKIPPED (opt in with FEDRA_SANITIZE=1)"
fi

if command -v rustfmt >/dev/null 2>&1; then
    echo "==> cargo fmt --check"
    cargo fmt --check
else
    echo "==> cargo fmt --check: SKIPPED (rustfmt not installed)"
fi

echo "CI gate passed."
