#!/usr/bin/env bash
# Local CI gate: build, test, lint, format.
#
# Usage: ./ci.sh
# Fails fast on the first broken step. rustfmt is optional (offline
# toolchains may lack it); every other step is mandatory.

set -euo pipefail
cd "$(dirname "$0")"

echo "==> cargo build --release"
cargo build --release

echo "==> cargo test -q (workspace)"
cargo test -q --workspace

echo "==> fedra-lint check"
cargo run -q -p fedra-lint -- check

if command -v rustfmt >/dev/null 2>&1; then
    echo "==> cargo fmt --check"
    cargo fmt --check
else
    echo "==> cargo fmt --check: SKIPPED (rustfmt not installed)"
fi

echo "CI gate passed."
