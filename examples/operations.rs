//! Operations features: warm restarts and result caching.
//!
//! ```text
//! cargo run --release --example operations
//! ```
//!
//! Two extensions `fedra` adds on top of the paper for day-2 operation of
//! a federated aggregation service:
//!
//! 1. **Warm restarts** — the provider snapshots its Alg. 1 grid state to
//!    disk; after a restart, silos only return checksums instead of full
//!    cell vectors, collapsing setup traffic. Silos whose data changed
//!    are detected and re-transferred automatically.
//! 2. **Result caching** — rush-hour bursts repeat the same hot stations;
//!    a TTL + LRU cache in front of any algorithm answers repeats without
//!    touching the federation.

use std::time::Duration;

use fedra::federation::ProviderSnapshot;
use fedra::prelude::*;

fn main() {
    let spec = WorkloadSpec::default()
        .with_total_objects(100_000)
        .with_silos(6)
        .with_seed(777);
    let dataset = spec.generate();
    let bounds = dataset.bounds();
    let partitions = dataset.partitions().to_vec();

    // ---- 1. cold start + snapshot ------------------------------------
    println!("== warm restarts ==\n");
    let cold = FederationBuilder::new(bounds)
        .grid_cell_len(1.0)
        .build(partitions.clone());
    let cold_setup = cold.setup_comm();
    println!(
        "cold start : {:>8.1} KB setup traffic ({} rounds)",
        cold_setup.total_bytes() as f64 / 1024.0,
        cold_setup.rounds
    );

    let snapshot_path = std::env::temp_dir().join("fedra-operations-example.snap");
    cold.snapshot()
        .save_to(&snapshot_path)
        .expect("save snapshot");
    println!(
        "snapshot   : {:>8.1} KB on disk at {}",
        std::fs::metadata(&snapshot_path).unwrap().len() as f64 / 1024.0,
        snapshot_path.display()
    );
    drop(cold);

    // ---- provider restarts -------------------------------------------
    let snapshot = ProviderSnapshot::load_from(&snapshot_path).expect("load snapshot");
    let warm = FederationBuilder::new(bounds)
        .grid_cell_len(1.0)
        .warm_start(snapshot)
        .build(partitions.clone());
    let warm_setup = warm.setup_comm();
    println!(
        "warm start : {:>8.1} KB setup traffic ({} rounds, {} of {} silos from cache)",
        warm_setup.total_bytes() as f64 / 1024.0,
        warm_setup.rounds,
        warm.warm_start_hits(),
        warm.num_silos(),
    );
    println!(
        "reduction  : {:>8.1}x less setup traffic",
        cold_setup.total_bytes() as f64 / warm_setup.total_bytes() as f64
    );

    // ---- 2. result caching --------------------------------------------
    println!("\n== result caching ==\n");
    let hot_stations: Vec<FraQuery> = (0..5)
        .map(|i| {
            FraQuery::circle(
                Point::new(-2.0 + i as f64 * 2.0, -95.0 + i as f64),
                2.0,
                AggFunc::Count,
            )
        })
        .collect();
    // A rush-hour minute: 600 asks across 5 hot stations.
    let burst: Vec<FraQuery> = (0..600).map(|i| hot_stations[i % 5]).collect();

    let uncached = NonIidEst::new(1);
    warm.reset_query_comm();
    let engine = QueryEngine::per_silo(&uncached, &warm);
    let b1 = engine.execute_batch(&warm, &burst);
    println!(
        "uncached NonIID-est: {:>8.1} KB, {:>6.0} q/s",
        b1.comm.total_bytes() as f64 / 1024.0,
        b1.throughput_qps
    );

    // Legacy alias: exercised on purpose so the deprecated API keeps
    // compiling; new code should use `AnswerCache`.
    #[allow(deprecated)]
    let cached = CachedAlgorithm::new(
        NonIidEst::new(1),
        CacheConfig {
            capacity: 1024,
            ttl: Duration::from_secs(30),
        },
    );
    warm.reset_query_comm();
    let engine = QueryEngine::per_silo(&cached, &warm);
    let b2 = engine.execute_batch(&warm, &burst);
    let stats = cached.stats();
    println!(
        "cached NonIID-est  : {:>8.1} KB, {:>6.0} q/s ({} hits / {} misses, {:.0}% hit rate)",
        b2.comm.total_bytes() as f64 / 1024.0,
        b2.throughput_qps,
        stats.hits,
        stats.misses,
        stats.hit_rate() * 100.0
    );
    println!(
        "reduction          : {:>8.1}x less query traffic",
        b1.comm.total_bytes() as f64 / b2.comm.total_bytes().max(1) as f64
    );

    let _ = std::fs::remove_file(&snapshot_path);
}
