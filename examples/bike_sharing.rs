//! The paper's motivating application: real-time bike availability over a
//! federation of bike-sharing companies.
//!
//! ```text
//! cargo run --release --example bike_sharing
//! ```
//!
//! A service provider (think 9-Bike) aggregates "how many shared bikes
//! are within 2 km of this subway station" over several companies that
//! never share raw fleet positions. Rush hour brings a burst of 250
//! station queries arriving in one second; the example drives the burst
//! through the Alg. 4 engine with each algorithm and reports throughput,
//! error and communication — the paper's Fig. 8 scenario as an
//! application.

use fedra::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn main() {
    // Six bike companies, 120 000 bikes total, each company focused on
    // its own districts (the Non-IID reality of Sec. 4.2.2).
    let spec = WorkloadSpec::default()
        .with_total_objects(120_000)
        .with_silos(6)
        .with_seed(2026);
    println!(
        "fleet: {} bikes across {} companies",
        spec.total_objects, spec.num_silos
    );
    let dataset = spec.generate();
    let stations = subway_stations(&dataset, 250);
    let federation = FederationBuilder::new(dataset.bounds())
        .grid_cell_len(1.0)
        .build(dataset.into_partitions());

    // The rush-hour burst: one COUNT query per station, radius 2 km.
    let queries: Vec<FraQuery> = stations
        .iter()
        .map(|s| FraQuery::circle(*s, 2.0, AggFunc::Count))
        .collect();
    println!("burst: {} station queries (radius 2 km)\n", queries.len());

    // Ground truth for error reporting.
    let exact_alg = Exact::new();
    let engine = QueryEngine::per_silo(&exact_alg, &federation);
    let exact_batch = engine.execute_batch(&federation, &queries);
    let truth: Vec<f64> = exact_batch.values();

    let params = AccuracyParams::default();
    let algorithms: Vec<Box<dyn FraAlgorithm>> = vec![
        Box::new(Exact::new()),
        Box::new(Opta::new()),
        Box::new(IidEst::new(11)),
        Box::new(IidEstLsr::new(12, params)),
        Box::new(NonIidEst::new(13)),
        Box::new(NonIidEstLsr::new(14, params)),
    ];

    println!(
        "{:>16} {:>12} {:>10} {:>12} {:>14}",
        "algorithm", "throughput", "MRE", "comm (KB)", "real-time?"
    );
    for alg in &algorithms {
        federation.reset_query_comm();
        let engine = QueryEngine::per_silo(alg.as_ref(), &federation);
        let batch = engine.execute_batch(&federation, &queries);
        let qps = batch.throughput_qps;
        println!(
            "{:>16} {:>8.0} q/s {:>9.2}% {:>12.1} {:>14}",
            alg.name(),
            qps,
            batch.mean_relative_error(&truth) * 100.0,
            batch.comm.total_bytes() as f64 / 1024.0,
            // The paper's bar: rush hour needs > 150 queries/second.
            if qps > 150.0 { "yes (>150 q/s)" } else { "no" },
        );
    }

    // A rider-facing sanity check: the three busiest stations.
    let noniid = NonIidEst::new(15);
    let mut ranked: Vec<(usize, f64)> = truth.iter().copied().enumerate().collect();
    ranked.sort_by(|a, b| b.1.total_cmp(&a.1));
    println!("\nbusiest stations (exact vs NonIID-est):");
    for (idx, bikes) in ranked.into_iter().take(3) {
        let approx = noniid.execute(&federation, &queries[idx]);
        println!(
            "  station at {}: {} bikes (estimated {:.0})",
            stations[idx], bikes, approx.value
        );
    }
}

/// Synthetic subway stations: data-weighted locations, so stations sit
/// where riders actually are (like the paper's query centers).
fn subway_stations(dataset: &Dataset, n: usize) -> Vec<Point> {
    let objects = dataset.all_objects();
    let mut rng = StdRng::seed_from_u64(7);
    (0..n)
        .map(|_| objects[rng.random_range(0..objects.len())].location)
        .collect()
}
