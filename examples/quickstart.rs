//! Quickstart: stand up a federation, run one FRA query six ways.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```
//!
//! Generates a small Beijing-like 3-silo workload, builds every index,
//! and answers "how many vehicles are within 2 km of the city center"
//! with the exact baseline, the OPTA histogram baseline, and the paper's
//! four single-silo estimators — printing each algorithm's answer,
//! relative error, rounds of communication, and bytes moved.

use fedra::prelude::*;

fn main() {
    // 1. Data: 30 000 objects across 3 companies (ratio 1:1:2), company-
    //    skewed hotspots (the Non-IID case). Deterministic by seed.
    let spec = WorkloadSpec::small();
    println!(
        "generating {} objects across {} silos ...",
        spec.total_objects, spec.num_silos
    );
    let dataset = spec.generate();
    let bounds = dataset.bounds();

    // 2. Federation: each silo builds its aggregate R-tree, LSR-Forest and
    //    histogram; Alg. 1 collects per-silo grid indices into g0.
    let federation = FederationBuilder::new(bounds)
        .grid_cell_len(1.0)
        .build(dataset.into_partitions());
    println!(
        "federation up: {} silos, {} objects, setup traffic {:.1} KB",
        federation.num_silos(),
        federation.total_objects(),
        federation.setup_comm().total_bytes() as f64 / 1024.0
    );

    // 3. One query: COUNT within 2 km of the central business district.
    //    (The workload's densest hotspot sits at (0, -95) in projected km.)
    let query = FraQuery::circle(Point::new(0.0, -95.0), 2.0, AggFunc::Count);
    println!("\nquery: {query}");

    let exact = Exact::new().execute(&federation, &query);
    println!("ground truth: {}", exact.value);

    let params = AccuracyParams::default(); // ε = 0.1, δ = 0.01
    let algorithms: Vec<Box<dyn FraAlgorithm>> = vec![
        Box::new(Exact::new()),
        Box::new(Opta::new()),
        Box::new(IidEst::new(1)),
        Box::new(IidEstLsr::new(2, params)),
        Box::new(NonIidEst::new(3)),
        Box::new(NonIidEstLsr::new(4, params)),
    ];

    println!(
        "\n{:>16} {:>10} {:>10} {:>8} {:>12} {:>12}",
        "algorithm", "answer", "rel.err", "rounds", "bytes", "silo"
    );
    for alg in &algorithms {
        federation.reset_query_comm();
        let r = alg.execute(&federation, &query);
        let comm = federation.query_comm();
        println!(
            "{:>16} {:>10.1} {:>9.2}% {:>8} {:>12} {:>12}",
            alg.name(),
            r.value,
            r.relative_error(exact.value) * 100.0,
            comm.rounds,
            comm.total_bytes(),
            r.sampled_silo
                .map(|s| s.to_string())
                .unwrap_or_else(|| "-".into()),
        );
    }

    // 4. The same machinery works for every aggregation function.
    println!("\nall aggregation functions via NonIID-est (one round each):");
    let noniid = NonIidEst::new(5);
    for func in AggFunc::ALL {
        let q = FraQuery::new(query.range, func);
        let approx = noniid.execute(&federation, &q);
        let truth = Exact::new().execute(&federation, &q);
        println!(
            "  {func:>8}: approx {:>10.2}  exact {:>10.2}",
            approx.value, truth.value
        );
    }

    // 5. Observability: run a small instrumented batch and dump the
    //    metrics the engine recorded (counters, per-phase latency
    //    histograms, mirrored communication totals).
    let obs = ObsContext::new();
    let iid = IidEst::new(6);
    let engine = QueryEngine::per_silo(&iid, &federation);
    let queries: Vec<FraQuery> = (0..32)
        .map(|i| {
            FraQuery::circle(
                Point::new((i % 8) as f64 - 4.0, -95.0 + (i / 8) as f64),
                2.0,
                AggFunc::Count,
            )
        })
        .collect();
    let batch = engine.execute_batch_with(&federation, &queries, &obs);
    println!(
        "\ninstrumented batch: {} queries, {} failures — metrics:",
        queries.len(),
        batch.failures()
    );
    print!("{}", obs.export_prometheus());
}
