//! A smart-mobility monitoring dashboard: AVG / STDEV of vehicle speed
//! per district over a taxi-data federation (the Sec. 7 extensions on
//! rectangular ranges).
//!
//! ```text
//! cargo run --release --example city_dashboard
//! ```
//!
//! The measure attribute here is vehicle speed (km/h). The dashboard
//! tiles the urban core into districts and asks, district by district:
//! how many vehicles, average speed, and speed variability — COUNT, AVG
//! and STDEV over rectangular ranges, answered with one silo contact per
//! district via NonIID-est.

use fedra::prelude::*;
use fedra::workload::MeasureModel;

fn main() {
    // A taxi federation: speed as the measure attribute.
    let mut spec = WorkloadSpec::default()
        .with_total_objects(150_000)
        .with_silos(6)
        .with_seed(314);
    spec.measure = MeasureModel::Speed;
    let dataset = spec.generate();
    let federation = FederationBuilder::new(dataset.bounds())
        .grid_cell_len(1.0)
        .build(dataset.into_partitions());

    // Districts: a 4×4 tiling of the urban core (the dense part of the
    // Beijing box — see fedra_workload::city).
    let core = Rect::new(Point::new(-45.0, -125.0), Point::new(55.0, -45.0));
    let (tiles_x, tiles_y) = (4, 4);
    let (w, h) = (
        core.width() / tiles_x as f64,
        core.height() / tiles_y as f64,
    );

    let noniid = NonIidEst::new(99);
    let exact = Exact::new();
    // Instrument the dashboard's own queries (the exact references stay
    // uninstrumented so the metrics describe the production path only).
    let obs = ObsContext::new();

    println!("district dashboard (COUNT / AVG speed / STDEV), approximate vs exact\n");
    println!(
        "{:>10} {:>18} {:>24} {:>24}",
        "district", "vehicles (≈ / =)", "avg speed km/h (≈ / =)", "stdev km/h (≈ / =)"
    );
    let mut total_err = 0.0;
    let mut cells = 0;
    for ty in 0..tiles_y {
        for tx in 0..tiles_x {
            let a = Point::new(core.min.x + tx as f64 * w, core.min.y + ty as f64 * h);
            let b = Point::new(a.x + w, a.y + h);
            let district = format!("D{}{}", tx + 1, ty + 1);

            let count_q = FraQuery::rect(a, b, AggFunc::Count);
            let avg_q = FraQuery::rect(a, b, AggFunc::Avg);
            let std_q = FraQuery::rect(a, b, AggFunc::Stdev);

            // One silo round answers the whole (count, sum, sum_sqr)
            // triple, so AVG and STDEV are free once COUNT is estimated.
            let est = noniid
                .try_execute_with(&federation, &count_q, &obs)
                .expect("district query failed");
            let est_avg = est.aggregate.value(AggFunc::Avg);
            let est_std = est.aggregate.value(AggFunc::Stdev);

            let true_count = exact.execute(&federation, &count_q).value;
            let true_avg = exact.execute(&federation, &avg_q).value;
            let true_std = exact.execute(&federation, &std_q).value;

            println!(
                "{:>10} {:>8.0} / {:>7.0} {:>12.1} / {:>9.1} {:>12.1} / {:>9.1}",
                district, est.value, true_count, est_avg, true_avg, est_std, true_std
            );
            if true_count > 0.0 {
                total_err += (est.value - true_count).abs() / true_count;
                cells += 1;
            }
        }
    }
    println!(
        "\nmean relative COUNT error over {} non-empty districts: {:.2} %",
        cells,
        total_err / cells as f64 * 100.0
    );

    // Communication accounting for the whole dashboard refresh.
    let comm = federation.query_comm();
    println!(
        "dashboard refresh traffic: {} rounds, {:.1} KB total",
        comm.rounds,
        comm.total_bytes() as f64 / 1024.0
    );

    // ---- The ε-aware answer cache on the refresh loop ----------------
    //
    // Dashboards re-ask the same tiles forever, and the roll-up panels
    // ask the *unions* of tiles the per-district panels already asked.
    // The answer cache serves repeats by ε-containment and the roll-ups
    // by containment decomposition — zero silo contact for both. Every
    // served answer is checked against an exact truth run here, so the
    // violation count below is measured, not assumed.
    let cached = AnswerCache::with_policy(
        Exact::new(),
        CacheConfig::default(),
        CachePolicy {
            producer_epsilon: 0.0,
            containment: true,
        },
    );
    let epsilon = 0.05;
    let mut refresh: Vec<FraQuery> = Vec::new();
    for ty in 0..tiles_y {
        for tx in 0..tiles_x {
            let a = Point::new(core.min.x + tx as f64 * w, core.min.y + ty as f64 * h);
            let b = Point::new(a.x + w, a.y + h);
            refresh.push(FraQuery::rect(a, b, AggFunc::Count));
        }
    }
    // Roll-up panels: the four quadrants and the whole core, each the
    // exact union of tiles already on the board.
    for qy in 0..2 {
        for qx in 0..2 {
            let a = Point::new(
                core.min.x + qx as f64 * 2.0 * w,
                core.min.y + qy as f64 * 2.0 * h,
            );
            let b = Point::new(a.x + 2.0 * w, a.y + 2.0 * h);
            refresh.push(FraQuery::rect(a, b, AggFunc::Count));
        }
    }
    refresh.push(FraQuery::rect(core.min, core.max, AggFunc::Count));

    let mut violations = 0usize;
    for cycle in 0..3 {
        for query in &refresh {
            let answer = cached
                .try_execute_with_epsilon(&federation, query, epsilon, &obs)
                .expect("cached refresh failed");
            if answer.source != CacheSource::Miss {
                let truth = exact.execute(&federation, query).value;
                if (answer.result.value - truth).abs() > epsilon * truth.abs() + 1e-9 {
                    violations += 1;
                }
            }
        }
        let s = cached.stats();
        println!(
            "refresh cycle {}: {} hits / {} misses ({} decomposed)",
            cycle + 1,
            s.hits,
            s.misses,
            s.decomposed
        );
    }
    let stats = cached.stats();
    println!("cache hit rate: {:.1} %", stats.hit_rate() * 100.0);
    println!("cache ε violations: {violations}");
    println!("cache counters:");
    for (name, value) in &cached.metrics().snapshot().counters {
        println!("  {name} = {value}");
    }

    // What the observability layer saw: sampled-silo spread and phase
    // latencies for the dashboard's own (estimated) queries.
    let snapshot = obs.snapshot();
    println!("\nsampled-silo distribution:");
    for (name, value) in &snapshot.counters {
        if name.starts_with("fedra_sampled_silo_total") {
            println!("  {name} = {value}");
        }
    }
    println!("query phase latencies (ns):");
    for (name, hist) in &snapshot.histograms {
        if name.starts_with("fedra_span_ns") {
            println!(
                "  {name}: count {} mean {:.0}",
                hist.count,
                hist.sum as f64 / hist.count.max(1) as f64
            );
        }
    }
    println!("\nfull dump available in Prometheus or JSON form:");
    for line in obs.export_prometheus().lines().take(6) {
        println!("  {line}");
    }
    println!("  ...");
}
