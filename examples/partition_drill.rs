//! The ci.sh partition-smoke driver (DESIGN.md §5i): a federation of
//! `fedra-silo` processes survives a SIGKILL mid-query-stream, answers
//! from the reachable subset with an honest `Coverage` record, and
//! returns to bit-identical answers once the silo respawns from its
//! grid snapshot.
//!
//! Two modes, designed so `ANSWER`/`FINAL` lines diff clean against the
//! in-process reference:
//!
//! ```text
//! # Reference run, silos in-process (prints ANSWER lines):
//! cargo run --release --example partition_drill -- local
//!
//! # The drill (ci.sh orchestrates the kill/respawn around it):
//! cargo run --release --example partition_drill -- drive DIR bounds.txt \
//!     unix:DIR/s0.sock unix:DIR/s1.sock unix:DIR/s2.sock
//! ```
//!
//! The drive protocol, synchronized with the supervisor (ci.sh) through
//! stdout markers and a `DIR/killed` touch-file:
//!
//! 1. healthy `ANSWER` lines, then `PHASE-A-DONE`;
//! 2. a query stream that keeps running while the supervisor SIGKILLs
//!    silo 2 (it touches `DIR/killed` after); every coverage-annotated
//!    answer is checked against the phase-1 EXACT truth within its own
//!    inflated bound `ε′·SUM₀(R)`, then `PHASE-B-DONE` (the supervisor
//!    respawns the silo from its snapshot);
//! 3. estimator queries until the breaker closes again (`RECOVERED`),
//!    then `FINAL` lines that must bit-match the `ANSWER` lines;
//! 4. a stale-reply drill through a [`ChaosProxy`] that severs the
//!    client mid-call: the reply lands on the next connection and must
//!    be fenced by epoch (`FENCED n`, n > 0), never delivered;
//! 5. `breaker leaks: <n>` — the gate expects 0.

use std::process::ExitCode;
use std::time::Duration;

use fedra::core::helpers;
use fedra::federation::protocol::{Request, Response};
use fedra::prelude::*;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match args.first().map(String::as_str) {
        Some("local") | None => local(),
        Some("drive") => drive(&args[1..]),
        Some(other) => {
            eprintln!("error: unknown mode `{other}` (local | drive)");
            ExitCode::FAILURE
        }
    }
}

/// The same workload `remote_federation -- export` writes, so the drill
/// attaches to the CSVs ci.sh already exported.
fn dataset() -> Dataset {
    WorkloadSpec::small().generate()
}

fn drill_query() -> FraQuery {
    FraQuery::circle(Point::new(0.0, -95.0), 2.0, AggFunc::Count)
}

/// The diffable contract: one line per algorithm, identical across the
/// in-process reference (`ANSWER`), the healthy remote phase (`ANSWER`),
/// and the post-recovery remote phase (`FINAL`). Fresh algorithm
/// instances each call keep the sampling streams independent of however
/// many soak queries ran in between.
fn print_answers(federation: &Federation, prefix: &str) -> Result<(), String> {
    let query = drill_query();
    let params = AccuracyParams::default();
    let algorithms: Vec<Box<dyn FraAlgorithm>> = vec![
        Box::new(Exact::new()),
        Box::new(Opta::new()),
        Box::new(IidEst::new(1)),
        Box::new(IidEstLsr::new(2, params)),
        Box::new(NonIidEst::new(3)),
        Box::new(NonIidEstLsr::new(4, params)),
    ];
    for alg in &algorithms {
        federation.reset_query_comm();
        let r = alg
            .try_execute(federation, &query)
            .map_err(|e| format!("{prefix} {} failed: {e}", alg.name()))?;
        if r.coverage.is_some() {
            return Err(format!("{prefix} {} answer is degraded", alg.name()));
        }
        let comm = federation.query_comm();
        println!(
            "{prefix} {} {} bytes={}",
            alg.name(),
            r.value,
            comm.total_bytes()
        );
    }
    Ok(())
}

/// Reference run: the same federation, silos in-process, FailFast.
fn local() -> ExitCode {
    let data = dataset();
    let federation = FederationBuilder::new(data.bounds())
        .grid_cell_len(1.0)
        .build(data.into_partitions());
    match print_answers(&federation, "ANSWER") {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("error: {e}");
            ExitCode::FAILURE
        }
    }
}

fn read_bounds(path: &str) -> Option<Rect> {
    let text = std::fs::read_to_string(path).ok()?;
    let parts: Vec<f64> = text
        .trim()
        .split(',')
        .map(|p| p.trim().parse().ok())
        .collect::<Option<_>>()?;
    match parts[..] {
        [x0, y0, x1, y1] => Some(Rect::new(Point::new(x0, y0), Point::new(x1, y1))),
        _ => None,
    }
}

fn drive(args: &[String]) -> ExitCode {
    match try_drive(args) {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("error: {e}");
            ExitCode::FAILURE
        }
    }
}

fn try_drive(args: &[String]) -> Result<(), String> {
    let [dir, bounds_file, addrs @ ..] = args else {
        return Err("usage: partition_drill drive DIR bounds.txt ADDR...".into());
    };
    if addrs.len() < 2 {
        return Err("need at least two silo addresses (the last one gets killed)".into());
    }
    let bounds =
        read_bounds(bounds_file).ok_or_else(|| format!("{bounds_file}: not x0,y0,x1,y1"))?;
    let mut builder = FederationBuilder::new(bounds)
        .grid_cell_len(1.0)
        .degrade_policy(DegradePolicy::Partial {
            min_silos: 1,
            min_coverage: 0.2,
        })
        .call_policy(CallPolicy {
            deadline: Some(Duration::from_secs(5)),
            ..Default::default()
        })
        .health_config(HealthConfig::enabled());
    for addr in addrs {
        builder = builder.connect_remote(addr);
    }
    let fed = builder
        .try_build(Vec::new())
        .map_err(|e| format!("remote federation setup failed: {e}"))?;

    // Phase 1: healthy answers (the supervisor diffs them vs `local`).
    print_answers(&fed, "ANSWER")?;
    let query = drill_query();
    let exact = Exact::new();
    let truth = exact
        .try_execute(&fed, &query)
        .map_err(|e| format!("truth query failed: {e}"))?
        .value;
    println!("PHASE-A-DONE");

    // Phase 2: keep the query stream running while the supervisor
    // SIGKILLs the last silo. Every degraded answer must honor its own
    // coverage-inflated bound against the healthy truth.
    let killed_marker = std::path::Path::new(dir).join("killed");
    let sum0 = helpers::sum0(&fed, &query.range).count;
    let mut degraded = 0u32;
    let mut last_cov: Option<Coverage> = None;
    for _ in 0..3_000 {
        let r = exact
            .try_execute(&fed, &query)
            .map_err(|e| format!("EXACT must degrade, not fail, under Partial: {e}"))?;
        if let Some(cov) = r.coverage {
            if cov.responding >= cov.total || !(0.0..=1.0).contains(&cov.mass_fraction) {
                return Err(format!("dishonest coverage record: {cov:?}"));
            }
            let miss = (r.value - truth).abs();
            if miss > cov.epsilon * sum0 + 1e-9 {
                return Err(format!(
                    "degraded bound violated: |{} - {truth}| > {} * {sum0}",
                    r.value, cov.epsilon
                ));
            }
            degraded += 1;
            last_cov = Some(cov);
        }
        if killed_marker.exists() && degraded >= 5 {
            break;
        }
        std::thread::sleep(Duration::from_millis(10));
    }
    let cov = last_cov.ok_or("the kill never surfaced as a coverage record")?;
    println!(
        "DEGRADED count={degraded} responding={}/{} coverage={:.4} epsilon={:.4}",
        cov.responding, cov.total, cov.mass_fraction, cov.epsilon
    );
    println!("PHASE-B-DONE");

    // Phase 3: the supervisor respawns the silo from its snapshot; the
    // next send probes the dead channel and the breaker's half-open
    // probe closes on the first success.
    let est = NonIidEst::new(99);
    let mut recovered = false;
    for _ in 0..1_500 {
        let _ = est.try_execute(&fed, &query);
        if fed.health().non_closed().is_empty() {
            if let Ok(r) = exact.try_execute(&fed, &query) {
                if r.coverage.is_none() {
                    recovered = true;
                    break;
                }
            }
        }
        std::thread::sleep(Duration::from_millis(20));
    }
    if !recovered {
        return Err(format!(
            "silo never rejoined (breakers: {:?})",
            fed.health().non_closed()
        ));
    }
    println!("RECOVERED");
    print_answers(&fed, "FINAL")?;

    // Phase 4: stale-reply fencing through a chaos proxy that severs the
    // client between request and reply — the reply lands on the next
    // connection with a stale epoch and must be discarded, not matched.
    let upstream = SiloAddr::parse(&addrs[0]).map_err(|e| format!("bad addr: {e}"))?;
    let mut proxy = ChaosProxy::spawn(&upstream, ChaosPlan::calm(0xC1A0))
        .map_err(|e| format!("chaos proxy spawn failed: {e}"))?;
    let fenced = {
        let fed2 = FederationBuilder::new(bounds)
            .grid_cell_len(1.0)
            .degrade_policy(DegradePolicy::Partial {
                min_silos: 0,
                min_coverage: 0.0,
            })
            .connect_remote(proxy.addr().to_string())
            .try_build(Vec::new())
            .map_err(|e| format!("fencing federation setup failed: {e}"))?;
        if fed2.call(0, &Request::Ping) != Ok(Response::Pong) {
            return Err("fencing drill: healthy ping failed".into());
        }
        proxy.drop_client_after_next_request();
        let mut fenced = 0;
        for _ in 0..50 {
            let _ = fed2.call(0, &Request::Ping);
            fenced = fed2
                .silo_metrics(0)
                .snapshot()
                .counters
                .get("fedra_epoch_fenced_replies_total")
                .copied()
                .unwrap_or(0);
            if fenced > 0 {
                break;
            }
            std::thread::sleep(Duration::from_millis(20));
        }
        if fed2.call(0, &Request::Ping) != Ok(Response::Pong) {
            return Err("fencing drill: post-fence ping failed".into());
        }
        fenced
    };
    proxy.stop();
    if fenced == 0 {
        return Err("no stale reply was ever fenced".into());
    }
    println!("FENCED {fenced}");

    println!("breaker leaks: {}", fed.health().non_closed().len());
    Ok(())
}
