//! Failure injection: what happens to FRA answers when silos go dark.
//!
//! ```text
//! cargo run --release --example resilience
//! ```
//!
//! The paper's estimators assume healthy silos; `fedra` extends them with
//! a resampling + degradation ladder:
//!
//! 1. healthy — sample one silo uniformly;
//! 2. some silos down — resample among the survivors (answers stay
//!    single-round, error grows slightly);
//! 3. all silos down — degrade to the provider-only grid estimate
//!    (no rounds, still bounded error from g₀);
//! 4. EXACT, by contrast, hard-fails the moment any silo is down.

use fedra::prelude::*;

fn main() {
    let spec = WorkloadSpec::default()
        .with_total_objects(80_000)
        .with_silos(6)
        .with_seed(4242);
    let dataset = spec.generate();
    let federation = FederationBuilder::new(dataset.bounds())
        .grid_cell_len(1.0)
        .build(dataset.into_partitions());

    let query = FraQuery::circle(Point::new(0.0, -95.0), 2.5, AggFunc::Count);
    let truth = Exact::new().execute(&federation, &query).value;
    println!("query: {query}\nground truth: {truth}\n");

    let noniid = NonIidEst::new(1);
    let stages: [(&str, &[SiloId]); 4] = [
        ("all 6 silos healthy", &[]),
        ("2 silos down", &[1, 4]),
        ("5 silos down", &[0, 1, 2, 3, 4]),
        ("ALL silos down", &[0, 1, 2, 3, 4, 5]),
    ];

    println!(
        "{:>22} {:>14} {:>10} {:>8} {:>24}",
        "scenario", "NonIID-est", "rel.err", "rounds", "EXACT"
    );
    for (label, down) in stages {
        for &s in down {
            federation.set_silo_failed(s, true);
        }
        federation.reset_query_comm();
        let r = noniid.execute(&federation, &query);
        let rounds = federation.query_comm().rounds;
        let exact_outcome = match Exact::new().try_execute(&federation, &query) {
            Ok(x) => format!("{:.0}", x.value),
            Err(e) => truncate(&e.to_string(), 22),
        };
        println!(
            "{:>22} {:>14.1} {:>9.2}% {:>8} {:>24}",
            label,
            r.value,
            (r.value - truth).abs() / truth * 100.0,
            rounds,
            exact_outcome,
        );
        for &s in down {
            federation.set_silo_failed(s, false);
        }
    }

    println!(
        "\nnote: with every silo down the estimator answers from the grid\n\
         index alone (covered cells exact, boundary cells area-weighted) —\n\
         the dashboard stays up while the fleet reconnects."
    );
}

fn truncate(s: &str, n: usize) -> String {
    if s.len() <= n {
        s.to_string()
    } else {
        format!("{}…", &s[..n])
    }
}
