//! Failure injection: what happens to FRA answers when silos go dark.
//!
//! ```text
//! cargo run --release --example resilience
//! ```
//!
//! The paper's estimators assume healthy silos; `fedra` extends them with
//! a resampling + degradation ladder:
//!
//! 1. healthy — sample one silo uniformly;
//! 2. some silos down — resample among the survivors (answers stay
//!    single-round, error grows slightly);
//! 3. all silos down — degrade to the provider-only grid estimate
//!    (no rounds, still bounded error from g₀);
//! 4. EXACT, by contrast, hard-fails the moment any silo is down.
//!
//! A second ladder exercises the *timing* faults: a seeded [`FaultPlan`]
//! makes one silo slow (hedged past the threshold) and one silo flap
//! (retried through its down windows), with the breaker state checked
//! for leaks at the end.

use std::time::Duration;

use fedra::prelude::*;

fn main() {
    let spec = WorkloadSpec::default()
        .with_total_objects(80_000)
        .with_silos(6)
        .with_seed(4242);
    let dataset = spec.generate();
    let federation = FederationBuilder::new(dataset.bounds())
        .grid_cell_len(1.0)
        .build(dataset.into_partitions());

    let query = FraQuery::circle(Point::new(0.0, -95.0), 2.5, AggFunc::Count);
    let truth = Exact::new().execute(&federation, &query).value;
    println!("query: {query}\nground truth: {truth}\n");

    let noniid = NonIidEst::new(1);
    let stages: [(&str, &[SiloId]); 4] = [
        ("all 6 silos healthy", &[]),
        ("2 silos down", &[1, 4]),
        ("5 silos down", &[0, 1, 2, 3, 4]),
        ("ALL silos down", &[0, 1, 2, 3, 4, 5]),
    ];

    println!(
        "{:>22} {:>14} {:>10} {:>8} {:>24}",
        "scenario", "NonIID-est", "rel.err", "rounds", "EXACT"
    );
    for (label, down) in stages {
        for &s in down {
            federation.set_silo_failed(s, true);
        }
        federation.reset_query_comm();
        let r = noniid.execute(&federation, &query);
        let rounds = federation.query_comm().rounds;
        let exact_outcome = match Exact::new().try_execute(&federation, &query) {
            Ok(x) => format!("{:.0}", x.value),
            Err(e) => truncate(&e.to_string(), 22),
        };
        println!(
            "{:>22} {:>14.1} {:>9.2}% {:>8} {:>24}",
            label,
            r.value,
            (r.value - truth).abs() / truth * 100.0,
            rounds,
            exact_outcome,
        );
        for &s in down {
            federation.set_silo_failed(s, false);
        }
    }

    println!(
        "\nnote: with every silo down the estimator answers from the grid\n\
         index alone (covered cells exact, boundary cells area-weighted) —\n\
         the dashboard stays up while the fleet reconnects."
    );

    chaos_stages();
}

/// Timing faults: a slow silo that trips the hedge threshold and a
/// flapping silo that refuses every other frame. A deterministic seed
/// makes the whole run reproducible.
fn chaos_stages() {
    let spec = WorkloadSpec::default()
        .with_total_objects(80_000)
        .with_silos(6)
        .with_seed(4242);
    let dataset = spec.generate();
    let all = dataset.all_objects();
    let federation = FederationBuilder::new(dataset.bounds())
        .grid_cell_len(1.0)
        .fault_plan(
            FaultPlan::seeded(4242)
                .slow_silo(0, Duration::from_millis(40))
                .flapping_silo(1, 2, 1),
        )
        .call_policy(CallPolicy {
            deadline: Some(Duration::from_secs(2)),
            hedge_after: Some(Duration::from_millis(10)),
            ..Default::default()
        })
        .health_config(HealthConfig::enabled())
        .build(dataset.into_partitions());

    // Truth is computed with the chaos disarmed, then the plan goes live.
    let mut generator = QueryGenerator::new(&all, 99);
    let queries: Vec<FraQuery> = generator
        .circles(2.5, 60)
        .into_iter()
        .map(|r| FraQuery::new(r, AggFunc::Count))
        .collect();
    federation.set_faults_armed(false);
    let exact = Exact::new();
    let truths: Vec<f64> = queries
        .iter()
        .map(|q| exact.execute(&federation, q).value)
        .collect();
    federation.set_faults_armed(true);

    println!("\n--- timing faults (slow silo 0 at 40ms, flapping silo 1) ---");
    let alg = NonIidEst::new(7);
    let obs = ObsContext::new();
    federation.reset_query_comm();
    let batch =
        QueryEngine::per_silo(&alg, &federation).execute_batch_with(&federation, &queries, &obs);
    let worst = batch
        .results
        .iter()
        .zip(&truths)
        .filter(|(_, &t)| t >= 50.0)
        .map(|(r, &t)| r.as_ref().map(|r| r.relative_error(t)).unwrap_or(1.0))
        .fold(0.0f64, f64::max);
    let snap = obs.snapshot();
    let get = |name: &str| snap.counters.get(name).copied().unwrap_or(0);
    println!(
        "{} queries in {:?}: {} failed, worst rel.err {:.2}%",
        queries.len(),
        batch.wall_time,
        batch.failures(),
        worst * 100.0
    );
    println!(
        "hedges fired/won: {}/{}, retries: {}, resamples: {}, degraded: {}",
        get("fedra_hedges_fired_total"),
        get("fedra_hedges_won_total"),
        get("fedra_retries_total"),
        get("fedra_resamples_total"),
        get("fedra_degraded_total"),
    );
    for s in federation.health().snapshot() {
        println!(
            "silo {}: {} (ok {}, failed {}, opened {}x)",
            s.silo,
            s.state.label(),
            s.successes_total,
            s.failures_total,
            s.opened_total,
        );
    }
    // A breaker still open (or probing) after the run ended is a leak:
    // the ci chaos smoke greps for this exact line.
    println!("breaker leaks: {}", federation.health().non_closed().len());
}

fn truncate(s: &str, n: usize) -> String {
    if s.len() <= n {
        s.to_string()
    } else {
        format!("{}…", &s[..n])
    }
}
