//! A federation spanning PROCESSES: silos hosted by standalone
//! `fedra-silo serve` processes, joined via
//! `FederationBuilder::connect_remote`.
//!
//! Three modes, designed so the local and remote runs print
//! byte-identical `ANSWER` lines (ci.sh diffs them):
//!
//! ```text
//! # 1. Export the workload: one CSV per silo + the federation bounds.
//! cargo run --release --example remote_federation -- export /tmp/fedra
//!
//! # 2. Reference run, silos in-process:
//! cargo run --release --example remote_federation -- local
//!
//! # 3. Start one fedra-silo per CSV, then query them remotely:
//! fedra-silo serve --addr unix:/tmp/fedra/s0.sock --data /tmp/fedra/silo0.csv \
//!     --silo-id 0 --bounds $(cat /tmp/fedra/bounds.txt) &
//! ... (silo 1, silo 2) ...
//! cargo run --release --example remote_federation -- remote \
//!     /tmp/fedra/bounds.txt unix:/tmp/fedra/s0.sock unix:/tmp/fedra/s1.sock \
//!     unix:/tmp/fedra/s2.sock
//! ```
//!
//! Identical answers need identical silo state: same partition, same
//! `--bounds`, same `--lsr-seed` (the defaults match the builder's).

use std::process::ExitCode;

use fedra::prelude::*;
use fedra::workload::write_csv;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match args.first().map(String::as_str) {
        Some("export") => export(args.get(1).map(String::as_str).unwrap_or("/tmp/fedra")),
        Some("local") | None => local(),
        Some("remote") => remote(&args[1..]),
        Some(other) => {
            eprintln!("error: unknown mode `{other}` (export | local | remote)");
            ExitCode::FAILURE
        }
    }
}

/// The shared workload: deterministic by seed, so every mode sees the
/// same objects.
fn dataset() -> Dataset {
    WorkloadSpec::small().generate()
}

/// Writes one CSV per silo plus `bounds.txt` (the `--bounds` value every
/// `fedra-silo` MUST be started with).
fn export(dir: &str) -> ExitCode {
    if let Err(e) = std::fs::create_dir_all(dir) {
        eprintln!("error: could not create {dir}: {e}");
        return ExitCode::FAILURE;
    }
    let dataset = dataset();
    let bounds = dataset.bounds();
    let partitions = dataset.into_partitions();
    let num_silos = partitions.len();
    for (k, objects) in partitions.into_iter().enumerate() {
        // A dataset holding only silo k's rows: write_csv keeps the silo
        // column, so `fedra-silo --silo-id k` recovers the partition.
        let mut sparse: Vec<Vec<SpatialObject>> = vec![Vec::new(); k + 1];
        sparse[k] = objects;
        let single = Dataset::from_partitions(bounds, sparse);
        let path = format!("{dir}/silo{k}.csv");
        if let Err(e) = write_csv(&single, &path) {
            eprintln!("error: could not write {path}: {e}");
            return ExitCode::FAILURE;
        }
    }
    let bounds_spec = format!(
        "{},{},{},{}",
        bounds.min.x, bounds.min.y, bounds.max.x, bounds.max.y
    );
    if let Err(e) = std::fs::write(format!("{dir}/bounds.txt"), &bounds_spec) {
        eprintln!("error: could not write bounds.txt: {e}");
        return ExitCode::FAILURE;
    }
    println!("exported {num_silos} silo CSVs + bounds.txt to {dir}");
    println!("bounds: {bounds_spec}");
    ExitCode::SUCCESS
}

/// Reference run: the same federation, silos in-process.
fn local() -> ExitCode {
    let dataset = dataset();
    let federation = FederationBuilder::new(dataset.bounds())
        .grid_cell_len(1.0)
        .build(dataset.into_partitions());
    run_queries(&federation)
}

/// `remote <bounds.txt> <addr>...` — every silo is a `fedra-silo`
/// process; the provider only ever sees bytes on sockets.
fn remote(args: &[String]) -> ExitCode {
    let [bounds_file, addrs @ ..] = args else {
        eprintln!("usage: remote_federation remote <bounds.txt> <addr>...");
        return ExitCode::FAILURE;
    };
    if addrs.is_empty() {
        eprintln!("error: at least one silo address is required");
        return ExitCode::FAILURE;
    }
    let bounds = match read_bounds(bounds_file) {
        Some(bounds) => bounds,
        None => {
            eprintln!("error: {bounds_file} does not hold x0,y0,x1,y1");
            return ExitCode::FAILURE;
        }
    };
    let mut builder = FederationBuilder::new(bounds).grid_cell_len(1.0);
    for addr in addrs {
        builder = builder.connect_remote(addr);
    }
    match builder.try_build(Vec::new()) {
        Ok(federation) => run_queries(&federation),
        Err(e) => {
            eprintln!("error: remote federation setup failed: {e}");
            ExitCode::FAILURE
        }
    }
}

fn read_bounds(path: &str) -> Option<Rect> {
    let text = std::fs::read_to_string(path).ok()?;
    let parts: Vec<f64> = text
        .trim()
        .split(',')
        .map(|p| p.trim().parse().ok())
        .collect::<Option<_>>()?;
    match parts[..] {
        [x0, y0, x1, y1] => Some(Rect::new(Point::new(x0, y0), Point::new(x1, y1))),
        _ => None,
    }
}

/// The quickstart query, six ways. The `ANSWER` lines are the diffable
/// contract: local and remote runs must print them byte-identically.
fn run_queries(federation: &Federation) -> ExitCode {
    println!(
        "federation up: {} silos, {} objects",
        federation.num_silos(),
        federation.total_objects()
    );
    let query = FraQuery::circle(Point::new(0.0, -95.0), 2.0, AggFunc::Count);
    let params = AccuracyParams::default();
    let algorithms: Vec<Box<dyn FraAlgorithm>> = vec![
        Box::new(Exact::new()),
        Box::new(Opta::new()),
        Box::new(IidEst::new(1)),
        Box::new(IidEstLsr::new(2, params)),
        Box::new(NonIidEst::new(3)),
        Box::new(NonIidEstLsr::new(4, params)),
    ];
    for alg in &algorithms {
        federation.reset_query_comm();
        let r = alg.execute(federation, &query);
        let comm = federation.query_comm();
        println!(
            "ANSWER {} {} bytes={}",
            alg.name(),
            r.value,
            comm.total_bytes()
        );
    }
    ExitCode::SUCCESS
}
