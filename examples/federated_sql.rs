//! SQL-style federated aggregation: strings in, estimates out.
//!
//! ```text
//! cargo run --release --example federated_sql
//! ```
//!
//! The paper's follow-up system (Hu-Fu) wraps federated spatial
//! aggregation in SQL; `fedra_core::sql` implements the minimal dialect.
//! This example parses a handful of statements, answers each with one
//! silo contact (NonIID-est), and cross-checks against EXACT.

use fedra::core::sql;
use fedra::prelude::*;

fn main() {
    let dataset = WorkloadSpec::default()
        .with_total_objects(80_000)
        .with_silos(6)
        .with_seed(4096)
        .generate();
    let federation = FederationBuilder::new(dataset.bounds())
        .grid_cell_len(1.0)
        .build(dataset.into_partitions());

    let statements = [
        "SELECT COUNT(*)       FROM fleet WHERE WITHIN(0.0, -95.0, 2.0)",
        "SELECT SUM(measure)   FROM fleet WHERE WITHIN(0.0, -95.0, 2.0)",
        "SELECT AVG(measure)   FROM fleet WHERE WITHIN(8.0, -88.0, 1.5)",
        "SELECT STDEV(measure) FROM fleet WHERE WITHIN(8.0, -88.0, 1.5)",
        "SELECT COUNT(*)       FROM fleet WHERE INSIDE(-10.0, -105.0, 10.0, -85.0)",
    ];

    let estimator = NonIidEst::new(11);
    let exact = Exact::new();
    println!(
        "{:<78} {:>12} {:>12} {:>8}",
        "statement", "estimate", "exact", "rounds"
    );
    for statement in statements {
        let query = match sql::parse(statement) {
            Ok(q) => q,
            Err(e) => {
                eprintln!("parse error for `{statement}`: {e}");
                continue;
            }
        };
        federation.reset_query_comm();
        let estimate = estimator.execute(&federation, &query);
        let rounds = federation.query_comm().rounds;
        let truth = exact.execute(&federation, &query);
        println!(
            "{:<78} {:>12.2} {:>12.2} {:>8}",
            statement.trim(),
            estimate.value,
            truth.value,
            rounds
        );
    }

    // And a deliberately bad statement, to show the error surface.
    println!();
    match sql::parse("SELECT MEDIAN(measure) FROM fleet WHERE WITHIN(0, 0, 1)") {
        Err(e) => println!("rejected statement: {e}"),
        Ok(_) => unreachable!("MEDIAN is not a supported function"),
    }
}
