//! Empirical error vs the Sec. 6 theory: does practice beat the bounds?
//!
//! ```text
//! cargo run --release --example accuracy_theory
//! ```
//!
//! Two checks, each against its own theorem:
//!
//! 1. **Lemma 1 (local query).** Query one silo's LSR-Forest directly and
//!    compare its local error against the Chernoff failure bound at the
//!    selected level. The empirical violation rate must stay below δ-ish
//!    (the bound is loose, so usually far below).
//! 2. **Theorem 4 (end-to-end).** Run NonIID-est+LSR across the
//!    federation and compare against the combined bound
//!    `4·exp(−ε²·ans²/(2·sum₀²))`. At small ε the analytic bound is
//!    vacuous (≈100 %) — the interesting observation is how much better
//!    practice behaves.

use fedra::core::theory;
use fedra::federation::{LocalMode, Request, Response};
use fedra::prelude::*;

fn main() {
    let spec = WorkloadSpec::default()
        .with_total_objects(100_000)
        .with_silos(6)
        .with_seed(1717);
    let dataset = spec.generate();
    let all = dataset.all_objects();
    let federation = FederationBuilder::new(dataset.bounds())
        .grid_cell_len(1.0)
        .build(dataset.into_partitions());

    let mut generator = QueryGenerator::new(&all, 3);
    let ranges = generator.circles(2.0, 120);
    let queries: Vec<FraQuery> = ranges
        .iter()
        .map(|r| FraQuery::new(*r, AggFunc::Count))
        .collect();
    let exact = Exact::new();
    let truth: Vec<f64> = queries
        .iter()
        .map(|q| exact.execute(&federation, q).value)
        .collect();

    println!("{} queries, radius 2 km, |P| = 100k, m = 6", queries.len());

    // ---- Check 1: Lemma 1 at silo 0 -----------------------------------
    println!("\n[1] local LSR query at silo 0 vs the Lemma-1 bound (delta = 0.01):");
    println!(
        "{:>8} {:>12} {:>18} {:>16} {:>12}",
        "epsilon", "local MRE", "P[err > epsilon]", "Lemma-1 bound", "mean level"
    );
    let delta = 0.01;
    for &epsilon in &[0.05f64, 0.10, 0.15, 0.20, 0.25] {
        let mut err_sum = 0.0;
        let mut violations = 0usize;
        let mut counted = 0usize;
        let mut level_sum = 0.0;
        let mut bound_sum = 0.0;
        for r in &ranges {
            let local_exact = match federation.call(
                0,
                &Request::Aggregate {
                    range: *r,
                    mode: LocalMode::Exact,
                },
            ) {
                Ok(Response::Agg(a)) => a.count,
                other => panic!("unexpected {other:?}"),
            };
            if local_exact == 0.0 {
                continue;
            }
            let sum0 = fedra::core::helpers::rough_count(&federation, r);
            let approx = match federation.call(
                0,
                &Request::Aggregate {
                    range: *r,
                    mode: LocalMode::Lsr {
                        epsilon,
                        delta,
                        sum0,
                    },
                },
            ) {
                Ok(Response::Agg(a)) => a.count,
                other => panic!("unexpected {other:?}"),
            };
            let rel = (approx - local_exact).abs() / local_exact;
            err_sum += rel;
            if rel > epsilon {
                violations += 1;
            }
            let level = theory::select_level(epsilon, delta, sum0);
            level_sum += level as f64;
            bound_sum += theory::lemma1_failure_bound(epsilon, level, local_exact);
            counted += 1;
        }
        println!(
            "{:>8.2} {:>11.2}% {:>17.1}% {:>15.1}% {:>12.1}",
            epsilon,
            err_sum / counted as f64 * 100.0,
            violations as f64 / counted as f64 * 100.0,
            bound_sum / counted as f64 * 100.0,
            level_sum / counted as f64,
        );
    }

    // ---- Check 2: Theorem 4 end-to-end --------------------------------
    println!("\n[2] NonIID-est+LSR end-to-end vs the Theorem-4 bound:");
    println!(
        "{:>8} {:>12} {:>18} {:>18}",
        "epsilon", "MRE", "P[err > epsilon]", "Theorem-4 bound"
    );
    for &epsilon in &[0.05f64, 0.10, 0.15, 0.20, 0.25] {
        let alg = NonIidEstLsr::new(epsilon.to_bits(), AccuracyParams::new(epsilon, delta));
        let mut err_sum = 0.0;
        let mut violations = 0usize;
        let mut counted = 0usize;
        let mut bound_sum = 0.0;
        for (q, &t) in queries.iter().zip(&truth) {
            if t == 0.0 {
                continue;
            }
            let r = alg.execute(&federation, q);
            let rel = (r.value - t).abs() / t;
            err_sum += rel;
            if rel > epsilon {
                violations += 1;
            }
            let sum0 = fedra::core::helpers::rough_count(&federation, &q.range);
            bound_sum += theory::theorem_failure_bound(epsilon, t, sum0);
            counted += 1;
        }
        println!(
            "{:>8.2} {:>11.2}% {:>17.1}% {:>17.1}%",
            epsilon,
            err_sum / counted as f64 * 100.0,
            violations as f64 / counted as f64 * 100.0,
            bound_sum / counted as f64 * 100.0,
        );
    }

    println!(
        "\nreading: measured violation rates sit far below the analytic\n\
         bounds — the theory certifies the worst case, practice is much\n\
         kinder (the paper's Figs. 6–7 observation)."
    );

    println!("\ninverse design: epsilon needed for a target confidence at ans/sum0 = 0.8:");
    for confidence in [0.9, 0.95, 0.99] {
        let eps = theory::epsilon_for_confidence(confidence, 800.0, 1000.0);
        println!(
            "  {:>4.0}% confidence -> epsilon <= {eps:.3}",
            confidence * 100.0
        );
    }
}
