//! Concurrency stress tests for the federation runtime: many provider
//! threads hammering many silos, interleaved with failure flapping, must
//! never deadlock, drop a reply, or misroute a response.

use std::sync::atomic::{AtomicU64, Ordering};

use fedra_federation::{FederationBuilder, LocalMode, Request, Response};
use fedra_geo::{Point, Range, Rect, SpatialObject};
use fedra_index::histogram::MinSkewConfig;

fn build(m: usize, per_silo: usize) -> fedra_federation::Federation {
    let bounds = Rect::new(Point::new(0.0, 0.0), Point::new(100.0, 100.0));
    let mut state = 1234u64;
    let partitions: Vec<Vec<SpatialObject>> = (0..m)
        .map(|_| {
            (0..per_silo)
                .map(|i| {
                    state = state
                        .wrapping_mul(6364136223846793005)
                        .wrapping_add(1442695040888963407);
                    let x = (state >> 11) as f64 / (1u64 << 53) as f64 * 100.0;
                    state = state
                        .wrapping_mul(6364136223846793005)
                        .wrapping_add(1442695040888963407);
                    let y = (state >> 11) as f64 / (1u64 << 53) as f64 * 100.0;
                    SpatialObject::at(x, y, (i % 5) as f64)
                })
                .collect()
        })
        .collect();
    FederationBuilder::new(bounds)
        .grid_cell_len(5.0)
        .histogram_config(MinSkewConfig {
            resolution: 8,
            budget: 8,
        })
        .build(partitions)
}

#[test]
fn sixteen_threads_hammering_four_silos() {
    let fed = build(4, 2_000);
    let q = Range::circle(Point::new(50.0, 50.0), 20.0);
    let expected = match fed
        .call(
            0,
            &Request::Aggregate {
                range: q,
                mode: LocalMode::Exact,
            },
        )
        .unwrap()
    {
        Response::Agg(a) => a.count,
        other => panic!("unexpected {other:?}"),
    };
    fed.reset_query_comm(); // drop the oracle call from the round count
    let completed = AtomicU64::new(0);
    std::thread::scope(|scope| {
        for t in 0..16 {
            let fed = &fed;
            let completed = &completed;
            scope.spawn(move || {
                for i in 0..200 {
                    let silo = (t + i) % fed.num_silos();
                    match fed
                        .call(
                            silo,
                            &Request::Aggregate {
                                range: q,
                                mode: LocalMode::Exact,
                            },
                        )
                        .unwrap()
                    {
                        Response::Agg(a) => {
                            // All silos hold statistically similar data;
                            // silo 0's answer is only checked for silo 0.
                            if silo == 0 {
                                assert_eq!(a.count, expected);
                            }
                        }
                        other => panic!("unexpected {other:?}"),
                    }
                    completed.fetch_add(1, Ordering::Relaxed);
                }
            });
        }
    });
    assert_eq!(completed.load(Ordering::Relaxed), 16 * 200);
    assert_eq!(fed.query_comm().rounds, 16 * 200);
}

#[test]
fn failure_flapping_under_load() {
    let fed = build(3, 1_000);
    let q = Range::circle(Point::new(50.0, 50.0), 15.0);
    std::thread::scope(|scope| {
        // One thread flaps silo 1's failure flag...
        scope.spawn(|| {
            for i in 0..200 {
                fed.set_silo_failed(1, i % 2 == 0);
                std::hint::spin_loop();
            }
            fed.set_silo_failed(1, false);
        });
        // ...while workers keep querying. Errors are fine; panics and
        // hangs are not.
        for _ in 0..4 {
            scope.spawn(|| {
                for _ in 0..200 {
                    let _ = fed.call(
                        1,
                        &Request::Aggregate {
                            range: q,
                            mode: LocalMode::Exact,
                        },
                    );
                }
            });
        }
    });
    // After the flapping stops, the silo serves again.
    assert!(fed
        .call(
            1,
            &Request::Aggregate {
                range: q,
                mode: LocalMode::Exact
            }
        )
        .is_ok());
}

#[test]
fn mixed_request_types_interleave_cleanly() {
    let fed = build(3, 1_500);
    let spec = *fed.merged_grid().spec();
    let q = Range::circle(Point::new(50.0, 50.0), 12.0);
    let boundary = spec.classify(&q).boundary;
    std::thread::scope(|scope| {
        for t in 0..8 {
            let fed = &fed;
            let boundary = &boundary;
            scope.spawn(move || {
                for i in 0..100 {
                    let silo = (t + i) % fed.num_silos();
                    match i % 4 {
                        0 => {
                            let r = fed
                                .call(
                                    silo,
                                    &Request::Aggregate {
                                        range: q,
                                        mode: LocalMode::Exact,
                                    },
                                )
                                .unwrap();
                            assert!(matches!(r, Response::Agg(_)));
                        }
                        1 => {
                            let r = fed
                                .call(
                                    silo,
                                    &Request::CellContributions {
                                        range: q,
                                        cells: boundary.clone(),
                                        mode: LocalMode::Exact,
                                    },
                                )
                                .unwrap();
                            match r {
                                Response::AggVec(v) => assert_eq!(v.len(), boundary.len()),
                                other => panic!("unexpected {other:?}"),
                            }
                        }
                        2 => {
                            let r = fed
                                .call(silo, &Request::HistogramEstimate { range: q })
                                .unwrap();
                            assert!(matches!(r, Response::Agg(_)));
                        }
                        _ => {
                            assert_eq!(fed.call(silo, &Request::Ping).unwrap(), Response::Pong);
                        }
                    }
                }
            });
        }
    });
}

#[test]
fn many_federations_coexist_and_shut_down() {
    // Build/drop several federations concurrently: thread naming, channel
    // teardown and Drop joins must not interfere across instances.
    std::thread::scope(|scope| {
        for _ in 0..4 {
            scope.spawn(|| {
                for _ in 0..3 {
                    let fed = build(2, 300);
                    let q = Range::circle(Point::new(50.0, 50.0), 10.0);
                    let r = fed
                        .call(
                            0,
                            &Request::Aggregate {
                                range: q,
                                mode: LocalMode::Exact,
                            },
                        )
                        .unwrap();
                    assert!(matches!(r, Response::Agg(_)));
                    drop(fed);
                }
            });
        }
    });
}

#[test]
fn lsr_requests_under_concurrency_stay_in_reasonable_range() {
    let fed = build(4, 4_000);
    let q = Range::circle(Point::new(50.0, 50.0), 25.0);
    let exact = match fed
        .call(
            0,
            &Request::Aggregate {
                range: q,
                mode: LocalMode::Exact,
            },
        )
        .unwrap()
    {
        Response::Agg(a) => a.count,
        other => panic!("unexpected {other:?}"),
    };
    std::thread::scope(|scope| {
        for _ in 0..8 {
            let fed = &fed;
            scope.spawn(move || {
                for _ in 0..50 {
                    match fed
                        .call(
                            0,
                            &Request::Aggregate {
                                range: q,
                                mode: LocalMode::Lsr {
                                    epsilon: 0.2,
                                    delta: 0.05,
                                    sum0: exact,
                                },
                            },
                        )
                        .unwrap()
                    {
                        Response::Agg(a) => {
                            let rel = (a.count - exact).abs() / exact;
                            assert!(rel < 0.6, "LSR answer drifted: {} vs {exact}", a.count);
                        }
                        other => panic!("unexpected {other:?}"),
                    }
                }
            });
        }
    });
}

#[test]
fn warm_start_skips_cell_transfer_and_validates() {
    let bounds = Rect::new(Point::new(0.0, 0.0), Point::new(100.0, 100.0));
    let partitions: Vec<Vec<SpatialObject>> = (0..3)
        .map(|k| {
            (0..800)
                .map(|i| SpatialObject::at((i % 40) as f64 * 2.5, (i / 40) as f64 * 5.0, k as f64))
                .collect()
        })
        .collect();
    let cold = FederationBuilder::new(bounds)
        .grid_cell_len(5.0)
        .histogram_config(MinSkewConfig {
            resolution: 8,
            budget: 8,
        })
        .build(partitions.clone());
    let cold_setup = cold.setup_comm().total_bytes();
    assert_eq!(cold.warm_start_hits(), 0);
    let snapshot = cold.snapshot();
    drop(cold);

    // Warm restart on identical data: every silo hits the cache, setup
    // traffic collapses (no cell vectors on the wire).
    let warm = FederationBuilder::new(bounds)
        .grid_cell_len(5.0)
        .histogram_config(MinSkewConfig {
            resolution: 8,
            budget: 8,
        })
        .warm_start(snapshot.clone())
        .build(partitions.clone());
    assert_eq!(warm.warm_start_hits(), 3);
    let warm_setup = warm.setup_comm().total_bytes();
    assert!(
        warm_setup * 2 < cold_setup,
        "warm setup {warm_setup} should be far below cold {cold_setup}"
    );
    // The provider state must be identical either way.
    let spec = *warm.merged_grid().spec();
    let fresh = FederationBuilder::new(bounds)
        .grid_cell_len(5.0)
        .histogram_config(MinSkewConfig {
            resolution: 8,
            budget: 8,
        })
        .build(partitions.clone());
    for id in 0..spec.num_cells() as u32 {
        assert_eq!(
            warm.merged_grid().cell(id).count,
            fresh.merged_grid().cell(id).count
        );
    }

    // Changed data at one silo: its checksum mismatches, full transfer
    // happens for that silo only, and the answers stay correct.
    let mut changed = partitions.clone();
    changed[1].push(SpatialObject::at(50.0, 50.0, 9.0));
    let partial = FederationBuilder::new(bounds)
        .grid_cell_len(5.0)
        .histogram_config(MinSkewConfig {
            resolution: 8,
            budget: 8,
        })
        .warm_start(snapshot.clone())
        .build(changed);
    assert_eq!(partial.warm_start_hits(), 2);
    assert_eq!(partial.total_objects(), 2401.0);

    // Mismatched geometry: the snapshot is ignored entirely.
    let ignored = FederationBuilder::new(bounds)
        .grid_cell_len(10.0)
        .histogram_config(MinSkewConfig {
            resolution: 8,
            budget: 8,
        })
        .warm_start(snapshot)
        .build(partitions);
    assert_eq!(ignored.warm_start_hits(), 0);
}

#[test]
fn snapshot_survives_disk_round_trip() {
    let bounds = Rect::new(Point::new(0.0, 0.0), Point::new(100.0, 100.0));
    let partitions: Vec<Vec<SpatialObject>> = (0..2)
        .map(|_| {
            (0..200)
                .map(|i| SpatialObject::at(i as f64 / 2.0, 50.0, 1.0))
                .collect()
        })
        .collect();
    let fed = FederationBuilder::new(bounds)
        .grid_cell_len(10.0)
        .histogram_config(MinSkewConfig {
            resolution: 8,
            budget: 8,
        })
        .build(partitions.clone());
    let snapshot = fed.snapshot();
    let dir = std::env::temp_dir().join("fedra-warm-start-test");
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("provider.snap");
    snapshot.save_to(&path).unwrap();
    let loaded = fedra_federation::ProviderSnapshot::load_from(&path).unwrap();
    assert_eq!(loaded, snapshot);
    let warm = FederationBuilder::new(bounds)
        .grid_cell_len(10.0)
        .histogram_config(MinSkewConfig {
            resolution: 8,
            budget: 8,
        })
        .warm_start(loaded)
        .build(partitions);
    assert_eq!(warm.warm_start_hits(), 2);
    let _ = std::fs::remove_file(&path);
}
