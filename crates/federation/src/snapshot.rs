//! Provider-state snapshots: warm restarts without re-shipping Alg. 1.
//!
//! The grid transfer of Alg. 1 is the only setup step whose communication
//! grows with `|g|` (every silo ships its full cell vector). Since the
//! federated setting keeps partitions fixed, a service provider that
//! restarts can reuse yesterday's grids: it saves a [`ProviderSnapshot`]
//! (wire-serialized to a file), and on the next build the silos are asked
//! to rebuild their grid *locally* and return only a checksum aggregate.
//! If any silo's data changed, its checksum mismatches and the builder
//! transparently falls back to the full transfer for that silo.

use std::path::Path;

use bytes::{Bytes, BytesMut};

use fedra_geo::Rect;
use fedra_index::grid::{GridIndex, GridSpec};
use fedra_index::pool::WorkerPool;
use fedra_index::Aggregate;

use crate::wire::{Wire, WireError, WireResult};

/// A serializable copy of the provider's per-silo grid indices.
#[derive(Debug, Clone, PartialEq)]
pub struct ProviderSnapshot {
    /// Grid bounds the snapshot was taken with.
    pub bounds: Rect,
    /// Cell side length.
    pub cell_len: f64,
    /// Per-silo cell vectors + out-of-bounds counts, silo order.
    pub grids: Vec<(Vec<Aggregate>, u64)>,
}

impl ProviderSnapshot {
    /// Number of silos captured.
    pub fn num_silos(&self) -> usize {
        self.grids.len()
    }

    /// Rebuilds the [`GridIndex`] for silo `k`.
    pub fn grid(&self, k: usize) -> GridIndex {
        let spec = GridSpec::new(self.bounds, self.cell_len);
        GridIndex::from_parts(spec, self.grids[k].0.clone(), self.grids[k].1)
    }

    /// Rebuilds every silo's [`GridIndex`] at once, cloning the cell
    /// vectors on `pool`'s workers. Output order is silo order — the
    /// result is element-for-element identical to calling [`Self::grid`]
    /// for each `k` in turn.
    pub fn materialize_with(&self, pool: &WorkerPool) -> Vec<GridIndex> {
        let spec = GridSpec::new(self.bounds, self.cell_len);
        pool.map(&self.grids, |_, (cells, outside)| {
            GridIndex::from_parts(spec, cells.clone(), *outside)
        })
    }

    /// Serializes to a byte buffer.
    pub fn to_bytes(&self) -> Bytes {
        Wire::to_bytes(self)
    }

    /// Writes the snapshot to a file.
    pub fn save_to(&self, path: impl AsRef<Path>) -> std::io::Result<()> {
        std::fs::write(path, Wire::to_bytes(self))
    }

    /// Reads a snapshot from a file.
    pub fn load_from(path: impl AsRef<Path>) -> std::io::Result<Self> {
        let raw = std::fs::read(path)?;
        Wire::from_bytes(Bytes::from(raw))
            .map_err(|e| std::io::Error::new(std::io::ErrorKind::InvalidData, e))
    }
}

impl Wire for ProviderSnapshot {
    fn encode(&self, buf: &mut BytesMut) {
        self.bounds.encode(buf);
        self.cell_len.encode(buf);
        (self.grids.len() as u32).encode(buf);
        for (cells, outside) in &self.grids {
            cells.encode(buf);
            outside.encode(buf);
        }
    }

    fn encoded_len(&self) -> usize {
        self.bounds.encoded_len()
            + self.cell_len.encoded_len()
            + 4
            + self
                .grids
                .iter()
                .map(|(cells, outside)| cells.encoded_len() + outside.encoded_len())
                .sum::<usize>()
    }

    fn decode(buf: &mut Bytes) -> WireResult<Self> {
        let bounds = Rect::decode(buf)?;
        let cell_len = f64::decode(buf)?;
        let n = u32::decode(buf)? as usize;
        if n > 1 << 20 {
            return Err(WireError::BadLength {
                context: "snapshot silo count",
                len: n,
            });
        }
        let mut grids = Vec::with_capacity(n);
        for _ in 0..n {
            let cells = Vec::<Aggregate>::decode(buf)?;
            let outside = u64::decode(buf)?;
            grids.push((cells, outside));
        }
        Ok(Self {
            bounds,
            cell_len,
            grids,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fedra_geo::Point;

    fn sample_snapshot() -> ProviderSnapshot {
        let bounds = Rect::new(Point::new(0.0, 0.0), Point::new(10.0, 10.0));
        let spec = GridSpec::new(bounds, 5.0);
        let mut cells = vec![Aggregate::ZERO; spec.num_cells()];
        cells[1] = Aggregate {
            count: 3.0,
            sum: 6.0,
            sum_sqr: 14.0,
        };
        ProviderSnapshot {
            bounds,
            cell_len: 5.0,
            grids: vec![(cells.clone(), 0), (cells, 2)],
        }
    }

    #[test]
    fn wire_round_trip() {
        let snap = sample_snapshot();
        let back = ProviderSnapshot::from_bytes(Wire::to_bytes(&snap)).unwrap();
        assert_eq!(back, snap);
    }

    #[test]
    fn grid_reconstruction() {
        let snap = sample_snapshot();
        let g = snap.grid(1);
        assert_eq!(g.cell(1).count, 3.0);
        assert_eq!(g.outside_count(), 2);
        assert_eq!(g.total().sum, 6.0);
    }

    #[test]
    fn file_round_trip() {
        let snap = sample_snapshot();
        let dir = std::env::temp_dir().join("fedra-snapshot-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("snap.bin");
        snap.save_to(&path).unwrap();
        let back = ProviderSnapshot::load_from(&path).unwrap();
        assert_eq!(back, snap);
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn corrupt_file_is_an_error() {
        let dir = std::env::temp_dir().join("fedra-snapshot-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("corrupt.bin");
        std::fs::write(&path, b"definitely not a snapshot").unwrap();
        assert!(ProviderSnapshot::load_from(&path).is_err());
        let _ = std::fs::remove_file(&path);
    }
}
