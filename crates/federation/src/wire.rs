//! Binary wire format for provider ↔ silo messages.
//!
//! The paper's communication-cost metric counts what actually crosses the
//! network between the service provider and the data silos. To measure it
//! honestly, every message in `fedra` — even though silos run as threads in
//! the same process — is serialized to a byte buffer with this codec and
//! the buffer's length is what the metrics record. The format is a simple
//! tagged little-endian layout: fixed-width scalars, `u32` length-prefixed
//! sequences, one tag byte per enum variant.

use bytes::{Buf, BufMut, Bytes, BytesMut};

use fedra_geo::{Circle, Point, Range, Rect};
use fedra_index::Aggregate;

/// Errors raised while decoding a wire buffer.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum WireError {
    /// The buffer ended before the value was complete.
    Truncated {
        /// What was being decoded.
        context: &'static str,
    },
    /// An enum tag byte had no corresponding variant.
    BadTag {
        /// What was being decoded.
        context: &'static str,
        /// The offending tag.
        tag: u8,
    },
    /// A length prefix was implausibly large for the remaining buffer.
    BadLength {
        /// What was being decoded.
        context: &'static str,
        /// The claimed element count.
        len: usize,
    },
}

impl std::fmt::Display for WireError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            WireError::Truncated { context } => {
                write!(f, "truncated buffer while decoding {context}")
            }
            WireError::BadTag { context, tag } => {
                write!(f, "unknown tag {tag} while decoding {context}")
            }
            WireError::BadLength { context, len } => {
                write!(f, "implausible length {len} while decoding {context}")
            }
        }
    }
}

impl std::error::Error for WireError {}

/// Result alias for decode operations.
pub type WireResult<T> = Result<T, WireError>;

/// Types that can be written to / read from the wire.
pub trait Wire: Sized {
    /// Appends the encoding of `self` to `buf`.
    fn encode(&self, buf: &mut BytesMut);
    /// Decodes a value, advancing `buf` past it.
    fn decode(buf: &mut Bytes) -> WireResult<Self>;

    /// Exact number of bytes [`Wire::encode`] will append for `self`.
    ///
    /// Used by [`Wire::to_bytes`] to reserve the full buffer up front, so
    /// the RPC hot path encodes every frame with a single allocation and
    /// no growth copies.
    fn encoded_len(&self) -> usize;

    /// Convenience: encodes into a fresh buffer sized exactly by
    /// [`Wire::encoded_len`].
    fn to_bytes(&self) -> Bytes {
        let mut buf = BytesMut::with_capacity(self.encoded_len());
        self.encode(&mut buf);
        buf.freeze()
    }

    /// Convenience: decodes from a whole buffer, requiring full consumption.
    fn from_bytes(mut bytes: Bytes) -> WireResult<Self> {
        let v = Self::decode(&mut bytes)?;
        if !bytes.is_empty() {
            return Err(WireError::BadLength {
                context: "trailing bytes",
                len: bytes.len(),
            });
        }
        Ok(v)
    }
}

#[inline]
fn need(buf: &Bytes, n: usize, context: &'static str) -> WireResult<()> {
    if buf.remaining() < n {
        Err(WireError::Truncated { context })
    } else {
        Ok(())
    }
}

impl Wire for u8 {
    fn encode(&self, buf: &mut BytesMut) {
        buf.put_u8(*self);
    }
    fn decode(buf: &mut Bytes) -> WireResult<Self> {
        need(buf, 1, "u8")?;
        Ok(buf.get_u8())
    }
    fn encoded_len(&self) -> usize {
        1
    }
}

impl Wire for u32 {
    fn encode(&self, buf: &mut BytesMut) {
        buf.put_u32_le(*self);
    }
    fn decode(buf: &mut Bytes) -> WireResult<Self> {
        need(buf, 4, "u32")?;
        Ok(buf.get_u32_le())
    }
    fn encoded_len(&self) -> usize {
        4
    }
}

impl Wire for u64 {
    fn encode(&self, buf: &mut BytesMut) {
        buf.put_u64_le(*self);
    }
    fn decode(buf: &mut Bytes) -> WireResult<Self> {
        need(buf, 8, "u64")?;
        Ok(buf.get_u64_le())
    }
    fn encoded_len(&self) -> usize {
        8
    }
}

impl Wire for usize {
    fn encode(&self, buf: &mut BytesMut) {
        buf.put_u64_le(*self as u64);
    }
    fn decode(buf: &mut Bytes) -> WireResult<Self> {
        need(buf, 8, "usize")?;
        Ok(buf.get_u64_le() as usize)
    }
    fn encoded_len(&self) -> usize {
        8
    }
}

impl Wire for f64 {
    fn encode(&self, buf: &mut BytesMut) {
        buf.put_f64_le(*self);
    }
    fn decode(buf: &mut Bytes) -> WireResult<Self> {
        need(buf, 8, "f64")?;
        Ok(buf.get_f64_le())
    }
    fn encoded_len(&self) -> usize {
        8
    }
}

impl Wire for bool {
    fn encode(&self, buf: &mut BytesMut) {
        buf.put_u8(*self as u8);
    }
    fn decode(buf: &mut Bytes) -> WireResult<Self> {
        need(buf, 1, "bool")?;
        match buf.get_u8() {
            0 => Ok(false),
            1 => Ok(true),
            tag => Err(WireError::BadTag {
                context: "bool",
                tag,
            }),
        }
    }
    fn encoded_len(&self) -> usize {
        1
    }
}

impl Wire for String {
    fn encode(&self, buf: &mut BytesMut) {
        (self.len() as u32).encode(buf);
        buf.put_slice(self.as_bytes());
    }
    fn decode(buf: &mut Bytes) -> WireResult<Self> {
        let len = u32::decode(buf)? as usize;
        need(buf, len, "string body")?;
        let raw = buf.split_to(len);
        String::from_utf8(raw.to_vec()).map_err(|_| WireError::BadTag {
            context: "string utf-8",
            tag: 0,
        })
    }
    fn encoded_len(&self) -> usize {
        4 + self.len()
    }
}

impl<T: Wire> Wire for Vec<T> {
    fn encode(&self, buf: &mut BytesMut) {
        (self.len() as u32).encode(buf);
        for item in self {
            item.encode(buf);
        }
    }
    fn decode(buf: &mut Bytes) -> WireResult<Self> {
        let len = u32::decode(buf)? as usize;
        // Each element takes at least one byte; reject absurd prefixes
        // before allocating.
        if len > buf.remaining() {
            return Err(WireError::BadLength {
                context: "vec",
                len,
            });
        }
        let mut out = Vec::with_capacity(len);
        for _ in 0..len {
            out.push(T::decode(buf)?);
        }
        Ok(out)
    }
    fn encoded_len(&self) -> usize {
        4 + self.iter().map(Wire::encoded_len).sum::<usize>()
    }
}

impl<T: Wire> Wire for Option<T> {
    fn encode(&self, buf: &mut BytesMut) {
        match self {
            None => buf.put_u8(0),
            Some(v) => {
                buf.put_u8(1);
                v.encode(buf);
            }
        }
    }
    fn decode(buf: &mut Bytes) -> WireResult<Self> {
        need(buf, 1, "option tag")?;
        match buf.get_u8() {
            0 => Ok(None),
            1 => Ok(Some(T::decode(buf)?)),
            tag => Err(WireError::BadTag {
                context: "option",
                tag,
            }),
        }
    }
    fn encoded_len(&self) -> usize {
        1 + self.as_ref().map_or(0, Wire::encoded_len)
    }
}

impl Wire for Point {
    fn encode(&self, buf: &mut BytesMut) {
        self.x.encode(buf);
        self.y.encode(buf);
    }
    fn decode(buf: &mut Bytes) -> WireResult<Self> {
        Ok(Point::new(f64::decode(buf)?, f64::decode(buf)?))
    }
    fn encoded_len(&self) -> usize {
        16
    }
}

impl Wire for Rect {
    fn encode(&self, buf: &mut BytesMut) {
        self.min.encode(buf);
        self.max.encode(buf);
    }
    fn decode(buf: &mut Bytes) -> WireResult<Self> {
        Ok(Rect::from_corners(Point::decode(buf)?, Point::decode(buf)?))
    }
    fn encoded_len(&self) -> usize {
        32
    }
}

impl Wire for Circle {
    fn encode(&self, buf: &mut BytesMut) {
        self.center.encode(buf);
        self.radius.encode(buf);
    }
    fn decode(buf: &mut Bytes) -> WireResult<Self> {
        Ok(Circle::new(Point::decode(buf)?, f64::decode(buf)?))
    }
    fn encoded_len(&self) -> usize {
        24
    }
}

impl Wire for Range {
    fn encode(&self, buf: &mut BytesMut) {
        match self {
            Range::Circle(c) => {
                buf.put_u8(0);
                c.encode(buf);
            }
            Range::Rect(r) => {
                buf.put_u8(1);
                r.encode(buf);
            }
        }
    }
    fn decode(buf: &mut Bytes) -> WireResult<Self> {
        need(buf, 1, "range tag")?;
        match buf.get_u8() {
            0 => Ok(Range::Circle(Circle::decode(buf)?)),
            1 => Ok(Range::Rect(Rect::decode(buf)?)),
            tag => Err(WireError::BadTag {
                context: "range",
                tag,
            }),
        }
    }
    fn encoded_len(&self) -> usize {
        1 + match self {
            Range::Circle(c) => c.encoded_len(),
            Range::Rect(r) => r.encoded_len(),
        }
    }
}

impl Wire for Aggregate {
    fn encode(&self, buf: &mut BytesMut) {
        self.count.encode(buf);
        self.sum.encode(buf);
        self.sum_sqr.encode(buf);
    }
    fn decode(buf: &mut Bytes) -> WireResult<Self> {
        Ok(Aggregate {
            count: f64::decode(buf)?,
            sum: f64::decode(buf)?,
            sum_sqr: f64::decode(buf)?,
        })
    }
    fn encoded_len(&self) -> usize {
        24
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn round_trip<T: Wire + PartialEq + std::fmt::Debug>(value: T) {
        let bytes = value.to_bytes();
        let back = T::from_bytes(bytes).expect("decode");
        assert_eq!(back, value);
    }

    #[test]
    fn scalars_round_trip() {
        round_trip(0u8);
        round_trip(255u8);
        round_trip(123456u32);
        round_trip(u64::MAX);
        round_trip(1234.5678f64);
        round_trip(f64::NEG_INFINITY);
        round_trip(true);
        round_trip(false);
        round_trip(usize::MAX);
    }

    #[test]
    fn strings_round_trip() {
        round_trip(String::new());
        round_trip("silo unavailable: retry".to_string());
        round_trip("日本語 ünïcode".to_string());
    }

    #[test]
    fn collections_round_trip() {
        round_trip(Vec::<u32>::new());
        round_trip(vec![1u32, 2, 3]);
        round_trip(vec![Aggregate::ZERO; 4]);
        round_trip(Option::<f64>::None);
        round_trip(Some(2.5f64));
    }

    #[test]
    fn geometry_round_trips() {
        round_trip(Point::new(1.5, -2.5));
        round_trip(Rect::new(Point::new(0.0, 0.0), Point::new(3.0, 4.0)));
        round_trip(Circle::new(Point::new(4.0, 6.0), 3.0));
        round_trip(Range::circle(Point::new(4.0, 6.0), 3.0));
        round_trip(Range::rect(Point::new(0.0, 0.0), Point::new(1.0, 1.0)));
    }

    #[test]
    fn aggregate_round_trips() {
        round_trip(Aggregate {
            count: 10.0,
            sum: -3.5,
            sum_sqr: 99.25,
        });
    }

    #[test]
    fn truncated_buffers_error() {
        let bytes = Point::new(1.0, 2.0).to_bytes();
        let short = bytes.slice(0..bytes.len() - 1);
        assert!(matches!(
            Point::from_bytes(short),
            Err(WireError::Truncated { .. })
        ));
    }

    #[test]
    fn trailing_bytes_error() {
        let mut buf = BytesMut::new();
        1.0f64.encode(&mut buf);
        2.0f64.encode(&mut buf);
        buf.put_u8(0xFF);
        assert!(matches!(
            Point::from_bytes(buf.freeze()),
            Err(WireError::BadLength { .. })
        ));
    }

    #[test]
    fn bad_enum_tags_error() {
        let mut buf = BytesMut::new();
        buf.put_u8(9);
        assert!(matches!(
            Range::from_bytes(buf.freeze()),
            Err(WireError::BadTag {
                context: "range",
                tag: 9
            })
        ));
    }

    #[test]
    fn absurd_vec_length_is_rejected_before_allocation() {
        let mut buf = BytesMut::new();
        buf.put_u32_le(u32::MAX);
        assert!(matches!(
            Vec::<f64>::from_bytes(buf.freeze()),
            Err(WireError::BadLength { .. })
        ));
    }

    #[test]
    fn encoded_sizes_are_stable() {
        // Sizes feed the communication-cost metric; pin them down.
        assert_eq!(Point::new(0.0, 0.0).to_bytes().len(), 16);
        assert_eq!(Rect::EMPTY.to_bytes().len(), 32);
        assert_eq!(
            Range::circle(Point::new(0.0, 0.0), 1.0).to_bytes().len(),
            25
        );
        assert_eq!(Aggregate::ZERO.to_bytes().len(), 24);
        assert_eq!(vec![1u32, 2, 3].to_bytes().len(), 4 + 12);
    }

    fn assert_len_exact<T: Wire>(value: T) {
        assert_eq!(value.encoded_len(), value.to_bytes().len());
    }

    #[test]
    fn encoded_len_matches_actual_encoding() {
        assert_len_exact(7u8);
        assert_len_exact(7u32);
        assert_len_exact(7u64);
        assert_len_exact(7usize);
        assert_len_exact(7.5f64);
        assert_len_exact(true);
        assert_len_exact(String::new());
        assert_len_exact("日本語 ünïcode".to_string()); // len() is bytes, not chars
        assert_len_exact(vec![1u32, 2, 3]);
        assert_len_exact(vec!["a".to_string(), "bcd".to_string()]);
        assert_len_exact(Option::<f64>::None);
        assert_len_exact(Some(2.5f64));
        assert_len_exact(Point::new(1.0, 2.0));
        assert_len_exact(Rect::EMPTY);
        assert_len_exact(Circle::new(Point::new(0.0, 0.0), 1.0));
        assert_len_exact(Range::circle(Point::new(0.0, 0.0), 1.0));
        assert_len_exact(Range::rect(Point::new(0.0, 0.0), Point::new(1.0, 1.0)));
        assert_len_exact(Aggregate::ZERO);
    }

    #[test]
    fn error_messages_render() {
        let e = WireError::Truncated { context: "u8" };
        assert!(e.to_string().contains("truncated"));
        let e = WireError::BadTag {
            context: "range",
            tag: 7,
        };
        assert!(e.to_string().contains("unknown tag 7"));
        let e = WireError::BadLength {
            context: "vec",
            len: 9,
        };
        assert!(e.to_string().contains("length 9"));
    }
}
