//! The provider ↔ silo request/response protocol.
//!
//! One request kind per interaction the paper's algorithms need:
//!
//! | Request | Used by | Paper reference |
//! |---|---|---|
//! | [`Request::BuildGrid`] | setup | Alg. 1 lines 1–3 |
//! | [`Request::Aggregate`] | EXACT, IID-est (±LSR) | Alg. 2 lines 2–3, Alg. 6 |
//! | [`Request::CellContributions`] | NonIID-est (±LSR) | Alg. 3 line 3 + remark |
//! | [`Request::HistogramEstimate`] | OPTA baseline | Sec. 8.1 |
//! | [`Request::MemoryReport`] | metrics | Figs. 3d–9d |
//! | [`Request::Ping`] | liveness / failure tests | — |
//!
//! Everything here is [`Wire`]-codable; the transport layer only ever sees
//! byte buffers, which is what the communication-cost metric measures.

use bytes::{Buf, BufMut, Bytes, BytesMut};

use fedra_geo::{Range, Rect};
use fedra_index::grid::{CellId, GridIndex, GridSpec};
use fedra_index::Aggregate;

use crate::wire::{Wire, WireError, WireResult};

/// How a silo should answer a local range aggregation.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum LocalMode {
    /// Exact answer from the silo's aggregate R-tree (O(log n)).
    Exact,
    /// Approximate answer from the LSR-Forest (Alg. 6, O(log 1/ε)).
    Lsr {
        /// Target approximation ratio ε.
        epsilon: f64,
        /// Failure probability bound δ.
        delta: f64,
        /// Grid-based rough estimate of the query result (COUNT), used by
        /// the Lemma-1 level-selection rule.
        sum0: f64,
    },
}

/// A provider → silo request.
#[derive(Debug, Clone, PartialEq)]
pub enum Request {
    /// Build the silo's grid index over the shared spec. With
    /// `return_cells = true` the full cell vector is returned
    /// ([`Response::Grid`]); with `false` only a checksum comes back
    /// ([`Response::GridAck`]) — the warm-start path of
    /// [`crate::snapshot`].
    BuildGrid {
        /// Grid bounds (shared across the federation).
        bounds: Rect,
        /// Cell side length `L`.
        cell_len: f64,
        /// Whether to ship the cell vector back.
        return_cells: bool,
    },
    /// Local range aggregation `Q(s_k, R, F)`; returns one [`Aggregate`].
    Aggregate {
        /// The query range.
        range: Range,
        /// Exact or LSR-approximate execution.
        mode: LocalMode,
    },
    /// Per-grid-cell contributions `res_i^k` for the listed cells;
    /// returns one [`Aggregate`] per requested cell, in order.
    CellContributions {
        /// The query range.
        range: Range,
        /// The (boundary) cells whose contributions are needed.
        cells: Vec<CellId>,
        /// Exact or LSR-approximate execution.
        mode: LocalMode,
    },
    /// OPTA: estimate the range aggregate from the silo's local histogram.
    HistogramEstimate {
        /// The query range.
        range: Range,
    },
    /// Report the memory footprint of the silo's indices.
    MemoryReport,
    /// Liveness probe.
    Ping,
}

/// Per-index memory usage of one silo, in bytes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct SiloMemoryReport {
    /// Aggregate R-tree (T₀).
    pub rtree: u64,
    /// LSR-Forest levels T₁… (excludes the shared T₀).
    pub lsr_extra: u64,
    /// Silo-side grid index.
    pub grid: u64,
    /// OPTA histogram.
    pub histogram: u64,
}

impl SiloMemoryReport {
    /// Total bytes across all silo indices.
    pub fn total(&self) -> u64 {
        self.rtree + self.lsr_extra + self.grid + self.histogram
    }
}

/// A silo → provider response.
#[derive(Debug, Clone, PartialEq)]
pub enum Response {
    /// The silo's grid index (spec echoed as bounds + cell length).
    Grid {
        /// Grid bounds the index was built over.
        bounds: Rect,
        /// Cell side length.
        cell_len: f64,
        /// Row-major per-cell aggregates.
        cells: Vec<Aggregate>,
        /// Objects that fell outside the grid.
        outside: u64,
    },
    /// Checksum acknowledgement of a local grid build (warm start): the
    /// grid's grand total plus the out-of-bounds count.
    GridAck {
        /// Grand total over all cells.
        total: Aggregate,
        /// Objects outside the grid bounds.
        outside: u64,
    },
    /// A single aggregate answer.
    Agg(Aggregate),
    /// Per-cell aggregate answers (same order as the request's cells).
    AggVec(Vec<Aggregate>),
    /// Memory report.
    Memory(SiloMemoryReport),
    /// Liveness answer.
    Pong,
    /// The silo could not serve the request.
    Error(String),
}

impl Response {
    /// Reconstructs a [`GridIndex`] from a [`Response::Grid`] payload.
    pub fn into_grid_index(self) -> Option<GridIndex> {
        match self {
            Response::Grid {
                bounds,
                cell_len,
                cells,
                outside,
            } => Some(GridIndex::from_parts(
                GridSpec::new(bounds, cell_len),
                cells,
                outside,
            )),
            _ => None,
        }
    }
}

impl Wire for LocalMode {
    fn encode(&self, buf: &mut BytesMut) {
        match self {
            LocalMode::Exact => buf.put_u8(0),
            LocalMode::Lsr {
                epsilon,
                delta,
                sum0,
            } => {
                buf.put_u8(1);
                epsilon.encode(buf);
                delta.encode(buf);
                sum0.encode(buf);
            }
        }
    }
    fn decode(buf: &mut Bytes) -> WireResult<Self> {
        if buf.remaining() < 1 {
            return Err(WireError::Truncated { context: "local mode" });
        }
        match buf.get_u8() {
            0 => Ok(LocalMode::Exact),
            1 => Ok(LocalMode::Lsr {
                epsilon: f64::decode(buf)?,
                delta: f64::decode(buf)?,
                sum0: f64::decode(buf)?,
            }),
            tag => Err(WireError::BadTag { context: "local mode", tag }),
        }
    }
}

impl Wire for Request {
    fn encode(&self, buf: &mut BytesMut) {
        match self {
            Request::BuildGrid {
                bounds,
                cell_len,
                return_cells,
            } => {
                buf.put_u8(0);
                bounds.encode(buf);
                cell_len.encode(buf);
                return_cells.encode(buf);
            }
            Request::Aggregate { range, mode } => {
                buf.put_u8(1);
                range.encode(buf);
                mode.encode(buf);
            }
            Request::CellContributions { range, cells, mode } => {
                buf.put_u8(2);
                range.encode(buf);
                cells.encode(buf);
                mode.encode(buf);
            }
            Request::HistogramEstimate { range } => {
                buf.put_u8(3);
                range.encode(buf);
            }
            Request::MemoryReport => buf.put_u8(4),
            Request::Ping => buf.put_u8(5),
        }
    }
    fn decode(buf: &mut Bytes) -> WireResult<Self> {
        if buf.remaining() < 1 {
            return Err(WireError::Truncated { context: "request tag" });
        }
        match buf.get_u8() {
            0 => Ok(Request::BuildGrid {
                bounds: Rect::decode(buf)?,
                cell_len: f64::decode(buf)?,
                return_cells: bool::decode(buf)?,
            }),
            1 => Ok(Request::Aggregate {
                range: Range::decode(buf)?,
                mode: LocalMode::decode(buf)?,
            }),
            2 => Ok(Request::CellContributions {
                range: Range::decode(buf)?,
                cells: Vec::<CellId>::decode(buf)?,
                mode: LocalMode::decode(buf)?,
            }),
            3 => Ok(Request::HistogramEstimate {
                range: Range::decode(buf)?,
            }),
            4 => Ok(Request::MemoryReport),
            5 => Ok(Request::Ping),
            tag => Err(WireError::BadTag { context: "request", tag }),
        }
    }
}

impl Wire for SiloMemoryReport {
    fn encode(&self, buf: &mut BytesMut) {
        self.rtree.encode(buf);
        self.lsr_extra.encode(buf);
        self.grid.encode(buf);
        self.histogram.encode(buf);
    }
    fn decode(buf: &mut Bytes) -> WireResult<Self> {
        Ok(SiloMemoryReport {
            rtree: u64::decode(buf)?,
            lsr_extra: u64::decode(buf)?,
            grid: u64::decode(buf)?,
            histogram: u64::decode(buf)?,
        })
    }
}

impl Wire for Response {
    fn encode(&self, buf: &mut BytesMut) {
        match self {
            Response::Grid {
                bounds,
                cell_len,
                cells,
                outside,
            } => {
                buf.put_u8(0);
                bounds.encode(buf);
                cell_len.encode(buf);
                cells.encode(buf);
                outside.encode(buf);
            }
            Response::GridAck { total, outside } => {
                buf.put_u8(6);
                total.encode(buf);
                outside.encode(buf);
            }
            Response::Agg(a) => {
                buf.put_u8(1);
                a.encode(buf);
            }
            Response::AggVec(v) => {
                buf.put_u8(2);
                v.encode(buf);
            }
            Response::Memory(m) => {
                buf.put_u8(3);
                m.encode(buf);
            }
            Response::Pong => buf.put_u8(4),
            Response::Error(msg) => {
                buf.put_u8(5);
                msg.encode(buf);
            }
        }
    }
    fn decode(buf: &mut Bytes) -> WireResult<Self> {
        if buf.remaining() < 1 {
            return Err(WireError::Truncated { context: "response tag" });
        }
        match buf.get_u8() {
            0 => Ok(Response::Grid {
                bounds: Rect::decode(buf)?,
                cell_len: f64::decode(buf)?,
                cells: Vec::<Aggregate>::decode(buf)?,
                outside: u64::decode(buf)?,
            }),
            1 => Ok(Response::Agg(Aggregate::decode(buf)?)),
            2 => Ok(Response::AggVec(Vec::<Aggregate>::decode(buf)?)),
            3 => Ok(Response::Memory(SiloMemoryReport::decode(buf)?)),
            4 => Ok(Response::Pong),
            5 => Ok(Response::Error(String::decode(buf)?)),
            6 => Ok(Response::GridAck {
                total: Aggregate::decode(buf)?,
                outside: u64::decode(buf)?,
            }),
            tag => Err(WireError::BadTag { context: "response", tag }),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fedra_geo::Point;

    fn round_trip<T: Wire + PartialEq + std::fmt::Debug>(value: T) {
        let bytes = value.to_bytes();
        assert_eq!(T::from_bytes(bytes).expect("decode"), value);
    }

    #[test]
    fn requests_round_trip() {
        round_trip(Request::BuildGrid {
            bounds: Rect::new(Point::new(0.0, 0.0), Point::new(10.0, 10.0)),
            cell_len: 2.5,
            return_cells: true,
        });
        round_trip(Request::BuildGrid {
            bounds: Rect::new(Point::new(0.0, 0.0), Point::new(10.0, 10.0)),
            cell_len: 2.5,
            return_cells: false,
        });
        round_trip(Request::Aggregate {
            range: Range::circle(Point::new(4.0, 6.0), 3.0),
            mode: LocalMode::Exact,
        });
        round_trip(Request::Aggregate {
            range: Range::rect(Point::new(0.0, 0.0), Point::new(1.0, 1.0)),
            mode: LocalMode::Lsr {
                epsilon: 0.1,
                delta: 0.01,
                sum0: 1234.0,
            },
        });
        round_trip(Request::CellContributions {
            range: Range::circle(Point::new(4.0, 6.0), 3.0),
            cells: vec![1, 5, 9],
            mode: LocalMode::Exact,
        });
        round_trip(Request::HistogramEstimate {
            range: Range::circle(Point::new(4.0, 6.0), 3.0),
        });
        round_trip(Request::MemoryReport);
        round_trip(Request::Ping);
    }

    #[test]
    fn responses_round_trip() {
        round_trip(Response::Grid {
            bounds: Rect::new(Point::new(0.0, 0.0), Point::new(10.0, 10.0)),
            cell_len: 2.5,
            cells: vec![Aggregate::ZERO; 16],
            outside: 3,
        });
        round_trip(Response::Agg(Aggregate {
            count: 4.0,
            sum: 4.0,
            sum_sqr: 4.0,
        }));
        round_trip(Response::AggVec(vec![Aggregate::ZERO, Aggregate {
            count: 1.0,
            sum: 7.0,
            sum_sqr: 49.0,
        }]));
        round_trip(Response::Memory(SiloMemoryReport {
            rtree: 100,
            lsr_extra: 90,
            grid: 10,
            histogram: 5,
        }));
        round_trip(Response::Pong);
        round_trip(Response::Error("silo unavailable".to_string()));
        round_trip(Response::GridAck {
            total: Aggregate {
                count: 5.0,
                sum: 9.0,
                sum_sqr: 21.0,
            },
            outside: 1,
        });
    }

    #[test]
    fn grid_response_reconstructs_index() {
        let bounds = Rect::new(Point::new(0.0, 0.0), Point::new(10.0, 10.0));
        let spec = GridSpec::new(bounds, 2.5);
        let mut cells = vec![Aggregate::ZERO; spec.num_cells()];
        cells[0] = Aggregate {
            count: 1.0,
            sum: 7.0,
            sum_sqr: 49.0,
        };
        let resp = Response::Grid {
            bounds,
            cell_len: 2.5,
            cells: cells.clone(),
            outside: 0,
        };
        let g = resp.into_grid_index().expect("grid payload");
        assert_eq!(g.cell(0).sum, 7.0);
        assert_eq!(g.total().count, 1.0);
        assert!(Response::Pong.into_grid_index().is_none());
    }

    #[test]
    fn memory_report_totals() {
        let m = SiloMemoryReport {
            rtree: 1,
            lsr_extra: 2,
            grid: 3,
            histogram: 4,
        };
        assert_eq!(m.total(), 10);
    }

    #[test]
    fn request_sizes_reflect_payload() {
        // A NonIID cell-contribution request grows with the boundary cell
        // count — the O(√|g₀|) communication term comes from here.
        let small = Request::CellContributions {
            range: Range::circle(Point::new(0.0, 0.0), 1.0),
            cells: vec![1],
            mode: LocalMode::Exact,
        }
        .to_bytes()
        .len();
        let large = Request::CellContributions {
            range: Range::circle(Point::new(0.0, 0.0), 1.0),
            cells: (0..100).collect(),
            mode: LocalMode::Exact,
        }
        .to_bytes()
        .len();
        assert_eq!(large - small, 99 * 4);
    }
}
