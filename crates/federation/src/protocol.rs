//! The provider ↔ silo request/response protocol.
//!
//! One request kind per interaction the paper's algorithms need:
//!
//! | Request | Used by | Paper reference |
//! |---|---|---|
//! | [`Request::BuildGrid`] | setup | Alg. 1 lines 1–3 |
//! | [`Request::Aggregate`] | EXACT, IID-est (±LSR) | Alg. 2 lines 2–3, Alg. 6 |
//! | [`Request::CellContributions`] | NonIID-est (±LSR) | Alg. 3 line 3 + remark |
//! | [`Request::HistogramEstimate`] | OPTA baseline | Sec. 8.1 |
//! | [`Request::MemoryReport`] | metrics | Figs. 3d–9d |
//! | [`Request::Ping`] | liveness / failure tests | — |
//!
//! Everything here is [`Wire`]-codable; the transport layer only ever sees
//! byte buffers, which is what the communication-cost metric measures.

use bytes::{Buf, BufMut, Bytes, BytesMut};

use fedra_geo::{Range, Rect};
use fedra_index::grid::{CellId, GridIndex, GridSpec};
use fedra_index::Aggregate;

use crate::wire::{Wire, WireError, WireResult};

/// How a silo should answer a local range aggregation.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum LocalMode {
    /// Exact answer from the silo's aggregate R-tree (O(log n)).
    Exact,
    /// Approximate answer from the LSR-Forest (Alg. 6, O(log 1/ε)).
    Lsr {
        /// Target approximation ratio ε.
        epsilon: f64,
        /// Failure probability bound δ.
        delta: f64,
        /// Grid-based rough estimate of the query result (COUNT), used by
        /// the Lemma-1 level-selection rule.
        sum0: f64,
    },
}

/// A provider → silo request.
#[derive(Debug, Clone, PartialEq)]
pub enum Request {
    /// Build the silo's grid index over the shared spec. With
    /// `return_cells = true` the full cell vector is returned
    /// ([`Response::Grid`]); with `false` only a checksum comes back
    /// ([`Response::GridAck`]) — the warm-start path of
    /// [`crate::snapshot`].
    BuildGrid {
        /// Grid bounds (shared across the federation).
        bounds: Rect,
        /// Cell side length `L`.
        cell_len: f64,
        /// Whether to ship the cell vector back.
        return_cells: bool,
    },
    /// Local range aggregation `Q(s_k, R, F)`; returns one [`Aggregate`].
    Aggregate {
        /// The query range.
        range: Range,
        /// Exact or LSR-approximate execution.
        mode: LocalMode,
    },
    /// Per-grid-cell contributions `res_i^k` for the listed cells;
    /// returns one [`Aggregate`] per requested cell, in order.
    CellContributions {
        /// The query range.
        range: Range,
        /// The (boundary) cells whose contributions are needed.
        cells: Vec<CellId>,
        /// Exact or LSR-approximate execution.
        mode: LocalMode,
    },
    /// OPTA: estimate the range aggregate from the silo's local histogram.
    HistogramEstimate {
        /// The query range.
        range: Range,
    },
    /// Report the memory footprint of the silo's indices.
    MemoryReport,
    /// Liveness probe.
    Ping,
    /// Several requests coalesced into one wire frame: the silo serves
    /// each in order and answers with one [`Response::Batch`] of the same
    /// arity. A batch of `n` requests pays **one** message envelope per
    /// direction instead of `n` — the amortization behind
    /// [`crate::transport::SiloChannel::call_batch`]. Nesting is a wire
    /// error: a `Batch` inside a `Batch` is answered with a per-item
    /// [`Response::Error`].
    Batch(Vec<Request>),
}

/// Per-index memory usage of one silo, in bytes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct SiloMemoryReport {
    /// Aggregate R-tree (T₀).
    pub rtree: u64,
    /// LSR-Forest levels T₁… (excludes the shared T₀).
    pub lsr_extra: u64,
    /// Silo-side grid index.
    pub grid: u64,
    /// OPTA histogram.
    pub histogram: u64,
}

impl SiloMemoryReport {
    /// Total bytes across all silo indices.
    pub fn total(&self) -> u64 {
        self.rtree + self.lsr_extra + self.grid + self.histogram
    }
}

/// A silo → provider response.
#[derive(Debug, Clone, PartialEq)]
pub enum Response {
    /// The silo's grid index (spec echoed as bounds + cell length).
    Grid {
        /// Grid bounds the index was built over.
        bounds: Rect,
        /// Cell side length.
        cell_len: f64,
        /// Row-major per-cell aggregates.
        cells: Vec<Aggregate>,
        /// Objects that fell outside the grid.
        outside: u64,
    },
    /// Checksum acknowledgement of a local grid build (warm start): the
    /// grid's grand total plus the out-of-bounds count.
    GridAck {
        /// Grand total over all cells.
        total: Aggregate,
        /// Objects outside the grid bounds.
        outside: u64,
    },
    /// A single aggregate answer.
    Agg(Aggregate),
    /// Per-cell aggregate answers (same order as the request's cells).
    AggVec(Vec<Aggregate>),
    /// Memory report.
    Memory(SiloMemoryReport),
    /// Liveness answer.
    Pong,
    /// The silo could not serve the request.
    Error(String),
    /// Answers to a [`Request::Batch`], in request order (one entry per
    /// sub-request; failed sub-requests carry [`Response::Error`]).
    Batch(Vec<Response>),
    /// The silo refused the request *transiently* (overload, flap window,
    /// injected chaos): unlike [`Response::Error`], retrying the same
    /// request against the same silo may succeed. The transport maps this
    /// to [`crate::transport::TransportError::Transient`].
    Transient(String),
    /// The request's deadline had already expired when the silo picked it
    /// up, so the work was shed without being executed. The transport maps
    /// this to [`crate::transport::TransportError::DeadlineExceeded`].
    DeadlineExceeded {
        /// How far past the deadline the request was when shed, in
        /// microseconds (saturating).
        late_by_us: u64,
    },
}

impl Response {
    /// Reconstructs a [`GridIndex`] from a [`Response::Grid`] payload.
    pub fn into_grid_index(self) -> Option<GridIndex> {
        match self {
            Response::Grid {
                bounds,
                cell_len,
                cells,
                outside,
            } => Some(GridIndex::from_parts(
                GridSpec::new(bounds, cell_len),
                cells,
                outside,
            )),
            _ => None,
        }
    }
}

impl Wire for LocalMode {
    fn encode(&self, buf: &mut BytesMut) {
        match self {
            LocalMode::Exact => buf.put_u8(0),
            LocalMode::Lsr {
                epsilon,
                delta,
                sum0,
            } => {
                buf.put_u8(1);
                epsilon.encode(buf);
                delta.encode(buf);
                sum0.encode(buf);
            }
        }
    }
    fn decode(buf: &mut Bytes) -> WireResult<Self> {
        if buf.remaining() < 1 {
            return Err(WireError::Truncated {
                context: "local mode",
            });
        }
        match buf.get_u8() {
            0 => Ok(LocalMode::Exact),
            1 => Ok(LocalMode::Lsr {
                epsilon: f64::decode(buf)?,
                delta: f64::decode(buf)?,
                sum0: f64::decode(buf)?,
            }),
            tag => Err(WireError::BadTag {
                context: "local mode",
                tag,
            }),
        }
    }
    fn encoded_len(&self) -> usize {
        match self {
            LocalMode::Exact => 1,
            LocalMode::Lsr { .. } => 1 + 24,
        }
    }
}

/// Wire tag of [`Request::Batch`].
pub(crate) const REQUEST_BATCH_TAG: u8 = 6;

/// Encodes a batch request frame straight from borrowed sub-requests —
/// byte-identical to `Request::Batch(requests.to_vec()).to_bytes()` but
/// without cloning the sub-requests, and with the buffer pre-reserved to
/// the exact frame size. This is the transport's batched-send hot path.
pub(crate) fn encode_batch_request(requests: &[&Request]) -> Bytes {
    let len: usize = 1 + 4 + requests.iter().map(|r| r.encoded_len()).sum::<usize>();
    let mut buf = BytesMut::with_capacity(len);
    buf.put_u8(REQUEST_BATCH_TAG);
    (requests.len() as u32).encode(&mut buf);
    for request in requests {
        request.encode(&mut buf);
    }
    buf.freeze()
}

impl Wire for Request {
    fn encode(&self, buf: &mut BytesMut) {
        match self {
            Request::BuildGrid {
                bounds,
                cell_len,
                return_cells,
            } => {
                buf.put_u8(0);
                bounds.encode(buf);
                cell_len.encode(buf);
                return_cells.encode(buf);
            }
            Request::Aggregate { range, mode } => {
                buf.put_u8(1);
                range.encode(buf);
                mode.encode(buf);
            }
            Request::CellContributions { range, cells, mode } => {
                buf.put_u8(2);
                range.encode(buf);
                cells.encode(buf);
                mode.encode(buf);
            }
            Request::HistogramEstimate { range } => {
                buf.put_u8(3);
                range.encode(buf);
            }
            Request::MemoryReport => buf.put_u8(4),
            Request::Ping => buf.put_u8(5),
            Request::Batch(requests) => {
                buf.put_u8(REQUEST_BATCH_TAG);
                requests.encode(buf);
            }
        }
    }
    fn decode(buf: &mut Bytes) -> WireResult<Self> {
        if buf.remaining() < 1 {
            return Err(WireError::Truncated {
                context: "request tag",
            });
        }
        match buf.get_u8() {
            0 => Ok(Request::BuildGrid {
                bounds: Rect::decode(buf)?,
                cell_len: f64::decode(buf)?,
                return_cells: bool::decode(buf)?,
            }),
            1 => Ok(Request::Aggregate {
                range: Range::decode(buf)?,
                mode: LocalMode::decode(buf)?,
            }),
            2 => Ok(Request::CellContributions {
                range: Range::decode(buf)?,
                cells: Vec::<CellId>::decode(buf)?,
                mode: LocalMode::decode(buf)?,
            }),
            3 => Ok(Request::HistogramEstimate {
                range: Range::decode(buf)?,
            }),
            4 => Ok(Request::MemoryReport),
            5 => Ok(Request::Ping),
            REQUEST_BATCH_TAG => Ok(Request::Batch(Vec::<Request>::decode(buf)?)),
            tag => Err(WireError::BadTag {
                context: "request",
                tag,
            }),
        }
    }
    fn encoded_len(&self) -> usize {
        1 + match self {
            Request::BuildGrid {
                bounds,
                cell_len,
                return_cells,
            } => bounds.encoded_len() + cell_len.encoded_len() + return_cells.encoded_len(),
            Request::Aggregate { range, mode } => range.encoded_len() + mode.encoded_len(),
            Request::CellContributions { range, cells, mode } => {
                range.encoded_len() + cells.encoded_len() + mode.encoded_len()
            }
            Request::HistogramEstimate { range } => range.encoded_len(),
            Request::MemoryReport | Request::Ping => 0,
            Request::Batch(requests) => requests.encoded_len(),
        }
    }
}

impl Wire for SiloMemoryReport {
    fn encode(&self, buf: &mut BytesMut) {
        self.rtree.encode(buf);
        self.lsr_extra.encode(buf);
        self.grid.encode(buf);
        self.histogram.encode(buf);
    }
    fn decode(buf: &mut Bytes) -> WireResult<Self> {
        Ok(SiloMemoryReport {
            rtree: u64::decode(buf)?,
            lsr_extra: u64::decode(buf)?,
            grid: u64::decode(buf)?,
            histogram: u64::decode(buf)?,
        })
    }
    fn encoded_len(&self) -> usize {
        32
    }
}

impl Wire for Response {
    fn encode(&self, buf: &mut BytesMut) {
        match self {
            Response::Grid {
                bounds,
                cell_len,
                cells,
                outside,
            } => {
                buf.put_u8(0);
                bounds.encode(buf);
                cell_len.encode(buf);
                cells.encode(buf);
                outside.encode(buf);
            }
            Response::GridAck { total, outside } => {
                buf.put_u8(6);
                total.encode(buf);
                outside.encode(buf);
            }
            Response::Agg(a) => {
                buf.put_u8(1);
                a.encode(buf);
            }
            Response::AggVec(v) => {
                buf.put_u8(2);
                v.encode(buf);
            }
            Response::Memory(m) => {
                buf.put_u8(3);
                m.encode(buf);
            }
            Response::Pong => buf.put_u8(4),
            Response::Error(msg) => {
                buf.put_u8(5);
                msg.encode(buf);
            }
            Response::Batch(responses) => {
                buf.put_u8(7);
                responses.encode(buf);
            }
            Response::Transient(msg) => {
                buf.put_u8(8);
                msg.encode(buf);
            }
            Response::DeadlineExceeded { late_by_us } => {
                buf.put_u8(9);
                late_by_us.encode(buf);
            }
        }
    }
    fn decode(buf: &mut Bytes) -> WireResult<Self> {
        if buf.remaining() < 1 {
            return Err(WireError::Truncated {
                context: "response tag",
            });
        }
        match buf.get_u8() {
            0 => Ok(Response::Grid {
                bounds: Rect::decode(buf)?,
                cell_len: f64::decode(buf)?,
                cells: Vec::<Aggregate>::decode(buf)?,
                outside: u64::decode(buf)?,
            }),
            1 => Ok(Response::Agg(Aggregate::decode(buf)?)),
            2 => Ok(Response::AggVec(Vec::<Aggregate>::decode(buf)?)),
            3 => Ok(Response::Memory(SiloMemoryReport::decode(buf)?)),
            4 => Ok(Response::Pong),
            5 => Ok(Response::Error(String::decode(buf)?)),
            6 => Ok(Response::GridAck {
                total: Aggregate::decode(buf)?,
                outside: u64::decode(buf)?,
            }),
            7 => Ok(Response::Batch(Vec::<Response>::decode(buf)?)),
            8 => Ok(Response::Transient(String::decode(buf)?)),
            9 => Ok(Response::DeadlineExceeded {
                late_by_us: u64::decode(buf)?,
            }),
            tag => Err(WireError::BadTag {
                context: "response",
                tag,
            }),
        }
    }
    fn encoded_len(&self) -> usize {
        1 + match self {
            Response::Grid {
                bounds,
                cell_len,
                cells,
                outside,
            } => {
                bounds.encoded_len()
                    + cell_len.encoded_len()
                    + cells.encoded_len()
                    + outside.encoded_len()
            }
            Response::GridAck { total, outside } => total.encoded_len() + outside.encoded_len(),
            Response::Agg(a) => a.encoded_len(),
            Response::AggVec(v) => v.encoded_len(),
            Response::Memory(m) => m.encoded_len(),
            Response::Pong => 0,
            Response::Error(msg) => msg.encoded_len(),
            Response::Batch(responses) => responses.encoded_len(),
            Response::Transient(msg) => msg.encoded_len(),
            Response::DeadlineExceeded { late_by_us } => late_by_us.encoded_len(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fedra_geo::Point;

    fn round_trip<T: Wire + PartialEq + std::fmt::Debug>(value: T) {
        let bytes = value.to_bytes();
        assert_eq!(T::from_bytes(bytes).expect("decode"), value);
    }

    #[test]
    fn requests_round_trip() {
        round_trip(Request::BuildGrid {
            bounds: Rect::new(Point::new(0.0, 0.0), Point::new(10.0, 10.0)),
            cell_len: 2.5,
            return_cells: true,
        });
        round_trip(Request::BuildGrid {
            bounds: Rect::new(Point::new(0.0, 0.0), Point::new(10.0, 10.0)),
            cell_len: 2.5,
            return_cells: false,
        });
        round_trip(Request::Aggregate {
            range: Range::circle(Point::new(4.0, 6.0), 3.0),
            mode: LocalMode::Exact,
        });
        round_trip(Request::Aggregate {
            range: Range::rect(Point::new(0.0, 0.0), Point::new(1.0, 1.0)),
            mode: LocalMode::Lsr {
                epsilon: 0.1,
                delta: 0.01,
                sum0: 1234.0,
            },
        });
        round_trip(Request::CellContributions {
            range: Range::circle(Point::new(4.0, 6.0), 3.0),
            cells: vec![1, 5, 9],
            mode: LocalMode::Exact,
        });
        round_trip(Request::HistogramEstimate {
            range: Range::circle(Point::new(4.0, 6.0), 3.0),
        });
        round_trip(Request::MemoryReport);
        round_trip(Request::Ping);
    }

    #[test]
    fn responses_round_trip() {
        round_trip(Response::Grid {
            bounds: Rect::new(Point::new(0.0, 0.0), Point::new(10.0, 10.0)),
            cell_len: 2.5,
            cells: vec![Aggregate::ZERO; 16],
            outside: 3,
        });
        round_trip(Response::Agg(Aggregate {
            count: 4.0,
            sum: 4.0,
            sum_sqr: 4.0,
        }));
        round_trip(Response::AggVec(vec![
            Aggregate::ZERO,
            Aggregate {
                count: 1.0,
                sum: 7.0,
                sum_sqr: 49.0,
            },
        ]));
        round_trip(Response::Memory(SiloMemoryReport {
            rtree: 100,
            lsr_extra: 90,
            grid: 10,
            histogram: 5,
        }));
        round_trip(Response::Pong);
        round_trip(Response::Error("silo unavailable".to_string()));
        round_trip(Response::Transient("flap window".to_string()));
        round_trip(Response::Transient(String::new()));
        round_trip(Response::DeadlineExceeded { late_by_us: 0 });
        round_trip(Response::DeadlineExceeded {
            late_by_us: u64::MAX,
        });
        round_trip(Response::GridAck {
            total: Aggregate {
                count: 5.0,
                sum: 9.0,
                sum_sqr: 21.0,
            },
            outside: 1,
        });
    }

    #[test]
    fn grid_response_reconstructs_index() {
        let bounds = Rect::new(Point::new(0.0, 0.0), Point::new(10.0, 10.0));
        let spec = GridSpec::new(bounds, 2.5);
        let mut cells = vec![Aggregate::ZERO; spec.num_cells()];
        cells[0] = Aggregate {
            count: 1.0,
            sum: 7.0,
            sum_sqr: 49.0,
        };
        let resp = Response::Grid {
            bounds,
            cell_len: 2.5,
            cells: cells.clone(),
            outside: 0,
        };
        let g = resp.into_grid_index().expect("grid payload");
        assert_eq!(g.cell(0).sum, 7.0);
        assert_eq!(g.total().count, 1.0);
        assert!(Response::Pong.into_grid_index().is_none());
    }

    #[test]
    fn memory_report_totals() {
        let m = SiloMemoryReport {
            rtree: 1,
            lsr_extra: 2,
            grid: 3,
            histogram: 4,
        };
        assert_eq!(m.total(), 10);
    }

    #[test]
    fn batch_frames_round_trip() {
        round_trip(Request::Batch(vec![]));
        round_trip(Request::Batch(vec![
            Request::Ping,
            Request::Aggregate {
                range: Range::circle(Point::new(4.0, 6.0), 3.0),
                mode: LocalMode::Exact,
            },
            Request::CellContributions {
                range: Range::rect(Point::new(0.0, 0.0), Point::new(1.0, 1.0)),
                cells: vec![2, 4, 8],
                mode: LocalMode::Lsr {
                    epsilon: 0.1,
                    delta: 0.01,
                    sum0: 99.0,
                },
            },
            Request::MemoryReport,
        ]));
        round_trip(Response::Batch(vec![]));
        round_trip(Response::Batch(vec![
            Response::Pong,
            Response::Agg(Aggregate::ZERO),
            Response::AggVec(vec![Aggregate::ZERO; 3]),
            Response::Error("silo 1 unavailable".to_string()),
            Response::Transient("silo 1 flapping".to_string()),
            Response::DeadlineExceeded { late_by_us: 42 },
        ]));
        // Nested batches are wire-legal (the silo rejects them at
        // handling time, not the codec).
        round_trip(Request::Batch(vec![Request::Batch(vec![Request::Ping])]));
    }

    #[test]
    fn truncated_batch_frames_error() {
        let frame = Request::Batch(vec![
            Request::Ping,
            Request::Aggregate {
                range: Range::circle(Point::new(4.0, 6.0), 3.0),
                mode: LocalMode::Exact,
            },
        ])
        .to_bytes();
        for cut in 1..frame.len() {
            assert!(
                Request::from_bytes(frame.slice(0..frame.len() - cut)).is_err(),
                "cutting {cut} bytes must not decode"
            );
        }
    }

    #[test]
    fn bad_tags_error() {
        let mut buf = BytesMut::new();
        buf.put_u8(7); // one past the Batch request tag
        assert!(matches!(
            Request::from_bytes(buf.freeze()),
            Err(WireError::BadTag {
                context: "request",
                tag: 7
            })
        ));
        let mut buf = BytesMut::new();
        buf.put_u8(10); // one past the DeadlineExceeded response tag
        assert!(matches!(
            Response::from_bytes(buf.freeze()),
            Err(WireError::BadTag {
                context: "response",
                tag: 10
            })
        ));
        // A batch whose *item* carries a bad tag also errors.
        let mut buf = BytesMut::new();
        buf.put_u8(super::REQUEST_BATCH_TAG);
        1u32.encode(&mut buf);
        buf.put_u8(200);
        assert!(matches!(
            Request::from_bytes(buf.freeze()),
            Err(WireError::BadTag {
                context: "request",
                tag: 200
            })
        ));
    }

    #[test]
    fn encoded_len_is_exact_for_protocol_frames() {
        let requests = vec![
            Request::BuildGrid {
                bounds: Rect::new(Point::new(0.0, 0.0), Point::new(10.0, 10.0)),
                cell_len: 2.5,
                return_cells: true,
            },
            Request::Aggregate {
                range: Range::circle(Point::new(4.0, 6.0), 3.0),
                mode: LocalMode::Lsr {
                    epsilon: 0.1,
                    delta: 0.01,
                    sum0: 5.0,
                },
            },
            Request::CellContributions {
                range: Range::rect(Point::new(0.0, 0.0), Point::new(1.0, 1.0)),
                cells: vec![1, 2, 3],
                mode: LocalMode::Exact,
            },
            Request::HistogramEstimate {
                range: Range::circle(Point::new(4.0, 6.0), 3.0),
            },
            Request::MemoryReport,
            Request::Ping,
        ];
        for r in &requests {
            assert_eq!(r.encoded_len(), r.to_bytes().len(), "{r:?}");
        }
        let batch = Request::Batch(requests);
        assert_eq!(batch.encoded_len(), batch.to_bytes().len());
        let responses = vec![
            Response::Grid {
                bounds: Rect::new(Point::new(0.0, 0.0), Point::new(10.0, 10.0)),
                cell_len: 2.5,
                cells: vec![Aggregate::ZERO; 16],
                outside: 3,
            },
            Response::GridAck {
                total: Aggregate::ZERO,
                outside: 0,
            },
            Response::Agg(Aggregate::ZERO),
            Response::AggVec(vec![Aggregate::ZERO; 2]),
            Response::Memory(SiloMemoryReport::default()),
            Response::Pong,
            Response::Error("boom".to_string()),
            Response::Transient("try again".to_string()),
            Response::DeadlineExceeded { late_by_us: 1234 },
        ];
        for r in &responses {
            assert_eq!(r.encoded_len(), r.to_bytes().len(), "{r:?}");
        }
        let batch = Response::Batch(responses);
        assert_eq!(batch.encoded_len(), batch.to_bytes().len());
    }

    #[test]
    fn borrowed_batch_encoding_matches_owned() {
        let a = Request::Ping;
        let b = Request::Aggregate {
            range: Range::circle(Point::new(1.0, 2.0), 3.0),
            mode: LocalMode::Exact,
        };
        let borrowed = super::encode_batch_request(&[&a, &b]);
        let owned = Request::Batch(vec![a, b]).to_bytes();
        assert_eq!(borrowed.to_vec(), owned.to_vec());
    }

    #[test]
    fn request_sizes_reflect_payload() {
        // A NonIID cell-contribution request grows with the boundary cell
        // count — the O(√|g₀|) communication term comes from here.
        let small = Request::CellContributions {
            range: Range::circle(Point::new(0.0, 0.0), 1.0),
            cells: vec![1],
            mode: LocalMode::Exact,
        }
        .to_bytes()
        .len();
        let large = Request::CellContributions {
            range: Range::circle(Point::new(0.0, 0.0), 1.0),
            cells: (0..100).collect(),
            mode: LocalMode::Exact,
        }
        .to_bytes()
        .len();
        assert_eq!(large - small, 99 * 4);
    }
}
