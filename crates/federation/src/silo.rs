//! A data silo: one autonomous member of the federation.
//!
//! Each silo owns its horizontal partition `P_{s_i}` and serves the
//! protocol of [`crate::protocol`] from behind a channel — the provider
//! can only interact through the query interface, never touch the rows
//! (the federation constraint of Sec. 2). A silo builds, at construction:
//!
//! * an aggregate R-tree over its objects (exact local queries, EXACT
//!   baseline, and level `T_0` of the forest);
//! * an LSR-Forest (Alg. 5) for O(log 1/ε) approximate local queries;
//! * a MinSkew histogram for the OPTA baseline;
//!
//! and, on the provider's `BuildGrid` request (Alg. 1), a grid index over
//! the shared spec which it returns and retains (it needs the spec to map
//! cell ids to rectangles for `CellContributions`).

use std::panic::{catch_unwind, AssertUnwindSafe};
use std::path::Path;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;

use bytes::{Bytes, BytesMut};
use rand::rngs::StdRng;
use rand::SeedableRng;

use fedra_obs::metrics::{Counter, Histogram};
use fedra_obs::MetricsRegistry;

use fedra_geo::{Range, Rect, SpatialObject};
use fedra_index::grid::{CellId, GridIndex, GridSpec};
use fedra_index::histogram::{MinSkewConfig, MinSkewHistogram};
use fedra_index::lsr::LsrForest;
use fedra_index::pool::WorkerPool;
use fedra_index::rtree::{RTree, RTreeConfig};
use fedra_index::{Aggregate, GridPyramid, IndexMemory};

use crate::protocol::{LocalMode, Request, Response, SiloMemoryReport};
use crate::wire::{Wire, WireError, WireResult};

/// Identifier of a silo within its federation: `0 .. m`.
pub type SiloId = usize;

/// Construction parameters for a silo.
#[derive(Debug, Clone, Copy)]
pub struct SiloConfig {
    /// R-tree fanout for the exact index and every LSR level.
    pub rtree: RTreeConfig,
    /// MinSkew histogram parameters (OPTA substrate).
    pub histogram: MinSkewConfig,
    /// Region the histogram covers (normally the federation bounds).
    pub bounds: Rect,
    /// Seed for the LSR level sampling (kept per-silo for reproducibility).
    pub lsr_seed: u64,
    /// Worker-pool size for intra-silo parallelism (index construction,
    /// batch fan-out, per-cell contributions). `0` = automatic: available
    /// cores clamped to [`fedra_index::pool::MAX_AUTO_THREADS`], with the
    /// `FEDRA_SILO_THREADS` environment variable as an override. Results
    /// are bit-identical for every value — the pool only changes speed.
    pub threads: usize,
}

/// The silo's in-memory state and request handler.
///
/// `Silo` itself is transport-agnostic; [`crate::transport`] wraps it in a
/// worker thread. Handling is `&self` — all indexes are read-only after
/// construction except the grid, which is set once by `BuildGrid` (guarded
/// by a `parking_lot::RwLock`).
pub struct Silo {
    id: SiloId,
    num_objects: usize,
    rtree: RTree,
    lsr: LsrForest,
    histogram: MinSkewHistogram,
    grid: parking_lot::RwLock<Option<RetainedGrid>>,
    /// Scoped worker pool shared by index builds and request fan-out.
    pool: WorkerPool,
    /// Failure injection: when set, every request is answered with
    /// `Response::Error`.
    failed: Arc<AtomicBool>,
    /// Number of requests served (diagnostics, load-balance tests).
    served: Arc<AtomicU64>,
    /// Silo-side observability: registry plus pre-resolved handles so the
    /// request hot path pays one relaxed atomic per record, never a map
    /// lookup or an allocation.
    metrics: SiloMetrics,
}

/// The grid state a silo retains after `BuildGrid`: the index itself
/// (cell-id → rectangle mapping for `CellContributions`) plus its
/// coarsening pyramid, whose level-1 prefix array gives an O(1)
/// provably-empty probe used to prune clipped-aggregate work.
struct RetainedGrid {
    index: GridIndex,
    pyramid: GridPyramid,
}

/// A silo's persisted grid state: everything needed to re-retain the
/// [`RetainedGrid`] after a crash without re-scanning the partition
/// (DESIGN.md §5i).
///
/// The on-disk layout is the wire encoding of this struct followed by a
/// trailing FNV-1a checksum of those bytes; [`Silo::load_grid_snapshot`]
/// refuses a file whose checksum mismatches (torn write, bit rot) and
/// ignores one whose `num_objects` disagrees with the live partition
/// (stale snapshot from before a re-shard) — the grid is then simply
/// rebuilt by the next `BuildGrid`, so a bad snapshot can delay recovery
/// but never corrupt an answer.
#[derive(Debug, Clone, PartialEq)]
pub struct SiloGridSnapshot {
    /// Grid bounds the snapshot was built with.
    pub bounds: Rect,
    /// Cell side length.
    pub cell_len: f64,
    /// Partition size when the grid was built (staleness guard).
    pub num_objects: u64,
    /// The full cell vector, row-major per [`GridSpec`].
    pub cells: Vec<Aggregate>,
    /// Out-of-bounds object count.
    pub outside: u64,
}

impl Wire for SiloGridSnapshot {
    fn encode(&self, buf: &mut BytesMut) {
        self.bounds.encode(buf);
        self.cell_len.encode(buf);
        self.num_objects.encode(buf);
        self.cells.encode(buf);
        self.outside.encode(buf);
    }

    fn encoded_len(&self) -> usize {
        self.bounds.encoded_len()
            + self.cell_len.encoded_len()
            + self.num_objects.encoded_len()
            + self.cells.encoded_len()
            + self.outside.encoded_len()
    }

    fn decode(buf: &mut Bytes) -> WireResult<Self> {
        let bounds = Rect::decode(buf)?;
        let cell_len = f64::decode(buf)?;
        let num_objects = u64::decode(buf)?;
        let cells = Vec::<Aggregate>::decode(buf)?;
        let outside = u64::decode(buf)?;
        let snapshot = Self {
            bounds,
            cell_len,
            num_objects,
            cells,
            outside,
        };
        if snapshot.cells.len() != GridSpec::new(bounds, cell_len).num_cells() {
            return Err(WireError::BadLength {
                context: "silo grid snapshot cells",
                len: snapshot.cells.len(),
            });
        }
        Ok(snapshot)
    }
}

/// FNV-1a over `bytes` — the same checksum the socket frame headers use,
/// kept local so the silo layer stays transport-agnostic.
fn snapshot_checksum(bytes: &[u8]) -> u64 {
    let mut hash = 0xCBF2_9CE4_8422_2325u64;
    for &b in bytes {
        hash ^= b as u64;
        hash = hash.wrapping_mul(0x0000_0100_0000_01B3);
    }
    hash
}

/// The silo's metric registry with cached hot-path handles.
///
/// Shared across the worker-thread boundary by `Arc`, like the served
/// counter and failure flag: metrics are diagnostics, not data, so they
/// may bypass the byte-counted wire path.
struct SiloMetrics {
    registry: Arc<MetricsRegistry>,
    requests: RequestCounters,
    batch_items: Arc<Histogram>,
    batch_panics: Arc<Counter>,
    pool_items_per_task: Arc<Histogram>,
    /// Boundary cells answered `ZERO` straight off the pyramid's
    /// emptiness probe, skipping the clipped R-tree/LSR descent.
    cells_pruned: Arc<Counter>,
    /// One counter per LSR level, indexed by the level picked (Alg. 6);
    /// the paper's O(log 1/ε) claim is readable straight off these.
    lsr_levels: Vec<Arc<Counter>>,
    /// Grid snapshots written to disk (crash-recovery, DESIGN.md §5i).
    snapshot_saved: Arc<Counter>,
    /// Grid snapshots successfully restored from disk.
    snapshot_loaded: Arc<Counter>,
}

/// Per-request-kind counters, one per [`Request`] variant.
struct RequestCounters {
    build_grid: Arc<Counter>,
    aggregate: Arc<Counter>,
    cell_contributions: Arc<Counter>,
    histogram_estimate: Arc<Counter>,
    memory_report: Arc<Counter>,
    ping: Arc<Counter>,
    nested_batch: Arc<Counter>,
}

impl SiloMetrics {
    fn new(id: SiloId, lsr_levels: usize, pool: &WorkerPool) -> Self {
        let registry = Arc::new(MetricsRegistry::new());
        let kind = |k: &str| {
            registry.counter(&format!(
                "fedra_silo_requests_total{{silo=\"{id}\",kind=\"{k}\"}}"
            ))
        };
        let requests = RequestCounters {
            build_grid: kind("build_grid"),
            aggregate: kind("aggregate"),
            cell_contributions: kind("cell_contributions"),
            histogram_estimate: kind("histogram_estimate"),
            memory_report: kind("memory_report"),
            ping: kind("ping"),
            nested_batch: kind("nested_batch"),
        };
        registry.set_gauge(
            &format!("fedra_silo_pool_threads{{silo=\"{id}\"}}"),
            pool.threads() as f64,
        );
        Self {
            requests,
            batch_items: registry
                .histogram(&format!("fedra_silo_pool_batch_items{{silo=\"{id}\"}}")),
            batch_panics: registry
                .counter(&format!("fedra_silo_batch_panics_total{{silo=\"{id}\"}}")),
            pool_items_per_task: registry
                .histogram(&format!("fedra_silo_pool_items_per_task{{silo=\"{id}\"}}")),
            cells_pruned: registry
                .counter(&format!("fedra_silo_cells_pruned_total{{silo=\"{id}\"}}")),
            lsr_levels: (0..lsr_levels)
                .map(|l| {
                    registry.counter(&format!(
                        "fedra_silo_lsr_level_total{{silo=\"{id}\",level=\"{l}\"}}"
                    ))
                })
                .collect(),
            snapshot_saved: registry
                .counter(&format!("fedra_snapshot_saved_total{{silo=\"{id}\"}}")),
            snapshot_loaded: registry
                .counter(&format!("fedra_snapshot_loaded_total{{silo=\"{id}\"}}")),
            registry,
        }
    }

    fn record_level(&self, level: usize) {
        if let Some(counter) = self.lsr_levels.get(level) {
            counter.inc();
        }
    }
}

impl Silo {
    /// Builds a silo over its partition. O(n log n).
    pub fn new(id: SiloId, objects: Vec<SpatialObject>, config: SiloConfig) -> Self {
        let mut rng = StdRng::seed_from_u64(
            config.lsr_seed ^ (id as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15),
        );
        let pool = WorkerPool::new(config.threads);
        let lsr = LsrForest::build_with(&objects, config.rtree, &mut rng, &pool);
        let histogram = MinSkewHistogram::build(config.bounds, config.histogram, &objects);
        let num_objects = objects.len();
        let rtree = RTree::bulk_load_with(objects, config.rtree, &pool);
        let metrics = SiloMetrics::new(id, lsr.num_levels(), &pool);
        Self {
            id,
            num_objects,
            rtree,
            lsr,
            histogram,
            grid: parking_lot::RwLock::new(None),
            pool,
            failed: Arc::new(AtomicBool::new(false)),
            served: Arc::new(AtomicU64::new(0)),
            metrics,
        }
    }

    /// This silo's id.
    pub fn id(&self) -> SiloId {
        self.id
    }

    /// Number of objects in the partition (`n_{s_i}`).
    pub fn len(&self) -> usize {
        self.num_objects
    }

    /// Whether the partition is empty.
    pub fn is_empty(&self) -> bool {
        self.num_objects == 0
    }

    /// Shared failure flag (used by the transport for failure injection).
    pub fn failure_flag(&self) -> Arc<AtomicBool> {
        Arc::clone(&self.failed)
    }

    /// Shared served-request counter.
    pub fn served_counter(&self) -> Arc<AtomicU64> {
        Arc::clone(&self.served)
    }

    /// Shared silo-side metrics registry (request counts by kind, batch
    /// sizes, LSR level-selection counters).
    pub fn metrics(&self) -> Arc<MetricsRegistry> {
        Arc::clone(&self.metrics.registry)
    }

    /// Serves one wire frame (Alg. 1 line 2, Alg. 2 line 3, Alg. 3 line 3,
    /// OPTA, metrics).
    ///
    /// A [`Request::Batch`] frame is unpacked here: the items fan out
    /// across the silo's worker pool (a coalesced frame of `k` sub-queries
    /// costs ~`k/P` silo time) and the answers are reassembled in request
    /// order into a [`Response::Batch`] of the same arity. Per-item
    /// failures — including a panicking handler — surface as
    /// `Response::Error` items; one bad sub-request never aborts its
    /// batch-mates.
    pub fn handle(&self, request: Request) -> Response {
        match request {
            Request::Batch(requests) => {
                let id = self.id;
                self.metrics.batch_items.observe(requests.len() as u64);
                // items/task for the pool fan-out below: every task takes
                // an even share of the batch (ceil division).
                let tasks = self.pool.threads().max(1);
                self.metrics
                    .pool_items_per_task
                    .observe(requests.len().div_ceil(tasks) as u64);
                Response::Batch(self.pool.map_vec(requests, |_, item| {
                    catch_unwind(AssertUnwindSafe(|| self.handle_one(item))).unwrap_or_else(|_| {
                        self.metrics.batch_panics.inc();
                        Response::Error(format!("silo {id}: batch item panicked"))
                    })
                }))
            }
            other => self.handle_one(other),
        }
    }

    /// Serves one logical (non-batch) request.
    ///
    /// The served counter counts logical requests: a batch of `n`
    /// increments it `n` times, so load-balance diagnostics see the same
    /// numbers whether the provider coalesces frames or not.
    fn handle_one(&self, request: Request) -> Response {
        self.served.fetch_add(1, Ordering::Relaxed);
        self.count_request(&request);
        if self.failed.load(Ordering::Acquire) {
            return Response::Error(format!("silo {} unavailable", self.id));
        }
        match request {
            Request::BuildGrid {
                bounds,
                cell_len,
                return_cells,
            } => self.handle_build_grid(bounds, cell_len, return_cells),
            Request::Aggregate { range, mode } => Response::Agg(self.local_aggregate(&range, mode)),
            Request::CellContributions { range, cells, mode } => {
                self.handle_cell_contributions(&range, &cells, mode)
            }
            Request::HistogramEstimate { range } => Response::Agg(self.histogram.estimate(&range)),
            Request::MemoryReport => Response::Memory(self.memory_report()),
            Request::Ping => Response::Pong,
            // One level of batching is all the protocol grants: nesting
            // would let a malformed frame amplify work quadratically.
            Request::Batch(_) => {
                Response::Error(format!("silo {}: nested batch rejected", self.id))
            }
        }
    }

    /// Bumps the per-kind request counter. Exhaustive over [`Request`] so
    /// a new protocol variant cannot arrive unobserved.
    fn count_request(&self, request: &Request) {
        let counters = &self.metrics.requests;
        match request {
            Request::BuildGrid { .. } => counters.build_grid.inc(),
            Request::Aggregate { .. } => counters.aggregate.inc(),
            Request::CellContributions { .. } => counters.cell_contributions.inc(),
            Request::HistogramEstimate { .. } => counters.histogram_estimate.inc(),
            Request::MemoryReport => counters.memory_report.inc(),
            Request::Ping => counters.ping.inc(),
            Request::Batch(_) => counters.nested_batch.inc(),
        }
    }

    /// A wire-serializable copy of the retained grid (`None` before
    /// `BuildGrid` or a successful [`Self::load_grid_snapshot`]).
    pub fn grid_snapshot(&self) -> Option<SiloGridSnapshot> {
        let guard = self.grid.read();
        let retained = guard.as_ref()?;
        let spec = *retained.index.spec();
        Some(SiloGridSnapshot {
            bounds: spec.bounds(),
            cell_len: spec.cell_len(),
            num_objects: self.num_objects as u64,
            cells: retained.index.cells().to_vec(),
            outside: retained.index.outside_count(),
        })
    }

    /// Persists the retained grid to `path` (encoding + trailing FNV-1a
    /// checksum), replacing any previous file. Returns `Ok(false)` when no
    /// grid has been built yet. The write goes through a sibling temp file
    /// and a rename so a crash mid-save leaves the old snapshot intact.
    pub fn save_grid_snapshot(&self, path: impl AsRef<Path>) -> std::io::Result<bool> {
        let Some(snapshot) = self.grid_snapshot() else {
            return Ok(false);
        };
        let path = path.as_ref();
        let body = Wire::to_bytes(&snapshot);
        let mut file = Vec::with_capacity(body.len() + 8);
        file.extend_from_slice(&body);
        file.extend_from_slice(&snapshot_checksum(&body).to_le_bytes());
        let tmp = path.with_extension("tmp");
        std::fs::write(&tmp, &file)?;
        std::fs::rename(&tmp, path)?;
        self.metrics.snapshot_saved.inc();
        Ok(true)
    }

    /// Restores the retained grid from a file written by
    /// [`Self::save_grid_snapshot`].
    ///
    /// Returns `Ok(true)` when the grid was restored, `Ok(false)` when the
    /// file is missing or stale (its `num_objects` disagrees with the live
    /// partition), and `Err` on corruption — a failed checksum or an
    /// undecodable body. A restored grid makes the next matching
    /// `BuildGrid` answer from memory instead of re-scanning the
    /// partition (see [`Self::handle`]'s grid reuse).
    pub fn load_grid_snapshot(&self, path: impl AsRef<Path>) -> std::io::Result<bool> {
        let raw = match std::fs::read(path.as_ref()) {
            Ok(raw) => raw,
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => return Ok(false),
            Err(e) => return Err(e),
        };
        let invalid = |msg: String| std::io::Error::new(std::io::ErrorKind::InvalidData, msg);
        if raw.len() < 8 {
            return Err(invalid("grid snapshot shorter than its checksum".into()));
        }
        let (body, tail) = raw.split_at(raw.len() - 8);
        let stored = match <[u8; 8]>::try_from(tail) {
            Ok(bytes) => u64::from_le_bytes(bytes),
            Err(_) => return Err(invalid("grid snapshot checksum tail malformed".into())),
        };
        let computed = snapshot_checksum(body);
        if stored != computed {
            return Err(invalid(format!(
                "grid snapshot checksum mismatch (stored {stored:#x}, computed {computed:#x})"
            )));
        }
        let snapshot = SiloGridSnapshot::from_bytes(Bytes::from(body.to_vec()))
            .map_err(|e| invalid(format!("undecodable grid snapshot: {e}")))?;
        if snapshot.num_objects != self.num_objects as u64 {
            // Stale, not corrupt: the partition changed since the save.
            // Ignore it and let the next BuildGrid rebuild from scratch.
            return Ok(false);
        }
        let spec = GridSpec::new(snapshot.bounds, snapshot.cell_len);
        let index = GridIndex::from_parts(spec, snapshot.cells, snapshot.outside);
        let pyramid = GridPyramid::build_with(&index, &self.pool);
        *self.grid.write() = Some(RetainedGrid { index, pyramid });
        self.metrics.snapshot_loaded.inc();
        Ok(true)
    }

    fn handle_build_grid(&self, bounds: Rect, cell_len: f64, return_cells: bool) -> Response {
        let spec = GridSpec::new(bounds, cell_len);
        // Reuse an already-retained grid for the same spec: the partition
        // is immutable in-process, so the retained cells are bit-identical
        // to what a rebuild would produce. This is what makes a restored
        // snapshot (crash recovery) or a repeated warm-start `BuildGrid`
        // answer without re-scanning the R-tree.
        {
            let guard = self.grid.read();
            if let Some(retained) = guard.as_ref() {
                if *retained.index.spec() == spec {
                    let outside = retained.index.outside_count();
                    return if return_cells {
                        Response::Grid {
                            bounds,
                            cell_len,
                            cells: retained.index.cells().to_vec(),
                            outside,
                        }
                    } else {
                        Response::GridAck {
                            total: retained.index.total(),
                            outside,
                        }
                    };
                }
            }
        }
        // The R-tree keeps the canonical copy of the partition: index it
        // directly (sharded across the pool) instead of re-collecting it
        // through an inflated-MBR range query, which paid an O(n)
        // traversal plus a copy and could miss objects at the inflate
        // boundary.
        let grid = GridIndex::build_with(spec, self.rtree.objects(), &self.pool);
        let outside = grid.outside_count();
        let response = if return_cells {
            Response::Grid {
                bounds,
                cell_len,
                cells: grid.cells().to_vec(),
                outside,
            }
        } else {
            // Warm start: the provider already holds the cells; it only
            // needs proof that this silo's data still matches.
            Response::GridAck {
                total: grid.total(),
                outside,
            }
        };
        let pyramid = GridPyramid::build_with(&grid, &self.pool);
        *self.grid.write() = Some(RetainedGrid {
            index: grid,
            pyramid,
        });
        response
    }

    /// The silo-local range aggregation `Q(s_k, R, F)` — exact on the
    /// aR-tree or approximate via the LSR-Forest (Alg. 6).
    fn local_aggregate(&self, range: &Range, mode: LocalMode) -> Aggregate {
        match mode {
            LocalMode::Exact => self.rtree.aggregate(range),
            LocalMode::Lsr {
                epsilon,
                delta,
                sum0,
            } => {
                let (agg, level) = self.lsr.query(range, epsilon, delta, sum0);
                self.metrics.record_level(level);
                agg
            }
        }
    }

    fn handle_cell_contributions(
        &self,
        range: &Range,
        cells: &[CellId],
        mode: LocalMode,
    ) -> Response {
        let guard = self.grid.read();
        let Some(retained) = guard.as_ref() else {
            return Response::Error(format!(
                "silo {}: grid index not built yet (BuildGrid must precede CellContributions)",
                self.id
            ));
        };
        let spec = *retained.index.spec();
        // Prune flags are O(1) probes per cell, computed under the read
        // guard; the expensive clipped descent fans out after it drops. A
        // cell is prunable only if its whole *closed* rectangle is empty:
        // an object exactly on the cell's max edge bins into the next
        // row/column, so the 2×2 neighborhood (clamped at the grid edge)
        // must be empty too, not just the cell itself. The pyramid's
        // level-1 prefix probe answers most empty neighborhoods in one
        // rect_sum; the fine-cell sweep catches the rest.
        let pruned: Vec<bool> = cells
            .iter()
            .map(|&id| {
                let (ix, iy) = spec.cell_coords(id);
                let x1 = (ix + 1).min(spec.nx() - 1);
                let y1 = (iy + 1).min(spec.ny() - 1);
                let empty = retained.pyramid.region_empty(ix, iy, x1, y1)
                    || (ix..=x1).all(|cx| {
                        (iy..=y1).all(|cy| retained.index.cell(spec.cell_id(cx, cy)).count == 0.0)
                    });
                if empty {
                    self.metrics.cells_pruned.inc();
                }
                empty
            })
            .collect();
        drop(guard);
        // For the LSR mode, select the level once from the whole-query
        // sum₀ so all per-cell estimates share one sample tree.
        let level = match mode {
            LocalMode::Exact => None,
            LocalMode::Lsr {
                epsilon,
                delta,
                sum0,
            } => {
                let l = self.lsr.select_level(epsilon, delta, sum0);
                self.metrics.record_level(l);
                Some(l)
            }
        };
        // The per-cell clipped aggregates (the O(√|g₀|) boundary work of
        // Alg. 3) are independent: fan them across the pool, answers in
        // cell order. Pruned cells short-circuit to `ZERO` — bit-identical
        // to what the clipped descent returns for an empty region (both
        // fold from the monoid identity over nothing).
        let work: Vec<(CellId, bool)> = cells.iter().copied().zip(pruned).collect();
        let out: Vec<Aggregate> = self.pool.map(&work, |_, &(id, skip)| {
            if skip {
                return Aggregate::ZERO;
            }
            let rect = spec.cell_rect_of(id);
            match level {
                None => self.rtree.aggregate_clipped(range, &rect),
                Some(l) => self.lsr.query_clipped_at_level(range, &rect, l),
            }
        });
        Response::AggVec(out)
    }

    /// Memory footprint of the silo's indices.
    pub fn memory_report(&self) -> SiloMemoryReport {
        let rtree = self.rtree.memory_bytes() as u64;
        // The forest includes its own copy of T₀; report only the extra
        // levels so "R-tree + LSR extra" adds up without double counting.
        let lsr_total = self.lsr.memory_bytes() as u64;
        let lsr_extra = lsr_total.saturating_sub(self.lsr.base().memory_bytes() as u64);
        // The pyramid is part of the grid's retained footprint: it exists
        // only alongside the grid and serves the same request path.
        let grid = self
            .grid
            .read()
            .as_ref()
            .map(|g| (g.index.memory_bytes() + g.pyramid.memory_bytes()) as u64)
            .unwrap_or(0);
        SiloMemoryReport {
            rtree,
            lsr_extra,
            grid,
            histogram: self.histogram.memory_bytes() as u64,
        }
    }

    /// Exact local aggregate — a test/diagnostic shortcut that bypasses
    /// the protocol (the provider must never call this).
    pub fn oracle_aggregate(&self, range: &Range) -> Aggregate {
        self.rtree.aggregate(range)
    }
}

impl std::fmt::Debug for Silo {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Silo")
            .field("id", &self.id)
            .field("objects", &self.num_objects)
            .field("lsr_levels", &self.lsr.num_levels())
            .field("failed", &self.failed.load(Ordering::Relaxed))
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fedra_geo::Point;

    fn bounds() -> Rect {
        Rect::new(Point::new(0.0, 0.0), Point::new(100.0, 100.0))
    }

    fn config() -> SiloConfig {
        SiloConfig {
            rtree: RTreeConfig::default(),
            histogram: MinSkewConfig {
                resolution: 32,
                budget: 32,
            },
            bounds: bounds(),
            lsr_seed: 7,
            threads: 0,
        }
    }

    fn objects(n: usize) -> Vec<SpatialObject> {
        let mut state = 11u64;
        (0..n)
            .map(|i| {
                state = state
                    .wrapping_mul(6364136223846793005)
                    .wrapping_add(1442695040888963407);
                let x = (state >> 11) as f64 / (1u64 << 53) as f64 * 100.0;
                state = state
                    .wrapping_mul(6364136223846793005)
                    .wrapping_add(1442695040888963407);
                let y = (state >> 11) as f64 / (1u64 << 53) as f64 * 100.0;
                SpatialObject::at(x, y, (i % 4) as f64 + 1.0)
            })
            .collect()
    }

    #[test]
    fn ping_pongs() {
        let s = Silo::new(0, objects(10), config());
        assert_eq!(s.handle(Request::Ping), Response::Pong);
        assert_eq!(s.served_counter().load(Ordering::Relaxed), 1);
    }

    #[test]
    fn exact_aggregate_matches_oracle() {
        let objs = objects(2000);
        let s = Silo::new(1, objs.clone(), config());
        let q = Range::circle(Point::new(50.0, 50.0), 20.0);
        let resp = s.handle(Request::Aggregate {
            range: q,
            mode: LocalMode::Exact,
        });
        let brute: f64 = objs
            .iter()
            .filter(|o| q.contains_point(&o.location))
            .count() as f64;
        match resp {
            Response::Agg(a) => assert_eq!(a.count, brute),
            other => panic!("unexpected response {other:?}"),
        }
    }

    #[test]
    fn lsr_aggregate_is_close() {
        let objs = objects(20_000);
        let s = Silo::new(2, objs.clone(), config());
        let q = Range::circle(Point::new(50.0, 50.0), 30.0);
        let exact = s.oracle_aggregate(&q).count;
        let resp = s.handle(Request::Aggregate {
            range: q,
            mode: LocalMode::Lsr {
                epsilon: 0.1,
                delta: 0.01,
                sum0: exact,
            },
        });
        match resp {
            Response::Agg(a) => {
                let rel = (a.count - exact).abs() / exact;
                assert!(rel < 0.25, "LSR rel error {rel}");
            }
            other => panic!("unexpected response {other:?}"),
        }
    }

    #[test]
    fn build_grid_then_contributions() {
        let objs = objects(1000);
        let s = Silo::new(3, objs.clone(), config());
        // Contributions before BuildGrid must fail loudly.
        let q = Range::circle(Point::new(50.0, 50.0), 10.0);
        let premature = s.handle(Request::CellContributions {
            range: q,
            cells: vec![0],
            mode: LocalMode::Exact,
        });
        assert!(matches!(premature, Response::Error(_)));

        let resp = s.handle(Request::BuildGrid {
            bounds: bounds(),
            cell_len: 10.0,
            return_cells: true,
        });
        let grid = resp.into_grid_index().expect("grid");
        assert_eq!(grid.total().count, 1000.0);

        let cls = grid.spec().classify(&q);
        let resp = s.handle(Request::CellContributions {
            range: q,
            cells: cls.boundary.clone(),
            mode: LocalMode::Exact,
        });
        match resp {
            Response::AggVec(v) => {
                assert_eq!(v.len(), cls.boundary.len());
                // Boundary + covered contributions must reassemble the
                // exact local answer.
                let boundary_total: f64 = v.iter().map(|a| a.count).sum();
                let covered_total: f64 = cls
                    .covered
                    .iter()
                    .map(|&id| {
                        s.oracle_aggregate(&Range::Rect(grid.spec().cell_rect_of(id)))
                            .count
                    })
                    .sum();
                let exact = s.oracle_aggregate(&q).count;
                assert!(
                    (boundary_total + covered_total - exact).abs() <= 1e-9 + exact * 1e-12,
                    "{boundary_total} + {covered_total} != {exact}"
                );
            }
            other => panic!("unexpected response {other:?}"),
        }
    }

    #[test]
    fn pruned_contributions_are_bit_identical_to_unpruned() {
        // All data in the left half; a query over the right half makes
        // every requested cell empty. The pyramid prune must answer the
        // exact same bits the clipped R-tree descent would (ZERO), and the
        // prune counter must show it actually skipped the work.
        let objs: Vec<SpatialObject> = (0..500)
            .map(|i| SpatialObject::at((i % 40) as f64, (i / 40) as f64 * 3.0, 1.0))
            .collect();
        let s = Silo::new(20, objs, config());
        s.handle(Request::BuildGrid {
            bounds: bounds(),
            cell_len: 10.0,
            return_cells: true,
        });
        let q = Range::circle(Point::new(80.0, 50.0), 15.0);
        let spec = GridSpec::new(bounds(), 10.0);
        let cls = spec.classify(&q);
        let mut cells = cls.boundary.clone();
        cells.extend(&cls.covered);
        let resp = s.handle(Request::CellContributions {
            range: q,
            cells: cells.clone(),
            mode: LocalMode::Exact,
        });
        let Response::AggVec(got) = resp else {
            panic!("unexpected response");
        };
        for (i, (&id, a)) in cells.iter().zip(&got).enumerate() {
            let direct = s.rtree.aggregate_clipped(&q, &spec.cell_rect_of(id));
            assert_eq!(a.count.to_bits(), direct.count.to_bits(), "cell {i}");
            assert_eq!(a.sum.to_bits(), direct.sum.to_bits(), "cell {i}");
        }
        let pruned = s
            .metrics()
            .snapshot()
            .counters
            .get("fedra_silo_cells_pruned_total{silo=\"20\"}")
            .copied()
            .unwrap_or(0);
        assert!(pruned > 0, "prune must actually skip empty cells");
    }

    #[test]
    fn max_edge_object_is_never_falsely_pruned() {
        // An object at exactly (10, 10) bins into grid cell (1, 1), yet it
        // sits on the *closed* rectangle of cell (0, 0). Pruning cell
        // (0, 0) from its own count alone would drop the object; the 2×2
        // neighborhood check must keep it.
        let s = Silo::new(21, vec![SpatialObject::at(10.0, 10.0, 5.0)], config());
        s.handle(Request::BuildGrid {
            bounds: bounds(),
            cell_len: 10.0,
            return_cells: true,
        });
        let spec = GridSpec::new(bounds(), 10.0);
        assert_eq!(
            s.grid
                .read()
                .as_ref()
                .map(|g| g.index.cell(spec.cell_id(0, 0)).count),
            Some(0.0),
            "the object bins into cell (1,1), not (0,0)"
        );
        let q = Range::rect(Point::new(0.0, 0.0), Point::new(10.0, 10.0));
        let resp = s.handle(Request::CellContributions {
            range: q,
            cells: vec![spec.cell_id(0, 0)],
            mode: LocalMode::Exact,
        });
        let Response::AggVec(v) = resp else {
            panic!("unexpected response");
        };
        assert_eq!(v[0].count, 1.0, "edge object must survive the prune");
        assert_eq!(v[0].sum, 5.0);
    }

    #[test]
    fn histogram_estimate_is_reasonable() {
        let objs = objects(20_000);
        let s = Silo::new(4, objs.clone(), config());
        let q = Range::circle(Point::new(50.0, 50.0), 25.0);
        let exact: f64 = objs
            .iter()
            .filter(|o| q.contains_point(&o.location))
            .count() as f64;
        match s.handle(Request::HistogramEstimate { range: q }) {
            Response::Agg(a) => {
                let rel = (a.count - exact).abs() / exact;
                assert!(rel < 0.2, "histogram rel error {rel}");
            }
            other => panic!("unexpected response {other:?}"),
        }
    }

    #[test]
    fn batch_serves_items_in_order() {
        let s = Silo::new(8, objects(500), config());
        let q = Range::circle(Point::new(50.0, 50.0), 20.0);
        let expected = s.oracle_aggregate(&q);
        let resp = s.handle(Request::Batch(vec![
            Request::Ping,
            Request::Aggregate {
                range: q,
                mode: LocalMode::Exact,
            },
            Request::MemoryReport,
        ]));
        match resp {
            Response::Batch(items) => {
                assert_eq!(items.len(), 3);
                assert_eq!(items[0], Response::Pong);
                assert_eq!(items[1], Response::Agg(expected));
                assert!(matches!(items[2], Response::Memory(_)));
            }
            other => panic!("unexpected response {other:?}"),
        }
        // served counts logical sub-requests, not frames.
        assert_eq!(s.served_counter().load(Ordering::Relaxed), 3);
    }

    #[test]
    fn panicking_batch_item_degrades_to_error() {
        // A BuildGrid with a negative cell length panics inside the
        // handler (GridSpec::new asserts); inside a batch that must come
        // back as Response::Error for that item only, with its
        // batch-mates answered normally and the pool intact for the
        // follow-up frame.
        let mut cfg = config();
        cfg.threads = 4;
        let s = Silo::new(12, objects(200), cfg);
        let resp = s.handle(Request::Batch(vec![
            Request::Ping,
            Request::BuildGrid {
                bounds: bounds(),
                cell_len: -1.0,
                return_cells: true,
            },
            Request::Ping,
        ]));
        match resp {
            Response::Batch(items) => {
                assert_eq!(items.len(), 3);
                assert_eq!(items[0], Response::Pong);
                assert!(
                    matches!(&items[1], Response::Error(e) if e.contains("panicked")),
                    "got {:?}",
                    items[1]
                );
                assert_eq!(items[2], Response::Pong);
            }
            other => panic!("unexpected response {other:?}"),
        }
        // The silo is not poisoned: the next frame still answers.
        assert_eq!(s.handle(Request::Ping), Response::Pong);
    }

    #[test]
    fn nested_batch_is_rejected_per_item() {
        let s = Silo::new(9, objects(10), config());
        let resp = s.handle(Request::Batch(vec![
            Request::Ping,
            Request::Batch(vec![Request::Ping]),
            Request::Ping,
        ]));
        match resp {
            Response::Batch(items) => {
                assert_eq!(items[0], Response::Pong);
                assert!(matches!(&items[1], Response::Error(e) if e.contains("nested batch")));
                assert_eq!(items[2], Response::Pong);
            }
            other => panic!("unexpected response {other:?}"),
        }
    }

    #[test]
    fn failed_silo_answers_batches_item_by_item() {
        let s = Silo::new(10, objects(10), config());
        s.failure_flag().store(true, Ordering::Release);
        match s.handle(Request::Batch(vec![Request::Ping, Request::Ping])) {
            Response::Batch(items) => {
                assert_eq!(items.len(), 2);
                for item in items {
                    assert!(matches!(item, Response::Error(_)));
                }
            }
            other => panic!("unexpected response {other:?}"),
        }
    }

    #[test]
    fn empty_batch_yields_empty_batch() {
        let s = Silo::new(11, objects(10), config());
        assert_eq!(s.handle(Request::Batch(vec![])), Response::Batch(vec![]));
        assert_eq!(s.served_counter().load(Ordering::Relaxed), 0);
    }

    #[test]
    fn failure_flag_rejects_requests() {
        let s = Silo::new(5, objects(10), config());
        s.failure_flag().store(true, Ordering::Release);
        assert!(matches!(s.handle(Request::Ping), Response::Error(_)));
        s.failure_flag().store(false, Ordering::Release);
        assert_eq!(s.handle(Request::Ping), Response::Pong);
    }

    #[test]
    fn memory_report_is_consistent() {
        let s = Silo::new(6, objects(5000), config());
        let before = s.memory_report();
        assert!(before.rtree > 0);
        assert!(before.lsr_extra > 0);
        assert!(before.histogram > 0);
        assert_eq!(before.grid, 0); // not built yet
        s.handle(Request::BuildGrid {
            bounds: bounds(),
            cell_len: 5.0,
            return_cells: true,
        });
        let after = s.memory_report();
        assert!(after.grid > 0);
        assert!(after.total() > before.total());
    }

    #[test]
    fn grid_snapshot_round_trips_through_disk() {
        let objs = objects(800);
        let dir = std::env::temp_dir().join("fedra-silo-snapshot-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("roundtrip.grid");

        let s = Silo::new(30, objs.clone(), config());
        // Nothing to save before BuildGrid.
        assert!(!s.save_grid_snapshot(&path).unwrap());
        let built = s.handle(Request::BuildGrid {
            bounds: bounds(),
            cell_len: 10.0,
            return_cells: true,
        });
        assert!(s.save_grid_snapshot(&path).unwrap());

        // A fresh silo over the same partition restores the identical grid.
        let r = Silo::new(30, objs, config());
        assert!(r.load_grid_snapshot(&path).unwrap());
        let reused = r.handle(Request::BuildGrid {
            bounds: bounds(),
            cell_len: 10.0,
            return_cells: true,
        });
        assert_eq!(reused, built, "restored grid must answer bit-identically");
        let counters = r.metrics().snapshot().counters;
        assert_eq!(
            counters.get("fedra_snapshot_loaded_total{silo=\"30\"}"),
            Some(&1)
        );
        let counters = s.metrics().snapshot().counters;
        assert_eq!(
            counters.get("fedra_snapshot_saved_total{silo=\"30\"}"),
            Some(&1)
        );
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn stale_snapshot_is_ignored_corrupt_snapshot_is_an_error() {
        let dir = std::env::temp_dir().join("fedra-silo-snapshot-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("stale.grid");

        let s = Silo::new(31, objects(100), config());
        s.handle(Request::BuildGrid {
            bounds: bounds(),
            cell_len: 10.0,
            return_cells: false,
        });
        assert!(s.save_grid_snapshot(&path).unwrap());

        // Same file, different partition size: stale, silently ignored.
        let other = Silo::new(31, objects(101), config());
        assert!(!other.load_grid_snapshot(&path).unwrap());
        assert!(other.grid.read().is_none());

        // Missing file: also a clean false.
        assert!(!other.load_grid_snapshot(dir.join("missing.grid")).unwrap());

        // Flip one body byte: the checksum catches it as an error.
        let mut raw = std::fs::read(&path).unwrap();
        raw[10] ^= 0x01;
        std::fs::write(&path, &raw).unwrap();
        let fresh = Silo::new(31, objects(100), config());
        assert!(fresh.load_grid_snapshot(&path).is_err());
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn build_grid_reuses_retained_grid_only_on_spec_match() {
        let s = Silo::new(32, objects(300), config());
        let first = s.handle(Request::BuildGrid {
            bounds: bounds(),
            cell_len: 10.0,
            return_cells: true,
        });
        let again = s.handle(Request::BuildGrid {
            bounds: bounds(),
            cell_len: 10.0,
            return_cells: true,
        });
        assert_eq!(first, again);
        // A different spec must rebuild, not echo the stale grid.
        let finer = s.handle(Request::BuildGrid {
            bounds: bounds(),
            cell_len: 5.0,
            return_cells: true,
        });
        let Response::Grid { cell_len, .. } = finer else {
            panic!("unexpected response");
        };
        assert_eq!(cell_len, 5.0);
        assert_eq!(
            s.grid.read().as_ref().map(|g| g.index.spec().cell_len()),
            Some(5.0)
        );
    }

    #[test]
    fn empty_silo_answers_zero() {
        let s = Silo::new(7, vec![], config());
        assert!(s.is_empty());
        let q = Range::circle(Point::new(0.0, 0.0), 10.0);
        match s.handle(Request::Aggregate {
            range: q,
            mode: LocalMode::Exact,
        }) {
            Response::Agg(a) => assert!(a.is_zero()),
            other => panic!("unexpected response {other:?}"),
        }
    }
}
