//! Byte-counted transport between the provider and silo worker threads.
//!
//! Each silo runs on its own OS thread and receives length-delimited byte
//! buffers over a crossbeam channel; replies travel back on a per-request
//! oneshot channel. Every buffer is a real [`crate::wire`] encoding — the
//! transport never shortcuts through shared memory — so the byte counters
//! here *are* the paper's communication-cost metric.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Duration;

use bytes::Bytes;
use crossbeam::channel::{bounded, unbounded, Sender};

use crate::protocol::{Request, Response};
use crate::silo::{Silo, SiloId};
use crate::wire::Wire;

/// Per-message envelope overhead, in bytes, charged on top of the payload
/// in each direction.
///
/// Real federations speak RPC over TLS: every request and response pays
/// for TCP/IP + TLS record + HTTP/2 (or gRPC) framing before the first
/// payload byte — roughly half a kilobyte per message in practice. This
/// constant is what makes the fan-out algorithms' O(m) *message* count
/// visible in the byte totals, exactly as in the paper's measured setup;
/// set it to 0 via [`CommStats::with_overhead`] to count pure payload.
pub const DEFAULT_MESSAGE_OVERHEAD: u64 = 512;

/// Communication counters, shared across threads.
///
/// "Up" is provider → silo (requests), "down" is silo → provider
/// (responses). `rounds` counts request/response pairs — the paper's
/// "rounds of interaction". Each recorded message is charged the
/// configured per-message envelope overhead in addition to its payload.
#[derive(Debug)]
pub struct CommStats {
    bytes_up: AtomicU64,
    bytes_down: AtomicU64,
    rounds: AtomicU64,
    overhead: u64,
}

impl Default for CommStats {
    fn default() -> Self {
        Self::with_overhead(DEFAULT_MESSAGE_OVERHEAD)
    }
}

/// A point-in-time copy of [`CommStats`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct CommSnapshot {
    /// Total provider → silo bytes.
    pub bytes_up: u64,
    /// Total silo → provider bytes.
    pub bytes_down: u64,
    /// Total request/response rounds.
    pub rounds: u64,
}

impl CommSnapshot {
    /// Total bytes in both directions.
    pub fn total_bytes(&self) -> u64 {
        self.bytes_up + self.bytes_down
    }

    /// Difference since an earlier snapshot (for per-query accounting).
    pub fn since(&self, earlier: &CommSnapshot) -> CommSnapshot {
        CommSnapshot {
            bytes_up: self.bytes_up - earlier.bytes_up,
            bytes_down: self.bytes_down - earlier.bytes_down,
            rounds: self.rounds - earlier.rounds,
        }
    }
}

impl CommStats {
    /// Creates counters with an explicit per-message envelope overhead.
    pub fn with_overhead(overhead: u64) -> Self {
        Self {
            bytes_up: AtomicU64::new(0),
            bytes_down: AtomicU64::new(0),
            rounds: AtomicU64::new(0),
            overhead,
        }
    }

    /// The configured per-message envelope overhead.
    pub fn overhead(&self) -> u64 {
        self.overhead
    }

    /// Records one round (payload sizes; the envelope overhead is added
    /// per direction).
    pub fn record(&self, up: usize, down: usize) {
        self.bytes_up.fetch_add(up as u64 + self.overhead, Ordering::Relaxed);
        self.bytes_down.fetch_add(down as u64 + self.overhead, Ordering::Relaxed);
        self.rounds.fetch_add(1, Ordering::Relaxed);
    }

    /// Reads the counters.
    pub fn snapshot(&self) -> CommSnapshot {
        CommSnapshot {
            bytes_up: self.bytes_up.load(Ordering::Relaxed),
            bytes_down: self.bytes_down.load(Ordering::Relaxed),
            rounds: self.rounds.load(Ordering::Relaxed),
        }
    }

    /// Zeroes the counters.
    pub fn reset(&self) {
        self.bytes_up.store(0, Ordering::Relaxed);
        self.bytes_down.store(0, Ordering::Relaxed);
        self.rounds.store(0, Ordering::Relaxed);
    }
}

struct Envelope {
    request: Bytes,
    reply: Sender<Bytes>,
}

/// Errors surfaced by [`SiloChannel::call`].
#[derive(Debug, Clone, PartialEq)]
pub enum TransportError {
    /// The silo worker is gone (shutdown or panic).
    Disconnected {
        /// Which silo.
        silo: SiloId,
    },
    /// The silo answered, but the payload would not decode.
    Codec {
        /// Which silo.
        silo: SiloId,
        /// The decode failure.
        error: crate::wire::WireError,
    },
    /// The silo refused the request (failure injection, missing state…).
    Remote {
        /// Which silo.
        silo: SiloId,
        /// The silo's error message.
        message: String,
    },
}

impl std::fmt::Display for TransportError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TransportError::Disconnected { silo } => write!(f, "silo {silo} disconnected"),
            TransportError::Codec { silo, error } => write!(f, "silo {silo} codec error: {error}"),
            TransportError::Remote { silo, message } => write!(f, "silo {silo} error: {message}"),
        }
    }
}

impl std::error::Error for TransportError {}

/// The provider's handle to one silo worker.
#[derive(Clone)]
pub struct SiloChannel {
    id: SiloId,
    tx: Sender<Envelope>,
    stats: Arc<CommStats>,
    served: Arc<AtomicU64>,
    failed: Arc<std::sync::atomic::AtomicBool>,
}

impl SiloChannel {
    /// Which silo this channel reaches.
    pub fn id(&self) -> SiloId {
        self.id
    }

    /// Sends a request and waits for the response, recording the traffic.
    ///
    /// `Response::Error` payloads are mapped to
    /// [`TransportError::Remote`] so callers can't mistake a refusal for an
    /// answer.
    pub fn call(&self, request: &Request) -> Result<Response, TransportError> {
        let request_bytes = request.to_bytes();
        let (reply_tx, reply_rx) = bounded(1);
        let up = request_bytes.len();
        self.tx
            .send(Envelope {
                request: request_bytes,
                reply: reply_tx,
            })
            .map_err(|_| TransportError::Disconnected { silo: self.id })?;
        let response_bytes = reply_rx
            .recv()
            .map_err(|_| TransportError::Disconnected { silo: self.id })?;
        self.stats.record(up, response_bytes.len());
        match Response::from_bytes(response_bytes) {
            Ok(Response::Error(message)) => Err(TransportError::Remote {
                silo: self.id,
                message,
            }),
            Ok(response) => Ok(response),
            Err(error) => Err(TransportError::Codec {
                silo: self.id,
                error,
            }),
        }
    }

    /// Returns a copy of this channel that records traffic into a
    /// different counter set (the federation swaps setup stats for query
    /// stats once Alg. 1 finishes).
    pub fn with_stats(&self, stats: Arc<CommStats>) -> SiloChannel {
        SiloChannel {
            id: self.id,
            tx: self.tx.clone(),
            stats,
            served: Arc::clone(&self.served),
            failed: Arc::clone(&self.failed),
        }
    }

    /// Number of requests the silo worker has served so far.
    pub fn served(&self) -> u64 {
        self.served.load(Ordering::Relaxed)
    }

    /// Injects (or clears) a failure: while set, the silo answers every
    /// request with an error.
    pub fn set_failed(&self, failed: bool) {
        self.failed.store(failed, Ordering::Release);
    }

    /// Whether the failure flag is set.
    pub fn is_failed(&self) -> bool {
        self.failed.load(Ordering::Acquire)
    }
}

impl std::fmt::Debug for SiloChannel {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SiloChannel").field("id", &self.id).finish()
    }
}

/// Spawns the silo worker thread and returns the provider-side channel
/// plus the join handle (owned by the federation for shutdown).
pub fn spawn_silo(
    silo: Silo,
    stats: Arc<CommStats>,
    simulated_latency: Option<Duration>,
) -> (SiloChannel, JoinHandle<()>) {
    let (tx, rx) = unbounded::<Envelope>();
    let id = silo.id();
    let served = silo.served_counter();
    let failed = silo.failure_flag();
    let handle = std::thread::Builder::new()
        .name(format!("fedra-silo-{id}"))
        .spawn(move || {
            for envelope in rx {
                if let Some(latency) = simulated_latency {
                    std::thread::sleep(latency);
                }
                let response = match Request::from_bytes(envelope.request) {
                    Ok(request) => silo.handle(request),
                    Err(e) => Response::Error(format!("undecodable request: {e}")),
                };
                // A dropped reply receiver just means the caller gave up.
                let _ = envelope.reply.send(response.to_bytes());
            }
        })
        .expect("failed to spawn silo worker thread");
    (
        SiloChannel {
            id,
            tx,
            stats,
            served,
            failed,
        },
        handle,
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::protocol::LocalMode;
    use crate::silo::SiloConfig;
    use fedra_geo::{Point, Range, Rect, SpatialObject};
    use fedra_index::histogram::MinSkewConfig;
    use fedra_index::rtree::RTreeConfig;

    fn test_silo(id: SiloId, n: usize) -> Silo {
        let bounds = Rect::new(Point::new(0.0, 0.0), Point::new(10.0, 10.0));
        let objects: Vec<SpatialObject> = (0..n)
            .map(|i| SpatialObject::at((i % 10) as f64 + 0.5, (i / 10 % 10) as f64 + 0.5, 1.0))
            .collect();
        Silo::new(
            id,
            objects,
            SiloConfig {
                rtree: RTreeConfig::default(),
                histogram: MinSkewConfig {
                    resolution: 8,
                    budget: 8,
                },
                bounds,
                lsr_seed: 1,
            },
        )
    }

    #[test]
    fn call_round_trips_through_the_thread() {
        let stats = Arc::new(CommStats::default());
        let (chan, handle) = spawn_silo(test_silo(0, 100), Arc::clone(&stats), None);
        let resp = chan.call(&Request::Ping).expect("ping");
        assert_eq!(resp, Response::Pong);
        let snap = stats.snapshot();
        assert_eq!(snap.rounds, 1);
        assert!(snap.bytes_up >= 1);
        assert!(snap.bytes_down >= 1);
        drop(chan);
        handle.join().expect("worker exits cleanly");
    }

    #[test]
    fn traffic_is_counted_per_round() {
        // Zero-overhead stats so payload sizes can be pinned exactly.
        let stats = Arc::new(CommStats::with_overhead(0));
        let (chan, _handle) = spawn_silo(test_silo(1, 100), Arc::clone(&stats), None);
        let q = Range::circle(Point::new(5.0, 5.0), 2.0);
        let before = stats.snapshot();
        chan.call(&Request::Aggregate {
            range: q,
            mode: LocalMode::Exact,
        })
        .expect("aggregate");
        let delta = stats.snapshot().since(&before);
        assert_eq!(delta.rounds, 1);
        // Request: tag + range(25) + mode(1) = 27; response: tag + agg(24) = 25.
        assert_eq!(delta.bytes_up, 27);
        assert_eq!(delta.bytes_down, 25);
    }

    #[test]
    fn default_overhead_is_charged_per_message() {
        let stats = Arc::new(CommStats::default());
        assert_eq!(stats.overhead(), DEFAULT_MESSAGE_OVERHEAD);
        let (chan, _handle) = spawn_silo(test_silo(7, 10), Arc::clone(&stats), None);
        chan.call(&Request::Ping).unwrap();
        let snap = stats.snapshot();
        assert!(snap.bytes_up > DEFAULT_MESSAGE_OVERHEAD);
        assert!(snap.bytes_down > DEFAULT_MESSAGE_OVERHEAD);
    }

    #[test]
    fn remote_errors_are_surfaced() {
        let stats = Arc::new(CommStats::default());
        let (chan, _handle) = spawn_silo(test_silo(2, 10), Arc::clone(&stats), None);
        chan.set_failed(true);
        let err = chan.call(&Request::Ping).expect_err("should fail");
        assert!(matches!(err, TransportError::Remote { silo: 2, .. }));
        assert!(chan.is_failed());
        chan.set_failed(false);
        assert!(chan.call(&Request::Ping).is_ok());
    }

    #[test]
    fn served_counter_tracks_requests() {
        let stats = Arc::new(CommStats::default());
        let (chan, _handle) = spawn_silo(test_silo(3, 10), Arc::clone(&stats), None);
        assert_eq!(chan.served(), 0);
        for _ in 0..5 {
            chan.call(&Request::Ping).unwrap();
        }
        assert_eq!(chan.served(), 5);
    }

    #[test]
    fn concurrent_calls_from_many_threads() {
        let stats = Arc::new(CommStats::default());
        let (chan, _handle) = spawn_silo(test_silo(4, 200), Arc::clone(&stats), None);
        let q = Range::circle(Point::new(5.0, 5.0), 3.0);
        std::thread::scope(|scope| {
            for _ in 0..8 {
                let chan = chan.clone();
                scope.spawn(move || {
                    for _ in 0..20 {
                        let r = chan
                            .call(&Request::Aggregate {
                                range: q,
                                mode: LocalMode::Exact,
                            })
                            .expect("aggregate");
                        assert!(matches!(r, Response::Agg(_)));
                    }
                });
            }
        });
        assert_eq!(stats.snapshot().rounds, 160);
    }

    #[test]
    fn disconnected_worker_reports_cleanly() {
        let stats = Arc::new(CommStats::default());
        let (chan, handle) = spawn_silo(test_silo(5, 10), Arc::clone(&stats), None);
        // Simulate a dead worker: clone the channel, drop the original
        // sender... the worker only exits when *all* senders drop, so
        // instead kill it by dropping every channel and joining.
        let chan2 = chan.clone();
        drop(chan);
        drop(chan2);
        handle.join().expect("worker exits");
    }

    #[test]
    fn simulated_latency_is_applied() {
        let stats = Arc::new(CommStats::default());
        let (chan, _handle) = spawn_silo(
            test_silo(6, 10),
            Arc::clone(&stats),
            Some(Duration::from_millis(20)),
        );
        let start = std::time::Instant::now();
        chan.call(&Request::Ping).unwrap();
        assert!(start.elapsed() >= Duration::from_millis(20));
    }
}
