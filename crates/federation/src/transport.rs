//! Byte-counted transport between the provider and silo worker threads.
//!
//! Each silo runs on its own OS thread and receives length-delimited byte
//! buffers over a crossbeam channel; replies travel back on pooled oneshot
//! channels (checked out per in-flight call, so the steady-state hot path
//! allocates nothing). Every buffer is a real [`crate::wire`] encoding —
//! the transport never shortcuts through shared memory — so the byte
//! counters here *are* the paper's communication-cost metric.
//!
//! Two amortization levers ride on top of the basic RPC:
//!
//! * **send/wait split** ([`SiloChannel::begin_call`] /
//!   [`PendingCall::wait`]): begin a frame on every relevant channel, then
//!   wait — the silo workers *are* the fan-out pool, no provider threads
//!   needed;
//! * **batching** ([`SiloChannel::call_batch`]): `n` same-silo requests
//!   share one wire frame, paying the per-message envelope overhead once
//!   per direction instead of `n` times.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Duration;

use bytes::Bytes;
use crossbeam::channel::{bounded, unbounded, Receiver, Sender};
use parking_lot::Mutex;

use crate::protocol::{encode_batch_request, Request, Response};
use crate::silo::{Silo, SiloId};
use crate::wire::{Wire, WireError};

// The byte-accounting types moved to `fedra-obs` so every layer (and the
// exporters) share one definition; the transport re-exports them under
// their historical home, with the old `CommStats` name kept as a
// deprecated alias for one release.
pub use fedra_obs::{CommCounters, CommSnapshot, DEFAULT_MESSAGE_OVERHEAD};

/// Former name of [`CommCounters`], kept for downstream code.
#[deprecated(
    since = "0.2.0",
    note = "moved to fedra-obs as `CommCounters`; reach it via `fedra_obs::CommCounters` or `ObsContext::comm()`"
)]
pub type CommStats = CommCounters;

struct Envelope {
    request: Bytes,
    reply: Sender<Bytes>,
}

/// A reusable oneshot reply pair.
type ReplyPair = (Sender<Bytes>, Receiver<Bytes>);

/// Pool of reply pairs, so steady-state calls allocate no channels.
///
/// Each [`SiloChannel::call`] used to create a fresh `bounded(1)` channel;
/// under a query workload that is two heap allocations per RPC. Pairs are
/// checked out per in-flight call and returned once the reply has been
/// drained — a pair whose pending call was abandoned is *discarded*
/// instead (the worker may still push a stale reply into it later).
#[derive(Default)]
struct ReplyPool {
    pairs: Mutex<Vec<ReplyPair>>,
}

impl ReplyPool {
    fn checkout(&self) -> ReplyPair {
        self.pairs.lock().pop().unwrap_or_else(|| bounded(1))
    }

    fn restore(&self, pair: ReplyPair) {
        self.pairs.lock().push(pair);
    }
}

/// Errors surfaced by [`SiloChannel::call`].
#[derive(Debug, Clone, PartialEq)]
pub enum TransportError {
    /// The silo worker is gone (shutdown or panic).
    Disconnected {
        /// Which silo.
        silo: SiloId,
    },
    /// The silo answered, but the payload would not decode.
    Codec {
        /// Which silo.
        silo: SiloId,
        /// The decode failure.
        error: crate::wire::WireError,
    },
    /// The silo refused the request (failure injection, missing state…).
    Remote {
        /// Which silo.
        silo: SiloId,
        /// The silo's error message.
        message: String,
    },
    /// The silo worker thread could not be spawned at all.
    ///
    /// Carries the OS error as a string because [`TransportError`] is
    /// `Clone + PartialEq` and `std::io::Error` is neither.
    Spawn {
        /// Which silo.
        silo: SiloId,
        /// The OS-level spawn failure.
        reason: String,
    },
}

impl std::fmt::Display for TransportError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TransportError::Disconnected { silo } => write!(f, "silo {silo} disconnected"),
            TransportError::Codec { silo, error } => write!(f, "silo {silo} codec error: {error}"),
            TransportError::Remote { silo, message } => write!(f, "silo {silo} error: {message}"),
            TransportError::Spawn { silo, reason } => {
                write!(f, "silo {silo} worker could not be spawned: {reason}")
            }
        }
    }
}

impl std::error::Error for TransportError {}

/// A frame in flight: the request has been handed to the silo worker, the
/// reply has not been drained yet.
///
/// This is the primitive that turns the silo workers into a fan-out pool:
/// the provider `begin`s a frame on every relevant channel *without
/// blocking*, then waits on each pending reply. No provider-side threads
/// are needed for parallel fan-out — the per-silo worker threads already
/// provide the concurrency.
struct PendingReply {
    silo: SiloId,
    up: usize,
    pair: ReplyPair,
    pool: Arc<ReplyPool>,
    stats: Arc<CommCounters>,
}

impl PendingReply {
    /// Blocks for the raw reply bytes, records the round's traffic, and
    /// returns the reply pair to the pool.
    fn wait_bytes(self) -> Result<Bytes, TransportError> {
        let PendingReply {
            silo,
            up,
            pair,
            pool,
            stats,
        } = self;
        match pair.1.recv() {
            Ok(bytes) => {
                stats.record(up, bytes.len());
                pool.restore(pair);
                Ok(bytes)
            }
            Err(_) => Err(TransportError::Disconnected { silo }),
        }
    }
}

/// An in-flight single-request RPC; resolve it with [`PendingCall::wait`].
pub struct PendingCall {
    inner: PendingReply,
}

impl PendingCall {
    /// Blocks for the response, recording the traffic.
    ///
    /// `Response::Error` payloads are mapped to [`TransportError::Remote`]
    /// so callers can't mistake a refusal for an answer.
    pub fn wait(self) -> Result<Response, TransportError> {
        let silo = self.inner.silo;
        let bytes = self.inner.wait_bytes()?;
        match Response::from_bytes(bytes) {
            Ok(Response::Error(message)) => Err(TransportError::Remote { silo, message }),
            Ok(response) => Ok(response),
            Err(error) => Err(TransportError::Codec { silo, error }),
        }
    }
}

impl std::fmt::Debug for PendingCall {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("PendingCall")
            .field("silo", &self.inner.silo)
            .finish()
    }
}

/// An in-flight batched RPC; resolve it with [`PendingBatch::wait`].
pub struct PendingBatch {
    inner: PendingReply,
    expected: usize,
}

impl PendingBatch {
    /// Blocks for the batch response, recording the traffic.
    ///
    /// The outer `Result` is transport-level (worker gone, undecodable
    /// frame, wrong arity); the inner `Vec` carries one entry per
    /// sub-request *in request order*, each individually an error if the
    /// silo refused that item. One bad item never poisons its batch-mates.
    pub fn wait(self) -> Result<Vec<Result<Response, TransportError>>, TransportError> {
        let silo = self.inner.silo;
        let expected = self.expected;
        let bytes = self.inner.wait_bytes()?;
        match Response::from_bytes(bytes) {
            Ok(Response::Batch(items)) => {
                if items.len() != expected {
                    return Err(TransportError::Codec {
                        silo,
                        error: WireError::BadLength {
                            context: "batch response arity",
                            len: items.len(),
                        },
                    });
                }
                Ok(items
                    .into_iter()
                    .map(|item| match item {
                        Response::Error(message) => Err(TransportError::Remote { silo, message }),
                        other => Ok(other),
                    })
                    .collect())
            }
            // A whole-frame refusal (e.g. the worker could not decode the
            // request) fails every sub-request the same way.
            Ok(Response::Error(message)) => Ok(vec![
                Err(TransportError::Remote { silo, message });
                expected
            ]),
            Ok(other) => Err(TransportError::Remote {
                silo,
                message: format!("expected batch response, got {other:?}"),
            }),
            Err(error) => Err(TransportError::Codec { silo, error }),
        }
    }
}

impl std::fmt::Debug for PendingBatch {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("PendingBatch")
            .field("silo", &self.inner.silo)
            .field("expected", &self.expected)
            .finish()
    }
}

/// The provider's handle to one silo worker.
#[derive(Clone)]
pub struct SiloChannel {
    id: SiloId,
    tx: Sender<Envelope>,
    stats: Arc<CommCounters>,
    reply_pool: Arc<ReplyPool>,
    served: Arc<AtomicU64>,
    failed: Arc<std::sync::atomic::AtomicBool>,
    silo_metrics: Arc<fedra_obs::MetricsRegistry>,
}

impl SiloChannel {
    /// Which silo this channel reaches.
    pub fn id(&self) -> SiloId {
        self.id
    }

    /// Ships an already-encoded frame to the worker and returns the
    /// in-flight reply handle.
    fn send_frame(&self, frame: Bytes) -> Result<PendingReply, TransportError> {
        let up = frame.len();
        let pair = self.reply_pool.checkout();
        self.tx
            .send(Envelope {
                request: frame,
                reply: pair.0.clone(),
            })
            .map_err(|_| TransportError::Disconnected { silo: self.id })?;
        Ok(PendingReply {
            silo: self.id,
            up,
            pair,
            pool: Arc::clone(&self.reply_pool),
            stats: Arc::clone(&self.stats),
        })
    }

    /// Starts a request without blocking for the reply.
    ///
    /// Begin on several channels, then [`PendingCall::wait`] on each: the
    /// silo workers execute concurrently, giving fan-out parallelism with
    /// zero provider-side threads.
    pub fn begin_call(&self, request: &Request) -> Result<PendingCall, TransportError> {
        self.begin_call_encoded(request.to_bytes())
    }

    /// Starts a request from a pre-encoded frame (O(1) to clone — use for
    /// broadcasting one frame to many silos without re-encoding).
    pub fn begin_call_encoded(&self, frame: Bytes) -> Result<PendingCall, TransportError> {
        Ok(PendingCall {
            inner: self.send_frame(frame)?,
        })
    }

    /// Starts a batch of requests as one coalesced wire frame, without
    /// blocking for the reply.
    ///
    /// The whole batch pays the per-message envelope overhead *once* per
    /// direction, instead of once per request.
    pub fn begin_batch(&self, requests: &[&Request]) -> Result<PendingBatch, TransportError> {
        Ok(PendingBatch {
            inner: self.send_frame(encode_batch_request(requests))?,
            expected: requests.len(),
        })
    }

    /// Sends a request and waits for the response, recording the traffic.
    ///
    /// `Response::Error` payloads are mapped to
    /// [`TransportError::Remote`] so callers can't mistake a refusal for an
    /// answer.
    pub fn call(&self, request: &Request) -> Result<Response, TransportError> {
        self.begin_call(request)?.wait()
    }

    /// Sends `requests` as one coalesced frame and waits for the per-item
    /// results, in request order.
    ///
    /// An empty slice is answered locally with no traffic. See
    /// [`PendingBatch::wait`] for the error contract.
    pub fn call_batch(
        &self,
        requests: &[Request],
    ) -> Result<Vec<Result<Response, TransportError>>, TransportError> {
        if requests.is_empty() {
            return Ok(Vec::new());
        }
        let refs: Vec<&Request> = requests.iter().collect();
        self.begin_batch(&refs)?.wait()
    }

    /// Returns a copy of this channel that records traffic into a
    /// different counter set (the federation swaps setup counters for
    /// query counters once Alg. 1 finishes).
    pub fn with_comm(&self, comm: Arc<CommCounters>) -> SiloChannel {
        SiloChannel {
            id: self.id,
            tx: self.tx.clone(),
            stats: comm,
            reply_pool: Arc::clone(&self.reply_pool),
            served: Arc::clone(&self.served),
            failed: Arc::clone(&self.failed),
            silo_metrics: Arc::clone(&self.silo_metrics),
        }
    }

    /// Former name of [`SiloChannel::with_comm`].
    #[deprecated(since = "0.2.0", note = "renamed to `with_comm`")]
    pub fn with_stats(&self, stats: Arc<CommCounters>) -> SiloChannel {
        self.with_comm(stats)
    }

    /// The silo worker's own metrics registry (request counts by kind,
    /// batch sizes, LSR level picks). Shared by `Arc`, like the served
    /// counter — diagnostics cross the thread boundary without touching
    /// the byte-counted wire path.
    pub fn silo_metrics(&self) -> &Arc<fedra_obs::MetricsRegistry> {
        &self.silo_metrics
    }

    /// Number of requests the silo worker has served so far.
    pub fn served(&self) -> u64 {
        self.served.load(Ordering::Relaxed)
    }

    /// Injects (or clears) a failure: while set, the silo answers every
    /// request with an error.
    pub fn set_failed(&self, failed: bool) {
        self.failed.store(failed, Ordering::Release);
    }

    /// Whether the failure flag is set.
    pub fn is_failed(&self) -> bool {
        self.failed.load(Ordering::Acquire)
    }
}

impl std::fmt::Debug for SiloChannel {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SiloChannel").field("id", &self.id).finish()
    }
}

/// Spawns the silo worker thread and returns the provider-side channel
/// plus the join handle (owned by the federation for shutdown).
///
/// Fails with [`TransportError::Spawn`] when the OS refuses the thread
/// (resource exhaustion) — the federation maps that to a setup error
/// instead of tearing the provider down.
pub fn spawn_silo(
    silo: Silo,
    stats: Arc<CommCounters>,
    simulated_latency: Option<Duration>,
) -> Result<(SiloChannel, JoinHandle<()>), TransportError> {
    let (tx, rx) = unbounded::<Envelope>();
    let id = silo.id();
    let served = silo.served_counter();
    let failed = silo.failure_flag();
    let silo_metrics = silo.metrics();
    let handle = std::thread::Builder::new()
        .name(format!("fedra-silo-{id}"))
        .spawn(move || {
            for envelope in rx {
                if let Some(latency) = simulated_latency {
                    std::thread::sleep(latency);
                }
                let response = match Request::from_bytes(envelope.request) {
                    Ok(request) => silo.handle(request),
                    Err(e) => Response::Error(format!("undecodable request: {e}")),
                };
                // A dropped reply receiver just means the caller gave up.
                let _ = envelope.reply.send(response.to_bytes());
            }
        })
        .map_err(|e| TransportError::Spawn {
            silo: id,
            reason: e.to_string(),
        })?;
    Ok((
        SiloChannel {
            id,
            tx,
            stats,
            reply_pool: Arc::new(ReplyPool::default()),
            served,
            failed,
            silo_metrics,
        },
        handle,
    ))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::protocol::LocalMode;
    use crate::silo::SiloConfig;
    use fedra_geo::{Point, Range, Rect, SpatialObject};
    use fedra_index::histogram::MinSkewConfig;
    use fedra_index::rtree::RTreeConfig;

    fn test_silo(id: SiloId, n: usize) -> Silo {
        let bounds = Rect::new(Point::new(0.0, 0.0), Point::new(10.0, 10.0));
        let objects: Vec<SpatialObject> = (0..n)
            .map(|i| SpatialObject::at((i % 10) as f64 + 0.5, (i / 10 % 10) as f64 + 0.5, 1.0))
            .collect();
        Silo::new(
            id,
            objects,
            SiloConfig {
                rtree: RTreeConfig::default(),
                histogram: MinSkewConfig {
                    resolution: 8,
                    budget: 8,
                },
                bounds,
                threads: 0,
                lsr_seed: 1,
            },
        )
    }

    #[test]
    fn call_round_trips_through_the_thread() {
        let stats = Arc::new(CommCounters::default());
        let (chan, handle) =
            spawn_silo(test_silo(0, 100), Arc::clone(&stats), None).expect("spawn silo");
        let resp = chan.call(&Request::Ping).expect("ping");
        assert_eq!(resp, Response::Pong);
        let snap = stats.snapshot();
        assert_eq!(snap.rounds, 1);
        assert!(snap.bytes_up >= 1);
        assert!(snap.bytes_down >= 1);
        drop(chan);
        handle.join().expect("worker exits cleanly");
    }

    #[test]
    fn traffic_is_counted_per_round() {
        // Zero-overhead stats so payload sizes can be pinned exactly.
        let stats = Arc::new(CommCounters::with_overhead(0));
        let (chan, _handle) =
            spawn_silo(test_silo(1, 100), Arc::clone(&stats), None).expect("spawn silo");
        let q = Range::circle(Point::new(5.0, 5.0), 2.0);
        let before = stats.snapshot();
        chan.call(&Request::Aggregate {
            range: q,
            mode: LocalMode::Exact,
        })
        .expect("aggregate");
        let delta = stats.snapshot().since(&before);
        assert_eq!(delta.rounds, 1);
        // Request: tag + range(25) + mode(1) = 27; response: tag + agg(24) = 25.
        assert_eq!(delta.bytes_up, 27);
        assert_eq!(delta.bytes_down, 25);
    }

    #[test]
    fn default_overhead_is_charged_per_message() {
        let stats = Arc::new(CommCounters::default());
        assert_eq!(stats.overhead(), DEFAULT_MESSAGE_OVERHEAD);
        let (chan, _handle) =
            spawn_silo(test_silo(7, 10), Arc::clone(&stats), None).expect("spawn silo");
        chan.call(&Request::Ping).unwrap();
        let snap = stats.snapshot();
        assert!(snap.bytes_up > DEFAULT_MESSAGE_OVERHEAD);
        assert!(snap.bytes_down > DEFAULT_MESSAGE_OVERHEAD);
    }

    #[test]
    fn remote_errors_are_surfaced() {
        let stats = Arc::new(CommCounters::default());
        let (chan, _handle) =
            spawn_silo(test_silo(2, 10), Arc::clone(&stats), None).expect("spawn silo");
        chan.set_failed(true);
        let err = chan.call(&Request::Ping).expect_err("should fail");
        assert!(matches!(err, TransportError::Remote { silo: 2, .. }));
        assert!(chan.is_failed());
        chan.set_failed(false);
        assert!(chan.call(&Request::Ping).is_ok());
    }

    #[test]
    fn served_counter_tracks_requests() {
        let stats = Arc::new(CommCounters::default());
        let (chan, _handle) =
            spawn_silo(test_silo(3, 10), Arc::clone(&stats), None).expect("spawn silo");
        assert_eq!(chan.served(), 0);
        for _ in 0..5 {
            chan.call(&Request::Ping).unwrap();
        }
        assert_eq!(chan.served(), 5);
    }

    #[test]
    fn concurrent_calls_from_many_threads() {
        let stats = Arc::new(CommCounters::default());
        let (chan, _handle) =
            spawn_silo(test_silo(4, 200), Arc::clone(&stats), None).expect("spawn silo");
        let q = Range::circle(Point::new(5.0, 5.0), 3.0);
        std::thread::scope(|scope| {
            for _ in 0..8 {
                let chan = chan.clone();
                scope.spawn(move || {
                    for _ in 0..20 {
                        let r = chan
                            .call(&Request::Aggregate {
                                range: q,
                                mode: LocalMode::Exact,
                            })
                            .expect("aggregate");
                        assert!(matches!(r, Response::Agg(_)));
                    }
                });
            }
        });
        assert_eq!(stats.snapshot().rounds, 160);
    }

    #[test]
    fn call_batch_preserves_request_order() {
        let stats = Arc::new(CommCounters::default());
        let (chan, _handle) =
            spawn_silo(test_silo(8, 100), Arc::clone(&stats), None).expect("spawn silo");
        let q = Range::circle(Point::new(5.0, 5.0), 2.0);
        let exact = chan
            .call(&Request::Aggregate {
                range: q,
                mode: LocalMode::Exact,
            })
            .unwrap();
        let before = stats.snapshot();
        let results = chan
            .call_batch(&[
                Request::Ping,
                Request::Aggregate {
                    range: q,
                    mode: LocalMode::Exact,
                },
                Request::MemoryReport,
            ])
            .expect("batch transport");
        assert_eq!(results.len(), 3);
        assert_eq!(results[0], Ok(Response::Pong));
        assert_eq!(results[1].as_ref().unwrap(), &exact);
        assert!(matches!(results[2], Ok(Response::Memory(_))));
        // The whole batch is one round.
        assert_eq!(stats.snapshot().since(&before).rounds, 1);
    }

    #[test]
    fn call_batch_surfaces_per_item_errors() {
        let stats = Arc::new(CommCounters::default());
        let (chan, _handle) =
            spawn_silo(test_silo(9, 10), Arc::clone(&stats), None).expect("spawn silo");
        chan.set_failed(true);
        let results = chan
            .call_batch(&[Request::Ping, Request::Ping, Request::Ping])
            .expect("transport still works; the refusals are per item");
        assert_eq!(results.len(), 3);
        for r in results {
            assert!(matches!(r, Err(TransportError::Remote { silo: 9, .. })));
        }
        // Failure injection costs one round, not three.
        assert_eq!(stats.snapshot().rounds, 1);
    }

    #[test]
    fn empty_batch_sends_no_traffic() {
        let stats = Arc::new(CommCounters::default());
        let (chan, _handle) =
            spawn_silo(test_silo(10, 10), Arc::clone(&stats), None).expect("spawn silo");
        assert_eq!(chan.call_batch(&[]).unwrap(), Vec::new());
        assert_eq!(stats.snapshot(), CommSnapshot::default());
    }

    #[test]
    fn batch_amortizes_the_envelope_overhead() {
        // Zero-overhead stats pin the payload arithmetic; the saving shows
        // in rounds (each round costs 2 × overhead under default stats).
        let stats = Arc::new(CommCounters::with_overhead(0));
        let (chan, _handle) =
            spawn_silo(test_silo(11, 100), Arc::clone(&stats), None).expect("spawn silo");
        let q = Range::circle(Point::new(5.0, 5.0), 2.0);
        let agg = Request::Aggregate {
            range: q,
            mode: LocalMode::Exact,
        };
        let before = stats.snapshot();
        chan.call_batch(&[agg.clone(), agg.clone()]).unwrap();
        let batched = stats.snapshot().since(&before);
        let before = stats.snapshot();
        chan.call(&agg).unwrap();
        chan.call(&agg).unwrap();
        let singleton = stats.snapshot().since(&before);
        // Payloads: singleton 2 × (27 up, 25 down); batch adds a 5-byte
        // frame header each way (tag + count) on top of the same items.
        assert_eq!(singleton.bytes_up, 54);
        assert_eq!(singleton.bytes_down, 50);
        assert_eq!(batched.bytes_up, 59);
        assert_eq!(batched.bytes_down, 55);
        assert_eq!(singleton.rounds, 2);
        assert_eq!(batched.rounds, 1);
    }

    #[test]
    fn reply_pairs_are_pooled_and_reused() {
        let stats = Arc::new(CommCounters::default());
        let (chan, _handle) =
            spawn_silo(test_silo(12, 10), Arc::clone(&stats), None).expect("spawn silo");
        for _ in 0..10 {
            chan.call(&Request::Ping).unwrap();
        }
        // Sequential calls recycle a single pair.
        assert_eq!(chan.reply_pool.pairs.lock().len(), 1);
        // An abandoned pending call discards its pair instead of returning
        // a (possibly stale) channel to the pool.
        let pending = chan.begin_call(&Request::Ping).unwrap();
        drop(pending);
        assert!(chan.reply_pool.pairs.lock().is_empty());
        // The channel still works after the discard.
        assert_eq!(chan.call(&Request::Ping).unwrap(), Response::Pong);
    }

    #[test]
    fn begin_then_wait_overlaps_silo_work() {
        // With 20ms of injected latency per frame, four pipelined frames
        // on four silos must finish in ~1 latency, not 4.
        let stats = Arc::new(CommCounters::default());
        let latency = Duration::from_millis(20);
        let channels: Vec<SiloChannel> = (0..4)
            .map(|i| {
                spawn_silo(test_silo(i, 10), Arc::clone(&stats), Some(latency))
                    .expect("spawn silo")
                    .0
            })
            .collect();
        let start = std::time::Instant::now();
        let pending: Vec<PendingCall> = channels
            .iter()
            .map(|c| c.begin_call(&Request::Ping).unwrap())
            .collect();
        for p in pending {
            assert_eq!(p.wait().unwrap(), Response::Pong);
        }
        let elapsed = start.elapsed();
        assert!(
            elapsed < latency * 3,
            "fan-out not overlapped: {elapsed:?} for 4 × {latency:?} silos"
        );
    }

    #[test]
    fn disconnected_worker_reports_cleanly() {
        let stats = Arc::new(CommCounters::default());
        let (chan, handle) =
            spawn_silo(test_silo(5, 10), Arc::clone(&stats), None).expect("spawn silo");
        // Simulate a dead worker: clone the channel, drop the original
        // sender... the worker only exits when *all* senders drop, so
        // instead kill it by dropping every channel and joining.
        let chan2 = chan.clone();
        drop(chan);
        drop(chan2);
        handle.join().expect("worker exits");
    }

    #[test]
    fn simulated_latency_is_applied() {
        let stats = Arc::new(CommCounters::default());
        let (chan, _handle) = spawn_silo(
            test_silo(6, 10),
            Arc::clone(&stats),
            Some(Duration::from_millis(20)),
        )
        .expect("spawn silo");
        let start = std::time::Instant::now();
        chan.call(&Request::Ping).unwrap();
        assert!(start.elapsed() >= Duration::from_millis(20));
    }
}
