//! The `fedra` federation runtime: silos, provider state, byte-counted RPC.
//!
//! A spatial data federation (Sec. 2 of the paper) is `m` autonomous data
//! silos, each holding a horizontal partition of the spatial objects,
//! reachable only through a query interface. This crate simulates that
//! setting hermetically and *measurably*:
//!
//! * every silo runs on its own OS thread ([`Silo`], [`transport`]);
//! * every provider ↔ silo interaction is serialized through a binary
//!   [`wire`] format — the byte counts are the paper's communication-cost
//!   metric, not a model of it;
//! * [`Federation`] owns the provider's state: the per-silo grid indices
//!   `g_1 … g_m`, the merged `g₀` and its cumulative arrays (Alg. 1), the
//!   silo channels, setup vs query traffic counters, failure injection and
//!   an optional simulated network latency.
//!
//! The FRA estimation algorithms themselves live in `fedra-core`; this
//! crate deliberately knows nothing about IID/Non-IID estimation — it only
//! moves bytes and owns indices.

#![forbid(unsafe_code)]
#![deny(missing_docs)]

pub mod fault;
mod federation;
pub mod health;
pub mod protocol;
mod silo;
pub mod snapshot;
pub mod transport;
pub mod wire;

pub use fault::{FaultPlan, FlapSchedule, SiloFaultSpec};
pub use federation::{DegradePolicy, Federation, FederationBuilder, SetupError};
pub use health::{BreakerState, HealthConfig, HealthTracker, HealthTransition, SiloHealthSnapshot};
pub use protocol::{LocalMode, Request, Response, SiloMemoryReport};
pub use silo::{Silo, SiloConfig, SiloGridSnapshot, SiloId};
pub use snapshot::ProviderSnapshot;
pub use transport::chaos::{ChaosPlan, ChaosProxy};
pub use transport::socket::{
    ReconnectAttempts, ReconnectPolicy, SiloAddr, SiloDiagnostics, SiloSocketServer,
    SocketServerConfig, SocketTransport,
};
pub use transport::{
    CallPolicy, CommCounters, CommSnapshot, InMemoryTransport, PendingBatch, PendingCall,
    PendingTaggedBatch, Poll, RaceWinner, ReplySlot, SiloChannel, Transport, TransportBackend,
    TransportError,
};
