//! The socket [`Transport`] backend: length-prefixed frames over TCP or
//! Unix-domain streams, plus the silo-side serving loop behind
//! `fedra-silo serve`.
//!
//! # Framing
//!
//! Every frame is a fixed little-endian header followed by a payload that
//! is **byte-identical** to the in-memory encoding ([`crate::wire`]):
//!
//! ```text
//! request frame:  [payload_len: u32][corr: u64][epoch: u64][checksum: u64][deadline_rel_us: u64][payload]
//! reply frame:    [payload_len: u32][corr: u64][epoch: u64][checksum: u64][payload]
//! ```
//!
//! * `corr` is a provider-chosen correlation id pairing replies back to
//!   their in-flight calls; it doubles as the [`Transport`] token.
//! * `epoch` is the client's connection generation at send time; the
//!   server echoes it verbatim. A reply whose epoch differs from the
//!   reading connection's generation was solicited before a reconnect —
//!   a middlebox (e.g. [`crate::transport::chaos::ChaosProxy`]) replayed
//!   it onto the new connection — and is **fenced**: discarded and
//!   counted under `fedra_epoch_fenced_replies_total` instead of being
//!   allowed to answer a fresh call.
//! * `checksum` is an FNV-1a digest of the payload bytes. A mismatch
//!   surfaces as the typed [`FrameError::Corrupt`] — a flipped byte in a
//!   wire-encoded `f64` would otherwise decode silently into a wrong
//!   answer.
//! * `deadline_rel_us` carries the call deadline as **relative**
//!   microseconds from send time ([`DEADLINE_NONE`] = no deadline). The
//!   serving side re-anchors it at frame receipt, so no cross-process
//!   clock agreement is needed; an expired deadline sheds the request
//!   exactly like the in-memory worker does (the byte-counted
//!   [`Response::DeadlineExceeded`] still travels).
//! * the header is the real-world analogue of the simulated per-message
//!   overhead ([`super::DEFAULT_MESSAGE_OVERHEAD`]): [`CommCounters`]
//!   record payload bytes only, so the communication-cost metric is
//!   identical across backends.
//!
//! # Reconnects and failure semantics
//!
//! A connection loss fails every in-flight call with a retryable
//! [`TransportError::Transient`] when a reconnect succeeds (callers retry
//! under their [`super::CallPolicy`]), and with
//! [`TransportError::Disconnected`] when the reconnect budget of the
//! client's [`ReconnectPolicy`] is exhausted — mirroring the in-memory
//! backend, where a crashed worker wakes its waiters with `Disconnected`.
//! Exhaustion is not terminal, though: every subsequent
//! [`Transport::send_frame`] makes one fresh connect attempt, so a
//! health-breaker HalfOpen probe rejoins a respawned peer (e.g. a
//! `fedra-silo` restarted from its `--snapshot-dir`) instead of failing
//! silently forever.
//!
//! # Determinism caveats
//!
//! The socket path keeps answers bit-identical to the in-memory path —
//! payload bytes, shed semantics, and per-silo request order (one
//! connection per channel, frames handled sequentially) all match. What
//! it cannot keep deterministic is *timing*: kernel scheduling and socket
//! buffering perturb latency-sensitive schedules (hedge firings, races),
//! which is why the in-memory backend remains the tier-1 default.

use std::collections::HashMap;
use std::io::{Read, Write};
use std::net::{TcpListener, TcpStream};
#[cfg(unix)]
use std::os::unix::net::{UnixListener, UnixStream};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use bytes::Bytes;
use parking_lot::Mutex;

use super::{ReplySlot, SiloChannel, Transport, TransportError};
use crate::fault::{FaultAction, SiloFaultInjector};
use crate::protocol::{Request, Response};
use crate::silo::{Silo, SiloId};
use crate::wire::Wire;
use fedra_obs::CommCounters;

/// `deadline_rel_us` value meaning "no deadline".
pub const DEADLINE_NONE: u64 = u64::MAX;

/// Request frame header length:
/// `payload_len (4) + corr (8) + epoch (8) + checksum (8) + deadline (8)`.
pub const REQUEST_HEADER_LEN: usize = 36;

/// Reply frame header length:
/// `payload_len (4) + corr (8) + epoch (8) + checksum (8)`.
pub const REPLY_HEADER_LEN: usize = 28;

/// Largest payload a peer may announce. A length prefix beyond this is
/// rejected with [`FrameError::Oversized`] *before* any allocation — a
/// corrupt or hostile peer cannot OOM the process.
pub const MAX_FRAME_PAYLOAD: u32 = 256 * 1024 * 1024;

/// How often the accept loop polls its shutdown flag.
const ACCEPT_POLL: Duration = Duration::from_millis(1);

/// Default reconnect attempts after a connection loss before declaring
/// the peer dead (see [`ReconnectPolicy`]).
const RECONNECT_ATTEMPTS: u32 = 3;

/// Default base backoff between reconnect attempts.
const RECONNECT_BACKOFF: Duration = Duration::from_millis(2);

/// Default backoff ceiling for reconnect attempts.
const RECONNECT_BACKOFF_CAP: Duration = Duration::from_millis(50);

/// Default jitter seed for [`ReconnectPolicy`] (`"RECN"`).
const RECONNECT_SEED: u64 = 0x5245_434E;

/// Metric name: reconnects performed by a [`SocketTransport`] client.
const RECONNECTS_METRIC: &str = "fedra_transport_reconnects_total";

/// Metric name: stale-epoch replies discarded by a [`SocketTransport`]
/// client's reader instead of being allowed to answer a fresh call.
const FENCED_METRIC: &str = "fedra_epoch_fenced_replies_total";

/// How a [`SocketTransport`] retries after a connection loss.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ReconnectAttempts {
    /// Give up (fail in-flight calls, mark the client not-alive) after
    /// this many consecutive refused attempts.
    Limited(u32),
    /// Keep trying until the transport is dropped. For supervised
    /// deployments where the peer is expected to come back (a respawned
    /// `fedra-silo`); pair with a sane `backoff_cap`.
    Unbounded,
}

/// Reconnect policy for the socket client: attempt budget plus a capped
/// exponential backoff with deterministic jitter (same construction as
/// [`super::CallPolicy::backoff`] — no RNG, no clock, so chaos runs stay
/// reproducible while reconnect storms from many clients decorrelate).
///
/// The default reproduces the historical hard-coded behaviour: 3
/// attempts, 2 ms base backoff.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ReconnectPolicy {
    /// How many consecutive refused attempts end the reconnect loop.
    pub attempts: ReconnectAttempts,
    /// First backoff sleep; doubles per attempt.
    pub backoff_base: Duration,
    /// Backoff ceiling.
    pub backoff_cap: Duration,
    /// Seed folded into the jitter draw, so distinct federations (or
    /// chaos scenarios) can decorrelate their reconnect schedules.
    pub seed: u64,
}

impl Default for ReconnectPolicy {
    fn default() -> Self {
        ReconnectPolicy {
            attempts: ReconnectAttempts::Limited(RECONNECT_ATTEMPTS),
            backoff_base: RECONNECT_BACKOFF,
            backoff_cap: RECONNECT_BACKOFF_CAP,
            seed: RECONNECT_SEED,
        }
    }
}

impl ReconnectPolicy {
    /// The supervised-deployment policy: retry forever (until the
    /// transport is dropped) with the default backoff shape.
    pub fn unbounded() -> Self {
        ReconnectPolicy {
            attempts: ReconnectAttempts::Unbounded,
            ..ReconnectPolicy::default()
        }
    }

    /// Whether attempt number `attempt` (1-based) is still within the
    /// budget.
    pub fn allows_attempt(&self, attempt: u32) -> bool {
        match self.attempts {
            ReconnectAttempts::Limited(n) => attempt <= n,
            ReconnectAttempts::Unbounded => true,
        }
    }

    /// Backoff before reconnect attempt `attempt` (1-based): capped
    /// exponential plus deterministic jitter in `[0, backoff_base)`
    /// drawn from a SplitMix64 hash of `(seed, silo, attempt)`.
    pub fn backoff(&self, silo: SiloId, attempt: u32) -> Duration {
        if self.backoff_base.is_zero() {
            return Duration::ZERO;
        }
        let exp = self
            .backoff_base
            .saturating_mul(1u32 << attempt.saturating_sub(1).min(16));
        let capped = exp.min(self.backoff_cap);
        let base_ns = self.backoff_base.as_nanos() as u64;
        let mut z = (silo as u64)
            .wrapping_mul(0x9E37_79B9_7F4A_7C15)
            .wrapping_add(attempt as u64)
            ^ self.seed;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        capped + Duration::from_nanos((z ^ (z >> 31)) % base_ns.max(1))
    }
}

// ---------------------------------------------------------------------
// Addresses and streams
// ---------------------------------------------------------------------

/// A silo endpoint: TCP (`tcp:host:port`) or a Unix-domain socket path
/// (`unix:/path/to.sock`).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SiloAddr {
    /// TCP endpoint, `host:port`.
    Tcp(String),
    /// Unix-domain socket path.
    #[cfg(unix)]
    Unix(PathBuf),
}

impl SiloAddr {
    /// Parses `tcp:host:port`, `unix:/path`, or a bare `host:port`
    /// (treated as TCP). The error is a human-readable reason.
    pub fn parse(s: &str) -> Result<SiloAddr, String> {
        if let Some(rest) = s.strip_prefix("unix:") {
            #[cfg(unix)]
            {
                if rest.is_empty() {
                    return Err("empty unix socket path".into());
                }
                return Ok(SiloAddr::Unix(PathBuf::from(rest)));
            }
            #[cfg(not(unix))]
            {
                let _ = rest;
                return Err("unix-domain sockets are not supported on this platform".into());
            }
        }
        let rest = s.strip_prefix("tcp:").unwrap_or(s);
        if rest.contains(':') {
            Ok(SiloAddr::Tcp(rest.to_string()))
        } else {
            Err(format!(
                "`{s}` is not a silo address (expected tcp:host:port or unix:/path)"
            ))
        }
    }

    pub(crate) fn connect(&self) -> std::io::Result<SocketStream> {
        match self {
            SiloAddr::Tcp(addr) => {
                let stream = TcpStream::connect(addr)?;
                stream.set_nodelay(true)?;
                Ok(SocketStream::Tcp(stream))
            }
            #[cfg(unix)]
            SiloAddr::Unix(path) => Ok(SocketStream::Unix(UnixStream::connect(path)?)),
        }
    }
}

impl std::fmt::Display for SiloAddr {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SiloAddr::Tcp(addr) => write!(f, "tcp:{addr}"),
            #[cfg(unix)]
            SiloAddr::Unix(path) => write!(f, "unix:{}", path.display()),
        }
    }
}

/// A connected stream of either flavour.
#[derive(Debug)]
pub(crate) enum SocketStream {
    Tcp(TcpStream),
    #[cfg(unix)]
    Unix(UnixStream),
}

impl SocketStream {
    pub(crate) fn try_clone(&self) -> std::io::Result<SocketStream> {
        match self {
            SocketStream::Tcp(s) => Ok(SocketStream::Tcp(s.try_clone()?)),
            #[cfg(unix)]
            SocketStream::Unix(s) => Ok(SocketStream::Unix(s.try_clone()?)),
        }
    }

    pub(crate) fn shutdown(&self) {
        match self {
            SocketStream::Tcp(s) => {
                let _ = s.shutdown(std::net::Shutdown::Both);
            }
            #[cfg(unix)]
            SocketStream::Unix(s) => {
                let _ = s.shutdown(std::net::Shutdown::Both);
            }
        }
    }

    pub(crate) fn set_nonblocking(&self, nonblocking: bool) -> std::io::Result<()> {
        match self {
            SocketStream::Tcp(s) => s.set_nonblocking(nonblocking),
            #[cfg(unix)]
            SocketStream::Unix(s) => s.set_nonblocking(nonblocking),
        }
    }
}

impl Read for SocketStream {
    fn read(&mut self, buf: &mut [u8]) -> std::io::Result<usize> {
        match self {
            SocketStream::Tcp(s) => s.read(buf),
            #[cfg(unix)]
            SocketStream::Unix(s) => s.read(buf),
        }
    }
}

impl Write for SocketStream {
    fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
        match self {
            SocketStream::Tcp(s) => s.write(buf),
            #[cfg(unix)]
            SocketStream::Unix(s) => s.write(buf),
        }
    }

    fn flush(&mut self) -> std::io::Result<()> {
        match self {
            SocketStream::Tcp(s) => s.flush(),
            #[cfg(unix)]
            SocketStream::Unix(s) => s.flush(),
        }
    }
}

/// A bound listener of either flavour.
enum SocketListener {
    Tcp(TcpListener),
    #[cfg(unix)]
    Unix(UnixListener, PathBuf),
}

impl SocketListener {
    /// Binds `addr`, returning the listener plus the *resolved* address
    /// (TCP `host:0` resolves its ephemeral port).
    fn bind(addr: &SiloAddr) -> std::io::Result<(SocketListener, SiloAddr)> {
        match addr {
            SiloAddr::Tcp(spec) => {
                let listener = TcpListener::bind(spec)?;
                let resolved = SiloAddr::Tcp(listener.local_addr()?.to_string());
                listener.set_nonblocking(true)?;
                Ok((SocketListener::Tcp(listener), resolved))
            }
            #[cfg(unix)]
            SiloAddr::Unix(path) => {
                let listener = UnixListener::bind(path)?;
                listener.set_nonblocking(true)?;
                Ok((SocketListener::Unix(listener, path.clone()), addr.clone()))
            }
        }
    }

    /// Non-blocking accept: `Ok(None)` when no connection is pending.
    fn accept(&self) -> std::io::Result<Option<SocketStream>> {
        let accepted = match self {
            SocketListener::Tcp(l) => l.accept().map(|(s, _)| SocketStream::Tcp(s)),
            #[cfg(unix)]
            SocketListener::Unix(l, _) => l.accept().map(|(s, _)| SocketStream::Unix(s)),
        };
        match accepted {
            Ok(stream) => Ok(Some(stream)),
            Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => Ok(None),
            Err(e) => Err(e),
        }
    }
}

impl Drop for SocketListener {
    fn drop(&mut self) {
        #[cfg(unix)]
        if let SocketListener::Unix(_, path) = self {
            let _ = std::fs::remove_file(path);
        }
    }
}

// ---------------------------------------------------------------------
// Frame codec
// ---------------------------------------------------------------------

/// Typed framing failures (satisfying panic-discipline: a malformed or
/// hostile peer produces an error value, never a panic or an unbounded
/// allocation).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FrameError {
    /// The peer closed cleanly at a frame boundary.
    Eof,
    /// The stream ended mid-frame (partial header or payload).
    Truncated {
        /// Which part of the frame was cut short.
        context: &'static str,
    },
    /// The length prefix exceeds [`MAX_FRAME_PAYLOAD`].
    Oversized {
        /// The announced payload length.
        len: u64,
    },
    /// The payload bytes do not match the header's checksum: the frame
    /// was corrupted in flight. Surfacing this as a typed error (the
    /// connection is dropped, in-flight calls retry as transients) is
    /// what keeps a flipped byte from decoding into a wrong answer.
    Corrupt {
        /// Which frame kind failed verification.
        context: &'static str,
    },
    /// OS-level read failure.
    Io {
        /// The I/O error, stringified (keeps `FrameError: Clone + Eq`).
        message: String,
    },
}

impl std::fmt::Display for FrameError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FrameError::Eof => write!(f, "peer closed the connection"),
            FrameError::Truncated { context } => {
                write!(f, "stream ended mid-frame reading {context}")
            }
            FrameError::Oversized { len } => write!(
                f,
                "frame length prefix {len} exceeds the {MAX_FRAME_PAYLOAD}-byte cap"
            ),
            FrameError::Corrupt { context } => {
                write!(
                    f,
                    "checksum mismatch on {context} (frame corrupted in flight)"
                )
            }
            FrameError::Io { message } => write!(f, "socket read failed: {message}"),
        }
    }
}

impl std::error::Error for FrameError {}

/// Reads exactly `buf.len()` bytes. `at_boundary` distinguishes a clean
/// peer close (first byte of a header) from a mid-frame truncation.
fn read_exact_frame(
    r: &mut impl Read,
    buf: &mut [u8],
    at_boundary: bool,
    context: &'static str,
) -> Result<(), FrameError> {
    let mut filled = 0usize;
    while filled < buf.len() {
        match r.read(&mut buf[filled..]) {
            Ok(0) => {
                return Err(if at_boundary && filled == 0 {
                    FrameError::Eof
                } else {
                    FrameError::Truncated { context }
                });
            }
            Ok(n) => filled += n,
            Err(e) if e.kind() == std::io::ErrorKind::Interrupted => {}
            Err(e) => {
                return Err(FrameError::Io {
                    message: e.to_string(),
                })
            }
        }
    }
    Ok(())
}

/// Validates a length prefix and reads the payload it announces.
fn read_payload(r: &mut impl Read, len: u32) -> Result<Bytes, FrameError> {
    if len > MAX_FRAME_PAYLOAD {
        return Err(FrameError::Oversized { len: len as u64 });
    }
    let mut payload = vec![0u8; len as usize];
    read_exact_frame(r, &mut payload, false, "frame payload")?;
    Ok(Bytes::from(payload))
}

/// FNV-1a digest of the payload bytes — cheap, deterministic, and more
/// than enough to catch the byte flips a chaos proxy (or a flaky link)
/// injects. Not cryptographic; the threat model is corruption, not
/// forgery.
pub fn payload_checksum(payload: &[u8]) -> u64 {
    let mut h = 0xCBF2_9CE4_8422_2325u64;
    for &b in payload {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01B3);
    }
    h
}

fn read_u64(header: &[u8], at: usize) -> u64 {
    let mut raw = [0u8; 8];
    raw.copy_from_slice(&header[at..at + 8]);
    u64::from_le_bytes(raw)
}

/// One decoded request frame.
#[derive(Debug)]
pub struct RequestFrame {
    /// Correlation id chosen by the provider.
    pub corr: u64,
    /// The sender's connection generation; echoed verbatim in the reply
    /// header so the client can fence replies from dead generations.
    pub epoch: u64,
    /// Deadline in relative microseconds from send ([`DEADLINE_NONE`] =
    /// none).
    pub deadline_rel_us: u64,
    /// The wire-encoded [`Request`], byte-identical to the in-memory
    /// encoding.
    pub payload: Bytes,
}

/// Writes one request frame (single `write_all`, so concurrent senders
/// serialized by a lock can never interleave partial frames).
pub fn write_request_frame(
    w: &mut impl Write,
    corr: u64,
    epoch: u64,
    deadline_rel_us: u64,
    payload: &[u8],
) -> std::io::Result<()> {
    let mut buf = Vec::with_capacity(REQUEST_HEADER_LEN + payload.len());
    buf.extend_from_slice(&(payload.len() as u32).to_le_bytes());
    buf.extend_from_slice(&corr.to_le_bytes());
    buf.extend_from_slice(&epoch.to_le_bytes());
    buf.extend_from_slice(&payload_checksum(payload).to_le_bytes());
    buf.extend_from_slice(&deadline_rel_us.to_le_bytes());
    buf.extend_from_slice(payload);
    w.write_all(&buf)?;
    w.flush()
}

/// Reads one request frame ([`FrameError::Eof`] on a clean peer close,
/// [`FrameError::Corrupt`] when the payload fails its checksum).
pub fn read_request_frame(r: &mut impl Read) -> Result<RequestFrame, FrameError> {
    let mut header = [0u8; REQUEST_HEADER_LEN];
    read_exact_frame(r, &mut header, true, "request header")?;
    let len = u32::from_le_bytes([header[0], header[1], header[2], header[3]]);
    let corr = read_u64(&header, 4);
    let epoch = read_u64(&header, 12);
    let checksum = read_u64(&header, 20);
    let deadline_rel_us = read_u64(&header, 28);
    let payload = read_payload(r, len)?;
    if payload_checksum(&payload) != checksum {
        return Err(FrameError::Corrupt {
            context: "request payload",
        });
    }
    Ok(RequestFrame {
        corr,
        epoch,
        deadline_rel_us,
        payload,
    })
}

/// Writes one reply frame, echoing the request's `epoch`.
pub fn write_reply_frame(
    w: &mut impl Write,
    corr: u64,
    epoch: u64,
    payload: &[u8],
) -> std::io::Result<()> {
    let mut buf = Vec::with_capacity(REPLY_HEADER_LEN + payload.len());
    buf.extend_from_slice(&(payload.len() as u32).to_le_bytes());
    buf.extend_from_slice(&corr.to_le_bytes());
    buf.extend_from_slice(&epoch.to_le_bytes());
    buf.extend_from_slice(&payload_checksum(payload).to_le_bytes());
    buf.extend_from_slice(payload);
    w.write_all(&buf)?;
    w.flush()
}

/// Reads one reply frame: `(corr, epoch, payload)`.
/// [`FrameError::Corrupt`] when the payload fails its checksum.
pub fn read_reply_frame(r: &mut impl Read) -> Result<(u64, u64, Bytes), FrameError> {
    let mut header = [0u8; REPLY_HEADER_LEN];
    read_exact_frame(r, &mut header, true, "reply header")?;
    let len = u32::from_le_bytes([header[0], header[1], header[2], header[3]]);
    let corr = read_u64(&header, 4);
    let epoch = read_u64(&header, 12);
    let checksum = read_u64(&header, 20);
    let payload = read_payload(r, len)?;
    if payload_checksum(&payload) != checksum {
        return Err(FrameError::Corrupt {
            context: "reply payload",
        });
    }
    Ok((corr, epoch, payload))
}

/// Encodes a call deadline as relative microseconds from `now`
/// (saturating at zero: an already-expired deadline ships as `0`, which
/// the serving side sheds on arrival — same as the in-memory worker).
pub fn deadline_to_rel_us(deadline: Option<Instant>, now: Instant) -> u64 {
    match deadline {
        None => DEADLINE_NONE,
        Some(d) => {
            let us = d.saturating_duration_since(now).as_micros();
            us.min((DEADLINE_NONE - 1) as u128) as u64
        }
    }
}

// ---------------------------------------------------------------------
// Serving side
// ---------------------------------------------------------------------

/// Silo-side configuration for [`SiloSocketServer`]: the same simulated
/// latency and deterministic fault injection the in-memory worker
/// supports, applied per frame in the same order (latency → fault →
/// deadline shed → decode → handle).
pub struct SocketServerConfig {
    /// Fixed simulated latency added before serving each frame.
    pub latency: Option<Duration>,
    /// Deterministic fault injector (see [`crate::fault::FaultPlan`]).
    pub faults: Option<SiloFaultInjector>,
    /// When set, the silo's retained grid is persisted here (checksummed,
    /// see [`crate::silo::SiloGridSnapshot`]) after every served
    /// `BuildGrid`, so a killed-and-respawned `fedra-silo` can warm-start
    /// from disk instead of re-binning its partition.
    pub snapshot_path: Option<PathBuf>,
}

impl Default for SocketServerConfig {
    fn default() -> Self {
        SocketServerConfig {
            latency: None,
            faults: None,
            snapshot_path: None,
        }
    }
}

struct ServerShared {
    silo: Arc<Silo>,
    latency: Option<Duration>,
    faults: Mutex<Option<SiloFaultInjector>>,
    snapshot_path: Option<PathBuf>,
    shutdown: Arc<AtomicBool>,
    /// Set by an injected crash: the server stops accepting and drops
    /// every connection, so clients observe `Disconnected` — the socket
    /// analogue of the in-memory worker thread exiting.
    dead: Arc<AtomicBool>,
}

/// One silo served over a socket: an accept loop plus one sequential
/// frame-handling thread per connection. This is what `fedra-silo serve`
/// runs, and what the in-process socket backend
/// ([`spawn_silo_socket`]) stands up behind the scenes.
///
/// Frames on one connection are handled strictly in arrival order —
/// matching the in-memory worker's envelope queue — and each consumes
/// one fault-injector action, so a seeded [`crate::fault::FaultPlan`]
/// produces the same schedule on both backends.
pub struct SiloSocketServer {
    addr: SiloAddr,
    shutdown: Arc<AtomicBool>,
    thread: Option<JoinHandle<()>>,
}

impl SiloSocketServer {
    /// Binds `addr` and starts serving `silo`. Returns the running
    /// server; [`SiloSocketServer::addr`] carries the resolved address
    /// (with the ephemeral port filled in for TCP `host:0`).
    pub fn spawn(
        silo: Silo,
        addr: &SiloAddr,
        config: SocketServerConfig,
    ) -> Result<SiloSocketServer, TransportError> {
        let id = silo.id();
        let spawn_err = |reason: String| TransportError::Spawn { silo: id, reason };
        let (listener, resolved) =
            SocketListener::bind(addr).map_err(|e| spawn_err(format!("bind {addr}: {e}")))?;
        let shutdown = Arc::new(AtomicBool::new(false));
        let shared = Arc::new(ServerShared {
            silo: Arc::new(silo),
            latency: config.latency,
            faults: Mutex::new(config.faults),
            snapshot_path: config.snapshot_path,
            shutdown: Arc::clone(&shutdown),
            dead: Arc::new(AtomicBool::new(false)),
        });
        let thread = std::thread::Builder::new()
            .name(format!("fedra-silo-srv-{id}"))
            .spawn(move || accept_loop(listener, shared))
            .map_err(|e| spawn_err(format!("spawn accept loop: {e}")))?;
        Ok(SiloSocketServer {
            addr: resolved,
            shutdown,
            thread: Some(thread),
        })
    }

    /// The resolved listen address.
    pub fn addr(&self) -> &SiloAddr {
        &self.addr
    }

    /// Asks the accept loop to exit (live connections drain on their own
    /// when the peers close).
    pub fn stop(&self) {
        self.shutdown.store(true, Ordering::Release);
    }

    /// Dismantles the handle into its shutdown flag and join handle —
    /// the in-process backend hands the join handle to the federation's
    /// worker list and ties the flag to the client transport's drop.
    pub fn detach(mut self) -> (SiloAddr, Arc<AtomicBool>, Option<JoinHandle<()>>) {
        let thread = self.thread.take();
        (self.addr.clone(), Arc::clone(&self.shutdown), thread)
    }

    /// Blocks until the accept loop exits (`fedra-silo serve` runs until
    /// killed or crashed by an injected fault).
    pub fn join(mut self) {
        if let Some(thread) = self.thread.take() {
            let _ = thread.join();
        }
    }
}

impl Drop for SiloSocketServer {
    fn drop(&mut self) {
        // Only while still owning the accept loop: `detach()` hands the
        // shutdown responsibility to the client transport's drop.
        if let Some(thread) = self.thread.take() {
            self.shutdown.store(true, Ordering::Release);
            let _ = thread.join();
        }
    }
}

fn accept_loop(listener: SocketListener, shared: Arc<ServerShared>) {
    while !shared.shutdown.load(Ordering::Acquire) && !shared.dead.load(Ordering::Acquire) {
        match listener.accept() {
            Ok(Some(conn)) => {
                let shared = Arc::clone(&shared);
                // A failed handler spawn drops the connection; the peer
                // sees EOF and handles it like any other loss.
                let _ = std::thread::Builder::new()
                    .name("fedra-silo-conn".into())
                    .spawn(move || serve_connection(conn, shared));
            }
            Ok(None) => std::thread::sleep(ACCEPT_POLL),
            Err(_) => break,
        }
    }
    // Dropping the listener here closes it (and removes a Unix socket
    // path), so post-crash reconnect attempts are refused.
}

/// Serves one connection: frames strictly in arrival order, one
/// fault-injector action per frame, the worker-loop order preserved
/// (latency → fault → deadline shed → decode → handle → reply).
fn serve_connection(conn: SocketStream, shared: Arc<ServerShared>) {
    if conn.set_nonblocking(false).is_err() {
        return;
    }
    let mut writer = conn;
    let mut reader = match writer.try_clone() {
        Ok(r) => std::io::BufReader::new(r),
        Err(_) => return,
    };
    loop {
        if shared.shutdown.load(Ordering::Acquire) || shared.dead.load(Ordering::Acquire) {
            return;
        }
        let frame = match read_request_frame(&mut reader) {
            Ok(frame) => frame,
            Err(_) => return, // EOF, truncation, or protocol corruption: drop the connection
        };
        let received_at = Instant::now();
        if let Some(latency) = shared.latency {
            std::thread::sleep(latency);
        }
        let action = shared
            .faults
            .lock()
            .as_mut()
            .map(SiloFaultInjector::next_action);
        match action {
            Some(FaultAction::Crash) => {
                // The whole server dies, like the in-memory worker thread
                // exiting: stop accepting, drop this connection without a
                // reply. Reconnects get refused once the listener drops.
                shared.dead.store(true, Ordering::Release);
                writer.shutdown();
                return;
            }
            Some(FaultAction::Drop) => continue,
            Some(FaultAction::Transient { message, delay }) => {
                if let Some(delay) = delay {
                    std::thread::sleep(delay);
                }
                let payload = Response::Transient(message).to_bytes();
                if write_reply_frame(&mut writer, frame.corr, frame.epoch, &payload).is_err() {
                    return;
                }
                continue;
            }
            Some(FaultAction::Proceed { delay }) => {
                if let Some(delay) = delay {
                    std::thread::sleep(delay);
                }
            }
            None => {}
        }
        // Shed work whose caller has already given up: the deadline was
        // shipped as relative microseconds and re-anchored at receipt,
        // and the refusal still travels (and is byte-counted).
        if frame.deadline_rel_us != DEADLINE_NONE {
            let deadline = received_at + Duration::from_micros(frame.deadline_rel_us);
            let now = Instant::now();
            if now >= deadline {
                let late_by_us = (now - deadline).as_micros().min(u64::MAX as u128) as u64;
                let payload = Response::DeadlineExceeded { late_by_us }.to_bytes();
                if write_reply_frame(&mut writer, frame.corr, frame.epoch, &payload).is_err() {
                    return;
                }
                continue;
            }
        }
        let (response, rebuilt_grid) = match Request::from_bytes(frame.payload) {
            Ok(request) => {
                let rebuilt = wants_snapshot(&request);
                (shared.silo.handle(request), rebuilt)
            }
            Err(e) => (Response::Error(format!("undecodable request: {e}")), false),
        };
        // Persist the freshly retained grid before replying, so a crash
        // any time after the provider saw the (Grid|GridAck) can recover
        // from disk.
        if rebuilt_grid {
            if let Some(path) = &shared.snapshot_path {
                let _ = shared.silo.save_grid_snapshot(path);
            }
        }
        if write_reply_frame(&mut writer, frame.corr, frame.epoch, &response.to_bytes()).is_err() {
            return;
        }
    }
}

/// Whether serving `request` (re)builds the silo's retained grid — the
/// state worth snapshotting afterwards.
fn wants_snapshot(request: &Request) -> bool {
    match request {
        Request::BuildGrid { .. } => true,
        Request::Batch(items) => items
            .iter()
            .any(|item| matches!(item, Request::BuildGrid { .. })),
        _ => false,
    }
}

// ---------------------------------------------------------------------
// Client side
// ---------------------------------------------------------------------

/// Diagnostics a [`SocketTransport`] reports through the [`Transport`]
/// trait. For an **in-process** silo these are the silo's own shared
/// handles (so `served()`, `set_failed()` and `silo_metrics()` behave
/// exactly like the in-memory backend); for a **remote** silo they are
/// client-local stand-ins (`served()` counts drained replies,
/// `set_failed()` is client-side bookkeeping the remote process never
/// sees).
pub struct SiloDiagnostics {
    /// The silo's served counter, when in-process.
    pub served: Option<Arc<AtomicU64>>,
    /// The failure-injection flag (the silo's own when in-process).
    pub failed: Arc<AtomicBool>,
    /// The silo's metrics registry (a fresh registry for remote peers;
    /// transport metrics land here either way).
    pub metrics: Arc<fedra_obs::MetricsRegistry>,
}

impl SiloDiagnostics {
    /// Shares the diagnostics of an in-process [`Silo`].
    pub fn shared_with(silo: &Silo) -> SiloDiagnostics {
        SiloDiagnostics {
            served: Some(silo.served_counter()),
            failed: silo.failure_flag(),
            metrics: silo.metrics(),
        }
    }

    /// Client-local diagnostics for a genuinely remote silo.
    pub fn remote() -> SiloDiagnostics {
        SiloDiagnostics {
            served: None,
            failed: Arc::new(AtomicBool::new(false)),
            metrics: Arc::new(fedra_obs::MetricsRegistry::new()),
        }
    }
}

struct ClientInner {
    silo: SiloId,
    addr: SiloAddr,
    /// Whether the client currently believes the peer reachable. Cleared
    /// when the reconnect budget runs out; set again by a successful
    /// send-path re-establish. Advisory only — `send_frame` always makes
    /// one fresh attempt on a dead connection.
    alive: AtomicBool,
    /// Set once, by `Drop`: no reconnect may ever follow.
    closed: AtomicBool,
    policy: ReconnectPolicy,
    next_corr: AtomicU64,
    /// Connection generation: bumped on every (re)connect so a stale
    /// reader thread can tell its loss report is outdated, and the
    /// in-flight sweep only fails calls sent on the lost connection.
    generation: AtomicU64,
    /// Write half of the current connection.
    ///
    /// Lock order: `conn` before `inflight`, everywhere.
    conn: Mutex<Option<SocketStream>>,
    /// In-flight calls: corr → (generation, slot).
    inflight: Mutex<HashMap<u64, (u64, Arc<ReplySlot>)>>,
    served: Option<Arc<AtomicU64>>,
    replies_drained: AtomicU64,
    failed: AtomicBoolArc,
    metrics: Arc<fedra_obs::MetricsRegistry>,
    reconnects: Arc<fedra_obs::Counter>,
    /// Stale-epoch replies the reader fenced out (see the module docs).
    fenced: Arc<fedra_obs::Counter>,
}

/// Newtype so the shared failure flag reads as what it is.
struct AtomicBoolArc(Arc<AtomicBool>);

impl ClientInner {
    /// Establishes a connection under the `conn` lock (bumping the
    /// generation and spawning the paired reader thread).
    fn establish(self: &Arc<Self>, conn: &mut Option<SocketStream>) -> Result<(), TransportError> {
        let stream = self
            .addr
            .connect()
            .map_err(|e| TransportError::Disconnected { silo: self.silo }.with_context(e))?;
        let read_half = stream
            .try_clone()
            .map_err(|_| TransportError::Disconnected { silo: self.silo })?;
        let gen = self.generation.fetch_add(1, Ordering::AcqRel) + 1;
        let inner = Arc::clone(self);
        std::thread::Builder::new()
            .name(format!("fedra-sock-rx-{}", self.silo))
            .spawn(move || reader_loop(inner, read_half, gen))
            .map_err(|e| TransportError::Spawn {
                silo: self.silo,
                reason: e.to_string(),
            })?;
        *conn = Some(stream);
        Ok(())
    }

    /// Fails every in-flight call sent on a generation ≤ `up_to` with
    /// `error` (or marks them dead when the peer is gone for good).
    fn sweep(&self, up_to: u64, error: Option<TransportError>) {
        let swept: Vec<Arc<ReplySlot>> = {
            let mut inflight = self.inflight.lock();
            let stale: Vec<u64> = inflight
                .iter()
                .filter(|(_, (gen, _))| *gen <= up_to)
                .map(|(corr, _)| *corr)
                .collect();
            stale
                .into_iter()
                .filter_map(|corr| inflight.remove(&corr).map(|(_, slot)| slot))
                .collect()
        };
        for slot in swept {
            match &error {
                Some(e) => slot.fail(e.clone()),
                None => slot.mark_dead(),
            }
        }
    }

    /// Handles a connection loss observed by the reader of `lost_gen`:
    /// reconnect under the client's [`ReconnectPolicy`] (failing that
    /// generation's in-flight calls as retryable transients), or give up
    /// for now. Exhaustion clears `alive` but is not terminal — see
    /// [`Transport::send_frame`], which probes the peer again per call.
    fn handle_loss(self: &Arc<Self>, lost_gen: u64) {
        let mut conn = self.conn.lock();
        if self.generation.load(Ordering::Acquire) != lost_gen {
            return; // a newer connection superseded the lost one
        }
        *conn = None;
        if self.closed.load(Ordering::Acquire) {
            drop(conn);
            self.sweep(lost_gen, None);
            return;
        }
        let mut attempt = 0u32;
        loop {
            attempt += 1;
            if !self.policy.allows_attempt(attempt) || self.closed.load(Ordering::Acquire) {
                break;
            }
            if self.establish(&mut conn).is_ok() {
                self.reconnects.inc();
                drop(conn);
                self.sweep(
                    lost_gen,
                    Some(TransportError::Transient {
                        silo: self.silo,
                        message: "socket connection lost; reconnected".into(),
                    }),
                );
                return;
            }
            std::thread::sleep(self.policy.backoff(self.silo, attempt));
        }
        self.alive.store(false, Ordering::Release);
        drop(conn);
        self.sweep(u64::MAX, None);
    }
}

fn reader_loop(inner: Arc<ClientInner>, read_half: SocketStream, gen: u64) {
    let mut reader = std::io::BufReader::new(read_half);
    loop {
        match read_reply_frame(&mut reader) {
            Ok((corr, epoch, payload)) => {
                if epoch != gen {
                    // A reply solicited on a dead connection generation:
                    // only reachable when a middlebox (the chaos proxy, a
                    // future load balancer) multiplexes one upstream
                    // connection across our reconnects. Fencing it here —
                    // instead of letting the corr race a fresh call that
                    // reused the slot map — is the staleness guarantee
                    // the partition soak pins.
                    inner.fenced.inc();
                    continue;
                }
                let slot = inner.inflight.lock().remove(&corr).map(|(_, slot)| slot);
                if let Some(slot) = slot {
                    inner.replies_drained.fetch_add(1, Ordering::Relaxed);
                    slot.fill(payload);
                }
                // An unknown corr is a reply to an abandoned call whose
                // entry was already retired — dropped, like the in-memory
                // worker filling a discarded slot.
            }
            Err(_) => {
                // EOF, truncation, or a checksum mismatch (`Corrupt`):
                // the stream can no longer be trusted to be in frame
                // sync, so the connection is torn down and in-flight
                // calls retry on the replacement.
                inner.handle_loss(gen);
                return;
            }
        }
    }
}

/// The socket [`Transport`] backend: one multiplexed connection per
/// channel, length-prefixed frames (see the module docs), correlation-id
/// reply pairing, and reconnect-on-transient.
pub struct SocketTransport {
    inner: Arc<ClientInner>,
    /// When the backend owns an in-process server, dropping the last
    /// channel clone tears the server down too.
    server_shutdown: Option<Arc<AtomicBool>>,
}

impl SocketTransport {
    /// Connects to the silo served at `addr` with the default
    /// [`ReconnectPolicy`]. `silo` is the provider-side id for error
    /// attribution; `diagnostics` decides whether served/failed/metrics
    /// are shared with an in-process silo or client-local (see
    /// [`SiloDiagnostics`]).
    pub fn connect(
        silo: SiloId,
        addr: SiloAddr,
        diagnostics: SiloDiagnostics,
    ) -> Result<SocketTransport, TransportError> {
        Self::connect_with(silo, addr, diagnostics, ReconnectPolicy::default())
    }

    /// Like [`SocketTransport::connect`], with an explicit reconnect
    /// policy (attempt budget, backoff shape, jitter seed).
    pub fn connect_with(
        silo: SiloId,
        addr: SiloAddr,
        diagnostics: SiloDiagnostics,
        policy: ReconnectPolicy,
    ) -> Result<SocketTransport, TransportError> {
        let reconnects = diagnostics.metrics.counter(RECONNECTS_METRIC);
        let fenced = diagnostics.metrics.counter(FENCED_METRIC);
        let inner = Arc::new(ClientInner {
            silo,
            addr,
            alive: AtomicBool::new(true),
            closed: AtomicBool::new(false),
            policy,
            next_corr: AtomicU64::new(0),
            generation: AtomicU64::new(0),
            conn: Mutex::new(None),
            inflight: Mutex::new(HashMap::new()),
            served: diagnostics.served,
            replies_drained: AtomicU64::new(0),
            failed: AtomicBoolArc(diagnostics.failed),
            metrics: diagnostics.metrics,
            reconnects,
            fenced,
        });
        {
            let mut conn = inner.conn.lock();
            inner.establish(&mut conn)?;
        }
        Ok(SocketTransport {
            inner,
            server_shutdown: None,
        })
    }

    /// Ties an in-process server's shutdown flag to this transport's
    /// drop (used by [`spawn_silo_socket`]).
    pub fn with_server_shutdown(mut self, flag: Arc<AtomicBool>) -> SocketTransport {
        self.server_shutdown = Some(flag);
        self
    }

    /// The address this transport is connected to.
    pub fn addr(&self) -> &SiloAddr {
        &self.inner.addr
    }
}

impl Transport for SocketTransport {
    fn silo(&self) -> SiloId {
        self.inner.silo
    }

    fn backend_name(&self) -> &'static str {
        "socket"
    }

    fn send_frame(
        &self,
        frame: Bytes,
        deadline: Option<Instant>,
        slot: &Arc<ReplySlot>,
    ) -> Result<u64, TransportError> {
        let inner = &self.inner;
        if inner.closed.load(Ordering::Acquire) {
            return Err(TransportError::Disconnected { silo: inner.silo });
        }
        let mut conn = inner.conn.lock();
        if conn.is_none() {
            // The reconnect budget ran out earlier (or the loss handler
            // gave the connection up while we waited on the lock). Probe
            // the peer once per call instead of failing forever: this is
            // what lets a health breaker's HalfOpen draw rejoin a
            // respawned `fedra-silo` after a partition heals. A refused
            // connect keeps surfacing as `Disconnected`, which the
            // caller's failure path records against the breaker.
            if inner.closed.load(Ordering::Acquire) || inner.establish(&mut conn).is_err() {
                return Err(TransportError::Disconnected { silo: inner.silo });
            }
            inner.alive.store(true, Ordering::Release);
            inner.reconnects.inc();
        }
        let Some(stream) = conn.as_mut() else {
            return Err(TransportError::Disconnected { silo: inner.silo });
        };
        let corr = inner.next_corr.fetch_add(1, Ordering::Relaxed);
        let gen = inner.generation.load(Ordering::Acquire);
        inner.inflight.lock().insert(corr, (gen, Arc::clone(slot)));
        let rel = deadline_to_rel_us(deadline, Instant::now());
        match write_request_frame(stream, corr, gen, rel, &frame) {
            Ok(()) => Ok(corr),
            Err(e) => {
                inner.inflight.lock().remove(&corr);
                // The reader on this connection will observe the same
                // failure and drive the reconnect; surface the send as a
                // retryable transient so the caller retries onto the
                // fresh connection.
                Err(TransportError::Transient {
                    silo: inner.silo,
                    message: format!("socket write failed: {e}"),
                })
            }
        }
    }

    fn retire(&self, token: u64) {
        self.inner.inflight.lock().remove(&token);
    }

    fn is_alive(&self) -> bool {
        self.inner.alive.load(Ordering::Acquire)
    }

    fn inflight_len(&self) -> usize {
        self.inner.inflight.lock().len()
    }

    fn served(&self) -> u64 {
        match &self.inner.served {
            Some(shared) => shared.load(Ordering::Relaxed),
            None => self.inner.replies_drained.load(Ordering::Relaxed),
        }
    }

    fn set_failed(&self, failed: bool) {
        self.inner.failed.0.store(failed, Ordering::Release);
    }

    fn is_failed(&self) -> bool {
        self.inner.failed.0.load(Ordering::Acquire)
    }

    fn silo_metrics(&self) -> &Arc<fedra_obs::MetricsRegistry> {
        &self.inner.metrics
    }
}

impl Drop for SocketTransport {
    fn drop(&mut self) {
        // Order matters: mark the client closed first so neither the
        // reader's loss handler nor a racing send will reconnect, then
        // close the stream to wake the reader.
        self.inner.closed.store(true, Ordering::Release);
        self.inner.alive.store(false, Ordering::Release);
        if let Some(flag) = &self.server_shutdown {
            flag.store(true, Ordering::Release);
        }
        if let Some(stream) = self.inner.conn.lock().take() {
            stream.shutdown();
        }
    }
}

impl std::fmt::Debug for SocketTransport {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SocketTransport")
            .field("silo", &self.inner.silo)
            .field("addr", &self.inner.addr)
            .field("alive", &self.is_alive())
            .finish()
    }
}

// ---------------------------------------------------------------------
// In-process socket federation
// ---------------------------------------------------------------------

/// Stands one silo up behind a real loopback socket **in this process**:
/// binds an ephemeral TCP listener, serves the silo on it, and connects
/// a [`SocketTransport`] channel — sharing the silo's served counter,
/// failure flag and metrics registry, so every federation diagnostic
/// behaves exactly like the in-memory backend while all frames travel
/// through the kernel's socket stack.
///
/// This is the socket twin of [`super::spawn_silo`] (selected by
/// `FederationBuilder::transport_backend` or `FEDRA_TRANSPORT=socket`):
/// same signature, same fault-injection and latency semantics, and the
/// returned join handle is the server's accept loop.
pub fn spawn_silo_socket(
    silo: Silo,
    stats: Arc<CommCounters>,
    simulated_latency: Option<Duration>,
    faults: Option<SiloFaultInjector>,
    reconnect: ReconnectPolicy,
) -> Result<(SiloChannel, JoinHandle<()>), TransportError> {
    let id = silo.id();
    let diagnostics = SiloDiagnostics::shared_with(&silo);
    let server = SiloSocketServer::spawn(
        silo,
        &SiloAddr::Tcp("127.0.0.1:0".into()),
        SocketServerConfig {
            latency: simulated_latency,
            faults,
            snapshot_path: None,
        },
    )?;
    let (addr, shutdown, thread) = server.detach();
    let Some(thread) = thread else {
        return Err(TransportError::Spawn {
            silo: id,
            reason: "socket server thread missing".into(),
        });
    };
    let transport = match SocketTransport::connect_with(id, addr, diagnostics, reconnect) {
        Ok(t) => t.with_server_shutdown(shutdown),
        Err(e) => {
            shutdown.store(true, Ordering::Release);
            let _ = thread.join();
            return Err(e);
        }
    };
    Ok((SiloChannel::over(Arc::new(transport), stats), thread))
}

impl TransportError {
    /// Attaches connection context to a `Disconnected` for logs (the
    /// variant itself stays shape-stable for matching).
    fn with_context(self, _e: std::io::Error) -> TransportError {
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn addr_parse_roundtrips() {
        assert_eq!(
            SiloAddr::parse("tcp:127.0.0.1:9000"),
            Ok(SiloAddr::Tcp("127.0.0.1:9000".into()))
        );
        assert_eq!(
            SiloAddr::parse("127.0.0.1:9000"),
            Ok(SiloAddr::Tcp("127.0.0.1:9000".into()))
        );
        #[cfg(unix)]
        assert_eq!(
            SiloAddr::parse("unix:/tmp/s.sock"),
            Ok(SiloAddr::Unix(PathBuf::from("/tmp/s.sock")))
        );
        assert!(SiloAddr::parse("nonsense").is_err());
        assert_eq!(
            SiloAddr::parse("unix:/a/b").map(|a| a.to_string()),
            Ok("unix:/a/b".into())
        );
    }

    #[test]
    fn request_frame_roundtrips_and_payload_is_wire_identical() {
        let request = Request::Ping;
        let payload = request.to_bytes();
        let mut buf = Vec::new();
        write_request_frame(&mut buf, 42, 3, 1234, &payload).expect("write");
        assert_eq!(buf.len(), REQUEST_HEADER_LEN + payload.len());
        // The payload section is byte-identical to the in-memory frame.
        assert_eq!(&buf[REQUEST_HEADER_LEN..], payload.as_ref());
        let frame = read_request_frame(&mut buf.as_slice()).expect("read");
        assert_eq!(frame.corr, 42);
        assert_eq!(frame.epoch, 3);
        assert_eq!(frame.deadline_rel_us, 1234);
        assert_eq!(frame.payload, payload);
    }

    #[test]
    fn reply_frame_roundtrips() {
        let payload = Response::Pong.to_bytes();
        let mut buf = Vec::new();
        write_reply_frame(&mut buf, 7, 9, &payload).expect("write");
        assert_eq!(&buf[REPLY_HEADER_LEN..], payload.as_ref());
        let (corr, epoch, got) = read_reply_frame(&mut buf.as_slice()).expect("read");
        assert_eq!(corr, 7);
        assert_eq!(epoch, 9);
        assert_eq!(got, payload);
    }

    #[test]
    fn corrupted_payload_is_a_typed_error_not_a_wrong_answer() {
        // Flip one payload byte in each direction: the checksum must
        // catch it (a flipped byte inside a wire-encoded f64 would
        // otherwise decode silently into a different number).
        let payload = Response::Agg(fedra_index::Aggregate {
            count: 4.0,
            sum: 10.0,
            sum_sqr: 30.0,
        })
        .to_bytes();
        let mut buf = Vec::new();
        write_reply_frame(&mut buf, 1, 0, &payload).expect("write");
        let flip_at = REPLY_HEADER_LEN + payload.len() / 2;
        buf[flip_at] ^= 0x40;
        assert_eq!(
            read_reply_frame(&mut buf.as_slice()),
            Err(FrameError::Corrupt {
                context: "reply payload"
            })
        );
        let payload = Request::Ping.to_bytes();
        let mut buf = Vec::new();
        write_request_frame(&mut buf, 1, 0, DEADLINE_NONE, &payload).expect("write");
        let last = buf.len() - 1;
        buf[last] ^= 0x01;
        match read_request_frame(&mut buf.as_slice()) {
            Err(FrameError::Corrupt { context }) => assert_eq!(context, "request payload"),
            other => panic!("expected Corrupt, got {other:?}"),
        }
    }

    #[test]
    fn reconnect_policy_defaults_reproduce_old_constants() {
        let p = ReconnectPolicy::default();
        assert_eq!(p.attempts, ReconnectAttempts::Limited(RECONNECT_ATTEMPTS));
        assert_eq!(p.backoff_base, RECONNECT_BACKOFF);
        assert!(p.allows_attempt(1) && p.allows_attempt(3) && !p.allows_attempt(4));
        assert!(ReconnectPolicy::unbounded().allows_attempt(u32::MAX));
        // Deterministic, capped-exponential backoff with bounded jitter.
        for attempt in 1..=8 {
            let b = p.backoff(2, attempt);
            assert_eq!(b, p.backoff(2, attempt), "backoff must be deterministic");
            assert!(
                b <= p.backoff_cap + p.backoff_base,
                "attempt {attempt}: {b:?}"
            );
        }
        assert!(p.backoff(0, 1) < p.backoff_cap + p.backoff_base);
        assert_eq!(
            ReconnectPolicy {
                backoff_base: Duration::ZERO,
                ..p
            }
            .backoff(1, 1),
            Duration::ZERO
        );
    }

    #[test]
    fn clean_eof_and_truncation_are_distinguished() {
        let empty: &[u8] = &[];
        assert_eq!(read_reply_frame(&mut &*empty), Err(FrameError::Eof));
        // A partial header is a truncation, not a clean close.
        let partial = [1u8, 0, 0];
        assert_eq!(
            read_reply_frame(&mut partial.as_slice()),
            Err(FrameError::Truncated {
                context: "reply header"
            })
        );
        // A header announcing more payload than the stream carries.
        let mut buf = Vec::new();
        write_reply_frame(&mut buf, 9, 0, &[1, 2, 3, 4]).expect("write");
        buf.truncate(buf.len() - 2);
        assert_eq!(
            read_reply_frame(&mut buf.as_slice()),
            Err(FrameError::Truncated {
                context: "frame payload"
            })
        );
    }

    #[test]
    fn oversized_length_prefix_is_rejected_without_allocating() {
        let mut buf = Vec::new();
        buf.extend_from_slice(&u32::MAX.to_le_bytes());
        buf.extend_from_slice(&0u64.to_le_bytes()); // corr
        buf.extend_from_slice(&0u64.to_le_bytes()); // epoch
        buf.extend_from_slice(&0u64.to_le_bytes()); // checksum
        assert_eq!(
            read_reply_frame(&mut buf.as_slice()),
            Err(FrameError::Oversized {
                len: u32::MAX as u64
            })
        );
        // Same check on the request path (header is longer).
        let mut buf = Vec::new();
        buf.extend_from_slice(&(MAX_FRAME_PAYLOAD + 1).to_le_bytes());
        buf.extend_from_slice(&0u64.to_le_bytes()); // corr
        buf.extend_from_slice(&0u64.to_le_bytes()); // epoch
        buf.extend_from_slice(&0u64.to_le_bytes()); // checksum
        buf.extend_from_slice(&DEADLINE_NONE.to_le_bytes());
        match read_request_frame(&mut buf.as_slice()) {
            Err(FrameError::Oversized { len }) => {
                assert_eq!(len, (MAX_FRAME_PAYLOAD + 1) as u64);
            }
            other => panic!("expected Oversized, got {other:?}"),
        }
    }

    #[test]
    fn deadline_encoding_saturates() {
        let now = Instant::now();
        assert_eq!(deadline_to_rel_us(None, now), DEADLINE_NONE);
        // Already expired: ships as 0 → shed on arrival.
        assert_eq!(
            deadline_to_rel_us(Some(now - Duration::from_millis(5)), now),
            0
        );
        let rel = deadline_to_rel_us(Some(now + Duration::from_millis(5)), now);
        assert!(rel >= 4_000 && rel <= 5_000, "rel = {rel}");
    }
}
