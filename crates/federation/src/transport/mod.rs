//! Byte-counted transport between the provider and its silos.
//!
//! The provider talks to every silo through a [`SiloChannel`], a thin
//! handle over a pluggable [`Transport`] backend. Two backends ship:
//!
//! * **in-memory** ([`spawn_silo`]): the silo runs on its own OS thread
//!   and receives length-delimited byte buffers over a crossbeam channel.
//!   This is the deterministic tier-1 default.
//! * **socket** ([`socket::SocketTransport`]): the silo lives behind a
//!   length-prefixed TCP or Unix-domain socket — in another thread,
//!   process (`fedra-silo serve`), or machine. Payload bytes on the wire
//!   are byte-identical to the in-memory encoding; the per-frame header
//!   is the real-world analogue of the simulated per-message overhead.
//!
//! Either way, replies travel back on pooled parked-wait oneshot slots
//! (checked out per in-flight call, so the steady-state hot path
//! allocates nothing) and every buffer is a real [`crate::wire`]
//! encoding — the transport never shortcuts through shared memory — so
//! the byte counters here *are* the paper's communication-cost metric.
//!
//! Two amortization levers ride on top of the basic RPC:
//!
//! * **send/wait split** ([`SiloChannel::begin_call`] /
//!   [`PendingCall::wait`]): begin a frame on every relevant channel, then
//!   wait — the silo workers *are* the fan-out pool, no provider threads
//!   needed;
//! * **batching** ([`SiloChannel::call_batch`]): `n` same-silo requests
//!   share one wire frame, paying the per-message envelope overhead once
//!   per direction instead of `n` times.

pub mod chaos;
pub mod socket;

use std::collections::HashMap;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Condvar, PoisonError, Weak};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use bytes::Bytes;
use crossbeam::channel::{unbounded, Sender};
use parking_lot::Mutex;

use crate::fault::{FaultAction, SiloFaultInjector};
use crate::protocol::{encode_batch_request, Request, Response};
use crate::silo::{Silo, SiloId};
use crate::wire::{Wire, WireError};

// The byte-accounting types moved to `fedra-obs` so every layer (and the
// exporters) share one definition; the transport re-exports them under
// their historical home.
pub use fedra_obs::{CommCounters, CommSnapshot, DEFAULT_MESSAGE_OVERHEAD};

struct Envelope {
    request: Bytes,
    reply: Arc<ReplySlot>,
    /// Control metadata, not wire bytes: lets the worker shed requests
    /// whose caller has already given up (the caller enforces the same
    /// deadline on its receive side).
    deadline: Option<Instant>,
}

/// State of a [`ReplySlot`]: empty while the call is in flight, full once
/// the backend delivered, failed when the backend hit a connection-level
/// error it can attribute, dead once the backend is known gone without a
/// reply.
enum SlotState {
    Empty,
    Full(Bytes),
    Failed(TransportError),
    Dead,
}

/// A reusable parked-wait oneshot: the transport backend fills it, the
/// caller sleeps on the condvar until the reply lands, the deadline
/// passes, or the backend marks the slot failed/dead.
///
/// This replaces the earlier pooled `bounded(1)` reply channels, whose
/// caller-side sender kept the channel permanently connected — worker
/// death was unobservable on the channel itself, forcing the waiter into
/// a 5 ms sliced poll of a liveness flag. Here the waiter parks outright
/// and is *woken* on either event, so an idle provider burns no cycles
/// per in-flight call no matter how long the silo takes.
pub struct ReplySlot {
    cell: std::sync::Mutex<SlotState>,
    cv: Condvar,
}

impl ReplySlot {
    fn new() -> Self {
        ReplySlot {
            cell: std::sync::Mutex::new(SlotState::Empty),
            cv: Condvar::new(),
        }
    }

    /// Delivers the reply bytes and wakes the waiter. A slot abandoned by
    /// its caller (deadline miss) is simply filled with nobody listening;
    /// it was discarded from the pool, so the stale bytes are dropped with
    /// the last `Arc` reference.
    pub fn fill(&self, bytes: Bytes) {
        let mut state = self.cell.lock().unwrap_or_else(PoisonError::into_inner);
        if matches!(*state, SlotState::Empty) {
            *state = SlotState::Full(bytes);
            self.cv.notify_all();
        }
    }

    /// Marks the backend as gone and wakes the waiter; a reply that
    /// already landed wins (backends always deliver *before* they give
    /// up on a connection, so a full slot is a served call regardless of
    /// the backend's fate afterwards). The waiter observes this as
    /// [`TransportError::Disconnected`].
    pub fn mark_dead(&self) {
        let mut state = self.cell.lock().unwrap_or_else(PoisonError::into_inner);
        if matches!(*state, SlotState::Empty) {
            *state = SlotState::Dead;
            self.cv.notify_all();
        }
    }

    /// Fails the in-flight call with a backend-attributed error (e.g. a
    /// socket reset that a reconnect may cure surfaces as a retryable
    /// [`TransportError::Transient`]) and wakes the waiter. A reply that
    /// already landed wins.
    pub fn fail(&self, error: TransportError) {
        let mut state = self.cell.lock().unwrap_or_else(PoisonError::into_inner);
        if matches!(*state, SlotState::Empty) {
            *state = SlotState::Failed(error);
            self.cv.notify_all();
        }
    }

    /// Parks until the slot is filled, the backend dies, or `deadline`
    /// passes — whichever comes first. A reply that raced the deadline
    /// onto the slot still wins (the state is checked before the timeout
    /// verdict).
    fn wait(&self, deadline: Option<Instant>) -> RecvOutcome {
        let mut state = self.cell.lock().unwrap_or_else(PoisonError::into_inner);
        loop {
            match std::mem::replace(&mut *state, SlotState::Empty) {
                SlotState::Full(bytes) => return RecvOutcome::Bytes(bytes),
                SlotState::Failed(error) => return RecvOutcome::Failed(error),
                SlotState::Dead => {
                    *state = SlotState::Dead;
                    return RecvOutcome::Dead;
                }
                SlotState::Empty => {}
            }
            state = match deadline {
                Some(d) => {
                    let now = Instant::now();
                    if now >= d {
                        return RecvOutcome::TimedOut;
                    }
                    let (guard, _timed_out) = self
                        .cv
                        .wait_timeout(state, d - now)
                        .unwrap_or_else(PoisonError::into_inner);
                    guard
                }
                None => self.cv.wait(state).unwrap_or_else(PoisonError::into_inner),
            };
        }
    }
}

/// Pool of reply slots, so steady-state calls allocate no channels.
///
/// Slots are checked out per in-flight call and returned once the reply
/// has been drained — a slot whose pending call was abandoned is
/// *discarded* instead (the worker may still push a stale reply into it
/// later).
#[derive(Default)]
struct ReplyPool {
    slots: Mutex<Vec<Arc<ReplySlot>>>,
}

impl Default for ReplySlot {
    fn default() -> Self {
        Self::new()
    }
}

impl ReplyPool {
    fn checkout(&self) -> Arc<ReplySlot> {
        self.slots
            .lock()
            .pop()
            .unwrap_or_else(|| Arc::new(ReplySlot::new()))
    }

    fn restore(&self, slot: Arc<ReplySlot>) {
        self.slots.lock().push(slot);
    }
}

/// Registry of in-flight reply slots for one silo channel, shared with
/// the worker's [`AliveGuard`]: when the worker exits on *any* path, the
/// guard sweeps the registry and marks every outstanding slot dead, which
/// is what wakes parked waiters that would otherwise sleep forever on a
/// reply that can no longer come.
///
/// Entries are weak so an abandoned call's slot can die independently;
/// resolved calls deregister eagerly, and registration prunes dead weaks
/// once the map grows past a small bound, so the registry stays
/// proportional to the number of calls actually in flight.
#[derive(Default)]
struct InflightRegistry {
    inflight: Mutex<InflightSlots>,
}

#[derive(Default)]
struct InflightSlots {
    next_token: u64,
    slots: HashMap<u64, Weak<ReplySlot>>,
}

/// Registry size beyond which registration prunes unreachable entries.
const INFLIGHT_PRUNE_LEN: usize = 64;

impl InflightRegistry {
    fn register(&self, slot: &Arc<ReplySlot>) -> u64 {
        let mut guard = self.inflight.lock();
        if guard.slots.len() >= INFLIGHT_PRUNE_LEN {
            guard.slots.retain(|_, weak| weak.strong_count() > 0);
        }
        let token = guard.next_token;
        guard.next_token = guard.next_token.wrapping_add(1);
        guard.slots.insert(token, Arc::downgrade(slot));
        token
    }

    fn deregister(&self, token: u64) {
        self.inflight.lock().slots.remove(&token);
    }

    /// Marks every registered slot dead (worker exit). The upgrade happens
    /// under the registry lock but the marking outside it, so no slot lock
    /// is ever taken while the registry is held.
    fn sweep_dead(&self) {
        let live: Vec<Arc<ReplySlot>> = {
            let mut guard = self.inflight.lock();
            let slots = guard.slots.drain().filter_map(|(_, w)| w.upgrade());
            slots.collect()
        };
        for slot in live {
            slot.mark_dead();
        }
    }
}

/// Errors surfaced by [`SiloChannel::call`].
#[derive(Debug, Clone, PartialEq)]
pub enum TransportError {
    /// The silo worker is gone (shutdown or panic).
    Disconnected {
        /// Which silo.
        silo: SiloId,
    },
    /// The silo answered, but the payload would not decode.
    Codec {
        /// Which silo.
        silo: SiloId,
        /// The decode failure.
        error: crate::wire::WireError,
    },
    /// The silo refused the request (failure injection, missing state…).
    Remote {
        /// Which silo.
        silo: SiloId,
        /// The silo's error message.
        message: String,
    },
    /// The silo worker thread could not be spawned at all.
    ///
    /// Carries the OS error as a string because [`TransportError`] is
    /// `Clone + PartialEq` and `std::io::Error` is neither.
    Spawn {
        /// Which silo.
        silo: SiloId,
        /// The OS-level spawn failure.
        reason: String,
    },
    /// The silo refused transiently (flap window, injected chaos,
    /// overload): retrying the same request against the same silo may
    /// succeed, unlike [`TransportError::Remote`].
    Transient {
        /// Which silo.
        silo: SiloId,
        /// The silo's refusal message.
        message: String,
    },
    /// The call's deadline expired: either no reply arrived in time, or
    /// the worker shed the request because the deadline had already
    /// passed when it was picked up.
    DeadlineExceeded {
        /// Which silo.
        silo: SiloId,
    },
}

impl TransportError {
    /// The silo this error is attributed to.
    pub fn silo(&self) -> SiloId {
        match self {
            TransportError::Disconnected { silo }
            | TransportError::Codec { silo, .. }
            | TransportError::Remote { silo, .. }
            | TransportError::Spawn { silo, .. }
            | TransportError::Transient { silo, .. }
            | TransportError::DeadlineExceeded { silo } => *silo,
        }
    }

    /// Whether retrying the same request on the same silo may succeed.
    pub fn is_retryable(&self) -> bool {
        matches!(self, TransportError::Transient { .. })
    }

    /// Whether this is a deadline miss (callers resample rather than
    /// retry the same silo).
    pub fn is_deadline(&self) -> bool {
        matches!(self, TransportError::DeadlineExceeded { .. })
    }

    /// A short stable label for metrics/error summaries.
    pub fn kind(&self) -> &'static str {
        match self {
            TransportError::Disconnected { .. } => "disconnected",
            TransportError::Codec { .. } => "codec",
            TransportError::Remote { .. } => "remote",
            TransportError::Spawn { .. } => "spawn",
            TransportError::Transient { .. } => "transient",
            TransportError::DeadlineExceeded { .. } => "deadline",
        }
    }
}

impl std::fmt::Display for TransportError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TransportError::Disconnected { silo } => write!(f, "silo {silo} disconnected"),
            TransportError::Codec { silo, error } => write!(f, "silo {silo} codec error: {error}"),
            TransportError::Remote { silo, message } => write!(f, "silo {silo} error: {message}"),
            TransportError::Spawn { silo, reason } => {
                write!(f, "silo {silo} worker could not be spawned: {reason}")
            }
            TransportError::Transient { silo, message } => {
                write!(f, "silo {silo} transient error: {message}")
            }
            TransportError::DeadlineExceeded { silo } => {
                write!(f, "silo {silo} deadline exceeded")
            }
        }
    }
}

impl std::error::Error for TransportError {}

/// Timing/robustness policy for silo calls: per-attempt deadline, retry
/// budget for transient refusals, backoff shape, and the hedging
/// threshold.
///
/// The federation carries one policy (see
/// [`crate::FederationBuilder::call_policy`]); the default disables
/// deadlines and hedging, so behaviour is identical to the pre-policy
/// transport.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CallPolicy {
    /// Per-attempt RPC deadline (`None`: wait forever, the historical
    /// behaviour).
    pub deadline: Option<Duration>,
    /// Maximum same-silo retries after a [`TransportError::Transient`].
    pub retries: u32,
    /// First backoff sleep; doubles per retry.
    pub backoff_base: Duration,
    /// Backoff ceiling.
    pub backoff_cap: Duration,
    /// Fire a hedge request at a second silo if the first has not
    /// answered within this threshold (`None`: never hedge).
    pub hedge_after: Option<Duration>,
}

impl Default for CallPolicy {
    fn default() -> Self {
        CallPolicy {
            deadline: None,
            retries: 2,
            backoff_base: Duration::from_millis(2),
            backoff_cap: Duration::from_millis(50),
            hedge_after: None,
        }
    }
}

impl CallPolicy {
    /// Backoff before retry number `attempt` (1-based): capped
    /// exponential, plus deterministic jitter in `[0, backoff_base)`
    /// derived from `(silo, attempt)` — no RNG, no clock, so chaos runs
    /// stay reproducible while retry storms still decorrelate.
    pub fn backoff(&self, silo: SiloId, attempt: u32) -> Duration {
        if self.backoff_base.is_zero() {
            return Duration::ZERO;
        }
        let exp = self
            .backoff_base
            .saturating_mul(1u32 << attempt.saturating_sub(1).min(16));
        let capped = exp.min(self.backoff_cap);
        let base_ns = self.backoff_base.as_nanos() as u64;
        // SplitMix64-style hash of (silo, attempt) for the jitter draw.
        let mut z = (silo as u64)
            .wrapping_mul(0x9E37_79B9_7F4A_7C15)
            .wrapping_add(attempt as u64);
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        capped + Duration::from_nanos((z ^ (z >> 31)) % base_ns.max(1))
    }
}

/// Resolution of an in-flight call polled with a timeout: either the
/// decoded outcome, or the still-pending handle to poll again later.
#[derive(Debug)]
pub enum Poll<P, T> {
    /// The reply arrived (or the worker disconnected).
    Ready(T),
    /// Nothing yet; the call stays in flight.
    Pending(P),
}

/// Outcome of [`race_calls`]: which of the two in-flight calls answered
/// first, or neither before the deadline.
#[derive(Debug)]
pub enum RaceWinner {
    /// The primary call answered first.
    Primary(Result<Response, TransportError>),
    /// The hedge call answered first.
    Hedge(Result<Response, TransportError>),
    /// Neither answered before the deadline (both calls are abandoned).
    Timeout,
}

/// Races a primary in-flight call against a hedge: returns the first
/// reply to land before `deadline`, abandoning the loser (its reply pair
/// is discarded once the stale reply arrives, never reused).
///
/// The shim's channels have no `select`, so the race alternates short
/// timed waits between the two receivers; the slice is far below any
/// latency this layer injects, and each wait parks on a condvar rather
/// than spinning.
pub fn race_calls(primary: PendingCall, hedge: PendingCall, deadline: Instant) -> RaceWinner {
    const SLICE: Duration = Duration::from_micros(500);
    let mut first = primary;
    let mut second = hedge;
    // Tracks whether `first` currently refers to the primary call.
    let mut first_is_primary = true;
    loop {
        let now = Instant::now();
        if now >= deadline {
            return RaceWinner::Timeout;
        }
        let slice_end = (now + SLICE).min(deadline);
        match first.poll_deadline(slice_end) {
            Poll::Ready(result) => {
                return if first_is_primary {
                    RaceWinner::Primary(result)
                } else {
                    RaceWinner::Hedge(result)
                };
            }
            Poll::Pending(pending) => {
                first = second;
                second = pending;
                first_is_primary = !first_is_primary;
            }
        }
    }
}

/// A backend that can carry one silo's frames: ship an already-encoded
/// request, deliver the reply into a [`ReplySlot`], and report liveness.
///
/// [`SiloChannel`] is a thin handle over an `Arc<dyn Transport>`: the
/// send/wait split, reply-slot pooling, deadline enforcement on the wait
/// side, and [`CommCounters`] byte accounting all live *above* this
/// boundary and are shared by every backend. A backend only moves bytes:
///
/// * the **in-memory** backend hands frames to a per-silo worker thread
///   over a crossbeam channel ([`spawn_silo`]);
/// * the **socket** backend writes length-prefixed frames to a TCP or
///   Unix-domain stream and pairs replies back by correlation id
///   ([`socket::SocketTransport`]).
///
/// The deadline passed to [`Transport::send_frame`] is control metadata,
/// not wire bytes (the socket backend encodes it into the frame *header*,
/// never the payload): it lets the remote side shed requests whose caller
/// has already given up, exactly like the in-memory worker does.
pub trait Transport: Send + Sync {
    /// Which silo this backend reaches.
    fn silo(&self) -> SiloId;

    /// A short stable backend label (`"memory"`, `"socket"`).
    fn backend_name(&self) -> &'static str;

    /// Ships an encoded request frame. The backend must eventually
    /// resolve `slot` — [`ReplySlot::fill`] with the reply payload,
    /// [`ReplySlot::fail`] with an attributed error, or
    /// [`ReplySlot::mark_dead`] — on every path, including backend death
    /// after a successful send. Returns a token identifying the in-flight
    /// call until [`Transport::retire`] is called for it.
    fn send_frame(
        &self,
        frame: Bytes,
        deadline: Option<Instant>,
        slot: &Arc<ReplySlot>,
    ) -> Result<u64, TransportError>;

    /// Retires an in-flight token (reply drained, or the caller gave up).
    /// Must be idempotent.
    fn retire(&self, token: u64);

    /// Whether the backend can still carry frames (`false` once the
    /// worker thread exited or the peer is unreachable for good).
    fn is_alive(&self) -> bool;

    /// Number of calls currently in flight (diagnostics; tests use this
    /// to pin eager deregistration).
    fn inflight_len(&self) -> usize;

    /// Number of logical requests the silo has served. Live for the
    /// in-memory backend and in-process socket silos (shared counter);
    /// a genuinely remote silo reports the replies this client drained.
    fn served(&self) -> u64;

    /// Injects (or clears) a failure: while set, the silo answers every
    /// request with an error. For a genuinely remote silo this flag is
    /// client-local bookkeeping only (the remote process keeps its own).
    fn set_failed(&self, failed: bool);

    /// Whether the failure flag is set.
    fn is_failed(&self) -> bool;

    /// The silo's metrics registry (shared `Arc` for in-process silos; a
    /// client-local registry of transport metrics for remote ones).
    fn silo_metrics(&self) -> &Arc<fedra_obs::MetricsRegistry>;
}

/// A frame in flight: the request has been handed to the transport
/// backend, the reply has not been drained yet.
///
/// This is the primitive that turns the silo backends into a fan-out
/// pool: the provider `begin`s a frame on every relevant channel *without
/// blocking*, then waits on each pending reply. No provider-side threads
/// are needed for parallel fan-out — the per-silo backends already
/// provide the concurrency.
struct PendingReply {
    silo: SiloId,
    up: usize,
    slot: Arc<ReplySlot>,
    token: u64,
    backend: Arc<dyn Transport>,
    pool: Arc<ReplyPool>,
    stats: Arc<CommCounters>,
    deadline: Option<Instant>,
}

/// How a parked reply wait ended (see [`ReplySlot::wait`]).
enum RecvOutcome {
    /// The reply frame arrived.
    Bytes(Bytes),
    /// The wait's deadline passed with the call still in flight.
    TimedOut,
    /// The backend failed the call with an attributed error.
    Failed(TransportError),
    /// The backend is gone and no reply is queued.
    Dead,
}

impl PendingReply {
    /// The shared wait core every pending type resolves through: waits
    /// (bounded by the deadline captured at send time, unless overridden
    /// via [`PendingReply::with_deadline`]), retires the in-flight token,
    /// records the round's traffic, returns the slot to the pool, and
    /// hands the reply bytes to `decode`.
    ///
    /// On a deadline miss or backend failure the slot is *discarded*
    /// instead of pooled — the backend may still push a stale reply into
    /// it later.
    fn resolve<T>(
        self,
        decode: impl FnOnce(SiloId, Bytes) -> Result<T, TransportError>,
    ) -> Result<T, TransportError> {
        match self.slot.wait(self.deadline) {
            RecvOutcome::Bytes(bytes) => {
                self.backend.retire(self.token);
                self.stats.record(self.up, bytes.len());
                self.pool.restore(self.slot);
                decode(self.silo, bytes)
            }
            RecvOutcome::TimedOut => {
                self.backend.retire(self.token);
                Err(TransportError::DeadlineExceeded { silo: self.silo })
            }
            RecvOutcome::Failed(error) => {
                self.backend.retire(self.token);
                Err(error)
            }
            RecvOutcome::Dead => {
                self.backend.retire(self.token);
                Err(TransportError::Disconnected { silo: self.silo })
            }
        }
    }

    /// The polling twin of [`PendingReply::resolve`]: waits until
    /// `deadline`, but a timeout keeps the call in flight (`Pending`) so
    /// the caller can hedge elsewhere and poll again later.
    fn resolve_poll<T>(
        self,
        deadline: Instant,
        decode: impl FnOnce(SiloId, Bytes) -> Result<T, TransportError>,
    ) -> Poll<PendingReply, Result<T, TransportError>> {
        match self.slot.wait(Some(deadline)) {
            RecvOutcome::Bytes(bytes) => {
                self.backend.retire(self.token);
                self.stats.record(self.up, bytes.len());
                self.pool.restore(self.slot);
                Poll::Ready(decode(self.silo, bytes))
            }
            RecvOutcome::TimedOut => Poll::Pending(self),
            RecvOutcome::Failed(error) => {
                self.backend.retire(self.token);
                Poll::Ready(Err(error))
            }
            RecvOutcome::Dead => {
                self.backend.retire(self.token);
                Poll::Ready(Err(TransportError::Disconnected { silo: self.silo }))
            }
        }
    }

    /// Overrides the deadline captured at send time (the `wait_deadline`
    /// family routes through this).
    fn with_deadline(mut self, deadline: Instant) -> Self {
        self.deadline = Some(deadline);
        self
    }
}

/// An in-flight single-request RPC; resolve it with [`PendingCall::wait`].
pub struct PendingCall {
    inner: PendingReply,
}

/// Decodes a single-call reply frame, mapping refusal payloads to their
/// transport errors so callers can't mistake a refusal for an answer.
fn decode_single(silo: SiloId, bytes: Bytes) -> Result<Response, TransportError> {
    match Response::from_bytes(bytes) {
        Ok(Response::Error(message)) => Err(TransportError::Remote { silo, message }),
        Ok(Response::Transient(message)) => Err(TransportError::Transient { silo, message }),
        Ok(Response::DeadlineExceeded { .. }) => Err(TransportError::DeadlineExceeded { silo }),
        Ok(response) => Ok(response),
        Err(error) => Err(TransportError::Codec { silo, error }),
    }
}

impl PendingCall {
    /// Which silo this call is in flight to.
    pub fn silo(&self) -> SiloId {
        self.inner.silo
    }

    /// Blocks for the response, recording the traffic.
    ///
    /// `Response::Error` payloads are mapped to [`TransportError::Remote`]
    /// (and the transient/deadline refusals to their dedicated variants)
    /// so callers can't mistake a refusal for an answer. When the call was
    /// begun with a deadline, waiting past it yields
    /// [`TransportError::DeadlineExceeded`].
    pub fn wait(self) -> Result<Response, TransportError> {
        self.inner.resolve(decode_single)
    }

    /// Like [`PendingCall::wait`], but bounded by an explicit deadline
    /// (overriding any deadline set at send time).
    pub fn wait_deadline(self, deadline: Instant) -> Result<Response, TransportError> {
        self.inner.with_deadline(deadline).resolve(decode_single)
    }

    /// Waits until `deadline`; a timeout returns the still-pending call
    /// instead of an error, so the caller can hedge elsewhere and poll
    /// this handle again later (first answer wins).
    pub fn poll_deadline(
        self,
        deadline: Instant,
    ) -> Poll<PendingCall, Result<Response, TransportError>> {
        match self.inner.resolve_poll(deadline, decode_single) {
            Poll::Ready(result) => Poll::Ready(result),
            Poll::Pending(inner) => Poll::Pending(PendingCall { inner }),
        }
    }
}

impl std::fmt::Debug for PendingCall {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("PendingCall")
            .field("silo", &self.inner.silo)
            .finish()
    }
}

/// An in-flight batched RPC; resolve it with [`PendingBatch::wait`].
pub struct PendingBatch {
    inner: PendingReply,
    expected: usize,
}

/// Decodes a batch reply frame into per-item results (see
/// [`PendingBatch::wait`] for the contract).
fn decode_batch(
    silo: SiloId,
    expected: usize,
    bytes: Bytes,
) -> Result<Vec<Result<Response, TransportError>>, TransportError> {
    match Response::from_bytes(bytes) {
        Ok(Response::Batch(items)) => {
            if items.len() != expected {
                return Err(TransportError::Codec {
                    silo,
                    error: WireError::BadLength {
                        context: "batch response arity",
                        len: items.len(),
                    },
                });
            }
            Ok(items
                .into_iter()
                .map(|item| match item {
                    Response::Error(message) => Err(TransportError::Remote { silo, message }),
                    Response::Transient(message) => {
                        Err(TransportError::Transient { silo, message })
                    }
                    Response::DeadlineExceeded { .. } => {
                        Err(TransportError::DeadlineExceeded { silo })
                    }
                    other => Ok(other),
                })
                .collect())
        }
        // A whole-frame refusal (e.g. the worker could not decode the
        // request, or the fault injector refused the frame) fails every
        // sub-request the same way, at transport level, so callers see
        // the silo-wide nature of the failure.
        Ok(Response::Error(message)) => Ok(vec![
            Err(TransportError::Remote { silo, message });
            expected
        ]),
        Ok(Response::Transient(message)) => Err(TransportError::Transient { silo, message }),
        Ok(Response::DeadlineExceeded { .. }) => Err(TransportError::DeadlineExceeded { silo }),
        Ok(other) => Err(TransportError::Remote {
            silo,
            message: format!("expected batch response, got {other:?}"),
        }),
        Err(error) => Err(TransportError::Codec { silo, error }),
    }
}

impl PendingBatch {
    /// Which silo this batch is in flight to.
    pub fn silo(&self) -> SiloId {
        self.inner.silo
    }

    /// How many sub-responses this batch expects.
    pub fn expected(&self) -> usize {
        self.expected
    }

    /// Blocks for the batch response, recording the traffic.
    ///
    /// The outer `Result` is transport-level (worker gone, undecodable
    /// frame, wrong arity, whole-frame transient refusal or deadline
    /// shed); the inner `Vec` carries one entry per sub-request *in
    /// request order*, each individually an error if the silo refused
    /// that item. One bad item never poisons its batch-mates. When the
    /// batch was begun with a deadline, waiting past it yields
    /// [`TransportError::DeadlineExceeded`].
    pub fn wait(self) -> Result<Vec<Result<Response, TransportError>>, TransportError> {
        let expected = self.expected;
        self.inner
            .resolve(move |silo, bytes| decode_batch(silo, expected, bytes))
    }

    /// Like [`PendingBatch::wait`], but bounded by an explicit deadline
    /// (overriding any deadline set at send time).
    pub fn wait_deadline(
        self,
        deadline: Instant,
    ) -> Result<Vec<Result<Response, TransportError>>, TransportError> {
        let expected = self.expected;
        self.inner
            .with_deadline(deadline)
            .resolve(move |silo, bytes| decode_batch(silo, expected, bytes))
    }

    /// Waits until `deadline`; a timeout returns the still-pending batch
    /// instead of an error, so the scatter-gather engine can hedge the
    /// riders elsewhere while keeping this frame alive (first answer
    /// wins).
    #[allow(clippy::type_complexity)]
    pub fn poll_deadline(
        self,
        deadline: Instant,
    ) -> Poll<PendingBatch, Result<Vec<Result<Response, TransportError>>, TransportError>> {
        let expected = self.expected;
        match self.inner.resolve_poll(deadline, move |silo, bytes| {
            decode_batch(silo, expected, bytes)
        }) {
            Poll::Ready(result) => Poll::Ready(result),
            Poll::Pending(inner) => Poll::Pending(PendingBatch { inner, expected }),
        }
    }
}

impl std::fmt::Debug for PendingBatch {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("PendingBatch")
            .field("silo", &self.inner.silo)
            .field("expected", &self.expected)
            .finish()
    }
}

/// An in-flight multiplexed batch whose sub-requests came from *different*
/// callers: each rides with a caller-chosen correlation id, and the reply
/// items come back paired with those ids.
///
/// The ids never travel. The batch protocol already guarantees reply order
/// equals request order, so the wire frame is byte-identical to the one
/// [`SiloChannel::begin_batch_with`] ships; the correlation ids are
/// provider-side bookkeeping zipped back onto the positional replies. This
/// is what lets a scheduler coalesce outstanding requests from unrelated
/// queries into one frame per silo per tick and still route every reply to
/// the query that asked.
pub struct PendingTaggedBatch {
    inner: PendingBatch,
    tags: Vec<u64>,
}

/// Pairs each correlation id with its positional reply item.
fn zip_tags(
    tags: Vec<u64>,
    items: Vec<Result<Response, TransportError>>,
) -> Vec<(u64, Result<Response, TransportError>)> {
    // `decode_batch` already enforced arity == expected == tags.len().
    tags.into_iter().zip(items).collect()
}

impl PendingTaggedBatch {
    /// Which silo this batch is in flight to.
    pub fn silo(&self) -> SiloId {
        self.inner.silo()
    }

    /// How many sub-responses this batch expects.
    pub fn expected(&self) -> usize {
        self.inner.expected()
    }

    /// The correlation ids riding this frame, in request order.
    pub fn tags(&self) -> &[u64] {
        &self.tags
    }

    /// Blocks for the batch response and pairs every item with the
    /// correlation id its request carried. Error contract as in
    /// [`PendingBatch::wait`]: the outer `Result` is frame-level (worker
    /// gone, whole-frame refusal or deadline shed — every rider failed the
    /// same way), the inner entries are per-rider.
    #[allow(clippy::type_complexity)]
    pub fn wait(self) -> Result<Vec<(u64, Result<Response, TransportError>)>, TransportError> {
        let items = self.inner.wait()?;
        Ok(zip_tags(self.tags, items))
    }

    /// Like [`PendingTaggedBatch::wait`], but bounded by an explicit
    /// deadline (overriding any deadline set at send time).
    #[allow(clippy::type_complexity)]
    pub fn wait_deadline(
        self,
        deadline: Instant,
    ) -> Result<Vec<(u64, Result<Response, TransportError>)>, TransportError> {
        let items = self.inner.wait_deadline(deadline)?;
        Ok(zip_tags(self.tags, items))
    }

    /// Waits until `deadline`; a timeout returns the still-pending batch
    /// instead of an error so the caller can keep the frame alive across
    /// scheduling ticks.
    #[allow(clippy::type_complexity)]
    pub fn poll_deadline(
        self,
        deadline: Instant,
    ) -> Poll<
        PendingTaggedBatch,
        Result<Vec<(u64, Result<Response, TransportError>)>, TransportError>,
    > {
        match self.inner.poll_deadline(deadline) {
            Poll::Ready(Ok(items)) => Poll::Ready(Ok(zip_tags(self.tags, items))),
            Poll::Ready(Err(e)) => Poll::Ready(Err(e)),
            Poll::Pending(inner) => Poll::Pending(PendingTaggedBatch {
                inner,
                tags: self.tags,
            }),
        }
    }
}

impl std::fmt::Debug for PendingTaggedBatch {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("PendingTaggedBatch")
            .field("silo", &self.inner.silo())
            .field("tags", &self.tags)
            .finish()
    }
}

/// The in-memory [`Transport`] backend: frames travel to a per-silo OS
/// worker thread over a crossbeam channel ([`spawn_silo`]). This is the
/// deterministic tier-1 default.
pub struct InMemoryTransport {
    silo: SiloId,
    tx: Sender<Envelope>,
    registry: Arc<InflightRegistry>,
    served: Arc<AtomicU64>,
    failed: Arc<std::sync::atomic::AtomicBool>,
    silo_metrics: Arc<fedra_obs::MetricsRegistry>,
    worker_alive: Arc<AtomicBool>,
}

impl Transport for InMemoryTransport {
    fn silo(&self) -> SiloId {
        self.silo
    }

    fn backend_name(&self) -> &'static str {
        "memory"
    }

    fn send_frame(
        &self,
        frame: Bytes,
        deadline: Option<Instant>,
        slot: &Arc<ReplySlot>,
    ) -> Result<u64, TransportError> {
        // Register *before* the send: the worker's exit sweep can only
        // wake slots it can see, and a successful send proves the worker
        // had not yet dropped its receiver — so a post-send exit is
        // guaranteed to sweep this entry.
        let token = self.registry.register(slot);
        if self
            .tx
            .send(Envelope {
                request: frame,
                reply: Arc::clone(slot),
                deadline,
            })
            .is_err()
        {
            self.registry.deregister(token);
            return Err(TransportError::Disconnected { silo: self.silo });
        }
        if !self.worker_alive.load(Ordering::Acquire) {
            // Belt and braces against an exit racing the send: a no-op if
            // the worker served the frame first (the slot is already
            // full), otherwise it wakes the waiter with `Dead`.
            slot.mark_dead();
        }
        Ok(token)
    }

    fn retire(&self, token: u64) {
        self.registry.deregister(token);
    }

    fn is_alive(&self) -> bool {
        self.worker_alive.load(Ordering::Acquire)
    }

    fn inflight_len(&self) -> usize {
        self.registry.inflight.lock().slots.len()
    }

    fn served(&self) -> u64 {
        self.served.load(Ordering::Relaxed)
    }

    fn set_failed(&self, failed: bool) {
        self.failed.store(failed, Ordering::Release);
    }

    fn is_failed(&self) -> bool {
        self.failed.load(Ordering::Acquire)
    }

    fn silo_metrics(&self) -> &Arc<fedra_obs::MetricsRegistry> {
        &self.silo_metrics
    }
}

/// The provider's handle to one silo: a thin, clonable wrapper over a
/// [`Transport`] backend plus the provider-side machinery every backend
/// shares — the [`CommCounters`] the channel records into and the pooled
/// reply slots the send/wait split parks on.
#[derive(Clone)]
pub struct SiloChannel {
    backend: Arc<dyn Transport>,
    stats: Arc<CommCounters>,
    reply_pool: Arc<ReplyPool>,
}

impl SiloChannel {
    /// Wraps a transport backend into a channel recording traffic into
    /// `stats`.
    pub fn over(backend: Arc<dyn Transport>, stats: Arc<CommCounters>) -> SiloChannel {
        SiloChannel {
            backend,
            stats,
            reply_pool: Arc::new(ReplyPool::default()),
        }
    }

    /// Which silo this channel reaches.
    pub fn id(&self) -> SiloId {
        self.backend.silo()
    }

    /// The transport backend this channel rides on.
    pub fn backend(&self) -> &Arc<dyn Transport> {
        &self.backend
    }

    /// Ships an already-encoded frame to the backend and returns the
    /// in-flight reply handle. The deadline rides as frame metadata
    /// (the silo sheds expired requests) and bounds the caller's wait.
    fn send_frame(
        &self,
        frame: Bytes,
        deadline: Option<Instant>,
    ) -> Result<PendingReply, TransportError> {
        let up = frame.len();
        let slot = self.reply_pool.checkout();
        let token = match self.backend.send_frame(frame, deadline, &slot) {
            Ok(token) => token,
            Err(e) => {
                self.reply_pool.restore(slot);
                return Err(e);
            }
        };
        Ok(PendingReply {
            silo: self.backend.silo(),
            up,
            slot,
            token,
            backend: Arc::clone(&self.backend),
            pool: Arc::clone(&self.reply_pool),
            stats: Arc::clone(&self.stats),
            deadline,
        })
    }

    /// Starts a request without blocking for the reply.
    ///
    /// Begin on several channels, then [`PendingCall::wait`] on each: the
    /// silo workers execute concurrently, giving fan-out parallelism with
    /// zero provider-side threads.
    pub fn begin_call(&self, request: &Request) -> Result<PendingCall, TransportError> {
        self.begin_call_encoded(request.to_bytes())
    }

    /// Starts a request with a deadline: the worker sheds it if expired
    /// on arrival, and [`PendingCall::wait`] gives up at the deadline.
    pub fn begin_call_with(
        &self,
        request: &Request,
        deadline: Option<Instant>,
    ) -> Result<PendingCall, TransportError> {
        Ok(PendingCall {
            inner: self.send_frame(request.to_bytes(), deadline)?,
        })
    }

    /// Starts a request from a pre-encoded frame (O(1) to clone — use for
    /// broadcasting one frame to many silos without re-encoding).
    pub fn begin_call_encoded(&self, frame: Bytes) -> Result<PendingCall, TransportError> {
        Ok(PendingCall {
            inner: self.send_frame(frame, None)?,
        })
    }

    /// Starts a batch of requests as one coalesced wire frame, without
    /// blocking for the reply.
    ///
    /// The whole batch pays the per-message envelope overhead *once* per
    /// direction, instead of once per request.
    pub fn begin_batch(&self, requests: &[&Request]) -> Result<PendingBatch, TransportError> {
        self.begin_batch_with(requests, None)
    }

    /// Starts a batch with a deadline: the worker sheds the whole frame
    /// if expired on arrival, and [`PendingBatch::wait`] gives up at the
    /// deadline.
    pub fn begin_batch_with(
        &self,
        requests: &[&Request],
        deadline: Option<Instant>,
    ) -> Result<PendingBatch, TransportError> {
        Ok(PendingBatch {
            inner: self.send_frame(encode_batch_request(requests), deadline)?,
            expected: requests.len(),
        })
    }

    /// Starts a cross-caller batch: each request rides with a caller
    /// correlation id that is paired back onto its reply by
    /// [`PendingTaggedBatch::wait`]. The wire frame is byte-identical to
    /// [`SiloChannel::begin_batch_with`] on the same requests — the ids
    /// are provider-side only.
    pub fn begin_tagged_batch_with(
        &self,
        requests: &[(u64, &Request)],
        deadline: Option<Instant>,
    ) -> Result<PendingTaggedBatch, TransportError> {
        let refs: Vec<&Request> = requests.iter().map(|(_, r)| *r).collect();
        Ok(PendingTaggedBatch {
            inner: self.begin_batch_with(&refs, deadline)?,
            tags: requests.iter().map(|(tag, _)| *tag).collect(),
        })
    }

    /// Sends a request and waits for the response, recording the traffic.
    ///
    /// `Response::Error` payloads are mapped to
    /// [`TransportError::Remote`] so callers can't mistake a refusal for an
    /// answer.
    pub fn call(&self, request: &Request) -> Result<Response, TransportError> {
        self.begin_call(request)?.wait()
    }

    /// Sends `requests` as one coalesced frame and waits for the per-item
    /// results, in request order.
    ///
    /// An empty slice is answered locally with no traffic. See
    /// [`PendingBatch::wait`] for the error contract.
    pub fn call_batch(
        &self,
        requests: &[Request],
    ) -> Result<Vec<Result<Response, TransportError>>, TransportError> {
        if requests.is_empty() {
            return Ok(Vec::new());
        }
        let refs: Vec<&Request> = requests.iter().collect();
        self.begin_batch(&refs)?.wait()
    }

    /// The one way to re-point a channel's byte accounting: returns a
    /// copy of this channel (same backend, same reply-slot pool) that
    /// records traffic into a different counter set. The federation uses
    /// this to swap setup counters for query counters once Alg. 1
    /// finishes, so experiments can report per-query communication cost
    /// net of index construction.
    pub fn with_comm(&self, comm: Arc<CommCounters>) -> SiloChannel {
        SiloChannel {
            backend: Arc::clone(&self.backend),
            stats: comm,
            reply_pool: Arc::clone(&self.reply_pool),
        }
    }

    /// The silo's own metrics registry (request counts by kind, batch
    /// sizes, LSR level picks). Shared by `Arc` for in-process silos —
    /// diagnostics cross the thread boundary without touching the
    /// byte-counted wire path. See [`Transport::silo_metrics`].
    pub fn silo_metrics(&self) -> &Arc<fedra_obs::MetricsRegistry> {
        self.backend.silo_metrics()
    }

    /// Number of logical requests the silo has served so far
    /// ([`Transport::served`]).
    pub fn served(&self) -> u64 {
        self.backend.served()
    }

    /// Injects (or clears) a failure: while set, the silo answers every
    /// request with an error ([`Transport::set_failed`]).
    pub fn set_failed(&self, failed: bool) {
        self.backend.set_failed(failed);
    }

    /// Whether the failure flag is set.
    pub fn is_failed(&self) -> bool {
        self.backend.is_failed()
    }
}

impl std::fmt::Debug for SiloChannel {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SiloChannel")
            .field("id", &self.id())
            .field("backend", &self.backend.backend_name())
            .finish()
    }
}

/// Spawns the silo worker thread and returns the provider-side channel
/// plus the join handle (owned by the federation for shutdown).
///
/// Fails with [`TransportError::Spawn`] when the OS refuses the thread
/// (resource exhaustion) — the federation maps that to a setup error
/// instead of tearing the provider down.
pub fn spawn_silo(
    silo: Silo,
    stats: Arc<CommCounters>,
    simulated_latency: Option<Duration>,
    mut faults: Option<SiloFaultInjector>,
) -> Result<(SiloChannel, JoinHandle<()>), TransportError> {
    let (tx, rx) = unbounded::<Envelope>();
    let id = silo.id();
    let served = silo.served_counter();
    let failed = silo.failure_flag();
    let silo_metrics = silo.metrics();
    let worker_alive = Arc::new(AtomicBool::new(true));
    let registry = Arc::new(InflightRegistry::default());
    let alive_guard = AliveGuard {
        alive: Arc::clone(&worker_alive),
        registry: Arc::clone(&registry),
    };
    let handle = std::thread::Builder::new()
        .name(format!("fedra-silo-{id}"))
        .spawn(move || {
            // Runs on every exit path — normal shutdown, injected crash,
            // panic — clearing the liveness flag and waking callers
            // parked on a reply. Declared before the loop so the loop's
            // iterator (owning the receiver) drops *first*: once the
            // guard's sweep runs, no new envelope can have been accepted.
            let _alive = alive_guard;
            for envelope in rx {
                if let Some(latency) = simulated_latency {
                    std::thread::sleep(latency);
                }
                match faults.as_mut().map(SiloFaultInjector::next_action) {
                    Some(FaultAction::Crash) => return,
                    Some(FaultAction::Drop) => continue,
                    Some(FaultAction::Transient { message, delay }) => {
                        if let Some(delay) = delay {
                            std::thread::sleep(delay);
                        }
                        envelope.reply.fill(Response::Transient(message).to_bytes());
                        continue;
                    }
                    Some(FaultAction::Proceed { delay }) => {
                        if let Some(delay) = delay {
                            std::thread::sleep(delay);
                        }
                    }
                    None => {}
                }
                // Shed work whose caller has already given up: the reply
                // still travels (and is byte-counted), the local query
                // work is skipped.
                if let Some(deadline) = envelope.deadline {
                    let now = Instant::now();
                    if now >= deadline {
                        let late_by_us = (now - deadline).as_micros().min(u64::MAX as u128) as u64;
                        envelope
                            .reply
                            .fill(Response::DeadlineExceeded { late_by_us }.to_bytes());
                        continue;
                    }
                }
                let response = match Request::from_bytes(envelope.request) {
                    Ok(request) => silo.handle(request),
                    Err(e) => Response::Error(format!("undecodable request: {e}")),
                };
                // A caller that gave up simply never drains the slot.
                envelope.reply.fill(response.to_bytes());
            }
        })
        .map_err(|e| TransportError::Spawn {
            silo: id,
            reason: e.to_string(),
        })?;
    let backend = InMemoryTransport {
        silo: id,
        tx,
        registry,
        served,
        failed,
        silo_metrics,
        worker_alive,
    };
    Ok((SiloChannel::over(Arc::new(backend), stats), handle))
}

/// Which [`Transport`] backend a federation stands its local silos up
/// behind (see `FederationBuilder::transport_backend`).
///
/// The default is [`TransportBackend::InMemory`] — the deterministic
/// tier-1 path. [`TransportBackend::Socket`] serves every local silo
/// over a real loopback TCP socket ([`socket::spawn_silo_socket`]):
/// answers and byte counts stay identical, only timing becomes
/// OS-scheduled. The `FEDRA_TRANSPORT` environment variable (`memory` |
/// `socket`) selects a backend when the builder was not told explicitly,
/// which is how the test suites re-run against sockets unchanged.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum TransportBackend {
    /// Crossbeam channel to a worker thread in this process (default).
    #[default]
    InMemory,
    /// Loopback TCP socket to a server thread in this process.
    Socket,
}

impl TransportBackend {
    /// Reads `FEDRA_TRANSPORT` (unset or unrecognised ⇒ in-memory).
    pub fn from_env() -> TransportBackend {
        match std::env::var("FEDRA_TRANSPORT") {
            Ok(v) if v.eq_ignore_ascii_case("socket") => TransportBackend::Socket,
            _ => TransportBackend::InMemory,
        }
    }
}

/// Guard owned by the silo worker thread whose `Drop` marks the worker as
/// gone and wakes every parked caller, no matter how the thread exits:
/// it clears the liveness flag, then sweeps the in-flight slot registry
/// so waiters see `Dead` instead of sleeping forever.
struct AliveGuard {
    alive: Arc<AtomicBool>,
    registry: Arc<InflightRegistry>,
}

impl Drop for AliveGuard {
    fn drop(&mut self) {
        self.alive.store(false, Ordering::Release);
        self.registry.sweep_dead();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::protocol::LocalMode;
    use crate::silo::SiloConfig;
    use fedra_geo::{Point, Range, Rect, SpatialObject};
    use fedra_index::histogram::MinSkewConfig;
    use fedra_index::rtree::RTreeConfig;

    fn test_silo(id: SiloId, n: usize) -> Silo {
        let bounds = Rect::new(Point::new(0.0, 0.0), Point::new(10.0, 10.0));
        let objects: Vec<SpatialObject> = (0..n)
            .map(|i| SpatialObject::at((i % 10) as f64 + 0.5, (i / 10 % 10) as f64 + 0.5, 1.0))
            .collect();
        Silo::new(
            id,
            objects,
            SiloConfig {
                rtree: RTreeConfig::default(),
                histogram: MinSkewConfig {
                    resolution: 8,
                    budget: 8,
                },
                bounds,
                threads: 0,
                lsr_seed: 1,
            },
        )
    }

    #[test]
    fn call_round_trips_through_the_thread() {
        let stats = Arc::new(CommCounters::default());
        let (chan, handle) =
            spawn_silo(test_silo(0, 100), Arc::clone(&stats), None, None).expect("spawn silo");
        let resp = chan.call(&Request::Ping).expect("ping");
        assert_eq!(resp, Response::Pong);
        let snap = stats.snapshot();
        assert_eq!(snap.rounds, 1);
        assert!(snap.bytes_up >= 1);
        assert!(snap.bytes_down >= 1);
        drop(chan);
        handle.join().expect("worker exits cleanly");
    }

    #[test]
    fn traffic_is_counted_per_round() {
        // Zero-overhead stats so payload sizes can be pinned exactly.
        let stats = Arc::new(CommCounters::with_overhead(0));
        let (chan, _handle) =
            spawn_silo(test_silo(1, 100), Arc::clone(&stats), None, None).expect("spawn silo");
        let q = Range::circle(Point::new(5.0, 5.0), 2.0);
        let before = stats.snapshot();
        chan.call(&Request::Aggregate {
            range: q,
            mode: LocalMode::Exact,
        })
        .expect("aggregate");
        let delta = stats.snapshot().since(&before);
        assert_eq!(delta.rounds, 1);
        // Request: tag + range(25) + mode(1) = 27; response: tag + agg(24) = 25.
        assert_eq!(delta.bytes_up, 27);
        assert_eq!(delta.bytes_down, 25);
    }

    #[test]
    fn default_overhead_is_charged_per_message() {
        let stats = Arc::new(CommCounters::default());
        assert_eq!(stats.overhead(), DEFAULT_MESSAGE_OVERHEAD);
        let (chan, _handle) =
            spawn_silo(test_silo(7, 10), Arc::clone(&stats), None, None).expect("spawn silo");
        chan.call(&Request::Ping).unwrap();
        let snap = stats.snapshot();
        assert!(snap.bytes_up > DEFAULT_MESSAGE_OVERHEAD);
        assert!(snap.bytes_down > DEFAULT_MESSAGE_OVERHEAD);
    }

    #[test]
    fn remote_errors_are_surfaced() {
        let stats = Arc::new(CommCounters::default());
        let (chan, _handle) =
            spawn_silo(test_silo(2, 10), Arc::clone(&stats), None, None).expect("spawn silo");
        chan.set_failed(true);
        let err = chan.call(&Request::Ping).expect_err("should fail");
        assert!(matches!(err, TransportError::Remote { silo: 2, .. }));
        assert!(chan.is_failed());
        chan.set_failed(false);
        assert!(chan.call(&Request::Ping).is_ok());
    }

    #[test]
    fn served_counter_tracks_requests() {
        let stats = Arc::new(CommCounters::default());
        let (chan, _handle) =
            spawn_silo(test_silo(3, 10), Arc::clone(&stats), None, None).expect("spawn silo");
        assert_eq!(chan.served(), 0);
        for _ in 0..5 {
            chan.call(&Request::Ping).unwrap();
        }
        assert_eq!(chan.served(), 5);
    }

    #[test]
    fn concurrent_calls_from_many_threads() {
        let stats = Arc::new(CommCounters::default());
        let (chan, _handle) =
            spawn_silo(test_silo(4, 200), Arc::clone(&stats), None, None).expect("spawn silo");
        let q = Range::circle(Point::new(5.0, 5.0), 3.0);
        std::thread::scope(|scope| {
            for _ in 0..8 {
                let chan = chan.clone();
                scope.spawn(move || {
                    for _ in 0..20 {
                        let r = chan
                            .call(&Request::Aggregate {
                                range: q,
                                mode: LocalMode::Exact,
                            })
                            .expect("aggregate");
                        assert!(matches!(r, Response::Agg(_)));
                    }
                });
            }
        });
        assert_eq!(stats.snapshot().rounds, 160);
    }

    #[test]
    fn call_batch_preserves_request_order() {
        let stats = Arc::new(CommCounters::default());
        let (chan, _handle) =
            spawn_silo(test_silo(8, 100), Arc::clone(&stats), None, None).expect("spawn silo");
        let q = Range::circle(Point::new(5.0, 5.0), 2.0);
        let exact = chan
            .call(&Request::Aggregate {
                range: q,
                mode: LocalMode::Exact,
            })
            .unwrap();
        let before = stats.snapshot();
        let results = chan
            .call_batch(&[
                Request::Ping,
                Request::Aggregate {
                    range: q,
                    mode: LocalMode::Exact,
                },
                Request::MemoryReport,
            ])
            .expect("batch transport");
        assert_eq!(results.len(), 3);
        assert_eq!(results[0], Ok(Response::Pong));
        assert_eq!(results[1].as_ref().unwrap(), &exact);
        assert!(matches!(results[2], Ok(Response::Memory(_))));
        // The whole batch is one round.
        assert_eq!(stats.snapshot().since(&before).rounds, 1);
    }

    #[test]
    fn tagged_batch_pairs_replies_with_correlation_ids() {
        let stats = Arc::new(CommCounters::with_overhead(0));
        let (chan, _handle) =
            spawn_silo(test_silo(11, 100), Arc::clone(&stats), None, None).expect("spawn silo");
        let q = Range::circle(Point::new(5.0, 5.0), 2.0);
        let agg = Request::Aggregate {
            range: q,
            mode: LocalMode::Exact,
        };
        // The plain batch pins the wire cost the tagged variant must match.
        let before = stats.snapshot();
        chan.call_batch(&[Request::Ping, agg.clone(), Request::MemoryReport])
            .expect("plain batch");
        let plain = stats.snapshot().since(&before);

        let before = stats.snapshot();
        let results = chan
            .begin_tagged_batch_with(
                &[
                    (907, &Request::Ping),
                    (11, &agg),
                    (42, &Request::MemoryReport),
                ],
                None,
            )
            .expect("begin tagged batch")
            .wait()
            .expect("tagged batch transport");
        let tagged = stats.snapshot().since(&before);
        // Correlation ids are provider-side bookkeeping: same bytes, one round.
        assert_eq!(tagged, plain);
        assert_eq!(results.len(), 3);
        assert_eq!(results[0].0, 907);
        assert_eq!(results[0].1, Ok(Response::Pong));
        assert_eq!(results[1].0, 11);
        assert!(matches!(results[1].1, Ok(Response::Agg(_))));
        assert_eq!(results[2].0, 42);
        assert!(matches!(results[2].1, Ok(Response::Memory(_))));
    }

    #[test]
    fn tagged_batch_deadline_shed_fails_the_whole_frame() {
        let stats = Arc::new(CommCounters::default());
        let (chan, _handle) =
            spawn_silo(test_silo(12, 10), Arc::clone(&stats), None, None).expect("spawn silo");
        // A frame expired before dispatch: the worker sheds it whole, and
        // the refusal still costs a byte-counted round. Waiting with a
        // generous *receive* deadline (while the envelope deadline is
        // already past) is what lets the shed response actually arrive.
        let expired = Instant::now() - Duration::from_millis(5);
        let err = chan
            .begin_tagged_batch_with(&[(1, &Request::Ping), (2, &Request::Ping)], Some(expired))
            .expect("send succeeds; the shed happens silo-side")
            .wait_deadline(Instant::now() + Duration::from_secs(5))
            .expect_err("expired frame is shed");
        assert!(matches!(err, TransportError::DeadlineExceeded { silo: 12 }));
        assert_eq!(stats.snapshot().rounds, 1);
    }

    #[test]
    fn call_batch_surfaces_per_item_errors() {
        let stats = Arc::new(CommCounters::default());
        let (chan, _handle) =
            spawn_silo(test_silo(9, 10), Arc::clone(&stats), None, None).expect("spawn silo");
        chan.set_failed(true);
        let results = chan
            .call_batch(&[Request::Ping, Request::Ping, Request::Ping])
            .expect("transport still works; the refusals are per item");
        assert_eq!(results.len(), 3);
        for r in results {
            assert!(matches!(r, Err(TransportError::Remote { silo: 9, .. })));
        }
        // Failure injection costs one round, not three.
        assert_eq!(stats.snapshot().rounds, 1);
    }

    #[test]
    fn empty_batch_sends_no_traffic() {
        let stats = Arc::new(CommCounters::default());
        let (chan, _handle) =
            spawn_silo(test_silo(10, 10), Arc::clone(&stats), None, None).expect("spawn silo");
        assert_eq!(chan.call_batch(&[]).unwrap(), Vec::new());
        assert_eq!(stats.snapshot(), CommSnapshot::default());
    }

    #[test]
    fn batch_amortizes_the_envelope_overhead() {
        // Zero-overhead stats pin the payload arithmetic; the saving shows
        // in rounds (each round costs 2 × overhead under default stats).
        let stats = Arc::new(CommCounters::with_overhead(0));
        let (chan, _handle) =
            spawn_silo(test_silo(11, 100), Arc::clone(&stats), None, None).expect("spawn silo");
        let q = Range::circle(Point::new(5.0, 5.0), 2.0);
        let agg = Request::Aggregate {
            range: q,
            mode: LocalMode::Exact,
        };
        let before = stats.snapshot();
        chan.call_batch(&[agg.clone(), agg.clone()]).unwrap();
        let batched = stats.snapshot().since(&before);
        let before = stats.snapshot();
        chan.call(&agg).unwrap();
        chan.call(&agg).unwrap();
        let singleton = stats.snapshot().since(&before);
        // Payloads: singleton 2 × (27 up, 25 down); batch adds a 5-byte
        // frame header each way (tag + count) on top of the same items.
        assert_eq!(singleton.bytes_up, 54);
        assert_eq!(singleton.bytes_down, 50);
        assert_eq!(batched.bytes_up, 59);
        assert_eq!(batched.bytes_down, 55);
        assert_eq!(singleton.rounds, 2);
        assert_eq!(batched.rounds, 1);
    }

    #[test]
    fn reply_slots_are_pooled_and_reused() {
        let stats = Arc::new(CommCounters::default());
        let (chan, _handle) =
            spawn_silo(test_silo(12, 10), Arc::clone(&stats), None, None).expect("spawn silo");
        for _ in 0..10 {
            chan.call(&Request::Ping).unwrap();
        }
        // Sequential calls recycle a single slot.
        assert_eq!(chan.reply_pool.slots.lock().len(), 1);
        // Resolved calls deregister eagerly, so the in-flight registry
        // holds nothing between calls.
        assert_eq!(chan.backend().inflight_len(), 0);
        // An abandoned pending call discards its slot instead of
        // returning a (possibly stale) one to the pool.
        let pending = chan.begin_call(&Request::Ping).unwrap();
        drop(pending);
        assert!(chan.reply_pool.slots.lock().is_empty());
        // The channel still works after the discard.
        assert_eq!(chan.call(&Request::Ping).unwrap(), Response::Pong);
    }

    #[test]
    fn begin_then_wait_overlaps_silo_work() {
        // With 20ms of injected latency per frame, four pipelined frames
        // on four silos must finish in ~1 latency, not 4.
        let stats = Arc::new(CommCounters::default());
        let latency = Duration::from_millis(20);
        let channels: Vec<SiloChannel> = (0..4)
            .map(|i| {
                spawn_silo(test_silo(i, 10), Arc::clone(&stats), Some(latency), None)
                    .expect("spawn silo")
                    .0
            })
            .collect();
        let start = std::time::Instant::now();
        let pending: Vec<PendingCall> = channels
            .iter()
            .map(|c| c.begin_call(&Request::Ping).unwrap())
            .collect();
        for p in pending {
            assert_eq!(p.wait().unwrap(), Response::Pong);
        }
        let elapsed = start.elapsed();
        assert!(
            elapsed < latency * 3,
            "fan-out not overlapped: {elapsed:?} for 4 × {latency:?} silos"
        );
    }

    #[test]
    fn disconnected_worker_reports_cleanly() {
        let stats = Arc::new(CommCounters::default());
        let (chan, handle) =
            spawn_silo(test_silo(5, 10), Arc::clone(&stats), None, None).expect("spawn silo");
        // Simulate a dead worker: clone the channel, drop the original
        // sender... the worker only exits when *all* senders drop, so
        // instead kill it by dropping every channel and joining.
        let chan2 = chan.clone();
        drop(chan);
        drop(chan2);
        handle.join().expect("worker exits");
    }

    #[test]
    fn simulated_latency_is_applied() {
        let stats = Arc::new(CommCounters::default());
        let (chan, _handle) = spawn_silo(
            test_silo(6, 10),
            Arc::clone(&stats),
            Some(Duration::from_millis(20)),
            None,
        )
        .expect("spawn silo");
        let start = std::time::Instant::now();
        chan.call(&Request::Ping).unwrap();
        assert!(start.elapsed() >= Duration::from_millis(20));
    }

    fn slow_injector(silo: SiloId, latency: Duration) -> Option<SiloFaultInjector> {
        use std::sync::atomic::AtomicBool;
        crate::fault::FaultPlan::seeded(1)
            .slow_silo(silo, latency)
            .injector_for(silo, Arc::new(AtomicBool::new(true)))
    }

    #[test]
    fn wait_deadline_times_out_and_discards_the_pair() {
        let stats = Arc::new(CommCounters::default());
        let (chan, _handle) = spawn_silo(
            test_silo(20, 10),
            Arc::clone(&stats),
            None,
            slow_injector(20, Duration::from_millis(100)),
        )
        .expect("spawn silo");
        let pending = chan.begin_call(&Request::Ping).unwrap();
        let err = pending
            .wait_deadline(Instant::now() + Duration::from_millis(5))
            .expect_err("must time out");
        assert_eq!(err, TransportError::DeadlineExceeded { silo: 20 });
        assert!(err.is_deadline());
        assert!(!err.is_retryable());
        // The abandoned slot must not be pooled (its stale reply is still
        // coming).
        assert!(chan.reply_pool.slots.lock().is_empty());
        // And a timed-out round records no traffic.
        assert_eq!(stats.snapshot().rounds, 0);
        // The channel still works once the slow reply has drained.
        assert_eq!(chan.call(&Request::Ping).unwrap(), Response::Pong);
    }

    #[test]
    fn expired_deadline_is_shed_by_the_worker() {
        let stats = Arc::new(CommCounters::default());
        let (chan, _handle) = spawn_silo(
            test_silo(21, 10),
            Arc::clone(&stats),
            Some(Duration::from_millis(20)),
            None,
        )
        .expect("spawn silo");
        // The deadline expires while the latency sleep runs, so the
        // worker sheds the request; the shed reply still counts a round.
        let pending = chan
            .begin_call_with(
                &Request::Ping,
                Some(Instant::now() + Duration::from_millis(1)),
            )
            .unwrap();
        // Wait without a deadline override: the shed response itself
        // reports the miss.
        let err = pending
            .wait_deadline(Instant::now() + Duration::from_secs(5))
            .expect_err("shed");
        assert_eq!(err, TransportError::DeadlineExceeded { silo: 21 });
        assert_eq!(stats.snapshot().rounds, 1);
    }

    #[test]
    fn transient_faults_map_to_their_own_variant() {
        use std::sync::atomic::AtomicBool;
        let stats = Arc::new(CommCounters::default());
        let injector = crate::fault::FaultPlan::seeded(3)
            .flapping_silo(22, 2, 1)
            .injector_for(22, Arc::new(AtomicBool::new(true)));
        let (chan, _handle) =
            spawn_silo(test_silo(22, 10), Arc::clone(&stats), None, injector).expect("spawn silo");
        // period 2, down 1: request 0 serves, request 1 refuses.
        assert_eq!(chan.call(&Request::Ping).unwrap(), Response::Pong);
        let err = chan.call(&Request::Ping).expect_err("flap window");
        assert!(matches!(err, TransportError::Transient { silo: 22, .. }));
        assert!(err.is_retryable());
        // Request 2 lands in the next up window…
        assert_eq!(chan.call(&Request::Ping).unwrap(), Response::Pong);
        // …and a batch frame in the following down window fails at
        // transport level.
        let err = chan
            .call_batch(&[Request::Ping, Request::Ping])
            .expect_err("whole-frame transient");
        assert!(matches!(err, TransportError::Transient { silo: 22, .. }));
    }

    #[test]
    fn crash_after_n_disconnects_later_calls() {
        use std::sync::atomic::AtomicBool;
        let stats = Arc::new(CommCounters::default());
        let injector = crate::fault::FaultPlan::seeded(3)
            .with_spec(
                23,
                crate::fault::SiloFaultSpec {
                    crash_after: Some(2),
                    ..Default::default()
                },
            )
            .injector_for(23, Arc::new(AtomicBool::new(true)));
        let (chan, handle) =
            spawn_silo(test_silo(23, 10), Arc::clone(&stats), None, injector).expect("spawn silo");
        assert!(chan.call(&Request::Ping).is_ok());
        assert!(chan.call(&Request::Ping).is_ok());
        let err = chan.call(&Request::Ping).expect_err("crashed");
        assert_eq!(err, TransportError::Disconnected { silo: 23 });
        assert_eq!(err.kind(), "disconnected");
        handle.join().expect("worker exited by crashing");
    }

    #[test]
    fn parked_wait_is_woken_by_worker_death() {
        use std::sync::atomic::AtomicBool;
        // A wait with *no* deadline parks until the worker exits; the
        // exit sweep must wake it promptly with `Disconnected` rather
        // than leaving it asleep forever.
        let stats = Arc::new(CommCounters::default());
        let injector = crate::fault::FaultPlan::seeded(3)
            .with_spec(
                28,
                crate::fault::SiloFaultSpec {
                    crash_after: Some(0),
                    ..Default::default()
                },
            )
            .injector_for(28, Arc::new(AtomicBool::new(true)));
        let (chan, handle) =
            spawn_silo(test_silo(28, 10), Arc::clone(&stats), None, injector).expect("spawn silo");
        let pending = chan.begin_call(&Request::Ping).unwrap();
        let start = Instant::now();
        assert_eq!(
            pending.wait().expect_err("worker crashed"),
            TransportError::Disconnected { silo: 28 }
        );
        // Woken by the sweep, not by a poll slice or timeout.
        assert!(start.elapsed() < Duration::from_secs(2));
        handle.join().expect("worker exited by crashing");
    }

    #[test]
    fn dropped_messages_are_reaped_by_the_deadline() {
        use std::sync::atomic::AtomicBool;
        let stats = Arc::new(CommCounters::default());
        let injector = crate::fault::FaultPlan::seeded(3)
            .with_spec(
                24,
                crate::fault::SiloFaultSpec {
                    drop_prob: 1.0,
                    ..Default::default()
                },
            )
            .injector_for(24, Arc::new(AtomicBool::new(true)));
        let (chan, _handle) =
            spawn_silo(test_silo(24, 10), Arc::clone(&stats), None, injector).expect("spawn silo");
        let pending = chan
            .begin_call_with(
                &Request::Ping,
                Some(Instant::now() + Duration::from_millis(10)),
            )
            .unwrap();
        assert_eq!(
            pending.wait().expect_err("dropped"),
            TransportError::DeadlineExceeded { silo: 24 }
        );
    }

    #[test]
    fn poll_deadline_keeps_the_call_alive() {
        let stats = Arc::new(CommCounters::default());
        let (chan, _handle) = spawn_silo(
            test_silo(25, 10),
            Arc::clone(&stats),
            None,
            slow_injector(25, Duration::from_millis(40)),
        )
        .expect("spawn silo");
        let pending = chan.begin_call(&Request::Ping).unwrap();
        let pending = match pending.poll_deadline(Instant::now() + Duration::from_millis(2)) {
            Poll::Pending(p) => p,
            Poll::Ready(r) => panic!("slow call answered early: {r:?}"),
        };
        assert_eq!(pending.silo(), 25);
        match pending.poll_deadline(Instant::now() + Duration::from_secs(5)) {
            Poll::Ready(Ok(Response::Pong)) => {}
            other => panic!("expected pong, got {other:?}"),
        }
        assert_eq!(stats.snapshot().rounds, 1);
    }

    #[test]
    fn race_calls_first_answer_wins() {
        let stats = Arc::new(CommCounters::default());
        let (slow, _h1) = spawn_silo(
            test_silo(26, 10),
            Arc::clone(&stats),
            None,
            slow_injector(26, Duration::from_millis(80)),
        )
        .expect("spawn silo");
        let (fast, _h2) =
            spawn_silo(test_silo(27, 10), Arc::clone(&stats), None, None).expect("spawn silo");
        let primary = slow.begin_call(&Request::Ping).unwrap();
        let hedge = fast.begin_call(&Request::Ping).unwrap();
        match race_calls(primary, hedge, Instant::now() + Duration::from_secs(5)) {
            RaceWinner::Hedge(Ok(Response::Pong)) => {}
            other => panic!("expected the fast hedge to win, got {other:?}"),
        }
        // Race two slow calls into a tight deadline: both lose.
        let primary = slow.begin_call(&Request::Ping).unwrap();
        let hedge = slow.begin_call(&Request::Ping).unwrap();
        match race_calls(primary, hedge, Instant::now() + Duration::from_millis(5)) {
            RaceWinner::Timeout => {}
            other => panic!("expected timeout, got {other:?}"),
        }
    }

    #[test]
    fn call_policy_backoff_is_capped_and_deterministic() {
        let policy = CallPolicy {
            backoff_base: Duration::from_millis(2),
            backoff_cap: Duration::from_millis(10),
            ..Default::default()
        };
        assert_eq!(policy.backoff(1, 3), policy.backoff(1, 3));
        assert!(policy.backoff(1, 1) >= Duration::from_millis(2));
        // Capped: even huge attempt counts stay under cap + jitter.
        assert!(policy.backoff(1, 30) < Duration::from_millis(12));
        let zero = CallPolicy {
            backoff_base: Duration::ZERO,
            ..Default::default()
        };
        assert_eq!(zero.backoff(0, 5), Duration::ZERO);
    }
}
