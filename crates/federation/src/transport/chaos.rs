//! A seeded network-chaos proxy for partition and corruption drills.
//!
//! [`ChaosProxy`] sits between a [`super::socket::SocketTransport`] client
//! and a `fedra-silo` server on the socket path and injects the faults a
//! real network delivers — deterministically, from a seed, so a chaos soak
//! replays bit-identically:
//!
//! * **connection drop** — the client's connection is severed; in-flight
//!   calls retry on the reconnect (or fail typed, never wrong);
//! * **hard partition** — [`ChaosProxy::partition_for`] severs the client
//!   and black-holes traffic until the deadline passes, after which the
//!   health breaker's HalfOpen probes rejoin the silo;
//! * **mid-frame truncation** — a reply is cut inside its payload and the
//!   connection dropped, surfacing as [`super::socket::FrameError::Truncated`];
//! * **byte corruption** — a reply payload byte is flipped *without*
//!   fixing the header checksum, surfacing as
//!   [`super::socket::FrameError::Corrupt`];
//! * **delay/jitter** — frames are held for a seeded duration, exercising
//!   deadline sheds and hedges.
//!
//! # Topology: one upstream connection, many client generations
//!
//! The proxy keeps **one persistent connection to the upstream silo** for
//! its whole life and multiplexes every client connection over it. That
//! asymmetry is what makes epoch fencing reachable: when the proxy drops
//! the client mid-call, the silo's reply still comes back on the healthy
//! upstream connection, and the proxy forwards it to the *reconnected*
//! client — a reply stamped with a dead connection generation, which the
//! client's reader must fence (`fedra_epoch_fenced_replies_total`) rather
//! than let answer a fresh call. [`ChaosProxy::drop_client_after_next_request`]
//! produces exactly this interleaving on demand.
//!
//! Chaos (corruption, truncation, per-frame drop) applies only on the
//! **reply path**: the upstream connection must stay framing-healthy, or
//! the silo would drop it and the proxy would degenerate into a plain
//! connection killer. The request path is limited to drops and delay.

use std::io::Write;
use std::net::{TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use parking_lot::Mutex;

use super::socket::{
    read_reply_frame, read_request_frame, write_reply_frame, write_request_frame, SiloAddr,
    SocketStream, REPLY_HEADER_LEN,
};

/// How often blocked proxy loops poll their flags.
const POLL: Duration = Duration::from_millis(1);

/// How long the reply pump waits for a client connection to deliver a
/// pending reply to before giving the frame up as partition-lost.
const REPLY_LINGER: Duration = Duration::from_secs(2);

/// Seeded fault mix for a [`ChaosProxy`]. All draws come from a SplitMix64
/// stream over `seed`, so the same plan over the same traffic produces the
/// same fault schedule.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ChaosPlan {
    /// Seed for the fault-draw stream.
    pub seed: u64,
    /// Per-reply probability of flipping a payload byte (checksum left
    /// stale → the client sees `FrameError::Corrupt`).
    pub corrupt_prob: f64,
    /// Per-reply probability of cutting the frame mid-payload and
    /// dropping the connection (`FrameError::Truncated`).
    pub truncate_prob: f64,
    /// Per-frame probability (both directions) of silently dropping the
    /// frame — the call then sheds on its deadline.
    pub drop_prob: f64,
    /// Maximum seeded extra delay added per frame.
    pub delay_jitter: Duration,
}

impl ChaosPlan {
    /// A plan that injects nothing: the proxy forwards faithfully (the
    /// disarmed-proxy baseline of the partition soak — answers must be
    /// bit-identical to a direct connection).
    pub fn calm(seed: u64) -> ChaosPlan {
        ChaosPlan {
            seed,
            corrupt_prob: 0.0,
            truncate_prob: 0.0,
            drop_prob: 0.0,
            delay_jitter: Duration::ZERO,
        }
    }
}

impl Default for ChaosPlan {
    fn default() -> Self {
        ChaosPlan::calm(0)
    }
}

/// Counters of what the proxy actually did (drained by
/// [`ChaosProxy::stats`]; soak assertions read these).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ChaosStats {
    /// Request frames forwarded upstream.
    pub requests_forwarded: u64,
    /// Request frames silently dropped.
    pub requests_dropped: u64,
    /// Reply frames forwarded intact.
    pub replies_forwarded: u64,
    /// Reply frames forwarded with a flipped payload byte.
    pub replies_corrupted: u64,
    /// Reply frames cut mid-payload (connection dropped after).
    pub replies_truncated: u64,
    /// Reply frames silently dropped (includes partition losses).
    pub replies_dropped: u64,
    /// Client connections accepted.
    pub client_connections: u64,
    /// Client connections severed by injected faults or partitions.
    pub client_drops: u64,
    /// Partitions started via [`ChaosProxy::partition_for`].
    pub partitions: u64,
}

#[derive(Default)]
struct StatCells {
    requests_forwarded: AtomicU64,
    requests_dropped: AtomicU64,
    replies_forwarded: AtomicU64,
    replies_corrupted: AtomicU64,
    replies_truncated: AtomicU64,
    replies_dropped: AtomicU64,
    client_connections: AtomicU64,
    client_drops: AtomicU64,
    partitions: AtomicU64,
}

struct Inner {
    plan: ChaosPlan,
    /// Write half of the one persistent upstream connection.
    upstream: Mutex<Option<SocketStream>>,
    /// Write half of the *current* client connection (replaced on every
    /// accept; replies always go to the newest client).
    client: Mutex<Option<TcpStream>>,
    /// SplitMix64 state for fault draws.
    rng: Mutex<u64>,
    partition_until: Mutex<Option<Instant>>,
    /// One-shot: sever the client right after the next request is
    /// forwarded upstream (deterministic fenced-reply production).
    drop_after_next: AtomicBool,
    shutdown: AtomicBool,
    stats: StatCells,
}

impl Inner {
    fn next_u64(&self) -> u64 {
        let mut s = self.rng.lock();
        *s = s.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = *s;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// A seeded uniform draw in `[0, 1)`.
    fn draw(&self) -> f64 {
        (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }

    fn partitioned(&self) -> bool {
        matches!(*self.partition_until.lock(), Some(t) if Instant::now() < t)
    }

    fn seeded_delay(&self) {
        if !self.plan.delay_jitter.is_zero() {
            let frac = self.draw();
            std::thread::sleep(self.plan.delay_jitter.mul_f64(frac));
        }
    }

    /// Severs the current client connection (if any).
    fn drop_client(&self) {
        if let Some(conn) = self.client.lock().take() {
            let _ = conn.shutdown(std::net::Shutdown::Both);
            self.stats.client_drops.fetch_add(1, Ordering::Relaxed);
        }
    }
}

/// The proxy: a TCP listener the client connects to, one persistent
/// upstream connection, and seeded fault injection in between. See the
/// module docs for the topology and chaos directionality.
pub struct ChaosProxy {
    inner: Arc<Inner>,
    addr: SiloAddr,
    threads: Vec<JoinHandle<()>>,
}

impl ChaosProxy {
    /// Connects to `upstream` (TCP or Unix), binds an ephemeral loopback
    /// TCP listener for the client side, and starts proxying under
    /// `plan`.
    pub fn spawn(upstream: &SiloAddr, plan: ChaosPlan) -> std::io::Result<ChaosProxy> {
        let upstream_conn = upstream.connect()?;
        upstream_conn.set_nonblocking(false)?;
        let upstream_read = upstream_conn.try_clone()?;
        let listener = TcpListener::bind("127.0.0.1:0")?;
        let addr = SiloAddr::Tcp(listener.local_addr()?.to_string());
        listener.set_nonblocking(true)?;
        let inner = Arc::new(Inner {
            plan,
            upstream: Mutex::new(Some(upstream_conn)),
            client: Mutex::new(None),
            rng: Mutex::new(plan.seed),
            partition_until: Mutex::new(None),
            drop_after_next: AtomicBool::new(false),
            shutdown: AtomicBool::new(false),
            stats: StatCells::default(),
        });
        let mut threads = Vec::new();
        {
            let inner = Arc::clone(&inner);
            threads.push(
                std::thread::Builder::new()
                    .name("fedra-chaos-accept".into())
                    .spawn(move || accept_loop(listener, inner))?,
            );
        }
        {
            let inner = Arc::clone(&inner);
            threads.push(
                std::thread::Builder::new()
                    .name("fedra-chaos-reply".into())
                    .spawn(move || reply_pump(upstream_read, inner))?,
            );
        }
        Ok(ChaosProxy {
            inner,
            addr,
            threads,
        })
    }

    /// The address clients should connect to instead of the silo's.
    pub fn addr(&self) -> &SiloAddr {
        &self.addr
    }

    /// Black-holes the link for `duration`: the current client connection
    /// is severed, new connections are accepted-then-severed, and replies
    /// arriving from upstream are dropped until the deadline passes.
    pub fn partition_for(&self, duration: Duration) {
        *self.inner.partition_until.lock() = Some(Instant::now() + duration);
        self.inner.stats.partitions.fetch_add(1, Ordering::Relaxed);
        self.inner.drop_client();
    }

    /// One-shot: forward the next request upstream, then sever the client
    /// connection. The silo's reply then arrives while the client is on a
    /// *new* connection generation — the deterministic way to produce a
    /// reply the client must epoch-fence.
    pub fn drop_client_after_next_request(&self) {
        self.inner.drop_after_next.store(true, Ordering::Release);
    }

    /// What the proxy has done so far.
    pub fn stats(&self) -> ChaosStats {
        let s = &self.inner.stats;
        ChaosStats {
            requests_forwarded: s.requests_forwarded.load(Ordering::Relaxed),
            requests_dropped: s.requests_dropped.load(Ordering::Relaxed),
            replies_forwarded: s.replies_forwarded.load(Ordering::Relaxed),
            replies_corrupted: s.replies_corrupted.load(Ordering::Relaxed),
            replies_truncated: s.replies_truncated.load(Ordering::Relaxed),
            replies_dropped: s.replies_dropped.load(Ordering::Relaxed),
            client_connections: s.client_connections.load(Ordering::Relaxed),
            client_drops: s.client_drops.load(Ordering::Relaxed),
            partitions: s.partitions.load(Ordering::Relaxed),
        }
    }

    /// Stops the proxy: severs both sides and joins the pump threads.
    pub fn stop(&mut self) {
        self.inner.shutdown.store(true, Ordering::Release);
        if let Some(conn) = self.inner.upstream.lock().take() {
            conn.shutdown();
        }
        if let Some(conn) = self.inner.client.lock().take() {
            let _ = conn.shutdown(std::net::Shutdown::Both);
        }
        for thread in self.threads.drain(..) {
            let _ = thread.join();
        }
    }
}

impl Drop for ChaosProxy {
    fn drop(&mut self) {
        self.stop();
    }
}

impl std::fmt::Debug for ChaosProxy {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ChaosProxy")
            .field("addr", &self.addr)
            .field("plan", &self.inner.plan)
            .finish()
    }
}

fn accept_loop(listener: TcpListener, inner: Arc<Inner>) {
    while !inner.shutdown.load(Ordering::Acquire) {
        match listener.accept() {
            Ok((conn, _)) => {
                if inner.partitioned() {
                    // The kernel completed the handshake out of the
                    // backlog; severing here is the closest a userspace
                    // proxy gets to a refused connect.
                    let _ = conn.shutdown(std::net::Shutdown::Both);
                    continue;
                }
                let _ = conn.set_nonblocking(false);
                let _ = conn.set_nodelay(true);
                inner
                    .stats
                    .client_connections
                    .fetch_add(1, Ordering::Relaxed);
                let write_half = match conn.try_clone() {
                    Ok(w) => w,
                    Err(_) => continue,
                };
                if let Some(old) = inner.client.lock().replace(write_half) {
                    let _ = old.shutdown(std::net::Shutdown::Both);
                }
                let inner = Arc::clone(&inner);
                // A failed spawn drops the connection; the client sees
                // EOF and reconnects.
                let _ = std::thread::Builder::new()
                    .name("fedra-chaos-req".into())
                    .spawn(move || request_pump(conn, inner));
            }
            Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => std::thread::sleep(POLL),
            Err(_) => return,
        }
    }
}

/// Forwards request frames from one client connection to the upstream
/// silo. Exits when its connection dies (superseded, severed, or the
/// client reconnected).
fn request_pump(mut conn: TcpStream, inner: Arc<Inner>) {
    loop {
        if inner.shutdown.load(Ordering::Acquire) {
            return;
        }
        let frame = match read_request_frame(&mut conn) {
            Ok(frame) => frame,
            Err(_) => return,
        };
        if inner.partitioned() {
            inner.stats.requests_dropped.fetch_add(1, Ordering::Relaxed);
            continue;
        }
        // Request-path chaos is drop + delay only: corrupting requests
        // would tear down the one persistent upstream connection.
        if inner.plan.drop_prob > 0.0 && inner.draw() < inner.plan.drop_prob {
            inner.stats.requests_dropped.fetch_add(1, Ordering::Relaxed);
            continue;
        }
        inner.seeded_delay();
        let sever_after = inner.drop_after_next.swap(false, Ordering::AcqRel);
        if sever_after {
            // Sever BEFORE forwarding: once the request is upstream, its
            // reply races this drop, and the drill's whole point is that
            // the reply deterministically lands on the *next* connection
            // (the stale-epoch frame clients must fence).
            inner.drop_client();
        }
        {
            let mut upstream = inner.upstream.lock();
            let Some(stream) = upstream.as_mut() else {
                return;
            };
            if write_request_frame(
                stream,
                frame.corr,
                frame.epoch,
                frame.deadline_rel_us,
                &frame.payload,
            )
            .is_err()
            {
                // Upstream died (silo killed): nothing to forward to.
                // Keep draining the client so its frames fail on their
                // deadlines rather than on a half-duplex stall.
                *upstream = None;
                continue;
            }
        }
        inner
            .stats
            .requests_forwarded
            .fetch_add(1, Ordering::Relaxed);
        if sever_after {
            return;
        }
    }
}

/// Forwards reply frames from the persistent upstream connection to the
/// current client connection, applying the plan's reply-path chaos.
fn reply_pump(mut upstream: SocketStream, inner: Arc<Inner>) {
    loop {
        let (corr, epoch, payload) = match read_reply_frame(&mut upstream) {
            Ok(reply) => reply,
            Err(_) => return, // upstream gone (or proxy stopped)
        };
        if inner.partitioned() {
            inner.stats.replies_dropped.fetch_add(1, Ordering::Relaxed);
            continue;
        }
        if inner.plan.drop_prob > 0.0 && inner.draw() < inner.plan.drop_prob {
            inner.stats.replies_dropped.fetch_add(1, Ordering::Relaxed);
            continue;
        }
        inner.seeded_delay();
        let corrupt = inner.plan.corrupt_prob > 0.0 && inner.draw() < inner.plan.corrupt_prob;
        let truncate =
            !corrupt && inner.plan.truncate_prob > 0.0 && inner.draw() < inner.plan.truncate_prob;
        // Wait (bounded) for a client connection: a reply that raced a
        // client reconnect is *delivered late*, not dropped — that is the
        // stale frame epoch fencing exists to catch.
        let deadline = Instant::now() + REPLY_LINGER;
        let delivered = loop {
            if inner.shutdown.load(Ordering::Acquire) {
                return;
            }
            if inner.partitioned() || Instant::now() >= deadline {
                break false;
            }
            let mut client = inner.client.lock();
            let Some(stream) = client.as_mut() else {
                drop(client);
                std::thread::sleep(POLL);
                continue;
            };
            let outcome = if corrupt || truncate {
                let mut buf = Vec::new();
                match write_reply_frame(&mut buf, corr, epoch, &payload) {
                    Ok(()) => {
                        if corrupt {
                            let at = if payload.is_empty() {
                                REPLY_HEADER_LEN - 1 // no payload byte: flip the checksum instead
                            } else {
                                REPLY_HEADER_LEN + (inner.next_u64() as usize % payload.len())
                            };
                            buf[at] ^= 1 << (inner.next_u64() % 8);
                        } else {
                            let cut = (buf.len() - 1).min(REPLY_HEADER_LEN + payload.len() / 2);
                            buf.truncate(cut);
                        }
                        stream.write_all(&buf).and_then(|_| stream.flush())
                    }
                    Err(e) => Err(e),
                }
            } else {
                write_reply_frame(stream, corr, epoch, &payload)
            };
            match outcome {
                Ok(()) => break true,
                Err(_) => {
                    // This client is gone; retry against its successor.
                    *client = None;
                    drop(client);
                    std::thread::sleep(POLL);
                }
            }
        };
        let cell = match (delivered, corrupt, truncate) {
            (false, _, _) => &inner.stats.replies_dropped,
            (true, true, _) => &inner.stats.replies_corrupted,
            (true, _, true) => &inner.stats.replies_truncated,
            (true, false, false) => &inner.stats.replies_forwarded,
        };
        cell.fetch_add(1, Ordering::Relaxed);
        if delivered && truncate {
            // The byte stream is no longer frame-aligned for this client:
            // sever so the next frame starts clean on a new connection.
            inner.drop_client();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::silo::{Silo, SiloConfig};
    use crate::transport::socket::{SiloSocketServer, SocketServerConfig};
    use fedra_geo::{Point, Rect, SpatialObject};
    use fedra_index::histogram::MinSkewConfig;
    use fedra_index::rtree::RTreeConfig;

    fn test_silo(id: usize) -> Silo {
        let bounds = Rect::new(Point::new(0.0, 0.0), Point::new(10.0, 10.0));
        let objects: Vec<SpatialObject> = (0..50)
            .map(|i| SpatialObject::at((i % 10) as f64, (i / 10) as f64, 1.0))
            .collect();
        Silo::new(
            id,
            objects,
            SiloConfig {
                rtree: RTreeConfig::default(),
                histogram: MinSkewConfig {
                    resolution: 8,
                    budget: 8,
                },
                bounds,
                lsr_seed: 1,
                threads: 1,
            },
        )
    }

    fn serve(id: usize) -> SiloSocketServer {
        SiloSocketServer::spawn(
            test_silo(id),
            &SiloAddr::Tcp("127.0.0.1:0".into()),
            SocketServerConfig::default(),
        )
        .expect("server")
    }

    #[test]
    fn calm_proxy_forwards_faithfully() {
        use crate::protocol::{Request, Response};
        use crate::wire::Wire;
        let server = serve(0);
        let proxy = ChaosProxy::spawn(server.addr(), ChaosPlan::calm(7)).expect("proxy");
        let mut conn = proxy.addr().connect().expect("connect");
        let payload = Request::Ping.to_bytes();
        write_request_frame(&mut conn, 5, 1, u64::MAX, &payload).expect("write");
        let (corr, epoch, reply) = read_reply_frame(&mut conn).expect("reply");
        assert_eq!(corr, 5);
        assert_eq!(epoch, 1, "the server echoes the request epoch verbatim");
        assert_eq!(Response::from_bytes(reply), Ok(Response::Pong));
        // replies_forwarded is bumped after the client-side write, so the
        // reply can be read a beat before the counter — poll briefly.
        let deadline = Instant::now() + Duration::from_secs(2);
        let stats = loop {
            let stats = proxy.stats();
            if stats.replies_forwarded == 1 || Instant::now() >= deadline {
                break stats;
            }
            std::thread::sleep(Duration::from_millis(1));
        };
        assert_eq!(stats.requests_forwarded, 1);
        assert_eq!(stats.replies_forwarded, 1);
        assert_eq!(stats.replies_corrupted + stats.replies_dropped, 0);
        server.stop();
    }

    #[test]
    fn always_corrupt_plan_surfaces_as_typed_frame_error() {
        use crate::protocol::Request;
        use crate::transport::socket::FrameError;
        use crate::wire::Wire;
        let server = serve(1);
        let plan = ChaosPlan {
            corrupt_prob: 1.0,
            ..ChaosPlan::calm(11)
        };
        let proxy = ChaosProxy::spawn(server.addr(), plan).expect("proxy");
        let mut conn = proxy.addr().connect().expect("connect");
        let payload = Request::Ping.to_bytes();
        write_request_frame(&mut conn, 0, 1, u64::MAX, &payload).expect("write");
        assert_eq!(
            read_reply_frame(&mut conn),
            Err(FrameError::Corrupt {
                context: "reply payload"
            })
        );
        assert_eq!(proxy.stats().replies_corrupted, 1);
        server.stop();
    }

    #[test]
    fn partition_severs_and_heals() {
        use crate::protocol::{Request, Response};
        use crate::wire::Wire;
        let server = serve(2);
        let proxy = ChaosProxy::spawn(server.addr(), ChaosPlan::calm(3)).expect("proxy");
        let mut conn = proxy.addr().connect().expect("connect");
        let payload = Request::Ping.to_bytes();
        write_request_frame(&mut conn, 1, 1, u64::MAX, &payload).expect("write");
        read_reply_frame(&mut conn).expect("pre-partition reply");

        proxy.partition_for(Duration::from_millis(150));
        // The live connection was severed: the next read fails.
        assert!(read_reply_frame(&mut conn).is_err());
        std::thread::sleep(Duration::from_millis(200));

        // Healed: a fresh connection works again.
        let mut conn = proxy.addr().connect().expect("reconnect");
        write_request_frame(&mut conn, 2, 2, u64::MAX, &payload).expect("write");
        let (corr, epoch, reply) = read_reply_frame(&mut conn).expect("post-heal reply");
        assert_eq!((corr, epoch), (2, 2));
        assert_eq!(Response::from_bytes(reply), Ok(Response::Pong));
        assert_eq!(proxy.stats().partitions, 1);
        server.stop();
    }

    #[test]
    fn dropped_client_reply_is_delivered_to_the_next_connection() {
        use crate::protocol::Request;
        use crate::wire::Wire;
        let server = serve(3);
        let proxy = ChaosProxy::spawn(server.addr(), ChaosPlan::calm(5)).expect("proxy");
        let mut conn = proxy.addr().connect().expect("connect");
        proxy.drop_client_after_next_request();
        let payload = Request::Ping.to_bytes();
        // Sent on "epoch 1"; the proxy severs this connection right after
        // forwarding, so the reply must land on the next connection.
        write_request_frame(&mut conn, 9, 1, u64::MAX, &payload).expect("write");
        assert!(read_reply_frame(&mut conn).is_err(), "severed connection");
        let mut conn2 = proxy.addr().connect().expect("reconnect");
        let (corr, epoch, _) = read_reply_frame(&mut conn2).expect("late reply");
        assert_eq!(
            (corr, epoch),
            (9, 1),
            "the stale-epoch reply crosses connections — what clients fence"
        );
        server.stop();
    }

    #[test]
    fn seeded_draws_are_deterministic() {
        let mk = || {
            Arc::new(Inner {
                plan: ChaosPlan::calm(42),
                upstream: Mutex::new(None),
                client: Mutex::new(None),
                rng: Mutex::new(42),
                partition_until: Mutex::new(None),
                drop_after_next: AtomicBool::new(false),
                shutdown: AtomicBool::new(false),
                stats: StatCells::default(),
            })
        };
        let a = mk();
        let b = mk();
        for _ in 0..64 {
            let d = a.draw();
            assert_eq!(d, b.draw());
            assert!((0.0..1.0).contains(&d));
        }
    }
}
