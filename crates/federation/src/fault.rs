//! Deterministic, seeded fault injection for the silo transport.
//!
//! A [`FaultPlan`] describes, per silo, the misbehaviour to inject at the
//! transport boundary: extra latency (with optional jitter), dropped
//! messages, transient refusals, a hard crash after N requests, and
//! counter-based flap schedules. The plan compiles to one
//! [`SiloFaultInjector`] per silo worker; every random draw comes from a
//! per-silo `StdRng` seeded from `plan.seed ^ silo`, and every schedule is
//! keyed on the worker's *request counter*, never the wall clock — so a
//! chaos run is bit-stable: the same plan and the same request sequence
//! produce the same faults, regardless of timing or thread interleaving.
//!
//! Injection sits in the worker loop of [`crate::transport::spawn_silo`],
//! *after* the envelope is received and *before* the request is decoded:
//! a faulted request still pays its upload bytes (the frame travelled),
//! which keeps the communication-cost metric honest under chaos.
//!
//! Faults are disarmed until the federation finishes Alg. 1 setup (the
//! plan describes a degraded *query* phase, not a broken bootstrap); see
//! [`crate::Federation::set_faults_armed`].

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Duration;

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::silo::SiloId;

/// A counter-based availability schedule: the silo serves `period - down`
/// requests, then answers the next `down` requests with
/// [`crate::Response::Transient`], repeating.
///
/// The schedule is driven by the silo's armed-request counter, so it is
/// deterministic and independent of wall-clock time.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FlapSchedule {
    /// Cycle length in requests (must be > 0).
    pub period: u64,
    /// How many requests at the end of each cycle are refused.
    pub down: u64,
    /// Offset into the cycle at which the schedule starts.
    pub phase: u64,
}

impl FlapSchedule {
    /// Whether the request with (0-based) sequence number `seq` falls in a
    /// down window.
    pub fn is_down(&self, seq: u64) -> bool {
        if self.period == 0 || self.down == 0 {
            return false;
        }
        let pos = (seq + self.phase) % self.period;
        pos >= self.period.saturating_sub(self.down)
    }
}

/// Per-silo fault specification. The default injects nothing.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct SiloFaultSpec {
    /// Fixed extra latency added to every served request.
    pub latency: Option<Duration>,
    /// Additional uniform jitter in `[0, jitter)` on top of `latency`.
    pub jitter: Option<Duration>,
    /// Probability a request is dropped outright (no reply ever). Callers
    /// must pair drops with a deadline, or the pending call blocks
    /// forever.
    pub drop_prob: f64,
    /// Probability a request is refused with a retryable
    /// [`crate::Response::Transient`].
    pub transient_prob: f64,
    /// After this many armed requests, the worker thread exits: every
    /// later call observes
    /// [`crate::transport::TransportError::Disconnected`].
    pub crash_after: Option<u64>,
    /// Counter-based up/down schedule (down windows answer
    /// [`crate::Response::Transient`]).
    pub flap: Option<FlapSchedule>,
}

impl SiloFaultSpec {
    /// A spec that only slows the silo down.
    pub fn slow(latency: Duration) -> Self {
        SiloFaultSpec {
            latency: Some(latency),
            ..Default::default()
        }
    }

    /// A spec that only flaps on the given schedule.
    pub fn flapping(period: u64, down: u64) -> Self {
        SiloFaultSpec {
            flap: Some(FlapSchedule {
                period,
                down,
                phase: 0,
            }),
            ..Default::default()
        }
    }
}

/// A seeded, per-silo fault schedule for the whole federation.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct FaultPlan {
    seed: u64,
    specs: Vec<(SiloId, SiloFaultSpec)>,
}

impl FaultPlan {
    /// An empty plan drawing from `seed` (per-silo RNGs are derived as
    /// `seed ^ silo`).
    pub fn seeded(seed: u64) -> Self {
        FaultPlan {
            seed,
            specs: Vec::new(),
        }
    }

    /// Sets (or replaces) the spec for one silo.
    pub fn with_spec(mut self, silo: SiloId, spec: SiloFaultSpec) -> Self {
        match self.specs.iter_mut().find(|(k, _)| *k == silo) {
            Some(slot) => slot.1 = spec,
            None => self.specs.push((silo, spec)),
        }
        self
    }

    /// Adds fixed latency injection for one silo.
    pub fn slow_silo(self, silo: SiloId, latency: Duration) -> Self {
        self.with_spec(silo, SiloFaultSpec::slow(latency))
    }

    /// Adds a counter-based flap schedule for one silo.
    pub fn flapping_silo(self, silo: SiloId, period: u64, down: u64) -> Self {
        self.with_spec(silo, SiloFaultSpec::flapping(period, down))
    }

    /// The plan's base seed.
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// The spec configured for `silo`, if any.
    pub fn spec(&self, silo: SiloId) -> Option<&SiloFaultSpec> {
        self.specs
            .iter()
            .find(|(k, _)| *k == silo)
            .map(|(_, spec)| spec)
    }

    /// Compiles the per-silo injector handed to the worker thread.
    /// Returns `None` when the plan says nothing about `silo` (the worker
    /// then skips injection entirely).
    pub fn injector_for(&self, silo: SiloId, armed: Arc<AtomicBool>) -> Option<SiloFaultInjector> {
        self.spec(silo).map(|spec| SiloFaultInjector {
            spec: *spec,
            rng: StdRng::seed_from_u64(self.seed ^ silo as u64),
            seq: 0,
            crashed: false,
            armed,
        })
    }
}

/// What the worker should do with the current request.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FaultAction {
    /// Serve the request normally, after sleeping `delay` (if any).
    Proceed {
        /// Injected latency for this request.
        delay: Option<Duration>,
    },
    /// Refuse with a retryable [`crate::Response::Transient`], after
    /// sleeping `delay` (if any).
    Transient {
        /// Error message for the refusal.
        message: String,
        /// Injected latency for this request.
        delay: Option<Duration>,
    },
    /// Never reply (the caller's deadline must reap the call).
    Drop,
    /// The worker thread exits; every later call sees a disconnect.
    Crash,
}

/// The compiled per-silo injector owned by one worker thread.
///
/// All state is local to the worker (the RNG, the request counter), so
/// applying faults is free of cross-thread coordination and the draw
/// sequence depends only on the order requests arrive on this silo's
/// channel.
#[derive(Debug)]
pub struct SiloFaultInjector {
    spec: SiloFaultSpec,
    rng: StdRng,
    seq: u64,
    crashed: bool,
    armed: Arc<AtomicBool>,
}

impl SiloFaultInjector {
    /// Decides the fate of the next request. While the armed flag is
    /// unset (setup phase), every request proceeds untouched and consumes
    /// neither the counter nor the RNG.
    pub fn next_action(&mut self) -> FaultAction {
        if !self.armed.load(Ordering::Acquire) {
            return FaultAction::Proceed { delay: None };
        }
        if self.crashed {
            return FaultAction::Crash;
        }
        let seq = self.seq;
        self.seq += 1;
        if let Some(limit) = self.spec.crash_after {
            if seq >= limit {
                self.crashed = true;
                return FaultAction::Crash;
            }
        }
        if let Some(flap) = self.spec.flap {
            if flap.is_down(seq) {
                return FaultAction::Transient {
                    message: format!("flap window (request {seq})"),
                    delay: None,
                };
            }
        }
        if self.spec.transient_prob > 0.0 && self.rng.random::<f64>() < self.spec.transient_prob {
            return FaultAction::Transient {
                message: format!("transient fault (request {seq})"),
                delay: self.delay(),
            };
        }
        if self.spec.drop_prob > 0.0 && self.rng.random::<f64>() < self.spec.drop_prob {
            return FaultAction::Drop;
        }
        FaultAction::Proceed {
            delay: self.delay(),
        }
    }

    fn delay(&mut self) -> Option<Duration> {
        let base = self.spec.latency.unwrap_or(Duration::ZERO);
        let jitter = match self.spec.jitter {
            Some(j) if !j.is_zero() => {
                Duration::from_nanos(self.rng.random_range(0..j.as_nanos().max(1) as u64))
            }
            _ => Duration::ZERO,
        };
        let total = base + jitter;
        (!total.is_zero()).then_some(total)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn armed() -> Arc<AtomicBool> {
        Arc::new(AtomicBool::new(true))
    }

    fn actions(plan: &FaultPlan, silo: SiloId, n: usize) -> Vec<FaultAction> {
        let mut injector = plan.injector_for(silo, armed()).expect("spec for silo");
        (0..n).map(|_| injector.next_action()).collect()
    }

    #[test]
    fn flap_schedule_windows() {
        let flap = FlapSchedule {
            period: 4,
            down: 2,
            phase: 0,
        };
        let pattern: Vec<bool> = (0..8).map(|s| flap.is_down(s)).collect();
        assert_eq!(
            pattern,
            vec![false, false, true, true, false, false, true, true]
        );
        let shifted = FlapSchedule {
            period: 4,
            down: 2,
            phase: 2,
        };
        assert!(shifted.is_down(0));
        assert!(!shifted.is_down(2));
    }

    #[test]
    fn same_seed_same_actions() {
        let plan = FaultPlan::seeded(99).with_spec(
            1,
            SiloFaultSpec {
                transient_prob: 0.3,
                drop_prob: 0.1,
                jitter: Some(Duration::from_millis(5)),
                latency: Some(Duration::from_millis(1)),
                ..Default::default()
            },
        );
        assert_eq!(actions(&plan, 1, 200), actions(&plan, 1, 200));
        // A different seed must eventually diverge.
        let other = FaultPlan::seeded(100).with_spec(1, *plan.spec(1).unwrap());
        assert_ne!(actions(&plan, 1, 200), actions(&other, 1, 200));
    }

    #[test]
    fn crash_after_n_is_sticky() {
        let plan = FaultPlan::seeded(7).with_spec(
            2,
            SiloFaultSpec {
                crash_after: Some(3),
                ..Default::default()
            },
        );
        let got = actions(&plan, 2, 5);
        assert_eq!(got[0], FaultAction::Proceed { delay: None });
        assert_eq!(got[2], FaultAction::Proceed { delay: None });
        assert_eq!(got[3], FaultAction::Crash);
        assert_eq!(got[4], FaultAction::Crash);
    }

    #[test]
    fn disarmed_injector_is_inert() {
        let plan = FaultPlan::seeded(7).flapping_silo(0, 2, 1);
        let flag = Arc::new(AtomicBool::new(false));
        let mut injector = plan.injector_for(0, Arc::clone(&flag)).unwrap();
        for _ in 0..10 {
            assert_eq!(injector.next_action(), FaultAction::Proceed { delay: None });
        }
        // Arming starts the schedule from request 0, regardless of how
        // much setup traffic went by.
        flag.store(true, Ordering::Release);
        assert_eq!(injector.next_action(), FaultAction::Proceed { delay: None });
        assert!(matches!(
            injector.next_action(),
            FaultAction::Transient { .. }
        ));
    }

    #[test]
    fn plan_spec_replacement_and_lookup() {
        let plan = FaultPlan::seeded(1)
            .slow_silo(3, Duration::from_millis(10))
            .with_spec(3, SiloFaultSpec::flapping(5, 1));
        assert_eq!(plan.spec(3).unwrap().flap.unwrap().period, 5);
        assert!(plan.spec(3).unwrap().latency.is_none());
        assert!(plan.spec(0).is_none());
        assert!(plan.injector_for(0, armed()).is_none());
    }

    #[test]
    fn slow_spec_delays_every_request() {
        let plan = FaultPlan::seeded(1).slow_silo(0, Duration::from_millis(8));
        for action in actions(&plan, 0, 5) {
            assert_eq!(
                action,
                FaultAction::Proceed {
                    delay: Some(Duration::from_millis(8))
                }
            );
        }
    }
}
