//! Per-silo health tracking and circuit breaking.
//!
//! The planner samples silos; a silo that keeps timing out or crashing
//! should stop being sampled until it shows signs of life. The
//! [`HealthTracker`] keeps, per silo, a consecutive-failure count and a
//! latency EWMA, and runs a three-state breaker:
//!
//! ```text
//!        failure_threshold consecutive failures
//! Closed ────────────────────────────────────────▶ Open
//!   ▲                                               │ probe admitted
//!   │ probe succeeds                                ▼ (seeded draw)
//!   └──────────────────────────────────────────  HalfOpen
//!                 probe fails: back to Open
//! ```
//!
//! * **Closed**: the silo is in the candidate set; successes keep it
//!   there and update the EWMA.
//! * **Open**: the silo is excluded. Each eligibility check draws from a
//!   seeded RNG; with [`HealthConfig::probe_probability`] the breaker
//!   half-opens and admits that one caller as a probe.
//! * **HalfOpen**: exactly one probe is admitted; other checks are
//!   refused. The probe's outcome closes the breaker or re-opens it.
//!   An admitted probe the planner never actually samples would refuse
//!   checks forever, so the lease expires after
//!   [`HealthConfig::probe_patience`] idle checks (back to Open, where a
//!   new probe can be drawn). Call sites use
//!   [`HealthTracker::may_call`] — not `allows` — to re-check a planned
//!   candidate, so an admitted probe is never refused by its own caller.
//!
//! The draw comes from one `StdRng` seeded by [`HealthConfig::seed`], so
//! a fixed call sequence half-opens at the same points every run — chaos
//! tests stay bit-stable.
//!
//! By default the tracker is **passive**: it records failures and
//! latencies (visible in [`HealthTracker::snapshot`]) but
//! [`HealthTracker::allows`] admits everything, so the planner's
//! candidate set — and therefore every seeded sampling decision — is
//! unchanged from the pre-breaker behaviour. Enable the breaker with
//! [`HealthConfig::breaker_enabled`] via
//! [`crate::FederationBuilder::health_config`].

use std::time::Duration;

use parking_lot::Mutex;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::silo::SiloId;

/// Breaker position for one silo.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BreakerState {
    /// Healthy: in the candidate set.
    Closed,
    /// Excluded after repeated failures.
    Open,
    /// One probe in flight; everyone else still excluded.
    HalfOpen,
}

impl BreakerState {
    /// A short stable label for metrics and CLI output.
    pub fn label(&self) -> &'static str {
        match self {
            BreakerState::Closed => "closed",
            BreakerState::Open => "open",
            BreakerState::HalfOpen => "half_open",
        }
    }
}

/// State-machine transition reported back to the caller, so the engine
/// can mirror breaker movement into its `ObsContext`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum HealthTransition {
    /// No state change.
    None,
    /// The breaker opened.
    Opened,
    /// The breaker half-opened (a probe was admitted).
    HalfOpened,
    /// The breaker closed (the silo recovered).
    Closed,
}

/// Tuning for the [`HealthTracker`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct HealthConfig {
    /// Whether the breaker actually gates the candidate set. Off by
    /// default: the tracker then only records.
    pub breaker_enabled: bool,
    /// Consecutive failures that open the breaker.
    pub failure_threshold: u32,
    /// EWMA smoothing factor for the latency estimate, in `(0, 1]`.
    pub ewma_alpha: f64,
    /// Probability an eligibility check against an open breaker admits a
    /// half-open probe.
    pub probe_probability: f64,
    /// Eligibility checks a half-open breaker tolerates with no probe
    /// outcome before the lease expires and it reverts to `Open`.
    ///
    /// An admitted probe is just a *candidate*: the planner may end up
    /// sampling a different silo, in which case no call ever resolves the
    /// probe and — without this lease — the breaker would be stuck
    /// half-open forever (refusing every future check, so the silo never
    /// rejoins). Reverting to `Open` puts the silo back under the
    /// admission draw.
    pub probe_patience: u32,
    /// Seed for the probe-admission draws (determinism under a fixed
    /// call sequence).
    pub seed: u64,
}

impl Default for HealthConfig {
    fn default() -> Self {
        HealthConfig {
            breaker_enabled: false,
            failure_threshold: 3,
            ewma_alpha: 0.2,
            probe_probability: 0.2,
            probe_patience: 4,
            seed: 0x4845_414C,
        }
    }
}

impl HealthConfig {
    /// The default tuning with the breaker switched on.
    pub fn enabled() -> Self {
        HealthConfig {
            breaker_enabled: true,
            ..Default::default()
        }
    }
}

#[derive(Debug)]
struct SiloHealthState {
    state: BreakerState,
    consecutive_failures: u32,
    ewma_us: Option<f64>,
    /// Eligibility checks refused since the current probe was admitted;
    /// reaching `probe_patience` expires the lease (HalfOpen → Open).
    probe_idle_checks: u32,
    failures_total: u64,
    successes_total: u64,
    opened_total: u64,
    half_opened_total: u64,
    closed_total: u64,
}

impl SiloHealthState {
    fn new() -> Self {
        SiloHealthState {
            state: BreakerState::Closed,
            consecutive_failures: 0,
            ewma_us: None,
            probe_idle_checks: 0,
            failures_total: 0,
            successes_total: 0,
            opened_total: 0,
            half_opened_total: 0,
            closed_total: 0,
        }
    }
}

/// Point-in-time health of one silo, for CLI/diagnostic output.
#[derive(Debug, Clone, PartialEq)]
pub struct SiloHealthSnapshot {
    /// Which silo.
    pub silo: SiloId,
    /// Current breaker position.
    pub state: BreakerState,
    /// Failures since the last success.
    pub consecutive_failures: u32,
    /// Smoothed success latency in microseconds (`None` until the first
    /// success).
    pub latency_ewma_us: Option<f64>,
    /// Lifetime failure count.
    pub failures_total: u64,
    /// Lifetime success count.
    pub successes_total: u64,
    /// Closed→Open (and HalfOpen→Open) transitions.
    pub opened_total: u64,
    /// Open→HalfOpen transitions (probes admitted).
    pub half_opened_total: u64,
    /// →Closed transitions (recoveries).
    pub closed_total: u64,
}

/// Tracks per-silo health and runs the circuit breaker.
#[derive(Debug)]
pub struct HealthTracker {
    config: HealthConfig,
    silos: Vec<Mutex<SiloHealthState>>,
    rng: Mutex<StdRng>,
}

impl HealthTracker {
    /// A tracker for `m` silos.
    pub fn new(m: usize, config: HealthConfig) -> Self {
        HealthTracker {
            config,
            silos: (0..m).map(|_| Mutex::new(SiloHealthState::new())).collect(),
            rng: Mutex::new(StdRng::seed_from_u64(config.seed)),
        }
    }

    /// The tracker's configuration.
    pub fn config(&self) -> &HealthConfig {
        &self.config
    }

    /// Whether the breaker gates the candidate set.
    pub fn breaker_enabled(&self) -> bool {
        self.config.breaker_enabled
    }

    /// Records a successful call and its latency. Closes an open or
    /// half-open breaker (the silo demonstrably answers again).
    pub fn record_success(&self, silo: SiloId, latency: Duration) -> HealthTransition {
        let Some(slot) = self.silos.get(silo) else {
            return HealthTransition::None;
        };
        let mut state = slot.lock();
        state.successes_total += 1;
        state.consecutive_failures = 0;
        let us = latency.as_secs_f64() * 1e6;
        state.ewma_us = Some(match state.ewma_us {
            None => us,
            Some(prev) => prev + self.config.ewma_alpha * (us - prev),
        });
        if state.state != BreakerState::Closed {
            state.state = BreakerState::Closed;
            state.closed_total += 1;
            HealthTransition::Closed
        } else {
            HealthTransition::None
        }
    }

    /// Records a failed call. Opens the breaker after
    /// `failure_threshold` consecutive failures, and re-opens a
    /// half-open breaker whose probe failed.
    pub fn record_failure(&self, silo: SiloId) -> HealthTransition {
        let Some(slot) = self.silos.get(silo) else {
            return HealthTransition::None;
        };
        let mut state = slot.lock();
        state.failures_total += 1;
        state.consecutive_failures = state.consecutive_failures.saturating_add(1);
        if !self.config.breaker_enabled {
            // Passive tracker: record, but never move the state machine —
            // the candidate set must stay exactly the pre-breaker one.
            return HealthTransition::None;
        }
        match state.state {
            BreakerState::HalfOpen => {
                state.state = BreakerState::Open;
                state.opened_total += 1;
                HealthTransition::Opened
            }
            BreakerState::Closed if state.consecutive_failures >= self.config.failure_threshold => {
                state.state = BreakerState::Open;
                state.opened_total += 1;
                HealthTransition::Opened
            }
            _ => HealthTransition::None,
        }
    }

    /// Whether the planner may offer `silo` as a candidate right now.
    ///
    /// Against an open breaker this draws probe admission; admission
    /// moves the breaker to half-open and lets *this* caller through as
    /// the probe. With the breaker disabled, always true.
    pub fn allows(&self, silo: SiloId) -> bool {
        if !self.config.breaker_enabled {
            return true;
        }
        let Some(slot) = self.silos.get(silo) else {
            return true;
        };
        let mut state = slot.lock();
        match state.state {
            BreakerState::Closed => true,
            BreakerState::HalfOpen => {
                // The admitted probe may never have been sampled by its
                // plan; once the lease expires, revert to Open so a new
                // probe can be drawn instead of refusing forever.
                state.probe_idle_checks += 1;
                if state.probe_idle_checks >= self.config.probe_patience {
                    state.state = BreakerState::Open;
                }
                false
            }
            BreakerState::Open => {
                let admit = self.rng.lock().random::<f64>() < self.config.probe_probability;
                if admit {
                    state.state = BreakerState::HalfOpen;
                    state.probe_idle_checks = 0;
                    state.half_opened_total += 1;
                }
                admit
            }
        }
    }

    /// Whether a call to `silo` may be *sent* right now.
    ///
    /// The call-time companion of [`HealthTracker::allows`]: a silo whose
    /// breaker is half-open was already admitted as a probe at plan time,
    /// so the call that carries the probe must go through — refusing it
    /// here (as `allows` would) strands the breaker in `HalfOpen` forever,
    /// because only the probe's outcome can move it. Open breakers are
    /// still refused without consuming a probe-admission draw.
    pub fn may_call(&self, silo: SiloId) -> bool {
        if !self.config.breaker_enabled {
            return true;
        }
        self.state(silo) != BreakerState::Open
    }

    /// Current breaker position for `silo`.
    pub fn state(&self, silo: SiloId) -> BreakerState {
        self.silos
            .get(silo)
            .map(|slot| slot.lock().state)
            .unwrap_or(BreakerState::Closed)
    }

    /// Silos whose breaker is not closed (open or probing). A non-empty
    /// answer after a recovery phase means a breaker "leaked".
    pub fn non_closed(&self) -> Vec<SiloId> {
        (0..self.silos.len())
            .filter(|&k| self.state(k) != BreakerState::Closed)
            .collect()
    }

    /// Point-in-time copy of every silo's health.
    pub fn snapshot(&self) -> Vec<SiloHealthSnapshot> {
        self.silos
            .iter()
            .enumerate()
            .map(|(silo, slot)| {
                let state = slot.lock();
                SiloHealthSnapshot {
                    silo,
                    state: state.state,
                    consecutive_failures: state.consecutive_failures,
                    latency_ewma_us: state.ewma_us,
                    failures_total: state.failures_total,
                    successes_total: state.successes_total,
                    opened_total: state.opened_total,
                    half_opened_total: state.half_opened_total,
                    closed_total: state.closed_total,
                }
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn enabled_tracker(m: usize) -> HealthTracker {
        HealthTracker::new(m, HealthConfig::enabled())
    }

    #[test]
    fn passive_tracker_never_blocks_candidates() {
        let tracker = HealthTracker::new(3, HealthConfig::default());
        for _ in 0..10 {
            tracker.record_failure(1);
        }
        assert!(tracker.allows(1));
        assert_eq!(tracker.state(1), BreakerState::Closed);
        let snap = tracker.snapshot();
        assert_eq!(snap[1].failures_total, 10);
        assert_eq!(snap[1].consecutive_failures, 10);
    }

    #[test]
    fn breaker_opens_after_threshold() {
        let tracker = enabled_tracker(2);
        assert_eq!(tracker.record_failure(0), HealthTransition::None);
        assert_eq!(tracker.record_failure(0), HealthTransition::None);
        assert_eq!(tracker.record_failure(0), HealthTransition::Opened);
        assert_eq!(tracker.state(0), BreakerState::Open);
        assert_eq!(tracker.non_closed(), vec![0]);
        // The other silo is untouched.
        assert!(tracker.allows(1));
    }

    #[test]
    fn open_breaker_admits_probes_and_success_closes() {
        let tracker = enabled_tracker(1);
        for _ in 0..3 {
            tracker.record_failure(0);
        }
        // Eventually a check half-opens (probe_probability 0.2); while
        // half-open, further checks are refused.
        let mut admitted = false;
        for _ in 0..200 {
            if tracker.allows(0) {
                admitted = true;
                break;
            }
        }
        assert!(admitted, "probe never admitted in 200 draws");
        assert_eq!(tracker.state(0), BreakerState::HalfOpen);
        assert!(!tracker.allows(0), "only one probe at a time");
        assert_eq!(
            tracker.record_success(0, Duration::from_millis(1)),
            HealthTransition::Closed
        );
        assert_eq!(tracker.state(0), BreakerState::Closed);
        assert!(tracker.allows(0));
        let snap = &tracker.snapshot()[0];
        assert_eq!(snap.opened_total, 1);
        assert_eq!(snap.half_opened_total, 1);
        assert_eq!(snap.closed_total, 1);
    }

    #[test]
    fn an_admitted_probe_may_still_be_called() {
        let tracker = enabled_tracker(1);
        for _ in 0..3 {
            tracker.record_failure(0);
        }
        // Open: callers that were not admitted must not send.
        assert!(!tracker.may_call(0));
        while !tracker.allows(0) {}
        // Half-open: the admitted plan's call-time check must pass, or
        // the probe never fires and the breaker is stuck half-open.
        assert_eq!(tracker.state(0), BreakerState::HalfOpen);
        assert!(!tracker.allows(0), "no second probe");
        assert!(tracker.may_call(0), "the admitted probe must be sendable");
        tracker.record_success(0, Duration::from_millis(1));
        assert_eq!(tracker.state(0), BreakerState::Closed);
        assert!(tracker.may_call(0));
    }

    #[test]
    fn unsampled_probe_lease_expires_back_to_open() {
        let tracker = enabled_tracker(1);
        for _ in 0..3 {
            tracker.record_failure(0);
        }
        while !tracker.allows(0) {}
        assert_eq!(tracker.state(0), BreakerState::HalfOpen);
        // A plan admitted the probe but never sampled the silo: each
        // later check is refused, and after `probe_patience` of them the
        // lease lapses so a fresh probe can be drawn.
        let patience = tracker.config().probe_patience;
        for _ in 0..patience {
            assert!(!tracker.allows(0));
        }
        assert_eq!(
            tracker.state(0),
            BreakerState::Open,
            "idle half-open lease must lapse"
        );
        // Recovery is still possible: a new probe can close the breaker.
        while !tracker.allows(0) {}
        assert_eq!(tracker.state(0), BreakerState::HalfOpen);
        tracker.record_success(0, Duration::from_millis(1));
        assert_eq!(tracker.state(0), BreakerState::Closed);
    }

    #[test]
    fn failed_probe_reopens() {
        let tracker = enabled_tracker(1);
        for _ in 0..3 {
            tracker.record_failure(0);
        }
        while !tracker.allows(0) {}
        assert_eq!(tracker.state(0), BreakerState::HalfOpen);
        assert_eq!(tracker.record_failure(0), HealthTransition::Opened);
        assert_eq!(tracker.state(0), BreakerState::Open);
        assert_eq!(tracker.snapshot()[0].opened_total, 2);
    }

    #[test]
    fn probe_admission_is_seed_deterministic() {
        let draws = |seed: u64| -> Vec<bool> {
            let tracker = HealthTracker::new(
                1,
                HealthConfig {
                    breaker_enabled: true,
                    seed,
                    ..Default::default()
                },
            );
            for _ in 0..3 {
                tracker.record_failure(0);
            }
            (0..50)
                .map(|_| {
                    let admitted = tracker.allows(0);
                    if admitted {
                        // Fail the probe so the sequence keeps drawing.
                        tracker.record_failure(0);
                    }
                    admitted
                })
                .collect()
        };
        assert_eq!(draws(7), draws(7));
        assert_ne!(draws(7), draws(8));
    }

    #[test]
    fn ewma_tracks_latency() {
        let tracker = enabled_tracker(1);
        tracker.record_success(0, Duration::from_micros(100));
        assert_eq!(tracker.snapshot()[0].latency_ewma_us, Some(100.0));
        tracker.record_success(0, Duration::from_micros(200));
        // 100 + 0.2 * (200 - 100) = 120.
        let ewma = tracker.snapshot()[0].latency_ewma_us.unwrap();
        assert!((ewma - 120.0).abs() < 1e-9);
        // A success resets the consecutive-failure streak.
        tracker.record_failure(0);
        tracker.record_success(0, Duration::from_micros(100));
        assert_eq!(tracker.snapshot()[0].consecutive_failures, 0);
    }

    #[test]
    fn out_of_range_silos_are_harmless() {
        let tracker = enabled_tracker(1);
        assert_eq!(tracker.record_failure(9), HealthTransition::None);
        assert_eq!(
            tracker.record_success(9, Duration::ZERO),
            HealthTransition::None
        );
        assert!(tracker.allows(9));
        assert_eq!(tracker.state(9), BreakerState::Closed);
    }
}
