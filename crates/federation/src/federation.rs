//! The federation: silo workers plus the provider's own state.
//!
//! [`FederationBuilder::build`] stands the whole system up the way the
//! paper describes:
//!
//! 1. spawn one worker thread per partition ([`crate::transport`]);
//! 2. run Alg. 1 — send `BuildGrid` to every silo over the byte-counted
//!    channel, collect the per-silo grid indices `g_1 … g_m`, merge them
//!    into `g₀`, and precompute [`PrefixGrid`]s for O(1)/O(√|g₀|)
//!    provider-side sums;
//! 3. cache each silo's index-memory report for the Figs. 3d–9d metric.
//!
//! Setup traffic and query traffic are tracked by separate counters, so
//! experiments can report per-query communication cost net of the one-off
//! index construction, exactly like the paper ("the time to construct the
//! static indices excluded").

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Duration;

use fedra_geo::{Rect, SpatialObject};
use fedra_index::grid::{GridIndex, PrefixGrid};
use fedra_index::histogram::MinSkewConfig;
use fedra_index::pool::WorkerPool;
use fedra_index::rtree::RTreeConfig;
use fedra_index::GridPyramid;

use crate::fault::FaultPlan;
use crate::health::{HealthConfig, HealthTracker};
use crate::protocol::{Request, Response, SiloMemoryReport};
use crate::silo::{Silo, SiloConfig, SiloId};
use crate::snapshot::ProviderSnapshot;
use crate::transport::socket::{
    spawn_silo_socket, ReconnectPolicy, SiloAddr, SiloDiagnostics, SocketTransport,
};
use crate::transport::{
    spawn_silo, CallPolicy, CommCounters, CommSnapshot, SiloChannel, Transport, TransportBackend,
    TransportError,
};
use crate::wire::Wire;

/// Errors from standing a federation up ([`FederationBuilder::try_build`]).
#[derive(Debug, Clone, PartialEq)]
pub enum SetupError {
    /// No partitions were supplied — a federation needs at least one silo
    /// (local or remote).
    NoSilos,
    /// A [`FederationBuilder::connect_remote`] address would not parse.
    BadRemoteAddr {
        /// The address as supplied.
        addr: String,
        /// Why it was rejected.
        reason: String,
    },
    /// A silo's index-construction thread panicked.
    SiloBuildPanicked {
        /// Which silo.
        silo: SiloId,
    },
    /// The transport failed while running Alg. 1 (spawn failure, dead
    /// worker, undecodable frame, silo refusal).
    Transport(TransportError),
    /// A silo answered setup with the wrong response shape.
    Protocol {
        /// Which silo.
        silo: SiloId,
        /// What was wrong.
        message: String,
    },
}

impl std::fmt::Display for SetupError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SetupError::NoSilos => write!(f, "a federation needs at least one silo"),
            SetupError::BadRemoteAddr { addr, reason } => {
                write!(f, "remote silo address `{addr}` is invalid: {reason}")
            }
            SetupError::SiloBuildPanicked { silo } => {
                write!(f, "silo {silo} index construction panicked")
            }
            SetupError::Transport(e) => write!(f, "setup transport failed: {e}"),
            SetupError::Protocol { silo, message } => {
                write!(f, "silo {silo} violated the setup protocol: {message}")
            }
        }
    }
}

impl std::error::Error for SetupError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            SetupError::Transport(e) => Some(e),
            _ => None,
        }
    }
}

impl From<TransportError> for SetupError {
    fn from(e: TransportError) -> Self {
        SetupError::Transport(e)
    }
}

/// What the federation should do when a query cannot reach its full silo
/// complement even after the call policy's retries and hedges
/// (DESIGN.md §5i).
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub enum DegradePolicy {
    /// Fail the query (today's behavior, the default): EXACT/OPTA return
    /// `SiloFailed`, estimators fall back to the provider-only grid
    /// estimate without a coverage annotation. Bit-identical to a
    /// federation built before this policy existed.
    #[default]
    FailFast,
    /// Answer from whatever is reachable, carrying an honest coverage
    /// record with an inflated error bound. Queries whose reachable
    /// subset falls below either floor still fail.
    Partial {
        /// Minimum number of responding silos required to emit a
        /// degraded answer (0 = a provider-only grid answer is allowed).
        min_silos: usize,
        /// Minimum fraction of the in-range mass (per-silo grids) that
        /// must be backed by live answers, in `[0, 1]`.
        min_coverage: f64,
    },
}

impl DegradePolicy {
    /// Whether degraded (partial-coverage) answers are allowed at all.
    pub fn allows_partial(&self) -> bool {
        matches!(self, DegradePolicy::Partial { .. })
    }

    /// Whether a degraded answer backed by `responding` silos covering
    /// `mass_fraction` of the in-range mass meets this policy's floors.
    /// `FailFast` accepts nothing.
    pub fn accepts(&self, responding: usize, mass_fraction: f64) -> bool {
        match *self {
            DegradePolicy::FailFast => false,
            DegradePolicy::Partial {
                min_silos,
                min_coverage,
            } => responding >= min_silos && mass_fraction >= min_coverage,
        }
    }
}

/// Builder for a [`Federation`].
#[derive(Debug, Clone)]
pub struct FederationBuilder {
    bounds: Rect,
    grid_cell_len: f64,
    rtree: RTreeConfig,
    histogram: MinSkewConfig,
    lsr_seed: u64,
    silo_threads: usize,
    latency: Option<Duration>,
    message_overhead: u64,
    warm_start: Option<ProviderSnapshot>,
    fault_plan: Option<FaultPlan>,
    call_policy: CallPolicy,
    health: HealthConfig,
    degrade: DegradePolicy,
    reconnect: ReconnectPolicy,
    transport: Option<TransportBackend>,
    remotes: Vec<String>,
}

impl FederationBuilder {
    /// Starts a builder for a federation covering `bounds`.
    pub fn new(bounds: Rect) -> Self {
        Self {
            bounds,
            grid_cell_len: 1.0,
            rtree: RTreeConfig::default(),
            histogram: MinSkewConfig::default(),
            lsr_seed: 0x000F_ED0A,
            silo_threads: 0,
            latency: None,
            message_overhead: crate::transport::DEFAULT_MESSAGE_OVERHEAD,
            warm_start: None,
            fault_plan: None,
            call_policy: CallPolicy::default(),
            health: HealthConfig::default(),
            degrade: DegradePolicy::default(),
            reconnect: ReconnectPolicy::default(),
            transport: None,
            remotes: Vec::new(),
        }
    }

    /// Chooses the [`Transport`] backend local silos are stood up behind.
    /// Unset (the default), the `FEDRA_TRANSPORT` environment variable
    /// decides ([`TransportBackend::from_env`]), falling back to the
    /// deterministic in-memory backend — so existing callers and the
    /// tier-1 suite are unaffected, while the whole test matrix can be
    /// re-run over real sockets by exporting `FEDRA_TRANSPORT=socket`.
    pub fn transport_backend(mut self, backend: TransportBackend) -> Self {
        self.transport = Some(backend);
        self
    }

    /// Adds a **remote** silo served by a `fedra-silo serve` process at
    /// `addr` (`tcp:host:port`, `unix:/path`, or bare `host:port`).
    ///
    /// Remote silos join the federation after the local partitions, in
    /// the order added, and participate in Alg. 1 setup and every query
    /// exactly like local ones — the remote process must have been
    /// started with the same bounds / LSR seed for answers to line up
    /// (see the `fedra-silo` flags). Fault injection
    /// ([`FederationBuilder::fault_plan`]) applies to local silos only;
    /// faults on a remote silo belong to its own process.
    pub fn connect_remote(mut self, addr: impl Into<String>) -> Self {
        self.remotes.push(addr.into());
        self
    }

    /// Sets the grid cell length `L` (paper default 1 km, swept in Fig. 5).
    pub fn grid_cell_len(mut self, cell_len: f64) -> Self {
        self.grid_cell_len = cell_len;
        self
    }

    /// Sets the R-tree fanout used by all silo indexes.
    pub fn rtree_config(mut self, config: RTreeConfig) -> Self {
        self.rtree = config;
        self
    }

    /// Sets the OPTA histogram parameters.
    pub fn histogram_config(mut self, config: MinSkewConfig) -> Self {
        self.histogram = config;
        self
    }

    /// Seeds the LSR-Forest level sampling (reproducible experiments).
    pub fn lsr_seed(mut self, seed: u64) -> Self {
        self.lsr_seed = seed;
        self
    }

    /// Sets the intra-silo worker-pool size ([`SiloConfig::threads`]);
    /// the provider-side grid merge and prefix builds use the same size.
    /// `0` (the default) sizes the pool automatically from the host's
    /// cores (clamped, `FEDRA_SILO_THREADS` override). Every value
    /// produces bit-identical query results — the knob trades nothing but
    /// wall-clock.
    pub fn silo_threads(mut self, threads: usize) -> Self {
        self.silo_threads = threads;
        self
    }

    /// Adds a fixed simulated network latency to every silo response.
    pub fn simulated_latency(mut self, latency: Duration) -> Self {
        self.latency = Some(latency);
        self
    }

    /// Sets the per-message envelope overhead charged by the
    /// communication-cost metric (default
    /// [`crate::transport::DEFAULT_MESSAGE_OVERHEAD`]; 0 = pure payload).
    pub fn message_overhead(mut self, bytes: u64) -> Self {
        self.message_overhead = bytes;
        self
    }

    /// Installs a deterministic [`FaultPlan`]: each listed silo's worker
    /// injects latency, drops, transient refusals, flap windows or a crash
    /// according to its spec, reproducibly from the plan seed. Faults stay
    /// disarmed during Alg. 1 setup and arm automatically once the
    /// federation is up ([`Federation::set_faults_armed`] toggles later).
    pub fn fault_plan(mut self, plan: FaultPlan) -> Self {
        self.fault_plan = Some(plan);
        self
    }

    /// Sets the retry/deadline/hedging policy query drivers should apply
    /// to scatter-gather calls (exposed via [`Federation::call_policy`];
    /// the transport itself stays policy-free).
    pub fn call_policy(mut self, policy: CallPolicy) -> Self {
        self.call_policy = policy;
        self
    }

    /// Configures the per-silo health tracker / circuit breaker
    /// ([`Federation::health`]). The default config is passive — it
    /// records outcomes but never blocks a silo.
    pub fn health_config(mut self, config: HealthConfig) -> Self {
        self.health = config;
        self
    }

    /// Sets the degraded-answer policy ([`Federation::degrade_policy`]).
    /// The default, [`DegradePolicy::FailFast`], keeps today's behavior
    /// bit-for-bit; [`DegradePolicy::Partial`] lets query drivers answer
    /// from the reachable subset with an honest coverage record.
    pub fn degrade_policy(mut self, policy: DegradePolicy) -> Self {
        self.degrade = policy;
        self
    }

    /// Sets the socket transport's reconnect policy (attempts, capped
    /// exponential backoff, seeded jitter). Only socket-backed and remote
    /// silos consult it; the default reproduces the historical 3-attempt
    /// cap. Supervised deployments typically pair
    /// [`crate::transport::socket::ReconnectAttempts::Unbounded`] with an
    /// enabled circuit breaker.
    pub fn reconnect_policy(mut self, policy: ReconnectPolicy) -> Self {
        self.reconnect = policy;
        self
    }

    /// Supplies a previous run's [`ProviderSnapshot`]: silos whose grid
    /// checksum still matches skip the cell-vector transfer of Alg. 1
    /// (the provider reuses the cached cells); mismatching silos fall
    /// back to a full transfer transparently.
    pub fn warm_start(mut self, snapshot: ProviderSnapshot) -> Self {
        self.warm_start = Some(snapshot);
        self
    }

    /// Builds silos from the partitions and runs Alg. 1.
    ///
    /// Convenience wrapper over [`FederationBuilder::try_build`] for
    /// experiments and examples that have no setup-failure story.
    ///
    /// # Panics
    /// Panics if setup fails for any reason — including an empty
    /// `partitions` (a federation needs at least one silo). Fallible
    /// callers should use [`FederationBuilder::try_build`].
    pub fn build(self, partitions: Vec<Vec<SpatialObject>>) -> Federation {
        // Documented-panic convenience API; the recoverable path is try_build.
        self.try_build(partitions)
            .unwrap_or_else(|e| panic!("federation setup failed: {e}")) // fedra-lint: allow(panic-discipline)
    }

    /// Builds silos from the partitions and runs Alg. 1, surfacing setup
    /// failures as [`SetupError`] instead of panicking.
    pub fn try_build(self, partitions: Vec<Vec<SpatialObject>>) -> Result<Federation, SetupError> {
        if partitions.is_empty() && self.remotes.is_empty() {
            return Err(SetupError::NoSilos);
        }
        // Fail fast on malformed remote addresses, before any index work.
        let remote_addrs: Vec<SiloAddr> = self
            .remotes
            .iter()
            .map(|addr| {
                SiloAddr::parse(addr).map_err(|reason| SetupError::BadRemoteAddr {
                    addr: addr.clone(),
                    reason,
                })
            })
            .collect::<Result<_, _>>()?;
        let backend = self.transport.unwrap_or_else(TransportBackend::from_env);
        let setup_stats = Arc::new(CommCounters::with_overhead(self.message_overhead));
        let query_stats = Arc::new(CommCounters::with_overhead(self.message_overhead));

        // Silo construction (index builds) happens in parallel: for the
        // multi-million-object sweeps this dominates setup wall-clock.
        let silo_config = |_: SiloId| SiloConfig {
            rtree: self.rtree,
            histogram: self.histogram,
            bounds: self.bounds,
            lsr_seed: self.lsr_seed,
            threads: self.silo_threads,
        };
        let silos: Vec<Silo> = std::thread::scope(|scope| {
            let handles: Vec<_> = partitions
                .into_iter()
                .enumerate()
                .map(|(id, objects)| {
                    let config = silo_config(id);
                    scope.spawn(move || Silo::new(id, objects, config))
                })
                .collect();
            handles
                .into_iter()
                .enumerate()
                .map(|(id, h)| {
                    h.join()
                        .map_err(|_| SetupError::SiloBuildPanicked { silo: id })
                })
                .collect::<Result<Vec<_>, _>>()
        })?;

        // Faults stay disarmed while Alg. 1 runs — the injector consumes
        // neither its schedule counter nor its RNG until armed, so setup
        // traffic never perturbs the chaos schedule.
        let fault_armed = Arc::new(AtomicBool::new(false));
        let mut channels = Vec::with_capacity(silos.len() + remote_addrs.len());
        let mut workers = Vec::with_capacity(silos.len());
        for silo in silos {
            let injector = self
                .fault_plan
                .as_ref()
                .and_then(|plan| plan.injector_for(silo.id(), Arc::clone(&fault_armed)));
            let (channel, handle) = match backend {
                TransportBackend::InMemory => {
                    spawn_silo(silo, Arc::clone(&setup_stats), self.latency, injector)?
                }
                TransportBackend::Socket => spawn_silo_socket(
                    silo,
                    Arc::clone(&setup_stats),
                    self.latency,
                    injector,
                    self.reconnect,
                )?,
            };
            channels.push(channel);
            workers.push(handle);
        }
        // Remote silos join after the local partitions, ids continuing.
        for addr in remote_addrs {
            let id = channels.len();
            let transport =
                SocketTransport::connect_with(id, addr, SiloDiagnostics::remote(), self.reconnect)?;
            channels.push(SiloChannel::over(
                Arc::new(transport) as Arc<dyn Transport>,
                Arc::clone(&setup_stats),
            ));
        }

        // A warm-start snapshot is usable only when its geometry and silo
        // count match this build.
        let snapshot = self.warm_start.filter(|s| {
            s.bounds == self.bounds
                && s.cell_len == self.grid_cell_len
                && s.num_silos() == channels.len()
        });

        // Provider-side worker pool: warm-grid materialization, the g_0
        // merge, and the prefix builds all fan out on it. Sized like the
        // silos' pools so one knob governs the whole deployment.
        let pool = WorkerPool::new(self.silo_threads);
        // Rebuild all cached grids up front (in parallel) instead of
        // lazily inside the reply loop; each GridAck then *takes* its
        // entry, so an unsolicited ack still surfaces as a protocol error.
        let mut warm_grids: Vec<Option<GridIndex>> = match snapshot.as_ref() {
            Some(s) => s.materialize_with(&pool).into_iter().map(Some).collect(),
            None => Vec::new(),
        };

        // Alg. 1: collect g_1 … g_m, merge into g_0. Each silo receives
        // ONE coalesced [BuildGrid, MemoryReport] frame, and every frame
        // is begun before any reply is awaited — setup is a single
        // batched round per silo (plus one fallback round per warm-start
        // miss) and the per-silo grid builds run concurrently on the
        // worker threads instead of serializing through the provider.
        let build_request = Request::BuildGrid {
            bounds: self.bounds,
            cell_len: self.grid_cell_len,
            // Warm mode asks for a checksum-only build; the cached cell
            // vectors are reused when the silo's data still matches.
            return_cells: snapshot.is_none(),
        };
        let pending = channels
            .iter()
            .map(|channel| channel.begin_batch(&[&build_request, &Request::MemoryReport]))
            .collect::<Result<Vec<_>, TransportError>>()?;

        let mut silo_grids: Vec<Option<GridIndex>> = Vec::with_capacity(channels.len());
        let mut memory_reports = Vec::with_capacity(channels.len());
        let mut warm_hits = 0usize;
        for (k, pending) in pending.into_iter().enumerate() {
            let mut items = pending.wait()?;
            let (memory, build) = match (items.pop(), items.pop(), items.pop()) {
                (Some(memory), Some(build), None) => (memory, build),
                _ => {
                    return Err(SetupError::Protocol {
                        silo: k,
                        message: "setup batch must answer exactly two items".into(),
                    })
                }
            };
            let grid =
                match build? {
                    Response::GridAck { total, outside } => {
                        let cached =
                            warm_grids
                                .get_mut(k)
                                .and_then(Option::take)
                                .ok_or_else(|| SetupError::Protocol {
                                    silo: k,
                                    message: "unsolicited GridAck (no warm-start snapshot)".into(),
                                })?;
                        if cached.total() == total && cached.outside_count() == outside {
                            warm_hits += 1;
                            Some(cached)
                        } else {
                            None // stale snapshot entry: full transfer below
                        }
                    }
                    grid_response => Some(grid_response.into_grid_index().ok_or_else(|| {
                        SetupError::Protocol {
                            silo: k,
                            message: "BuildGrid did not return a grid payload".into(),
                        }
                    })?),
                };
            silo_grids.push(grid);
            match memory {
                Ok(Response::Memory(m)) => memory_reports.push(m),
                Ok(other) => {
                    return Err(SetupError::Protocol {
                        silo: k,
                        message: format!("unexpected memory report response: {other:?}"),
                    })
                }
                Err(e) => return Err(SetupError::Transport(e)),
            }
        }

        // Warm-start misses fall back to a full cell transfer — also
        // pipelined, one extra round per stale silo only.
        let misses: Vec<SiloId> = silo_grids
            .iter()
            .enumerate()
            .filter(|(_, g)| g.is_none())
            .map(|(k, _)| k)
            .collect();
        if !misses.is_empty() {
            let full = Request::BuildGrid {
                bounds: self.bounds,
                cell_len: self.grid_cell_len,
                return_cells: true,
            }
            .to_bytes();
            let pending = misses
                .iter()
                .map(|&k| channels[k].begin_call_encoded(full.clone()))
                .collect::<Result<Vec<_>, TransportError>>()?;
            for (&k, pending) in misses.iter().zip(pending) {
                let grid =
                    pending
                        .wait()?
                        .into_grid_index()
                        .ok_or_else(|| SetupError::Protocol {
                            silo: k,
                            message: "BuildGrid did not return a grid payload".into(),
                        })?;
                silo_grids[k] = Some(grid);
            }
        }
        let silo_grids: Vec<GridIndex> = silo_grids
            .into_iter()
            .enumerate()
            .map(|(k, g)| {
                g.ok_or(SetupError::Protocol {
                    silo: k,
                    message: "silo grid never resolved during setup".into(),
                })
            })
            .collect::<Result<_, _>>()?;
        let grid_refs: Vec<&GridIndex> = silo_grids.iter().collect();
        let merged = GridIndex::merge_with(&grid_refs, &pool).ok_or(SetupError::NoSilos)?;
        let merged_prefix = PrefixGrid::build(&merged);
        let merged_pyramid = GridPyramid::build_with(&merged, &pool);
        let silo_prefixes = pool.map(&silo_grids, |_, g| PrefixGrid::build(g));

        // From here on, traffic counts as query traffic.
        let setup_snapshot = setup_stats.snapshot();
        for channel in &mut channels {
            *channel = channel.with_comm(Arc::clone(&query_stats));
        }
        // Setup is done — arm the fault injectors for query traffic.
        fault_armed.store(true, Ordering::Release);

        let health = HealthTracker::new(channels.len(), self.health);
        Ok(Federation {
            bounds: self.bounds,
            channels,
            workers,
            silo_grids,
            silo_prefixes,
            merged,
            merged_prefix,
            merged_pyramid,
            memory_reports,
            setup_snapshot,
            query_stats,
            warm_hits,
            call_policy: self.call_policy,
            health,
            degrade: self.degrade,
            fault_armed,
        })
    }
}

/// A running federation: worker threads + the provider's indices.
///
/// ```
/// use fedra_federation::{FederationBuilder, LocalMode, Request, Response};
/// use fedra_geo::{Point, Range, Rect, SpatialObject};
///
/// // Two silos, five objects each.
/// let partitions: Vec<Vec<SpatialObject>> = (0..2)
///     .map(|s| (0..5).map(|i| SpatialObject::at(i as f64, s as f64, 1.0)).collect())
///     .collect();
/// let federation = FederationBuilder::new(
///     Rect::new(Point::new(0.0, 0.0), Point::new(10.0, 10.0)),
/// )
/// .grid_cell_len(2.0)
/// .build(partitions);
///
/// // Alg. 1 ran at build time: the provider holds g₀.
/// assert_eq!(federation.total_objects(), 10.0);
///
/// // Every interaction goes over the byte-counted channel.
/// let answer = federation.call(0, &Request::Aggregate {
///     range: Range::circle(Point::new(2.0, 0.0), 1.5),
///     mode: LocalMode::Exact,
/// }).unwrap();
/// assert!(matches!(answer, Response::Agg(a) if a.count == 3.0));
/// assert_eq!(federation.query_comm().rounds, 1);
/// ```
pub struct Federation {
    bounds: Rect,
    channels: Vec<SiloChannel>,
    workers: Vec<JoinHandle<()>>,
    silo_grids: Vec<GridIndex>,
    silo_prefixes: Vec<PrefixGrid>,
    merged: GridIndex,
    merged_prefix: PrefixGrid,
    merged_pyramid: GridPyramid,
    memory_reports: Vec<SiloMemoryReport>,
    setup_snapshot: CommSnapshot,
    query_stats: Arc<CommCounters>,
    warm_hits: usize,
    call_policy: CallPolicy,
    health: HealthTracker,
    degrade: DegradePolicy,
    fault_armed: Arc<AtomicBool>,
}

impl Federation {
    /// Number of silos `m`.
    pub fn num_silos(&self) -> usize {
        self.channels.len()
    }

    /// Region the federation covers.
    pub fn bounds(&self) -> Rect {
        self.bounds
    }

    /// The provider's channel to silo `k`.
    ///
    /// # Panics
    /// Panics on an out-of-range id.
    pub fn channel(&self, silo: SiloId) -> &SiloChannel {
        &self.channels[silo]
    }

    /// Calls silo `k` (convenience for `channel(k).call(..)`).
    pub fn call(
        &self,
        silo: SiloId,
        request: &Request,
    ) -> Result<crate::protocol::Response, TransportError> {
        self.channels[silo].call(request)
    }

    /// Sends one request to *every* silo concurrently; results come back
    /// in silo order.
    ///
    /// The frame is encoded once (the clone per silo is O(1) — `Bytes` is
    /// reference-counted) and begun on all channels before any reply is
    /// awaited, so the per-silo worker threads execute in parallel. This
    /// is the EXACT/OPTA fan-out primitive: `m` silos, `m` rounds, zero
    /// provider-side threads spawned.
    pub fn broadcast(&self, request: &Request) -> Vec<Result<Response, TransportError>> {
        let frame = request.to_bytes();
        let pending: Vec<_> = self
            .channels
            .iter()
            .map(|channel| channel.begin_call_encoded(frame.clone()))
            .collect();
        pending
            .into_iter()
            .map(|p| p.and_then(|call| call.wait()))
            .collect()
    }

    /// Per-silo grid index `g_k` held by the provider.
    pub fn silo_grid(&self, silo: SiloId) -> &GridIndex {
        &self.silo_grids[silo]
    }

    /// Per-silo cumulative array over `g_k`.
    pub fn silo_prefix(&self, silo: SiloId) -> &PrefixGrid {
        &self.silo_prefixes[silo]
    }

    /// The merged federation grid `g₀`.
    pub fn merged_grid(&self) -> &GridIndex {
        &self.merged
    }

    /// The cumulative array over `g₀`.
    pub fn merged_prefix(&self) -> &PrefixGrid {
        &self.merged_prefix
    }

    /// The multi-resolution coarsening pyramid over `g₀` (levels L1..Lk,
    /// each with its own prefix array). Built once at setup on the same
    /// worker pool as the merge, bit-identical at every pool size.
    pub fn merged_pyramid(&self) -> &GridPyramid {
        &self.merged_pyramid
    }

    /// Total objects across the federation (from `g₀`; objects outside the
    /// grid bounds are excluded).
    pub fn total_objects(&self) -> f64 {
        self.merged.total().count
    }

    /// Cached per-silo index memory reports.
    pub fn silo_memory_reports(&self) -> &[SiloMemoryReport] {
        &self.memory_reports
    }

    /// Provider-side index memory (per-silo grids + merged + prefixes +
    /// pyramid levels).
    pub fn provider_memory_bytes(&self) -> u64 {
        use fedra_index::IndexMemory;
        let grids: usize = self.silo_grids.iter().map(|g| g.memory_bytes()).sum();
        let prefixes: usize = self.silo_prefixes.iter().map(|p| p.memory_bytes()).sum();
        (grids
            + prefixes
            + self.merged.memory_bytes()
            + self.merged_prefix.memory_bytes()
            + self.merged_pyramid.memory_bytes()) as u64
    }

    /// Traffic consumed by Alg. 1 (one-off setup).
    pub fn setup_comm(&self) -> CommSnapshot {
        self.setup_snapshot
    }

    /// Number of silos whose grids were reused from a warm-start snapshot.
    pub fn warm_start_hits(&self) -> usize {
        self.warm_hits
    }

    /// Captures the provider's grid state for a future warm start
    /// ([`FederationBuilder::warm_start`]).
    pub fn snapshot(&self) -> ProviderSnapshot {
        ProviderSnapshot {
            bounds: self.bounds,
            cell_len: self.merged.spec().cell_len(),
            grids: self
                .silo_grids
                .iter()
                .map(|g| (g.cells().to_vec(), g.outside_count()))
                .collect(),
        }
    }

    /// Cumulative query-time traffic.
    pub fn query_comm(&self) -> CommSnapshot {
        self.query_stats.snapshot()
    }

    /// Zeroes the query-time traffic counters (per-experiment accounting).
    pub fn reset_query_comm(&self) {
        self.query_stats.reset();
    }

    /// Injects or clears a silo failure.
    pub fn set_silo_failed(&self, silo: SiloId, failed: bool) {
        self.channels[silo].set_failed(failed);
    }

    /// Ids of silos currently marked failed.
    pub fn failed_silos(&self) -> Vec<SiloId> {
        self.channels
            .iter()
            .filter(|c| c.is_failed())
            .map(|c| c.id())
            .collect()
    }

    /// Requests served per silo (load-balance diagnostics; Alg. 4 predicts
    /// ≈ |Q|/m each).
    pub fn served_per_silo(&self) -> Vec<u64> {
        self.channels.iter().map(|c| c.served()).collect()
    }

    /// The retry/deadline/hedging policy configured at build time
    /// ([`FederationBuilder::call_policy`]). Query drivers consult this;
    /// the transport itself never retries on its own.
    pub fn call_policy(&self) -> &CallPolicy {
        &self.call_policy
    }

    /// The per-silo health tracker / circuit breaker. Passive unless a
    /// non-default [`HealthConfig`] was supplied at build time.
    pub fn health(&self) -> &HealthTracker {
        &self.health
    }

    /// The degraded-answer policy configured at build time
    /// ([`FederationBuilder::degrade_policy`]). Query drivers consult
    /// this when a query cannot reach its full silo complement.
    pub fn degrade_policy(&self) -> DegradePolicy {
        self.degrade
    }

    /// Arms or disarms the fault injectors installed by
    /// [`FederationBuilder::fault_plan`]. Disarmed requests consume
    /// neither the schedule counter nor the fault RNG, so truth
    /// computations can run fault-free before a chaos phase starts.
    pub fn set_faults_armed(&self, armed: bool) {
        self.fault_armed.store(armed, Ordering::Release);
    }

    /// Whether fault injection is currently armed.
    pub fn faults_armed(&self) -> bool {
        self.fault_armed.load(Ordering::Acquire)
    }

    /// Silo `k`'s own metrics registry (request counts by kind, batch
    /// sizes, LSR level-selection counters). Panics if `k` is out of
    /// range, like [`Federation::channel`].
    pub fn silo_metrics(&self, silo: SiloId) -> &Arc<fedra_obs::MetricsRegistry> {
        self.channels[silo].silo_metrics()
    }
}

impl Drop for Federation {
    fn drop(&mut self) {
        // Dropping the channels closes the workers' request streams.
        self.channels.clear();
        for worker in self.workers.drain(..) {
            let _ = worker.join();
        }
    }
}

impl std::fmt::Debug for Federation {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Federation")
            .field("silos", &self.channels.len())
            .field("bounds", &self.bounds)
            .field("grid_cells", &self.merged.spec().num_cells())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::protocol::{LocalMode, Response};
    use fedra_geo::{Point, Range};

    fn bounds() -> Rect {
        Rect::new(Point::new(0.0, 0.0), Point::new(100.0, 100.0))
    }

    fn partitions(m: usize, per_silo: usize) -> Vec<Vec<SpatialObject>> {
        let mut state = 99u64;
        (0..m)
            .map(|_| {
                (0..per_silo)
                    .map(|i| {
                        state = state
                            .wrapping_mul(6364136223846793005)
                            .wrapping_add(1442695040888963407);
                        let x = (state >> 11) as f64 / (1u64 << 53) as f64 * 100.0;
                        state = state
                            .wrapping_mul(6364136223846793005)
                            .wrapping_add(1442695040888963407);
                        let y = (state >> 11) as f64 / (1u64 << 53) as f64 * 100.0;
                        SpatialObject::at(x, y, (i % 3) as f64 + 1.0)
                    })
                    .collect()
            })
            .collect()
    }

    fn small_federation(m: usize, per_silo: usize) -> Federation {
        FederationBuilder::new(bounds())
            .grid_cell_len(10.0)
            .histogram_config(MinSkewConfig {
                resolution: 16,
                budget: 16,
            })
            .build(partitions(m, per_silo))
    }

    #[test]
    fn build_merges_grids() {
        let fed = small_federation(3, 500);
        assert_eq!(fed.num_silos(), 3);
        assert_eq!(fed.total_objects(), 1500.0);
        // g0 == sum of g_k cell-wise.
        let spec = *fed.merged_grid().spec();
        for id in 0..spec.num_cells() as u32 {
            let merged = fed.merged_grid().cell(id).count;
            let parts: f64 = (0..3).map(|k| fed.silo_grid(k).cell(id).count).sum();
            assert_eq!(merged, parts);
        }
    }

    #[test]
    fn merged_pyramid_conserves_mass() {
        let fed = small_federation(3, 500);
        let p = fed.merged_pyramid();
        assert!(p.num_levels() >= 1);
        let spec = fed.merged_grid().spec();
        let total = fed.merged_grid().total();
        for l in 1..=p.num_levels() as u32 {
            let level = p.level(l as usize);
            let coarse = p.rect_sum(l as usize, 0, 0, level.nx() - 1, level.ny() - 1);
            assert_eq!(coarse.count.to_bits(), total.count.to_bits());
            assert_eq!(coarse.sum.to_bits(), total.sum.to_bits());
        }
        // Pyramid geometry matches the merged grid.
        assert_eq!(p.spec(), spec);
    }

    #[test]
    fn setup_comm_counts_grid_transfer() {
        let fed = small_federation(3, 100);
        let setup = fed.setup_comm();
        // One batched [BuildGrid, MemoryReport] round per silo.
        assert_eq!(setup.rounds, 3);
        // Each grid response carries 100 cells × 24 bytes.
        assert!(setup.bytes_down > 3 * 100 * 24);
        // Query counters start clean.
        assert_eq!(fed.query_comm().rounds, 0);
    }

    #[test]
    fn broadcast_reaches_every_silo_in_order() {
        let fed = small_federation(3, 200);
        let q = Range::circle(Point::new(50.0, 50.0), 20.0);
        let request = Request::Aggregate {
            range: q,
            mode: LocalMode::Exact,
        };
        let before = fed.query_comm();
        let results = fed.broadcast(&request);
        assert_eq!(results.len(), 3);
        let mut total = 0.0;
        for (k, result) in results.into_iter().enumerate() {
            match result.unwrap() {
                Response::Agg(a) => {
                    // Silo order: each reply matches a direct call.
                    let direct = fed.call(k, &request).unwrap();
                    assert_eq!(direct, Response::Agg(a));
                    total += a.count;
                }
                other => panic!("unexpected {other:?}"),
            }
        }
        assert!(total > 0.0);
        // The broadcast itself is one round per silo.
        assert_eq!(fed.query_comm().since(&before).rounds, 6); // 3 broadcast + 3 direct
    }

    #[test]
    fn broadcast_surfaces_per_silo_failures() {
        let fed = small_federation(3, 50);
        fed.set_silo_failed(1, true);
        let results = fed.broadcast(&Request::Ping);
        assert_eq!(results[0], Ok(Response::Pong));
        assert!(matches!(
            results[1],
            Err(TransportError::Remote { silo: 1, .. })
        ));
        assert_eq!(results[2], Ok(Response::Pong));
    }

    #[test]
    fn query_comm_accumulates_and_resets() {
        let fed = small_federation(2, 100);
        let q = Range::circle(Point::new(50.0, 50.0), 10.0);
        fed.call(
            0,
            &Request::Aggregate {
                range: q,
                mode: LocalMode::Exact,
            },
        )
        .unwrap();
        let snap = fed.query_comm();
        assert_eq!(snap.rounds, 1);
        assert!(snap.total_bytes() > 0);
        fed.reset_query_comm();
        assert_eq!(fed.query_comm().rounds, 0);
    }

    #[test]
    fn exact_fanout_matches_bruteforce() {
        let parts = partitions(4, 400);
        let all: Vec<SpatialObject> = parts.iter().flatten().copied().collect();
        let fed = FederationBuilder::new(bounds())
            .grid_cell_len(5.0)
            .histogram_config(MinSkewConfig {
                resolution: 16,
                budget: 16,
            })
            .build(parts);
        let q = Range::circle(Point::new(50.0, 50.0), 20.0);
        let mut total = 0.0;
        for k in 0..fed.num_silos() {
            match fed
                .call(
                    k,
                    &Request::Aggregate {
                        range: q,
                        mode: LocalMode::Exact,
                    },
                )
                .unwrap()
            {
                Response::Agg(a) => total += a.count,
                other => panic!("unexpected {other:?}"),
            }
        }
        let brute = all.iter().filter(|o| q.contains_point(&o.location)).count() as f64;
        assert_eq!(total, brute);
    }

    #[test]
    fn failure_injection_round_trips() {
        let fed = small_federation(2, 50);
        assert!(fed.failed_silos().is_empty());
        fed.set_silo_failed(1, true);
        assert_eq!(fed.failed_silos(), vec![1]);
        let err = fed.call(1, &Request::Ping).expect_err("failed silo");
        assert!(matches!(err, TransportError::Remote { silo: 1, .. }));
        assert!(fed.call(0, &Request::Ping).is_ok());
        fed.set_silo_failed(1, false);
        assert!(fed.call(1, &Request::Ping).is_ok());
    }

    #[test]
    fn memory_reports_are_cached() {
        let fed = small_federation(3, 200);
        let reports = fed.silo_memory_reports();
        assert_eq!(reports.len(), 3);
        for r in reports {
            assert!(r.rtree > 0);
            assert!(r.grid > 0);
        }
        assert!(fed.provider_memory_bytes() > 0);
    }

    #[test]
    fn served_counters_start_at_setup_level() {
        let fed = small_federation(2, 50);
        // BuildGrid + MemoryReport each.
        assert_eq!(fed.served_per_silo(), vec![2, 2]);
    }

    #[test]
    #[should_panic(expected = "at least one silo")]
    fn empty_federation_is_rejected() {
        FederationBuilder::new(bounds()).build(vec![]);
    }

    #[test]
    fn try_build_surfaces_setup_errors() {
        let err = FederationBuilder::new(bounds())
            .try_build(vec![])
            .expect_err("no silos");
        assert_eq!(err, SetupError::NoSilos);
        assert!(err.to_string().contains("at least one silo"));
    }

    #[test]
    fn try_build_succeeds_on_a_real_federation() {
        let fed = FederationBuilder::new(bounds())
            .grid_cell_len(10.0)
            .try_build(partitions(2, 50))
            .expect("setup succeeds");
        assert_eq!(fed.num_silos(), 2);
        assert_eq!(fed.total_objects(), 100.0);
    }

    #[test]
    fn degrade_policy_floors() {
        assert_eq!(DegradePolicy::default(), DegradePolicy::FailFast);
        assert!(!DegradePolicy::FailFast.allows_partial());
        assert!(!DegradePolicy::FailFast.accepts(3, 1.0));
        let p = DegradePolicy::Partial {
            min_silos: 1,
            min_coverage: 0.5,
        };
        assert!(p.allows_partial());
        assert!(p.accepts(1, 0.5));
        assert!(!p.accepts(0, 0.9));
        assert!(!p.accepts(2, 0.49));
        // The default federation carries FailFast.
        let fed = small_federation(2, 10);
        assert_eq!(fed.degrade_policy(), DegradePolicy::FailFast);
    }

    #[test]
    fn drop_joins_workers() {
        let fed = small_federation(2, 10);
        drop(fed); // must not hang or panic
    }
}
