//! Byte-counted communication accounting.
//!
//! These types used to live in `fedra_federation::transport` as
//! `CommStats`; they are owned by the observability crate now so the
//! transport, the engine, and the exporters all share one definition.
//! The old names remain available from the transport module as
//! deprecated aliases.

use std::sync::atomic::{AtomicU64, Ordering};

/// Per-message envelope overhead, in bytes, charged on top of the payload
/// in each direction.
///
/// Real federations speak RPC over TLS: every request and response pays
/// for TCP/IP + TLS record + HTTP/2 (or gRPC) framing before the first
/// payload byte — roughly half a kilobyte per message in practice. This
/// constant is what makes the fan-out algorithms' O(m) *message* count
/// visible in the byte totals, exactly as in the paper's measured setup;
/// set it to 0 via [`CommCounters::with_overhead`] to count pure payload.
pub const DEFAULT_MESSAGE_OVERHEAD: u64 = 512;

/// Communication counters, shared across threads.
///
/// "Up" is provider → silo (requests), "down" is silo → provider
/// (responses). `rounds` counts request/response pairs — the paper's
/// "rounds of interaction". Each recorded message is charged the
/// configured per-message envelope overhead in addition to its payload.
#[derive(Debug)]
pub struct CommCounters {
    bytes_up: AtomicU64,
    bytes_down: AtomicU64,
    rounds: AtomicU64,
    overhead: u64,
}

impl Default for CommCounters {
    fn default() -> Self {
        Self::with_overhead(DEFAULT_MESSAGE_OVERHEAD)
    }
}

/// A point-in-time copy of [`CommCounters`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct CommSnapshot {
    /// Total provider → silo bytes.
    pub bytes_up: u64,
    /// Total silo → provider bytes.
    pub bytes_down: u64,
    /// Total request/response rounds.
    pub rounds: u64,
}

impl CommSnapshot {
    /// Total bytes in both directions.
    pub fn total_bytes(&self) -> u64 {
        self.bytes_up + self.bytes_down
    }

    /// Difference since an earlier snapshot (for per-query accounting).
    pub fn since(&self, earlier: &CommSnapshot) -> CommSnapshot {
        CommSnapshot {
            bytes_up: self.bytes_up - earlier.bytes_up,
            bytes_down: self.bytes_down - earlier.bytes_down,
            rounds: self.rounds - earlier.rounds,
        }
    }
}

impl CommCounters {
    /// Creates counters with an explicit per-message envelope overhead.
    pub fn with_overhead(overhead: u64) -> Self {
        Self {
            bytes_up: AtomicU64::new(0),
            bytes_down: AtomicU64::new(0),
            rounds: AtomicU64::new(0),
            overhead,
        }
    }

    /// The configured per-message envelope overhead.
    pub fn overhead(&self) -> u64 {
        self.overhead
    }

    /// Records one round (payload sizes; the envelope overhead is added
    /// per direction).
    pub fn record(&self, up: usize, down: usize) {
        self.bytes_up
            .fetch_add(up as u64 + self.overhead, Ordering::Relaxed);
        self.bytes_down
            .fetch_add(down as u64 + self.overhead, Ordering::Relaxed);
        self.rounds.fetch_add(1, Ordering::Relaxed);
    }

    /// Mirrors an already-accounted delta verbatim (no overhead applied).
    ///
    /// Used by the engine to fold the transport's own byte totals into an
    /// [`crate::ObsContext`] bit-for-bit: the transport has already
    /// charged the envelope overhead, so the mirror must not charge it
    /// again.
    pub fn add_delta(&self, delta: &CommSnapshot) {
        self.bytes_up.fetch_add(delta.bytes_up, Ordering::Relaxed);
        self.bytes_down
            .fetch_add(delta.bytes_down, Ordering::Relaxed);
        self.rounds.fetch_add(delta.rounds, Ordering::Relaxed);
    }

    /// Reads the counters.
    pub fn snapshot(&self) -> CommSnapshot {
        CommSnapshot {
            bytes_up: self.bytes_up.load(Ordering::Relaxed),
            bytes_down: self.bytes_down.load(Ordering::Relaxed),
            rounds: self.rounds.load(Ordering::Relaxed),
        }
    }

    /// Zeroes the counters.
    pub fn reset(&self) {
        self.bytes_up.store(0, Ordering::Relaxed);
        self.bytes_down.store(0, Ordering::Relaxed);
        self.rounds.store(0, Ordering::Relaxed);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn record_charges_overhead_per_direction() {
        let c = CommCounters::with_overhead(10);
        c.record(100, 50);
        let s = c.snapshot();
        assert_eq!(s.bytes_up, 110);
        assert_eq!(s.bytes_down, 60);
        assert_eq!(s.rounds, 1);
    }

    #[test]
    fn add_delta_is_verbatim() {
        let c = CommCounters::with_overhead(512);
        c.add_delta(&CommSnapshot {
            bytes_up: 7,
            bytes_down: 3,
            rounds: 2,
        });
        assert_eq!(
            c.snapshot(),
            CommSnapshot {
                bytes_up: 7,
                bytes_down: 3,
                rounds: 2
            }
        );
    }

    #[test]
    fn since_subtracts() {
        let a = CommSnapshot {
            bytes_up: 10,
            bytes_down: 20,
            rounds: 3,
        };
        let b = CommSnapshot {
            bytes_up: 4,
            bytes_down: 5,
            rounds: 1,
        };
        let d = a.since(&b);
        assert_eq!(d.bytes_up, 6);
        assert_eq!(d.bytes_down, 15);
        assert_eq!(d.rounds, 2);
        assert_eq!(d.total_bytes(), 21);
    }
}
