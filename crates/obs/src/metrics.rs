//! Atomic metric primitives and the registry that names them.
//!
//! Counters and gauges are single atomics; histograms use log₂ buckets
//! (bucket `i` holds observations in `(2^(i-1), 2^i]`, bucket 0 holds 0
//! and 1, the last bucket is +Inf) so a 65-slot array covers the full
//! `u64` range — good enough for nanosecond latencies and byte sizes
//! without configuring bounds per metric.
//!
//! Labels are embedded in the registered name following the Prometheus
//! sample syntax, e.g. `fedra_silo_requests_total{silo="3"}` — see
//! [`labeled`]. The registry is a flat string-keyed map, which keeps
//! snapshots and exporters trivial and deterministic (BTreeMap order).

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use parking_lot::Mutex;

/// Number of histogram buckets: 64 powers of two plus a +Inf bucket.
pub const HISTOGRAM_BUCKETS: usize = 65;

/// A monotonically increasing atomic counter.
#[derive(Debug, Default)]
pub struct Counter(AtomicU64);

impl Counter {
    /// Adds `n` to the counter.
    pub fn add(&self, n: u64) {
        self.0.fetch_add(n, Ordering::Relaxed);
    }

    /// Adds one.
    pub fn inc(&self) {
        self.add(1);
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// A last-write-wins gauge storing an `f64` (as raw bits in an atomic).
#[derive(Debug, Default)]
pub struct Gauge(AtomicU64);

impl Gauge {
    /// Sets the gauge.
    pub fn set(&self, value: f64) {
        self.0.store(value.to_bits(), Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> f64 {
        f64::from_bits(self.0.load(Ordering::Relaxed))
    }
}

/// Bucket index for an observation: 0 for values ≤ 1, otherwise
/// `ceil(log2(value))` — so bucket `i` spans `(2^(i-1), 2^i]`.
pub fn bucket_index(value: u64) -> usize {
    if value <= 1 {
        0
    } else {
        (64 - (value - 1).leading_zeros()) as usize
    }
}

/// Inclusive upper bound of bucket `i`, or `None` for the +Inf bucket.
pub fn bucket_upper_bound(index: usize) -> Option<u64> {
    if index >= HISTOGRAM_BUCKETS - 1 {
        None
    } else {
        Some(1u64 << index)
    }
}

/// A log₂-bucketed histogram over `u64` observations (latencies in
/// nanoseconds, byte sizes, item counts…).
#[derive(Debug)]
pub struct Histogram {
    buckets: [AtomicU64; HISTOGRAM_BUCKETS],
    count: AtomicU64,
    sum: AtomicU64,
}

impl Default for Histogram {
    fn default() -> Self {
        Self {
            buckets: [const { AtomicU64::new(0) }; HISTOGRAM_BUCKETS],
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
        }
    }
}

impl Histogram {
    /// Records one observation.
    pub fn observe(&self, value: u64) {
        self.buckets[bucket_index(value)].fetch_add(1, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
        self.sum.fetch_add(value, Ordering::Relaxed);
    }

    /// Number of observations so far.
    pub fn count(&self) -> u64 {
        self.count.load(Ordering::Relaxed)
    }

    /// Sum of all observations so far.
    pub fn sum(&self) -> u64 {
        self.sum.load(Ordering::Relaxed)
    }

    /// A point-in-time copy.
    pub fn snapshot(&self) -> HistogramSnapshot {
        HistogramSnapshot {
            count: self.count(),
            sum: self.sum(),
            buckets: self
                .buckets
                .iter()
                .map(|b| b.load(Ordering::Relaxed))
                .collect(),
        }
    }
}

/// A point-in-time copy of a [`Histogram`].
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct HistogramSnapshot {
    /// Number of observations.
    pub count: u64,
    /// Sum of observations.
    pub sum: u64,
    /// Per-bucket (non-cumulative) observation counts, one slot per
    /// [`HISTOGRAM_BUCKETS`] bucket.
    pub buckets: Vec<u64>,
}

impl HistogramSnapshot {
    /// Iterates non-empty buckets as `(upper_bound, count)` pairs; the
    /// +Inf bucket reports `None` as its bound.
    pub fn nonzero_buckets(&self) -> impl Iterator<Item = (Option<u64>, u64)> + '_ {
        self.buckets
            .iter()
            .enumerate()
            .filter(|(_, &c)| c > 0)
            .map(|(i, &c)| (bucket_upper_bound(i), c))
    }

    /// Estimates the value at quantile `q` (clamped to `0.0..=1.0`) by
    /// rank over the log₂ buckets, linearly interpolated inside the
    /// containing bucket — the classic Prometheus `histogram_quantile`
    /// scheme, so the estimate is exact at bucket boundaries and at
    /// worst one bucket (a factor of two) wide in between.
    ///
    /// Returns `None` for an empty snapshot. Ranks landing in the +Inf
    /// bucket report its lower bound (`2^63`), the only honest answer a
    /// bounded array can give.
    pub fn quantile(&self, q: f64) -> Option<u64> {
        if self.count == 0 || self.buckets.is_empty() {
            return None;
        }
        let q = q.clamp(0.0, 1.0);
        // 1-based rank of the target observation under the usual
        // nearest-rank definition; q = 0 maps to the first observation.
        let rank = ((q * self.count as f64).ceil() as u64).clamp(1, self.count);
        let mut seen = 0u64;
        for (i, &c) in self.buckets.iter().enumerate() {
            if c == 0 {
                continue;
            }
            if seen + c >= rank {
                let lower = if i == 0 { 0 } else { 1u64 << (i - 1) };
                let upper = match bucket_upper_bound(i) {
                    Some(u) => u,
                    // +Inf bucket: no finite width to interpolate over.
                    None => return Some(lower),
                };
                let frac = (rank - seen) as f64 / c as f64;
                let width = (upper - lower) as f64;
                return Some(lower + (frac * width).round() as u64);
            }
            seen += c;
        }
        // count > 0 guarantees some bucket is non-empty, so the loop
        // always returns; this arm only guards a torn snapshot.
        None
    }

    /// Median estimate; see [`HistogramSnapshot::quantile`].
    pub fn p50(&self) -> Option<u64> {
        self.quantile(0.50)
    }

    /// 95th-percentile estimate; see [`HistogramSnapshot::quantile`].
    pub fn p95(&self) -> Option<u64> {
        self.quantile(0.95)
    }

    /// 99th-percentile estimate; see [`HistogramSnapshot::quantile`].
    pub fn p99(&self) -> Option<u64> {
        self.quantile(0.99)
    }
}

/// Embeds one label in a metric name, Prometheus-style:
/// `labeled("x_total", "silo", "3")` → `x_total{silo="3"}`.
pub fn labeled(name: &str, label: &str, value: impl std::fmt::Display) -> String {
    format!("{name}{{{label}=\"{value}\"}}")
}

/// A named registry of counters, gauges and histograms.
///
/// Metric handles are `Arc`s created on first use; hot paths can cache
/// the handle, occasional recorders can go through the by-name helpers.
#[derive(Debug, Default)]
pub struct MetricsRegistry {
    counters: Mutex<BTreeMap<String, Arc<Counter>>>,
    gauges: Mutex<BTreeMap<String, Arc<Gauge>>>,
    histograms: Mutex<BTreeMap<String, Arc<Histogram>>>,
}

impl MetricsRegistry {
    /// An empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// Gets or creates the counter `name`.
    pub fn counter(&self, name: &str) -> Arc<Counter> {
        let mut map = self.counters.lock();
        match map.get(name) {
            Some(c) => Arc::clone(c),
            None => {
                let c = Arc::new(Counter::default());
                map.insert(name.to_string(), Arc::clone(&c));
                c
            }
        }
    }

    /// Gets or creates the gauge `name`.
    pub fn gauge(&self, name: &str) -> Arc<Gauge> {
        let mut map = self.gauges.lock();
        match map.get(name) {
            Some(g) => Arc::clone(g),
            None => {
                let g = Arc::new(Gauge::default());
                map.insert(name.to_string(), Arc::clone(&g));
                g
            }
        }
    }

    /// Gets or creates the histogram `name`.
    pub fn histogram(&self, name: &str) -> Arc<Histogram> {
        let mut map = self.histograms.lock();
        match map.get(name) {
            Some(h) => Arc::clone(h),
            None => {
                let h = Arc::new(Histogram::default());
                map.insert(name.to_string(), Arc::clone(&h));
                h
            }
        }
    }

    /// Adds one to the counter `name`.
    pub fn inc(&self, name: &str) {
        self.counter(name).inc();
    }

    /// Adds `n` to the counter `name`.
    pub fn add(&self, name: &str, n: u64) {
        self.counter(name).add(n);
    }

    /// Sets the gauge `name`.
    pub fn set_gauge(&self, name: &str, value: f64) {
        self.gauge(name).set(value);
    }

    /// Records one observation in the histogram `name`.
    pub fn observe(&self, name: &str, value: u64) {
        self.histogram(name).observe(value);
    }

    /// A point-in-time copy of every metric.
    pub fn snapshot(&self) -> MetricsSnapshot {
        MetricsSnapshot {
            counters: self
                .counters
                .lock()
                .iter()
                .map(|(k, v)| (k.clone(), v.get()))
                .collect(),
            gauges: self
                .gauges
                .lock()
                .iter()
                .map(|(k, v)| (k.clone(), v.get()))
                .collect(),
            histograms: self
                .histograms
                .lock()
                .iter()
                .map(|(k, v)| (k.clone(), v.snapshot()))
                .collect(),
        }
    }
}

/// A point-in-time copy of a [`MetricsRegistry`], with deterministic
/// (sorted) iteration order.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct MetricsSnapshot {
    /// Counter values by name.
    pub counters: BTreeMap<String, u64>,
    /// Gauge values by name.
    pub gauges: BTreeMap<String, f64>,
    /// Histogram snapshots by name.
    pub histograms: BTreeMap<String, HistogramSnapshot>,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucket_index_boundaries() {
        assert_eq!(bucket_index(0), 0);
        assert_eq!(bucket_index(1), 0);
        assert_eq!(bucket_index(2), 1);
        assert_eq!(bucket_index(3), 2);
        assert_eq!(bucket_index(4), 2);
        assert_eq!(bucket_index(5), 3);
        assert_eq!(bucket_index(1024), 10);
        assert_eq!(bucket_index(1025), 11);
        assert_eq!(bucket_index(u64::MAX), 64);
        assert_eq!(bucket_index(1u64 << 63), 63);
    }

    #[test]
    fn bucket_bounds_cover_range() {
        assert_eq!(bucket_upper_bound(0), Some(1));
        assert_eq!(bucket_upper_bound(10), Some(1024));
        assert_eq!(bucket_upper_bound(63), Some(1u64 << 63));
        assert_eq!(bucket_upper_bound(64), None);
    }

    #[test]
    fn histogram_counts_and_sums() {
        let h = Histogram::default();
        for v in [0, 1, 2, 3, 4, 1000] {
            h.observe(v);
        }
        assert_eq!(h.count(), 6);
        assert_eq!(h.sum(), 1010);
        let snap = h.snapshot();
        assert_eq!(snap.buckets[0], 2); // 0 and 1
        assert_eq!(snap.buckets[1], 1); // 2
        assert_eq!(snap.buckets[2], 2); // 3 and 4
        assert_eq!(snap.buckets[10], 1); // 1000
        assert_eq!(snap.nonzero_buckets().count(), 4);
    }

    #[test]
    fn quantile_interpolates_within_buckets() {
        let h = Histogram::default();
        // 100 observations of exactly 1024 (bucket 10, bounds (512, 1024]).
        for _ in 0..100 {
            h.observe(1024);
        }
        let snap = h.snapshot();
        // All ranks land in bucket 10; interpolation spans (512, 1024].
        assert_eq!(snap.quantile(1.0), Some(1024));
        assert_eq!(snap.p50(), Some(768)); // midpoint of the bucket
        assert!(snap.p95() > snap.p50());
        assert!(snap.p99() >= snap.p95());
    }

    #[test]
    fn quantile_orders_across_buckets() {
        let h = Histogram::default();
        for _ in 0..90 {
            h.observe(100); // bucket 7, (64, 128]
        }
        for _ in 0..10 {
            h.observe(10_000); // bucket 14, (8192, 16384]
        }
        let snap = h.snapshot();
        let p50 = snap.p50().unwrap();
        let p95 = snap.p95().unwrap();
        let p99 = snap.p99().unwrap();
        assert!((64..=128).contains(&p50), "p50 = {p50}");
        assert!((8192..=16384).contains(&p95), "p95 = {p95}");
        assert!(p99 >= p95);
    }

    #[test]
    fn quantile_edge_cases() {
        assert_eq!(HistogramSnapshot::default().quantile(0.5), None);

        let h = Histogram::default();
        h.observe(u64::MAX); // +Inf bucket
        assert_eq!(h.snapshot().quantile(0.5), Some(1u64 << 63));

        // Bucket 0 pools {0, 1}; the interpolated estimate is its
        // upper bound.
        let h = Histogram::default();
        h.observe(0);
        assert_eq!(h.snapshot().quantile(0.0), Some(1));
        // Out-of-range q clamps instead of panicking.
        assert!(h.snapshot().quantile(7.0).is_some());
        assert!(h.snapshot().quantile(-1.0).is_some());
    }

    #[test]
    fn registry_reuses_handles() {
        let reg = MetricsRegistry::new();
        let a = reg.counter("x_total");
        let b = reg.counter("x_total");
        a.add(2);
        b.inc();
        assert_eq!(reg.counter("x_total").get(), 3);

        reg.set_gauge("g", 1.5);
        assert_eq!(reg.gauge("g").get(), 1.5);

        reg.observe("h", 9);
        let snap = reg.snapshot();
        assert_eq!(snap.counters["x_total"], 3);
        assert_eq!(snap.gauges["g"], 1.5);
        assert_eq!(snap.histograms["h"].count, 1);
    }

    #[test]
    fn labeled_formats_prometheus_style() {
        assert_eq!(
            labeled("fedra_silo_requests_total", "silo", 3),
            "fedra_silo_requests_total{silo=\"3\"}"
        );
    }
}
