//! The observability handle threaded through the execution API.

use std::collections::VecDeque;
use std::sync::{Arc, OnceLock};

use parking_lot::Mutex;

use crate::comm::{CommCounters, CommSnapshot};
use crate::export;
use crate::metrics::{labeled, MetricsRegistry, MetricsSnapshot};
use crate::trace::{QueryTrace, TraceHandle};

/// Default cap on retained [`QueryTrace`]s (oldest evicted first).
pub const DEFAULT_TRACE_CAPACITY: usize = 1024;

fn noop_context() -> &'static ObsContext {
    static NOOP: OnceLock<ObsContext> = OnceLock::new();
    NOOP.get_or_init(|| ObsContext {
        enabled: false,
        registry: Arc::new(MetricsRegistry::new()),
        comm: Arc::new(CommCounters::with_overhead(0)),
        traces: Mutex::new(VecDeque::new()),
        trace_capacity: 0,
    })
}

/// A shared observability context: one metrics registry, one mirror of
/// the communication counters, and a bounded ring of finished
/// [`QueryTrace`]s.
///
/// Instrumented code takes `&ObsContext`; callers that do not care pass
/// [`ObsContext::noop`], which is permanently disabled — every recording
/// method is then a single branch, so the uninstrumented path stays
/// within noise of the pre-observability code.
#[derive(Debug)]
pub struct ObsContext {
    enabled: bool,
    registry: Arc<MetricsRegistry>,
    comm: Arc<CommCounters>,
    traces: Mutex<VecDeque<QueryTrace>>,
    trace_capacity: usize,
}

impl Default for ObsContext {
    fn default() -> Self {
        Self::new()
    }
}

impl ObsContext {
    /// A fresh, enabled context.
    ///
    /// The comm mirror uses zero per-message overhead: the transport's
    /// own counters have already charged the envelope overhead, and the
    /// engine mirrors their deltas verbatim so the totals match the
    /// legacy accounting bit-for-bit.
    pub fn new() -> Self {
        Self {
            enabled: true,
            registry: Arc::new(MetricsRegistry::new()),
            comm: Arc::new(CommCounters::with_overhead(0)),
            traces: Mutex::new(VecDeque::new()),
            trace_capacity: DEFAULT_TRACE_CAPACITY,
        }
    }

    /// The shared disabled context: recording through it does nothing.
    pub fn noop() -> &'static ObsContext {
        noop_context()
    }

    /// Whether this context records anything.
    #[inline]
    pub fn is_enabled(&self) -> bool {
        self.enabled
    }

    /// The metrics registry.
    #[inline]
    pub fn registry(&self) -> &MetricsRegistry {
        &self.registry
    }

    /// The communication counters mirrored from the transport.
    #[inline]
    pub fn comm(&self) -> &CommCounters {
        &self.comm
    }

    /// Starts a per-query trace; inert when the context is disabled.
    #[inline]
    pub fn start_trace(&self, label: &str, algorithm: &str) -> TraceHandle {
        if self.enabled {
            TraceHandle::new(label, algorithm)
        } else {
            TraceHandle::disabled()
        }
    }

    /// Finishes a trace: records each span's duration into the
    /// `fedra_span_ns{name="…"}` histograms and retains the trace in the
    /// bounded ring.
    pub fn finish_trace(&self, trace: &TraceHandle) {
        if !self.enabled {
            return;
        }
        if let Some(captured) = trace.capture() {
            for span in &captured.spans {
                self.registry.observe(
                    &labeled("fedra_span_ns", "name", &span.name),
                    span.duration_ns,
                );
            }
            let mut ring = self.traces.lock();
            if ring.len() >= self.trace_capacity && self.trace_capacity > 0 {
                ring.pop_front();
            }
            if self.trace_capacity > 0 {
                ring.push_back(captured);
            }
        }
    }

    /// Copies the retained traces out (oldest first).
    pub fn traces(&self) -> Vec<QueryTrace> {
        self.traces.lock().iter().cloned().collect()
    }

    /// Adds one to the counter `name` (no-op when disabled).
    #[inline]
    pub fn inc(&self, name: &str) {
        if self.enabled {
            self.registry.inc(name);
        }
    }

    /// Adds `n` to the counter `name` (no-op when disabled).
    #[inline]
    pub fn add(&self, name: &str, n: u64) {
        if self.enabled {
            self.registry.add(name, n);
        }
    }

    /// Sets the gauge `name` (no-op when disabled).
    #[inline]
    pub fn set_gauge(&self, name: &str, value: f64) {
        if self.enabled {
            self.registry.set_gauge(name, value);
        }
    }

    /// Records one observation in the histogram `name` (no-op when
    /// disabled).
    #[inline]
    pub fn observe(&self, name: &str, value: u64) {
        if self.enabled {
            self.registry.observe(name, value);
        }
    }

    /// A point-in-time copy of the registry.
    pub fn snapshot(&self) -> MetricsSnapshot {
        self.registry.snapshot()
    }

    /// The mirrored communication totals.
    pub fn comm_snapshot(&self) -> CommSnapshot {
        self.comm.snapshot()
    }

    /// Renders the current state as a stable JSON document.
    pub fn export_json(&self) -> String {
        export::render_json(&self.snapshot(), &self.comm_snapshot())
    }

    /// Renders the current state in Prometheus text format.
    pub fn export_prometheus(&self) -> String {
        export::render_prometheus(&self.snapshot(), &self.comm_snapshot())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::trace::Span;

    #[test]
    fn noop_records_nothing() {
        let obs = ObsContext::noop();
        obs.inc("x_total");
        obs.add("x_total", 5);
        obs.set_gauge("g", 1.0);
        obs.observe("h", 10);
        let trace = obs.start_trace("q", "test");
        let _span = Span::enter(&trace, "plan");
        obs.finish_trace(&trace);
        let snap = obs.snapshot();
        assert!(snap.counters.is_empty());
        assert!(snap.gauges.is_empty());
        assert!(snap.histograms.is_empty());
        assert!(obs.traces().is_empty());
        assert!(!obs.is_enabled());
    }

    #[test]
    fn finish_trace_records_span_histograms() {
        let obs = ObsContext::new();
        let trace = obs.start_trace("q0", "test");
        {
            let _plan = Span::enter(&trace, "plan");
        }
        obs.finish_trace(&trace);
        let traces = obs.traces();
        assert_eq!(traces.len(), 1);
        assert!(traces[0].is_balanced());
        let snap = obs.snapshot();
        assert_eq!(snap.histograms["fedra_span_ns{name=\"plan\"}"].count, 1);
    }

    #[test]
    fn trace_ring_is_bounded() {
        let obs = ObsContext::new();
        for i in 0..(DEFAULT_TRACE_CAPACITY + 10) {
            let trace = obs.start_trace(&format!("q{i}"), "test");
            obs.finish_trace(&trace);
        }
        let traces = obs.traces();
        assert_eq!(traces.len(), DEFAULT_TRACE_CAPACITY);
        assert_eq!(traces[0].label, "q10");
    }

    #[test]
    fn comm_mirror_has_zero_overhead() {
        let obs = ObsContext::new();
        assert_eq!(obs.comm().overhead(), 0);
        obs.comm().add_delta(&CommSnapshot {
            bytes_up: 3,
            bytes_down: 4,
            rounds: 1,
        });
        assert_eq!(obs.comm_snapshot().total_bytes(), 7);
    }

    #[test]
    fn exporters_cover_live_context() {
        let obs = ObsContext::new();
        obs.add("fedra_queries_total", 2);
        let text = obs.export_prometheus();
        assert!(text.contains("fedra_queries_total 2"));
        let json = obs.export_json();
        assert!(json.contains("\"fedra_queries_total\": 2"));
    }
}
