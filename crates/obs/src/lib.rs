//! Observability layer for the fedra federation.
//!
//! The paper's headline claims are *measured* properties — O(1) /
//! O(√|g₀|) communication for the sampling estimators, O(log 1/ε) local
//! work via the LSR-Forest level pick, ε-bounded error — so the
//! federation needs first-class instrumentation to verify them per query
//! instead of only observing byte totals after the fact. This crate
//! provides that instrumentation with **no external dependencies** beyond
//! the workspace's existing sync shim and **no unsafe code**:
//!
//! * [`MetricsRegistry`] — named atomic [`Counter`]s, [`Gauge`]s and
//!   log₂-bucketed [`Histogram`]s, snapshot-able at any time;
//! * [`Span`] / [`QueryTrace`] — a lightweight RAII span API recording a
//!   per-query lifecycle (`plan` → `encode` → `fan-out` → `finish`) with
//!   nanosecond timings and free-form attributes;
//! * [`CommCounters`] / [`CommSnapshot`] — the federation's byte-counted
//!   communication accounting (formerly `fedra_federation::transport::CommStats`),
//!   now owned here so every layer shares one definition;
//! * [`ObsContext`] — the handle threaded through the execution API. A
//!   disabled context ([`ObsContext::noop`]) is a branch-per-call no-op,
//!   so uninstrumented paths pay essentially nothing;
//! * [`export`] — stable JSON and Prometheus text-format renderings of a
//!   snapshot, plus a parser for round-trip tests.
//!
//! Metric names follow the Prometheus convention
//! `fedra_<subsystem>_<quantity>[_total]{label="value"}`; the label set,
//! when present, is embedded in the registered name so the registry stays
//! a flat string-keyed map.

#![forbid(unsafe_code)]
#![deny(missing_docs)]

pub mod comm;
pub mod context;
pub mod export;
pub mod metrics;
pub mod trace;

pub use comm::{CommCounters, CommSnapshot, DEFAULT_MESSAGE_OVERHEAD};
pub use context::ObsContext;
pub use export::{parse_prometheus, render_json, render_prometheus};
pub use metrics::{
    labeled, Counter, Gauge, Histogram, HistogramSnapshot, MetricsRegistry, MetricsSnapshot,
};
pub use trace::{QueryTrace, Span, SpanRecord, TraceHandle};
