//! Per-query lifecycle tracing: RAII spans recorded into [`QueryTrace`]s.
//!
//! A [`TraceHandle`] is either live (backed by shared mutable state) or
//! inert (`None` inside) — spans entered on an inert handle are free, so
//! the same instrumentation code serves both the enabled and the no-op
//! path. Spans time themselves with [`Instant`] and close on `Drop`,
//! which keeps nesting balanced even on early returns.

use std::collections::BTreeMap;
use std::sync::Arc;
use std::time::Instant;

use parking_lot::Mutex;

/// One closed (or still-open) span inside a trace.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SpanRecord {
    /// Phase name, e.g. `"plan"`, `"scatter"`, `"finish"`.
    pub name: String,
    /// Nesting depth at the time the span was entered (0 = top level).
    pub depth: usize,
    /// Offset from the trace origin, in nanoseconds.
    pub start_ns: u64,
    /// Wall-clock duration, in nanoseconds (0 while still open).
    pub duration_ns: u64,
}

#[derive(Debug)]
struct TraceInner {
    label: String,
    algorithm: String,
    origin: Instant,
    spans: Vec<SpanRecord>,
    /// Stack of indices into `spans` for spans not yet closed.
    open: Vec<usize>,
    attrs: BTreeMap<String, String>,
}

/// A finished, immutable copy of one query's lifecycle.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct QueryTrace {
    /// Caller-supplied label (e.g. a query index or description).
    pub label: String,
    /// Algorithm that served the query.
    pub algorithm: String,
    /// Recorded spans, in entry order.
    pub spans: Vec<SpanRecord>,
    /// Free-form attributes (sampled silo, LSR level, rescale factor…).
    pub attrs: BTreeMap<String, String>,
    /// Number of spans still open when the trace was finished; 0 for a
    /// balanced trace.
    pub open_spans: usize,
}

impl QueryTrace {
    /// Whether every entered span was closed before the trace finished.
    pub fn is_balanced(&self) -> bool {
        self.open_spans == 0 && self.spans.iter().all(|s| s.duration_ns > 0)
    }

    /// Duration of the first span named `name`, if present.
    pub fn span_duration_ns(&self, name: &str) -> Option<u64> {
        self.spans
            .iter()
            .find(|s| s.name == name)
            .map(|s| s.duration_ns)
    }
}

/// A handle to one query's trace; cheap to clone, inert when disabled.
#[derive(Debug, Clone, Default)]
pub struct TraceHandle(Option<Arc<Mutex<TraceInner>>>);

impl TraceHandle {
    /// An inert handle: spans and attributes recorded through it vanish.
    #[inline]
    pub fn disabled() -> Self {
        TraceHandle(None)
    }

    /// A live handle with the given label and algorithm name.
    pub fn new(label: &str, algorithm: &str) -> Self {
        TraceHandle(Some(Arc::new(Mutex::new(TraceInner {
            label: label.to_string(),
            algorithm: algorithm.to_string(),
            origin: Instant::now(),
            spans: Vec::new(),
            open: Vec::new(),
            attrs: BTreeMap::new(),
        }))))
    }

    /// Whether this handle records anything.
    #[inline]
    pub fn is_enabled(&self) -> bool {
        self.0.is_some()
    }

    /// Records a free-form attribute (last write wins).
    pub fn attr(&self, key: &str, value: impl std::fmt::Display) {
        if let Some(inner) = &self.0 {
            let mut inner = inner.lock();
            inner.attrs.insert(key.to_string(), value.to_string());
        }
    }

    /// Copies the current state out as a [`QueryTrace`].
    ///
    /// Spans still open (guards not yet dropped) are reported via
    /// [`QueryTrace::open_spans`].
    pub fn capture(&self) -> Option<QueryTrace> {
        self.0.as_ref().map(|inner| {
            let inner = inner.lock();
            QueryTrace {
                label: inner.label.clone(),
                algorithm: inner.algorithm.clone(),
                spans: inner.spans.clone(),
                attrs: inner.attrs.clone(),
                open_spans: inner.open.len(),
            }
        })
    }
}

/// An RAII guard for one timed phase; closes (and records its duration)
/// on `Drop`.
///
/// Inert spans carry no state at all — not even a start timestamp — so
/// entering one on a disabled trace costs a branch, not a clock read.
#[must_use = "a span records its duration when dropped; binding it to _ closes it immediately"]
#[derive(Debug)]
pub struct Span {
    slot: Option<(Arc<Mutex<TraceInner>>, usize, Instant)>,
}

impl Span {
    /// Enters a span named `name` on `trace`; free if the handle is
    /// inert.
    #[inline]
    pub fn enter(trace: &TraceHandle, name: &str) -> Span {
        let slot = trace.0.as_ref().map(|arc| {
            let started = Instant::now();
            let mut inner = arc.lock();
            let depth = inner.open.len();
            let start_ns = inner.origin.elapsed().as_nanos() as u64;
            let index = inner.spans.len();
            inner.spans.push(SpanRecord {
                name: name.to_string(),
                depth,
                start_ns,
                duration_ns: 0,
            });
            inner.open.push(index);
            (Arc::clone(arc), index, started)
        });
        Span { slot }
    }
}

impl Drop for Span {
    #[inline]
    fn drop(&mut self) {
        if let Some((arc, index, started)) = self.slot.take() {
            let duration = started.elapsed().as_nanos() as u64;
            let mut inner = arc.lock();
            if let Some(record) = inner.spans.get_mut(index) {
                // Clamp to ≥ 1 ns so "closed" is distinguishable from
                // "never closed" in a captured trace.
                record.duration_ns = duration.max(1);
            }
            inner.open.retain(|&i| i != index);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn nested_spans_balance() {
        let trace = TraceHandle::new("q0", "test");
        {
            let _outer = Span::enter(&trace, "outer");
            {
                let _inner = Span::enter(&trace, "inner");
            }
        }
        let captured = trace.capture().expect("live handle");
        assert!(captured.is_balanced());
        assert_eq!(captured.spans.len(), 2);
        assert_eq!(captured.spans[0].name, "outer");
        assert_eq!(captured.spans[0].depth, 0);
        assert_eq!(captured.spans[1].depth, 1);
        assert!(captured.span_duration_ns("outer").unwrap() >= 1);
    }

    #[test]
    fn open_span_is_reported_unbalanced() {
        let trace = TraceHandle::new("q0", "test");
        let _held = Span::enter(&trace, "still-open");
        let captured = trace.capture().expect("live handle");
        assert_eq!(captured.open_spans, 1);
        assert!(!captured.is_balanced());
    }

    #[test]
    fn disabled_handle_is_inert() {
        let trace = TraceHandle::disabled();
        let _span = Span::enter(&trace, "ghost");
        trace.attr("k", "v");
        assert!(trace.capture().is_none());
        assert!(!trace.is_enabled());
    }

    #[test]
    fn attrs_are_recorded() {
        let trace = TraceHandle::new("q1", "IID-est");
        trace.attr("silo", 3);
        trace.attr("level", 2);
        let captured = trace.capture().expect("live handle");
        assert_eq!(captured.attrs["silo"], "3");
        assert_eq!(captured.attrs["level"], "2");
        assert_eq!(captured.algorithm, "IID-est");
    }
}
