//! Stable exporters: JSON snapshot and Prometheus text format.
//!
//! Both renderers work from [`MetricsSnapshot`] + [`CommSnapshot`], so
//! they are deterministic for a deterministic workload (BTreeMap key
//! order, no timestamps). The communication counters are injected as
//! three ordinary counters (`fedra_comm_bytes_up_total`,
//! `fedra_comm_bytes_down_total`, `fedra_comm_rounds_total`) so one
//! document carries everything.
//!
//! [`parse_prometheus`] parses the text format back into a flat
//! name → value map; tests use it to prove the exporters round-trip.

use std::collections::BTreeMap;
use std::fmt::Write as _;

use crate::comm::CommSnapshot;
use crate::metrics::MetricsSnapshot;

/// Counter name under which uplink bytes are exported.
pub const COMM_BYTES_UP: &str = "fedra_comm_bytes_up_total";
/// Counter name under which downlink bytes are exported.
pub const COMM_BYTES_DOWN: &str = "fedra_comm_bytes_down_total";
/// Counter name under which request/response rounds are exported.
pub const COMM_ROUNDS: &str = "fedra_comm_rounds_total";

fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out
}

fn counters_with_comm(snapshot: &MetricsSnapshot, comm: &CommSnapshot) -> BTreeMap<String, u64> {
    let mut counters = snapshot.counters.clone();
    counters.insert(COMM_BYTES_UP.to_string(), comm.bytes_up);
    counters.insert(COMM_BYTES_DOWN.to_string(), comm.bytes_down);
    counters.insert(COMM_ROUNDS.to_string(), comm.rounds);
    counters
}

/// Renders a metrics + comm snapshot as a stable JSON document.
///
/// Keys are sorted (BTreeMap order); histograms list only non-empty
/// buckets as `[upper_bound, count]` pairs, with `"inf"` standing in for
/// the unbounded bucket.
pub fn render_json(snapshot: &MetricsSnapshot, comm: &CommSnapshot) -> String {
    let mut out = String::new();
    out.push_str("{\n  \"counters\": {");
    let counters = counters_with_comm(snapshot, comm);
    let mut first = true;
    for (name, value) in &counters {
        if !first {
            out.push(',');
        }
        first = false;
        let _ = write!(out, "\n    \"{}\": {}", json_escape(name), value);
    }
    out.push_str("\n  },\n  \"gauges\": {");
    first = true;
    for (name, value) in &snapshot.gauges {
        if !first {
            out.push(',');
        }
        first = false;
        let _ = write!(out, "\n    \"{}\": {}", json_escape(name), fmt_f64(*value));
    }
    out.push_str("\n  },\n  \"histograms\": {");
    first = true;
    for (name, hist) in &snapshot.histograms {
        if !first {
            out.push(',');
        }
        first = false;
        let _ = write!(
            out,
            "\n    \"{}\": {{\"count\": {}, \"sum\": {}, \"buckets\": [",
            json_escape(name),
            hist.count,
            hist.sum
        );
        let mut first_bucket = true;
        for (bound, count) in hist.nonzero_buckets() {
            if !first_bucket {
                out.push_str(", ");
            }
            first_bucket = false;
            match bound {
                Some(b) => {
                    let _ = write!(out, "[{b}, {count}]");
                }
                None => {
                    let _ = write!(out, "[\"inf\", {count}]");
                }
            }
        }
        out.push_str("]}");
    }
    out.push_str("\n  }\n}\n");
    out
}

fn fmt_f64(v: f64) -> String {
    if v.is_finite() && v == v.trunc() && v.abs() < 1e15 {
        // Integral gauges print without a fraction so JSON stays tidy.
        format!("{}", v as i64)
    } else {
        format!("{v}")
    }
}

/// Base metric name: the part before any `{label="…"}` suffix.
fn base_name(name: &str) -> &str {
    match name.find('{') {
        Some(i) => &name[..i],
        None => name,
    }
}

/// Splices `suffix` before the label braces and appends an `le` label:
/// `("x_ns{name=\"plan\"}", "_bucket", "1024")` →
/// `x_ns_bucket{name="plan",le="1024"}`.
fn with_suffix_and_le(name: &str, suffix: &str, le: &str) -> String {
    match name.find('{') {
        Some(i) => format!(
            "{}{}{{{},le=\"{}\"}}",
            &name[..i],
            suffix,
            &name[i + 1..name.len() - 1],
            le
        ),
        None => format!("{name}{suffix}{{le=\"{le}\"}}"),
    }
}

/// Splices `suffix` before the label braces: `("x_ns{a=\"b\"}", "_sum")`
/// → `x_ns_sum{a="b"}`.
fn with_suffix(name: &str, suffix: &str) -> String {
    match name.find('{') {
        Some(i) => format!("{}{}{}", &name[..i], suffix, &name[i..]),
        None => format!("{name}{suffix}"),
    }
}

/// Renders a metrics + comm snapshot in the Prometheus text exposition
/// format (one `# TYPE` line per metric family, cumulative histogram
/// buckets, no timestamps).
pub fn render_prometheus(snapshot: &MetricsSnapshot, comm: &CommSnapshot) -> String {
    let mut out = String::new();
    let counters = counters_with_comm(snapshot, comm);
    let mut last_family = "";
    for (name, value) in &counters {
        let family = base_name(name);
        if family != last_family {
            let _ = writeln!(out, "# TYPE {family} counter");
            last_family = family;
        }
        let _ = writeln!(out, "{name} {value}");
    }
    last_family = "";
    for (name, value) in &snapshot.gauges {
        let family = base_name(name);
        if family != last_family {
            let _ = writeln!(out, "# TYPE {family} gauge");
            last_family = family;
        }
        let _ = writeln!(out, "{name} {}", fmt_f64(*value));
    }
    last_family = "";
    for (name, hist) in &snapshot.histograms {
        let family = base_name(name);
        if family != last_family {
            let _ = writeln!(out, "# TYPE {family} histogram");
            last_family = family;
        }
        let mut cumulative = 0u64;
        for (bound, count) in hist.nonzero_buckets() {
            cumulative += count;
            let le = match bound {
                Some(b) => b.to_string(),
                None => "+Inf".to_string(),
            };
            let _ = writeln!(
                out,
                "{} {}",
                with_suffix_and_le(name, "_bucket", &le),
                cumulative
            );
        }
        if hist.buckets.last().copied().unwrap_or(0) == 0 {
            // Prometheus requires a closing +Inf bucket even when empty.
            let _ = writeln!(
                out,
                "{} {}",
                with_suffix_and_le(name, "_bucket", "+Inf"),
                cumulative
            );
        }
        let _ = writeln!(out, "{} {}", with_suffix(name, "_sum"), hist.sum);
        let _ = writeln!(out, "{} {}", with_suffix(name, "_count"), hist.count);
    }
    out
}

/// Parses Prometheus text format back into a flat `name → value` map
/// (comments and blank lines skipped). Histogram series appear under
/// their `_bucket`/`_sum`/`_count` sample names.
pub fn parse_prometheus(text: &str) -> BTreeMap<String, f64> {
    let mut out = BTreeMap::new();
    for line in text.lines() {
        let line = line.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        if let Some(split) = line.rfind(' ') {
            let (name, value) = line.split_at(split);
            if let Ok(v) = value.trim().parse::<f64>() {
                out.insert(name.trim().to_string(), v);
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metrics::MetricsRegistry;

    fn sample() -> (MetricsSnapshot, CommSnapshot) {
        let reg = MetricsRegistry::new();
        reg.add("fedra_queries_total{algo=\"IID-est\"}", 250);
        reg.inc("fedra_degraded_total");
        reg.set_gauge("fedra_accuracy_epsilon", 0.1);
        reg.observe("fedra_span_ns{name=\"plan\"}", 900);
        reg.observe("fedra_span_ns{name=\"plan\"}", 1500);
        let comm = CommSnapshot {
            bytes_up: 1234,
            bytes_down: 5678,
            rounds: 250,
        };
        (reg.snapshot(), comm)
    }

    #[test]
    fn prometheus_round_trips_counters() {
        let (snap, comm) = sample();
        let text = render_prometheus(&snap, &comm);
        let parsed = parse_prometheus(&text);
        assert_eq!(parsed["fedra_queries_total{algo=\"IID-est\"}"], 250.0);
        assert_eq!(parsed["fedra_degraded_total"], 1.0);
        assert_eq!(parsed[COMM_BYTES_UP], 1234.0);
        assert_eq!(parsed[COMM_BYTES_DOWN], 5678.0);
        assert_eq!(parsed[COMM_ROUNDS], 250.0);
        assert_eq!(parsed["fedra_accuracy_epsilon"], 0.1);
        assert_eq!(parsed["fedra_span_ns_count{name=\"plan\"}"], 2.0);
        assert_eq!(parsed["fedra_span_ns_sum{name=\"plan\"}"], 2400.0);
        // 900 → bucket le=1024; 1500 → le=2048; cumulative.
        assert_eq!(
            parsed["fedra_span_ns_bucket{name=\"plan\",le=\"1024\"}"],
            1.0
        );
        assert_eq!(
            parsed["fedra_span_ns_bucket{name=\"plan\",le=\"2048\"}"],
            2.0
        );
    }

    #[test]
    fn prometheus_has_type_lines() {
        let (snap, comm) = sample();
        let text = render_prometheus(&snap, &comm);
        assert!(text.contains("# TYPE fedra_queries_total counter"));
        assert!(text.contains("# TYPE fedra_accuracy_epsilon gauge"));
        assert!(text.contains("# TYPE fedra_span_ns histogram"));
    }

    #[test]
    fn json_is_stable_and_contains_everything() {
        let (snap, comm) = sample();
        let a = render_json(&snap, &comm);
        let b = render_json(&snap, &comm);
        assert_eq!(a, b);
        assert!(a.contains("\"fedra_queries_total{algo=\\\"IID-est\\\"}\": 250"));
        assert!(a.contains(&format!("\"{COMM_BYTES_UP}\": 1234")));
        assert!(a.contains("\"fedra_accuracy_epsilon\": 0.1"));
        assert!(a.contains("\"count\": 2, \"sum\": 2400"));
    }

    #[test]
    fn empty_snapshot_renders() {
        let snap = MetricsSnapshot::default();
        let comm = CommSnapshot::default();
        let text = render_prometheus(&snap, &comm);
        assert!(text.contains(&format!("{COMM_ROUNDS} 0")));
        let json = render_json(&snap, &comm);
        assert!(json.starts_with('{') && json.trim_end().ends_with('}'));
    }
}
