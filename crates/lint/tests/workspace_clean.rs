//! End-to-end checks: the real workspace passes, the baseline matches a
//! fresh run, and a seeded violation fails a check of a scratch tree.

use std::path::{Path, PathBuf};

use fedra_lint::diagnostics::Baseline;
use fedra_lint::registry::Registry;
use fedra_lint::workspace::{collect_workspace, run_check, BASELINE_PATH};

fn repo_root() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("../..")
        .canonicalize()
        .expect("repo root resolves")
}

#[test]
fn the_workspace_is_clean() {
    let report =
        run_check(&repo_root(), &Registry::with_default_lints()).expect("workspace is readable");
    assert!(report.files_checked > 30, "suspiciously few files scanned");
    assert!(
        report.failing.is_empty(),
        "non-baselined findings:\n{}",
        report
            .failing
            .iter()
            .map(|d| d.to_string())
            .collect::<Vec<_>>()
            .join("\n")
    );
}

/// The observability crate is product source and must stay in lint
/// scope — its lock use and federation-safety matter as much as the
/// engine's.
#[test]
fn the_obs_crate_is_in_scope() {
    let ws = collect_workspace(&repo_root()).expect("workspace is readable");
    let obs: Vec<&str> = ws
        .files
        .iter()
        .map(|f| f.path.as_str())
        .filter(|p| p.starts_with("crates/obs/src/"))
        .collect();
    assert!(
        obs.len() >= 6,
        "expected the six fedra-obs modules in scope, got {obs:?}"
    );
    for module in [
        "context.rs",
        "metrics.rs",
        "trace.rs",
        "comm.rs",
        "export.rs",
    ] {
        assert!(
            obs.iter().any(|p| p.ends_with(module)),
            "missing crates/obs/src/{module} from lint scope"
        );
    }
}

#[test]
fn the_baseline_matches_a_fresh_run() {
    let root = repo_root();
    let ws = collect_workspace(&root).expect("workspace is readable");
    let diags = Registry::with_default_lints().run(&ws);
    let baseline = Baseline::load(&root.join(BASELINE_PATH));
    // No stale entries: everything in the baseline still reproduces.
    let stale = baseline.stale(&diags);
    assert!(stale.is_empty(), "stale baseline entries: {stale:?}");
    // And the panic-discipline findings were fixed, not baselined: the
    // committed baseline must stay empty.
    assert!(
        baseline.is_empty(),
        "baseline grew to {} entries — fix findings instead of baselining them",
        baseline.len()
    );
}

/// Builds a scratch tree shaped like the workspace, with one seeded
/// violation, and checks it end to end through `run_check`.
#[test]
fn a_seeded_violation_fails_a_scratch_tree() {
    let root = std::env::temp_dir().join(format!("fedra-lint-fixture-{}", std::process::id()));
    let src_dir = root.join("crates/federation/src");
    std::fs::create_dir_all(&src_dir).expect("scratch tree");
    std::fs::write(
        src_dir.join("transport.rs"),
        "fn hot(rx: Receiver<u8>) -> u8 { rx.recv().unwrap() }\n",
    )
    .expect("write fixture");

    let report = run_check(&root, &Registry::with_default_lints()).expect("scratch readable");
    assert_eq!(report.files_checked, 1);
    assert_eq!(report.failing.len(), 1, "{:?}", report.failing);
    assert_eq!(report.failing[0].lint, "panic-discipline");
    assert_eq!(report.failing[0].file, "crates/federation/src/transport.rs");
    assert!(!report.is_clean());

    // Baselining the finding turns the same run clean...
    std::fs::create_dir_all(root.join("crates/lint")).expect("baseline dir");
    std::fs::write(root.join(BASELINE_PATH), Baseline::render(&report.failing))
        .expect("write baseline");
    let report = run_check(&root, &Registry::with_default_lints()).expect("scratch readable");
    assert!(report.failing.is_empty());
    assert_eq!(report.baselined.len(), 1);
    assert!(report.is_clean());

    // ...and fixing the code turns that baseline entry stale, which is
    // also a failure: stale entries must be pruned.
    std::fs::write(
        src_dir.join("transport.rs"),
        "fn hot(rx: Receiver<u8>) -> Result<u8, RecvError> { rx.recv() }\n",
    )
    .expect("rewrite fixture");
    let report = run_check(&root, &Registry::with_default_lints()).expect("scratch readable");
    assert!(report.failing.is_empty());
    assert_eq!(report.stale_baseline.len(), 1);
    assert!(!report.is_clean());

    std::fs::remove_dir_all(&root).ok();
}
