//! Lexer unit tests: the constructs that would make token-level lints lie.

use fedra_lint::lexer::{lex, TokenKind};

fn idents(source: &str) -> Vec<String> {
    lex(source)
        .tokens
        .into_iter()
        .filter(|t| t.kind == TokenKind::Ident)
        .map(|t| t.text)
        .collect()
}

#[test]
fn panicky_words_inside_strings_are_not_identifiers() {
    let src = r#"let msg = "please unwrap() and panic! here";"#;
    let names = idents(src);
    assert_eq!(names, vec!["let", "msg"]);
    let strings: Vec<_> = lex(src)
        .tokens
        .into_iter()
        .filter(|t| t.kind == TokenKind::StrLit)
        .collect();
    assert_eq!(strings.len(), 1);
    assert!(strings[0].text.contains("unwrap()"));
}

#[test]
fn escaped_quotes_do_not_end_a_string() {
    let src = r#"let s = "a \" still string unwrap"; x.lock();"#;
    let names = idents(src);
    assert_eq!(names, vec!["let", "s", "x", "lock"]);
}

#[test]
fn raw_strings_swallow_quotes_and_hashes() {
    let src = r###"let s = r#"has "quotes" and unwrap()"#; done();"###;
    let names = idents(src);
    assert_eq!(names, vec!["let", "s", "done"]);
}

#[test]
fn plain_raw_string_without_hashes() {
    let src = r#"let s = r"no unwrap here"; after();"#;
    assert_eq!(idents(src), vec!["let", "s", "after"]);
}

#[test]
fn byte_and_raw_byte_strings_are_literals() {
    let src = r###"let a = b"unwrap"; let b2 = br#"expect"#; tail();"###;
    assert_eq!(idents(src), vec!["let", "a", "let", "b2", "tail"]);
}

#[test]
fn nested_block_comments_are_invisible() {
    let src = "/* outer /* inner unwrap() */ still comment */ fn live() {}";
    assert_eq!(idents(src), vec!["fn", "live"]);
}

#[test]
fn line_comments_hide_code_but_yield_allow_directives() {
    let src = "\
// x.unwrap() is commented out
let a = 1; // fedra-lint: allow(panic-discipline)
";
    let lexed = lex(src);
    assert_eq!(
        lexed.tokens.iter().filter(|t| t.is_ident("unwrap")).count(),
        0
    );
    assert_eq!(lexed.allows.len(), 1);
    assert_eq!(lexed.allows[0].lint, "panic-discipline");
    assert_eq!(lexed.allows[0].line, 2);
}

#[test]
fn allow_directive_accepts_a_lint_list() {
    let lexed = lex("// fedra-lint: allow(lock-discipline, federation-safety)\n");
    let lints: Vec<_> = lexed.allows.iter().map(|a| a.lint.as_str()).collect();
    assert_eq!(lints, vec!["lock-discipline", "federation-safety"]);
}

#[test]
fn lifetimes_are_not_char_literals() {
    let src = "fn f<'a>(x: &'a str) -> char { 'a' }";
    let tokens = lex(src).tokens;
    let lifetimes: Vec<_> = tokens
        .iter()
        .filter(|t| t.kind == TokenKind::Lifetime)
        .map(|t| t.text.as_str())
        .collect();
    assert_eq!(lifetimes, vec!["a", "a"]);
    let chars: Vec<_> = tokens
        .iter()
        .filter(|t| t.kind == TokenKind::CharLit)
        .map(|t| t.text.as_str())
        .collect();
    assert_eq!(chars, vec!["'a'"]);
}

#[test]
fn escaped_char_literals_lex_as_chars() {
    let src = r"let nl = '\n'; let q = '\''; let sp = ' ';";
    let chars: Vec<_> = lex(src)
        .tokens
        .into_iter()
        .filter(|t| t.kind == TokenKind::CharLit)
        .collect();
    assert_eq!(chars.len(), 3);
    assert_eq!(chars[2].text, "' '");
}

#[test]
fn static_lifetime_is_a_lifetime() {
    let src = "static S: &'static str = \"x\";";
    let tokens = lex(src).tokens;
    assert!(tokens
        .iter()
        .any(|t| t.kind == TokenKind::Lifetime && t.text == "static"));
}

#[test]
fn raw_identifiers_lex_as_identifiers() {
    let src = "let r#fn = 1;";
    assert_eq!(idents(src), vec!["let", "fn"]);
}

#[test]
fn floats_and_ranges_disambiguate() {
    let src = "let a = 1.5; for i in 0..10 {}";
    let numbers: Vec<_> = lex(src)
        .tokens
        .into_iter()
        .filter(|t| t.kind == TokenKind::Number)
        .map(|t| t.text)
        .collect();
    assert_eq!(numbers, vec!["1.5", "0", "10"]);
}

#[test]
fn positions_are_one_based_lines_and_columns() {
    let src = "let a = 1;\n  let b = 2;\n";
    let tokens = lex(src).tokens;
    let b = tokens.iter().find(|t| t.is_ident("b")).expect("b token");
    assert_eq!(b.line, 2);
    assert_eq!(b.col, 7);
}

#[test]
fn unterminated_constructs_never_panic() {
    for src in [
        "let s = \"never closed",
        "/* never closed",
        "let s = r#\"never closed",
        "let c = '",
    ] {
        let _ = lex(src); // must not panic
    }
}
