//! Machine-readable output: stability (byte-identical across runs),
//! well-formedness (a tiny JSON parser — no serde in this crate) and
//! suppression-state round-tripping through the baseline.

use std::path::PathBuf;

use fedra_lint::diagnostics::Baseline;
use fedra_lint::output::{render_json, render_sarif};
use fedra_lint::registry::Registry;
use fedra_lint::workspace::{run_check, BASELINE_PATH};

/// Builds a scratch workspace with one violation per new pass and
/// returns its root.
fn scratch_tree(tag: &str) -> PathBuf {
    let root = std::env::temp_dir().join(format!("fedra-lint-output-{tag}-{}", std::process::id()));
    let fed = root.join("crates/federation/src");
    let core = root.join("crates/core/src");
    std::fs::create_dir_all(&fed).expect("scratch tree");
    std::fs::create_dir_all(&core).expect("scratch tree");
    std::fs::write(
        fed.join("transport.rs"),
        "fn hot(rx: Receiver<u8>) -> u8 { rx.recv().unwrap() }\n",
    )
    .expect("write fixture");
    std::fs::write(
        core.join("planner.rs"),
        "fn merge(m: HashMap<u64, f64>) -> usize { m.values().count() }\n",
    )
    .expect("write fixture");
    root
}

fn check(root: &PathBuf) -> fedra_lint::workspace::Report {
    run_check(root, &Registry::with_default_lints()).expect("scratch tree is readable")
}

#[test]
fn json_and_sarif_are_byte_identical_across_runs() {
    let root = scratch_tree("stable");
    let registry = Registry::with_default_lints();
    let rules = registry.lints();

    let first = check(&root);
    let second = check(&root);
    assert_eq!(render_json(&first, &rules), render_json(&second, &rules));
    assert_eq!(render_sarif(&first, &rules), render_sarif(&second, &rules));

    std::fs::remove_dir_all(&root).ok();
}

#[test]
fn json_output_parses_and_carries_the_findings() {
    let root = scratch_tree("json");
    let registry = Registry::with_default_lints();
    let json = render_json(&check(&root), &registry.lints());

    parse_json(&json);
    assert!(json.contains("\"rule\": \"panic-discipline\""));
    assert!(json.contains("\"rule\": \"determinism-discipline\""));
    assert!(json.contains("\"file\": \"crates/federation/src/transport.rs\""));
    assert!(json.contains("\"suppressed\": false"));
    // Per-rule totals (what ci.sh diffs) cover every registered rule.
    for (name, _, _) in registry.lints() {
        assert!(json.contains(&format!("\"{name}\":")), "missing {name}");
    }

    std::fs::remove_dir_all(&root).ok();
}

#[test]
fn sarif_output_parses_with_rules_spans_and_suppressions() {
    let root = scratch_tree("sarif");
    let registry = Registry::with_default_lints();
    let rules = registry.lints();

    let report = check(&root);
    let sarif = render_sarif(&report, &rules);
    parse_json(&sarif);
    assert!(sarif.contains("\"version\": \"2.1.0\""));
    assert!(sarif.contains("\"ruleId\": \"panic-discipline\""));
    assert!(sarif.contains("\"startLine\""));
    // Nothing is baselined yet, so no suppressions appear.
    assert!(!sarif.contains("\"suppressions\""));

    // Baseline the findings: the same findings re-render as suppressed,
    // in both formats, and the run goes clean.
    std::fs::create_dir_all(root.join("crates/lint")).expect("baseline dir");
    std::fs::write(root.join(BASELINE_PATH), Baseline::render(&report.failing))
        .expect("write baseline");
    let baselined = check(&root);
    assert!(baselined.is_clean());
    let sarif = render_sarif(&baselined, &rules);
    parse_json(&sarif);
    assert!(sarif.contains("\"suppressions\": [ { \"kind\": \"external\" } ]"));
    let json = render_json(&baselined, &rules);
    parse_json(&json);
    assert!(json.contains("\"suppressed\": true"));
    assert!(!json.contains("\"suppressed\": false"));

    std::fs::remove_dir_all(&root).ok();
}

// ----------------------------------------------------------------- JSON parser
//
// A minimal recursive-descent JSON reader, enough to prove the emitted
// documents are well-formed (balanced structure, legal strings/numbers/
// literals). Panics on malformed input.

fn parse_json(text: &str) {
    let chars: Vec<char> = text.chars().collect();
    let mut pos = 0usize;
    parse_value(&chars, &mut pos);
    skip_ws(&chars, &mut pos);
    assert_eq!(pos, chars.len(), "trailing garbage after JSON document");
}

fn skip_ws(chars: &[char], pos: &mut usize) {
    while chars.get(*pos).is_some_and(|c| c.is_whitespace()) {
        *pos += 1;
    }
}

fn expect(chars: &[char], pos: &mut usize, c: char) {
    skip_ws(chars, pos);
    assert_eq!(chars.get(*pos), Some(&c), "expected `{c}` at {pos}");
    *pos += 1;
}

fn parse_value(chars: &[char], pos: &mut usize) {
    skip_ws(chars, pos);
    match chars.get(*pos) {
        Some('{') => parse_object(chars, pos),
        Some('[') => parse_array(chars, pos),
        Some('"') => parse_string(chars, pos),
        Some(c) if c.is_ascii_digit() || *c == '-' => parse_number(chars, pos),
        Some('t') => parse_literal(chars, pos, "true"),
        Some('f') => parse_literal(chars, pos, "false"),
        Some('n') => parse_literal(chars, pos, "null"),
        other => panic!("unexpected JSON value start {other:?} at {pos}"),
    }
}

fn parse_object(chars: &[char], pos: &mut usize) {
    expect(chars, pos, '{');
    skip_ws(chars, pos);
    if chars.get(*pos) == Some(&'}') {
        *pos += 1;
        return;
    }
    loop {
        skip_ws(chars, pos);
        parse_string(chars, pos);
        expect(chars, pos, ':');
        parse_value(chars, pos);
        skip_ws(chars, pos);
        match chars.get(*pos) {
            Some(',') => *pos += 1,
            Some('}') => {
                *pos += 1;
                return;
            }
            other => panic!("expected `,` or `}}` in object, got {other:?}"),
        }
    }
}

fn parse_array(chars: &[char], pos: &mut usize) {
    expect(chars, pos, '[');
    skip_ws(chars, pos);
    if chars.get(*pos) == Some(&']') {
        *pos += 1;
        return;
    }
    loop {
        parse_value(chars, pos);
        skip_ws(chars, pos);
        match chars.get(*pos) {
            Some(',') => *pos += 1,
            Some(']') => {
                *pos += 1;
                return;
            }
            other => panic!("expected `,` or `]` in array, got {other:?}"),
        }
    }
}

fn parse_string(chars: &[char], pos: &mut usize) {
    expect(chars, pos, '"');
    while let Some(&c) = chars.get(*pos) {
        *pos += 1;
        match c {
            '"' => return,
            '\\' => {
                let escaped = chars.get(*pos).copied().expect("escape at end of input");
                *pos += 1;
                match escaped {
                    '"' | '\\' | '/' | 'b' | 'f' | 'n' | 'r' | 't' => {}
                    'u' => {
                        for _ in 0..4 {
                            let h = chars.get(*pos).copied().expect("short \\u escape");
                            assert!(h.is_ascii_hexdigit(), "bad \\u digit `{h}`");
                            *pos += 1;
                        }
                    }
                    other => panic!("illegal escape `\\{other}`"),
                }
            }
            c => assert!((c as u32) >= 0x20, "raw control character in string"),
        }
    }
    panic!("unterminated string");
}

fn parse_number(chars: &[char], pos: &mut usize) {
    if chars.get(*pos) == Some(&'-') {
        *pos += 1;
    }
    let start = *pos;
    while chars
        .get(*pos)
        .is_some_and(|c| c.is_ascii_digit() || matches!(c, '.' | 'e' | 'E' | '+' | '-'))
    {
        *pos += 1;
    }
    assert!(*pos > start, "empty number");
}

fn parse_literal(chars: &[char], pos: &mut usize, lit: &str) {
    for expected in lit.chars() {
        assert_eq!(chars.get(*pos), Some(&expected), "bad literal `{lit}`");
        *pos += 1;
    }
}
