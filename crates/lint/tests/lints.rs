//! Fixture tests: each lint fires on a seeded violation and stays quiet on
//! the repaired equivalent.

use fedra_lint::diagnostics::Level;
use fedra_lint::registry::Registry;
use fedra_lint::scan::SourceFile;
use fedra_lint::workspace::{DocFile, Workspace};

fn run(files: &[SourceFile]) -> Vec<fedra_lint::diagnostics::Diagnostic> {
    Registry::with_default_lints().run(&Workspace::from_files(files.to_vec()))
}

fn file(path: &str, source: &str) -> SourceFile {
    SourceFile::new(path.to_string(), source)
}

// ---------------------------------------------------------------- federation-safety

#[test]
fn federation_safety_flags_location_types_in_response() {
    let src = "
pub enum Response {
    Rows(Vec<SpatialObject>),
    Where(Point),
    Measures(Vec<f64>),
    Agg(Aggregate),
}
";
    let diags = run(&[file("crates/federation/src/protocol.rs", src)]);
    let safety: Vec<_> = diags
        .iter()
        .filter(|d| d.lint == "federation-safety")
        .collect();
    assert_eq!(safety.len(), 3, "{safety:?}");
    assert!(safety[0].message.contains("SpatialObject"));
    assert!(safety[1].message.contains("Point"));
    assert!(safety[2].message.contains("Vec<f64>") || safety[2].message.contains("measure"));
}

#[test]
fn federation_safety_accepts_aggregate_only_responses() {
    let src = "
pub enum Response {
    Agg(Aggregate),
    Memory(SiloMemoryReport),
    Error(String),
}
";
    let diags = run(&[file("crates/federation/src/protocol.rs", src)]);
    assert!(
        diags.iter().all(|d| d.lint != "federation-safety"),
        "{diags:?}"
    );
}

#[test]
fn federation_safety_ignores_request_payloads_and_other_crates() {
    // Requests legitimately carry provider-chosen coordinates to silos.
    let request_side = "
pub enum Request {
    Aggregate { range: Range, center: Point },
}
";
    let diags = run(&[file("crates/federation/src/protocol.rs", request_side)]);
    assert!(diags.iter().all(|d| d.lint != "federation-safety"));
    // A Response enum outside crates/federation is out of scope.
    let elsewhere = "pub enum Response { Raw(Vec<SpatialObject>) }";
    let diags = run(&[file("crates/workload/src/gen.rs", elsewhere)]);
    assert!(diags.iter().all(|d| d.lint != "federation-safety"));
}

// ---------------------------------------------------------------- panic-discipline

#[test]
fn panic_discipline_flags_unwrap_expect_and_macros() {
    let src = "
fn hot(rx: Receiver<u8>) -> u8 {
    let a = rx.recv().unwrap();
    let b = rx.recv().expect(\"reply\");
    if a == b {
        panic!(\"equal\");
    }
    unreachable!()
}
";
    let diags = run(&[file("crates/federation/src/transport.rs", src)]);
    let panics: Vec<_> = diags
        .iter()
        .filter(|d| d.lint == "panic-discipline")
        .collect();
    assert_eq!(panics.len(), 4, "{panics:?}");
    assert!(panics.iter().all(|d| d.level == Level::Deny));
}

#[test]
fn panic_discipline_exempts_test_code() {
    let src = "
fn hot() {}

#[cfg(test)]
mod tests {
    #[test]
    fn roundtrip() {
        make().unwrap();
        panic!(\"fine in tests\");
    }
}
";
    let diags = run(&[file("crates/federation/src/transport.rs", src)]);
    assert!(
        diags.iter().all(|d| d.lint != "panic-discipline"),
        "{diags:?}"
    );
}

#[test]
fn panic_discipline_honors_inline_allow() {
    let src = "
fn convenience() -> u8 {
    fallible().unwrap() // fedra-lint: allow(panic-discipline)
}

fn above() -> u8 {
    // fedra-lint: allow(panic-discipline)
    fallible().unwrap()
}
";
    let diags = run(&[file("crates/federation/src/transport.rs", src)]);
    assert!(
        diags.iter().all(|d| d.lint != "panic-discipline"),
        "{diags:?}"
    );
}

#[test]
fn panic_discipline_scopes_to_federation_and_engine_paths() {
    let src = "fn helper() { thing().unwrap(); }";
    // sql.rs is a user-facing front-end, not the hot path.
    let diags = run(&[file("crates/core/src/sql.rs", src)]);
    assert!(diags.iter().all(|d| d.lint != "panic-discipline"));
    // The engine files are in scope.
    let diags = run(&[file("crates/core/src/framework.rs", src)]);
    assert_eq!(
        diags
            .iter()
            .filter(|d| d.lint == "panic-discipline")
            .count(),
        1
    );
}

#[test]
fn panic_discipline_covers_the_health_tracker() {
    // The circuit breaker (new with the fault-injection work) lives on
    // the hot candidate-selection path, so it must be in lint scope like
    // the rest of crates/federation.
    let src = "
fn allows(&self, silo: SiloId) -> bool {
    self.silos.get(silo).unwrap().lock().state == BreakerState::Closed
}
";
    let diags = run(&[file("crates/federation/src/health.rs", src)]);
    let panics: Vec<_> = diags
        .iter()
        .filter(|d| d.lint == "panic-discipline")
        .collect();
    assert_eq!(panics.len(), 1, "{panics:?}");
    assert!(panics.iter().all(|d| d.level == Level::Deny));
}

#[test]
fn panic_discipline_ignores_strings_and_comments() {
    let src = "
// explains why x.unwrap() would be wrong here
fn hot() {
    log(\"never call unwrap() on the reply\");
}
";
    let diags = run(&[file("crates/federation/src/transport.rs", src)]);
    assert!(
        diags.iter().all(|d| d.lint != "panic-discipline"),
        "{diags:?}"
    );
}

// ---------------------------------------------------------------- lock-discipline

#[test]
fn lock_discipline_flags_blocking_send_under_a_guard() {
    let src = "
fn pump(pool: &Mutex<Vec<u8>>, tx: &Sender<u8>) {
    let pairs = pool.lock();
    let _ = tx.send(1);
}
";
    let diags = run(&[file("crates/core/src/sql.rs", src)]);
    let locks: Vec<_> = diags
        .iter()
        .filter(|d| d.lint == "lock-discipline")
        .collect();
    assert_eq!(locks.len(), 1, "{locks:?}");
    assert!(locks[0].message.contains("pairs"));
    assert!(locks[0].message.contains("send"));
}

#[test]
fn lock_discipline_flags_recv_and_join_and_guard_variants() {
    let src = "
fn a(m: &RwLock<u8>, rx: &Receiver<u8>) {
    let g = m.read();
    let _ = rx.recv();
}
fn b(m: &RwLock<u8>, h: JoinHandle<()>) {
    let g = m.write();
    let _ = h.join();
}
fn c(m: &Mutex<u8>, rx: &Receiver<u8>) {
    let g = m.lock().unwrap();
    let _ = rx.recv_timeout(t);
}
";
    let diags = run(&[file("crates/core/src/sql.rs", src)]);
    assert_eq!(
        diags.iter().filter(|d| d.lint == "lock-discipline").count(),
        3,
        "{diags:?}"
    );
}

#[test]
fn lock_discipline_accepts_drop_before_blocking() {
    let src = "
fn pump(pool: &Mutex<Vec<u8>>, tx: &Sender<u8>) {
    let pairs = pool.lock();
    drop(pairs);
    let _ = tx.send(1);
}
";
    let diags = run(&[file("crates/core/src/sql.rs", src)]);
    assert!(
        diags.iter().all(|d| d.lint != "lock-discipline"),
        "{diags:?}"
    );
}

#[test]
fn lock_discipline_accepts_scoped_guards_and_temporaries() {
    let src = "
fn scoped(pool: &Mutex<Vec<u8>>, tx: &Sender<u8>) {
    {
        let pairs = pool.lock();
        pairs.push(1);
    }
    let _ = tx.send(1);
}
fn temporary(pool: &Mutex<Vec<u8>>, tx: &Sender<u8>) {
    pool.lock().push(1);
    let _ = tx.send(2);
}
fn consumed(pool: &Mutex<Vec<u8>>, tx: &Sender<u8>) {
    let top = pool.lock().pop();
    let _ = tx.send(3);
}
";
    let diags = run(&[file("crates/core/src/sql.rs", src)]);
    assert!(
        diags.iter().all(|d| d.lint != "lock-discipline"),
        "{diags:?}"
    );
}

#[test]
fn lock_discipline_flags_scoped_worker_join_under_a_guard() {
    // The worker-pool idiom: scoped threads joined while a lock guard is
    // still live deadlocks as surely as a bare `JoinHandle::join` —
    // the scoped spawn must not launder the blocking call.
    let src = "
fn reduce(state: &Mutex<Vec<u8>>) {
    std::thread::scope(|scope| {
        let guard = state.lock();
        let handle = scope.spawn(|| 1u8);
        let _ = handle.join();
    });
}
";
    let diags = run(&[file("crates/core/src/sql.rs", src)]);
    let locks: Vec<_> = diags
        .iter()
        .filter(|d| d.lint == "lock-discipline")
        .collect();
    assert_eq!(locks.len(), 1, "{locks:?}");
    assert!(locks[0].message.contains("guard"));
    assert!(locks[0].message.contains("join"));
}

#[test]
fn lock_discipline_accepts_guard_dropped_before_scoped_join() {
    let src = "
fn reduce(state: &Mutex<Vec<u8>>) {
    std::thread::scope(|scope| {
        let guard = state.lock();
        let handle = scope.spawn(|| 1u8);
        drop(guard);
        let _ = handle.join();
    });
}
";
    let diags = run(&[file("crates/core/src/sql.rs", src)]);
    assert!(
        diags.iter().all(|d| d.lint != "lock-discipline"),
        "{diags:?}"
    );
}

// ---------------------------------------------------------------- wire-exhaustiveness

fn wire_fixture(encoded_len_arms: &str, decode_arms: &str, silo_arms: &str) -> Vec<SourceFile> {
    let protocol = format!(
        "
pub enum Request {{
    Ping,
    Extra,
}}

impl Wire for Request {{
    fn encoded_len(&self) -> usize {{
        match self {{
            {encoded_len_arms}
        }}
    }}
    fn encode(&self, buf: &mut Vec<u8>) {{}}
    fn decode(buf: &[u8]) -> Result<Self, WireError> {{
        match tag {{
            {decode_arms}
        }}
    }}
}}
"
    );
    let silo = format!(
        "
fn handle(request: Request) -> Response {{
    match request {{
        {silo_arms}
    }}
}}
"
    );
    vec![
        file("crates/federation/src/protocol.rs", &protocol),
        file("crates/federation/src/silo.rs", &silo),
    ]
}

#[test]
fn wire_exhaustiveness_flags_a_variant_missing_everywhere() {
    let files = wire_fixture(
        "Request::Ping => 1,",
        "0 => Ok(Request::Ping),",
        "Request::Ping => Response::Pong,",
    );
    let diags = run(&files);
    let wire: Vec<_> = diags
        .iter()
        .filter(|d| d.lint == "wire-exhaustiveness")
        .collect();
    // Extra is missing from encoded_len, decode and the silo handler.
    assert_eq!(wire.len(), 3, "{wire:?}");
    assert!(wire.iter().all(|d| d.message.contains("Request::Extra")));
}

#[test]
fn wire_exhaustiveness_accepts_a_complete_protocol() {
    let files = wire_fixture(
        "Request::Ping => 1, Request::Extra => 1,",
        "0 => Ok(Request::Ping), 1 => Ok(Request::Extra),",
        "Request::Ping => Response::Pong, Request::Extra => Response::Pong,",
    );
    let diags = run(&files);
    assert!(
        diags.iter().all(|d| d.lint != "wire-exhaustiveness"),
        "{diags:?}"
    );
}

// ---------------------------------------------------------------- registry levels

#[test]
fn registry_levels_rewrite_or_disable_findings() {
    let src = "fn hot() { thing().unwrap(); }";
    let files = [file("crates/federation/src/transport.rs", src)];

    let ws = Workspace::from_files(files.to_vec());
    let mut warn = Registry::with_default_lints();
    warn.set_level("panic-discipline", Level::Warn);
    let diags = warn.run(&ws);
    assert_eq!(diags.len(), 1);
    assert_eq!(diags[0].level, Level::Warn);

    let mut off = Registry::with_default_lints();
    off.set_level("panic-discipline", Level::Allow);
    assert!(off.run(&ws).is_empty());
}

// ---------------------------------------------------------------- determinism-discipline

#[test]
fn determinism_flags_unordered_iteration_in_a_region() {
    let src = "
fn merge(results: HashMap<u64, f64>) -> f64 {
    let mut total = 0.0;
    for v in results.values() {
        total += v;
    }
    total
}
";
    let diags = run(&[file("crates/core/src/planner.rs", src)]);
    let det: Vec<_> = diags
        .iter()
        .filter(|d| d.lint == "determinism-discipline")
        .collect();
    assert_eq!(det.len(), 1, "{det:?}");
    assert!(det[0].message.contains("results"));
}

#[test]
fn determinism_flags_for_loops_over_unordered_containers() {
    let src = "
fn export(seen: HashSet<u64>) {
    for id in &seen {
        emit(id);
    }
}
";
    let diags = run(&[file("crates/core/src/planner.rs", src)]);
    assert_eq!(
        diags
            .iter()
            .filter(|d| d.lint == "determinism-discipline")
            .count(),
        1,
        "{diags:?}"
    );
}

#[test]
fn determinism_flags_clock_thread_identity_and_float_order() {
    let src = "
fn schedule(rx: &Receiver<f64>) -> f64 {
    let t0 = Instant::now();
    let stamp = SystemTime::now();
    let me = thread::current().id();
    let total: f64 = rx.try_iter().sum();
    total
}
fn rank(mut xs: Vec<f64>) {
    xs.sort_by(|a, b| a.partial_cmp(b).unwrap());
}
";
    let diags = run(&[file("crates/core/src/planner.rs", src)]);
    let det: Vec<_> = diags
        .iter()
        .filter(|d| d.lint == "determinism-discipline")
        .collect();
    // Instant::now, SystemTime::now, thread id, completion-order sum,
    // partial_cmp comparator.
    assert_eq!(det.len(), 5, "{det:?}");
}

#[test]
fn determinism_is_quiet_outside_regions_and_in_tests() {
    let src = "
fn merge(results: HashMap<u64, f64>) -> f64 {
    results.values().sum()
}
";
    // sql.rs is not a deterministic region.
    let diags = run(&[file("crates/core/src/sql.rs", src)]);
    assert!(diags.iter().all(|d| d.lint != "determinism-discipline"));
    // Test modules inside a region file are exempt.
    let test_src = "
fn pure() {}

#[cfg(test)]
mod tests {
    #[test]
    fn order_free() {
        let m: HashMap<u64, f64> = make();
        let _ = m.values().count();
        let _ = Instant::now();
    }
}
";
    let diags = run(&[file("crates/core/src/planner.rs", test_src)]);
    assert!(
        diags.iter().all(|d| d.lint != "determinism-discipline"),
        "{diags:?}"
    );
}

#[test]
fn determinism_accepts_ordered_containers_and_total_cmp() {
    let src = "
fn merge(results: BTreeMap<u64, f64>) -> f64 {
    results.values().sum()
}
fn rank(mut xs: Vec<f64>) {
    xs.sort_by(f64::total_cmp);
}
";
    let diags = run(&[file("crates/core/src/planner.rs", src)]);
    assert!(
        diags.iter().all(|d| d.lint != "determinism-discipline"),
        "{diags:?}"
    );
}

#[test]
fn determinism_honors_region_markers_and_inline_allows() {
    // A file outside the built-in region list opts in with the marker.
    let marked = "
// fedra-lint: deterministic-region
fn merge(results: HashMap<u64, f64>) -> f64 {
    results.values().sum()
}
";
    let diags = run(&[file("crates/workload/src/gen.rs", marked)]);
    assert_eq!(
        diags
            .iter()
            .filter(|d| d.lint == "determinism-discipline")
            .count(),
        1,
        "{diags:?}"
    );
    // An allow directive suppresses a justified finding.
    let allowed = "
fn merge(results: HashMap<u64, f64>) -> f64 {
    // Feeds a commutative integer max, order cannot escape.
    // fedra-lint: allow(determinism-discipline)
    results.values().fold(0.0, f64::max)
}
";
    let diags = run(&[file("crates/core/src/planner.rs", allowed)]);
    assert!(
        diags.iter().all(|d| d.lint != "determinism-discipline"),
        "{diags:?}"
    );
}

// ---------------------------------------------------------------- lock-order

#[test]
fn lock_order_flags_a_cycle_in_one_file() {
    let src = "
fn forward(x: &Mutex<u8>, y: &Mutex<u8>) {
    let a = x.lock();
    let b = y.lock();
}
fn backward(x: &Mutex<u8>, y: &Mutex<u8>) {
    let b = y.lock();
    let a = x.lock();
}
";
    let diags = run(&[file("crates/federation/src/transport.rs", src)]);
    let order: Vec<_> = diags.iter().filter(|d| d.lint == "lock-order").collect();
    assert_eq!(order.len(), 1, "{order:?}");
    assert!(order[0].message.contains("`x`") && order[0].message.contains("`y`"));
    // Reported once, at the lexically-first edge, naming the reverse site.
    assert!(order[0].message.contains("transport.rs:8"), "{order:?}");
}

#[test]
fn lock_order_propagates_one_call_level_across_functions() {
    // The cycle spans two functions: `outer` holds `a` and calls
    // `take_b`, which acquires `b`; `reversed` takes them directly in
    // the opposite order.
    let src = "
fn outer(x: &Mutex<u8>) {
    let ga = a.lock();
    take_b();
}
fn take_b() {
    let gb = b.lock();
}
fn reversed() {
    let gb = b.lock();
    let ga = a.lock();
}
";
    let diags = run(&[file("crates/federation/src/transport.rs", src)]);
    let order: Vec<_> = diags.iter().filter(|d| d.lint == "lock-order").collect();
    assert_eq!(order.len(), 1, "{order:?}");
    assert!(
        order[0].message.contains("via call to `take_b`"),
        "{order:?}"
    );
}

#[test]
fn lock_order_accepts_a_consistent_order() {
    let src = "
fn one(x: &Mutex<u8>, y: &Mutex<u8>) {
    let a = x.lock();
    let b = y.lock();
}
fn two(x: &Mutex<u8>, y: &Mutex<u8>) {
    let a = x.lock();
    let b = y.lock();
}
fn three(x: &Mutex<u8>) {
    let a = x.lock();
}
";
    let diags = run(&[file("crates/federation/src/transport.rs", src)]);
    assert!(diags.iter().all(|d| d.lint != "lock-order"), "{diags:?}");
}

#[test]
fn lock_order_respects_drop_and_scopes() {
    // `x` is released (drop / scope end) before `y` is taken, so the
    // opposite order elsewhere is not a cycle.
    let src = "
fn forward(x: &Mutex<u8>, y: &Mutex<u8>) {
    let a = x.lock();
    drop(a);
    let b = y.lock();
}
fn scoped(x: &Mutex<u8>, y: &Mutex<u8>) {
    {
        let a = x.lock();
    }
    let b = y.lock();
}
fn backward(x: &Mutex<u8>, y: &Mutex<u8>) {
    let b = y.lock();
    let a = x.lock();
}
";
    let diags = run(&[file("crates/federation/src/transport.rs", src)]);
    assert!(diags.iter().all(|d| d.lint != "lock-order"), "{diags:?}");
}

#[test]
fn lock_order_skips_ambiguous_callees_and_honors_allow() {
    // Two functions named `helper` exist: propagation must not guess.
    let ambiguous = "
fn outer() {
    let ga = a.lock();
    helper();
}
fn helper() {
    let gb = b.lock();
}
fn reversed() {
    let gb = b.lock();
    let ga = a.lock();
}
";
    let other = "fn helper() {}";
    let diags = run(&[
        file("crates/federation/src/transport.rs", ambiguous),
        file("crates/core/src/sql.rs", other),
    ]);
    assert!(diags.iter().all(|d| d.lint != "lock-order"), "{diags:?}");
    // A justified cycle can be allowed at the reported site.
    let allowed = "
fn forward(x: &Mutex<u8>, y: &Mutex<u8>) {
    let a = x.lock();
    // Same-named locks on disjoint types; no real cycle.
    // fedra-lint: allow(lock-order)
    let b = y.lock();
}
fn backward(x: &Mutex<u8>, y: &Mutex<u8>) {
    let b = y.lock();
    let a = x.lock();
}
";
    let diags = run(&[file("crates/federation/src/transport.rs", allowed)]);
    assert!(diags.iter().all(|d| d.lint != "lock-order"), "{diags:?}");
}

// ---------------------------------------------------------------- obs-exhaustiveness

fn ws_with_design(files: Vec<SourceFile>, design: &str) -> Workspace {
    let mut ws = Workspace::from_files(files);
    ws.docs.push(DocFile {
        path: "DESIGN.md".to_string(),
        text: design.to_string(),
    });
    ws
}

const DESIGN_WITH_REGISTRY: &str = "
# DESIGN

## 5d. Observability

| `fedra_queries_total` | counter | queries executed |

## 5e. Something else

`fedra_undocumented_total` mentioned outside the registry section does
not count.
";

#[test]
fn obs_exhaustiveness_flags_an_undocumented_metric() {
    let src = r#"
fn record(obs: &ObsContext) {
    obs.inc("fedra_queries_total");
    obs.inc("fedra_undocumented_total");
}
"#;
    let ws = ws_with_design(
        vec![file("crates/core/src/framework.rs", src)],
        DESIGN_WITH_REGISTRY,
    );
    let diags = Registry::with_default_lints().run(&ws);
    let obs: Vec<_> = diags
        .iter()
        .filter(|d| d.lint == "obs-exhaustiveness")
        .collect();
    assert_eq!(obs.len(), 1, "{obs:?}");
    assert!(obs[0].message.contains("fedra_undocumented_total"));
}

#[test]
fn obs_exhaustiveness_accepts_documented_dynamic_and_test_metrics() {
    let src = r#"
fn record(obs: &ObsContext) {
    obs.inc("fedra_queries_total{algo=\"exact\"}");
    let dynamic = format!("fedra_{}", suffix);
    let prefix = "fedra_queries_";
}

#[cfg(test)]
mod tests {
    #[test]
    fn scratch() {
        record_metric("fedra_test_only_total");
    }
}
"#;
    let ws = ws_with_design(
        vec![file("crates/core/src/framework.rs", src)],
        DESIGN_WITH_REGISTRY,
    );
    let diags = Registry::with_default_lints().run(&ws);
    assert!(
        diags.iter().all(|d| d.lint != "obs-exhaustiveness"),
        "{diags:?}"
    );
}

#[test]
fn obs_exhaustiveness_skips_the_check_without_a_design_doc() {
    let src = r#"fn record(obs: &ObsContext) { obs.inc("fedra_unheard_of_total"); }"#;
    let diags = run(&[file("crates/core/src/framework.rs", src)]);
    assert!(
        diags.iter().all(|d| d.lint != "obs-exhaustiveness"),
        "{diags:?}"
    );
}

#[test]
fn obs_exhaustiveness_pins_the_partition_metrics_registry() {
    // The §5i partition-tolerance metrics: recorded in product code,
    // they must appear in the §5d registry — dropping one from the doc
    // is a lint failure, not a silent drift.
    let src = r#"
fn record(obs: &ObsContext, reg: &MetricsRegistry) {
    obs.inc("fedra_degraded_answers_total");
    obs.set_gauge("fedra_coverage_ppm", ppm);
    reg.counter("fedra_epoch_fenced_replies_total").inc();
    reg.counter("fedra_snapshot_saved_total").inc();
    reg.counter("fedra_snapshot_loaded_total").inc();
}
"#;
    let documented = "
# DESIGN

## 5d. Observability

| `fedra_degraded_answers_total` | counter | degraded answers |
| `fedra_coverage_ppm` | gauge | mass fraction |
| `fedra_epoch_fenced_replies_total` | counter | fenced stale replies |
| `fedra_snapshot_saved_total` | counter | snapshots saved |
| `fedra_snapshot_loaded_total` | counter | snapshots loaded |

## 5e. Next
";
    let ws = ws_with_design(
        vec![file("crates/federation/src/transport/socket.rs", src)],
        documented,
    );
    let diags = Registry::with_default_lints().run(&ws);
    assert!(
        diags.iter().all(|d| d.lint != "obs-exhaustiveness"),
        "{diags:?}"
    );

    let missing_one = documented.replace(
        "| `fedra_epoch_fenced_replies_total` | counter | fenced stale replies |\n",
        "",
    );
    let ws = ws_with_design(
        vec![file("crates/federation/src/transport/socket.rs", src)],
        &missing_one,
    );
    let diags = Registry::with_default_lints().run(&ws);
    let obs: Vec<_> = diags
        .iter()
        .filter(|d| d.lint == "obs-exhaustiveness")
        .collect();
    assert_eq!(obs.len(), 1, "{obs:?}");
    assert!(obs[0].message.contains("fedra_epoch_fenced_replies_total"));
}

#[test]
fn panic_discipline_gates_the_chaos_proxy_write_path() {
    // The chaos proxy builds reply frames into a Vec before corrupting
    // them; `.expect("vec write")` there would kill the proxy thread
    // mid-soak. The typed match the product code uses must pass, the
    // shortcut must not.
    let panicky = r#"
fn pump(stream: &mut TcpStream) {
    let mut buf = Vec::new();
    write_reply_frame(&mut buf, corr, epoch, &payload).expect("vec write");
    stream.write_all(&buf).ok();
}
"#;
    let diags = run(&[file("crates/federation/src/transport/chaos.rs", panicky)]);
    let panics: Vec<_> = diags
        .iter()
        .filter(|d| d.lint == "panic-discipline")
        .collect();
    assert_eq!(panics.len(), 1, "{panics:?}");

    let typed = r#"
fn pump(stream: &mut TcpStream) {
    let mut buf = Vec::new();
    let outcome = match write_reply_frame(&mut buf, corr, epoch, &payload) {
        Ok(()) => stream.write_all(&buf),
        Err(e) => Err(e),
    };
    let _ = outcome;
}
"#;
    let diags = run(&[file("crates/federation/src/transport/chaos.rs", typed)]);
    assert!(
        diags.iter().all(|d| d.lint != "panic-discipline"),
        "{diags:?}"
    );
}

#[test]
fn obs_exhaustiveness_flags_an_uncounted_response_variant() {
    let src = "
pub enum Response {
    Agg(Aggregate),
    Uncounted(u64),
}

impl Wire for Response {
    fn encoded_len(&self) -> usize {
        match self {
            Response::Agg(_) => 9,
            _ => 0,
        }
    }
}
";
    let diags = run(&[file("crates/federation/src/protocol.rs", src)]);
    let obs: Vec<_> = diags
        .iter()
        .filter(|d| d.lint == "obs-exhaustiveness")
        .collect();
    assert_eq!(obs.len(), 1, "{obs:?}");
    assert!(obs[0].message.contains("Response::Uncounted"));
}

#[test]
fn obs_exhaustiveness_accepts_fully_counted_responses_and_allows() {
    let complete = "
pub enum Response {
    Agg(Aggregate),
    Pong,
}

impl Wire for Response {
    fn encoded_len(&self) -> usize {
        match self {
            Response::Agg(_) => 9,
            Response::Pong => 1,
        }
    }
}
";
    let diags = run(&[file("crates/federation/src/protocol.rs", complete)]);
    assert!(
        diags.iter().all(|d| d.lint != "obs-exhaustiveness"),
        "{diags:?}"
    );
    let allowed = "
pub enum Response {
    Agg(Aggregate),
    // Carries no bytes on the wire by construction.
    // fedra-lint: allow(obs-exhaustiveness)
    Phantom,
}

impl Wire for Response {
    fn encoded_len(&self) -> usize {
        match self {
            Response::Agg(_) => 9,
            _ => 0,
        }
    }
}
";
    let diags = run(&[file("crates/federation/src/protocol.rs", allowed)]);
    assert!(
        diags.iter().all(|d| d.lint != "obs-exhaustiveness"),
        "{diags:?}"
    );
}
