//! Fixture tests: each lint fires on a seeded violation and stays quiet on
//! the repaired equivalent.

use fedra_lint::diagnostics::Level;
use fedra_lint::registry::Registry;
use fedra_lint::scan::SourceFile;

fn run(files: &[SourceFile]) -> Vec<fedra_lint::diagnostics::Diagnostic> {
    Registry::with_default_lints().run(files)
}

fn file(path: &str, source: &str) -> SourceFile {
    SourceFile::new(path.to_string(), source)
}

// ---------------------------------------------------------------- federation-safety

#[test]
fn federation_safety_flags_location_types_in_response() {
    let src = "
pub enum Response {
    Rows(Vec<SpatialObject>),
    Where(Point),
    Measures(Vec<f64>),
    Agg(Aggregate),
}
";
    let diags = run(&[file("crates/federation/src/protocol.rs", src)]);
    let safety: Vec<_> = diags
        .iter()
        .filter(|d| d.lint == "federation-safety")
        .collect();
    assert_eq!(safety.len(), 3, "{safety:?}");
    assert!(safety[0].message.contains("SpatialObject"));
    assert!(safety[1].message.contains("Point"));
    assert!(safety[2].message.contains("Vec<f64>") || safety[2].message.contains("measure"));
}

#[test]
fn federation_safety_accepts_aggregate_only_responses() {
    let src = "
pub enum Response {
    Agg(Aggregate),
    Memory(SiloMemoryReport),
    Error(String),
}
";
    let diags = run(&[file("crates/federation/src/protocol.rs", src)]);
    assert!(
        diags.iter().all(|d| d.lint != "federation-safety"),
        "{diags:?}"
    );
}

#[test]
fn federation_safety_ignores_request_payloads_and_other_crates() {
    // Requests legitimately carry provider-chosen coordinates to silos.
    let request_side = "
pub enum Request {
    Aggregate { range: Range, center: Point },
}
";
    let diags = run(&[file("crates/federation/src/protocol.rs", request_side)]);
    assert!(diags.iter().all(|d| d.lint != "federation-safety"));
    // A Response enum outside crates/federation is out of scope.
    let elsewhere = "pub enum Response { Raw(Vec<SpatialObject>) }";
    let diags = run(&[file("crates/workload/src/gen.rs", elsewhere)]);
    assert!(diags.iter().all(|d| d.lint != "federation-safety"));
}

// ---------------------------------------------------------------- panic-discipline

#[test]
fn panic_discipline_flags_unwrap_expect_and_macros() {
    let src = "
fn hot(rx: Receiver<u8>) -> u8 {
    let a = rx.recv().unwrap();
    let b = rx.recv().expect(\"reply\");
    if a == b {
        panic!(\"equal\");
    }
    unreachable!()
}
";
    let diags = run(&[file("crates/federation/src/transport.rs", src)]);
    let panics: Vec<_> = diags
        .iter()
        .filter(|d| d.lint == "panic-discipline")
        .collect();
    assert_eq!(panics.len(), 4, "{panics:?}");
    assert!(panics.iter().all(|d| d.level == Level::Deny));
}

#[test]
fn panic_discipline_exempts_test_code() {
    let src = "
fn hot() {}

#[cfg(test)]
mod tests {
    #[test]
    fn roundtrip() {
        make().unwrap();
        panic!(\"fine in tests\");
    }
}
";
    let diags = run(&[file("crates/federation/src/transport.rs", src)]);
    assert!(
        diags.iter().all(|d| d.lint != "panic-discipline"),
        "{diags:?}"
    );
}

#[test]
fn panic_discipline_honors_inline_allow() {
    let src = "
fn convenience() -> u8 {
    fallible().unwrap() // fedra-lint: allow(panic-discipline)
}

fn above() -> u8 {
    // fedra-lint: allow(panic-discipline)
    fallible().unwrap()
}
";
    let diags = run(&[file("crates/federation/src/transport.rs", src)]);
    assert!(
        diags.iter().all(|d| d.lint != "panic-discipline"),
        "{diags:?}"
    );
}

#[test]
fn panic_discipline_scopes_to_federation_and_engine_paths() {
    let src = "fn helper() { thing().unwrap(); }";
    // sql.rs is a user-facing front-end, not the hot path.
    let diags = run(&[file("crates/core/src/sql.rs", src)]);
    assert!(diags.iter().all(|d| d.lint != "panic-discipline"));
    // The engine files are in scope.
    let diags = run(&[file("crates/core/src/framework.rs", src)]);
    assert_eq!(
        diags
            .iter()
            .filter(|d| d.lint == "panic-discipline")
            .count(),
        1
    );
}

#[test]
fn panic_discipline_covers_the_health_tracker() {
    // The circuit breaker (new with the fault-injection work) lives on
    // the hot candidate-selection path, so it must be in lint scope like
    // the rest of crates/federation.
    let src = "
fn allows(&self, silo: SiloId) -> bool {
    self.silos.get(silo).unwrap().lock().state == BreakerState::Closed
}
";
    let diags = run(&[file("crates/federation/src/health.rs", src)]);
    let panics: Vec<_> = diags
        .iter()
        .filter(|d| d.lint == "panic-discipline")
        .collect();
    assert_eq!(panics.len(), 1, "{panics:?}");
    assert!(panics.iter().all(|d| d.level == Level::Deny));
}

#[test]
fn panic_discipline_ignores_strings_and_comments() {
    let src = "
// explains why x.unwrap() would be wrong here
fn hot() {
    log(\"never call unwrap() on the reply\");
}
";
    let diags = run(&[file("crates/federation/src/transport.rs", src)]);
    assert!(
        diags.iter().all(|d| d.lint != "panic-discipline"),
        "{diags:?}"
    );
}

// ---------------------------------------------------------------- lock-discipline

#[test]
fn lock_discipline_flags_blocking_send_under_a_guard() {
    let src = "
fn pump(pool: &Mutex<Vec<u8>>, tx: &Sender<u8>) {
    let pairs = pool.lock();
    let _ = tx.send(1);
}
";
    let diags = run(&[file("crates/core/src/sql.rs", src)]);
    let locks: Vec<_> = diags
        .iter()
        .filter(|d| d.lint == "lock-discipline")
        .collect();
    assert_eq!(locks.len(), 1, "{locks:?}");
    assert!(locks[0].message.contains("pairs"));
    assert!(locks[0].message.contains("send"));
}

#[test]
fn lock_discipline_flags_recv_and_join_and_guard_variants() {
    let src = "
fn a(m: &RwLock<u8>, rx: &Receiver<u8>) {
    let g = m.read();
    let _ = rx.recv();
}
fn b(m: &RwLock<u8>, h: JoinHandle<()>) {
    let g = m.write();
    let _ = h.join();
}
fn c(m: &Mutex<u8>, rx: &Receiver<u8>) {
    let g = m.lock().unwrap();
    let _ = rx.recv_timeout(t);
}
";
    let diags = run(&[file("crates/core/src/sql.rs", src)]);
    assert_eq!(
        diags.iter().filter(|d| d.lint == "lock-discipline").count(),
        3,
        "{diags:?}"
    );
}

#[test]
fn lock_discipline_accepts_drop_before_blocking() {
    let src = "
fn pump(pool: &Mutex<Vec<u8>>, tx: &Sender<u8>) {
    let pairs = pool.lock();
    drop(pairs);
    let _ = tx.send(1);
}
";
    let diags = run(&[file("crates/core/src/sql.rs", src)]);
    assert!(
        diags.iter().all(|d| d.lint != "lock-discipline"),
        "{diags:?}"
    );
}

#[test]
fn lock_discipline_accepts_scoped_guards_and_temporaries() {
    let src = "
fn scoped(pool: &Mutex<Vec<u8>>, tx: &Sender<u8>) {
    {
        let pairs = pool.lock();
        pairs.push(1);
    }
    let _ = tx.send(1);
}
fn temporary(pool: &Mutex<Vec<u8>>, tx: &Sender<u8>) {
    pool.lock().push(1);
    let _ = tx.send(2);
}
fn consumed(pool: &Mutex<Vec<u8>>, tx: &Sender<u8>) {
    let top = pool.lock().pop();
    let _ = tx.send(3);
}
";
    let diags = run(&[file("crates/core/src/sql.rs", src)]);
    assert!(
        diags.iter().all(|d| d.lint != "lock-discipline"),
        "{diags:?}"
    );
}

#[test]
fn lock_discipline_flags_scoped_worker_join_under_a_guard() {
    // The worker-pool idiom: scoped threads joined while a lock guard is
    // still live deadlocks as surely as a bare `JoinHandle::join` —
    // the scoped spawn must not launder the blocking call.
    let src = "
fn reduce(state: &Mutex<Vec<u8>>) {
    std::thread::scope(|scope| {
        let guard = state.lock();
        let handle = scope.spawn(|| 1u8);
        let _ = handle.join();
    });
}
";
    let diags = run(&[file("crates/core/src/sql.rs", src)]);
    let locks: Vec<_> = diags
        .iter()
        .filter(|d| d.lint == "lock-discipline")
        .collect();
    assert_eq!(locks.len(), 1, "{locks:?}");
    assert!(locks[0].message.contains("guard"));
    assert!(locks[0].message.contains("join"));
}

#[test]
fn lock_discipline_accepts_guard_dropped_before_scoped_join() {
    let src = "
fn reduce(state: &Mutex<Vec<u8>>) {
    std::thread::scope(|scope| {
        let guard = state.lock();
        let handle = scope.spawn(|| 1u8);
        drop(guard);
        let _ = handle.join();
    });
}
";
    let diags = run(&[file("crates/core/src/sql.rs", src)]);
    assert!(
        diags.iter().all(|d| d.lint != "lock-discipline"),
        "{diags:?}"
    );
}

// ---------------------------------------------------------------- wire-exhaustiveness

fn wire_fixture(encoded_len_arms: &str, decode_arms: &str, silo_arms: &str) -> Vec<SourceFile> {
    let protocol = format!(
        "
pub enum Request {{
    Ping,
    Extra,
}}

impl Wire for Request {{
    fn encoded_len(&self) -> usize {{
        match self {{
            {encoded_len_arms}
        }}
    }}
    fn encode(&self, buf: &mut Vec<u8>) {{}}
    fn decode(buf: &[u8]) -> Result<Self, WireError> {{
        match tag {{
            {decode_arms}
        }}
    }}
}}
"
    );
    let silo = format!(
        "
fn handle(request: Request) -> Response {{
    match request {{
        {silo_arms}
    }}
}}
"
    );
    vec![
        file("crates/federation/src/protocol.rs", &protocol),
        file("crates/federation/src/silo.rs", &silo),
    ]
}

#[test]
fn wire_exhaustiveness_flags_a_variant_missing_everywhere() {
    let files = wire_fixture(
        "Request::Ping => 1,",
        "0 => Ok(Request::Ping),",
        "Request::Ping => Response::Pong,",
    );
    let diags = run(&files);
    let wire: Vec<_> = diags
        .iter()
        .filter(|d| d.lint == "wire-exhaustiveness")
        .collect();
    // Extra is missing from encoded_len, decode and the silo handler.
    assert_eq!(wire.len(), 3, "{wire:?}");
    assert!(wire.iter().all(|d| d.message.contains("Request::Extra")));
}

#[test]
fn wire_exhaustiveness_accepts_a_complete_protocol() {
    let files = wire_fixture(
        "Request::Ping => 1, Request::Extra => 1,",
        "0 => Ok(Request::Ping), 1 => Ok(Request::Extra),",
        "Request::Ping => Response::Pong, Request::Extra => Response::Pong,",
    );
    let diags = run(&files);
    assert!(
        diags.iter().all(|d| d.lint != "wire-exhaustiveness"),
        "{diags:?}"
    );
}

// ---------------------------------------------------------------- registry levels

#[test]
fn registry_levels_rewrite_or_disable_findings() {
    let src = "fn hot() { thing().unwrap(); }";
    let files = [file("crates/federation/src/transport.rs", src)];

    let mut warn = Registry::with_default_lints();
    warn.set_level("panic-discipline", Level::Warn);
    let diags = warn.run(&files);
    assert_eq!(diags.len(), 1);
    assert_eq!(diags[0].level, Level::Warn);

    let mut off = Registry::with_default_lints();
    off.set_level("panic-discipline", Level::Allow);
    assert!(off.run(&files).is_empty());
}
