//! `fedra-lint` — workspace static analysis for the fedra federation.
//!
//! The paper's core constraint — raw rows never leave a silo, only
//! aggregates cross the wire — plus the transport's panic and locking
//! discipline are invariants no compiler checks. This crate checks them
//! mechanically: a hand-rolled [`lexer`] (no `syn`: the build environment
//! is offline) feeds token streams to a [`registry::Registry`] of
//! fedra-specific [`lints`], with `file:line:col` [`diagnostics`], an
//! inline `// fedra-lint: allow(<lint>)` escape hatch and a committed
//! baseline for grandfathered findings.
//!
//! Run it as `cargo run -p fedra-lint -- check`; the same pass runs as a
//! tier-1 test (`cargo test -p fedra-lint`), so CI fails on any
//! non-baselined finding. See `README.md` § Static analysis.

#![forbid(unsafe_code)]
#![deny(missing_docs)]

pub mod diagnostics;
pub mod lexer;
pub mod lints;
pub mod output;
pub mod registry;
pub mod scan;
pub mod workspace;
