//! The lint registry: which lints run, at which level.

use crate::diagnostics::{Diagnostic, Level};
use crate::workspace::Workspace;

/// One static-analysis rule.
///
/// A lint sees the **whole workspace** on every run — all lexed sources
/// plus the documentation inputs — so cross-file rules
/// (wire-exhaustiveness pairs `protocol.rs` with `silo.rs`,
/// obs-exhaustiveness pairs metric literals with DESIGN.md §5d) need no
/// special machinery; per-file lints simply loop over `ws.files`.
///
/// To add a lint: implement this trait in `src/lints/`, give it a unique
/// kebab-case `name`, and push it in [`Registry::with_default_lints`].
/// Findings should be pushed with [`Level::Deny`]; the registry rewrites
/// the level to whatever the lint is registered at.
pub trait Lint {
    /// Unique kebab-case name (used in `allow(…)` and the baseline).
    fn name(&self) -> &'static str;
    /// One-line rationale shown by `fedra-lint list`.
    fn description(&self) -> &'static str;
    /// Emits findings over the workspace.
    fn check(&self, ws: &Workspace, diags: &mut Vec<Diagnostic>);
}

/// An ordered set of lints with per-lint levels.
pub struct Registry {
    lints: Vec<(Box<dyn Lint>, Level)>,
}

impl Registry {
    /// An empty registry.
    pub fn new() -> Registry {
        Registry { lints: Vec::new() }
    }

    /// The seven fedra lints, all at [`Level::Deny`].
    pub fn with_default_lints() -> Registry {
        let mut r = Registry::new();
        r.register(Box::new(crate::lints::FederationSafety), Level::Deny);
        r.register(Box::new(crate::lints::PanicDiscipline), Level::Deny);
        r.register(Box::new(crate::lints::LockDiscipline), Level::Deny);
        r.register(Box::new(crate::lints::WireExhaustiveness), Level::Deny);
        r.register(Box::new(crate::lints::DeterminismDiscipline), Level::Deny);
        r.register(Box::new(crate::lints::LockOrder), Level::Deny);
        r.register(Box::new(crate::lints::ObsExhaustiveness), Level::Deny);
        r
    }

    /// Adds a lint at `level`.
    pub fn register(&mut self, lint: Box<dyn Lint>, level: Level) {
        self.lints.push((lint, level));
    }

    /// Reconfigures the level of the lint called `name` (no-op when the
    /// name is unknown).
    pub fn set_level(&mut self, name: &str, level: Level) {
        for (lint, l) in &mut self.lints {
            if lint.name() == name {
                *l = level;
            }
        }
    }

    /// Registered `(name, description, level)` triples.
    pub fn lints(&self) -> Vec<(&'static str, &'static str, Level)> {
        self.lints
            .iter()
            .map(|(lint, level)| (lint.name(), lint.description(), *level))
            .collect()
    }

    /// Runs every enabled lint over `ws`, applies registered levels and
    /// inline `allow` directives, and returns the surviving findings
    /// sorted by location.
    pub fn run(&self, ws: &Workspace) -> Vec<Diagnostic> {
        let mut diags = Vec::new();
        for (lint, level) in &self.lints {
            if *level == Level::Allow {
                continue;
            }
            let mut found = Vec::new();
            lint.check(ws, &mut found);
            for mut d in found {
                d.level = *level;
                let allowed = ws
                    .files
                    .iter()
                    .find(|f| f.path == d.file)
                    .is_some_and(|f| d.is_allowed_by(&f.lexed.allows));
                if !allowed {
                    diags.push(d);
                }
            }
        }
        diags.sort_by(|a, b| {
            (a.file.as_str(), a.line, a.col, a.lint).cmp(&(b.file.as_str(), b.line, b.col, b.lint))
        });
        diags
    }
}

impl Default for Registry {
    fn default() -> Self {
        Registry::with_default_lints()
    }
}
