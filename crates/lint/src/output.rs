//! Machine-readable diagnostics: `--format json` and `--format sarif`.
//!
//! Both renderers are **byte-stable**: given the same workspace and
//! baseline they emit identical bytes on every run — no timestamps, no
//! absolute paths, no map iteration. CI archives the JSON artifact and
//! diffs per-rule counts between runs; the SARIF output feeds any
//! SARIF-consuming viewer (rule id, span, suppression state).
//!
//! Serialization is hand-rolled (the crate is deliberately
//! dependency-free); the only subtlety is string escaping, handled by
//! [`escape`].

use crate::diagnostics::Level;
use crate::workspace::Report;

/// Tool version stamped into both formats (the crate version).
const VERSION: &str = env!("CARGO_PKG_VERSION");

/// Renders the check outcome as a single JSON document.
///
/// Shape: `tool` (name/version), `summary` (counts the human output
/// prints), `rule_counts` (per-rule totals, sorted by rule id — the
/// field CI diffs between runs) and `findings` (one object per
/// diagnostic in location order, with `suppressed` marking baselined
/// entries).
pub fn render_json(report: &Report, rules: &[(&'static str, &'static str, Level)]) -> String {
    let findings = report.all_findings();
    let mut out = String::new();
    out.push_str("{\n");
    out.push_str(&format!(
        "  \"tool\": {{ \"name\": \"fedra-lint\", \"version\": \"{}\" }},\n",
        escape(VERSION)
    ));
    out.push_str(&format!(
        "  \"summary\": {{ \"files_checked\": {}, \"failing\": {}, \"warnings\": {}, \
         \"baselined\": {}, \"stale_baseline\": {} }},\n",
        report.files_checked,
        report.failing.len(),
        report.warnings.len(),
        report.baselined.len(),
        report.stale_baseline.len()
    ));
    out.push_str("  \"rule_counts\": {");
    let mut first = true;
    for (name, _, level) in rules {
        if *level == Level::Allow {
            continue;
        }
        let n = findings.iter().filter(|(d, _)| d.lint == *name).count();
        if !first {
            out.push(',');
        }
        first = false;
        out.push_str(&format!(" \"{}\": {}", escape(name), n));
    }
    out.push_str(" },\n");
    out.push_str("  \"findings\": [");
    for (i, (d, suppressed)) in findings.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(&format!(
            "\n    {{ \"rule\": \"{}\", \"level\": \"{}\", \"file\": \"{}\", \"line\": {}, \
             \"col\": {}, \"suppressed\": {}, \"message\": \"{}\" }}",
            escape(d.lint),
            level_str(d.level),
            escape(&d.file),
            d.line,
            d.col,
            suppressed,
            escape(&d.message)
        ));
    }
    if !findings.is_empty() {
        out.push_str("\n  ");
    }
    out.push_str("]\n}\n");
    out
}

/// Renders the check outcome as SARIF 2.1.0.
///
/// One run, one driver (`fedra-lint`), every registered rule listed under
/// `tool.driver.rules`, one `result` per finding. Baselined findings
/// carry a `suppressions` entry of kind `external` (the committed
/// baseline file is external to the source), matching how SARIF viewers
/// hide suppressed results by default.
pub fn render_sarif(report: &Report, rules: &[(&'static str, &'static str, Level)]) -> String {
    let findings = report.all_findings();
    let mut out = String::new();
    out.push_str("{\n");
    out.push_str("  \"version\": \"2.1.0\",\n");
    out.push_str("  \"$schema\": \"https://json.schemastore.org/sarif-2.1.0.json\",\n");
    out.push_str("  \"runs\": [\n    {\n");
    out.push_str("      \"tool\": {\n        \"driver\": {\n");
    out.push_str(&format!(
        "          \"name\": \"fedra-lint\",\n          \"version\": \"{}\",\n",
        escape(VERSION)
    ));
    out.push_str("          \"rules\": [");
    for (i, (name, desc, _)) in rules.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(&format!(
            "\n            {{ \"id\": \"{}\", \"shortDescription\": {{ \"text\": \"{}\" }} }}",
            escape(name),
            escape(desc)
        ));
    }
    if !rules.is_empty() {
        out.push_str("\n          ");
    }
    out.push_str("]\n        }\n      },\n");
    out.push_str("      \"results\": [");
    for (i, (d, suppressed)) in findings.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(&format!(
            "\n        {{\n          \"ruleId\": \"{}\",\n          \"level\": \"{}\",\n          \
             \"message\": {{ \"text\": \"{}\" }},\n          \"locations\": [ {{ \
             \"physicalLocation\": {{ \"artifactLocation\": {{ \"uri\": \"{}\" }}, \
             \"region\": {{ \"startLine\": {}, \"startColumn\": {} }} }} }} ]",
            escape(d.lint),
            sarif_level(d.level),
            escape(&d.message),
            escape(&d.file),
            d.line,
            d.col
        ));
        if *suppressed {
            out.push_str(",\n          \"suppressions\": [ { \"kind\": \"external\" } ]");
        }
        out.push_str("\n        }");
    }
    if !findings.is_empty() {
        out.push_str("\n      ");
    }
    out.push_str("]\n    }\n  ]\n}\n");
    out
}

fn level_str(level: Level) -> &'static str {
    match level {
        Level::Allow => "allow",
        Level::Warn => "warn",
        Level::Deny => "deny",
    }
}

/// SARIF's result levels: `Deny` fails the run (`error`), `Warn` is
/// advisory (`warning`); `Allow`ed lints never produce findings but the
/// mapping must be total (`note`).
fn sarif_level(level: Level) -> &'static str {
    match level {
        Level::Allow => "note",
        Level::Warn => "warning",
        Level::Deny => "error",
    }
}

/// JSON string escaping: quotes, backslashes and control characters.
fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}
