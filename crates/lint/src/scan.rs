//! Token-stream scanning utilities shared by the lints.
//!
//! Everything here works on the flat [`Token`] stream of
//! [`crate::lexer::lex`] — no syntax tree. The helpers encode the handful
//! of structural facts the lints need: matching delimiters, `#[cfg(test)]`
//! / `#[test]` regions, and enum variant extraction.

use std::path::Path;

use crate::lexer::{lex, Lexed, Token, TokenKind};

/// A lexed source file plus the derived facts lints share.
#[derive(Debug, Clone)]
pub struct SourceFile {
    /// Repo-relative path, forward slashes (stable across platforms).
    pub path: String,
    /// Token stream and allow directives.
    pub lexed: Lexed,
    /// Half-open token-index ranges covered by `#[test]` functions or
    /// `#[cfg(test)]` items (typically the `mod tests` block).
    pub test_regions: Vec<(usize, usize)>,
}

impl SourceFile {
    /// Lexes `source` as `path` (repo-relative).
    pub fn new(path: String, source: &str) -> SourceFile {
        let lexed = lex(source);
        let test_regions = test_regions(&lexed.tokens);
        SourceFile {
            path,
            lexed,
            test_regions,
        }
    }

    /// Reads and lexes a file on disk. `root` anchors the repo-relative
    /// path recorded in diagnostics.
    pub fn load(root: &Path, abs: &Path) -> std::io::Result<SourceFile> {
        let source = std::fs::read_to_string(abs)?;
        let rel = abs.strip_prefix(root).unwrap_or(abs);
        let path = rel
            .components()
            .map(|c| c.as_os_str().to_string_lossy())
            .collect::<Vec<_>>()
            .join("/");
        Ok(SourceFile::new(path, &source))
    }

    /// The token stream.
    pub fn tokens(&self) -> &[Token] {
        &self.lexed.tokens
    }

    /// Whether token `idx` falls inside a test region.
    pub fn in_test_code(&self, idx: usize) -> bool {
        self.test_regions
            .iter()
            .any(|&(start, end)| idx >= start && idx < end)
    }
}

/// Index of the delimiter matching the opener at `open` (`{`/`}`, `(`/`)`,
/// `[`/`]`), or the end of the stream if unbalanced.
pub fn matching(tokens: &[Token], open: usize) -> usize {
    let (open_c, close_c) = match tokens[open].kind {
        TokenKind::Punct('{') => ('{', '}'),
        TokenKind::Punct('(') => ('(', ')'),
        TokenKind::Punct('[') => ('[', ']'),
        _ => return open,
    };
    let mut depth = 0usize;
    for (i, t) in tokens.iter().enumerate().skip(open) {
        if t.is_punct(open_c) {
            depth += 1;
        } else if t.is_punct(close_c) {
            depth -= 1;
            if depth == 0 {
                return i;
            }
        }
    }
    tokens.len()
}

/// Computes the token ranges covered by test-only code: any item carrying
/// a `#[…test…]` attribute (`#[test]`, `#[cfg(test)]`). The region spans
/// from the attribute to the matching close brace of the item's body.
fn test_regions(tokens: &[Token]) -> Vec<(usize, usize)> {
    let mut regions = Vec::new();
    let mut i = 0;
    while i < tokens.len() {
        if tokens[i].is_punct('#') && i + 1 < tokens.len() && tokens[i + 1].is_punct('[') {
            let attr_end = matching(tokens, i + 1);
            let is_test_attr = tokens[i + 1..attr_end].iter().any(|t| t.is_ident("test"));
            if is_test_attr {
                // Find the item's body: the first `{` before any `;` (a
                // braceless item like `use …;` has no body to skip).
                let mut j = attr_end + 1;
                let mut body = None;
                while j < tokens.len() {
                    if tokens[j].is_punct('{') {
                        body = Some(j);
                        break;
                    }
                    if tokens[j].is_punct(';') {
                        break;
                    }
                    j += 1;
                }
                if let Some(body) = body {
                    let end = matching(tokens, body);
                    regions.push((i, end + 1));
                    i = end + 1;
                    continue;
                }
            }
            i = attr_end + 1;
            continue;
        }
        i += 1;
    }
    regions
}

/// Finds `enum <name> { … }` and returns the token range of its body
/// (exclusive of the braces), or `None` when absent.
pub fn enum_body(tokens: &[Token], name: &str) -> Option<(usize, usize)> {
    for i in 0..tokens.len() {
        if tokens[i].is_ident("enum") && tokens.get(i + 1).is_some_and(|t| t.is_ident(name)) {
            // Skip generics/where up to the opening brace.
            let mut j = i + 2;
            while j < tokens.len() && !tokens[j].is_punct('{') {
                j += 1;
            }
            if j < tokens.len() {
                return Some((j + 1, matching(tokens, j)));
            }
        }
    }
    None
}

/// Extracts the variant names (with the token index of each name) from an
/// enum body range produced by [`enum_body`].
pub fn enum_variants(tokens: &[Token], body: (usize, usize)) -> Vec<(String, usize)> {
    let (start, end) = body;
    let mut variants = Vec::new();
    let mut i = start;
    while i < end {
        match tokens[i].kind {
            // Skip attributes on variants.
            TokenKind::Punct('#') if tokens.get(i + 1).is_some_and(|t| t.is_punct('[')) => {
                i = matching(tokens, i + 1) + 1;
            }
            TokenKind::Ident => {
                variants.push((tokens[i].text.clone(), i));
                // Skip the payload and trailing discriminant to the comma.
                let mut j = i + 1;
                while j < end {
                    match tokens[j].kind {
                        TokenKind::Punct('{') | TokenKind::Punct('(') => {
                            j = matching(tokens, j) + 1;
                        }
                        TokenKind::Punct(',') => break,
                        _ => j += 1,
                    }
                }
                i = j + 1;
            }
            _ => i += 1,
        }
    }
    variants
}

/// Finds the body range of `impl <trait> for <ty> { … }`.
pub fn impl_body(tokens: &[Token], trait_name: &str, ty: &str) -> Option<(usize, usize)> {
    for i in 0..tokens.len() {
        if tokens[i].is_ident("impl")
            && tokens.get(i + 1).is_some_and(|t| t.is_ident(trait_name))
            && tokens.get(i + 2).is_some_and(|t| t.is_ident("for"))
            && tokens.get(i + 3).is_some_and(|t| t.is_ident(ty))
        {
            let mut j = i + 4;
            while j < tokens.len() && !tokens[j].is_punct('{') {
                j += 1;
            }
            if j < tokens.len() {
                return Some((j + 1, matching(tokens, j)));
            }
        }
    }
    None
}

/// Finds the body range of `fn <name> … { … }` inside `range`.
pub fn fn_body(tokens: &[Token], range: (usize, usize), name: &str) -> Option<(usize, usize)> {
    let (start, end) = range;
    for i in start..end {
        if tokens[i].is_ident("fn") && tokens.get(i + 1).is_some_and(|t| t.is_ident(name)) {
            let mut j = i + 2;
            while j < end && !tokens[j].is_punct('{') {
                j += 1;
            }
            if j < end {
                return Some((j + 1, matching(tokens, j)));
            }
        }
    }
    None
}

/// Whether `Path :: Variant` (three consecutive tokens: ident, `::`,
/// ident) occurs anywhere inside `range`.
pub fn mentions_variant(
    tokens: &[Token],
    range: (usize, usize),
    path: &str,
    variant: &str,
) -> bool {
    let (start, end) = range;
    (start..end.saturating_sub(3)).any(|i| {
        tokens[i].is_ident(path)
            && tokens[i + 1].is_punct(':')
            && tokens[i + 2].is_punct(':')
            && tokens[i + 3].is_ident(variant)
    })
}
