//! Findings, severity levels, inline suppression and the baseline file.
//!
//! A finding travels through three gates before it fails a check run:
//!
//! 1. **level** — a lint registered at [`Level::Allow`] never reports;
//! 2. **inline allow** — a `// fedra-lint: allow(<lint>)` comment on the
//!    finding's line, or the line directly above it, suppresses the
//!    finding at that site (the escape hatch for deliberate, documented
//!    exceptions — e.g. an API whose contract *is* "panics on error");
//! 3. **baseline** — a committed file of pre-existing findings; anything
//!    listed there is reported as baselined, not failing. New code must
//!    not grow the baseline: `check` fails on any non-baselined finding.

use std::fmt;
use std::path::Path;

use crate::lexer::AllowDirective;

/// Severity of a lint.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Level {
    /// The lint is disabled.
    Allow,
    /// Findings are printed but never fail the run.
    Warn,
    /// Findings fail the run unless baselined or inline-allowed.
    Deny,
}

impl fmt::Display for Level {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Level::Allow => write!(f, "allow"),
            Level::Warn => write!(f, "warn"),
            Level::Deny => write!(f, "deny"),
        }
    }
}

/// One finding: a lint fired at a source location.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Diagnostic {
    /// Which lint fired (its registry name, e.g. `panic-discipline`).
    pub lint: &'static str,
    /// Severity it was registered at.
    pub level: Level,
    /// Repo-relative path with forward slashes.
    pub file: String,
    /// 1-based line.
    pub line: u32,
    /// 1-based column.
    pub col: u32,
    /// Human-readable explanation.
    pub message: String,
}

impl Diagnostic {
    /// The stable identity used for baseline matching: everything except
    /// the exact line/column, so unrelated edits above a baselined finding
    /// do not resurrect it.
    pub fn baseline_key(&self) -> String {
        format!("{}\t{}\t{}", self.lint, self.file, self.message)
    }

    /// Whether an inline allow directive covers this finding (same line or
    /// the line directly above).
    pub fn is_allowed_by(&self, allows: &[AllowDirective]) -> bool {
        allows
            .iter()
            .any(|a| a.lint == self.lint && (a.line == self.line || a.line + 1 == self.line))
    }
}

impl fmt::Display for Diagnostic {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}:{}:{}: {}[{}] {}",
            self.file, self.line, self.col, self.level, self.lint, self.message
        )
    }
}

/// The committed set of pre-existing findings.
///
/// Format: one finding per line, tab-separated `lint<TAB>file<TAB>message`,
/// `#`-comments and blank lines ignored. Line/column are deliberately not
/// part of the key — baselines must survive unrelated edits.
#[derive(Debug, Clone, Default)]
pub struct Baseline {
    entries: Vec<String>,
}

impl Baseline {
    /// Parses baseline text.
    pub fn parse(text: &str) -> Baseline {
        Baseline {
            entries: text
                .lines()
                .map(str::trim_end)
                .filter(|l| !l.is_empty() && !l.starts_with('#'))
                .map(str::to_string)
                .collect(),
        }
    }

    /// Loads a baseline file; a missing file is an empty baseline.
    pub fn load(path: &Path) -> Baseline {
        match std::fs::read_to_string(path) {
            Ok(text) => Baseline::parse(&text),
            Err(_) => Baseline::default(),
        }
    }

    /// Whether `diag` is covered by this baseline.
    pub fn covers(&self, diag: &Diagnostic) -> bool {
        let key = diag.baseline_key();
        self.entries.iter().any(|e| *e == key)
    }

    /// Entries with no matching current finding (stale entries — the bug
    /// they tracked was fixed, so they should be deleted).
    pub fn stale<'a>(&'a self, diags: &[Diagnostic]) -> Vec<&'a str> {
        self.entries
            .iter()
            .filter(|e| !diags.iter().any(|d| d.baseline_key() == **e))
            .map(String::as_str)
            .collect()
    }

    /// Number of entries.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the baseline is empty.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Renders a baseline file covering `diags`.
    pub fn render(diags: &[Diagnostic]) -> String {
        let mut out = String::from(
            "# fedra-lint baseline: pre-existing findings grandfathered in.\n\
             # One finding per line: lint<TAB>file<TAB>message.\n\
             # Regenerate with `cargo run -p fedra-lint -- baseline`.\n",
        );
        let mut keys: Vec<String> = diags.iter().map(Diagnostic::baseline_key).collect();
        keys.sort();
        keys.dedup();
        for key in keys {
            out.push_str(&key);
            out.push('\n');
        }
        out
    }
}
