//! `wire-exhaustiveness`: every `Request` variant must be answerable.
//!
//! The wire protocol has three places that must stay in lock-step with
//! `enum Request`:
//!
//! 1. `impl Wire for Request::encoded_len` — the batched transport
//!    pre-reserves exact frame sizes; a missing case silently breaks the
//!    single-allocation guarantee (or, with a `_ => 0` catch-all, the
//!    byte accounting that *is* the paper's communication metric);
//! 2. the silo handler (`silo.rs`) — a request with no handler arm can
//!    only be answered with a decode error at runtime;
//! 3. `fn decode` — a variant that encodes but does not decode is a
//!    guaranteed `BadTag` for every peer.
//!
//! Rust's own exhaustiveness checking does not help here because these
//! are *three separate `match` statements in two files*: adding a variant
//! compiles cleanly while quietly missing an arm wherever `_ =>` appears.
//! This lint closes that gap by name-matching `Request::<Variant>`
//! mentions in each required site.

use crate::diagnostics::{Diagnostic, Level};
use crate::registry::Lint;
use crate::scan::{enum_body, enum_variants, fn_body, impl_body, mentions_variant, SourceFile};
use crate::workspace::Workspace;

/// See the module docs.
pub struct WireExhaustiveness;

impl Lint for WireExhaustiveness {
    fn name(&self) -> &'static str {
        "wire-exhaustiveness"
    }

    fn description(&self) -> &'static str {
        "every Request variant has an encoded_len case, a decode case and a silo handler arm"
    }

    fn check(&self, ws: &Workspace, diags: &mut Vec<Diagnostic>) {
        let files: &[SourceFile] = &ws.files;
        let Some(protocol) = files
            .iter()
            .find(|f| f.path.ends_with("federation/src/protocol.rs"))
        else {
            return;
        };
        let tokens = protocol.tokens();
        let Some(body) = enum_body(tokens, "Request") else {
            return;
        };
        let variants = enum_variants(tokens, body);
        let silo = files
            .iter()
            .find(|f| f.path.ends_with("federation/src/silo.rs"));

        let wire_impl = impl_body(tokens, "Wire", "Request");
        let encoded_len = wire_impl.and_then(|range| fn_body(tokens, range, "encoded_len"));
        let decode = wire_impl.and_then(|range| fn_body(tokens, range, "decode"));

        for (variant, idx) in &variants {
            let at = &tokens[*idx];
            let mut missing: Vec<&str> = Vec::new();
            if let Some(range) = encoded_len {
                if !mentions_variant(tokens, range, "Request", variant) {
                    missing.push("`encoded_len` case in `impl Wire for Request`");
                }
            }
            if let Some(range) = decode {
                if !mentions_variant(tokens, range, "Request", variant) {
                    missing.push("`decode` case in `impl Wire for Request`");
                }
            }
            if let Some(silo) = silo {
                let whole = (0, silo.tokens().len());
                if !mentions_variant(silo.tokens(), whole, "Request", variant) {
                    missing.push("handler arm in `silo.rs` (no Response is ever produced)");
                }
            }
            for m in missing {
                diags.push(Diagnostic {
                    lint: self.name(),
                    level: Level::Deny,
                    file: protocol.path.clone(),
                    line: at.line,
                    col: at.col,
                    message: format!("`Request::{variant}` has no {m}"),
                });
            }
        }
    }
}
