//! `determinism-discipline`: no order-, clock- or identity-dependent
//! constructs inside designated deterministic regions.
//!
//! The repo's load-bearing guarantee — results bit-identical at every
//! pool size, every seed reproducible bit-for-bit — is enforced
//! dynamically by `tests/parallel_equivalence.rs` and `tests/chaos.rs`,
//! but a dynamic test only covers the paths it exercises. This lint makes
//! the contract static for the regions where nondeterminism could reach
//! a result: the planner, the merge/reduce paths, the wire encoding and
//! the RNG-seeded estimators.
//!
//! Inside a deterministic region (the built-in list below, or any module
//! carrying a `// fedra-lint: deterministic-region` marker) four shapes
//! are flagged:
//!
//! 1. **unordered iteration** — `iter`/`into_iter`/`keys`/`values`/
//!    `drain` (and `_mut` variants) on a binding declared as `HashMap`/
//!    `HashSet`, or a `for` loop over one. Hash-map order is an accident
//!    of hasher and history; if it reaches a merge, an export or an
//!    eviction decision, two runs can disagree. Use `BTreeMap`, sorted
//!    iteration, or a total-order reduction, then `allow` with a comment
//!    stating why order cannot escape.
//! 2. **wall-clock reads** — `Instant::now`/`SystemTime::now`. Time is
//!    the canonical nondeterministic input; deadline budgets and TTLs
//!    that are wall-clock *by design* carry an `allow` explaining that
//!    the reading never feeds a result value.
//! 3. **thread identity** — `thread::current().id()`: scheduling order
//!    must never become data.
//! 4. **order-sensitive float comparison/reduction** — `partial_cmp`
//!    inside a `sort_by`/`min_by`/`max_by` comparator (ties and NaN fall
//!    back to input order; use `total_cmp` and a full tie-break), and a
//!    float reduction (`sum`/`fold`/`product`) in the same statement as a
//!    channel drain (`recv`/`try_iter`): float addition is not
//!    associative, so completion order changes the result.

use crate::diagnostics::{Diagnostic, Level};
use crate::lexer::{Token, TokenKind};
use crate::registry::Lint;
use crate::scan::{matching, SourceFile};
use crate::workspace::Workspace;

/// Files that are deterministic regions by default: the planner, the
/// merge/reduce paths, wire encoding/export, and the RNG-seeded
/// estimators, plus the whole index crate (every build there is covered
/// by the pool-size bit-identity contract).
const DEFAULT_REGIONS: &[&str] = &[
    "crates/core/src/planner.rs",
    "crates/core/src/sampling.rs",
    "crates/core/src/exact.rs",
    "crates/core/src/opta.rs",
    "crates/core/src/multi.rs",
    "crates/core/src/algorithm.rs",
    "crates/core/src/framework.rs",
    "crates/core/src/cache.rs",
    "crates/federation/src/wire.rs",
    "crates/federation/src/protocol.rs",
    "crates/federation/src/snapshot.rs",
    "crates/geo/src/area.rs",
    "crates/index/src/",
];

/// Iteration methods whose visit order is the container's hash order.
const UNORDERED_ITER_METHODS: &[&str] = &[
    "iter",
    "iter_mut",
    "into_iter",
    "keys",
    "into_keys",
    "values",
    "values_mut",
    "into_values",
    "drain",
];

/// Sort/min/max call sites whose comparator must be a total order.
const ORDERING_SINKS: &[&str] = &[
    "sort_by",
    "sort_unstable_by",
    "sort_by_key",
    "min_by",
    "max_by",
    "binary_search_by",
];

/// Channel-drain calls that yield values in completion order.
const COMPLETION_SOURCES: &[&str] = &[
    "recv",
    "try_recv",
    "recv_timeout",
    "recv_deadline",
    "try_iter",
];

/// Float reductions that are order-sensitive (addition/multiplication of
/// floats is not associative).
const FLOAT_REDUCTIONS: &[&str] = &["sum", "product", "fold"];

/// See the module docs.
pub struct DeterminismDiscipline;

impl Lint for DeterminismDiscipline {
    fn name(&self) -> &'static str {
        "determinism-discipline"
    }

    fn description(&self) -> &'static str {
        "no unordered-map iteration, wall-clock reads, thread identity or order-sensitive \
         float reductions in deterministic regions"
    }

    fn check(&self, ws: &Workspace, diags: &mut Vec<Diagnostic>) {
        for file in &ws.files {
            if !in_region(file) {
                continue;
            }
            check_file(self.name(), file, diags);
        }
    }
}

/// Whether `file` is a designated deterministic region (built-in list or
/// module-level marker).
fn in_region(file: &SourceFile) -> bool {
    !file.lexed.deterministic_markers.is_empty()
        || DEFAULT_REGIONS.iter().any(|r| {
            if r.ends_with('/') {
                file.path.contains(r)
            } else {
                file.path.ends_with(r)
            }
        })
}

fn check_file(lint: &'static str, file: &SourceFile, diags: &mut Vec<Diagnostic>) {
    let tokens = file.tokens();
    let unordered = unordered_names(tokens);
    let mut i = 0;
    while i < tokens.len() {
        if file.in_test_code(i) {
            i += 1;
            continue;
        }
        let t = &tokens[i];
        match t.kind {
            TokenKind::Ident => {
                // (2) Wall-clock reads: `Instant::now(` / `SystemTime::now(`.
                if (t.text == "Instant" || t.text == "SystemTime") && is_path_call(tokens, i, "now")
                {
                    diags.push(diag(
                        lint,
                        file,
                        t,
                        format!(
                            "`{}::now()` in a deterministic region; wall-clock readings are \
                             nondeterministic input — thread a logical clock through, or \
                             `allow` with a comment stating the reading never feeds a result",
                            t.text
                        ),
                    ));
                }
                // (3) Thread identity: `thread::current().id()`.
                if t.text == "thread" && is_thread_id_chain(tokens, i) {
                    diags.push(diag(
                        lint,
                        file,
                        t,
                        "`thread::current().id()` in a deterministic region; scheduling \
                         identity must never become data"
                            .to_string(),
                    ));
                }
                // (1) Unordered iteration: `<name>.<iter-method>(` where
                // `<name>` was declared as a HashMap/HashSet.
                if UNORDERED_ITER_METHODS.iter().any(|m| t.text == *m)
                    && i >= 2
                    && tokens[i - 1].is_punct('.')
                    && tokens.get(i + 1).is_some_and(|n| n.is_punct('('))
                    && tokens[i - 2].kind == TokenKind::Ident
                    && unordered.contains(&tokens[i - 2].text)
                {
                    diags.push(diag(
                        lint,
                        file,
                        t,
                        format!(
                            "`.{}()` on unordered container `{}` in a deterministic region; \
                             hash order is an accident of hasher and history — use a \
                             `BTreeMap`/sorted iteration, or `allow` with a comment stating \
                             why order cannot escape",
                            t.text,
                            tokens[i - 2].text
                        ),
                    ));
                }
                // (1b) `for x in [&mut] <name> {` over an unordered container.
                if t.text == "for" {
                    if let Some((name_idx, name)) = for_loop_target(tokens, i) {
                        if unordered.contains(&name) {
                            let at = &tokens[name_idx];
                            diags.push(diag(
                                lint,
                                file,
                                at,
                                format!(
                                    "`for` loop over unordered container `{name}` in a \
                                     deterministic region; iterate in a total order instead"
                                ),
                            ));
                        }
                    }
                }
                // (4a) `partial_cmp` inside a sort/min/max comparator.
                if ORDERING_SINKS.iter().any(|m| t.text == *m)
                    && i >= 1
                    && tokens[i - 1].is_punct('.')
                    && tokens.get(i + 1).is_some_and(|n| n.is_punct('('))
                {
                    let close = matching(tokens, i + 1);
                    for j in i + 2..close {
                        if tokens[j].is_ident("partial_cmp") {
                            diags.push(diag(
                                lint,
                                file,
                                &tokens[j],
                                format!(
                                    "`partial_cmp` inside a `{}` comparator in a deterministic \
                                     region; ties and NaN fall back to input order — use \
                                     `total_cmp` and a full tie-break",
                                    t.text
                                ),
                            ));
                        }
                    }
                }
                // (4b) Float reduction in the same statement as a
                // completion-order channel drain.
                if FLOAT_REDUCTIONS.iter().any(|m| t.text == *m)
                    && i >= 1
                    && tokens[i - 1].is_punct('.')
                    && tokens.get(i + 1).is_some_and(|n| n.is_punct('('))
                    && statement_has_completion_source(tokens, i)
                {
                    diags.push(diag(
                        lint,
                        file,
                        t,
                        format!(
                            "float `.{}()` over a completion-order source in a deterministic \
                             region; float reduction is not associative, so completion order \
                             changes the result — collect and reduce in a fixed order",
                            t.text
                        ),
                    ));
                }
            }
            _ => {}
        }
        i += 1;
    }
}

fn diag(lint: &'static str, file: &SourceFile, at: &Token, message: String) -> Diagnostic {
    Diagnostic {
        lint,
        level: Level::Deny,
        file: file.path.clone(),
        line: at.line,
        col: at.col,
        message,
    }
}

/// Whether tokens at `i` start `<Ident>::<method>(`.
fn is_path_call(tokens: &[Token], i: usize, method: &str) -> bool {
    tokens.get(i + 1).is_some_and(|t| t.is_punct(':'))
        && tokens.get(i + 2).is_some_and(|t| t.is_punct(':'))
        && tokens.get(i + 3).is_some_and(|t| t.is_ident(method))
        && tokens.get(i + 4).is_some_and(|t| t.is_punct('('))
}

/// Whether tokens at `i` (= `thread`) start `thread::current().id(`.
fn is_thread_id_chain(tokens: &[Token], i: usize) -> bool {
    is_path_call(tokens, i, "current")
        && tokens.get(i + 5).is_some_and(|t| t.is_punct(')'))
        && tokens.get(i + 6).is_some_and(|t| t.is_punct('.'))
        && tokens.get(i + 7).is_some_and(|t| t.is_ident("id"))
}

/// For a `for` token at `i`, finds the loop's iterated identifier when the
/// loop has the shape `for <pat> in [&][mut] <ident> {`.
fn for_loop_target(tokens: &[Token], i: usize) -> Option<(usize, String)> {
    // Find `in` before the body `{` (patterns contain no braces).
    let mut j = i + 1;
    while j < tokens.len() && !tokens[j].is_punct('{') {
        if tokens[j].is_ident("in") {
            let mut k = j + 1;
            while k < tokens.len() && (tokens[k].is_punct('&') || tokens[k].is_ident("mut")) {
                k += 1;
            }
            if tokens.get(k).is_some_and(|t| t.kind == TokenKind::Ident)
                && tokens.get(k + 1).is_some_and(|t| t.is_punct('{'))
            {
                return Some((k, tokens[k].text.clone()));
            }
            return None;
        }
        j += 1;
    }
    None
}

/// Collects the identifiers declared as `HashMap`/`HashSet` in this file:
/// type ascriptions (`name: HashMap<…>`, including struct fields and
/// `std::collections::` paths) and constructor bindings
/// (`name = HashMap::new()` and friends).
fn unordered_names(tokens: &[Token]) -> Vec<String> {
    let mut names = Vec::new();
    for i in 0..tokens.len() {
        let t = &tokens[i];
        if !(t.is_ident("HashMap") || t.is_ident("HashSet")) {
            continue;
        }
        // Walk back over a `std :: collections ::`-style path prefix.
        let mut k = i;
        while k >= 3
            && tokens[k - 1].is_punct(':')
            && tokens[k - 2].is_punct(':')
            && tokens[k - 3].kind == TokenKind::Ident
        {
            k -= 3;
        }
        if k < 2 {
            continue;
        }
        // `name : HashMap` — a type ascription (let, field, or param).
        // The `:` must be single (not `::`, already stripped above).
        if tokens[k - 1].is_punct(':')
            && !tokens
                .get(k.wrapping_sub(2))
                .is_some_and(|t| t.is_punct(':'))
            && tokens[k - 2].kind == TokenKind::Ident
        {
            names.push(tokens[k - 2].text.clone());
            continue;
        }
        // `name = HashMap :: <ctor>` — a constructor binding.
        if tokens[k - 1].is_punct('=') && tokens[k - 2].kind == TokenKind::Ident {
            names.push(tokens[k - 2].text.clone());
        }
    }
    names.sort();
    names.dedup();
    names
}

/// Whether the statement containing the method call at `i` also contains a
/// completion-order channel drain. The statement is bounded by the nearest
/// `;`, `{` or `}` on each side.
fn statement_has_completion_source(tokens: &[Token], i: usize) -> bool {
    let boundary = |t: &Token| t.is_punct(';') || t.is_punct('{') || t.is_punct('}');
    let start = (0..i)
        .rev()
        .find(|&j| boundary(&tokens[j]))
        .map_or(0, |j| j + 1);
    let end = (i..tokens.len())
        .find(|&j| boundary(&tokens[j]))
        .unwrap_or(tokens.len());
    (start..end).any(|j| {
        COMPLETION_SOURCES.iter().any(|m| tokens[j].is_ident(m))
            && j >= 1
            && tokens[j - 1].is_punct('.')
            && tokens.get(j + 1).is_some_and(|n| n.is_punct('('))
    })
}
