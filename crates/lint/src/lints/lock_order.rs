//! `lock-order`: no cyclic lock-acquisition order across the workspace.
//!
//! `lock-discipline` is purely local — it catches a thread parking on a
//! channel while holding a guard. The classic two-lock deadlock is not
//! local: thread 1 takes `a` then `b`, thread 2 takes `b` then `a`, and
//! neither ever blocks on a channel. This lint builds a per-function
//! **lock-acquisition summary** (which locks a function takes, and which
//! it takes while already holding another), stitches the summaries
//! together one call level deep through a name-resolved workspace call
//! graph, and reports every pair of locks acquired in both orders.
//!
//! Lock identity is the receiver identifier before `.lock()` / `.read()`
//! / `.write()` — `self.pairs.lock()` and `pool.pairs.lock()` are both
//! the lock `pairs`. That conflates same-named fields on different
//! types; for this workspace (a handful of mutexes, uniquely named) the
//! approximation is exact, and a false pairing is easy to `allow` with a
//! comment naming the two distinct types.
//!
//! Call-graph propagation is one level and name-based: a call site
//! `f(…)` / `x.f(…)` made while holding lock `A` contributes edges
//! `A → B` for every lock `B` that `f` acquires — but only when `f`
//! resolves uniquely (exactly one `fn f` in the workspace). Ambiguous
//! names are skipped rather than guessed.

use std::collections::BTreeMap;

use crate::diagnostics::{Diagnostic, Level};
use crate::lexer::{Token, TokenKind};
use crate::registry::Lint;
use crate::scan::{matching, SourceFile};
use crate::workspace::Workspace;

/// Trailing calls that produce a lock guard.
const GUARD_METHODS: &[&str] = &["lock", "read", "write"];

/// Idents that look like calls but are control flow or bindings.
const NOT_CALLS: &[&str] = &[
    "if", "while", "match", "for", "return", "fn", "let", "loop", "move", "in", "as", "else",
    "Some", "Ok", "Err", "None", "Box", "Vec", "String",
];

/// See the module docs.
pub struct LockOrder;

impl Lint for LockOrder {
    fn name(&self) -> &'static str {
        "lock-order"
    }

    fn description(&self) -> &'static str {
        "no pair of locks acquired in both orders (per-function summaries propagated one \
         call level through the workspace call graph)"
    }

    fn check(&self, ws: &Workspace, diags: &mut Vec<Diagnostic>) {
        // Pass 1: summarize every function in the workspace.
        let mut fns: Vec<FnSummary> = Vec::new();
        for file in &ws.files {
            summarize_file(file, &mut fns);
        }

        // Name resolution: how many functions share each name.
        let mut by_name: BTreeMap<&str, Vec<usize>> = BTreeMap::new();
        for (i, f) in fns.iter().enumerate() {
            by_name.entry(&f.name).or_default().push(i);
        }

        // Pass 2: direct edges plus one level of call-graph propagation.
        let mut edges: BTreeMap<(String, String), Vec<Site>> = BTreeMap::new();
        for f in &fns {
            for e in &f.edges {
                edges
                    .entry((e.0.clone(), e.1.clone()))
                    .or_default()
                    .push(e.2.clone());
            }
            for call in &f.calls {
                let Some(targets) = by_name.get(call.callee.as_str()) else {
                    continue;
                };
                if targets.len() != 1 {
                    continue; // ambiguous name: don't guess
                }
                let callee = &fns[targets[0]];
                for held in &call.held {
                    for acquired in &callee.acquires {
                        if held == acquired {
                            continue;
                        }
                        let mut site = call.site.clone();
                        site.note = Some(format!("via call to `{}`", call.callee));
                        edges
                            .entry((held.clone(), acquired.clone()))
                            .or_default()
                            .push(site);
                    }
                }
            }
        }

        // Report each unordered pair acquired in both orders, once, at the
        // lexically-first site of either direction.
        for ((a, b), fwd) in &edges {
            if a >= b {
                continue; // visit each unordered pair once, from (a, b) a < b
            }
            let Some(rev) = edges.get(&(b.clone(), a.clone())) else {
                continue;
            };
            let first_fwd = fwd.iter().min().expect("edge lists are non-empty");
            let first_rev = rev.iter().min().expect("edge lists are non-empty");
            let (site, there, here_order, there_order) = if first_fwd <= first_rev {
                (first_fwd, first_rev, (a, b), (b, a))
            } else {
                (first_rev, first_fwd, (b, a), (a, b))
            };
            let via = site
                .note
                .as_ref()
                .map(|n| format!(" ({n})"))
                .unwrap_or_default();
            let there_via = there
                .note
                .as_ref()
                .map(|n| format!(" ({n})"))
                .unwrap_or_default();
            diags.push(Diagnostic {
                lint: self.name(),
                level: Level::Deny,
                file: site.file.clone(),
                line: site.line,
                col: site.col,
                message: format!(
                    "lock-order cycle: `{}` then `{}` here{}, but `{}` then `{}` at {}:{}{}; \
                     two threads taking these in opposite orders deadlock — pick one order \
                     and use it everywhere",
                    here_order.0,
                    here_order.1,
                    via,
                    there_order.0,
                    there_order.1,
                    there.file,
                    there.line,
                    there_via,
                ),
            });
        }
    }
}

/// Where an edge was observed.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord)]
struct Site {
    file: String,
    line: u32,
    col: u32,
    /// Set when the edge came from call-graph propagation.
    note: Option<String>,
}

/// A call made while holding locks.
#[derive(Debug)]
struct CallSite {
    callee: String,
    held: Vec<String>,
    site: Site,
}

/// What one function does with locks.
#[derive(Debug)]
struct FnSummary {
    name: String,
    /// Every lock this function acquires anywhere in its body (sorted,
    /// deduped) — what a caller holding a lock inherits as edges.
    acquires: Vec<String>,
    /// Direct `held → acquired` edges observed inside the body.
    edges: Vec<(String, String, Site)>,
    /// Calls made while at least one lock was held.
    calls: Vec<CallSite>,
}

/// A live let-bound guard inside one function body.
struct Guard {
    name: String,
    lock: String,
    depth: usize,
}

/// Extracts a [`FnSummary`] for every non-test `fn` in `file`.
fn summarize_file(file: &SourceFile, out: &mut Vec<FnSummary>) {
    let tokens = file.tokens();
    let mut i = 0;
    while i < tokens.len() {
        if !file.in_test_code(i)
            && tokens[i].is_ident("fn")
            && tokens
                .get(i + 1)
                .is_some_and(|t| t.kind == TokenKind::Ident)
        {
            let name = tokens[i + 1].text.clone();
            // Find the body `{` before any `;` (trait method decls have none).
            let mut j = i + 2;
            let mut body_open = None;
            while j < tokens.len() {
                if tokens[j].is_punct('{') {
                    body_open = Some(j);
                    break;
                }
                if tokens[j].is_punct(';') {
                    break;
                }
                j += 1;
            }
            if let Some(open) = body_open {
                let close = matching(tokens, open);
                out.push(summarize_fn(file, name, open + 1, close));
                i = close + 1;
                continue;
            }
        }
        i += 1;
    }
}

/// Summarizes one function body (`tokens[start..end]`).
fn summarize_fn(file: &SourceFile, name: String, start: usize, end: usize) -> FnSummary {
    let tokens = file.tokens();
    let mut summary = FnSummary {
        name,
        acquires: Vec::new(),
        edges: Vec::new(),
        calls: Vec::new(),
    };
    let mut guards: Vec<Guard> = Vec::new();
    let mut depth = 0usize;
    let mut i = start;
    while i < end {
        let t = &tokens[i];
        match t.kind {
            TokenKind::Punct('{') => depth += 1,
            TokenKind::Punct('}') => {
                depth = depth.saturating_sub(1);
                guards.retain(|g| g.depth <= depth);
            }
            TokenKind::Ident if t.text == "drop" => {
                if tokens.get(i + 1).is_some_and(|t| t.is_punct('('))
                    && tokens.get(i + 3).is_some_and(|t| t.is_punct(')'))
                {
                    if let Some(inner) = tokens.get(i + 2) {
                        guards.retain(|g| g.name != inner.text);
                    }
                }
            }
            // An acquisition: `<recv> . lock|read|write (`.
            TokenKind::Ident
                if GUARD_METHODS.iter().any(|m| t.is_ident(m))
                    && i >= 2
                    && tokens[i - 1].is_punct('.')
                    && tokens[i - 2].kind == TokenKind::Ident
                    && tokens.get(i + 1).is_some_and(|n| n.is_punct('(')) =>
            {
                let lock = tokens[i - 2].text.clone();
                let site = Site {
                    file: file.path.clone(),
                    line: t.line,
                    col: t.col,
                    note: None,
                };
                for g in &guards {
                    if g.lock != lock {
                        summary
                            .edges
                            .push((g.lock.clone(), lock.clone(), site.clone()));
                    }
                }
                summary.acquires.push(lock.clone());
                // If this acquisition is the tail of a `let` binding, the
                // guard stays live: track it.
                if let Some(bound) = binding_name(tokens, start, i) {
                    guards.push(Guard {
                        name: bound,
                        lock,
                        depth,
                    });
                }
            }
            // A call made while holding locks: `f(` or `.f(`.
            TokenKind::Ident
                if !guards.is_empty()
                    && tokens.get(i + 1).is_some_and(|n| n.is_punct('('))
                    && !GUARD_METHODS.iter().any(|m| t.is_ident(m))
                    && !NOT_CALLS.iter().any(|m| t.is_ident(m)) =>
            {
                summary.calls.push(CallSite {
                    callee: t.text.clone(),
                    held: guards.iter().map(|g| g.lock.clone()).collect(),
                    site: Site {
                        file: file.path.clone(),
                        line: t.line,
                        col: t.col,
                        note: None,
                    },
                });
            }
            _ => {}
        }
        i += 1;
    }
    summary.acquires.sort();
    summary.acquires.dedup();
    summary
}

/// If the guard-method call at `at` is the right-hand side of a
/// `let <name> = …` statement, returns the bound name.
///
/// Walks back from `at` to the start of the statement (the nearest `;`,
/// `{` or `}` at the same nesting) and checks it opens with
/// `let [mut] <ident> [: …] =`. The statement must *end* with the guard
/// call (optionally `.unwrap()` / `.expect(…)`), otherwise the guard is a
/// temporary consumed within the statement (`m.lock().push(x)`).
fn binding_name(tokens: &[Token], body_start: usize, at: usize) -> Option<String> {
    // Statement start: scan back for `;`, `{` or `}` (skipping nothing —
    // nested closing delims before `at` at the same level end statements
    // too rarely to matter for guard bindings, which are simple).
    let mut s = at;
    while s > body_start {
        let t = &tokens[s - 1];
        if t.is_punct(';') || t.is_punct('{') || t.is_punct('}') {
            break;
        }
        s -= 1;
    }
    if !tokens.get(s).is_some_and(|t| t.is_ident("let")) {
        return None;
    }
    let mut i = s + 1;
    if tokens.get(i).is_some_and(|t| t.is_ident("mut")) {
        i += 1;
    }
    let name = match tokens.get(i) {
        Some(t) if t.kind == TokenKind::Ident && t.text != "_" => t.text.clone(),
        _ => return None,
    };
    // The statement must terminate with the guard: after the call's `()`
    // and an optional `.unwrap()`/`.expect(…)`, the next token is `;`.
    let args_close = matching(tokens, at + 1);
    let mut j = args_close + 1;
    if tokens.get(j).is_some_and(|t| t.is_punct('.'))
        && tokens
            .get(j + 1)
            .is_some_and(|t| t.is_ident("unwrap") || t.is_ident("expect"))
        && tokens.get(j + 2).is_some_and(|t| t.is_punct('('))
    {
        j = matching(tokens, j + 2) + 1;
    }
    if tokens.get(j).is_some_and(|t| t.is_punct(';')) {
        Some(name)
    } else {
        None
    }
}
