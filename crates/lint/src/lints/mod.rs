//! The fedra-specific lints.
//!
//! Each lint encodes one invariant the paper or the transport design
//! depends on; see the individual modules for the full rationale.

mod determinism;
mod federation_safety;
mod lock_discipline;
mod lock_order;
mod obs_exhaustiveness;
mod panic_discipline;
mod wire_exhaustiveness;

pub use determinism::DeterminismDiscipline;
pub use federation_safety::FederationSafety;
pub use lock_discipline::LockDiscipline;
pub use lock_order::LockOrder;
pub use obs_exhaustiveness::ObsExhaustiveness;
pub use panic_discipline::PanicDiscipline;
pub use wire_exhaustiveness::WireExhaustiveness;
