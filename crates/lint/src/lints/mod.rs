//! The fedra-specific lints.
//!
//! Each lint encodes one invariant the paper or the transport design
//! depends on; see the individual modules for the full rationale.

mod federation_safety;
mod lock_discipline;
mod panic_discipline;
mod wire_exhaustiveness;

pub use federation_safety::FederationSafety;
pub use lock_discipline::LockDiscipline;
pub use panic_discipline::PanicDiscipline;
pub use wire_exhaustiveness::WireExhaustiveness;
