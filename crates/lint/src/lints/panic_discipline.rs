//! `panic-discipline`: the federation runtime and the query engine must
//! not panic on runtime failures.
//!
//! A panicking silo worker takes its channel down and turns one failed
//! request into a dead federation member; a panicking engine worker
//! poisons a whole batch. The production north star (heavy traffic,
//! graceful silo-failure handling) requires `Result`-based error flow in
//! these paths, so `unwrap` / `expect` / `panic!` / `unreachable!` are
//! banned in non-test code under `crates/federation/src` and the
//! `crates/core` engine files.
//!
//! Findings here are meant to be **fixed** (convert the call site to a
//! typed error — `TransportError`, `SetupError`, `FraError`), not
//! baselined. The inline `allow` escape hatch is reserved for APIs whose
//! documented contract is to panic (e.g. a `build()` convenience wrapper
//! whose `try_build` twin carries the real error path).

use crate::diagnostics::{Diagnostic, Level};
use crate::registry::Lint;
use crate::scan::SourceFile;
use crate::workspace::Workspace;

/// Engine files in `fedra-core`: everything on the query execution path.
/// (`sql.rs`, `theory.rs` and `helpers.rs` are user-facing front-ends and
/// diagnostics, not the hot path.)
const CORE_ENGINE_FILES: &[&str] = &[
    "crates/core/src/framework.rs",
    "crates/core/src/algorithm.rs",
    "crates/core/src/exact.rs",
    "crates/core/src/sampling.rs",
    "crates/core/src/opta.rs",
    "crates/core/src/multi.rs",
    "crates/core/src/planner.rs",
    "crates/core/src/cache.rs",
    "crates/core/src/query.rs",
];

/// `.method()` calls that panic on failure.
const PANICKING_METHODS: &[&str] = &["unwrap", "expect"];

/// `macro!` invocations that unconditionally panic.
const PANICKING_MACROS: &[&str] = &["panic", "unreachable"];

/// See the module docs.
pub struct PanicDiscipline;

fn applies_to(path: &str) -> bool {
    path.contains("crates/federation/src/") || CORE_ENGINE_FILES.iter().any(|f| path.ends_with(f))
}

impl Lint for PanicDiscipline {
    fn name(&self) -> &'static str {
        "panic-discipline"
    }

    fn description(&self) -> &'static str {
        "no unwrap/expect/panic!/unreachable! in non-test federation or engine code"
    }

    fn check(&self, ws: &Workspace, diags: &mut Vec<Diagnostic>) {
        let files: &[SourceFile] = &ws.files;
        for file in files {
            if !applies_to(&file.path) {
                continue;
            }
            let tokens = file.tokens();
            for i in 0..tokens.len() {
                if file.in_test_code(i) {
                    continue;
                }
                let t = &tokens[i];
                let method_call = PANICKING_METHODS.iter().any(|m| t.is_ident(m))
                    && i > 0
                    && tokens[i - 1].is_punct('.')
                    && tokens.get(i + 1).is_some_and(|n| n.is_punct('('));
                let macro_call = PANICKING_MACROS.iter().any(|m| t.is_ident(m))
                    && tokens.get(i + 1).is_some_and(|n| n.is_punct('!'));
                if method_call || macro_call {
                    let rendered = if macro_call {
                        format!("{}!", t.text)
                    } else {
                        format!(".{}()", t.text)
                    };
                    diags.push(Diagnostic {
                        lint: self.name(),
                        level: Level::Deny,
                        file: file.path.clone(),
                        line: t.line,
                        col: t.col,
                        message: format!(
                            "`{rendered}` in non-test federation/engine code; a runtime \
                             failure here kills a silo worker or a whole batch — return a \
                             typed error (`TransportError`/`SetupError`/`FraError`) instead"
                        ),
                    });
                }
            }
        }
    }
}
