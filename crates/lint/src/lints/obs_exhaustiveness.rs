//! `obs-exhaustiveness`: the observability surface must stay documented
//! and complete.
//!
//! Two checks, both cross-artifact:
//!
//! 1. **Metric-name registry.** Every `fedra_*` metric name constructed
//!    in product code must appear in the registry documented in
//!    DESIGN.md §5d. Metrics are the repo's claim-verification surface
//!    (ε-bounds, comm bytes, deadline misses); an undocumented name is a
//!    dashboard nobody knows exists and a rename nobody can review. The
//!    check scans string literals for `fedra_`-prefixed names and looks
//!    each base name up in the §5d section text. Dynamic names
//!    (`format!("fedra_{}", …)` — nothing after the prefix) cannot be
//!    resolved statically and are skipped.
//! 2. **Response byte accounting.** Every `Response` variant must be
//!    byte-counted: mentioned in `encoded_len` of `impl Wire for
//!    Response`. `wire-exhaustiveness` covers `Request`; this closes the
//!    reply direction, where a new variant with a `_ => 0` catch-all
//!    silently skews `CommCounters` — the paper's communication metric.
//!
//! Check 1 only runs when the workspace was collected with DESIGN.md
//! (fixture workspaces supply docs explicitly); check 2 only needs
//! `protocol.rs`. The lint crate's own sources are exempt from check 1 —
//! their `fedra_` strings are lint machinery, not metrics.

use crate::diagnostics::{Diagnostic, Level};
use crate::lexer::TokenKind;
use crate::registry::Lint;
use crate::scan::{enum_body, enum_variants, fn_body, impl_body, mentions_variant};
use crate::workspace::Workspace;

/// The DESIGN.md section holding the metric-name registry.
const REGISTRY_DOC: &str = "DESIGN.md";
const REGISTRY_SECTION: &str = "## 5d";

/// See the module docs.
pub struct ObsExhaustiveness;

impl Lint for ObsExhaustiveness {
    fn name(&self) -> &'static str {
        "obs-exhaustiveness"
    }

    fn description(&self) -> &'static str {
        "every fedra_* metric name is documented in DESIGN.md \u{a7}5d and every Response \
         variant is byte-counted in encoded_len"
    }

    fn check(&self, ws: &Workspace, diags: &mut Vec<Diagnostic>) {
        self.check_metric_registry(ws, diags);
        self.check_response_accounting(ws, diags);
    }
}

impl ObsExhaustiveness {
    fn check_metric_registry(&self, ws: &Workspace, diags: &mut Vec<Diagnostic>) {
        let Some(doc) = ws.doc(REGISTRY_DOC) else {
            return; // no doc input collected — nothing to check against
        };
        let registry = section_text(&doc.text, REGISTRY_SECTION);
        for file in &ws.files {
            if file.path.starts_with("crates/lint/") {
                continue;
            }
            for (i, t) in file.tokens().iter().enumerate() {
                if t.kind != TokenKind::StrLit || file.in_test_code(i) {
                    continue;
                }
                for name in metric_names(&t.text) {
                    if !registry.contains(&name) {
                        diags.push(Diagnostic {
                            lint: self.name(),
                            level: Level::Deny,
                            file: file.path.clone(),
                            line: t.line,
                            col: t.col,
                            message: format!(
                                "metric name `{name}` is not documented in the DESIGN.md \
                                 \u{a7}5d metric registry; add it there (name, type, meaning) \
                                 so the observability surface stays reviewable"
                            ),
                        });
                    }
                }
            }
        }
    }

    fn check_response_accounting(&self, ws: &Workspace, diags: &mut Vec<Diagnostic>) {
        let Some(protocol) = ws
            .files
            .iter()
            .find(|f| f.path.ends_with("federation/src/protocol.rs"))
        else {
            return;
        };
        let tokens = protocol.tokens();
        let Some(body) = enum_body(tokens, "Response") else {
            return;
        };
        let encoded_len = impl_body(tokens, "Wire", "Response")
            .and_then(|range| fn_body(tokens, range, "encoded_len"));
        let Some(range) = encoded_len else {
            return; // wire-exhaustiveness-style structural absence, not ours
        };
        for (variant, idx) in enum_variants(tokens, body) {
            if !mentions_variant(tokens, range, "Response", &variant) {
                let at = &tokens[idx];
                diags.push(Diagnostic {
                    lint: self.name(),
                    level: Level::Deny,
                    file: protocol.path.clone(),
                    line: at.line,
                    col: at.col,
                    message: format!(
                        "`Response::{variant}` is not byte-counted in `encoded_len` of \
                         `impl Wire for Response`; an uncounted reply variant silently \
                         skews CommCounters, the paper's communication metric"
                    ),
                });
            }
        }
    }
}

/// The text of the markdown section whose heading line starts with
/// `heading`, up to the next `## ` heading (empty when absent).
fn section_text<'a>(doc: &'a str, heading: &str) -> &'a str {
    let Some(start) = doc
        .lines()
        .scan(0usize, |off, line| {
            let this = *off;
            *off += line.len() + 1;
            Some((this, line))
        })
        .find(|(_, line)| line.starts_with(heading))
        .map(|(off, _)| off)
    else {
        return "";
    };
    let body = &doc[start..];
    // Skip past the heading line, then cut at the next section heading.
    let after_heading = body.find('\n').map_or(body.len(), |i| i + 1);
    let rest = &body[after_heading..];
    let end = rest.find("\n## ").map_or(rest.len(), |i| i);
    &rest[..end]
}

/// Extracts the statically-known `fedra_*` metric base names from a string
/// literal's raw source text (quotes included).
///
/// A base name is a maximal `[a-z0-9_]` run following `fedra_`. Runs
/// ending in `_` are skipped: a trailing underscore means the name is a
/// prefix — a `format!` template or a `fedra_cache_*` wildcard in help
/// text — and there is no concrete name to look up.
fn metric_names(literal: &str) -> Vec<String> {
    let mut names = Vec::new();
    let mut rest = literal;
    while let Some(at) = rest.find("fedra_") {
        let tail = &rest[at..];
        let len = tail
            .char_indices()
            .find(|(_, c)| !(c.is_ascii_lowercase() || c.is_ascii_digit() || *c == '_'))
            .map_or(tail.len(), |(i, _)| i);
        let name = &tail[..len];
        if name.len() > "fedra_".len() && !name.ends_with('_') {
            names.push(name.to_string());
        }
        rest = &tail[len.max("fedra_".len())..];
    }
    names.sort();
    names.dedup();
    names
}
