//! `federation-safety`: raw rows must never cross the silo boundary.
//!
//! The paper's federation model (Sec. 2) grants the provider a *query
//! interface only* — per-object data stays inside the silo, and only
//! aggregates travel silo → provider. Privacy-preserving follow-ups show
//! this boundary is exactly where federated systems fail, and in code it
//! is one careless `Response` variant away from being violated.
//!
//! The lint therefore bans location-bearing / per-object types from the
//! silo → provider direction: no `SpatialObject`, `Point`, `GeoPoint`, or
//! raw measure vector (`Vec<f64>`) may appear in any `Response` enum
//! declared under `crates/federation/src` (`protocol.rs`, `wire.rs`, or
//! wherever the enum migrates). Requests are exempt — query ranges
//! legitimately carry provider-chosen coordinates *to* the silos.

use crate::diagnostics::{Diagnostic, Level};
use crate::registry::Lint;
use crate::scan::{enum_body, SourceFile};
use crate::workspace::Workspace;

/// Types that identify or locate individual objects.
const FORBIDDEN_TYPES: &[&str] = &["SpatialObject", "Point", "GeoPoint", "Circle"];

/// See the module docs.
pub struct FederationSafety;

impl Lint for FederationSafety {
    fn name(&self) -> &'static str {
        "federation-safety"
    }

    fn description(&self) -> &'static str {
        "no per-object or location-bearing types in silo→provider Response payloads"
    }

    fn check(&self, ws: &Workspace, diags: &mut Vec<Diagnostic>) {
        let files: &[SourceFile] = &ws.files;
        for file in files {
            if !file.path.contains("crates/federation/src/") {
                continue;
            }
            let tokens = file.tokens();
            let Some(body) = enum_body(tokens, "Response") else {
                continue;
            };
            let (start, end) = body;
            for i in start..end {
                let t = &tokens[i];
                if FORBIDDEN_TYPES.iter().any(|f| t.is_ident(f)) {
                    diags.push(Diagnostic {
                        lint: self.name(),
                        level: Level::Deny,
                        file: file.path.clone(),
                        line: t.line,
                        col: t.col,
                        message: format!(
                            "location-bearing type `{}` in a silo→provider `Response` \
                             payload; only aggregate types may cross the federation boundary",
                            t.text
                        ),
                    });
                }
                // A raw measure vector: `Vec<f64>` leaks one value per
                // object, which identifies rows as surely as coordinates.
                if t.is_ident("Vec")
                    && tokens.get(i + 1).is_some_and(|t| t.is_punct('<'))
                    && tokens.get(i + 2).is_some_and(|t| t.is_ident("f64"))
                {
                    diags.push(Diagnostic {
                        lint: self.name(),
                        level: Level::Deny,
                        file: file.path.clone(),
                        line: t.line,
                        col: t.col,
                        message: "raw measure vector `Vec<f64>` in a silo→provider \
                                  `Response` payload; ship an `Aggregate` instead"
                            .to_string(),
                    });
                }
            }
        }
    }
}
