//! `lock-discipline`: never block on a channel while holding a lock.
//!
//! The pooled reply channels in `transport.rs` are the shape most exposed
//! to this deadlock: a guard bound over `ReplyPool::pairs` (or any other
//! mutex) that is still live when the thread parks in `send` / `recv` /
//! `join` serializes every other caller behind a blocked lock — and if
//! the unblocking party needs the same lock, the system stops.
//!
//! The lint flags a lock guard **bound with `let`** (`let g = m.lock();`,
//! also `.read()` / `.write()` and `.lock().unwrap()/.expect(..)`) whose
//! enclosing scope reaches a blocking call (`.send(…)`, `.recv(…)`,
//! `.recv_timeout(…)`, `.join(…)`) before the guard is dropped — either
//! by `drop(g)` or by the scope closing. Temporary guards
//! (`m.lock().push(x);`) drop at the end of their statement and are never
//! flagged.

use crate::diagnostics::{Diagnostic, Level};
use crate::lexer::{Token, TokenKind};
use crate::registry::Lint;
use crate::scan::SourceFile;
use crate::workspace::Workspace;

/// Trailing calls that produce a lock guard.
const GUARD_METHODS: &[&str] = &["lock", "read", "write"];

/// Calls that can park the thread indefinitely.
const BLOCKING_METHODS: &[&str] = &["send", "recv", "recv_timeout", "join"];

/// A live guard binding.
struct Guard {
    name: String,
    line: u32,
    /// Brace depth at the `let` — the guard dies when depth drops below.
    depth: usize,
}

/// See the module docs.
pub struct LockDiscipline;

impl Lint for LockDiscipline {
    fn name(&self) -> &'static str {
        "lock-discipline"
    }

    fn description(&self) -> &'static str {
        "no blocking send/recv/join while a lock guard is live in the same scope"
    }

    fn check(&self, ws: &Workspace, diags: &mut Vec<Diagnostic>) {
        let files: &[SourceFile] = &ws.files;
        for file in files {
            check_file(self.name(), file, diags);
        }
    }
}

fn check_file(lint: &'static str, file: &SourceFile, diags: &mut Vec<Diagnostic>) {
    let tokens = file.tokens();
    let mut guards: Vec<Guard> = Vec::new();
    let mut depth = 0usize;
    let mut i = 0;
    while i < tokens.len() {
        if file.in_test_code(i) {
            i += 1;
            continue;
        }
        let t = &tokens[i];
        match t.kind {
            TokenKind::Punct('{') => depth += 1,
            TokenKind::Punct('}') => {
                depth = depth.saturating_sub(1);
                guards.retain(|g| g.depth <= depth);
            }
            TokenKind::Ident if t.text == "let" => {
                if let Some((name, end)) = guard_binding(tokens, i) {
                    guards.push(Guard {
                        name,
                        line: t.line,
                        depth,
                    });
                    i = end + 1;
                    continue;
                }
            }
            // `drop(g)` releases the guard explicitly.
            TokenKind::Ident if t.text == "drop" => {
                if tokens.get(i + 1).is_some_and(|t| t.is_punct('('))
                    && tokens.get(i + 3).is_some_and(|t| t.is_punct(')'))
                {
                    if let Some(name) = tokens.get(i + 2) {
                        guards.retain(|g| g.name != name.text);
                    }
                }
            }
            TokenKind::Ident
                if BLOCKING_METHODS.iter().any(|m| t.is_ident(m))
                    && i > 0
                    && tokens[i - 1].is_punct('.')
                    && tokens.get(i + 1).is_some_and(|n| n.is_punct('(')) =>
            {
                if let Some(g) = guards.last() {
                    diags.push(Diagnostic {
                        lint,
                        level: Level::Deny,
                        file: file.path.clone(),
                        line: t.line,
                        col: t.col,
                        message: format!(
                            "blocking `.{}()` while lock guard `{}` (bound on line {}) is \
                             still live; drop the guard before blocking or the channel's \
                             peers deadlock behind the lock",
                            t.text, g.name, g.line
                        ),
                    });
                }
            }
            _ => {}
        }
        i += 1;
    }
}

/// Decides whether the `let` at `start` binds a lock guard. Returns the
/// bound name and the index of the statement's terminating `;`.
///
/// A guard binding is a statement whose right-hand side *ends* in
/// `.lock()` / `.read()` / `.write()`, optionally followed by
/// `.unwrap()` or `.expect("…")` — anything else chained after the guard
/// (`.lock().pop()`) consumes it within the statement.
fn guard_binding(tokens: &[Token], start: usize) -> Option<(String, usize)> {
    // Pattern: `let [mut] <ident> [: ty] = … ;` — tuple/struct patterns
    // are never guard bindings we can track; skip them.
    let mut i = start + 1;
    if tokens.get(i).is_some_and(|t| t.is_ident("mut")) {
        i += 1;
    }
    let name = match tokens.get(i) {
        Some(t) if t.kind == TokenKind::Ident && t.text != "_" => t.text.clone(),
        _ => return None,
    };
    // Find the terminating `;` at bracket depth 0 relative to here.
    let mut j = i + 1;
    let mut nest = 0isize;
    let mut stmt_end = None;
    while j < tokens.len() {
        match tokens[j].kind {
            TokenKind::Punct('(') | TokenKind::Punct('[') | TokenKind::Punct('{') => nest += 1,
            TokenKind::Punct(')') | TokenKind::Punct(']') | TokenKind::Punct('}') => nest -= 1,
            TokenKind::Punct(';') if nest == 0 => {
                stmt_end = Some(j);
                break;
            }
            _ => {}
        }
        j += 1;
    }
    let end = stmt_end?;
    // Strip a trailing `.unwrap()` / `.expect(…)`.
    let mut tail = end;
    if tokens
        .get(tail.wrapping_sub(1))
        .is_some_and(|t| t.is_punct(')'))
    {
        let mut k = tail - 1;
        // Walk back over one `(...)` group.
        let mut close = 1;
        while k > 0 && close > 0 {
            k -= 1;
            match tokens[k].kind {
                TokenKind::Punct(')') => close += 1,
                TokenKind::Punct('(') => close -= 1,
                _ => {}
            }
        }
        if k >= 2
            && matches!(&tokens[k - 1].kind, TokenKind::Ident)
            && ["unwrap", "expect"]
                .iter()
                .any(|m| tokens[k - 1].is_ident(m))
            && tokens[k - 2].is_punct('.')
        {
            tail = k - 2;
        }
    }
    // The remaining statement must end `… . <guard-method> ( )`.
    let is_guard = tail >= 4
        && tokens[tail - 1].is_punct(')')
        && tokens[tail - 2].is_punct('(')
        && GUARD_METHODS.iter().any(|m| tokens[tail - 3].is_ident(m))
        && tokens[tail - 4].is_punct('.');
    if is_guard {
        Some((name, end))
    } else {
        None
    }
}
