//! A small hand-rolled Rust lexer.
//!
//! `fedra-lint` analyzes token streams, not syntax trees: the build
//! environment has no registry route, so `syn` is off the table. The lexer
//! therefore has one job — never misclassify the constructs that would make
//! token-level analysis lie:
//!
//! * string literals (plain, raw `r#"…"#`, byte `b"…"`), so `"unwrap"`
//!   inside a message is not an identifier;
//! * line and block comments, including **nested** block comments, so
//!   commented-out code is invisible to lints;
//! * lifetimes vs. char literals (`'a` vs `'a'` vs `'\n'`);
//! * raw identifiers (`r#fn`).
//!
//! Comments are not discarded: `// fedra-lint: allow(<lint>)` directives
//! are collected with their line numbers so findings can be suppressed at
//! the use site (see [`crate::diagnostics`]).

/// What a token is. Only the distinctions the lints need are kept.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TokenKind {
    /// An identifier or keyword (`unwrap`, `fn`, `Response`, …).
    Ident,
    /// A lifetime (`'a`, `'static`). The text excludes the quote.
    Lifetime,
    /// A character literal (`'x'`, `'\n'`).
    CharLit,
    /// A string literal of any flavor (plain, raw, byte). The text is the
    /// raw source slice including quotes.
    StrLit,
    /// A numeric literal.
    Number,
    /// A single punctuation character (`.`, `:`, `{`, `!`, …).
    Punct(char),
}

/// One token with its source position (1-based line and column).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Token {
    /// Classification.
    pub kind: TokenKind,
    /// Source text (identifier name, literal slice, or the punct char).
    pub text: String,
    /// 1-based line.
    pub line: u32,
    /// 1-based column (in characters).
    pub col: u32,
}

impl Token {
    /// Whether this token is the identifier `name`.
    pub fn is_ident(&self, name: &str) -> bool {
        self.kind == TokenKind::Ident && self.text == name
    }

    /// Whether this token is the punctuation `c`.
    pub fn is_punct(&self, c: char) -> bool {
        self.kind == TokenKind::Punct(c)
    }
}

/// An inline suppression directive: `// fedra-lint: allow(<lint>)`.
///
/// The directive suppresses findings of `lint` reported on the same line
/// or on the line directly below it (so it can sit above the offending
/// statement, rustc-attribute style).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AllowDirective {
    /// The lint name inside `allow(…)`.
    pub lint: String,
    /// 1-based line the comment appears on.
    pub line: u32,
}

/// A lexed source file: its token stream plus the allow directives found
/// in its comments.
#[derive(Debug, Clone, Default)]
pub struct Lexed {
    /// Tokens in source order. Comments and whitespace are omitted.
    pub tokens: Vec<Token>,
    /// Suppression directives harvested from comments.
    pub allows: Vec<AllowDirective>,
    /// Lines carrying a `// fedra-lint: deterministic-region` marker.
    ///
    /// The marker is module-level: its presence anywhere in a file
    /// designates the whole file a deterministic region for the
    /// `determinism-discipline` lint, in addition to the lint's built-in
    /// region list (planner, merge/reduce, wire encoding, estimators).
    pub deterministic_markers: Vec<u32>,
}

/// Tokenizes Rust source. Unterminated constructs are tolerated (the rest
/// of the file is swallowed by the open literal/comment) — the linter must
/// never panic on weird input; rustc is the arbiter of validity.
pub fn lex(source: &str) -> Lexed {
    Lexer {
        chars: source.chars().collect(),
        pos: 0,
        line: 1,
        col: 1,
        out: Lexed::default(),
    }
    .run()
}

struct Lexer {
    chars: Vec<char>,
    pos: usize,
    line: u32,
    col: u32,
    out: Lexed,
}

impl Lexer {
    fn peek(&self, ahead: usize) -> Option<char> {
        self.chars.get(self.pos + ahead).copied()
    }

    fn bump(&mut self) -> Option<char> {
        let c = self.peek(0)?;
        self.pos += 1;
        if c == '\n' {
            self.line += 1;
            self.col = 1;
        } else {
            self.col += 1;
        }
        Some(c)
    }

    fn push(&mut self, kind: TokenKind, text: String, line: u32, col: u32) {
        self.out.tokens.push(Token {
            kind,
            text,
            line,
            col,
        });
    }

    fn run(mut self) -> Lexed {
        while let Some(c) = self.peek(0) {
            let (line, col) = (self.line, self.col);
            match c {
                c if c.is_whitespace() => {
                    self.bump();
                }
                '/' if self.peek(1) == Some('/') => self.line_comment(),
                '/' if self.peek(1) == Some('*') => self.block_comment(),
                '"' => self.string(line, col),
                'r' | 'b' if self.raw_or_byte_literal(line, col) => {}
                c if c == '_' || c.is_alphabetic() => self.ident(line, col),
                c if c.is_ascii_digit() => self.number(line, col),
                '\'' => self.quote(line, col),
                _ => {
                    self.bump();
                    self.push(TokenKind::Punct(c), c.to_string(), line, col);
                }
            }
        }
        self.out
    }

    fn line_comment(&mut self) {
        let line = self.line;
        let mut text = String::new();
        while let Some(c) = self.peek(0) {
            if c == '\n' {
                break;
            }
            text.push(c);
            self.bump();
        }
        self.harvest_allow(&text, line);
    }

    fn block_comment(&mut self) {
        let line = self.line;
        let mut text = String::new();
        let mut depth = 0usize;
        while let Some(c) = self.peek(0) {
            if c == '/' && self.peek(1) == Some('*') {
                depth += 1;
                text.push_str("/*");
                self.bump();
                self.bump();
            } else if c == '*' && self.peek(1) == Some('/') {
                depth -= 1;
                text.push_str("*/");
                self.bump();
                self.bump();
                if depth == 0 {
                    break;
                }
            } else {
                text.push(c);
                self.bump();
            }
        }
        self.harvest_allow(&text, line);
    }

    /// Extracts `fedra-lint: allow(<lint>)` and
    /// `fedra-lint: deterministic-region` directives from comment text.
    fn harvest_allow(&mut self, text: &str, line: u32) {
        let mut rest = text;
        while let Some(at) = rest.find("fedra-lint:") {
            rest = &rest[at + "fedra-lint:".len()..];
            let trimmed = rest.trim_start();
            if let Some(args) = trimmed.strip_prefix("allow(") {
                if let Some(end) = args.find(')') {
                    for lint in args[..end].split(',') {
                        self.out.allows.push(AllowDirective {
                            lint: lint.trim().to_string(),
                            line,
                        });
                    }
                }
            } else if trimmed.starts_with("deterministic-region") {
                self.out.deterministic_markers.push(line);
            }
        }
    }

    fn string(&mut self, line: u32, col: u32) {
        let mut text = String::new();
        text.push(self.bump().unwrap_or('"')); // opening quote
        while let Some(c) = self.peek(0) {
            if c == '\\' {
                text.push(c);
                self.bump();
                if let Some(escaped) = self.bump() {
                    text.push(escaped);
                }
            } else {
                text.push(c);
                self.bump();
                if c == '"' {
                    break;
                }
            }
        }
        self.push(TokenKind::StrLit, text, line, col);
    }

    /// Handles `r"…"`, `r#"…"#`, `b"…"`, `br#"…"#` and raw identifiers
    /// (`r#ident`). Returns false when the leading `r`/`b` is just the
    /// start of a plain identifier, leaving the input untouched.
    fn raw_or_byte_literal(&mut self, line: u32, col: u32) -> bool {
        let c0 = self.peek(0);
        let mut ahead = 1;
        if c0 == Some('b') && self.peek(1) == Some('r') {
            ahead = 2;
        }
        // Count `#`s after the prefix.
        let mut hashes = 0;
        while self.peek(ahead + hashes) == Some('#') {
            hashes += 1;
        }
        match self.peek(ahead + hashes) {
            Some('"') if c0 == Some('b') && ahead == 1 && hashes == 0 => {
                // b"…": byte string with escapes, same shape as a plain one.
                self.bump(); // b
                self.string(line, col);
                true
            }
            Some('"') if ahead == 2 || c0 == Some('r') => {
                for _ in 0..ahead + hashes + 1 {
                    self.bump();
                }
                self.raw_string_body(hashes, line, col);
                true
            }
            Some(c) if c0 == Some('r') && hashes == 1 && (c == '_' || c.is_alphabetic()) => {
                // r#ident — a raw identifier; lex the ident part normally.
                self.bump();
                self.bump();
                self.ident(line, col);
                true
            }
            _ => false,
        }
    }

    fn raw_string_body(&mut self, hashes: usize, line: u32, col: u32) {
        let mut text = String::from("r\"");
        while let Some(c) = self.bump() {
            if c == '"' {
                let mut matched = 0;
                while matched < hashes && self.peek(0) == Some('#') {
                    self.bump();
                    matched += 1;
                }
                if matched == hashes {
                    break;
                }
                text.push('"');
                for _ in 0..matched {
                    text.push('#');
                }
            } else {
                text.push(c);
            }
        }
        text.push('"');
        self.push(TokenKind::StrLit, text, line, col);
    }

    fn ident(&mut self, line: u32, col: u32) {
        let mut text = String::new();
        while let Some(c) = self.peek(0) {
            if c == '_' || c.is_alphanumeric() {
                text.push(c);
                self.bump();
            } else {
                break;
            }
        }
        self.push(TokenKind::Ident, text, line, col);
    }

    fn number(&mut self, line: u32, col: u32) {
        let mut text = String::new();
        while let Some(c) = self.peek(0) {
            let take = c.is_ascii_alphanumeric()
                || c == '_'
                // Take a `.` only when a digit follows: `1.5` is one number,
                // `0..10` is a number then a range operator.
                || (c == '.' && self.peek(1).is_some_and(|d| d.is_ascii_digit()));
            if take {
                text.push(c);
                self.bump();
            } else {
                break;
            }
        }
        self.push(TokenKind::Number, text, line, col);
    }

    /// A `'` starts either a lifetime or a char literal.
    fn quote(&mut self, line: u32, col: u32) {
        self.bump(); // consume '
        match self.peek(0) {
            // Escape: definitely a char literal ('\n', '\'', '\u{1F600}').
            Some('\\') => {
                let mut text = String::from("'");
                text.push(self.bump().unwrap_or('\\'));
                // The escaped character itself — consumed unconditionally
                // so '\'' does not mistake it for the closing quote.
                if let Some(escaped) = self.bump() {
                    text.push(escaped);
                }
                while let Some(c) = self.bump() {
                    text.push(c);
                    if c == '\'' {
                        break;
                    }
                }
                self.push(TokenKind::CharLit, text, line, col);
            }
            Some(c) if c == '_' || c.is_alphabetic() => {
                // 'a' is a char literal; 'a (no closing quote) a lifetime.
                // Lifetimes are single words, so scan the ident first.
                let mut name = String::new();
                while let Some(c) = self.peek(0) {
                    if c == '_' || c.is_alphanumeric() {
                        name.push(c);
                        self.bump();
                    } else {
                        break;
                    }
                }
                if self.peek(0) == Some('\'') && name.chars().count() == 1 {
                    self.bump();
                    self.push(TokenKind::CharLit, format!("'{name}'"), line, col);
                } else {
                    self.push(TokenKind::Lifetime, name, line, col);
                }
            }
            // Any other char literal ('.', ' ', '0').
            Some(c) => {
                self.bump();
                if self.peek(0) == Some('\'') {
                    self.bump();
                }
                self.push(TokenKind::CharLit, format!("'{c}'"), line, col);
            }
            None => {}
        }
    }
}
