//! Workspace collection and the check entry point.

use std::path::{Path, PathBuf};

use crate::diagnostics::{Baseline, Diagnostic, Level};
use crate::registry::Registry;
use crate::scan::SourceFile;

/// Where the committed baseline lives, relative to the repo root.
pub const BASELINE_PATH: &str = "crates/lint/baseline.txt";

/// Outcome of one check run.
#[derive(Debug)]
pub struct Report {
    /// Findings that fail the run (deny level, not baselined).
    pub failing: Vec<Diagnostic>,
    /// Findings printed but tolerated (warn level).
    pub warnings: Vec<Diagnostic>,
    /// Findings covered by the committed baseline.
    pub baselined: Vec<Diagnostic>,
    /// Baseline entries whose finding no longer exists (should be pruned).
    pub stale_baseline: Vec<String>,
    /// Number of files analyzed.
    pub files_checked: usize,
}

impl Report {
    /// Whether the run passes (nothing failing, no stale baseline).
    pub fn is_clean(&self) -> bool {
        self.failing.is_empty() && self.stale_baseline.is_empty()
    }
}

/// Collects every `.rs` file under `<root>/src` and `<root>/crates/*/src`.
///
/// Shims (`shims/*`), tests, benches and examples directories are not
/// product source and are deliberately out of scope; test *modules* inside
/// product sources are handled per-lint via the test-region map.
pub fn collect_sources(root: &Path) -> std::io::Result<Vec<SourceFile>> {
    let mut dirs: Vec<PathBuf> = vec![root.join("src")];
    let crates_dir = root.join("crates");
    if let Ok(entries) = std::fs::read_dir(&crates_dir) {
        let mut crate_dirs: Vec<PathBuf> = entries
            .filter_map(|e| e.ok())
            .map(|e| e.path().join("src"))
            .filter(|p| p.is_dir())
            .collect();
        crate_dirs.sort();
        dirs.extend(crate_dirs);
    }
    let mut paths = Vec::new();
    for dir in dirs {
        if dir.is_dir() {
            walk(&dir, &mut paths)?;
        }
    }
    paths.sort();
    paths
        .iter()
        .map(|p| SourceFile::load(root, p))
        .collect::<Result<Vec<_>, _>>()
}

fn walk(dir: &Path, out: &mut Vec<PathBuf>) -> std::io::Result<()> {
    for entry in std::fs::read_dir(dir)? {
        let path = entry?.path();
        if path.is_dir() {
            walk(&path, out)?;
        } else if path.extension().is_some_and(|e| e == "rs") {
            out.push(path);
        }
    }
    Ok(())
}

/// Runs `registry` over the workspace at `root`, splitting findings
/// against the baseline at `<root>/`[`BASELINE_PATH`].
pub fn run_check(root: &Path, registry: &Registry) -> std::io::Result<Report> {
    let files = collect_sources(root)?;
    let baseline = Baseline::load(&root.join(BASELINE_PATH));
    let diags = registry.run(&files);
    let stale_baseline = baseline
        .stale(&diags)
        .into_iter()
        .map(str::to_string)
        .collect();
    let mut report = Report {
        failing: Vec::new(),
        warnings: Vec::new(),
        baselined: Vec::new(),
        stale_baseline,
        files_checked: files.len(),
    };
    for d in diags {
        if baseline.covers(&d) {
            report.baselined.push(d);
        } else if d.level == Level::Warn {
            report.warnings.push(d);
        } else {
            report.failing.push(d);
        }
    }
    Ok(report)
}
