//! Workspace collection and the check entry point.

use std::path::{Path, PathBuf};

use crate::diagnostics::{Baseline, Diagnostic, Level};
use crate::registry::Registry;
use crate::scan::SourceFile;

/// Where the committed baseline lives, relative to the repo root.
pub const BASELINE_PATH: &str = "crates/lint/baseline.txt";

/// Documentation files loaded alongside the sources (relative paths).
///
/// `obs-exhaustiveness` checks every metric name constructed in product
/// code against the registry documented in DESIGN.md §5d, so the design
/// doc is part of the analysis input, not just prose.
pub const DOC_PATHS: &[&str] = &["DESIGN.md"];

/// A non-Rust analysis input: raw text plus its repo-relative path.
///
/// Docs are not lexed — lints that need them (the metric-name registry
/// check) scan the raw text for the tokens they care about.
#[derive(Debug, Clone)]
pub struct DocFile {
    /// Repo-relative path with forward slashes.
    pub path: String,
    /// Raw file contents.
    pub text: String,
}

/// Everything a lint sees on one run: the lexed Rust sources plus the
/// documentation files some cross-artifact lints consult.
#[derive(Debug, Clone, Default)]
pub struct Workspace {
    /// Lexed `.rs` sources, sorted by path.
    pub files: Vec<SourceFile>,
    /// Raw documentation files (see [`DOC_PATHS`]).
    pub docs: Vec<DocFile>,
}

impl Workspace {
    /// A workspace holding only the given sources (fixture helper).
    pub fn from_files(files: Vec<SourceFile>) -> Workspace {
        Workspace {
            files,
            docs: Vec::new(),
        }
    }

    /// The doc file at `path`, if loaded.
    pub fn doc(&self, path: &str) -> Option<&DocFile> {
        self.docs.iter().find(|d| d.path == path)
    }
}

/// Outcome of one check run.
#[derive(Debug)]
pub struct Report {
    /// Findings that fail the run (deny level, not baselined).
    pub failing: Vec<Diagnostic>,
    /// Findings printed but tolerated (warn level).
    pub warnings: Vec<Diagnostic>,
    /// Findings covered by the committed baseline.
    pub baselined: Vec<Diagnostic>,
    /// Baseline entries whose finding no longer exists (should be pruned).
    pub stale_baseline: Vec<String>,
    /// Number of files analyzed.
    pub files_checked: usize,
}

impl Report {
    /// Whether the run passes (nothing failing, no stale baseline).
    pub fn is_clean(&self) -> bool {
        self.failing.is_empty() && self.stale_baseline.is_empty()
    }

    /// Every reported finding in location order, tagged with whether the
    /// committed baseline suppresses it. This is the sequence the
    /// machine-readable formats emit — stable across runs by construction
    /// (the registry sorts, and the baseline flag is a pure function of
    /// the finding).
    pub fn all_findings(&self) -> Vec<(&Diagnostic, bool)> {
        let mut all: Vec<(&Diagnostic, bool)> = self
            .failing
            .iter()
            .map(|d| (d, false))
            .chain(self.warnings.iter().map(|d| (d, false)))
            .chain(self.baselined.iter().map(|d| (d, true)))
            .collect();
        all.sort_by(|(a, _), (b, _)| {
            (a.file.as_str(), a.line, a.col, a.lint).cmp(&(b.file.as_str(), b.line, b.col, b.lint))
        });
        all
    }
}

/// Collects every `.rs` file under `<root>/src` and `<root>/crates/*/src`,
/// plus the documentation inputs ([`DOC_PATHS`]).
///
/// Shims (`shims/*`), tests, benches and examples directories are not
/// product source and are deliberately out of scope; test *modules* inside
/// product sources are handled per-lint via the test-region map.
pub fn collect_workspace(root: &Path) -> std::io::Result<Workspace> {
    let mut dirs: Vec<PathBuf> = vec![root.join("src")];
    let crates_dir = root.join("crates");
    if let Ok(entries) = std::fs::read_dir(&crates_dir) {
        let mut crate_dirs: Vec<PathBuf> = entries
            .filter_map(|e| e.ok())
            .map(|e| e.path().join("src"))
            .filter(|p| p.is_dir())
            .collect();
        crate_dirs.sort();
        dirs.extend(crate_dirs);
    }
    let mut paths = Vec::new();
    for dir in dirs {
        if dir.is_dir() {
            walk(&dir, &mut paths)?;
        }
    }
    paths.sort();
    let files = paths
        .iter()
        .map(|p| SourceFile::load(root, p))
        .collect::<Result<Vec<_>, _>>()?;
    let mut docs = Vec::new();
    for rel in DOC_PATHS {
        if let Ok(text) = std::fs::read_to_string(root.join(rel)) {
            docs.push(DocFile {
                path: (*rel).to_string(),
                text,
            });
        }
    }
    Ok(Workspace { files, docs })
}

fn walk(dir: &Path, out: &mut Vec<PathBuf>) -> std::io::Result<()> {
    for entry in std::fs::read_dir(dir)? {
        let path = entry?.path();
        if path.is_dir() {
            walk(&path, out)?;
        } else if path.extension().is_some_and(|e| e == "rs") {
            out.push(path);
        }
    }
    Ok(())
}

/// Runs `registry` over the workspace at `root`, splitting findings
/// against the baseline at `<root>/`[`BASELINE_PATH`].
pub fn run_check(root: &Path, registry: &Registry) -> std::io::Result<Report> {
    let workspace = collect_workspace(root)?;
    let baseline = Baseline::load(&root.join(BASELINE_PATH));
    let diags = registry.run(&workspace);
    let stale_baseline = baseline
        .stale(&diags)
        .into_iter()
        .map(str::to_string)
        .collect();
    let mut report = Report {
        failing: Vec::new(),
        warnings: Vec::new(),
        baselined: Vec::new(),
        stale_baseline,
        files_checked: workspace.files.len(),
    };
    for d in diags {
        if baseline.covers(&d) {
            report.baselined.push(d);
        } else if d.level == Level::Warn {
            report.warnings.push(d);
        } else {
            report.failing.push(d);
        }
    }
    Ok(report)
}
