//! The `fedra-lint` command-line interface.
//!
//! ```text
//! cargo run -p fedra-lint -- check                 # fail on non-baselined findings
//! cargo run -p fedra-lint -- check --root DIR      # analyze another tree
//! cargo run -p fedra-lint -- check --format json   # machine-readable (also: sarif)
//! cargo run -p fedra-lint -- baseline              # regenerate the baseline file
//! cargo run -p fedra-lint -- list                  # show registered lints
//! ```

#![forbid(unsafe_code)]
#![deny(missing_docs)]

use std::path::PathBuf;
use std::process::ExitCode;

use fedra_lint::diagnostics::Baseline;
use fedra_lint::output::{render_json, render_sarif};
use fedra_lint::registry::Registry;
use fedra_lint::workspace::{collect_workspace, run_check, BASELINE_PATH};

/// Output format for `check`.
#[derive(Clone, Copy, PartialEq, Eq)]
enum Format {
    Human,
    Json,
    Sarif,
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let command = args.first().map(String::as_str).unwrap_or("check");
    let root = args
        .iter()
        .position(|a| a == "--root")
        .and_then(|i| args.get(i + 1))
        .map(PathBuf::from)
        .unwrap_or_else(default_root);
    let format = match args
        .iter()
        .position(|a| a == "--format")
        .and_then(|i| args.get(i + 1))
        .map(String::as_str)
    {
        None => Format::Human,
        Some("json") => Format::Json,
        Some("sarif") => Format::Sarif,
        Some(other) => {
            eprintln!("fedra-lint: unknown format `{other}` (try: json, sarif)");
            return ExitCode::from(2);
        }
    };

    match command {
        "check" => check(&root, format),
        "baseline" => baseline(&root),
        "list" => list(),
        other => {
            eprintln!("fedra-lint: unknown command `{other}` (try: check, baseline, list)");
            ExitCode::from(2)
        }
    }
}

/// The workspace root: two levels above this crate's manifest.
fn default_root() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("../..")
        .canonicalize()
        .unwrap_or_else(|_| PathBuf::from("."))
}

fn check(root: &PathBuf, format: Format) -> ExitCode {
    let registry = Registry::with_default_lints();
    let report = match run_check(root, &registry) {
        Ok(report) => report,
        Err(e) => {
            eprintln!(
                "fedra-lint: cannot read workspace at {}: {e}",
                root.display()
            );
            return ExitCode::from(2);
        }
    };
    match format {
        Format::Human => {
            for d in &report.warnings {
                println!("{d}");
            }
            for d in &report.failing {
                println!("{d}");
            }
            for entry in &report.stale_baseline {
                println!(
                    "stale baseline entry (finding fixed — delete it from {BASELINE_PATH}): {}",
                    entry.replace('\t', " ")
                );
            }
            println!(
                "fedra-lint: {} files checked — {} failing, {} warnings, {} baselined, {} stale",
                report.files_checked,
                report.failing.len(),
                report.warnings.len(),
                report.baselined.len(),
                report.stale_baseline.len(),
            );
        }
        Format::Json => print!("{}", render_json(&report, &registry.lints())),
        Format::Sarif => print!("{}", render_sarif(&report, &registry.lints())),
    }
    if report.is_clean() {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}

fn baseline(root: &PathBuf) -> ExitCode {
    let registry = Registry::with_default_lints();
    let workspace = match collect_workspace(root) {
        Ok(ws) => ws,
        Err(e) => {
            eprintln!(
                "fedra-lint: cannot read workspace at {}: {e}",
                root.display()
            );
            return ExitCode::from(2);
        }
    };
    let diags = registry.run(&workspace);
    let path = root.join(BASELINE_PATH);
    if let Err(e) = std::fs::write(&path, Baseline::render(&diags)) {
        eprintln!("fedra-lint: cannot write {}: {e}", path.display());
        return ExitCode::from(2);
    }
    println!(
        "fedra-lint: wrote {} entries to {}",
        diags.len(),
        path.display()
    );
    ExitCode::SUCCESS
}

fn list() -> ExitCode {
    for (name, description, level) in Registry::with_default_lints().lints() {
        println!("{level:5} {name:20} {description}");
    }
    ExitCode::SUCCESS
}
