//! A/B harness for the silo-local worker pool: stands the same
//! federation up twice — once with every pool pinned to 1 worker, once
//! with auto sizing — and reports setup wall time (index builds + the
//! Alg. 1 grid round) plus `nQ = 250` batch throughput side by side.
//! The answers are bit-identical by construction (see
//! `tests/parallel_equivalence.rs`); this harness measures the only
//! thing the pool is allowed to change, wall-clock.
//!
//! Writes the numbers to `BENCH_parallel.json` at the repo root
//! (referenced from EXPERIMENTS.md) along with the host's core count —
//! the speedups only mean something relative to it.
//!
//! ```text
//! FEDRA_SCALE=0.2 cargo run --release -p fedra-bench --example ab_parallel
//! ```

use std::time::Instant;

use fedra_core::{Exact, FraAlgorithm, FraQuery, NonIidEst, QueryEngine};
use fedra_federation::{Federation, FederationBuilder};
use fedra_index::AggFunc;
use fedra_workload::{QueryGenerator, SweepConfig, WorkloadSpec};

struct Variant {
    name: &'static str,
    threads: usize,
    setup_secs: f64,
    batch: Vec<(String, f64)>,
}

fn stand_up(point: &fedra_workload::ParamPoint, seed: u64, threads: usize) -> (Federation, f64) {
    let spec = WorkloadSpec::default()
        .with_total_objects(point.data_size)
        .with_silos(point.num_silos)
        .with_seed(seed);
    let dataset = spec.generate();
    let bounds = dataset.bounds();
    let partitions = dataset.into_partitions();
    let started = Instant::now();
    let federation = FederationBuilder::new(bounds)
        .grid_cell_len(point.grid_len_km)
        .lsr_seed(seed ^ 0x15AF)
        .silo_threads(threads)
        .build(partitions);
    (federation, started.elapsed().as_secs_f64())
}

fn main() {
    let config = SweepConfig::from_env();
    let point = fedra_workload::ParamPoint {
        num_queries: 250,
        ..config.defaults
    };
    let seed = 48u64;
    let cores = std::thread::available_parallelism().map_or(1, |n| n.get());

    // Query centers are anchored on the same objects for both variants.
    let all_objects = WorkloadSpec::default()
        .with_total_objects(point.data_size)
        .with_silos(point.num_silos)
        .with_seed(seed)
        .generate()
        .all_objects();
    let mut generator = QueryGenerator::new(&all_objects, seed ^ 0x9E37);
    let queries: Vec<FraQuery> = generator
        .circles(point.radius_km, point.num_queries)
        .into_iter()
        .map(|range| FraQuery::new(range, AggFunc::Count))
        .collect();

    // Throwaway build: pre-faults the heap so the first measured variant
    // doesn't pay the allocator warm-up (worth ~3x on its own).
    drop(stand_up(&point, seed, 1));

    let mut variants = Vec::new();
    for (name, threads) in [("threads=1", 1usize), ("auto", 0usize)] {
        // Best of two stand-ups: one build is a single sample and noisy
        // on loaded runners.
        let first = stand_up(&point, seed, threads);
        let (federation, second_secs) = stand_up(&point, seed, threads);
        let setup_secs = first.1.min(second_secs);
        println!("[{name}] setup: {setup_secs:.3}s");
        let algorithms: Vec<Box<dyn FraAlgorithm>> = vec![
            Box::new(Exact::new()),
            Box::new(NonIidEst::new(seed ^ 0x33)),
        ];
        let mut batch = Vec::new();
        for alg in &algorithms {
            let engine = QueryEngine::per_silo(alg.as_ref(), &federation);
            // Warm once, then keep the best of three (least scheduler
            // noise on loaded runners).
            engine.execute_batch(&federation, &queries);
            let qps = (0..3)
                .map(|_| engine.execute_batch(&federation, &queries).throughput_qps)
                .fold(0.0f64, f64::max);
            println!("[{name}] {:>12}: {qps:.1} q/s", alg.name());
            batch.push((alg.name().to_string(), qps));
        }
        variants.push(Variant {
            name,
            threads,
            setup_secs,
            batch,
        });
    }

    let (base, auto) = (&variants[0], &variants[1]);
    let setup_speedup = base.setup_secs / auto.setup_secs.max(1e-9);
    println!("setup speedup (threads=1 → auto): {setup_speedup:.2}x on {cores} core(s)");

    let batch_json = |v: &Variant| -> String {
        v.batch
            .iter()
            .map(|(name, qps)| format!("{{\"algorithm\": \"{name}\", \"qps\": {qps:.2}}}"))
            .collect::<Vec<_>>()
            .join(", ")
    };
    let variant_json = |v: &Variant| -> String {
        format!(
            "{{\"name\": \"{}\", \"threads\": {}, \"setup_secs\": {:.4}, \"batch\": [{}]}}",
            v.name,
            v.threads,
            v.setup_secs,
            batch_json(v)
        )
    };
    let json = format!(
        "{{\n  \"bench\": \"ab_parallel\",\n  \"host_cores\": {cores},\n  \"point\": {{\"data_size\": {}, \"num_silos\": {}, \"num_queries\": {}, \"radius_km\": {}, \"grid_len_km\": {}}},\n  \"variants\": [\n    {},\n    {}\n  ],\n  \"setup_speedup\": {setup_speedup:.3},\n  \"note\": \"speedup is bounded by host_cores; on a single-core runner the two variants coincide up to pool overhead\"\n}}\n",
        point.data_size,
        point.num_silos,
        point.num_queries,
        point.radius_km,
        point.grid_len_km,
        variant_json(base),
        variant_json(auto),
    );
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_parallel.json");
    std::fs::write(path, json).expect("write BENCH_parallel.json");
    println!("wrote {path}");
}
