//! A/B harness for the batched transport: runs the fig. 8 batch point
//! (`nQ = 250` at the Tab. 2 defaults) through the coalesced engine path
//! (`execute_batch`) and the legacy one-RPC-per-query path
//! (`execute_batch_singleton`), printing throughput and communication
//! side by side for every algorithm.
//!
//! ```text
//! FEDRA_SCALE=0.2 cargo run --release -p fedra-bench --example ab_batching
//! ```

use fedra_bench::{build_testbed, SweepConfig};
use fedra_core::{
    AccuracyParams, Exact, FraAlgorithm, FraQuery, IidEst, IidEstLsr, NonIidEst, NonIidEstLsr,
    Opta, QueryEngine,
};
use fedra_index::AggFunc;
use fedra_workload::QueryGenerator;

fn main() {
    let config = SweepConfig::from_env();
    let point = fedra_workload::ParamPoint {
        num_queries: 250,
        ..config.defaults
    };
    let testbed = fedra_bench::timed("build testbed", || build_testbed(&point, 46));
    let federation = &testbed.federation;
    let mut generator = QueryGenerator::new(&testbed.all_objects, 6_004 ^ 0x9E37);
    let queries: Vec<FraQuery> = generator
        .circles(point.radius_km, point.num_queries)
        .into_iter()
        .map(|range| FraQuery::new(range, AggFunc::Count))
        .collect();

    let params = AccuracyParams::new(point.epsilon, point.delta);
    let algorithms: Vec<Box<dyn FraAlgorithm>> = vec![
        Box::new(Exact::new()),
        Box::new(Opta::new()),
        Box::new(IidEst::new(46 ^ 0x11)),
        Box::new(IidEstLsr::new(46 ^ 0x22, params)),
        Box::new(NonIidEst::new(46 ^ 0x33)),
        Box::new(NonIidEstLsr::new(46 ^ 0x44, params)),
    ];

    println!(
        "nQ = {}  m = {}  |P| = {}  (before = singleton RPCs, after = coalesced batches)",
        point.num_queries, point.num_silos, point.data_size
    );
    println!(
        "{:>12}  {:>12} {:>12}  {:>12} {:>12}  {:>8} {:>8}",
        "algorithm", "before q/s", "after q/s", "before KB", "after KB", "b.rounds", "a.rounds"
    );
    for alg in &algorithms {
        let engine = QueryEngine::per_silo(alg.as_ref(), federation);
        // BatchResult.comm is a delta around the batch — no reset needed.
        let before = engine.execute_batch_singleton(federation, &queries);
        let after = engine.execute_batch(federation, &queries);
        println!(
            "{:>12}  {:>12.1} {:>12.1}  {:>12.1} {:>12.1}  {:>8} {:>8}",
            alg.name(),
            before.throughput_qps,
            after.throughput_qps,
            before.comm.total_bytes() as f64 / 1024.0,
            after.comm.total_bytes() as f64 / 1024.0,
            before.comm.rounds,
            after.comm.rounds,
        );
    }
}
