//! Sustained-load harness for the concurrent query scheduler.
//!
//! Drives the [`QueryScheduler`] two ways and writes the numbers to
//! `BENCH_load.json` at the repo root (referenced from EXPERIMENTS.md):
//!
//! 1. **Closed loop**: 8 client threads submit-and-wait back to back —
//!    the scheduler's multi-client throughput against the serialized
//!    single-engine baseline on the same federation. The speedup is
//!    bounded by `host_cores` (recorded in the artifact), exactly like
//!    the `ab_parallel` pool numbers.
//! 2. **Open loop**: paced submitters offer load at multiples of the
//!    baseline capacity (0.5×–4×) under a deadline class; past
//!    saturation the admission queue overflows and queued queries expire,
//!    so the shed rate climbs while p99 stays bounded by the deadline —
//!    the qps × p50/p95/p99 × shed-rate curve.
//!
//! The run ends with a determinism audit (scheduled answers replayed
//! serially must match bit for bit — the scheduler adds *zero*
//! approximation, so any drift is an ε violation) and a breaker-leak
//! check, both grepped by `ci.sh`'s load smoke.
//!
//! ```text
//! FEDRA_LOAD_MS=400 cargo run --release -p fedra-bench --example ab_load
//! ```

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use fedra_core::{
    ClassPolicy, FraAlgorithm, FraQuery, IidEst, QueryEngine, QueryScheduler, SchedulerConfig,
};
use fedra_federation::{Federation, FederationBuilder};
use fedra_index::AggFunc;
use fedra_obs::ObsContext;
use fedra_workload::{QueryGenerator, WorkloadSpec};

const CLIENTS: usize = 8;
const SEED: u64 = 51;

/// One measured point of the open-loop curve.
struct LoadPoint {
    offered_qps: f64,
    achieved_qps: f64,
    p50_ms: f64,
    p95_ms: f64,
    p99_ms: f64,
    shed_rate: f64,
    submitted: usize,
    shed: usize,
}

fn stand_up() -> (Arc<Federation>, Vec<FraQuery>) {
    let spec = WorkloadSpec::default()
        .with_total_objects(60_000)
        .with_silos(6)
        .with_seed(SEED);
    let dataset = spec.generate();
    let all = dataset.all_objects();
    let bounds = dataset.bounds();
    let federation = FederationBuilder::new(bounds)
        .grid_cell_len(1.0)
        .lsr_seed(SEED ^ 0x15AF)
        .build(dataset.into_partitions());
    let mut generator = QueryGenerator::new(&all, SEED ^ 0x9E37);
    let queries = generator
        .circles(2.0, 512)
        .into_iter()
        .map(|range| FraQuery::new(range, AggFunc::Count))
        .collect();
    (Arc::new(federation), queries)
}

fn factory(seed: u64) -> Box<dyn FraAlgorithm> {
    Box::new(IidEst::new(seed))
}

/// Per-query seed: a fixed function of the query index, so the
/// determinism audit can replay any submission serially.
fn query_seed(i: usize) -> u64 {
    0x51ED_0000 + i as u64
}

/// ns → ms for the histogram percentiles (`None` before any observation).
fn pct_ms(hist: Option<&fedra_obs::HistogramSnapshot>, q: f64) -> f64 {
    hist.and_then(|h| h.quantile(q))
        .map_or(f64::NAN, |ns| ns as f64 / 1e6)
}

/// One open-loop point: `CLIENTS` paced submitters offer `offered_qps`
/// for `window`; every ticket is then drained and sheds counted.
fn run_open_loop(
    federation: &Arc<Federation>,
    queries: &[FraQuery],
    offered_qps: f64,
    window: Duration,
) -> LoadPoint {
    let obs = Arc::new(ObsContext::new());
    let config = SchedulerConfig {
        classes: vec![ClassPolicy::with_deadline(
            "rt",
            1024,
            Duration::from_millis(50),
        )],
        ..SchedulerConfig::default()
    };
    let sched = Arc::new(QueryScheduler::start(
        Arc::clone(federation),
        factory,
        config,
        Arc::clone(&obs),
    ));
    let queue_full = Arc::new(AtomicUsize::new(0));
    let started = Instant::now();
    let mut results: Vec<Result<(), ()>> = Vec::new();
    std::thread::scope(|scope| {
        let mut handles = Vec::new();
        for client in 0..CLIENTS {
            let sched = Arc::clone(&sched);
            let queue_full = Arc::clone(&queue_full);
            let rate = offered_qps / CLIENTS as f64;
            handles.push(scope.spawn(move || {
                // Slot pacing: fire the slot's quota, sleep the remainder
                // of the slot — sleep granularity stops mattering.
                const SLOT: Duration = Duration::from_millis(5);
                let per_slot = (rate * SLOT.as_secs_f64()).max(1.0) as usize;
                let mut tickets = Vec::new();
                let mut cursor = client; // interleave the query list
                let begun = Instant::now();
                while begun.elapsed() < window {
                    let slot_end = Instant::now() + SLOT;
                    for _ in 0..per_slot {
                        let q = queries[cursor % queries.len()];
                        match sched.submit(q, query_seed(cursor), 0) {
                            Ok(t) => tickets.push(t),
                            Err(_) => {
                                queue_full.fetch_add(1, Ordering::Relaxed);
                            }
                        }
                        cursor += CLIENTS;
                    }
                    if let Some(nap) = slot_end.checked_duration_since(Instant::now()) {
                        std::thread::sleep(nap);
                    }
                }
                tickets
                    .into_iter()
                    .map(|t| t.wait().map(|_| ()).map_err(|_| ()))
                    .collect::<Vec<_>>()
            }));
        }
        for h in handles {
            results.extend(h.join().expect("client thread"));
        }
    });
    let elapsed = started.elapsed().as_secs_f64();
    let accepted = results.len();
    let completed = results.iter().filter(|r| r.is_ok()).count();
    let shed = accepted - completed + queue_full.load(Ordering::Relaxed);
    let submitted = accepted + queue_full.load(Ordering::Relaxed);
    let snap = obs.registry().snapshot();
    let hist = snap.histograms.get("fedra_sched_latency_ns");
    LoadPoint {
        offered_qps,
        achieved_qps: completed as f64 / elapsed,
        p50_ms: pct_ms(hist, 0.50),
        p95_ms: pct_ms(hist, 0.95),
        p99_ms: pct_ms(hist, 0.99),
        shed_rate: shed as f64 / submitted.max(1) as f64,
        submitted,
        shed,
    }
}

fn main() {
    let cores = std::thread::available_parallelism().map_or(1, |n| n.get());
    let window = Duration::from_millis(
        std::env::var("FEDRA_LOAD_MS")
            .ok()
            .and_then(|s| s.parse().ok())
            .unwrap_or(1200),
    );
    let (federation, queries) = stand_up();

    // Serialized-engine baseline: one engine, one worker, the whole batch
    // back to back. Warm once, keep the best of three.
    let alg = IidEst::new(SEED ^ 0x33);
    let engine = QueryEngine::with_workers(&alg, 1);
    engine.execute_batch(&federation, &queries);
    let baseline_qps = (0..3)
        .map(|_| engine.execute_batch(&federation, &queries).throughput_qps)
        .fold(0.0f64, f64::max);
    println!("serialized baseline: {baseline_qps:.0} q/s on {cores} core(s)");

    // Closed loop: 8 clients, submit-and-wait, deadline-free.
    let obs = Arc::new(ObsContext::new());
    let sched = Arc::new(QueryScheduler::start(
        Arc::clone(&federation),
        factory,
        SchedulerConfig::default(),
        Arc::clone(&obs),
    ));
    let per_client = queries.len() / CLIENTS;
    let started = Instant::now();
    std::thread::scope(|scope| {
        for client in 0..CLIENTS {
            let sched = Arc::clone(&sched);
            let queries = &queries;
            scope.spawn(move || {
                for i in 0..per_client {
                    let idx = client * per_client + i;
                    let t = sched
                        .submit(queries[idx], query_seed(idx), 0)
                        .expect("deadline-free class admits");
                    t.wait().expect("closed-loop query answers");
                }
            });
        }
    });
    let closed_qps = (per_client * CLIENTS) as f64 / started.elapsed().as_secs_f64();
    let speedup = closed_qps / baseline_qps.max(1e-9);
    println!(
        "closed loop ({CLIENTS} clients): {closed_qps:.0} q/s ({speedup:.2}x baseline, bound: {cores} core(s))"
    );

    // Open loop: offered load from half capacity to 4x capacity.
    let mut curve = Vec::new();
    for mult in [0.5, 1.0, 2.0, 4.0] {
        let point = run_open_loop(&federation, &queries, baseline_qps * mult, window);
        println!(
            "offered {:>7.0} q/s: achieved {:>7.0} q/s, p50 {:>7.2} ms, p95 {:>7.2} ms, p99 {:>7.2} ms, shed {:>5.1} % ({}/{})",
            point.offered_qps,
            point.achieved_qps,
            point.p50_ms,
            point.p95_ms,
            point.p99_ms,
            point.shed_rate * 100.0,
            point.shed,
            point.submitted,
        );
        curve.push(point);
    }
    let total_shed: usize = curve.iter().map(|p| p.shed).sum();
    println!("shed total: {total_shed}");

    // Determinism audit: every scheduled answer must be bit-identical to
    // serial execution of the same (query, seed) — the scheduler adds no
    // approximation of its own, so any drift is an ε violation.
    let audit_obs = Arc::new(ObsContext::new());
    let audit = QueryScheduler::start(
        Arc::clone(&federation),
        factory,
        SchedulerConfig::default(),
        audit_obs,
    );
    let audit_n = 64.min(queries.len());
    let tickets: Vec<_> = (0..audit_n)
        .map(|i| {
            audit
                .submit(queries[i], query_seed(i), 0)
                .expect("audit submit")
        })
        .collect();
    let mut violations = 0usize;
    for (i, ticket) in tickets.into_iter().enumerate() {
        let got = ticket.wait().expect("audit query answers");
        let alg = factory(query_seed(i));
        let serial = QueryEngine::with_workers(alg.as_ref(), 1).execute_batch_with(
            &federation,
            &queries[i..=i],
            &ObsContext::new(),
        );
        let want = serial.results[0].as_ref().expect("serial query answers");
        if got.value.to_bits() != want.value.to_bits() {
            violations += 1;
        }
    }
    println!("load ε violations: {violations}");
    println!("breaker leaks: {}", federation.health().non_closed().len());

    let curve_json = curve
        .iter()
        .map(|p| {
            format!(
                "{{\"offered_qps\": {:.1}, \"achieved_qps\": {:.1}, \"p50_ms\": {:.3}, \"p95_ms\": {:.3}, \"p99_ms\": {:.3}, \"shed_rate\": {:.4}, \"submitted\": {}, \"shed\": {}}}",
                p.offered_qps,
                p.achieved_qps,
                p.p50_ms,
                p.p95_ms,
                p.p99_ms,
                p.shed_rate,
                p.submitted,
                p.shed
            )
        })
        .collect::<Vec<_>>()
        .join(",\n    ");
    let json = format!(
        "{{\n  \"bench\": \"ab_load\",\n  \"host_cores\": {cores},\n  \"point\": {{\"data_size\": 60000, \"num_silos\": 6, \"radius_km\": 2.0, \"window_ms\": {}}},\n  \"baseline_qps\": {baseline_qps:.1},\n  \"closed_loop\": {{\"clients\": {CLIENTS}, \"qps\": {closed_qps:.1}, \"speedup\": {speedup:.3}, \"note\": \"speedup is bounded by host_cores; on a single-core runner the scheduler cannot beat the serialized engine, and the ratio measures scheduling overhead (tick loop, per-query algorithm construction, ticket wake-ups) instead of concurrency\"}},\n  \"curve\": [\n    {curve_json}\n  ],\n  \"shed_total\": {total_shed},\n  \"epsilon_violations\": {violations}\n}}\n",
        window.as_millis(),
    );
    // FEDRA_LOAD_OUT redirects the artifact (ci.sh archives a short-window
    // smoke run under target/ci/ without touching the committed JSON).
    let path = std::env::var("FEDRA_LOAD_OUT").unwrap_or_else(|_| {
        concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_load.json").to_string()
    });
    std::fs::write(&path, json).expect("write BENCH_load.json");
    println!("wrote {path}");
}
