//! A/B harness for the ε-aware answer cache and the grid pyramid on a
//! dashboard workload: the same district tiles and roll-up panels
//! re-asked cycle after cycle, the access pattern the cache exists for.
//!
//! Three cache variants run the identical query stream:
//!
//! * **uncached** — every refresh goes to the silos (EXACT);
//! * **cache_cold** — the first refresh cycle through an [`AnswerCache`]
//!   (all misses plus the roll-ups' containment decompositions);
//! * **cache_warm** — steady-state refresh cycles, everything served
//!   from the cache by ε-containment.
//!
//! A fourth section A/Bs the planner's pyramid knob on large circular
//! queries: `pyramid: false` fans out to the silos, `pyramid: true`
//! serves from the provider's coarsened merged grid whenever the
//! computed boundary bound fits the target error, recording the level
//! histogram.
//!
//! Writes `BENCH_cache.json` at the repo root (referenced from
//! EXPERIMENTS.md) along with the host's core count.
//!
//! ```text
//! cargo run --release -p fedra-bench --example ab_cache
//! ```

use std::time::Instant;

use fedra_core::{
    AdaptivePlanner, AnswerCache, CacheConfig, CachePolicy, CacheSource, Exact, FraAlgorithm,
    FraQuery, PlannerPolicy,
};
use fedra_federation::FederationBuilder;
use fedra_geo::{Point, Rect};
use fedra_index::AggFunc;
use fedra_obs::ObsContext;
use fedra_workload::{MeasureModel, QueryGenerator, WorkloadSpec};

const EPSILON: f64 = 0.05;
const WARM_CYCLES: usize = 2_000;

fn main() {
    let mut spec = WorkloadSpec::default()
        .with_total_objects(120_000)
        .with_silos(6)
        .with_seed(314);
    spec.measure = MeasureModel::Speed;
    let dataset = spec.generate();
    let all = dataset.all_objects();
    let federation = FederationBuilder::new(dataset.bounds())
        .grid_cell_len(1.0)
        .build(dataset.into_partitions());
    let cores = std::thread::available_parallelism().map_or(1, |n| n.get());

    // The city_dashboard refresh: 4×4 district tiles over the urban
    // core, four quadrant roll-ups, and the whole-core panel — 21 COUNT
    // rectangles re-asked every cycle.
    let core = Rect::new(Point::new(-45.0, -125.0), Point::new(55.0, -45.0));
    let (tiles_x, tiles_y) = (4, 4);
    let (w, h) = (
        core.width() / tiles_x as f64,
        core.height() / tiles_y as f64,
    );
    let mut refresh: Vec<FraQuery> = Vec::new();
    for ty in 0..tiles_y {
        for tx in 0..tiles_x {
            let a = Point::new(core.min.x + tx as f64 * w, core.min.y + ty as f64 * h);
            refresh.push(FraQuery::rect(
                a,
                Point::new(a.x + w, a.y + h),
                AggFunc::Count,
            ));
        }
    }
    for qy in 0..2 {
        for qx in 0..2 {
            let a = Point::new(
                core.min.x + qx as f64 * 2.0 * w,
                core.min.y + qy as f64 * 2.0 * h,
            );
            refresh.push(FraQuery::rect(
                a,
                Point::new(a.x + 2.0 * w, a.y + 2.0 * h),
                AggFunc::Count,
            ));
        }
    }
    refresh.push(FraQuery::rect(core.min, core.max, AggFunc::Count));

    // -- uncached: every cycle pays the silo fan-out ------------------
    let exact = Exact::new();
    for q in &refresh {
        std::hint::black_box(exact.execute(&federation, q)); // warm pools
    }
    let started = Instant::now();
    let uncached_cycles = 5usize;
    for _ in 0..uncached_cycles {
        for q in &refresh {
            std::hint::black_box(exact.execute(&federation, q));
        }
    }
    let uncached_qps = (uncached_cycles * refresh.len()) as f64 / started.elapsed().as_secs_f64();
    println!("uncached   : {uncached_qps:>12.0} q/s");

    // -- cached: cold first cycle, then steady-state refreshes --------
    let cached = AnswerCache::with_policy(
        Exact::new(),
        CacheConfig::default(),
        CachePolicy {
            producer_epsilon: 0.0,
            containment: true,
        },
    );
    let obs = ObsContext::noop();
    let mut decomposed_cold = 0usize;
    let started = Instant::now();
    for q in &refresh {
        let answer = cached
            .try_execute_with_epsilon(&federation, q, EPSILON, obs)
            .expect("cold refresh failed");
        if answer.source == CacheSource::DecomposedHit {
            decomposed_cold += 1;
        }
    }
    let cold_qps = refresh.len() as f64 / started.elapsed().as_secs_f64();
    println!("cache cold : {cold_qps:>12.0} q/s ({decomposed_cold} roll-ups decomposed)");

    let started = Instant::now();
    for _ in 0..WARM_CYCLES {
        for q in &refresh {
            std::hint::black_box(
                cached
                    .try_execute_with_epsilon(&federation, q, EPSILON, obs)
                    .expect("warm refresh failed"),
            );
        }
    }
    let warm_qps = (WARM_CYCLES * refresh.len()) as f64 / started.elapsed().as_secs_f64();
    let stats = cached.stats();
    let warm_speedup = warm_qps / uncached_qps;
    println!(
        "cache warm : {warm_qps:>12.0} q/s ({:.1} % hit rate, {} exact / {} decomposed serves)",
        stats.hit_rate() * 100.0,
        stats.hits - stats.decomposed,
        stats.decomposed
    );
    println!("warm speedup over uncached: {warm_speedup:.0}x");

    // -- pyramid on/off on large circles ------------------------------
    // Big ranges are where the coarse levels pay: the planner serves
    // them from the provider pyramid with zero silo contact when the
    // computed bound fits the (relaxed, ε = 0.10) target.
    let mut generator = QueryGenerator::new(&all, 271);
    let circle_queries: Vec<FraQuery> = generator
        .circles(15.0, 64)
        .into_iter()
        .map(|r| FraQuery::new(r, AggFunc::Count))
        .collect();
    let policy_off = PlannerPolicy {
        target_error: 0.10,
        pyramid: false,
        ..PlannerPolicy::default()
    };
    let policy_on = PlannerPolicy {
        pyramid: true,
        ..policy_off
    };
    let run_planner = |policy: PlannerPolicy| -> (f64, fedra_obs::MetricsSnapshot) {
        let planner = AdaptivePlanner::new(77, policy);
        let obs = ObsContext::new();
        for q in &circle_queries {
            std::hint::black_box(
                planner
                    .try_execute_with(&federation, q, &obs)
                    .expect("planner query failed"),
            );
        }
        let started = Instant::now();
        for _ in 0..3 {
            for q in &circle_queries {
                std::hint::black_box(
                    planner
                        .try_execute_with(&federation, q, &obs)
                        .expect("planner query failed"),
                );
            }
        }
        let qps = (3 * circle_queries.len()) as f64 / started.elapsed().as_secs_f64();
        (qps, obs.snapshot())
    };
    let (off_qps, _) = run_planner(policy_off);
    let (on_qps, on_snapshot) = run_planner(policy_on);
    let mut level_histogram: Vec<(String, u64)> = on_snapshot
        .counters
        .iter()
        .filter(|(name, _)| name.starts_with("fedra_pyramid_level_total"))
        .map(|(name, value)| {
            let level = name
                .rsplit("level=\"")
                .next()
                .and_then(|s| s.strip_suffix("\"}"))
                .unwrap_or("?");
            (level.to_string(), *value)
        })
        .collect();
    level_histogram.sort();
    let pyramid_served: u64 = on_snapshot
        .counters
        .get("fedra_plan_decision_total{decision=\"pyramid_served\"}")
        .copied()
        .unwrap_or_else(|| level_histogram.iter().map(|(_, n)| n).sum());
    println!("pyramid off: {off_qps:>12.0} q/s");
    println!(
        "pyramid on : {on_qps:>12.0} q/s ({:.2}x, {} of {} served, levels {:?})",
        on_qps / off_qps,
        pyramid_served / 4, // warm-up + 3 timed passes
        circle_queries.len(),
        level_histogram
    );

    let levels_json = level_histogram
        .iter()
        .map(|(level, n)| format!("\"{level}\": {n}"))
        .collect::<Vec<_>>()
        .join(", ");
    let json = format!(
        "{{\n  \"bench\": \"ab_cache\",\n  \"host_cores\": {cores},\n  \"workload\": {{\"objects\": 120000, \"silos\": 6, \"tiles\": 16, \"rollups\": 5, \"epsilon\": {EPSILON}, \"warm_cycles\": {WARM_CYCLES}}},\n  \"variants\": [\n    {{\"name\": \"uncached\", \"qps\": {uncached_qps:.0}}},\n    {{\"name\": \"cache_cold\", \"qps\": {cold_qps:.0}, \"decomposed_rollups\": {decomposed_cold}}},\n    {{\"name\": \"cache_warm\", \"qps\": {warm_qps:.0}, \"hit_rate\": {hit_rate:.4}, \"serves\": {{\"exact\": {exact_serves}, \"decomposed\": {decomposed}}}}}\n  ],\n  \"warm_speedup\": {warm_speedup:.1},\n  \"pyramid\": {{\"radius_km\": 15, \"target_error\": 0.10, \"queries\": {nq}, \"off_qps\": {off_qps:.0}, \"on_qps\": {on_qps:.0}, \"speedup\": {pspeed:.2}, \"served_per_pass\": {served_per_pass}, \"level_histogram\": {{{levels_json}}}}},\n  \"note\": \"warm_speedup is cache-served vs silo fan-out on the repeated dashboard refresh; pyramid counters cover 1 warm-up + 3 timed passes\"\n}}\n",
        hit_rate = stats.hit_rate(),
        exact_serves = stats.hits - stats.decomposed,
        decomposed = stats.decomposed,
        nq = circle_queries.len(),
        pspeed = on_qps / off_qps,
        served_per_pass = pyramid_served / 4,
    );
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_cache.json");
    std::fs::write(path, json).expect("write BENCH_cache.json");
    println!("wrote {path}");

    assert!(
        warm_speedup >= 3.0,
        "warm cache must be >= 3x uncached, got {warm_speedup:.1}x"
    );
}
