//! Shared harness for the paper-reproduction experiments.
//!
//! Every `fig*_*` bench target builds on the same recipe:
//!
//! 1. take a [`ParamPoint`] from the Tab. 2 sweep ([`SweepConfig`]),
//! 2. generate the workload and stand up a federation,
//! 3. run the same `nQ`-query batch through all six algorithms,
//! 4. record the paper's four metrics — MRE, total running time,
//!    total communication cost, and index memory,
//! 5. print one table per metric (the series of the corresponding figure)
//!    and append machine-readable rows to `crates/bench/results/<figure>.csv`.
//!
//! Scale is governed by `FEDRA_SCALE` (default 0.2 → 600 k objects at the
//! default point; set 1.0 for the paper's 3 × 10⁶).

#![forbid(unsafe_code)]
#![deny(missing_docs)]

use std::io::Write as _;
use std::time::{Duration, Instant};

use fedra_core::{
    AccuracyParams, Exact, FraAlgorithm, FraQuery, IidEst, IidEstLsr, NonIidEst, NonIidEstLsr,
    Opta, QueryEngine,
};
use fedra_federation::{Federation, FederationBuilder};
use fedra_index::AggFunc;
use fedra_workload::{ParamPoint, QueryGenerator, WorkloadSpec};

pub use fedra_workload::SweepConfig;

/// The six compared algorithms, in the paper's legend order.
pub const ALGORITHM_NAMES: [&str; 6] = [
    "EXACT",
    "OPTA",
    "IID-est",
    "IID-est+LSR",
    "NonIID-est",
    "NonIID-est+LSR",
];

/// One algorithm's measurements at one sweep point.
#[derive(Debug, Clone)]
pub struct AlgoMetrics {
    /// Algorithm display name.
    pub name: &'static str,
    /// Mean relative error over the batch, in percent.
    pub mre_percent: f64,
    /// Total running time for the batch, in milliseconds.
    pub time_ms: f64,
    /// Total communication cost for the batch, in kilobytes.
    pub comm_kb: f64,
    /// Index memory attributable to this algorithm, in megabytes.
    pub memory_mb: f64,
    /// Batch throughput, queries per second.
    pub throughput_qps: f64,
}

/// One sweep point's results: the x-axis value plus per-algorithm metrics.
#[derive(Debug, Clone)]
pub struct PointResult {
    /// Human-readable x-axis value ("1.5", "600000", …).
    pub x: String,
    /// Metrics for each algorithm, in [`ALGORITHM_NAMES`] order.
    pub algos: Vec<AlgoMetrics>,
}

/// A standing federation plus the raw objects (for query anchoring).
///
/// Sweeps that do not change the data or the grid (radius, nQ, ε, δ)
/// reuse one testbed across points; the others rebuild per point.
pub struct Testbed {
    /// The running federation.
    pub federation: Federation,
    /// Every object, flattened (query centers are drawn from these).
    pub all_objects: Vec<fedra_geo::SpatialObject>,
}

/// Builds the workload and federation for a sweep point.
pub fn build_testbed(point: &ParamPoint, seed: u64) -> Testbed {
    let spec = WorkloadSpec::default()
        .with_total_objects(point.data_size)
        .with_silos(point.num_silos)
        .with_seed(seed);
    let dataset = spec.generate();
    let all_objects = dataset.all_objects();
    let bounds = dataset.bounds();
    let federation = FederationBuilder::new(bounds)
        .grid_cell_len(point.grid_len_km)
        .lsr_seed(seed ^ 0x15AF)
        .build(dataset.into_partitions());
    Testbed {
        federation,
        all_objects,
    }
}

/// Builds the federation and query batch for a sweep point and runs all
/// six algorithms over it.
pub fn run_point(point: &ParamPoint, seed: u64) -> PointResult {
    let testbed = build_testbed(point, seed);
    run_algorithms(&testbed, point, seed)
}

/// Runs the six-algorithm comparison on an existing testbed.
pub fn run_algorithms(testbed: &Testbed, point: &ParamPoint, seed: u64) -> PointResult {
    let federation = &testbed.federation;
    let mut generator = QueryGenerator::new(&testbed.all_objects, seed ^ 0x9E37);
    let queries: Vec<FraQuery> = generator
        .circles(point.radius_km, point.num_queries)
        .into_iter()
        .map(|range| FraQuery::new(range, AggFunc::Count))
        .collect();

    // Ground truth once per point.
    let exact_alg = Exact::new();
    let exact_values: Vec<f64> = {
        let engine = QueryEngine::per_silo(&exact_alg, federation);
        let batch = engine.execute_batch(federation, &queries);
        batch
            .results
            .iter()
            .map(|r| r.as_ref().expect("exact query").value)
            .collect()
    };

    let params = AccuracyParams::new(point.epsilon, point.delta);
    let algorithms: Vec<Box<dyn FraAlgorithm>> = vec![
        Box::new(Exact::new()),
        Box::new(Opta::new()),
        Box::new(IidEst::new(seed ^ 0x11)),
        Box::new(IidEstLsr::new(seed ^ 0x22, params)),
        Box::new(NonIidEst::new(seed ^ 0x33)),
        Box::new(NonIidEstLsr::new(seed ^ 0x44, params)),
    ];

    let algos = algorithms
        .iter()
        .map(|alg| measure_algorithm(alg.as_ref(), federation, &queries, &exact_values))
        .collect();

    PointResult {
        x: String::new(),
        algos,
    }
}

/// Runs one algorithm over the batch and collects the four paper metrics.
pub fn measure_algorithm(
    algorithm: &dyn FraAlgorithm,
    federation: &Federation,
    queries: &[FraQuery],
    exact_values: &[f64],
) -> AlgoMetrics {
    // BatchResult.comm is a delta around the batch — no reset needed.
    let engine = QueryEngine::per_silo(algorithm, federation);
    let batch = engine.execute_batch(federation, queries);
    AlgoMetrics {
        name: leak_name(algorithm.name()),
        mre_percent: batch.mean_relative_error(exact_values) * 100.0,
        time_ms: batch.wall_time.as_secs_f64() * 1e3,
        comm_kb: batch.comm.total_bytes() as f64 / 1024.0,
        memory_mb: algorithm_memory_bytes(algorithm.name(), federation) as f64 / (1024.0 * 1024.0),
        throughput_qps: batch.throughput_qps,
    }
}

fn leak_name(name: &str) -> &'static str {
    ALGORITHM_NAMES
        .iter()
        .find(|n| **n == name)
        .copied()
        .unwrap_or("?")
}

/// Index memory attributable to an algorithm (Figs. 3d–9d): each algorithm
/// only pays for the indexes it actually uses.
///
/// * EXACT — silo aggregate R-trees;
/// * OPTA — silo histograms;
/// * IID-est / NonIID-est — silo R-trees + the provider's grid machinery
///   (per-silo grids, `g₀`, cumulative arrays) + silo grids;
/// * +LSR variants — additionally the LSR-Forest's extra levels.
pub fn algorithm_memory_bytes(name: &str, federation: &Federation) -> u64 {
    let reports = federation.silo_memory_reports();
    let rtrees: u64 = reports.iter().map(|r| r.rtree).sum();
    let lsr_extra: u64 = reports.iter().map(|r| r.lsr_extra).sum();
    let silo_grids: u64 = reports.iter().map(|r| r.grid).sum();
    let histograms: u64 = reports.iter().map(|r| r.histogram).sum();
    let provider = federation.provider_memory_bytes();
    match name {
        "EXACT" => rtrees,
        "OPTA" => histograms,
        "IID-est" | "NonIID-est" => rtrees + silo_grids + provider,
        "IID-est+LSR" | "NonIID-est+LSR" => rtrees + lsr_extra + silo_grids + provider,
        _ => rtrees + lsr_extra + silo_grids + histograms + provider,
    }
}

/// Extracts one metric from an [`AlgoMetrics`] row.
pub type MetricFn = fn(&AlgoMetrics) -> f64;

/// The four figure panels, in the paper's (a)–(d) order.
pub const METRICS: [(&str, MetricFn); 4] = [
    ("MRE (%)", |m| m.mre_percent),
    ("running time (ms)", |m| m.time_ms),
    ("communication (KB)", |m| m.comm_kb),
    ("index memory (MB)", |m| m.memory_mb),
];

/// Prints the four metric tables for one figure and writes the CSV.
pub fn report(figure: &str, title: &str, x_label: &str, points: &[PointResult]) {
    println!();
    println!("=== {figure}: {title} ===");
    for (metric_name, extract) in METRICS {
        println!();
        println!(
            "--- {figure}{}: {metric_name} ---",
            panel_letter(metric_name)
        );
        print!("{x_label:>10}");
        for name in ALGORITHM_NAMES {
            print!("  {name:>14}");
        }
        println!();
        for p in points {
            print!("{:>10}", p.x);
            for m in &p.algos {
                let v = extract(m);
                // MRE for EXACT is identically 0; show it plainly.
                print!("  {v:>14.3}");
            }
            println!();
        }
    }
    write_csv(figure, x_label, points);
    println!();
}

fn panel_letter(metric: &str) -> &'static str {
    match metric {
        "MRE (%)" => "a",
        "running time (ms)" => "b",
        "communication (KB)" => "c",
        _ => "d",
    }
}

/// Appends machine-readable rows under `crates/bench/results/<figure>.csv`.
pub fn write_csv(figure: &str, x_label: &str, points: &[PointResult]) {
    let dir = std::path::Path::new("results");
    if std::fs::create_dir_all(dir).is_err() {
        return;
    }
    let path = dir.join(format!("{figure}.csv"));
    let Ok(mut f) = std::fs::File::create(&path) else {
        return;
    };
    let _ = writeln!(
        f,
        "{x_label},algorithm,mre_percent,time_ms,comm_kb,memory_mb,throughput_qps"
    );
    for p in points {
        for m in &p.algos {
            let _ = writeln!(
                f,
                "{},{},{:.6},{:.3},{:.3},{:.3},{:.3}",
                p.x, m.name, m.mre_percent, m.time_ms, m.comm_kb, m.memory_mb, m.throughput_qps
            );
        }
    }
    println!("[csv] wrote {}", path.display());
}

/// Stopwatch helper for bench mains.
pub fn timed<T>(label: &str, f: impl FnOnce() -> T) -> T {
    let start = Instant::now();
    let out = f();
    eprintln!("[time] {label}: {:?}", start.elapsed());
    out
}

/// Pretty `Duration` for logs.
pub fn human(duration: Duration) -> String {
    format!("{:.2}s", duration.as_secs_f64())
}
