//! Transport microbenchmarks: singleton RPCs vs the coalesced batch
//! frame at growing batch sizes.
//!
//! A batch of `n` same-silo requests shares one wire envelope per
//! direction, so the per-request cost should fall as `n` grows; the
//! `call/…` vs `call_batch/…` pairs below make that amortization (and the
//! allocation-free reply-channel pool) directly measurable.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

use fedra_core::{Exact, FraAlgorithm, FraQuery, IidEst, QueryEngine};
use fedra_federation::{FederationBuilder, LocalMode, Request};
use fedra_geo::Point;
use fedra_index::AggFunc;
use fedra_workload::{QueryGenerator, WorkloadSpec};

const BATCH_SIZES: [usize; 3] = [1, 8, 64];

fn bench_transport(c: &mut Criterion) {
    let spec = WorkloadSpec::default()
        .with_total_objects(60_000)
        .with_silos(4)
        .with_seed(31);
    let dataset = spec.generate();
    let fed = FederationBuilder::new(dataset.bounds())
        .grid_cell_len(1.0)
        .build(dataset.into_partitions());
    let request = Request::Aggregate {
        range: fedra_geo::Range::circle(Point::new(0.0, 0.0), 2.0),
        mode: LocalMode::Exact,
    };
    let channel = fed.channel(0);

    let mut group = c.benchmark_group("transport");
    group.sample_size(30);
    for n in BATCH_SIZES {
        // n sequential singleton RPCs: n envelopes per direction.
        group.bench_with_input(BenchmarkId::new("call", n), &n, |b, &n| {
            b.iter(|| {
                for _ in 0..n {
                    black_box(channel.call(&request).expect("call"));
                }
            })
        });
        // One coalesced frame carrying n requests: 1 envelope per direction.
        let batch: Vec<Request> = (0..n).map(|_| request.clone()).collect();
        group.bench_with_input(BenchmarkId::new("call_batch", n), &batch, |b, batch| {
            b.iter(|| black_box(channel.call_batch(batch).expect("batch")))
        });
    }
    group.finish();
}

fn bench_engine_paths(c: &mut Criterion) {
    let spec = WorkloadSpec::default()
        .with_total_objects(60_000)
        .with_silos(4)
        .with_seed(32);
    let dataset = spec.generate();
    let all = dataset.all_objects();
    let fed = FederationBuilder::new(dataset.bounds())
        .grid_cell_len(1.0)
        .build(dataset.into_partitions());
    let mut generator = QueryGenerator::new(&all, 33);
    let queries: Vec<FraQuery> = generator
        .circles(2.0, 64)
        .iter()
        .map(|r| FraQuery::new(*r, AggFunc::Count))
        .collect();

    let mut group = c.benchmark_group("engine_batch64_m4");
    group.sample_size(15);
    let iid = IidEst::new(34);
    let engine = QueryEngine::per_silo(&iid, &fed);
    group.bench_function("IID-est/coalesced", |b| {
        b.iter(|| black_box(engine.execute_batch(&fed, &queries).failures()))
    });
    group.bench_function("IID-est/singleton", |b| {
        b.iter(|| black_box(engine.execute_batch_singleton(&fed, &queries).failures()))
    });
    let exact = Exact::new();
    let exact_engine = QueryEngine::per_silo(&exact, &fed);
    group.bench_function("EXACT/broadcast", |b| {
        b.iter(|| black_box(exact_engine.execute_batch(&fed, &queries).failures()))
    });
    group.finish();

    // Context line so the numbers above can be read as comm too.
    fed.reset_query_comm();
    engine.execute_batch(&fed, &queries);
    let coalesced = fed.query_comm();
    fed.reset_query_comm();
    engine.execute_batch_singleton(&fed, &queries);
    let singleton = fed.query_comm();
    println!(
        "engine_batch64_m4/comm: coalesced {} B / {} rounds vs singleton {} B / {} rounds",
        coalesced.total_bytes(),
        coalesced.rounds,
        singleton.total_bytes(),
        singleton.rounds
    );
    let _ = exact.name();
}

criterion_group!(benches, bench_transport, bench_engine_paths);
criterion_main!(benches);
