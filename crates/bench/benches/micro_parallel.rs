//! Criterion microbenchmarks of the silo worker pool: index builds and
//! grid merges at pool sizes 1 / 2 / auto. Companion to the end-to-end
//! `ab_parallel` example — these isolate the three parallelized hot
//! paths (STR bulk load, grid sharding, provider-side merge) from the
//! rest of the federation so per-path scaling is visible on its own.
//! The outputs are bit-identical across pool sizes (pinned by
//! `tests/parallel_equivalence.rs`); only the wall-clock may move.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

use fedra_geo::{Point, Rect, SpatialObject};
use fedra_index::grid::{GridIndex, GridSpec};
use fedra_index::pool::WorkerPool;
use fedra_index::rtree::{RTree, RTreeConfig};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn objects(n: usize, seed: u64) -> Vec<SpatialObject> {
    let mut rng = StdRng::seed_from_u64(seed);
    (0..n)
        .map(|_| {
            SpatialObject::at(
                rng.random_range(0.0..100.0),
                rng.random_range(0.0..100.0),
                rng.random_range(0.0..5.0),
            )
        })
        .collect()
}

fn pools() -> Vec<(String, WorkerPool)> {
    vec![
        ("1".into(), WorkerPool::sequential()),
        ("2".into(), WorkerPool::new(2)),
        (
            format!("auto({})", WorkerPool::auto().threads()),
            WorkerPool::auto(),
        ),
    ]
}

fn bench_parallel_builds(c: &mut Criterion) {
    let mut group = c.benchmark_group("parallel_build");
    group.sample_size(10);
    let objs = objects(100_000, 1);
    let spec = GridSpec::new(
        Rect::new(Point::new(0.0, 0.0), Point::new(100.0, 100.0)),
        1.0,
    );
    for (label, pool) in pools() {
        group.bench_with_input(BenchmarkId::new("rtree", &label), &pool, |b, pool| {
            b.iter(|| RTree::bulk_load_with(objs.clone(), RTreeConfig::default(), pool))
        });
        group.bench_with_input(BenchmarkId::new("grid", &label), &pool, |b, pool| {
            b.iter(|| GridIndex::build_with(spec, &objs, pool))
        });
    }
    group.finish();
}

fn bench_parallel_merge(c: &mut Criterion) {
    let mut group = c.benchmark_group("parallel_merge");
    group.sample_size(20);
    let spec = GridSpec::new(
        Rect::new(Point::new(0.0, 0.0), Point::new(100.0, 100.0)),
        0.25, // 160k cells: the provider-side merge regime
    );
    let grids: Vec<GridIndex> = (0..6)
        .map(|k| GridIndex::build_with(spec, &objects(20_000, k), &WorkerPool::sequential()))
        .collect();
    let refs: Vec<&GridIndex> = grids.iter().collect();
    for (label, pool) in pools() {
        group.bench_with_input(BenchmarkId::new("merge6", &label), &pool, |b, pool| {
            b.iter(|| black_box(GridIndex::merge_with(&refs, pool)))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_parallel_builds, bench_parallel_merge);
criterion_main!(benches);
