//! Criterion microbenchmarks of the index substrate: build times and
//! local range-aggregation latency for the aggregate R-tree, the
//! LSR-Forest (per level), the grid/cumulative array, and the MinSkew
//! histogram. These are the per-operation numbers behind Figs. 3b–9b.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

use fedra_geo::{Point, Range, Rect, SpatialObject};
use fedra_index::grid::{GridIndex, GridSpec, PrefixGrid};
use fedra_index::histogram::{MinSkewConfig, MinSkewHistogram};
use fedra_index::lsr::LsrForest;
use fedra_index::quadtree::{QuadTree, QuadTreeConfig};
use fedra_index::rtree::{RTree, RTreeConfig};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn objects(n: usize, seed: u64) -> Vec<SpatialObject> {
    let mut rng = StdRng::seed_from_u64(seed);
    (0..n)
        .map(|_| {
            SpatialObject::at(
                rng.random_range(0.0..100.0),
                rng.random_range(0.0..100.0),
                rng.random_range(0.0..5.0),
            )
        })
        .collect()
}

fn bench_builds(c: &mut Criterion) {
    let mut group = c.benchmark_group("index_build");
    group.sample_size(10);
    for n in [10_000usize, 100_000] {
        let objs = objects(n, 1);
        group.bench_with_input(BenchmarkId::new("rtree", n), &objs, |b, objs| {
            b.iter(|| RTree::bulk_load(objs.clone(), RTreeConfig::default()))
        });
        group.bench_with_input(BenchmarkId::new("lsr_forest", n), &objs, |b, objs| {
            b.iter(|| {
                let mut rng = StdRng::seed_from_u64(2);
                LsrForest::build(objs, RTreeConfig::default(), &mut rng)
            })
        });
        group.bench_with_input(BenchmarkId::new("grid", n), &objs, |b, objs| {
            let spec = GridSpec::new(
                Rect::new(Point::new(0.0, 0.0), Point::new(100.0, 100.0)),
                1.0,
            );
            b.iter(|| GridIndex::build(spec, objs))
        });
        group.bench_with_input(BenchmarkId::new("minskew", n), &objs, |b, objs| {
            let bounds = Rect::new(Point::new(0.0, 0.0), Point::new(100.0, 100.0));
            b.iter(|| MinSkewHistogram::build(bounds, MinSkewConfig::default(), objs))
        });
        group.bench_with_input(BenchmarkId::new("quadtree", n), &objs, |b, objs| {
            let bounds = Rect::new(Point::new(0.0, 0.0), Point::new(100.0, 100.0));
            b.iter(|| QuadTree::build(bounds, objs.clone(), QuadTreeConfig::default()))
        });
    }
    group.finish();
}

fn bench_local_queries(c: &mut Criterion) {
    let n = 200_000;
    let objs = objects(n, 3);
    let bounds = Rect::new(Point::new(0.0, 0.0), Point::new(100.0, 100.0));
    let rtree = RTree::bulk_load(objs.clone(), RTreeConfig::default());
    let mut rng = StdRng::seed_from_u64(4);
    let lsr = LsrForest::build(&objs, RTreeConfig::default(), &mut rng);
    let grid = GridIndex::build(GridSpec::new(bounds, 1.0), &objs);
    let prefix = PrefixGrid::build(&grid);
    let hist = MinSkewHistogram::build(bounds, MinSkewConfig::default(), &objs);
    let quad = QuadTree::build(bounds, objs.clone(), QuadTreeConfig::default());

    let queries: Vec<Range> = (0..64)
        .map(|i| {
            Range::circle(
                Point::new(
                    10.0 + (i as f64 * 1.3) % 80.0,
                    10.0 + (i as f64 * 2.7) % 80.0,
                ),
                5.0,
            )
        })
        .collect();

    let mut group = c.benchmark_group("local_query_200k");
    group.bench_function("rtree_exact", |b| {
        b.iter(|| {
            for q in &queries {
                black_box(rtree.aggregate(q));
            }
        })
    });
    for (label, eps) in [
        ("lsr_eps_0.05", 0.05),
        ("lsr_eps_0.1", 0.1),
        ("lsr_eps_0.25", 0.25),
    ] {
        group.bench_function(label, |b| {
            b.iter(|| {
                for q in &queries {
                    let sum0 = prefix.aggregate_intersecting(q).count;
                    black_box(lsr.query(q, eps, 0.01, sum0));
                }
            })
        });
    }
    group.bench_function("grid_naive", |b| {
        b.iter(|| {
            for q in &queries {
                black_box(grid.aggregate_intersecting(q));
            }
        })
    });
    group.bench_function("grid_prefix", |b| {
        b.iter(|| {
            for q in &queries {
                black_box(prefix.aggregate_intersecting(q));
            }
        })
    });
    group.bench_function("minskew_estimate", |b| {
        b.iter(|| {
            for q in &queries {
                black_box(hist.estimate(q));
            }
        })
    });
    group.bench_function("quadtree_exact", |b| {
        b.iter(|| {
            for q in &queries {
                black_box(quad.aggregate(q));
            }
        })
    });
    group.finish();
}

fn bench_rtree_fanout(c: &mut Criterion) {
    let objs = objects(100_000, 5);
    let queries: Vec<Range> = (0..32)
        .map(|i| {
            Range::circle(
                Point::new((i as f64 * 3.1) % 100.0, (i as f64 * 7.7) % 100.0),
                5.0,
            )
        })
        .collect();
    let mut group = c.benchmark_group("rtree_fanout");
    group.sample_size(20);
    for fanout in [4usize, 8, 16, 32, 64] {
        let tree = RTree::bulk_load(objs.clone(), RTreeConfig::with_fanout(fanout));
        group.bench_with_input(BenchmarkId::from_parameter(fanout), &tree, |b, tree| {
            b.iter(|| {
                for q in &queries {
                    black_box(tree.aggregate(q));
                }
            })
        });
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_builds,
    bench_local_queries,
    bench_rtree_fanout
);
criterion_main!(benches);
