//! Fig. 4 — impact of the number of data silos `m` (3–15). Each point
//! re-partitions the same total data volume across a different silo
//! count, so the federation is rebuilt per point.

use fedra_bench::{report, run_point, SweepConfig};

fn main() {
    let config = SweepConfig::from_env();
    let mut points = Vec::new();
    for (i, p) in config.sweep_silos().iter().enumerate() {
        eprintln!("[fig4] m = {} ...", p.num_silos);
        let mut r = fedra_bench::timed("point", || run_point(p, 2_000 + i as u64));
        r.x = format!("{}", p.num_silos);
        points.push(r);
    }
    report(
        "fig4",
        "Impact of the number of data silos m (COUNT)",
        "m",
        &points,
    );
}
