//! The paper's headline claims, measured at the Tab. 2 default point:
//!
//! 1. approximate algorithms cut per-query time vs EXACT (paper: up to
//!    85.1× for IID-est+LSR);
//! 2. they cut communication cost (paper: up to 5.5×);
//! 3. the accurate variants keep average error below ~2.8 % (NonIID) /
//!    ~5.3 % (IID);
//! 4. the single-silo algorithms sustain > 250 queries/second.
//!
//! Absolute ratios differ from the paper (Rust vs Python, one machine vs
//! a cluster); the *direction and ordering* are the reproduction target.

use fedra_bench::{build_testbed, run_algorithms, SweepConfig, ALGORITHM_NAMES};

fn main() {
    let config = SweepConfig::from_env();
    let testbed = fedra_bench::timed("build testbed", || build_testbed(&config.defaults, 47));
    let point = config.defaults;
    let result = run_algorithms(&testbed, &point, 8_000);

    let get = |name: &str| {
        result
            .algos
            .iter()
            .find(|m| m.name == name)
            .unwrap_or_else(|| panic!("missing {name}"))
    };
    let exact = get("EXACT");

    println!();
    println!(
        "=== Headline claims at the default point (|P|={}, m={}, r={} km, nQ={}) ===",
        point.data_size, point.num_silos, point.radius_km, point.num_queries
    );
    println!();
    println!(
        "{:>16} {:>10} {:>12} {:>12} {:>10} {:>12} {:>12}",
        "algorithm", "MRE (%)", "time (ms)", "speedup", "qps", "comm (KB)", "comm ratio"
    );
    for name in ALGORITHM_NAMES {
        let m = get(name);
        println!(
            "{:>16} {:>10.3} {:>12.2} {:>11.1}x {:>10.1} {:>12.1} {:>11.1}x",
            m.name,
            m.mre_percent,
            m.time_ms,
            exact.time_ms / m.time_ms,
            m.throughput_qps,
            m.comm_kb,
            exact.comm_kb / m.comm_kb,
        );
    }
    println!();
    let iid_lsr = get("IID-est+LSR");
    let noniid = get("NonIID-est");
    let noniid_lsr = get("NonIID-est+LSR");
    let opta = get("OPTA");
    println!("claim checks (paper direction):");
    println!(
        "  [{}] IID-est+LSR is the fastest approximate algorithm (speedup {:.1}x vs EXACT)",
        ok(iid_lsr.time_ms < exact.time_ms),
        exact.time_ms / iid_lsr.time_ms
    );
    println!(
        "  [{}] NonIID-est MRE ({:.2} %) below OPTA MRE ({:.2} %)",
        ok(noniid.mre_percent < opta.mre_percent),
        noniid.mre_percent,
        opta.mre_percent
    );
    println!(
        "  [{}] LSR adds < 1.5 percentage points of MRE over NonIID-est ({:.2} vs {:.2})",
        ok(noniid_lsr.mre_percent - noniid.mre_percent < 1.5),
        noniid_lsr.mre_percent,
        noniid.mre_percent
    );
    println!(
        "  [{}] single-silo comm below EXACT comm ({:.1} KB vs {:.1} KB)",
        ok(noniid_lsr.comm_kb < exact.comm_kb),
        noniid_lsr.comm_kb,
        exact.comm_kb
    );
    println!(
        "  [{}] IID-est+LSR throughput above 250 q/s ({:.0} q/s)",
        ok(iid_lsr.throughput_qps > 250.0),
        iid_lsr.throughput_qps
    );
}

fn ok(b: bool) -> &'static str {
    if b {
        "ok"
    } else {
        "MISS"
    }
}
