//! Fig. 3 — impact of the query radius `r` (1–3 km) on MRE, running time,
//! communication cost and index memory, all other parameters at the
//! Tab. 2 defaults. The dataset and federation are shared across points
//! (only the queries change).

use fedra_bench::{build_testbed, report, run_algorithms, SweepConfig};

fn main() {
    let config = SweepConfig::from_env();
    let testbed = fedra_bench::timed("build testbed", || build_testbed(&config.defaults, 42));
    let mut points = Vec::new();
    for (i, p) in config.sweep_radius().iter().enumerate() {
        eprintln!("[fig3] r = {} km ...", p.radius_km);
        let mut r = run_algorithms(&testbed, p, 1_000 + i as u64);
        r.x = format!("{}", p.radius_km);
        points.push(r);
    }
    report("fig3", "Impact of radius r (COUNT)", "r (km)", &points);
}
