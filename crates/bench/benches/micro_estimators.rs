//! Criterion microbenchmarks of the end-to-end estimators: per-query
//! latency of the six algorithms on a standing federation, plus the wire
//! codec throughput.

// Pinned to the legacy `CachedAlgorithm` alias on purpose: the bench
// doubles as a compile check that the deprecated API still works.
#![allow(deprecated)]

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

use fedra_core::{
    AccuracyParams, AdaptivePlanner, CachedAlgorithm, Exact, ExactSequential, FraAlgorithm,
    FraQuery, IidEst, IidEstLsr, MultiSiloEst, NonIidEst, NonIidEstLsr, Opta, PlannerPolicy,
};
use fedra_federation::wire::Wire;
use fedra_federation::{FederationBuilder, Request};
use fedra_geo::{Point, Range, SpatialObject};
use fedra_index::AggFunc;
use fedra_workload::{QueryGenerator, WorkloadSpec};

fn bench_algorithms(c: &mut Criterion) {
    let spec = WorkloadSpec::default()
        .with_total_objects(120_000)
        .with_silos(6)
        .with_seed(7);
    let dataset = spec.generate();
    let all = dataset.all_objects();
    let fed = FederationBuilder::new(dataset.bounds())
        .grid_cell_len(1.0)
        .build(dataset.into_partitions());
    let mut generator = QueryGenerator::new(&all, 8);
    let ranges = generator.circles(2.0, 32);
    let queries: Vec<FraQuery> = ranges
        .iter()
        .map(|r| FraQuery::new(*r, AggFunc::Count))
        .collect();

    let params = AccuracyParams::default();
    let algorithms: Vec<Box<dyn FraAlgorithm>> = vec![
        Box::new(Exact::new()),
        Box::new(ExactSequential::new()),
        Box::new(Opta::new()),
        Box::new(IidEst::new(9)),
        Box::new(IidEstLsr::new(10, params)),
        Box::new(NonIidEst::new(11)),
        Box::new(NonIidEstLsr::new(12, params)),
        Box::new(MultiSiloEst::new(13, 3)),
        Box::new(AdaptivePlanner::new(14, PlannerPolicy::default())),
    ];
    let mut group = c.benchmark_group("fra_query_120k_m6");
    group.sample_size(20);
    for alg in &algorithms {
        let label = if matches!(alg.name(), "EXACT-seq") {
            "EXACT-seq"
        } else {
            alg.name()
        };
        group.bench_function(label, |b| {
            let mut i = 0usize;
            b.iter(|| {
                let q = &queries[i % queries.len()];
                i += 1;
                black_box(alg.execute(&fed, q));
            })
        });
    }
    // The cached wrapper on a hot-station loop (repetition-heavy).
    let cached = CachedAlgorithm::with_defaults(NonIidEst::new(15));
    group.bench_function("NonIID-est cached (hot)", |b| {
        let mut i = 0usize;
        b.iter(|| {
            let q = &queries[i % 4]; // 4 hot stations
            i += 1;
            black_box(cached.execute(&fed, q));
        })
    });
    group.finish();
}

fn bench_codec(c: &mut Criterion) {
    let mut group = c.benchmark_group("wire_codec");
    let request = Request::CellContributions {
        range: Range::circle(Point::new(0.0, 0.0), 2.0),
        cells: (0..64).collect(),
        mode: fedra_federation::LocalMode::Exact,
    };
    group.bench_function("encode_cell_request", |b| {
        b.iter(|| black_box(request.to_bytes()))
    });
    let bytes = request.to_bytes();
    group.bench_function("decode_cell_request", |b| {
        b.iter(|| black_box(Request::from_bytes(bytes.clone()).unwrap()))
    });
    let objs: Vec<SpatialObject> = (0..100)
        .map(|i| SpatialObject::at(i as f64, i as f64, 1.0))
        .collect();
    group.bench_function("aggregate_of_100", |b| {
        b.iter(|| black_box(fedra_index::Aggregate::of_all(&objs)))
    });
    group.finish();
}

criterion_group!(benches, bench_algorithms, bench_codec);
criterion_main!(benches);
