//! Observability overhead guard on `micro_transport`'s IID-est workload.
//!
//! The instrumented execution API promises that callers who pass
//! [`ObsContext::noop`] (which `execute_batch` does) pay only a disabled
//! branch per recording site. This bench holds that promise to a number:
//! the disabled path must stay within noise (≤ 3 %) of an uninstrumented
//! engine. Since the pre-observability engine no longer exists in-tree,
//! the guard bounds the overhead two independent ways:
//!
//! 1. **model** — time the disabled recording primitives directly
//!    (counter inc, histogram observe, trace start/span/finish) and
//!    multiply by a generous per-query site count; that product must be
//!    ≤ 3 % of the measured per-query batch time;
//! 2. **A/B** — the disabled path must not be slower than the *enabled*
//!    path beyond the same 3 % band (the enabled path does strictly more
//!    work, so this catches any accidental cost on the noop branch).
//!
//! Medians over interleaved rounds keep both checks stable on shared
//! machines. The enabled-path overhead is printed for context.

use std::hint::black_box;
use std::time::Instant;

use fedra_core::{FraAlgorithm, FraQuery, IidEst, QueryEngine};
use fedra_federation::FederationBuilder;
use fedra_index::AggFunc;
use fedra_obs::{ObsContext, Span};
use fedra_workload::{QueryGenerator, WorkloadSpec};

/// Interleaved A/B rounds (odd, so the median is a single sample).
const ROUNDS: usize = 21;
/// The acceptance bound: disabled-path overhead within noise.
const MAX_OVERHEAD: f64 = 0.03;
/// Disabled recording bundles modelled per query. One bundle is five
/// noop calls (inc + observe + start_trace + span + finish_trace); the
/// real planned path touches roughly a dozen sites per query, so four
/// bundles (twenty calls) over-counts it comfortably.
const BUNDLES_PER_QUERY: f64 = 4.0;

fn median(mut xs: Vec<f64>) -> f64 {
    xs.sort_by(|a, b| a.partial_cmp(b).expect("finite timings"));
    xs[xs.len() / 2]
}

fn main() {
    // The exact `engine_batch64_m4` workload from micro_transport.
    let spec = WorkloadSpec::default()
        .with_total_objects(60_000)
        .with_silos(4)
        .with_seed(32);
    let dataset = spec.generate();
    let all = dataset.all_objects();
    let fed = FederationBuilder::new(dataset.bounds())
        .grid_cell_len(1.0)
        .build(dataset.into_partitions());
    let mut generator = QueryGenerator::new(&all, 33);
    let queries: Vec<FraQuery> = generator
        .circles(2.0, 64)
        .iter()
        .map(|r| FraQuery::new(*r, AggFunc::Count))
        .collect();

    let iid = IidEst::new(34);
    let engine = QueryEngine::per_silo(&iid, &fed);

    // Warm caches and the silo worker pools before timing anything.
    for _ in 0..3 {
        black_box(engine.execute_batch(&fed, &queries).failures());
    }

    let mut noop_ns = Vec::with_capacity(ROUNDS);
    let mut enabled_ns = Vec::with_capacity(ROUNDS);
    for _ in 0..ROUNDS {
        let start = Instant::now();
        black_box(engine.execute_batch(&fed, &queries).failures());
        noop_ns.push(start.elapsed().as_nanos() as f64);

        let obs = ObsContext::new();
        let start = Instant::now();
        black_box(engine.execute_batch_with(&fed, &queries, &obs).failures());
        enabled_ns.push(start.elapsed().as_nanos() as f64);
    }
    let noop = median(noop_ns);
    let enabled = median(enabled_ns);
    let per_query_ns = noop / queries.len() as f64;

    // Direct cost of the disabled recording primitives. Real call sites
    // pass constant metric names, so the names stay constant here too;
    // black-boxing the handle each round keeps the enabled-check load
    // (and thus the loop) alive without charging artificial costs.
    const CALLS: u64 = 1_000_000;
    let noop_obs = ObsContext::noop();
    let start = Instant::now();
    for i in 0..CALLS {
        let obs = black_box(noop_obs);
        obs.inc("fedra_guard_total");
        obs.observe("fedra_guard_ns", black_box(i));
        let trace = obs.start_trace("bench", "guard");
        let span = Span::enter(&trace, "noop");
        drop(span);
        obs.finish_trace(&trace);
    }
    let bundle_ns = start.elapsed().as_nanos() as f64 / CALLS as f64;
    let modeled_frac = BUNDLES_PER_QUERY * bundle_ns / per_query_ns;
    let ab_ratio = noop / enabled;

    println!(
        "micro_obs: IID-est batch of {} queries, m = 4, medians over {} interleaved rounds",
        queries.len(),
        ROUNDS
    );
    println!(
        "  disabled path {:>10.0} ns/batch ({:.0} ns/query)",
        noop, per_query_ns
    );
    println!(
        "  enabled path  {:>10.0} ns/batch (+{:.2} % instrumentation cost)",
        enabled,
        (enabled / noop - 1.0) * 100.0
    );
    println!(
        "  noop recording bundle: {:.2} ns → modelled disabled overhead {:.4} % of a query",
        bundle_ns,
        modeled_frac * 100.0
    );

    assert!(
        modeled_frac <= MAX_OVERHEAD,
        "disabled recording sites cost {:.2} % of a query (> {:.0} % budget)",
        modeled_frac * 100.0,
        MAX_OVERHEAD * 100.0
    );
    assert!(
        ab_ratio <= 1.0 + MAX_OVERHEAD,
        "disabled path slower than the enabled path by {:.2} % (> {:.0} % noise band)",
        (ab_ratio - 1.0) * 100.0,
        MAX_OVERHEAD * 100.0
    );
    println!(
        "  [ok] disabled-path overhead within the {:.0} % noise budget",
        MAX_OVERHEAD * 100.0
    );
    let _ = iid.name();
}
