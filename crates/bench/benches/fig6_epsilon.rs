//! Fig. 6 — impact of the LSR approximation ratio ε (0.05–0.25). Only the
//! +LSR variants are sensitive: larger ε picks coarser forest levels,
//! trading MRE for local query speed. One shared testbed.

use fedra_bench::{build_testbed, report, run_algorithms, SweepConfig};

fn main() {
    let config = SweepConfig::from_env();
    let testbed = fedra_bench::timed("build testbed", || build_testbed(&config.defaults, 44));
    let mut points = Vec::new();
    for (i, p) in config.sweep_epsilon().iter().enumerate() {
        eprintln!("[fig6] epsilon = {} ...", p.epsilon);
        let mut r = run_algorithms(&testbed, p, 4_000 + i as u64);
        r.x = format!("{}", p.epsilon);
        points.push(r);
    }
    report(
        "fig6",
        "Impact of approximate ratio epsilon (COUNT)",
        "epsilon",
        &points,
    );
}
