//! Definition 2 allows rectangular ranges; the paper evaluates circles.
//! This target re-runs the default-point comparison with equal-area
//! square ranges and checks that the algorithm ordering carries over —
//! rectangles are actually *easier* (cell-aligned edges produce fewer
//! fractional boundary cells, and NonIID's covered-cell fast path fires
//! more often).

use fedra_bench::{build_testbed, SweepConfig, ALGORITHM_NAMES};
use fedra_core::{
    AccuracyParams, Exact, FraAlgorithm, FraQuery, IidEst, IidEstLsr, NonIidEst, NonIidEstLsr,
    Opta, QueryEngine,
};
use fedra_index::AggFunc;
use fedra_workload::QueryGenerator;

fn main() {
    let config = SweepConfig::from_env();
    let point = config.defaults;
    let testbed = fedra_bench::timed("build testbed", || build_testbed(&point, 61));
    let fed = &testbed.federation;

    let run = |shape: &str| -> Vec<(f64, f64, f64)> {
        let mut generator = QueryGenerator::new(&testbed.all_objects, 62);
        let ranges = match shape {
            "circle" => generator.circles(point.radius_km, point.num_queries),
            _ => generator.squares(point.radius_km, point.num_queries),
        };
        let queries: Vec<FraQuery> = ranges
            .into_iter()
            .map(|r| FraQuery::new(r, AggFunc::Count))
            .collect();
        let exact_alg = Exact::new();
        let truth: Vec<f64> = QueryEngine::per_silo(&exact_alg, fed)
            .execute_batch(fed, &queries)
            .values();
        let params = AccuracyParams::new(point.epsilon, point.delta);
        let algorithms: Vec<Box<dyn FraAlgorithm>> = vec![
            Box::new(Exact::new()),
            Box::new(Opta::new()),
            Box::new(IidEst::new(63)),
            Box::new(IidEstLsr::new(64, params)),
            Box::new(NonIidEst::new(65)),
            Box::new(NonIidEstLsr::new(66, params)),
        ];
        algorithms
            .iter()
            .map(|alg| {
                fed.reset_query_comm();
                let batch = QueryEngine::per_silo(alg.as_ref(), fed).execute_batch(fed, &queries);
                (
                    batch.mean_relative_error(&truth) * 100.0,
                    batch.wall_time.as_secs_f64() * 1e3,
                    batch.comm.total_bytes() as f64 / 1024.0,
                )
            })
            .collect()
    };

    let circle = run("circle");
    let square = run("square");

    println!();
    println!("=== Circular vs equal-area square ranges at the Tab. 2 default point ===");
    println!();
    println!(
        "{:>16} {:>12} {:>12} {:>14} {:>14} {:>12} {:>12}",
        "algorithm", "MRE circ", "MRE sq", "time circ ms", "time sq ms", "KB circ", "KB sq"
    );
    for (i, name) in ALGORITHM_NAMES.iter().enumerate() {
        println!(
            "{:>16} {:>11.2}% {:>11.2}% {:>14.2} {:>14.2} {:>12.1} {:>12.1}",
            name, circle[i].0, square[i].0, circle[i].1, square[i].1, circle[i].2, square[i].2
        );
    }
    // Ordering check: NonIID-est stays the most accurate approximate
    // algorithm under both shapes.
    let best = |rows: &[(f64, f64, f64)]| {
        rows.iter()
            .enumerate()
            .skip(1) // EXACT is trivially 0
            .min_by(|a, b| a.1 .0.total_cmp(&b.1 .0))
            .map(|(i, _)| ALGORITHM_NAMES[i])
            .unwrap()
    };
    println!();
    println!(
        "most accurate approximate algorithm: circles -> {}, squares -> {}",
        best(&circle),
        best(&square)
    );
}
