//! Fig. 5 — impact of the grid length `L` (0.5–2.5 km). The grid indexes
//! are rebuilt per point (Alg. 1 depends on L); the data does not change.

use fedra_bench::{report, run_point, SweepConfig};

fn main() {
    let config = SweepConfig::from_env();
    let mut points = Vec::new();
    for (i, p) in config.sweep_grid_length().iter().enumerate() {
        eprintln!("[fig5] L = {} km ...", p.grid_len_km);
        let mut r = fedra_bench::timed("point", || run_point(p, 3_000 + i as u64));
        r.x = format!("{}", p.grid_len_km);
        points.push(r);
    }
    report("fig5", "Impact of grid length L (COUNT)", "L (km)", &points);
}
