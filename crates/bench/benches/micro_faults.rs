//! Healthy-path overhead guard for the fault-tolerance machinery.
//!
//! The deadline/hedge/breaker layer promises to be pay-for-what-you-use:
//! a federation with a full resilience configuration — deadline budget,
//! hedge threshold, enabled breaker, an attached (but disarmed) fault
//! plan — must answer a healthy IID-est batch within noise (≤ 3 %) of
//! the default build, whose frames take the exact pre-deadline wait
//! path. Medians over interleaved rounds keep the comparison stable on
//! shared machines.

use std::hint::black_box;
use std::time::{Duration, Instant};

use fedra_core::{FraQuery, IidEst, QueryEngine};
use fedra_federation::{CallPolicy, FaultPlan, Federation, FederationBuilder, HealthConfig};
use fedra_index::AggFunc;
use fedra_workload::{QueryGenerator, WorkloadSpec};

/// Interleaved A/B rounds (odd, so the median is a single sample).
const ROUNDS: usize = 21;
/// The acceptance bound: resilience-machinery overhead within noise.
const MAX_OVERHEAD: f64 = 0.03;

fn median(mut xs: Vec<f64>) -> f64 {
    xs.sort_by(|a, b| a.partial_cmp(b).expect("finite timings"));
    xs[xs.len() / 2]
}

fn build(with_resilience: bool) -> Federation {
    // The exact `engine_batch64_m4` workload from micro_transport.
    let spec = WorkloadSpec::default()
        .with_total_objects(60_000)
        .with_silos(4)
        .with_seed(32);
    let dataset = spec.generate();
    let mut builder = FederationBuilder::new(dataset.bounds()).grid_cell_len(1.0);
    if with_resilience {
        builder = builder
            .fault_plan(
                FaultPlan::seeded(7)
                    .slow_silo(0, Duration::from_millis(40))
                    .flapping_silo(1, 2, 1),
            )
            .call_policy(CallPolicy {
                deadline: Some(Duration::from_secs(2)),
                hedge_after: Some(Duration::from_millis(25)),
                ..Default::default()
            })
            .health_config(HealthConfig::enabled());
    }
    builder.build(dataset.into_partitions())
}

fn main() {
    let plain = build(false);
    let guarded = build(true);
    // Healthy-path means healthy: the plan stays attached (its per-frame
    // armed check is part of the measured cost) but injects nothing.
    guarded.set_faults_armed(false);

    let spec = WorkloadSpec::default()
        .with_total_objects(60_000)
        .with_silos(4)
        .with_seed(32);
    let all = spec.generate().all_objects();
    let mut generator = QueryGenerator::new(&all, 33);
    let queries: Vec<FraQuery> = generator
        .circles(2.0, 64)
        .iter()
        .map(|r| FraQuery::new(*r, AggFunc::Count))
        .collect();

    let iid = IidEst::new(34);
    let plain_engine = QueryEngine::per_silo(&iid, &plain);
    let iid_guarded = IidEst::new(34);
    let guarded_engine = QueryEngine::per_silo(&iid_guarded, &guarded);

    // Warm caches and the silo worker pools before timing anything.
    for _ in 0..3 {
        black_box(plain_engine.execute_batch(&plain, &queries).failures());
        black_box(guarded_engine.execute_batch(&guarded, &queries).failures());
    }

    let mut plain_ns = Vec::with_capacity(ROUNDS);
    let mut guarded_ns = Vec::with_capacity(ROUNDS);
    for _ in 0..ROUNDS {
        let start = Instant::now();
        black_box(plain_engine.execute_batch(&plain, &queries).failures());
        plain_ns.push(start.elapsed().as_nanos() as f64);

        let start = Instant::now();
        black_box(guarded_engine.execute_batch(&guarded, &queries).failures());
        guarded_ns.push(start.elapsed().as_nanos() as f64);
    }
    let plain_med = median(plain_ns);
    let guarded_med = median(guarded_ns);
    let ratio = guarded_med / plain_med;

    println!(
        "micro_faults: IID-est batch of {} queries, m = 4, medians over {} interleaved rounds",
        queries.len(),
        ROUNDS
    );
    println!(
        "  default policy      {:>10.0} ns/batch ({:.0} ns/query)",
        plain_med,
        plain_med / queries.len() as f64
    );
    println!(
        "  deadline + breaker  {:>10.0} ns/batch ({:+.2} % overhead)",
        guarded_med,
        (ratio - 1.0) * 100.0
    );

    assert!(
        ratio <= 1.0 + MAX_OVERHEAD,
        "healthy-path deadline/breaker checks cost {:.2} % (> {:.0} % budget)",
        (ratio - 1.0) * 100.0,
        MAX_OVERHEAD * 100.0
    );
    println!(
        "  [ok] resilience machinery within the {:.0} % noise budget on the healthy path",
        MAX_OVERHEAD * 100.0
    );
}
