//! Ablations of the design choices DESIGN.md calls out:
//!
//! A. prefix-sum grid vs naive cell scan for sum₀ (Sec. 4.2.1 remark);
//! B. NonIID boundary-cells-only transfer vs shipping the full
//!    intersecting-cell vector (Sec. 4.2.2 remark);
//! C. LSR level-selection rule vs fixed levels;
//! D. single-silo vs k-silo pooled sampling (estimator variance);
//! E. cold vs warm provider start (snapshot checksums vs full transfer).

use std::time::Instant;

use fedra_bench::{build_testbed, SweepConfig};
use fedra_core::{Exact, FraAlgorithm, FraQuery, MultiSiloEst};
use fedra_federation::{LocalMode, Request, Response};
use fedra_index::grid::PrefixGrid;
use fedra_index::AggFunc;
use fedra_workload::QueryGenerator;

fn main() {
    let config = SweepConfig::from_env();
    let point = config.defaults;
    let testbed = fedra_bench::timed("build testbed", || build_testbed(&point, 48));
    let fed = &testbed.federation;
    let mut generator = QueryGenerator::new(&testbed.all_objects, 49);
    let ranges = generator.circles(point.radius_km, 200);

    // --- A: prefix-sum vs naive sum0 -----------------------------------
    let grid = fed.merged_grid();
    let prefix = PrefixGrid::build(grid);
    let t0 = Instant::now();
    let mut acc_naive = 0.0;
    for r in &ranges {
        acc_naive += grid.aggregate_intersecting(r).count;
    }
    let naive_time = t0.elapsed();
    let t0 = Instant::now();
    let mut acc_prefix = 0.0;
    for r in &ranges {
        acc_prefix += prefix.aggregate_intersecting(r).count;
    }
    let prefix_time = t0.elapsed();
    assert!((acc_naive - acc_prefix).abs() < 1e-6 * acc_naive.max(1.0));
    println!(
        "=== Ablation A: sum0 computation over {} ranges ===",
        ranges.len()
    );
    println!("  naive cell scan : {naive_time:?}");
    println!(
        "  cumulative array: {prefix_time:?}  ({:.1}x)",
        naive_time.as_secs_f64() / prefix_time.as_secs_f64()
    );

    // --- B: boundary-only vs full-vector NonIID transfer ----------------
    // The benefit of the Sec. 4.2.2 remark scales with r/L: at small
    // radii almost every intersecting cell *is* a boundary cell, while
    // large circles cover an O((r/L)^2) interior that never needs to be
    // shipped. Sweep the ratio.
    let spec = *grid.spec();
    println!();
    println!("=== Ablation B: NonIID transfer, boundary-only vs all intersecting cells ===");
    for radius in [
        point.radius_km,
        2.0 * point.radius_km,
        4.0 * point.radius_km,
    ] {
        let mut generator_b = QueryGenerator::new(&testbed.all_objects, 777);
        let ranges_b = generator_b.circles(radius, 50);
        let mut boundary_bytes = 0u64;
        let mut full_bytes = 0u64;
        for r in &ranges_b {
            let cls = spec.classify(r);
            let all: Vec<u32> = cls.iter().collect();
            fed.reset_query_comm();
            let _ = fed.call(
                0,
                &Request::CellContributions {
                    range: *r,
                    cells: cls.boundary.clone(),
                    mode: LocalMode::Exact,
                },
            );
            boundary_bytes += fed.query_comm().total_bytes();
            fed.reset_query_comm();
            let _ = fed.call(
                0,
                &Request::CellContributions {
                    range: *r,
                    cells: all,
                    mode: LocalMode::Exact,
                },
            );
            full_bytes += fed.query_comm().total_bytes();
        }
        println!(
            "  r = {radius:>4} km (r/L = {:>4.1}): boundary-only {boundary_bytes} B, all cells {full_bytes} B ({:.2}x more)",
            radius / point.grid_len_km,
            full_bytes as f64 / boundary_bytes as f64
        );
    }

    // --- C: LSR level rule vs fixed levels ------------------------------
    println!();
    println!("=== Ablation C: LSR fixed level vs Lemma-1 rule (silo 0, 100 ranges) ===");
    let exact_alg = Exact::new();
    let mut exact_vals = Vec::new();
    for r in ranges.iter().take(100) {
        exact_vals.push(
            match fed.call(
                0,
                &Request::Aggregate {
                    range: *r,
                    mode: LocalMode::Exact,
                },
            ) {
                Ok(Response::Agg(a)) => a.count,
                other => panic!("unexpected {other:?}"),
            },
        );
    }
    let _ = &exact_alg;
    for level_desc in ["rule", "0", "2", "4", "6", "8"] {
        let t0 = Instant::now();
        let mut err_sum = 0.0;
        for (r, &truth) in ranges.iter().take(100).zip(&exact_vals) {
            let sum0 = fed.merged_prefix().aggregate_intersecting(r).count;
            let mode = match level_desc {
                "rule" => LocalMode::Lsr {
                    epsilon: point.epsilon,
                    delta: point.delta,
                    sum0,
                },
                lvl => {
                    // Fixed level: encode via epsilon chosen so the rule
                    // yields that level for this sum0 (diagnostic only) —
                    // instead, query the silo with a synthetic sum0 that
                    // forces the level.
                    let l: u32 = lvl.parse().unwrap();
                    let forced = (3.0 * (2.0f64 / point.delta).ln())
                        / (point.epsilon * point.epsilon)
                        * 2f64.powi(l as i32 + 1)
                        * 0.75;
                    LocalMode::Lsr {
                        epsilon: point.epsilon,
                        delta: point.delta,
                        sum0: forced,
                    }
                }
            };
            match fed.call(0, &Request::Aggregate { range: *r, mode }) {
                Ok(Response::Agg(a)) => {
                    if truth > 0.0 {
                        err_sum += (a.count - truth).abs() / truth;
                    }
                }
                other => panic!("unexpected {other:?}"),
            }
        }
        println!(
            "  level {:>4}: MRE {:>6.2} %  time {:?}",
            level_desc,
            err_sum,
            t0.elapsed()
        );
    }

    // --- D: single vs k-silo pooled sampling ----------------------------
    println!();
    println!("=== Ablation D: pooling k sampled silos (MultiSilo-est) ===");
    let truth: Vec<f64> = ranges
        .iter()
        .take(60)
        .map(|r| {
            Exact::new()
                .execute(fed, &FraQuery::new(*r, AggFunc::Count))
                .value
        })
        .collect();
    for k in [1usize, 2, 3, point.num_silos] {
        let alg = MultiSiloEst::new(900 + k as u64, k);
        let mut err_sum = 0.0;
        let mut bytes = 0u64;
        let mut counted = 0usize;
        for (r, &t) in ranges.iter().take(60).zip(&truth) {
            if t == 0.0 {
                continue;
            }
            let q = FraQuery::new(*r, AggFunc::Count);
            fed.reset_query_comm();
            let est = alg.execute(fed, &q).value;
            bytes += fed.query_comm().total_bytes();
            err_sum += (est - t).abs() / t;
            counted += 1;
        }
        println!(
            "  k = {k}: MRE {:.2} %, comm {:.1} KB over {counted} queries",
            err_sum / counted as f64 * 100.0,
            bytes as f64 / 1024.0
        );
    }

    // --- E: cold vs warm provider start ---------------------------------
    println!();
    println!("=== Ablation E: Alg. 1 setup traffic, cold vs warm start ===");
    let spec_small = fedra_workload::WorkloadSpec::default()
        .with_total_objects(point.data_size / 4)
        .with_silos(point.num_silos)
        .with_seed(979);
    let dataset = spec_small.generate();
    let bounds = dataset.bounds();
    let partitions = dataset.into_partitions();
    let cold = fedra_federation::FederationBuilder::new(bounds)
        .grid_cell_len(point.grid_len_km)
        .build(partitions.clone());
    let cold_setup = cold.setup_comm().total_bytes();
    let snapshot = cold.snapshot();
    drop(cold);
    let warm = fedra_federation::FederationBuilder::new(bounds)
        .grid_cell_len(point.grid_len_km)
        .warm_start(snapshot)
        .build(partitions);
    let warm_setup = warm.setup_comm().total_bytes();
    println!("  cold start: {:.1} KB", cold_setup as f64 / 1024.0);
    println!(
        "  warm start: {:.1} KB ({} of {} silos from cache, {:.1}x less traffic)",
        warm_setup as f64 / 1024.0,
        warm.warm_start_hits(),
        warm.num_silos(),
        cold_setup as f64 / warm_setup as f64
    );
}
