//! Fig. 7 — impact of the LSR failure bound δ (0.01–0.05). Like Fig. 6,
//! only the +LSR variants react, and mildly: δ enters the level rule
//! logarithmically. One shared testbed.

use fedra_bench::{build_testbed, report, run_algorithms, SweepConfig};

fn main() {
    let config = SweepConfig::from_env();
    let testbed = fedra_bench::timed("build testbed", || build_testbed(&config.defaults, 45));
    let mut points = Vec::new();
    for (i, p) in config.sweep_delta().iter().enumerate() {
        eprintln!("[fig7] delta = {} ...", p.delta);
        let mut r = run_algorithms(&testbed, p, 5_000 + i as u64);
        r.x = format!("{}", p.delta);
        points.push(r);
    }
    report(
        "fig7",
        "Impact of least upper bound delta (COUNT)",
        "delta",
        &points,
    );
}
