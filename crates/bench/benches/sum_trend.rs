//! The paper reports COUNT results and notes "the results for SUM query
//! have the same trend" (Sec. 8.2). This target verifies that claim: the
//! default-point comparison is run twice — once per aggregation function —
//! and the per-algorithm orderings are checked to agree.

use fedra_bench::{build_testbed, SweepConfig, ALGORITHM_NAMES};
use fedra_core::{
    AccuracyParams, Exact, FraAlgorithm, FraQuery, IidEst, IidEstLsr, NonIidEst, NonIidEstLsr,
    Opta, QueryEngine,
};
use fedra_index::AggFunc;
use fedra_workload::QueryGenerator;

fn main() {
    let config = SweepConfig::from_env();
    let point = config.defaults;
    let testbed = fedra_bench::timed("build testbed", || build_testbed(&point, 51));
    let fed = &testbed.federation;

    let mut rows: Vec<(AggFunc, Vec<(f64, f64)>)> = Vec::new();
    for func in [
        AggFunc::Count,
        AggFunc::Sum,
        AggFunc::SumSqr,
        AggFunc::Avg,
        AggFunc::Stdev,
    ] {
        let mut generator = QueryGenerator::new(&testbed.all_objects, 52);
        let queries: Vec<FraQuery> = generator
            .circles(point.radius_km, point.num_queries)
            .into_iter()
            .map(|r| FraQuery::new(r, func))
            .collect();
        let exact_alg = Exact::new();
        let truth: Vec<f64> = QueryEngine::per_silo(&exact_alg, fed)
            .execute_batch(fed, &queries)
            .values();
        let params = AccuracyParams::new(point.epsilon, point.delta);
        let algorithms: Vec<Box<dyn FraAlgorithm>> = vec![
            Box::new(Exact::new()),
            Box::new(Opta::new()),
            Box::new(IidEst::new(53)),
            Box::new(IidEstLsr::new(54, params)),
            Box::new(NonIidEst::new(55)),
            Box::new(NonIidEstLsr::new(56, params)),
        ];
        let mut metrics = Vec::new();
        for alg in &algorithms {
            let engine = QueryEngine::per_silo(alg.as_ref(), fed);
            let batch = engine.execute_batch(fed, &queries);
            metrics.push((
                batch.mean_relative_error(&truth) * 100.0,
                batch.wall_time.as_secs_f64() * 1e3,
            ));
        }
        rows.push((func, metrics));
    }

    println!();
    println!("=== SUM/AVG/STDEV trends vs COUNT at the Tab. 2 default point ===");
    println!();
    print!("{:>10}", "func");
    for name in ALGORITHM_NAMES {
        print!("  {name:>14}");
    }
    println!("   (MRE %)");
    for (func, metrics) in &rows {
        print!("{func:>10}");
        for (mre, _) in metrics {
            print!("  {mre:>14.3}");
        }
        println!();
    }

    // Trend check (primitive functions, which is what the paper claims):
    // NonIID-est must beat OPTA on COUNT/SUM/SUM_SQR. Derived ratio
    // functions (AVG, STDEV) are reported but not gated — a ratio
    // estimator's numerator and denominator errors partially cancel for
    // *every* algorithm, which can flatten the ordering.
    let mut all_ok = true;
    println!();
    for (func, metrics) in &rows {
        let opta = metrics[1].0;
        let noniid = metrics[4].0;
        if func.is_primitive() {
            let ok = noniid <= opta;
            all_ok &= ok;
            println!(
                "  [{}] {func}: NonIID-est ({noniid:.2} %) <= OPTA ({opta:.2} %)",
                if ok { "ok" } else { "MISS" }
            );
        } else {
            println!(
                "  [--] {func}: NonIID-est {noniid:.2} % vs OPTA {opta:.2} % (ratio function, not gated)"
            );
        }
    }
    println!(
        "\nconclusion: {}",
        if all_ok {
            "SUM and SUM_SQR follow the COUNT trend (paper Sec. 8.2)"
        } else {
            "trend mismatch - investigate"
        }
    );
}
