//! Answer-cache overhead guard on the `micro_obs` IID-est workload.
//!
//! The ε-aware cache promises that a workload it cannot help — every
//! probe a miss — costs only a map probe and an insert per query. This
//! bench holds that promise to a number: the cache-disabled path (an
//! [`AnswerCache`] whose TTL is zero, so every entry expires before the
//! next ask and *every* query goes through to the wrapped algorithm)
//! must stay within noise (≤ 3 %) of the raw, uncached algorithm on the
//! same batch. Zero TTL is the worst case for the wrapper: each probe
//! pays lookup + expiry removal + miss + re-insert, strictly more than
//! any real configuration.
//!
//! Medians over interleaved rounds keep the check stable on shared
//! machines, mirroring the micro_obs / micro_transport overhead gates.

use std::hint::black_box;
use std::time::{Duration, Instant};

use fedra_core::{AnswerCache, CacheConfig, FraAlgorithm, FraQuery, IidEst};
use fedra_federation::FederationBuilder;
use fedra_index::AggFunc;
use fedra_workload::{QueryGenerator, WorkloadSpec};

/// Interleaved A/B rounds (odd, so the median is a single sample).
/// Sized for noisy single-core CI containers: at 41 rounds the median
/// paired ratio still swung past the budget run-to-run; 161 rounds
/// halves that spread (~1/√n) while keeping the bench under a second.
const ROUNDS: usize = 161;
/// The acceptance bound: pure-miss cache overhead within noise.
const MAX_OVERHEAD: f64 = 0.03;

fn median(mut xs: Vec<f64>) -> f64 {
    xs.sort_by(|a, b| a.partial_cmp(b).expect("finite timings"));
    xs[xs.len() / 2]
}

fn main() {
    let spec = WorkloadSpec::default()
        .with_total_objects(60_000)
        .with_silos(4)
        .with_seed(32);
    let dataset = spec.generate();
    let all = dataset.all_objects();
    let fed = FederationBuilder::new(dataset.bounds())
        .grid_cell_len(1.0)
        .build(dataset.into_partitions());
    let mut generator = QueryGenerator::new(&all, 33);
    let queries: Vec<FraQuery> = generator
        .circles(2.0, 128)
        .iter()
        .map(|r| FraQuery::new(*r, AggFunc::Count))
        .collect();

    let raw = IidEst::new(34);
    let cached = AnswerCache::new(
        IidEst::new(34),
        CacheConfig {
            capacity: 4096,
            ttl: Duration::ZERO, // everything expires: the pure-miss path
        },
    );

    // Same execution mode on both sides: direct per-query calls. (The
    // batch engine would compare IID-est's planned per-silo path against
    // the wrapper's unplanned one and measure batching, not the cache.)
    let run_raw = |queries: &[FraQuery]| {
        for q in queries {
            black_box(raw.execute(&fed, q));
        }
    };
    let run_cached = |queries: &[FraQuery]| {
        for q in queries {
            black_box(cached.execute(&fed, q));
        }
    };

    // Warm the silo worker pools and both paths before timing.
    for _ in 0..3 {
        run_raw(&queries);
        run_cached(&queries);
    }

    // Alternate which side runs first each round so slow drift on a
    // shared machine cancels instead of biasing one side.
    let mut raw_ns = Vec::with_capacity(ROUNDS);
    let mut cached_ns = Vec::with_capacity(ROUNDS);
    for round in 0..ROUNDS {
        if round % 2 == 0 {
            let start = Instant::now();
            run_raw(&queries);
            raw_ns.push(start.elapsed().as_nanos() as f64);
            let start = Instant::now();
            run_cached(&queries);
            cached_ns.push(start.elapsed().as_nanos() as f64);
        } else {
            let start = Instant::now();
            run_cached(&queries);
            cached_ns.push(start.elapsed().as_nanos() as f64);
            let start = Instant::now();
            run_raw(&queries);
            raw_ns.push(start.elapsed().as_nanos() as f64);
        }
    }
    let raw_med = median(raw_ns.clone());
    let cached_med = median(cached_ns.clone());
    // Pair adjacent A/B timings and take the median ratio: a load spike
    // hits both sides of its round, so it cancels out of that round's
    // ratio instead of skewing one side's median.
    let ratio = median(
        raw_ns
            .iter()
            .zip(cached_ns.iter())
            .map(|(r, c)| c / r)
            .collect(),
    );

    let stats = cached.stats();
    println!(
        "micro_cache: IID-est batch of {} queries, m = 4, medians over {} interleaved rounds",
        queries.len(),
        ROUNDS
    );
    println!(
        "  uncached     {:>10.0} ns/batch ({:.0} ns/query)",
        raw_med,
        raw_med / queries.len() as f64
    );
    println!(
        "  zero-TTL cache {:>8.0} ns/batch ({:+.2} % wrapper cost, {} hits / {} misses)",
        cached_med,
        (ratio - 1.0) * 100.0,
        stats.hits,
        stats.misses
    );

    assert!(
        stats.hits == 0,
        "zero-TTL cache served {} hits; the guard must measure the pure-miss path",
        stats.hits
    );
    assert!(
        ratio <= 1.0 + MAX_OVERHEAD,
        "pure-miss cache path slower than uncached by {:.2} % (> {:.0} % budget)",
        (ratio - 1.0) * 100.0,
        MAX_OVERHEAD * 100.0
    );
    println!(
        "  [ok] pure-miss cache overhead within the {:.0} % noise budget",
        MAX_OVERHEAD * 100.0
    );
}
