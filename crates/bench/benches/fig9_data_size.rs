//! Fig. 9 — impact of the data federation size |P|. The heaviest sweep:
//! a fresh dataset and federation per point. Scaled by FEDRA_SCALE
//! (default 0.2 → 0.2–1.0 × 10⁶ objects; 1.0 reproduces the paper's
//! 1–5 × 10⁶).

use fedra_bench::{report, run_point, SweepConfig};

fn main() {
    let config = SweepConfig::from_env();
    let mut points = Vec::new();
    for (i, p) in config.sweep_data_size().iter().enumerate() {
        eprintln!("[fig9] |P| = {} ...", p.data_size);
        let mut r = fedra_bench::timed("point", || run_point(p, 7_000 + i as u64));
        r.x = format!("{}", p.data_size);
        points.push(r);
    }
    report(
        "fig9",
        "Impact of the size of data federation |P| (COUNT)",
        "|P|",
        &points,
    );
}
