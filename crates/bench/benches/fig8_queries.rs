//! Fig. 8 — impact of the batch size `nQ` (50–250 queries arriving at
//! once). The headline throughput claim (>250 q/s) is checked here: the
//! single-silo algorithms spread a batch across silos (≈ nQ/m each),
//! while EXACT/OPTA hit every silo with every query. One shared testbed.

use fedra_bench::{build_testbed, report, run_algorithms, SweepConfig};

fn main() {
    let config = SweepConfig::from_env();
    let testbed = fedra_bench::timed("build testbed", || build_testbed(&config.defaults, 46));
    let mut points = Vec::new();
    for (i, p) in config.sweep_queries().iter().enumerate() {
        eprintln!("[fig8] nQ = {} ...", p.num_queries);
        let mut r = run_algorithms(&testbed, p, 6_000 + i as u64);
        r.x = format!("{}", p.num_queries);
        points.push(r);
    }
    report(
        "fig8",
        "Impact of the number of queries nQ (COUNT)",
        "nQ",
        &points,
    );
    // Throughput panel (the paper quotes queries/second here).
    println!("--- fig8e: throughput (queries/s) ---");
    print!("{:>10}", "nQ");
    for name in fedra_bench::ALGORITHM_NAMES {
        print!("  {name:>14}");
    }
    println!();
    for p in &points {
        print!("{:>10}", p.x);
        for m in &p.algos {
            print!("  {:>14.1}", m.throughput_qps);
        }
        println!();
    }
}
