//! Synthetic workloads for the `fedra` experiments.
//!
//! The paper evaluates on a proprietary 1 TB Beijing shared-mobility
//! dataset; this crate generates its closest synthetic stand-in (see
//! DESIGN.md §2 for the substitution argument):
//!
//! * [`city`] — a Gaussian-mixture Beijing over the paper's bounding box,
//!   with per-company hotspot skew for the Non-IID case;
//! * [`WorkloadSpec`] — Tab. 2's data parameters (`|P|`, `m`, IID vs
//!   Non-IID) plus the dataset facts (three companies, ratio 1:1:2) and
//!   the Sec. 8.1 silo-splitting rule;
//! * [`QueryGenerator`] — query ranges anchored at data locations, radius
//!   1–3 km, circles and equal-area squares;
//! * [`SweepConfig`] — the full Tab. 2 grid with per-figure sweeps and
//!   the `FEDRA_SCALE` environment override.

#![forbid(unsafe_code)]
#![deny(missing_docs)]

pub mod city;
pub mod io;
mod queries;
mod spec;
mod sweep;

pub use city::{beijing_bounds, CityModel, Hotspot, MeasureModel};
pub use io::{read_csv, write_csv, CsvError};
pub use queries::QueryGenerator;
pub use spec::{Dataset, Distribution, WorkloadSpec};
pub use sweep::{ParamPoint, SweepConfig};
