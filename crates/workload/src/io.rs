//! CSV import/export for datasets.
//!
//! Real adopters have real fleet extracts. This module writes and reads a
//! minimal CSV interchange format so external data can ride through the
//! same pipeline as the synthetic generator:
//!
//! ```csv
//! silo,x_km,y_km,measure
//! 0,1.25,-94.5,3
//! 1,0.75,-96.0,1
//! ```
//!
//! Coordinates are planar kilometres (project lat/lon with
//! [`fedra_geo::Projection`] first). The reader is strict: a malformed
//! row is an error with its line number, not a silent skip — silently
//! dropping fleet records would bias every estimate downstream.

use std::io::{BufRead, BufReader, BufWriter, Write};
use std::path::Path;

use fedra_geo::{Rect, SpatialObject};

use crate::spec::Dataset;

/// Errors raised by the CSV reader.
#[derive(Debug)]
pub enum CsvError {
    /// Underlying I/O failure.
    Io(std::io::Error),
    /// A row that does not parse.
    Malformed {
        /// 1-based line number.
        line: usize,
        /// What went wrong.
        reason: String,
    },
    /// The file has no data rows.
    Empty,
}

impl std::fmt::Display for CsvError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CsvError::Io(e) => write!(f, "csv i/o error: {e}"),
            CsvError::Malformed { line, reason } => {
                write!(f, "csv line {line}: {reason}")
            }
            CsvError::Empty => write!(f, "csv file holds no data rows"),
        }
    }
}

impl std::error::Error for CsvError {}

impl From<std::io::Error> for CsvError {
    fn from(e: std::io::Error) -> Self {
        CsvError::Io(e)
    }
}

/// Writes a dataset as `silo,x_km,y_km,measure` rows (header included).
pub fn write_csv(dataset: &Dataset, path: impl AsRef<Path>) -> Result<(), CsvError> {
    let file = std::fs::File::create(path)?;
    let mut w = BufWriter::new(file);
    writeln!(w, "silo,x_km,y_km,measure")?;
    for (silo, partition) in dataset.partitions().iter().enumerate() {
        for o in partition {
            writeln!(
                w,
                "{},{},{},{}",
                silo, o.location.x, o.location.y, o.measure
            )?;
        }
    }
    w.flush()?;
    Ok(())
}

/// Reads a dataset back. The federation bounds are the tight bounding box
/// of the data, inflated by `bounds_margin` km on every side.
pub fn read_csv(path: impl AsRef<Path>, bounds_margin: f64) -> Result<Dataset, CsvError> {
    let file = std::fs::File::open(path)?;
    let reader = BufReader::new(file);
    let mut partitions: Vec<Vec<SpatialObject>> = Vec::new();
    let mut bbox = Rect::EMPTY;
    let mut rows = 0usize;
    for (idx, line) in reader.lines().enumerate() {
        let line = line?;
        let number = idx + 1;
        let trimmed = line.trim();
        if trimmed.is_empty() || (number == 1 && trimmed.starts_with("silo")) {
            continue; // header / blank
        }
        let mut fields = trimmed.split(',');
        let mut next_field = |name: &str| -> Result<&str, CsvError> {
            fields.next().ok_or_else(|| CsvError::Malformed {
                line: number,
                reason: format!("missing field `{name}`"),
            })
        };
        let silo: usize = next_field("silo")?
            .trim()
            .parse()
            .map_err(|e| CsvError::Malformed {
                line: number,
                reason: format!("bad silo id: {e}"),
            })?;
        let x: f64 = next_field("x_km")?
            .trim()
            .parse()
            .map_err(|e| CsvError::Malformed {
                line: number,
                reason: format!("bad x: {e}"),
            })?;
        let y: f64 = next_field("y_km")?
            .trim()
            .parse()
            .map_err(|e| CsvError::Malformed {
                line: number,
                reason: format!("bad y: {e}"),
            })?;
        let measure: f64 =
            next_field("measure")?
                .trim()
                .parse()
                .map_err(|e| CsvError::Malformed {
                    line: number,
                    reason: format!("bad measure: {e}"),
                })?;
        if !x.is_finite() || !y.is_finite() || !measure.is_finite() {
            return Err(CsvError::Malformed {
                line: number,
                reason: "non-finite coordinate or measure".to_string(),
            });
        }
        if silo >= partitions.len() {
            partitions.resize_with(silo + 1, Vec::new);
        }
        let object = SpatialObject::at(x, y, measure);
        bbox = bbox.union(&Rect::from_point(object.location));
        partitions[silo].push(object);
        rows += 1;
    }
    if rows == 0 {
        return Err(CsvError::Empty);
    }
    Ok(Dataset::from_partitions(
        bbox.inflate(bounds_margin),
        partitions,
    ))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::WorkloadSpec;

    fn temp_path(name: &str) -> std::path::PathBuf {
        let dir = std::env::temp_dir().join("fedra-csv-tests");
        std::fs::create_dir_all(&dir).unwrap();
        dir.join(name)
    }

    #[test]
    fn round_trip_preserves_every_object() {
        let original = WorkloadSpec::small().with_total_objects(2_000).generate();
        let path = temp_path("round_trip.csv");
        write_csv(&original, &path).unwrap();
        let back = read_csv(&path, 1.0).unwrap();
        assert_eq!(back.partitions().len(), original.partitions().len());
        for (a, b) in original.partitions().iter().zip(back.partitions()) {
            assert_eq!(a.len(), b.len());
            for (x, y) in a.iter().zip(b) {
                assert_eq!(x.location.x, y.location.x);
                assert_eq!(x.location.y, y.location.y);
                assert_eq!(x.measure, y.measure);
            }
        }
        // Reconstructed bounds cover every object.
        for o in back.all_objects() {
            assert!(back.bounds().contains_point(&o.location));
        }
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn header_and_blank_lines_are_tolerated() {
        let path = temp_path("header.csv");
        std::fs::write(
            &path,
            "silo,x_km,y_km,measure\n\n0,1.0,2.0,3.0\n\n1,4.0,5.0,6.0\n",
        )
        .unwrap();
        let ds = read_csv(&path, 0.5).unwrap();
        assert_eq!(ds.len(), 2);
        assert_eq!(ds.partitions().len(), 2);
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn malformed_rows_fail_with_line_numbers() {
        let path = temp_path("malformed.csv");
        std::fs::write(
            &path,
            "silo,x_km,y_km,measure\n0,1.0,2.0,3.0\n0,not_a_number,2.0,3.0\n",
        )
        .unwrap();
        match read_csv(&path, 0.5) {
            Err(CsvError::Malformed { line, reason }) => {
                assert_eq!(line, 3);
                assert!(reason.contains("bad x"), "{reason}");
            }
            other => panic!("expected Malformed, got {other:?}"),
        }
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn missing_fields_are_reported() {
        let path = temp_path("missing.csv");
        std::fs::write(&path, "0,1.0,2.0\n").unwrap();
        assert!(matches!(
            read_csv(&path, 0.5),
            Err(CsvError::Malformed { line: 1, .. })
        ));
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn non_finite_values_are_rejected() {
        let path = temp_path("nan.csv");
        std::fs::write(&path, "0,NaN,2.0,3.0\n").unwrap();
        assert!(matches!(
            read_csv(&path, 0.5),
            Err(CsvError::Malformed { .. })
        ));
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn empty_file_is_an_error() {
        let path = temp_path("empty.csv");
        std::fs::write(&path, "silo,x_km,y_km,measure\n").unwrap();
        assert!(matches!(read_csv(&path, 0.5), Err(CsvError::Empty)));
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn sparse_silo_ids_leave_gaps_as_empty_partitions() {
        let path = temp_path("sparse.csv");
        std::fs::write(&path, "0,1.0,1.0,1.0\n3,2.0,2.0,2.0\n").unwrap();
        let ds = read_csv(&path, 0.5).unwrap();
        assert_eq!(ds.partitions().len(), 4);
        assert!(ds.partitions()[1].is_empty());
        assert!(ds.partitions()[2].is_empty());
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn loaded_dataset_drives_a_federation() {
        // End-to-end: CSV → dataset → federation works like generated data.
        let original = WorkloadSpec::small().with_total_objects(1_000).generate();
        let path = temp_path("federate.csv");
        write_csv(&original, &path).unwrap();
        let loaded = read_csv(&path, 1.0).unwrap();
        assert_eq!(loaded.len(), 1_000);
        assert!(!loaded.is_empty());
        let _ = std::fs::remove_file(&path);
    }
}
