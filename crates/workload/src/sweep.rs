//! The Tab. 2 parameter grid, with the repo's default down-scaling.
//!
//! The paper sweeps six parameters, one at a time, holding the others at
//! their bold defaults:
//!
//! | Parameter | Settings (defaults bold) |
//! |---|---|
//! | size of data federation `|P|` | 1, 2, **3**, 4, 5 × 10⁶ |
//! | number of data silos `m` | 3, **6**, 9, 12, 15 |
//! | radius of query range `r` (km) | 1, 1.5, **2**, 2.5, 3 |
//! | number of queries `nQ` | 50, 100, **150**, 200, 250 |
//! | approximate ratio ε | 0.05, **0.10**, 0.15, 0.20, 0.25 |
//! | least upper bound δ | **0.01**, 0.02, 0.03, 0.04, 0.05 |
//!
//! plus the grid length `L` ∈ {0.5, **1**, 1.5, 2, 2.5} km (Fig. 5).
//!
//! [`SweepConfig::from_env`] scales the data sizes by `FEDRA_SCALE`
//! (default 0.2, i.e. 0.2–1.0 × 10⁶ objects) so the full suite finishes
//! on one machine; all other axes match the paper exactly. Set
//! `FEDRA_SCALE=1.0` to reproduce at paper scale.

/// One experiment's full parameter assignment.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ParamPoint {
    /// Data federation size `|P|`.
    pub data_size: usize,
    /// Number of silos `m`.
    pub num_silos: usize,
    /// Query radius in km.
    pub radius_km: f64,
    /// Queries per batch `nQ`.
    pub num_queries: usize,
    /// LSR approximation ratio ε.
    pub epsilon: f64,
    /// LSR failure bound δ.
    pub delta: f64,
    /// Grid cell length `L` in km.
    pub grid_len_km: f64,
}

/// The Tab. 2 grid: per-axis settings plus the bold defaults.
#[derive(Debug, Clone, PartialEq)]
pub struct SweepConfig {
    /// `|P|` axis.
    pub data_sizes: Vec<usize>,
    /// `m` axis.
    pub silo_counts: Vec<usize>,
    /// `r` axis (km).
    pub radii_km: Vec<f64>,
    /// `nQ` axis.
    pub query_counts: Vec<usize>,
    /// ε axis.
    pub epsilons: Vec<f64>,
    /// δ axis.
    pub deltas: Vec<f64>,
    /// `L` axis (km).
    pub grid_lengths_km: Vec<f64>,
    /// The bold defaults every sweep holds fixed on its other axes.
    pub defaults: ParamPoint,
}

impl SweepConfig {
    /// The paper's exact Tab. 2 settings (3 × 10⁶ objects by default —
    /// heavy; prefer [`SweepConfig::from_env`] for routine runs).
    pub fn paper() -> Self {
        Self::scaled(1.0)
    }

    /// Tab. 2 with the `|P|` axis multiplied by `factor`.
    ///
    /// # Panics
    /// Panics on a non-positive factor.
    pub fn scaled(factor: f64) -> Self {
        assert!(factor > 0.0 && factor.is_finite(), "scale must be positive");
        let size = |millions: f64| (millions * 1e6 * factor).round() as usize;
        let data_sizes = vec![size(1.0), size(2.0), size(3.0), size(4.0), size(5.0)];
        Self {
            defaults: ParamPoint {
                data_size: data_sizes[2],
                num_silos: 6,
                radius_km: 2.0,
                num_queries: 150,
                epsilon: 0.10,
                delta: 0.01,
                grid_len_km: 1.0,
            },
            data_sizes,
            silo_counts: vec![3, 6, 9, 12, 15],
            radii_km: vec![1.0, 1.5, 2.0, 2.5, 3.0],
            query_counts: vec![50, 100, 150, 200, 250],
            epsilons: vec![0.05, 0.10, 0.15, 0.20, 0.25],
            deltas: vec![0.01, 0.02, 0.03, 0.04, 0.05],
            grid_lengths_km: vec![0.5, 1.0, 1.5, 2.0, 2.5],
        }
    }

    /// Reads `FEDRA_SCALE` (default 0.2) and returns the scaled grid.
    pub fn from_env() -> Self {
        let factor = std::env::var("FEDRA_SCALE")
            .ok()
            .and_then(|s| s.parse::<f64>().ok())
            .unwrap_or(0.2);
        Self::scaled(factor)
    }

    /// Points of the Fig. 3 sweep (radius axis).
    pub fn sweep_radius(&self) -> Vec<ParamPoint> {
        self.radii_km
            .iter()
            .map(|&radius_km| ParamPoint {
                radius_km,
                ..self.defaults
            })
            .collect()
    }

    /// Points of the Fig. 4 sweep (silo-count axis).
    pub fn sweep_silos(&self) -> Vec<ParamPoint> {
        self.silo_counts
            .iter()
            .map(|&num_silos| ParamPoint {
                num_silos,
                ..self.defaults
            })
            .collect()
    }

    /// Points of the Fig. 5 sweep (grid-length axis).
    pub fn sweep_grid_length(&self) -> Vec<ParamPoint> {
        self.grid_lengths_km
            .iter()
            .map(|&grid_len_km| ParamPoint {
                grid_len_km,
                ..self.defaults
            })
            .collect()
    }

    /// Points of the Fig. 6 sweep (ε axis).
    pub fn sweep_epsilon(&self) -> Vec<ParamPoint> {
        self.epsilons
            .iter()
            .map(|&epsilon| ParamPoint {
                epsilon,
                ..self.defaults
            })
            .collect()
    }

    /// Points of the Fig. 7 sweep (δ axis).
    pub fn sweep_delta(&self) -> Vec<ParamPoint> {
        self.deltas
            .iter()
            .map(|&delta| ParamPoint {
                delta,
                ..self.defaults
            })
            .collect()
    }

    /// Points of the Fig. 8 sweep (query-count axis).
    pub fn sweep_queries(&self) -> Vec<ParamPoint> {
        self.query_counts
            .iter()
            .map(|&num_queries| ParamPoint {
                num_queries,
                ..self.defaults
            })
            .collect()
    }

    /// Points of the Fig. 9 sweep (data-size axis).
    pub fn sweep_data_size(&self) -> Vec<ParamPoint> {
        self.data_sizes
            .iter()
            .map(|&data_size| ParamPoint {
                data_size,
                ..self.defaults
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_grid_matches_table2() {
        let c = SweepConfig::paper();
        assert_eq!(
            c.data_sizes,
            vec![1_000_000, 2_000_000, 3_000_000, 4_000_000, 5_000_000]
        );
        assert_eq!(c.silo_counts, vec![3, 6, 9, 12, 15]);
        assert_eq!(c.radii_km, vec![1.0, 1.5, 2.0, 2.5, 3.0]);
        assert_eq!(c.query_counts, vec![50, 100, 150, 200, 250]);
        assert_eq!(c.epsilons, vec![0.05, 0.10, 0.15, 0.20, 0.25]);
        assert_eq!(c.deltas, vec![0.01, 0.02, 0.03, 0.04, 0.05]);
        assert_eq!(c.defaults.data_size, 3_000_000);
        assert_eq!(c.defaults.num_silos, 6);
        assert_eq!(c.defaults.radius_km, 2.0);
        assert_eq!(c.defaults.num_queries, 150);
        assert_eq!(c.defaults.epsilon, 0.10);
        assert_eq!(c.defaults.delta, 0.01);
        assert_eq!(c.defaults.grid_len_km, 1.0);
    }

    #[test]
    fn scaling_shrinks_only_data_sizes() {
        let c = SweepConfig::scaled(0.1);
        assert_eq!(c.data_sizes[0], 100_000);
        assert_eq!(c.defaults.data_size, 300_000);
        assert_eq!(c.silo_counts, SweepConfig::paper().silo_counts);
        assert_eq!(c.radii_km, SweepConfig::paper().radii_km);
    }

    #[test]
    fn sweeps_vary_exactly_one_axis() {
        let c = SweepConfig::scaled(0.2);
        let radius_points = c.sweep_radius();
        assert_eq!(radius_points.len(), 5);
        for (p, &r) in radius_points.iter().zip(&c.radii_km) {
            assert_eq!(p.radius_km, r);
            assert_eq!(p.num_silos, c.defaults.num_silos);
            assert_eq!(p.data_size, c.defaults.data_size);
        }
        let silo_points = c.sweep_silos();
        for (p, &m) in silo_points.iter().zip(&c.silo_counts) {
            assert_eq!(p.num_silos, m);
            assert_eq!(p.radius_km, c.defaults.radius_km);
        }
        assert_eq!(c.sweep_epsilon().len(), 5);
        assert_eq!(c.sweep_delta().len(), 5);
        assert_eq!(c.sweep_queries().len(), 5);
        assert_eq!(c.sweep_data_size().len(), 5);
        assert_eq!(c.sweep_grid_length().len(), 5);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_scale_rejected() {
        SweepConfig::scaled(0.0);
    }
}
