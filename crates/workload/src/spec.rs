//! Workload specification and dataset generation.
//!
//! [`WorkloadSpec`] captures everything Tab. 2 parameterizes about the
//! *data* (size `|P|`, silo count `m`, IID vs Non-IID) plus the paper's
//! fixed dataset facts (three companies with record ratio 1:1:2). The
//! silo-splitting rule follows Sec. 8.1: "we equally split the records of
//! each company to form more data silos".

use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;

use fedra_geo::{Rect, SpatialObject};

use crate::city::{CityModel, MeasureModel};

/// How spatial objects distribute across silos.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Distribution {
    /// Every silo draws from the same city-wide mixture (the IID case).
    Iid,
    /// Each company over-weights its own focus hotspots (the Non-IID
    /// case); silos inherit their company's distribution.
    #[default]
    CompanySkewed,
}

/// A reproducible workload description.
#[derive(Debug, Clone)]
pub struct WorkloadSpec {
    /// Total number of spatial objects `|P|` (Tab. 2: 1–5 × 10⁶,
    /// default 3 × 10⁶; scaled down by default in this repo).
    pub total_objects: usize,
    /// Number of silos `m` (Tab. 2: 3–15, default 6).
    pub num_silos: usize,
    /// Company record ratio (the paper's dataset: 1 : 1 : 2).
    pub company_ratio: Vec<u32>,
    /// IID or company-skewed generation.
    pub distribution: Distribution,
    /// Hotspot over-weighting factor for the skewed case.
    pub skew: f64,
    /// Measure attribute model.
    pub measure: MeasureModel,
    /// RNG seed — same spec, same dataset.
    pub seed: u64,
}

impl Default for WorkloadSpec {
    fn default() -> Self {
        Self {
            total_objects: 600_000,
            num_silos: 6,
            company_ratio: vec![1, 1, 2],
            distribution: Distribution::CompanySkewed,
            skew: 3.0,
            measure: MeasureModel::Passengers,
            seed: 0xBE111,
        }
    }
}

impl WorkloadSpec {
    /// A laptop-friendly spec for tests, examples and doctests
    /// (30 k objects, 3 silos).
    pub fn small() -> Self {
        Self {
            total_objects: 30_000,
            num_silos: 3,
            ..Self::default()
        }
    }

    /// Builder-style override of the object count.
    pub fn with_total_objects(mut self, n: usize) -> Self {
        self.total_objects = n;
        self
    }

    /// Builder-style override of the silo count.
    pub fn with_silos(mut self, m: usize) -> Self {
        self.num_silos = m;
        self
    }

    /// Builder-style override of the distribution mode.
    pub fn with_distribution(mut self, d: Distribution) -> Self {
        self.distribution = d;
        self
    }

    /// Builder-style override of the seed.
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Generates the dataset.
    ///
    /// # Panics
    /// Panics when `num_silos == 0` or the company ratio is empty/zero.
    pub fn generate(&self) -> Dataset {
        assert!(self.num_silos > 0, "need at least one silo");
        assert!(
            !self.company_ratio.is_empty() && self.company_ratio.iter().any(|&r| r > 0),
            "company ratio must have positive mass"
        );
        let model = CityModel::beijing().with_measure(self.measure);
        let mut rng = StdRng::seed_from_u64(self.seed);
        let num_companies = self.company_ratio.len();
        let ratio_total: u32 = self.company_ratio.iter().sum();

        // Per-company record counts in the 1:1:2 proportion.
        let mut company_sizes: Vec<usize> = self
            .company_ratio
            .iter()
            .map(|&r| self.total_objects * r as usize / ratio_total as usize)
            .collect();
        let assigned: usize = company_sizes.iter().sum();
        company_sizes[num_companies - 1] += self.total_objects - assigned;

        let companies: Vec<Vec<SpatialObject>> = company_sizes
            .iter()
            .enumerate()
            .map(|(c, &size)| {
                let weights = match self.distribution {
                    Distribution::Iid => model.company_weights(c, num_companies, 1.0),
                    Distribution::CompanySkewed => {
                        model.company_weights(c, num_companies, self.skew)
                    }
                };
                (0..size)
                    .map(|_| model.sample(&weights, &mut rng))
                    .collect()
            })
            .collect();

        // Sec. 8.1 silo formation: silos round-robin across companies;
        // each company's records are split equally among its silos.
        let mut partitions: Vec<Vec<SpatialObject>> = vec![Vec::new(); self.num_silos];
        for (c, mut records) in companies.iter().cloned().enumerate() {
            records.shuffle(&mut rng);
            let my_silos: Vec<usize> = (0..self.num_silos)
                .filter(|s| s % num_companies == c % num_companies)
                .collect();
            if my_silos.is_empty() {
                // Fewer silos than companies: fold the company into silo
                // c % m instead of dropping its records.
                partitions[c % self.num_silos].extend(records);
                continue;
            }
            for (i, record) in records.into_iter().enumerate() {
                partitions[my_silos[i % my_silos.len()]].push(record);
            }
        }

        Dataset {
            bounds: model.bounds(),
            partitions,
        }
    }
}

/// A generated dataset: the federation bounds plus one partition per silo.
#[derive(Debug, Clone)]
pub struct Dataset {
    bounds: Rect,
    partitions: Vec<Vec<SpatialObject>>,
}

impl Dataset {
    /// Creates a dataset from explicit partitions (tests, custom data).
    pub fn from_partitions(bounds: Rect, partitions: Vec<Vec<SpatialObject>>) -> Self {
        Self { bounds, partitions }
    }

    /// The federation's spatial bounds.
    pub fn bounds(&self) -> Rect {
        self.bounds
    }

    /// The per-silo partitions.
    pub fn partitions(&self) -> &[Vec<SpatialObject>] {
        &self.partitions
    }

    /// Consumes the dataset, yielding the partitions.
    pub fn into_partitions(self) -> Vec<Vec<SpatialObject>> {
        self.partitions
    }

    /// Total number of objects across all partitions.
    pub fn len(&self) -> usize {
        self.partitions.iter().map(Vec::len).sum()
    }

    /// Whether the dataset holds no objects.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// A flattened copy of every object (ground-truth oracles in tests).
    pub fn all_objects(&self) -> Vec<SpatialObject> {
        self.partitions.iter().flatten().copied().collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generate_respects_total_and_silos() {
        let ds = WorkloadSpec::small().generate();
        assert_eq!(ds.len(), 30_000);
        assert_eq!(ds.partitions().len(), 3);
        assert!(!ds.is_empty());
    }

    #[test]
    fn generation_is_deterministic_per_seed() {
        let a = WorkloadSpec::small().generate();
        let b = WorkloadSpec::small().generate();
        assert_eq!(a.all_objects().len(), b.all_objects().len());
        let (ao, bo) = (a.all_objects(), b.all_objects());
        for (x, y) in ao.iter().zip(&bo) {
            assert_eq!(x, y);
        }
        let c = WorkloadSpec::small().with_seed(99).generate();
        assert_ne!(ao[0], c.all_objects()[0]);
    }

    #[test]
    fn company_ratio_shapes_silo_sizes() {
        // 3 companies (1:1:2) on 6 silos: silos 0,3 ← company 0 (25 %),
        // silos 1,4 ← company 1 (25 %), silos 2,5 ← company 2 (50 %).
        let ds = WorkloadSpec::default()
            .with_total_objects(60_000)
            .with_silos(6)
            .generate();
        let sizes: Vec<usize> = ds.partitions().iter().map(Vec::len).collect();
        assert_eq!(sizes.iter().sum::<usize>(), 60_000);
        assert_eq!(sizes[0] + sizes[3], 15_000);
        assert_eq!(sizes[1] + sizes[4], 15_000);
        assert_eq!(sizes[2] + sizes[5], 30_000);
        // Equal split within a company.
        assert!((sizes[0] as i64 - sizes[3] as i64).abs() <= 1);
        assert!((sizes[2] as i64 - sizes[5] as i64).abs() <= 1);
    }

    #[test]
    fn three_silos_map_one_to_one_with_companies() {
        let ds = WorkloadSpec::default()
            .with_total_objects(40_000)
            .with_silos(3)
            .generate();
        let sizes: Vec<usize> = ds.partitions().iter().map(Vec::len).collect();
        assert_eq!(sizes, vec![10_000, 10_000, 20_000]);
    }

    #[test]
    fn all_objects_inside_bounds() {
        let ds = WorkloadSpec::small().generate();
        for o in ds.all_objects() {
            assert!(ds.bounds().contains_point(&o.location));
        }
    }

    #[test]
    fn iid_silos_have_similar_spatial_means() {
        let ds = WorkloadSpec::small()
            .with_distribution(Distribution::Iid)
            .with_total_objects(60_000)
            .generate();
        let centroids: Vec<(f64, f64)> = ds
            .partitions()
            .iter()
            .map(|p| {
                let n = p.len() as f64;
                (
                    p.iter().map(|o| o.location.x).sum::<f64>() / n,
                    p.iter().map(|o| o.location.y).sum::<f64>() / n,
                )
            })
            .collect();
        for w in centroids.windows(2) {
            assert!(
                (w[0].0 - w[1].0).abs() < 2.0,
                "IID centroids drift: {centroids:?}"
            );
            assert!((w[0].1 - w[1].1).abs() < 2.0);
        }
    }

    #[test]
    fn skewed_silos_have_divergent_spatial_means() {
        let ds = WorkloadSpec::small().with_total_objects(60_000).generate(); // CompanySkewed by default
        let centroids: Vec<(f64, f64)> = ds
            .partitions()
            .iter()
            .map(|p| {
                let n = p.len() as f64;
                (
                    p.iter().map(|o| o.location.x).sum::<f64>() / n,
                    p.iter().map(|o| o.location.y).sum::<f64>() / n,
                )
            })
            .collect();
        let max_dx = centroids
            .iter()
            .flat_map(|a| centroids.iter().map(move |b| (a.0 - b.0).abs()))
            .fold(0.0f64, f64::max);
        assert!(max_dx > 1.0, "skewed centroids too close: {centroids:?}");
    }

    #[test]
    fn more_silos_than_multiples_still_assigns_everything() {
        // m = 7 with 3 companies: 7 % 3 ≠ 0, every record must still land.
        let ds = WorkloadSpec::default()
            .with_total_objects(21_000)
            .with_silos(7)
            .generate();
        assert_eq!(ds.len(), 21_000);
        assert!(ds.partitions().iter().all(|p| !p.is_empty()));
    }

    #[test]
    fn fewer_silos_than_companies_folds_companies() {
        let ds = WorkloadSpec::default()
            .with_total_objects(12_000)
            .with_silos(2)
            .generate();
        assert_eq!(ds.len(), 12_000);
        assert_eq!(ds.partitions().len(), 2);
    }

    #[test]
    #[should_panic(expected = "at least one silo")]
    fn zero_silos_rejected() {
        WorkloadSpec::default().with_silos(0).generate();
    }
}
