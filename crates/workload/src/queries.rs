//! FRA query generation, following the paper's recipe (Sec. 8.1):
//! "we randomly select a location from the dataset as the center of the
//! circle and vary the radius r from 1 km to 3 km … for each radius, we
//! generate a set of nQ independent range aggregation queries".

use rand::rngs::StdRng;
use rand::seq::IndexedRandom;
use rand::{Rng, SeedableRng};

use fedra_geo::{Point, Range, SpatialObject};

/// A reproducible generator of query ranges anchored at data locations.
#[derive(Debug)]
pub struct QueryGenerator {
    centers: Vec<Point>,
    rng: StdRng,
}

impl QueryGenerator {
    /// Creates a generator that picks centers from `objects`.
    ///
    /// # Panics
    /// Panics when `objects` is empty — queries need data to anchor to.
    pub fn new(objects: &[SpatialObject], seed: u64) -> Self {
        assert!(!objects.is_empty(), "query centers come from the data");
        Self {
            centers: objects.iter().map(|o| o.location).collect(),
            rng: StdRng::seed_from_u64(seed),
        }
    }

    /// One circular range of the given radius at a random data location.
    pub fn circle(&mut self, radius_km: f64) -> Range {
        let center = *self
            .centers
            .choose(&mut self.rng)
            .expect("constructor guarantees centers");
        Range::circle(center, radius_km)
    }

    /// A batch of `n` independent circular ranges (the paper's query set
    /// for one radius).
    pub fn circles(&mut self, radius_km: f64, n: usize) -> Vec<Range> {
        (0..n).map(|_| self.circle(radius_km)).collect()
    }

    /// One square range with the same area as a circle of `radius_km`
    /// (for the rectangular-range variant of Definition 2).
    pub fn square(&mut self, radius_km: f64) -> Range {
        let center = *self
            .centers
            .choose(&mut self.rng)
            .expect("constructor guarantees centers");
        let half = radius_km * std::f64::consts::PI.sqrt() / 2.0;
        Range::rect(
            Point::new(center.x - half, center.y - half),
            Point::new(center.x + half, center.y + half),
        )
    }

    /// A batch of `n` square ranges.
    pub fn squares(&mut self, radius_km: f64, n: usize) -> Vec<Range> {
        (0..n).map(|_| self.square(radius_km)).collect()
    }

    /// A random mix of circles and equal-area squares.
    pub fn mixed(&mut self, radius_km: f64, n: usize) -> Vec<Range> {
        (0..n)
            .map(|_| {
                if self.rng.random::<bool>() {
                    self.circle(radius_km)
                } else {
                    self.square(radius_km)
                }
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fedra_geo::SpatialObject;

    fn objects() -> Vec<SpatialObject> {
        (0..100)
            .map(|i| SpatialObject::at((i % 10) as f64, (i / 10) as f64, 1.0))
            .collect()
    }

    #[test]
    fn circles_are_anchored_at_data() {
        let objs = objects();
        let mut generator = QueryGenerator::new(&objs, 1);
        for q in generator.circles(2.0, 50) {
            match q {
                Range::Circle(c) => {
                    assert_eq!(c.radius, 2.0);
                    assert!(objs.iter().any(|o| o.location == c.center));
                }
                _ => panic!("expected a circle"),
            }
        }
    }

    #[test]
    fn squares_match_circle_area() {
        let objs = objects();
        let mut generator = QueryGenerator::new(&objs, 2);
        let q = generator.square(2.0);
        let circle_area = std::f64::consts::PI * 4.0;
        assert!((q.area() - circle_area).abs() < 1e-9);
    }

    #[test]
    fn generation_is_deterministic() {
        let objs = objects();
        let a: Vec<Range> = QueryGenerator::new(&objs, 3).circles(1.5, 10);
        let b: Vec<Range> = QueryGenerator::new(&objs, 3).circles(1.5, 10);
        assert_eq!(a, b);
        let c: Vec<Range> = QueryGenerator::new(&objs, 4).circles(1.5, 10);
        assert_ne!(a, c);
    }

    #[test]
    fn mixed_batches_contain_both_shapes() {
        let objs = objects();
        let qs = QueryGenerator::new(&objs, 5).mixed(1.0, 40);
        assert!(qs.iter().any(|q| matches!(q, Range::Circle(_))));
        assert!(qs.iter().any(|q| matches!(q, Range::Rect(_))));
    }

    #[test]
    #[should_panic(expected = "centers come from the data")]
    fn empty_data_is_rejected() {
        QueryGenerator::new(&[], 0);
    }
}
