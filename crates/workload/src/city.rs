//! The synthetic city model standing in for the paper's Beijing dataset.
//!
//! The paper evaluates on >1 TB of proprietary shared-mobility records
//! from three Beijing companies (ratio 1:1:2, bounding box 39.5–42.0° N ×
//! 115.5–117.2° E, measure = carried passengers). That data is not
//! publicly available, so this module generates the closest synthetic
//! equivalent: a Gaussian-mixture city — a handful of hotspot clusters of
//! varying spread plus a uniform urban background — over the *same*
//! bounding box projected to kilometres. Company skew (each company's
//! "strategical focus", Sec. 4.2.2) is modeled by company-specific mixture
//! weights. The estimators only care about spatial skew, cross-silo
//! divergence, and volume, all of which are reproduced and parameterized.

use rand::Rng;
use rand_distr::{Distribution as _, Normal};

use fedra_geo::{GeoPoint, Point, Projection, Rect, SpatialObject};

/// The paper's Beijing bounding box, projected to planar kilometres.
pub fn beijing_bounds() -> Rect {
    let proj = Projection::beijing();
    Rect::new(
        proj.project(&GeoPoint::new(39.5, 115.5)),
        proj.project(&GeoPoint::new(42.0, 117.2)),
    )
}

/// One Gaussian hotspot of the city mixture.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Hotspot {
    /// Cluster center (km).
    pub center: Point,
    /// Isotropic standard deviation (km).
    pub sigma: f64,
    /// Base mixture weight (before company skew).
    pub weight: f64,
}

/// How measure attributes are drawn.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum MeasureModel {
    /// Carried passengers: uniform integer 0..=4 (the paper's measure).
    #[default]
    Passengers,
    /// Vehicle speed in km/h: Normal(40, 12) clamped to ≥ 0 (the paper's
    /// motivating alternative measure).
    Speed,
}

/// The Gaussian-mixture city model.
#[derive(Debug, Clone)]
pub struct CityModel {
    bounds: Rect,
    hotspots: Vec<Hotspot>,
    /// Probability mass of the uniform urban background.
    background_weight: f64,
    /// The background is confined to the urban core, not the whole
    /// administrative bounding box (Beijing's box is mostly mountains).
    urban_core: Rect,
    measure: MeasureModel,
}

impl CityModel {
    /// The default Beijing-like model: six hotspots of varied density
    /// plus a 20 % uniform urban background.
    pub fn beijing() -> Self {
        let bounds = beijing_bounds();
        let hotspots = vec![
            // A dense CBD, two business districts, two residential belts,
            // one suburban hub — spreads chosen to span 1.5–9 km so the
            // 1–3 km query radii of Fig. 3 see varied local densities.
            Hotspot {
                center: Point::new(0.0, -95.0),
                sigma: 3.0,
                weight: 0.25,
            },
            Hotspot {
                center: Point::new(8.0, -88.0),
                sigma: 1.5,
                weight: 0.15,
            },
            Hotspot {
                center: Point::new(-12.0, -100.0),
                sigma: 4.0,
                weight: 0.15,
            },
            Hotspot {
                center: Point::new(20.0, -110.0),
                sigma: 6.0,
                weight: 0.10,
            },
            Hotspot {
                center: Point::new(-25.0, -80.0),
                sigma: 7.0,
                weight: 0.10,
            },
            Hotspot {
                center: Point::new(35.0, -60.0),
                sigma: 9.0,
                weight: 0.05,
            },
        ];
        let urban_core = Rect::new(Point::new(-45.0, -125.0), Point::new(55.0, -45.0));
        Self {
            bounds,
            hotspots,
            background_weight: 0.20,
            urban_core,
            measure: MeasureModel::Passengers,
        }
    }

    /// Overrides the measure model.
    pub fn with_measure(mut self, measure: MeasureModel) -> Self {
        self.measure = measure;
        self
    }

    /// The model's bounding box (the federation's shared grid bounds).
    pub fn bounds(&self) -> Rect {
        self.bounds
    }

    /// The hotspot list.
    pub fn hotspots(&self) -> &[Hotspot] {
        &self.hotspots
    }

    /// Company-specific mixture weights: company `c` of `num_companies`
    /// over-weights a contiguous run of hotspots (its "strategical
    /// focus") by `skew ≥ 1`, modelling the Non-IID case. `skew = 1`
    /// yields identical distributions (the IID case).
    pub fn company_weights(&self, company: usize, num_companies: usize, skew: f64) -> Vec<f64> {
        assert!(skew >= 1.0, "skew must be ≥ 1 (1 = IID)");
        assert!(num_companies > 0);
        let h = self.hotspots.len();
        let per = h.div_ceil(num_companies);
        let focus_start = (company % num_companies) * per;
        self.hotspots
            .iter()
            .enumerate()
            .map(|(i, spot)| {
                if i >= focus_start && i < focus_start + per {
                    spot.weight * skew
                } else {
                    spot.weight
                }
            })
            .collect()
    }

    /// Draws one spatial object using the given hotspot weights.
    pub fn sample<R: Rng + ?Sized>(&self, weights: &[f64], rng: &mut R) -> SpatialObject {
        debug_assert_eq!(weights.len(), self.hotspots.len());
        let location = loop {
            let p = self.sample_location(weights, rng);
            if self.bounds.contains_point(&p) {
                break p;
            }
        };
        SpatialObject::new(location, self.sample_measure(rng))
    }

    fn sample_location<R: Rng + ?Sized>(&self, weights: &[f64], rng: &mut R) -> Point {
        let hotspot_mass: f64 = weights.iter().sum();
        let total = hotspot_mass / (1.0 - self.background_weight) * 1.0;
        let background_mass = total * self.background_weight;
        let mut pick = rng.random_range(0.0..hotspot_mass + background_mass);
        if pick < background_mass {
            return Point::new(
                rng.random_range(self.urban_core.min.x..self.urban_core.max.x),
                rng.random_range(self.urban_core.min.y..self.urban_core.max.y),
            );
        }
        pick -= background_mass;
        for (spot, w) in self.hotspots.iter().zip(weights) {
            if pick < *w {
                let nx = Normal::new(spot.center.x, spot.sigma).expect("finite sigma");
                let ny = Normal::new(spot.center.y, spot.sigma).expect("finite sigma");
                return Point::new(nx.sample(rng), ny.sample(rng));
            }
            pick -= w;
        }
        // Floating-point tail: fall back to the last hotspot.
        let spot = self.hotspots.last().expect("at least one hotspot");
        let nx = Normal::new(spot.center.x, spot.sigma).expect("finite sigma");
        let ny = Normal::new(spot.center.y, spot.sigma).expect("finite sigma");
        Point::new(nx.sample(rng), ny.sample(rng))
    }

    fn sample_measure<R: Rng + ?Sized>(&self, rng: &mut R) -> f64 {
        match self.measure {
            MeasureModel::Passengers => rng.random_range(0..=4) as f64,
            MeasureModel::Speed => {
                let n = Normal::<f64>::new(40.0, 12.0).expect("finite sigma");
                n.sample(rng).max(0.0)
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn beijing_bounds_match_the_paper_box() {
        let b = beijing_bounds();
        // ~2.5° of latitude ≈ 278 km; ~1.7° of longitude at 40.75° N ≈ 143 km.
        assert!((b.height() - 278.0).abs() < 3.0, "height {}", b.height());
        assert!((b.width() - 143.0).abs() < 3.0, "width {}", b.width());
    }

    #[test]
    fn samples_stay_in_bounds() {
        let model = CityModel::beijing();
        let weights = model.company_weights(0, 3, 1.0);
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..5000 {
            let o = model.sample(&weights, &mut rng);
            assert!(model.bounds().contains_point(&o.location));
        }
    }

    #[test]
    fn passengers_measure_is_discrete_0_to_4() {
        let model = CityModel::beijing();
        let weights = model.company_weights(0, 3, 1.0);
        let mut rng = StdRng::seed_from_u64(2);
        let mut seen = [false; 5];
        for _ in 0..2000 {
            let m = model.sample(&weights, &mut rng).measure;
            assert_eq!(m, m.floor());
            assert!((0.0..=4.0).contains(&m));
            seen[m as usize] = true;
        }
        assert!(seen.iter().all(|s| *s), "all passenger counts appear");
    }

    #[test]
    fn speed_measure_is_continuous_nonnegative() {
        let model = CityModel::beijing().with_measure(MeasureModel::Speed);
        let weights = model.company_weights(0, 3, 1.0);
        let mut rng = StdRng::seed_from_u64(3);
        let speeds: Vec<f64> = (0..2000)
            .map(|_| model.sample(&weights, &mut rng).measure)
            .collect();
        assert!(speeds.iter().all(|s| *s >= 0.0));
        let mean = speeds.iter().sum::<f64>() / speeds.len() as f64;
        assert!((mean - 40.0).abs() < 2.0, "mean speed {mean}");
    }

    #[test]
    fn company_weights_skew_their_focus() {
        let model = CityModel::beijing();
        let base = model.company_weights(0, 3, 1.0);
        let skewed = model.company_weights(0, 3, 4.0);
        // The focus hotspots quadruple; the rest stay put.
        assert_eq!(base.len(), skewed.len());
        let boosted = skewed
            .iter()
            .zip(&base)
            .filter(|(s, b)| (**s - **b * 4.0).abs() < 1e-12)
            .count();
        assert_eq!(boosted, 2); // 6 hotspots / 3 companies
                                // Different companies focus different hotspots.
        let c0 = model.company_weights(0, 3, 4.0);
        let c1 = model.company_weights(1, 3, 4.0);
        assert_ne!(c0, c1);
    }

    #[test]
    fn skew_one_is_iid() {
        let model = CityModel::beijing();
        let c0 = model.company_weights(0, 3, 1.0);
        let c1 = model.company_weights(1, 3, 1.0);
        assert_eq!(c0, c1);
    }

    #[test]
    #[should_panic(expected = "skew")]
    fn skew_below_one_is_rejected() {
        CityModel::beijing().company_weights(0, 3, 0.5);
    }

    #[test]
    fn hotspots_concentrate_density() {
        // The CBD disk (r = 6 km around the first hotspot) must be far
        // denser than an equal-area disk in the background.
        let model = CityModel::beijing();
        let weights = model.company_weights(0, 3, 1.0);
        let mut rng = StdRng::seed_from_u64(4);
        let samples: Vec<SpatialObject> = (0..20_000)
            .map(|_| model.sample(&weights, &mut rng))
            .collect();
        let cbd = fedra_geo::Circle::new(Point::new(0.0, -95.0), 6.0);
        let sticks = fedra_geo::Circle::new(Point::new(-40.0, -50.0), 6.0);
        let in_cbd = samples
            .iter()
            .filter(|o| cbd.contains_point(&o.location))
            .count();
        let in_sticks = samples
            .iter()
            .filter(|o| sticks.contains_point(&o.location))
            .count();
        assert!(
            in_cbd > 10 * in_sticks.max(1),
            "cbd {in_cbd} vs background {in_sticks}"
        );
    }
}
