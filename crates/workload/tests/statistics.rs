//! Statistical validation of the synthetic workload generator: the
//! properties the estimators' accuracy depends on must actually hold in
//! generated data, not just by construction on paper.

use fedra_workload::{Distribution, QueryGenerator, WorkloadSpec};

/// Coarse spatial histogram for divergence measurements.
fn cell_histogram(
    objects: &[fedra_geo::SpatialObject],
    bounds: fedra_geo::Rect,
    n: usize,
) -> Vec<f64> {
    let mut h = vec![0.0; n * n];
    for o in objects {
        let ix = (((o.location.x - bounds.min.x) / bounds.width() * n as f64) as usize).min(n - 1);
        let iy = (((o.location.y - bounds.min.y) / bounds.height() * n as f64) as usize).min(n - 1);
        h[iy * n + ix] += 1.0;
    }
    let total: f64 = h.iter().sum();
    if total > 0.0 {
        for v in &mut h {
            *v /= total;
        }
    }
    h
}

/// Total-variation distance between two cell histograms.
fn tv_distance(a: &[f64], b: &[f64]) -> f64 {
    a.iter().zip(b).map(|(x, y)| (x - y).abs()).sum::<f64>() / 2.0
}

#[test]
fn iid_partitions_have_low_pairwise_divergence() {
    let ds = WorkloadSpec::default()
        .with_total_objects(90_000)
        .with_silos(3)
        .with_distribution(Distribution::Iid)
        .generate();
    let hists: Vec<Vec<f64>> = ds
        .partitions()
        .iter()
        .map(|p| cell_histogram(p, ds.bounds(), 12))
        .collect();
    for i in 0..hists.len() {
        for j in i + 1..hists.len() {
            let d = tv_distance(&hists[i], &hists[j]);
            assert!(d < 0.1, "IID silos {i},{j} diverge: TV = {d}");
        }
    }
}

#[test]
fn skewed_partitions_have_high_cross_company_divergence() {
    let ds = WorkloadSpec::default()
        .with_total_objects(90_000)
        .with_silos(3) // one silo per company
        .generate();
    let hists: Vec<Vec<f64>> = ds
        .partitions()
        .iter()
        .map(|p| cell_histogram(p, ds.bounds(), 12))
        .collect();
    let mut max_tv = 0.0f64;
    for i in 0..hists.len() {
        for j in i + 1..hists.len() {
            max_tv = max_tv.max(tv_distance(&hists[i], &hists[j]));
        }
    }
    assert!(
        max_tv > 0.15,
        "company-skewed silos too similar: max TV = {max_tv}"
    );
}

#[test]
fn same_company_silos_remain_iid_within_company() {
    // m = 6 with 3 companies: silos 0 and 3 hold halves of company 0's
    // records — identically distributed by construction.
    let ds = WorkloadSpec::default()
        .with_total_objects(120_000)
        .with_silos(6)
        .generate();
    let h0 = cell_histogram(&ds.partitions()[0], ds.bounds(), 12);
    let h3 = cell_histogram(&ds.partitions()[3], ds.bounds(), 12);
    let within = tv_distance(&h0, &h3);
    let h1 = cell_histogram(&ds.partitions()[1], ds.bounds(), 12);
    let across = tv_distance(&h0, &h1);
    assert!(
        within < across,
        "within-company divergence ({within}) should undercut cross-company ({across})"
    );
    assert!(within < 0.1, "within-company TV too high: {within}");
}

#[test]
fn measure_distribution_is_uniform_passengers() {
    let ds = WorkloadSpec::small().generate();
    let mut counts = [0usize; 5];
    for o in ds.all_objects() {
        counts[o.measure as usize] += 1;
    }
    let expected = ds.len() as f64 / 5.0;
    for (v, &c) in counts.iter().enumerate() {
        let rel = (c as f64 - expected).abs() / expected;
        assert!(
            rel < 0.1,
            "passenger value {v} count {c} vs expected {expected}"
        );
    }
}

#[test]
fn query_radii_land_in_dense_areas() {
    // Data-anchored query centers must mostly produce non-empty results —
    // a generator that queried empty desert would make every MRE trivial.
    let ds = WorkloadSpec::default()
        .with_total_objects(40_000)
        .with_silos(3)
        .generate();
    let all = ds.all_objects();
    let mut generator = QueryGenerator::new(&all, 5);
    let mut nonempty = 0;
    let n = 100;
    for q in generator.circles(2.0, n) {
        if all.iter().any(|o| q.contains_point(&o.location)) {
            nonempty += 1;
        }
    }
    assert!(
        nonempty == n,
        "every data-anchored query hits its own anchor"
    );
    // And the hit counts should be substantial for most queries.
    let mut generator = QueryGenerator::new(&all, 6);
    let mut substantial = 0;
    for q in generator.circles(2.0, n) {
        let hits = all.iter().filter(|o| q.contains_point(&o.location)).count();
        if hits >= 10 {
            substantial += 1;
        }
    }
    assert!(
        substantial > n * 3 / 4,
        "only {substantial}/{n} queries found ≥10 objects"
    );
}

#[test]
fn dataset_scales_preserve_shape() {
    // Doubling |P| should double cell occupancy roughly uniformly, not
    // shift the distribution.
    let small = WorkloadSpec::default()
        .with_total_objects(30_000)
        .with_silos(3)
        .generate();
    let large = WorkloadSpec::default()
        .with_total_objects(60_000)
        .with_silos(3)
        .generate();
    let hs = cell_histogram(&small.all_objects(), small.bounds(), 10);
    let hl = cell_histogram(&large.all_objects(), large.bounds(), 10);
    assert!(tv_distance(&hs, &hl) < 0.05);
}
