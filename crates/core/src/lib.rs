//! FRA query algorithms: the paper's contribution, end to end.
//!
//! Six algorithms over a [`fedra_federation::Federation`], all behind the
//! [`FraAlgorithm`] trait:
//!
//! | Algorithm | Paper | Comm / query | Accuracy |
//! |---|---|---|---|
//! | [`Exact`] | Sec. 8.1 baseline | m rounds | exact |
//! | [`Opta`] | Sec. 8.1 baseline | m rounds | worst of the six |
//! | [`IidEst`] | Alg. 2 | 1 round, O(1) bytes | Theorem 1 |
//! | [`IidEstLsr`] | Alg. 2 + Alg. 6 | 1 round, O(1) bytes | Theorem 2 |
//! | [`NonIidEst`] | Alg. 3 | 1 round, O(√|g₀|) bytes | Theorem 3 |
//! | [`NonIidEstLsr`] | Alg. 3 + Alg. 6 | 1 round, O(√|g₀|) bytes | Theorem 4 |
//!
//! [`framework::QueryEngine`] is the Alg. 4 batch executor (parallel
//! multi-query processing), [`scheduler::QueryScheduler`] serves
//! concurrent clients with cross-query frame coalescing and admission
//! control, and [`theory`] exposes the Sec. 6 guarantees as computable
//! bounds.

#![forbid(unsafe_code)]
#![deny(missing_docs)]

mod algorithm;
mod cache;
mod exact;
pub mod framework;
pub mod helpers;
mod multi;
mod opta;
mod planner;
mod query;
mod sampling;
pub mod scheduler;
pub mod sql;
pub mod theory;

pub use algorithm::{drive_planned, AccuracyParams, FraAlgorithm, QueryPlan, RemotePlan};
#[allow(deprecated)]
pub use cache::CachedAlgorithm;
pub use cache::{AnswerCache, CacheAnswer, CacheConfig, CachePolicy, CacheSource, CacheStats};
pub use exact::{Exact, ExactSequential};
pub use framework::{BatchResult, QueryEngine};
pub use multi::MultiSiloEst;
pub use opta::Opta;
pub use planner::{AdaptivePlanner, PlanDecision, PlannerPolicy};
pub use query::{Coverage, FraError, FraQuery, QueryResult};
pub use sampling::{IidEst, IidEstLsr, NonIidEst, NonIidEstLsr};
pub use scheduler::{ClassPolicy, QueryScheduler, QueryTicket, SchedulerConfig, SubmitError};
