//! Result caching for hot queries (extension beyond the paper).
//!
//! The paper's motivating workloads repeat themselves: the same "bikes
//! within 2 km of Zhongguancun station" question arrives many times a
//! minute during rush hour. [`CachedAlgorithm`] wraps any
//! [`FraAlgorithm`] with a bounded, time-aware memo:
//!
//! * keys are the *exact* query (range bits + function), so two queries
//!   only share an entry when they are byte-identical;
//! * entries expire after a TTL — federated data is fleet telemetry, and
//!   a stale count is worse than a slow one past some age;
//! * capacity is bounded with least-recently-used eviction;
//! * the cache is thread-safe and works under the Alg. 4 batch engine.
//!
//! Caching changes the *freshness* semantics, never the accuracy ones:
//! a hit returns a result the wrapped algorithm produced within the TTL.

use std::collections::HashMap;
use std::time::{Duration, Instant};

use parking_lot::Mutex;

use fedra_federation::Federation;
use fedra_geo::Range;
use fedra_index::AggFunc;
use fedra_obs::ObsContext;

use crate::algorithm::FraAlgorithm;
use crate::query::{FraError, FraQuery, QueryResult};

/// Cache configuration.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CacheConfig {
    /// Maximum number of cached results.
    pub capacity: usize,
    /// Maximum age before an entry stops being served.
    pub ttl: Duration,
}

impl Default for CacheConfig {
    fn default() -> Self {
        Self {
            capacity: 4096,
            ttl: Duration::from_secs(30),
        }
    }
}

/// Hit/miss counters (cumulative).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct CacheStats {
    /// Queries answered from the cache.
    pub hits: u64,
    /// Queries that went through to the wrapped algorithm.
    pub misses: u64,
    /// Entries evicted for capacity.
    pub evictions: u64,
    /// Entries refreshed after TTL expiry.
    pub expirations: u64,
}

impl CacheStats {
    /// Hit rate in [0, 1]; 0 when nothing was asked.
    pub fn hit_rate(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            self.hits as f64 / total as f64
        }
    }
}

/// Bit-exact cache key for a query.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
struct QueryKey {
    kind: u8,
    a: u64,
    b: u64,
    c: u64,
    d: u64,
    func: AggFunc,
}

impl QueryKey {
    fn of(query: &FraQuery) -> Self {
        match query.range {
            Range::Circle(circle) => Self {
                kind: 0,
                a: circle.center.x.to_bits(),
                b: circle.center.y.to_bits(),
                c: circle.radius.to_bits(),
                d: 0,
                func: query.func,
            },
            Range::Rect(rect) => Self {
                kind: 1,
                a: rect.min.x.to_bits(),
                b: rect.min.y.to_bits(),
                c: rect.max.x.to_bits(),
                d: rect.max.y.to_bits(),
                func: query.func,
            },
        }
    }
}

struct Entry {
    result: QueryResult,
    inserted: Instant,
    /// Monotone counter standing in for "recency" (LRU without a linked
    /// list: eviction scans for the minimum — capacity is modest and
    /// eviction rare, so O(n) eviction beats the bookkeeping).
    last_used: u64,
}

struct CacheState {
    map: HashMap<QueryKey, Entry>,
    tick: u64,
    stats: CacheStats,
}

/// A caching wrapper around any FRA algorithm.
pub struct CachedAlgorithm<A> {
    inner: A,
    config: CacheConfig,
    state: Mutex<CacheState>,
}

impl<A: FraAlgorithm> CachedAlgorithm<A> {
    /// Wraps `inner` with the given cache configuration.
    pub fn new(inner: A, config: CacheConfig) -> Self {
        assert!(config.capacity > 0, "cache capacity must be positive");
        Self {
            inner,
            config,
            state: Mutex::new(CacheState {
                map: HashMap::new(),
                tick: 0,
                stats: CacheStats::default(),
            }),
        }
    }

    /// Wraps with defaults (4096 entries, 30 s TTL).
    pub fn with_defaults(inner: A) -> Self {
        Self::new(inner, CacheConfig::default())
    }

    /// The wrapped algorithm.
    pub fn inner(&self) -> &A {
        &self.inner
    }

    /// Cumulative statistics.
    pub fn stats(&self) -> CacheStats {
        self.state.lock().stats
    }

    /// Current number of live entries.
    pub fn len(&self) -> usize {
        self.state.lock().map.len()
    }

    /// Whether the cache holds no entries.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Drops every entry (e.g. after a known fleet update).
    pub fn invalidate_all(&self) {
        self.state.lock().map.clear();
    }
}

impl<A: FraAlgorithm> FraAlgorithm for CachedAlgorithm<A> {
    fn name(&self) -> &'static str {
        // The cache is transparent: report the wrapped algorithm.
        self.inner.name()
    }

    fn try_execute_with(
        &self,
        federation: &Federation,
        query: &FraQuery,
        obs: &ObsContext,
    ) -> Result<QueryResult, FraError> {
        let key = QueryKey::of(query);
        let now = Instant::now();
        {
            let mut state = self.state.lock();
            state.tick += 1;
            let tick = state.tick;
            let mut hit = None;
            let mut expired = false;
            if let Some(entry) = state.map.get_mut(&key) {
                if now.duration_since(entry.inserted) <= self.config.ttl {
                    entry.last_used = tick;
                    hit = Some(entry.result);
                } else {
                    expired = true;
                }
            }
            if let Some(result) = hit {
                state.stats.hits += 1;
                obs.inc("fedra_cache_hits_total");
                return Ok(result);
            }
            if expired {
                state.map.remove(&key);
                state.stats.expirations += 1;
            }
            state.stats.misses += 1;
        } // drop the lock across the (slow) federated query
        obs.inc("fedra_cache_misses_total");

        let result = self.inner.try_execute_with(federation, query, obs)?;

        let mut state = self.state.lock();
        if state.map.len() >= self.config.capacity && !state.map.contains_key(&key) {
            // Evict the least recently used entry.
            if let Some(victim) = state
                .map
                .iter()
                .min_by_key(|(_, e)| e.last_used)
                .map(|(k, _)| *k)
            {
                state.map.remove(&victim);
                state.stats.evictions += 1;
            }
        }
        let tick = state.tick;
        state.map.insert(
            key,
            Entry {
                result,
                inserted: now,
                last_used: tick,
            },
        );
        Ok(result)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::exact::Exact;
    use crate::sampling::NonIidEst;
    use fedra_federation::FederationBuilder;
    use fedra_geo::{Point, Rect, SpatialObject};
    use fedra_index::histogram::MinSkewConfig;

    fn federation() -> Federation {
        let bounds = Rect::new(Point::new(0.0, 0.0), Point::new(100.0, 100.0));
        let partitions: Vec<Vec<SpatialObject>> = (0..3)
            .map(|k| {
                (0..500)
                    .map(|i| {
                        SpatialObject::at(
                            (i % 25) as f64 * 4.0,
                            (i / 25) as f64 * 5.0,
                            k as f64 + 1.0,
                        )
                    })
                    .collect()
            })
            .collect();
        FederationBuilder::new(bounds)
            .grid_cell_len(10.0)
            .histogram_config(MinSkewConfig {
                resolution: 8,
                budget: 8,
            })
            .build(partitions)
    }

    fn q(x: f64) -> FraQuery {
        FraQuery::circle(Point::new(x, 50.0), 10.0, AggFunc::Count)
    }

    #[test]
    fn repeated_queries_hit_and_skip_communication() {
        let fed = federation();
        let cached = CachedAlgorithm::with_defaults(Exact::new());
        let first = cached.execute(&fed, &q(50.0));
        fed.reset_query_comm();
        for _ in 0..10 {
            let again = cached.execute(&fed, &q(50.0));
            assert_eq!(again.value, first.value);
        }
        assert_eq!(fed.query_comm().rounds, 0, "hits must not touch silos");
        let stats = cached.stats();
        assert_eq!(stats.hits, 10);
        assert_eq!(stats.misses, 1);
        assert!(stats.hit_rate() > 0.9);
    }

    #[test]
    fn different_queries_do_not_collide() {
        let fed = federation();
        let cached = CachedAlgorithm::with_defaults(Exact::new());
        let a = cached.execute(&fed, &q(30.0));
        let b = cached.execute(&fed, &q(70.0));
        // Same radius/function, different centers — separate entries.
        assert_eq!(cached.len(), 2);
        let a2 = cached.execute(&fed, &q(30.0));
        assert_eq!(a.value, a2.value);
        let _ = b;
        // Same center, different function — also separate.
        let c = FraQuery::circle(Point::new(30.0, 50.0), 10.0, AggFunc::Sum);
        cached.execute(&fed, &c);
        assert_eq!(cached.len(), 3);
    }

    #[test]
    fn ttl_expiry_refreshes_entries() {
        let fed = federation();
        let cached = CachedAlgorithm::new(
            Exact::new(),
            CacheConfig {
                capacity: 16,
                ttl: Duration::from_millis(0), // everything expires at once
            },
        );
        cached.execute(&fed, &q(50.0));
        cached.execute(&fed, &q(50.0));
        let stats = cached.stats();
        assert_eq!(stats.hits, 0);
        assert_eq!(stats.misses, 2);
        assert_eq!(stats.expirations, 1);
    }

    #[test]
    fn lru_eviction_respects_capacity() {
        let fed = federation();
        let cached = CachedAlgorithm::new(
            Exact::new(),
            CacheConfig {
                capacity: 2,
                ttl: Duration::from_secs(60),
            },
        );
        cached.execute(&fed, &q(10.0)); // A
        cached.execute(&fed, &q(20.0)); // B
        cached.execute(&fed, &q(10.0)); // touch A → B is LRU
        cached.execute(&fed, &q(30.0)); // C evicts B
        assert_eq!(cached.len(), 2);
        assert_eq!(cached.stats().evictions, 1);
        fed.reset_query_comm();
        cached.execute(&fed, &q(10.0)); // still cached
        assert_eq!(fed.query_comm().rounds, 0);
        cached.execute(&fed, &q(20.0)); // evicted → miss → silo contact
        assert!(fed.query_comm().rounds > 0);
    }

    #[test]
    fn invalidate_all_clears_entries() {
        let fed = federation();
        let cached = CachedAlgorithm::with_defaults(NonIidEst::new(7));
        cached.execute(&fed, &q(40.0));
        assert!(!cached.is_empty());
        cached.invalidate_all();
        assert!(cached.is_empty());
        fed.reset_query_comm();
        cached.execute(&fed, &q(40.0));
        assert!(fed.query_comm().rounds > 0, "post-invalidation is a miss");
    }

    #[test]
    fn cache_works_under_the_batch_engine() {
        let fed = federation();
        let cached = CachedAlgorithm::with_defaults(Exact::new());
        // A burst with heavy repetition: 5 hot stations × 20 asks.
        let queries: Vec<FraQuery> = (0..100).map(|i| q((i % 5) as f64 * 10.0 + 10.0)).collect();
        let engine = crate::framework::QueryEngine::with_workers(&cached, 4);
        let batch = engine.execute_batch(&fed, &queries);
        assert_eq!(batch.failures(), 0);
        let stats = cached.stats();
        assert_eq!(stats.hits + stats.misses, 100);
        // At least the non-first ask of each station hits (racing workers
        // may duplicate a few first asks).
        assert!(stats.hits >= 90, "hits {}", stats.hits);
        // All answers for one station agree.
        let station0: Vec<f64> = queries
            .iter()
            .zip(batch.results.iter())
            .filter(|(qq, _)| qq.range == q(10.0).range)
            .map(|(_, r)| r.as_ref().unwrap().value)
            .collect();
        assert!(station0.windows(2).all(|w| w[0] == w[1]));
    }

    #[test]
    #[should_panic(expected = "capacity")]
    fn zero_capacity_rejected() {
        CachedAlgorithm::new(
            Exact::new(),
            CacheConfig {
                capacity: 0,
                ttl: Duration::from_secs(1),
            },
        );
    }
}
