//! ε-aware answer caching for hot queries (extension beyond the paper).
//!
//! The paper's motivating workloads repeat themselves: the same "bikes
//! within 2 km of Zhongguancun station" question arrives many times a
//! minute during rush hour, and a dashboard's city-wide tile refresh asks
//! overlapping rectangles forever. [`AnswerCache`] wraps any
//! [`FraAlgorithm`] with a bounded, time-aware memo keyed *semantically*:
//!
//! * a cached answer `(R₁, f, ε₁)` serves a later query `(R₂, f, ε₂)`
//!   when `R₂ == R₁` (bit-exact) and `ε₁ ≤ ε₂` — the ε-containment rule
//!   of [`crate::theory::epsilon_serves`];
//! * for the *linear* aggregates (COUNT/SUM/SUM_SQR) a rectangle `R₂` is
//!   also served by **containment decomposition**: when fresh cached
//!   fragments tile `R₂` exactly (pairwise interior-disjoint, union
//!   area == area(R₂)), their sum answers `R₂` with computed bound
//!   `max εᵢ` ([`crate::theory::containment_epsilon`]) — never assumed;
//! * entries expire after a TTL — federated data is fleet telemetry, and
//!   a stale count is worse than a slow one past some age. A decomposed
//!   answer inherits the *oldest* fragment's age, so reuse can only
//!   tighten freshness, never launder staleness;
//! * capacity is bounded with least-recently-used eviction;
//! * the cache is thread-safe and works under the Alg. 4 batch engine;
//! * every hit/miss/eviction/expiration and the serving level
//!   (exact vs decomposed) is counted in the cache's own
//!   [`MetricsRegistry`] and mirrored into the per-call [`ObsContext`].
//!
//! The default [`CachePolicy`] is the **degenerate mode**: producer ε = 0
//! and containment off, which is byte-identical-key caching — exactly the
//! behavior of the old `CachedAlgorithm` (kept as a deprecated alias).
//!
//! Caching changes the *freshness* semantics; the accuracy semantics are
//! explicit: a served answer's error bound is computed from the producer
//! bounds of what it was assembled from, and serving is refused whenever
//! that bound exceeds the requested ε.

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use parking_lot::RwLock;

use fedra_federation::Federation;
use fedra_geo::{Range, Rect};
use fedra_index::AggFunc;
use fedra_obs::metrics::Counter;
use fedra_obs::{MetricsRegistry, ObsContext};

use crate::algorithm::FraAlgorithm;
use crate::query::{FraError, FraQuery, QueryResult};
use crate::theory;

/// Cache configuration (bounds and freshness).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CacheConfig {
    /// Maximum number of cached results.
    pub capacity: usize,
    /// Maximum age before an entry stops being served.
    pub ttl: Duration,
}

impl Default for CacheConfig {
    fn default() -> Self {
        Self {
            capacity: 4096,
            ttl: Duration::from_secs(30),
        }
    }
}

/// Accuracy policy of the cache: what ε freshly produced entries carry
/// and whether containment decomposition is attempted.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CachePolicy {
    /// Relative-error bound ε₁ stamped on entries produced by the wrapped
    /// algorithm. `0.0` (the default) is the exact/degenerate mode; a
    /// cache over a sampling estimator should set the estimator's ε.
    pub producer_epsilon: f64,
    /// Attempt containment decomposition for COUNT/SUM/SUM_SQR rectangle
    /// queries. Off by default so the degenerate mode stays byte-exact.
    pub containment: bool,
}

impl Default for CachePolicy {
    fn default() -> Self {
        Self {
            producer_epsilon: 0.0,
            containment: false,
        }
    }
}

/// Hit/miss counters (cumulative), assembled from the cache's registry.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct CacheStats {
    /// Queries answered from the cache (exact + decomposed).
    pub hits: u64,
    /// Queries that went through to the wrapped algorithm.
    pub misses: u64,
    /// Entries evicted for capacity.
    pub evictions: u64,
    /// Entries refreshed after TTL expiry.
    pub expirations: u64,
    /// Hits served by containment decomposition (subset of `hits`).
    pub decomposed: u64,
}

impl CacheStats {
    /// Hit rate in [0, 1]; 0 when nothing was asked.
    pub fn hit_rate(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            self.hits as f64 / total as f64
        }
    }
}

/// How a [`CacheAnswer`] was produced.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CacheSource {
    /// The wrapped algorithm ran (and the result was inserted).
    Miss,
    /// Served from a bit-identical range with a sufficient ε.
    ExactHit,
    /// Assembled from disjoint cached fragments tiling the range.
    DecomposedHit,
}

/// A cache-served answer with its computed accuracy bound.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CacheAnswer {
    /// The answer itself.
    pub result: QueryResult,
    /// The relative-error bound the answer carries: the producer ε on a
    /// miss or exact hit, `max εᵢ` over fragments on a decomposed hit.
    pub epsilon_bound: f64,
    /// Where the answer came from.
    pub source: CacheSource,
}

/// Bit-exact cache key for a query.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
struct QueryKey {
    kind: u8,
    a: u64,
    b: u64,
    c: u64,
    d: u64,
    func: AggFunc,
}

impl QueryKey {
    fn of(query: &FraQuery) -> Self {
        match query.range {
            Range::Circle(circle) => Self {
                kind: 0,
                a: circle.center.x.to_bits(),
                b: circle.center.y.to_bits(),
                c: circle.radius.to_bits(),
                d: 0,
                func: query.func,
            },
            Range::Rect(rect) => Self {
                kind: 1,
                a: rect.min.x.to_bits(),
                b: rect.min.y.to_bits(),
                c: rect.max.x.to_bits(),
                d: rect.max.y.to_bits(),
                func: query.func,
            },
        }
    }

    /// Total order over keys for deterministic tie-breaking (eviction,
    /// fragment ordering). Hash-map iteration order must never decide
    /// anything observable; wherever map order could reach a result, the
    /// decision is settled by this key order instead.
    fn sort_key(&self) -> (u8, u64, u64, u64, u64, u8) {
        (self.kind, self.a, self.b, self.c, self.d, self.func as u8)
    }
}

/// Cheap fixed-width mixer for [`QueryKey`]: multiply-xor-rotate per
/// word with a splitmix64 finisher. The default SipHash costs more than
/// the rest of a cache probe combined on these 41-byte keys; keys are
/// built from our own query geometry (not untrusted input), so a
/// non-DoS-hardened hash is the right trade.
#[derive(Debug, Default)]
struct KeyHasher(u64);

impl std::hash::Hasher for KeyHasher {
    fn finish(&self) -> u64 {
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }
    fn write(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.write_u64(u64::from(b));
        }
    }
    fn write_u8(&mut self, i: u8) {
        self.write_u64(u64::from(i));
    }
    fn write_u32(&mut self, i: u32) {
        self.write_u64(u64::from(i));
    }
    fn write_u64(&mut self, i: u64) {
        self.0 = (self.0 ^ i)
            .wrapping_mul(0x9e37_79b9_7f4a_7c15)
            .rotate_left(23);
    }
    fn write_usize(&mut self, i: usize) {
        self.write_u64(i as u64);
    }
}

#[derive(Debug, Clone, Default)]
struct KeyHashBuilder;

impl std::hash::BuildHasher for KeyHashBuilder {
    type Hasher = KeyHasher;
    fn build_hasher(&self) -> KeyHasher {
        KeyHasher::default()
    }
}

struct Entry {
    range: Range,
    func: AggFunc,
    result: QueryResult,
    /// The relative-error bound this entry's value carries.
    epsilon: f64,
    inserted: Instant,
    /// Monotone counter standing in for "recency" (LRU without a linked
    /// list: eviction scans for the minimum — capacity is modest and
    /// eviction rare, so O(n) eviction beats the bookkeeping). Atomic so
    /// a *hit* can refresh recency under the shared read lock; LRU order
    /// tolerates the relaxed racing (two concurrent hits both count as
    /// recent, whichever tick lands last).
    last_used: AtomicU64,
}

/// The cache's entry map. Guarded by a reader-writer lock: hits — the
/// hot path under concurrent serving — share the read side, while only
/// inserts, evictions and expiry removals take the exclusive write side.
type CacheMap = HashMap<QueryKey, Entry, KeyHashBuilder>;

/// The cache's own metric handles (names follow the PR 4/5 conventions).
struct CacheMetrics {
    registry: Arc<MetricsRegistry>,
    hits: Arc<Counter>,
    misses: Arc<Counter>,
    evictions: Arc<Counter>,
    expirations: Arc<Counter>,
    level_exact: Arc<Counter>,
    level_decomposed: Arc<Counter>,
}

impl CacheMetrics {
    fn new() -> Self {
        let registry = Arc::new(MetricsRegistry::new());
        Self {
            hits: registry.counter("fedra_cache_hits_total"),
            misses: registry.counter("fedra_cache_misses_total"),
            evictions: registry.counter("fedra_cache_evictions_total"),
            expirations: registry.counter("fedra_cache_expirations_total"),
            level_exact: registry.counter("fedra_cache_level_served_total{level=\"exact\"}"),
            level_decomposed: registry
                .counter("fedra_cache_level_served_total{level=\"decomposed\"}"),
            registry,
        }
    }
}

/// An ε-aware caching wrapper around any FRA algorithm.
pub struct AnswerCache<A> {
    inner: A,
    config: CacheConfig,
    policy: CachePolicy,
    state: RwLock<CacheMap>,
    /// Probe counter feeding `Entry::last_used`; outside the lock so the
    /// hit path never needs exclusive access.
    tick: AtomicU64,
    metrics: CacheMetrics,
}

/// Deprecated alias for the old exact-key cache: [`AnswerCache`] with the
/// default (degenerate) policy behaves identically.
#[deprecated(note = "use AnswerCache; the default CachePolicy is the old exact-key behavior")]
pub type CachedAlgorithm<A> = AnswerCache<A>;

impl<A: FraAlgorithm> AnswerCache<A> {
    /// Wraps `inner` with the given bounds and the degenerate (exact-key)
    /// policy.
    pub fn new(inner: A, config: CacheConfig) -> Self {
        Self::with_policy(inner, config, CachePolicy::default())
    }

    /// Wraps `inner` with explicit accuracy policy.
    pub fn with_policy(inner: A, config: CacheConfig, policy: CachePolicy) -> Self {
        assert!(config.capacity > 0, "cache capacity must be positive");
        assert!(
            policy.producer_epsilon >= 0.0 && policy.producer_epsilon.is_finite(),
            "producer epsilon must be finite and non-negative"
        );
        Self {
            inner,
            config,
            policy,
            state: RwLock::new(HashMap::with_hasher(KeyHashBuilder)),
            tick: AtomicU64::new(0),
            metrics: CacheMetrics::new(),
        }
    }

    /// Wraps with defaults (4096 entries, 30 s TTL, degenerate policy).
    pub fn with_defaults(inner: A) -> Self {
        Self::new(inner, CacheConfig::default())
    }

    /// The wrapped algorithm.
    pub fn inner(&self) -> &A {
        &self.inner
    }

    /// The accuracy policy.
    pub fn policy(&self) -> CachePolicy {
        self.policy
    }

    /// The bounds/freshness configuration.
    pub fn config(&self) -> CacheConfig {
        self.config
    }

    /// The cache's metric registry (`fedra_cache_*` counters).
    pub fn metrics(&self) -> Arc<MetricsRegistry> {
        Arc::clone(&self.metrics.registry)
    }

    /// Cumulative statistics, assembled from the registry counters.
    pub fn stats(&self) -> CacheStats {
        let m = &self.metrics;
        CacheStats {
            hits: m.hits.get(),
            misses: m.misses.get(),
            evictions: m.evictions.get(),
            expirations: m.expirations.get(),
            decomposed: m.level_decomposed.get(),
        }
    }

    /// Current number of live entries.
    pub fn len(&self) -> usize {
        self.state.read().len()
    }

    /// Whether the cache holds no entries.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Drops every entry (e.g. after a known fleet update).
    pub fn invalidate_all(&self) {
        self.state.write().clear();
    }

    /// Executes with an explicit requested error budget ε₂, returning the
    /// answer together with its computed bound and provenance.
    ///
    /// Serving discipline: a cached answer is returned only when its own
    /// bound satisfies `ε₁ ≤ ε₂` ([`theory::epsilon_serves`]); a
    /// decomposed answer only when `max εᵢ ≤ ε₂`. A miss runs the wrapped
    /// algorithm and the answer carries the policy's producer ε — if that
    /// exceeds ε₂ the caller asked this stack for more accuracy than it
    /// is configured to give, which no cache decision can fix.
    pub fn try_execute_with_epsilon(
        &self,
        federation: &Federation,
        query: &FraQuery,
        epsilon: f64,
        obs: &ObsContext,
    ) -> Result<CacheAnswer, FraError> {
        assert!(
            epsilon >= 0.0 && epsilon.is_finite(),
            "requested epsilon must be finite and non-negative"
        );
        let key = QueryKey::of(query);
        // The TTL is wall-clock by design; expiry only picks between
        // serving a cached answer and recomputing the identical bits,
        // never the answer's value.
        // fedra-lint: allow(determinism-discipline)
        let now = Instant::now();
        let tick = self.tick.fetch_add(1, Ordering::Relaxed) + 1;

        // 1. Exact-range probe under the ε-containment rule. Hits run
        //    entirely under the shared read lock — recency is refreshed
        //    through the entry's atomic — so concurrent hits never
        //    serialize on each other.
        {
            let state = self.state.read();
            if let Some(entry) = state.get(&key) {
                if now.duration_since(entry.inserted) > self.config.ttl {
                    // Expiry is lazy: counted at detection, but the stale
                    // entry is left for the miss-path insert to overwrite
                    // (or for LRU eviction) rather than paying a separate
                    // write-lock removal on what is already the slow path.
                    // Decomposition and serving both re-check the TTL, so
                    // a lingering stale entry can never be served.
                    self.metrics.expirations.inc();
                } else if theory::epsilon_serves(entry.epsilon, epsilon) {
                    entry.last_used.store(tick, Ordering::Relaxed);
                    let (result, bound) = (entry.result, entry.epsilon);
                    drop(state);
                    self.metrics.hits.inc();
                    self.metrics.level_exact.inc();
                    obs.inc("fedra_cache_hits_total");
                    obs.inc("fedra_cache_level_served_total{level=\"exact\"}");
                    return Ok(CacheAnswer {
                        result,
                        epsilon_bound: bound,
                        source: CacheSource::ExactHit,
                    });
                }
                // Fresh but too loose: keep the entry (a looser later
                // query may still use it), treat this probe as a miss.
            }
        }

        // 2. Containment decomposition for linear aggregates over
        //    rectangles: a fresh disjoint tiling of R₂ answers it with
        //    bound max εᵢ. The search runs under the read lock; only the
        //    memoization insert takes the write side.
        if self.policy.containment {
            let decomposition = {
                let state = self.state.read();
                let found = self.decompose(&state, query, epsilon, now);
                if let Some((_, _, _, fragments)) = &found {
                    for frag_key in fragments {
                        if let Some(entry) = state.get(frag_key) {
                            entry.last_used.store(tick, Ordering::Relaxed);
                        }
                    }
                }
                found
            };
            if let Some((aggregate, bound, oldest, _)) = decomposition {
                let result = QueryResult::from_aggregate(aggregate, query.func);
                // Memoize the assembly so repeats are exact hits; it
                // ages from its *oldest* fragment, never fresher.
                let mut state = self.state.write();
                Self::insert_bounded(
                    &mut state,
                    &self.metrics,
                    self.config.capacity,
                    key,
                    Entry {
                        range: query.range,
                        func: query.func,
                        result,
                        epsilon: bound,
                        inserted: oldest,
                        last_used: AtomicU64::new(tick),
                    },
                );
                drop(state);
                self.metrics.hits.inc();
                self.metrics.level_decomposed.inc();
                obs.inc("fedra_cache_hits_total");
                obs.inc("fedra_cache_level_served_total{level=\"decomposed\"}");
                return Ok(CacheAnswer {
                    result,
                    epsilon_bound: bound,
                    source: CacheSource::DecomposedHit,
                });
            }
        }

        self.metrics.misses.inc();
        obs.inc("fedra_cache_misses_total");

        // No lock is held across the (slow) federated query.
        let result = self.inner.try_execute_with(federation, query, obs)?;

        let mut state = self.state.write();
        Self::insert_bounded(
            &mut state,
            &self.metrics,
            self.config.capacity,
            key,
            Entry {
                range: query.range,
                func: query.func,
                result,
                epsilon: self.policy.producer_epsilon,
                inserted: now,
                last_used: AtomicU64::new(tick),
            },
        );
        Ok(CacheAnswer {
            result,
            epsilon_bound: self.policy.producer_epsilon,
            source: CacheSource::Miss,
        })
    }

    /// Attempts a containment decomposition of `query.range` from fresh
    /// cached fragments. Returns the summed aggregate, its computed
    /// bound, the oldest fragment's insertion time, and the fragment
    /// keys.
    ///
    /// Only the linear aggregates decompose: COUNT/SUM/SUM_SQR of a
    /// disjoint union is the sum of the parts. AVG/STDEV are ratios and
    /// are never assembled. Candidate fragments must be rectangles fully
    /// inside `R₂` with a sufficient ε; a greedy sweep in (min.y, min.x)
    /// order keeps the first interior-disjoint subset and accepts only if
    /// its area adds up to `R₂`'s exactly (within relative 1e-9) — with
    /// pairwise-disjoint interiors and containment, matching areas imply
    /// an exact tiling up to measure zero, the same edge-grazing
    /// convention the planner's boundary weighting uses.
    ///
    /// Measure-zero caveat: ranges are closed rectangles, so an object
    /// lying *exactly* on a shared interior edge is counted by both
    /// adjacent fragments and would be double-counted by the assembly.
    /// Decomposition therefore assumes data in general position (no mass
    /// concentrated on fragment boundaries) — true almost surely for
    /// continuous coordinates, and the convention the rest of the engine
    /// (grid binning, pyramid frontier) already uses.
    fn decompose(
        &self,
        state: &CacheMap,
        query: &FraQuery,
        epsilon: f64,
        now: Instant,
    ) -> Option<(fedra_index::Aggregate, f64, Instant, Vec<QueryKey>)> {
        if !matches!(query.func, AggFunc::Count | AggFunc::Sum | AggFunc::SumSqr) {
            return None;
        }
        let Range::Rect(target) = query.range else {
            return None;
        };
        let target_area = target.area();
        if !(target_area > 0.0) {
            return None;
        }

        let mut candidates: Vec<(Rect, &Entry, QueryKey)> = state
            // Visit order feeds the total-order sort below; nothing
            // order-dependent escapes.
            // fedra-lint: allow(determinism-discipline)
            .iter()
            .filter_map(|(k, e)| {
                if e.func != query.func
                    || !theory::epsilon_serves(e.epsilon, epsilon)
                    || now.duration_since(e.inserted) > self.config.ttl
                {
                    return None;
                }
                match e.range {
                    Range::Rect(r) if target.contains_rect(&r) && r.area() > 0.0 => {
                        Some((r, e, *k))
                    }
                    _ => None,
                }
            })
            .collect();
        // Total order: `total_cmp` (no NaN/-0.0 input-order fallback) plus
        // a key tie-break so coincident rects resolve identically no
        // matter what insertion history the map accumulated.
        candidates.sort_by(|(a, _, ka), (b, _, kb)| {
            a.min
                .y
                .total_cmp(&b.min.y)
                .then(a.min.x.total_cmp(&b.min.x))
                .then(a.max.y.total_cmp(&b.max.y))
                .then(a.max.x.total_cmp(&b.max.x))
                .then(ka.sort_key().cmp(&kb.sort_key()))
        });

        let mut taken: Vec<(Rect, &Entry, QueryKey)> = Vec::new();
        let mut covered = 0.0f64;
        for (rect, entry, k) in candidates {
            let disjoint = taken.iter().all(|(t, _, _)| {
                rect.min.x >= t.max.x
                    || rect.max.x <= t.min.x
                    || rect.min.y >= t.max.y
                    || rect.max.y <= t.min.y
            });
            if disjoint {
                covered += rect.area();
                taken.push((rect, entry, k));
            }
        }
        if taken.is_empty() || (covered - target_area).abs() > target_area * 1e-9 {
            return None;
        }
        let mut aggregate = fedra_index::Aggregate::ZERO;
        for (_, e, _) in &taken {
            aggregate.merge_in(&e.result.aggregate);
        }
        let bound = theory::containment_epsilon(
            &taken.iter().map(|(_, e, _)| e.epsilon).collect::<Vec<_>>(),
        );
        if !theory::epsilon_serves(bound, epsilon) {
            return None;
        }
        let oldest = taken
            .iter()
            .map(|(_, e, _)| e.inserted)
            .min()
            .unwrap_or(now);
        let keys = taken.iter().map(|(_, _, k)| *k).collect();
        Some((aggregate, bound, oldest, keys))
    }

    /// Inserts an entry, evicting the LRU entry first when at capacity.
    fn insert_bounded(
        state: &mut CacheMap,
        metrics: &CacheMetrics,
        capacity: usize,
        key: QueryKey,
        entry: Entry,
    ) {
        if state.len() >= capacity && !state.contains_key(&key) {
            // Ties on `last_used` do happen (fragment touches and memoized
            // inserts share a tick); break them by key order so the victim
            // never depends on hash-map iteration order.
            if let Some(victim) = state
                // Visit order cannot escape: the min below is total-ordered.
                // fedra-lint: allow(determinism-discipline)
                .iter()
                .min_by_key(|(k, e)| (e.last_used.load(Ordering::Relaxed), k.sort_key()))
                .map(|(k, _)| *k)
            {
                state.remove(&victim);
                metrics.evictions.inc();
            }
        }
        state.insert(key, entry);
    }
}

impl<A: FraAlgorithm> FraAlgorithm for AnswerCache<A> {
    fn name(&self) -> &'static str {
        // The cache is transparent: report the wrapped algorithm.
        self.inner.name()
    }

    fn try_execute_with(
        &self,
        federation: &Federation,
        query: &FraQuery,
        obs: &ObsContext,
    ) -> Result<QueryResult, FraError> {
        // The implicit budget is the producer ε itself: entries may serve
        // their own accuracy class. With the default policy that is ε = 0
        // — byte-identical keys only, the old degenerate behavior.
        self.try_execute_with_epsilon(federation, query, self.policy.producer_epsilon, obs)
            .map(|answer| answer.result)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::exact::Exact;
    use crate::sampling::NonIidEst;
    use fedra_federation::FederationBuilder;
    use fedra_geo::{Point, Rect, SpatialObject};
    use fedra_index::histogram::MinSkewConfig;

    fn federation() -> Federation {
        let bounds = Rect::new(Point::new(0.0, 0.0), Point::new(100.0, 100.0));
        // Data in general position: offsets keep objects off the tile
        // boundaries the decomposition tests use (multiples of 20), per
        // the measure-zero convention documented on `decompose`.
        let partitions: Vec<Vec<SpatialObject>> = (0..3)
            .map(|k| {
                (0..500)
                    .map(|i| {
                        SpatialObject::at(
                            (i % 25) as f64 * 3.9 + 0.3,
                            (i / 25) as f64 * 4.9 + 0.7,
                            k as f64 + 1.0,
                        )
                    })
                    .collect()
            })
            .collect();
        FederationBuilder::new(bounds)
            .grid_cell_len(10.0)
            .histogram_config(MinSkewConfig {
                resolution: 8,
                budget: 8,
            })
            .build(partitions)
    }

    fn q(x: f64) -> FraQuery {
        FraQuery::circle(Point::new(x, 50.0), 10.0, AggFunc::Count)
    }

    #[test]
    fn repeated_queries_hit_and_skip_communication() {
        let fed = federation();
        let cached = AnswerCache::with_defaults(Exact::new());
        let first = cached.execute(&fed, &q(50.0));
        fed.reset_query_comm();
        for _ in 0..10 {
            let again = cached.execute(&fed, &q(50.0));
            assert_eq!(again.value, first.value);
        }
        assert_eq!(fed.query_comm().rounds, 0, "hits must not touch silos");
        let stats = cached.stats();
        assert_eq!(stats.hits, 10);
        assert_eq!(stats.misses, 1);
        assert!(stats.hit_rate() > 0.9);
    }

    #[test]
    fn different_queries_do_not_collide() {
        let fed = federation();
        let cached = AnswerCache::with_defaults(Exact::new());
        let a = cached.execute(&fed, &q(30.0));
        let b = cached.execute(&fed, &q(70.0));
        // Same radius/function, different centers — separate entries.
        assert_eq!(cached.len(), 2);
        let a2 = cached.execute(&fed, &q(30.0));
        assert_eq!(a.value, a2.value);
        let _ = b;
        // Same center, different function — also separate.
        let c = FraQuery::circle(Point::new(30.0, 50.0), 10.0, AggFunc::Sum);
        cached.execute(&fed, &c);
        assert_eq!(cached.len(), 3);
    }

    #[test]
    fn ttl_expiry_refreshes_entries() {
        let fed = federation();
        let cached = AnswerCache::new(
            Exact::new(),
            CacheConfig {
                capacity: 16,
                ttl: Duration::from_millis(0), // everything expires at once
            },
        );
        cached.execute(&fed, &q(50.0));
        cached.execute(&fed, &q(50.0));
        let stats = cached.stats();
        assert_eq!(stats.hits, 0);
        assert_eq!(stats.misses, 2);
        assert_eq!(stats.expirations, 1);
    }

    #[test]
    fn lru_eviction_respects_capacity() {
        let fed = federation();
        let cached = AnswerCache::new(
            Exact::new(),
            CacheConfig {
                capacity: 2,
                ttl: Duration::from_secs(60),
            },
        );
        cached.execute(&fed, &q(10.0)); // A
        cached.execute(&fed, &q(20.0)); // B
        cached.execute(&fed, &q(10.0)); // touch A → B is LRU
        cached.execute(&fed, &q(30.0)); // C evicts B
        assert_eq!(cached.len(), 2);
        assert_eq!(cached.stats().evictions, 1);
        fed.reset_query_comm();
        cached.execute(&fed, &q(10.0)); // still cached
        assert_eq!(fed.query_comm().rounds, 0);
        cached.execute(&fed, &q(20.0)); // evicted → miss → silo contact
        assert!(fed.query_comm().rounds > 0);
    }

    #[test]
    fn invalidate_all_clears_entries() {
        let fed = federation();
        let cached = AnswerCache::with_defaults(NonIidEst::new(7));
        cached.execute(&fed, &q(40.0));
        assert!(!cached.is_empty());
        cached.invalidate_all();
        assert!(cached.is_empty());
        fed.reset_query_comm();
        cached.execute(&fed, &q(40.0));
        assert!(fed.query_comm().rounds > 0, "post-invalidation is a miss");
    }

    #[test]
    fn cache_works_under_the_batch_engine() {
        let fed = federation();
        let cached = AnswerCache::with_defaults(Exact::new());
        // A burst with heavy repetition: 5 hot stations × 20 asks.
        let queries: Vec<FraQuery> = (0..100).map(|i| q((i % 5) as f64 * 10.0 + 10.0)).collect();
        let engine = crate::framework::QueryEngine::with_workers(&cached, 4);
        let batch = engine.execute_batch(&fed, &queries);
        assert_eq!(batch.failures(), 0);
        let stats = cached.stats();
        assert_eq!(stats.hits + stats.misses, 100);
        // At least the non-first ask of each station hits (racing workers
        // may duplicate a few first asks).
        assert!(stats.hits >= 90, "hits {}", stats.hits);
        // All answers for one station agree.
        let station0: Vec<f64> = queries
            .iter()
            .zip(batch.results.iter())
            .filter(|(qq, _)| qq.range == q(10.0).range)
            .map(|(_, r)| r.as_ref().unwrap().value)
            .collect();
        assert!(station0.windows(2).all(|w| w[0] == w[1]));
    }

    #[test]
    #[should_panic(expected = "capacity")]
    fn zero_capacity_rejected() {
        AnswerCache::new(
            Exact::new(),
            CacheConfig {
                capacity: 0,
                ttl: Duration::from_secs(1),
            },
        );
    }

    #[test]
    #[allow(deprecated)]
    fn deprecated_alias_still_works() {
        let fed = federation();
        let cached: CachedAlgorithm<Exact> = CachedAlgorithm::with_defaults(Exact::new());
        let a = cached.execute(&fed, &q(50.0));
        let b = cached.execute(&fed, &q(50.0));
        assert_eq!(a.value, b.value);
        assert_eq!(cached.stats().hits, 1);
    }

    #[test]
    fn tighter_epsilon_serves_looser_but_never_the_reverse() {
        let fed = federation();
        // Producer ε = 0.05: entries serve budgets ≥ 0.05 only.
        let cached = AnswerCache::with_policy(
            Exact::new(),
            CacheConfig::default(),
            CachePolicy {
                producer_epsilon: 0.05,
                containment: false,
            },
        );
        let obs = ObsContext::noop();
        let query = q(50.0);
        let first = cached
            .try_execute_with_epsilon(&fed, &query, 0.05, obs)
            .unwrap();
        assert_eq!(first.source, CacheSource::Miss);
        assert_eq!(first.epsilon_bound, 0.05);

        // Looser budget: served.
        let loose = cached
            .try_execute_with_epsilon(&fed, &query, 0.10, obs)
            .unwrap();
        assert_eq!(loose.source, CacheSource::ExactHit);
        assert_eq!(loose.result.value, first.result.value);
        assert!(loose.epsilon_bound <= 0.10);

        // Tighter budget: the fresh entry must NOT serve.
        let tight = cached
            .try_execute_with_epsilon(&fed, &query, 0.01, obs)
            .unwrap();
        assert_eq!(tight.source, CacheSource::Miss);
        // And the refusal did not expire the entry.
        assert_eq!(cached.len(), 1);
    }

    #[test]
    fn containment_decomposition_serves_the_union_exactly() {
        let fed = federation();
        let cached = AnswerCache::with_policy(
            Exact::new(),
            CacheConfig::default(),
            CachePolicy {
                producer_epsilon: 0.0,
                containment: true,
            },
        );
        let obs = ObsContext::noop();
        // Four disjoint tiles of [20,60]×[20,60].
        let tiles = [
            (20.0, 20.0, 40.0, 40.0),
            (40.0, 20.0, 60.0, 40.0),
            (20.0, 40.0, 40.0, 60.0),
            (40.0, 40.0, 60.0, 60.0),
        ];
        for &(x0, y0, x1, y1) in &tiles {
            let tile = FraQuery::rect(Point::new(x0, y0), Point::new(x1, y1), AggFunc::Count);
            let a = cached
                .try_execute_with_epsilon(&fed, &tile, 0.0, obs)
                .unwrap();
            assert_eq!(a.source, CacheSource::Miss);
        }
        fed.reset_query_comm();
        let union = FraQuery::rect(
            Point::new(20.0, 20.0),
            Point::new(60.0, 60.0),
            AggFunc::Count,
        );
        let served = cached
            .try_execute_with_epsilon(&fed, &union, 0.0, obs)
            .unwrap();
        assert_eq!(served.source, CacheSource::DecomposedHit);
        assert_eq!(served.epsilon_bound, 0.0, "exact fragments compose exactly");
        assert_eq!(fed.query_comm().rounds, 0, "decomposition is silo-free");
        let truth = Exact::new().execute(&fed, &union).value;
        assert_eq!(served.result.value, truth, "exact tiling must be exact");
        assert_eq!(cached.stats().decomposed, 1);

        // The assembly was memoized: the repeat is an exact hit.
        let again = cached
            .try_execute_with_epsilon(&fed, &union, 0.0, obs)
            .unwrap();
        assert_eq!(again.source, CacheSource::ExactHit);
        assert_eq!(again.result.value, truth);
    }

    #[test]
    fn partial_covers_never_decompose() {
        let fed = federation();
        let cached = AnswerCache::with_policy(
            Exact::new(),
            CacheConfig::default(),
            CachePolicy {
                producer_epsilon: 0.0,
                containment: true,
            },
        );
        let obs = ObsContext::noop();
        // Three of four tiles: the union must MISS, not serve short.
        for &(x0, y0, x1, y1) in &[
            (20.0, 20.0, 40.0, 40.0),
            (40.0, 20.0, 60.0, 40.0),
            (20.0, 40.0, 40.0, 60.0),
        ] {
            let tile = FraQuery::rect(Point::new(x0, y0), Point::new(x1, y1), AggFunc::Count);
            cached
                .try_execute_with_epsilon(&fed, &tile, 0.0, obs)
                .unwrap();
        }
        let union = FraQuery::rect(
            Point::new(20.0, 20.0),
            Point::new(60.0, 60.0),
            AggFunc::Count,
        );
        let served = cached
            .try_execute_with_epsilon(&fed, &union, 0.0, obs)
            .unwrap();
        assert_eq!(served.source, CacheSource::Miss);
    }

    #[test]
    fn overlapping_fragments_never_double_count() {
        let fed = federation();
        let cached = AnswerCache::with_policy(
            Exact::new(),
            CacheConfig::default(),
            CachePolicy {
                producer_epsilon: 0.0,
                containment: true,
            },
        );
        let obs = ObsContext::noop();
        // Two overlapping halves plus the exact tiles: the greedy sweep
        // must pick a disjoint subset or refuse — never sum an overlap.
        for &(x0, y0, x1, y1) in &[
            (20.0, 20.0, 45.0, 60.0), // overlaps the next one
            (40.0, 20.0, 60.0, 60.0),
        ] {
            let tile = FraQuery::rect(Point::new(x0, y0), Point::new(x1, y1), AggFunc::Count);
            cached
                .try_execute_with_epsilon(&fed, &tile, 0.0, obs)
                .unwrap();
        }
        let union = FraQuery::rect(
            Point::new(20.0, 20.0),
            Point::new(60.0, 60.0),
            AggFunc::Count,
        );
        let served = cached
            .try_execute_with_epsilon(&fed, &union, 0.0, obs)
            .unwrap();
        // The two overlapping rects cannot tile the union exactly, so
        // this must be a miss with the true value.
        assert_eq!(served.source, CacheSource::Miss);
        let truth = Exact::new().execute(&fed, &union).value;
        assert_eq!(served.result.value, truth);
    }

    #[test]
    fn ratio_aggregates_never_decompose() {
        let fed = federation();
        let cached = AnswerCache::with_policy(
            Exact::new(),
            CacheConfig::default(),
            CachePolicy {
                producer_epsilon: 0.0,
                containment: true,
            },
        );
        let obs = ObsContext::noop();
        for &(x0, x1) in &[(20.0, 40.0), (40.0, 60.0)] {
            let tile = FraQuery::rect(Point::new(x0, 20.0), Point::new(x1, 60.0), AggFunc::Avg);
            cached
                .try_execute_with_epsilon(&fed, &tile, 0.0, obs)
                .unwrap();
        }
        let union = FraQuery::rect(Point::new(20.0, 20.0), Point::new(60.0, 60.0), AggFunc::Avg);
        let served = cached
            .try_execute_with_epsilon(&fed, &union, 0.0, obs)
            .unwrap();
        assert_eq!(
            served.source,
            CacheSource::Miss,
            "AVG must not be assembled"
        );
    }

    #[test]
    fn every_served_answer_satisfies_the_requested_epsilon() {
        // Property: across a mixed workload, |served − truth| ≤ ε·truth
        // for every cache-served answer.
        let fed = federation();
        let cached = AnswerCache::with_policy(
            Exact::new(),
            CacheConfig::default(),
            CachePolicy {
                producer_epsilon: 0.0,
                containment: true,
            },
        );
        let obs = ObsContext::noop();
        let exact = Exact::new();
        let mut queries = Vec::new();
        for gx in 0..4 {
            for gy in 0..4 {
                let (x0, y0) = (gx as f64 * 20.0, gy as f64 * 20.0);
                queries.push(FraQuery::rect(
                    Point::new(x0, y0),
                    Point::new(x0 + 20.0, y0 + 20.0),
                    AggFunc::Sum,
                ));
            }
        }
        // Unions of tile blocks, then repeats of everything.
        queries.push(FraQuery::rect(
            Point::new(0.0, 0.0),
            Point::new(40.0, 40.0),
            AggFunc::Sum,
        ));
        queries.push(FraQuery::rect(
            Point::new(0.0, 0.0),
            Point::new(80.0, 80.0),
            AggFunc::Sum,
        ));
        let repeats: Vec<FraQuery> = queries.clone();
        queries.extend(repeats);

        let epsilon = 0.05;
        let mut served = 0;
        for query in &queries {
            let answer = cached
                .try_execute_with_epsilon(&fed, query, epsilon, obs)
                .unwrap();
            if answer.source != CacheSource::Miss {
                served += 1;
                let truth = exact.execute(&fed, query).value;
                assert!(
                    (answer.result.value - truth).abs() <= epsilon * truth.abs() + 1e-9,
                    "served {} vs truth {truth} violates ε = {epsilon}",
                    answer.result.value
                );
                assert!(answer.epsilon_bound <= epsilon);
            }
        }
        assert!(served > 10, "workload must exercise serving ({served})");
    }
}
