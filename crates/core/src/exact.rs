//! The EXACT baseline: fan out to every silo, sum exact partial answers.
//!
//! This is the conventional federated implementation the paper compares
//! against (Sec. 8.1, "EXACT [2]"): for a query `Q(S, R, F)` the provider
//! sends the local query to **all** `m` silos, each answers exactly from
//! its aggregate R-tree in O(log n_{s_i}), and the provider merges the
//! partial aggregates. Correct by construction, but it pays `m` rounds of
//! communication per query and keeps every silo busy with every query —
//! which is exactly what caps its throughput.

use fedra_federation::{Federation, LocalMode, Request, Response};
use fedra_index::Aggregate;
use fedra_obs::{labeled, ObsContext, Span};

use crate::algorithm::{degrade_fanout, note_coverage, FraAlgorithm};
use crate::query::{FraError, FraQuery, QueryResult};

/// Counts one request to every silo (the fan-out algorithms talk to all
/// `m` members per query).
fn count_fanout(obs: &ObsContext, m: usize) {
    if obs.is_enabled() {
        for k in 0..m {
            obs.inc(&labeled("fedra_silo_requests_total", "silo", k));
        }
    }
}

/// The EXACT fan-out algorithm.
#[derive(Debug, Clone, Copy, Default)]
pub struct Exact;

impl Exact {
    /// Creates the algorithm.
    pub fn new() -> Self {
        Self
    }
}

impl FraAlgorithm for Exact {
    fn name(&self) -> &'static str {
        "EXACT"
    }

    fn try_execute_with(
        &self,
        federation: &Federation,
        query: &FraQuery,
        obs: &ObsContext,
    ) -> Result<QueryResult, FraError> {
        let trace = obs.start_trace("query", self.name());
        let request = Request::Aggregate {
            range: query.range,
            mode: LocalMode::Exact,
        };
        count_fanout(obs, federation.num_silos());
        // The m-way fan-out runs on the persistent silo workers: the
        // frame is begun on every channel before any reply is awaited, so
        // the silos answer concurrently without a thread spawned per query
        // (mirroring the paper's multi-threaded setup, minus the threads).
        let policy = federation.degrade_policy();
        let outcome = (|| {
            let _fanout = Span::enter(&trace, "fanout");
            let mut total = Aggregate::ZERO;
            let mut responding = Vec::new();
            let mut missing = Vec::new();
            for (k, partial) in federation.broadcast(&request).into_iter().enumerate() {
                match partial {
                    Ok(Response::Agg(a)) => {
                        total.merge_in(&a);
                        responding.push(k);
                    }
                    Ok(_) => {
                        return Err(FraError::ProtocolViolation {
                            silo: k,
                            expected: "Agg",
                        })
                    }
                    // Under Partial, an unreachable silo's share is filled
                    // from its g_k below instead of failing the query.
                    Err(e) if policy.allows_partial() => missing.push((k, e)),
                    Err(e) => return Err(FraError::SiloFailed(e)),
                }
            }
            let rounds = federation.num_silos() as u64;
            if missing.is_empty() {
                return Ok(QueryResult::from_aggregate(total, query.func).with_rounds(rounds));
            }
            degrade_fanout(federation, query, total, &responding, missing, 0.0)
                .map(|r| r.with_rounds(rounds))
        })();
        if let Ok(result) = &outcome {
            note_coverage(obs, result);
        }
        obs.finish_trace(&trace);
        outcome
    }
}

/// The naive federated baseline of Sec. 3: contact every silo **one at a
/// time**.
///
/// The paper motivates single-silo sampling by contrasting it with "a
/// naive solution \[that\] would exchange information with every data silo
/// to answer a range aggregation query, allowing only sequential
/// processing". This type is that strawman, kept for the ablation that
/// shows what the multi-threaded EXACT already buys and what sampling
/// buys on top.
#[derive(Debug, Clone, Copy, Default)]
pub struct ExactSequential;

impl ExactSequential {
    /// Creates the algorithm.
    pub fn new() -> Self {
        Self
    }
}

impl FraAlgorithm for ExactSequential {
    fn name(&self) -> &'static str {
        "EXACT-seq"
    }

    fn try_execute_with(
        &self,
        federation: &Federation,
        query: &FraQuery,
        obs: &ObsContext,
    ) -> Result<QueryResult, FraError> {
        let trace = obs.start_trace("query", self.name());
        let request = Request::Aggregate {
            range: query.range,
            mode: LocalMode::Exact,
        };
        count_fanout(obs, federation.num_silos());
        let policy = federation.degrade_policy();
        let outcome = (|| {
            let _fanout = Span::enter(&trace, "sequential-fanout");
            let mut total = Aggregate::ZERO;
            let mut responding = Vec::new();
            let mut missing = Vec::new();
            for k in 0..federation.num_silos() {
                match federation.call(k, &request) {
                    Ok(Response::Agg(a)) => {
                        total.merge_in(&a);
                        responding.push(k);
                    }
                    Ok(_) => {
                        return Err(FraError::ProtocolViolation {
                            silo: k,
                            expected: "Agg",
                        })
                    }
                    Err(e) if policy.allows_partial() => missing.push((k, e)),
                    Err(e) => return Err(FraError::SiloFailed(e)),
                }
            }
            let rounds = federation.num_silos() as u64;
            if missing.is_empty() {
                return Ok(QueryResult::from_aggregate(total, query.func).with_rounds(rounds));
            }
            degrade_fanout(federation, query, total, &responding, missing, 0.0)
                .map(|r| r.with_rounds(rounds))
        })();
        if let Ok(result) = &outcome {
            note_coverage(obs, result);
        }
        obs.finish_trace(&trace);
        outcome
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fedra_federation::FederationBuilder;
    use fedra_geo::{Point, Rect, SpatialObject};
    use fedra_index::histogram::MinSkewConfig;
    use fedra_index::AggFunc;

    fn setup() -> (Federation, Vec<SpatialObject>) {
        let bounds = Rect::new(Point::new(0.0, 0.0), Point::new(100.0, 100.0));
        let mut state = 5u64;
        let mut partitions = Vec::new();
        let mut all = Vec::new();
        for _ in 0..3 {
            let objs: Vec<SpatialObject> = (0..400)
                .map(|i| {
                    state = state
                        .wrapping_mul(6364136223846793005)
                        .wrapping_add(1442695040888963407);
                    let x = (state >> 11) as f64 / (1u64 << 53) as f64 * 100.0;
                    state = state
                        .wrapping_mul(6364136223846793005)
                        .wrapping_add(1442695040888963407);
                    let y = (state >> 11) as f64 / (1u64 << 53) as f64 * 100.0;
                    SpatialObject::at(x, y, (i % 5) as f64 + 1.0)
                })
                .collect();
            all.extend_from_slice(&objs);
            partitions.push(objs);
        }
        let fed = FederationBuilder::new(bounds)
            .grid_cell_len(10.0)
            .histogram_config(MinSkewConfig {
                resolution: 16,
                budget: 16,
            })
            .build(partitions);
        (fed, all)
    }

    #[test]
    fn exact_equals_bruteforce_for_all_functions() {
        let (fed, all) = setup();
        let q_range = fedra_geo::Range::circle(Point::new(50.0, 50.0), 25.0);
        let in_range: Vec<_> = all
            .iter()
            .filter(|o| q_range.contains_point(&o.location))
            .collect();
        let brute = in_range
            .iter()
            .fold(Aggregate::ZERO, |a, o| a.merge(&Aggregate::of(o)));
        for func in AggFunc::ALL {
            let r = Exact::new().execute(&fed, &FraQuery::new(q_range, func));
            assert!(
                (r.value - brute.value(func)).abs() < 1e-9,
                "{func}: {} vs {}",
                r.value,
                brute.value(func)
            );
        }
    }

    #[test]
    fn exact_uses_m_rounds() {
        let (fed, _) = setup();
        fed.reset_query_comm();
        let q = FraQuery::circle(Point::new(50.0, 50.0), 10.0, AggFunc::Count);
        let r = Exact::new().execute(&fed, &q);
        assert_eq!(r.rounds, 3);
        assert_eq!(fed.query_comm().rounds, 3);
        assert!(r.sampled_silo.is_none());
    }

    #[test]
    fn exact_fails_when_any_silo_is_down() {
        let (fed, _) = setup();
        fed.set_silo_failed(1, true);
        let q = FraQuery::circle(Point::new(50.0, 50.0), 10.0, AggFunc::Count);
        let err = Exact::new().try_execute(&fed, &q).expect_err("must fail");
        assert!(matches!(err, FraError::SiloFailed(_)));
    }

    #[test]
    fn sequential_matches_parallel_exact() {
        let (fed, _) = setup();
        let q = FraQuery::circle(Point::new(50.0, 50.0), 20.0, AggFunc::Sum);
        let parallel = Exact::new().execute(&fed, &q);
        let sequential = ExactSequential::new().execute(&fed, &q);
        assert_eq!(parallel.value, sequential.value);
        assert_eq!(sequential.rounds, 3);
    }

    #[test]
    fn sequential_fails_fast_on_down_silo() {
        let (fed, _) = setup();
        fed.set_silo_failed(0, true);
        let q = FraQuery::circle(Point::new(50.0, 50.0), 20.0, AggFunc::Count);
        assert!(matches!(
            ExactSequential::new().try_execute(&fed, &q),
            Err(FraError::SiloFailed(_))
        ));
    }

    #[test]
    fn empty_range_is_zero() {
        let (fed, _) = setup();
        let q = FraQuery::circle(Point::new(-500.0, -500.0), 1.0, AggFunc::Sum);
        let r = Exact::new().execute(&fed, &q);
        assert_eq!(r.value, 0.0);
    }
}
