//! Provider-side estimation helpers shared by the FRA algorithms.

use fedra_federation::{Federation, SiloId};
use fedra_geo::{intersection_area, Range};
use fedra_index::Aggregate;

/// The grid-based rough estimate `sum₀` used for LSR level selection
/// (Alg. 6): the COUNT over all `g₀` cells intersecting the range,
/// answered from the cumulative array in O(√|g₀|).
pub fn rough_count(federation: &Federation, range: &Range) -> f64 {
    federation
        .merged_prefix()
        .aggregate_intersecting(range)
        .count
}

/// The `sum₀` aggregate triple of Alg. 2 — `g₀` over intersecting cells.
pub fn sum0(federation: &Federation, range: &Range) -> Aggregate {
    federation.merged_prefix().aggregate_intersecting(range)
}

/// The `sum_k` aggregate triple of Alg. 2 — `g_k` over intersecting cells.
pub fn sum_k(federation: &Federation, silo: SiloId, range: &Range) -> Aggregate {
    federation.silo_prefix(silo).aggregate_intersecting(range)
}

/// A silo-free estimate from `g₀` alone: covered cells contribute exactly,
/// boundary cells contribute proportionally to the covered area
/// (uniform-within-cell).
///
/// Used as the graceful degradation path when no silo can be sampled
/// (all candidates failed) and as the per-component fallback when the
/// sampled silo has no data to re-weight by.
pub fn grid_only_estimate(federation: &Federation, range: &Range) -> Aggregate {
    let grid = federation.merged_grid();
    let spec = grid.spec();
    let cls = spec.classify(range);
    let mut acc = grid.aggregate_cells(cls.covered.iter().copied());
    for id in &cls.boundary {
        let rect = spec.cell_rect_of(*id);
        let frac = intersection_area(range, &rect) / rect.area();
        acc.merge_in(&grid.cell(*id).scale(frac));
    }
    acc
}

/// Per-component re-scaling `sum₀ × res_k / sum_k` (Alg. 2, line 8) with a
/// per-component fallback for zero denominators.
///
/// Each of count / sum / sum_sqr is its own SUM-type query with its own
/// ratio, which is what makes the AVG/STDEV extension a single round
/// (Sec. 7). A component with `sum_k = 0` carries no information from the
/// sampled silo, so the corresponding component of `fallback` (the
/// grid-only estimate) is used instead.
pub fn ratio_scale(
    sum0: &Aggregate,
    res: &Aggregate,
    sum_k: &Aggregate,
    fallback: &Aggregate,
) -> Aggregate {
    let component = |s0: f64, r: f64, sk: f64, fb: f64| -> f64 {
        if sk.abs() < f64::EPSILON {
            fb
        } else {
            s0 * (r / sk)
        }
    };
    Aggregate {
        count: component(sum0.count, res.count, sum_k.count, fallback.count),
        sum: component(sum0.sum, res.sum, sum_k.sum, fallback.sum),
        sum_sqr: component(sum0.sum_sqr, res.sum_sqr, sum_k.sum_sqr, fallback.sum_sqr),
    }
}

/// Per-silo analogue of [`grid_only_estimate`]: silo `k`'s in-range mass
/// from `g_k` alone — covered cells exactly, boundary cells by covered
/// area fraction.
///
/// This is what a degraded-mode fan-out substitutes for an unreachable
/// silo's partial answer (DESIGN.md §5i): the provider holds every `g_k`
/// from setup, so a missing silo's contribution can still be estimated
/// without contacting it.
pub fn silo_grid_estimate(federation: &Federation, silo: SiloId, range: &Range) -> Aggregate {
    let grid = federation.silo_grid(silo);
    let spec = grid.spec();
    let cls = spec.classify(range);
    let mut acc = grid.aggregate_cells(cls.covered.iter().copied());
    for id in &cls.boundary {
        let rect = spec.cell_rect_of(*id);
        let frac = intersection_area(range, &rect) / rect.area();
        acc.merge_in(&grid.cell(*id).scale(frac));
    }
    acc
}

/// Fraction of the in-range grid mass (COUNT over intersecting cells of
/// the per-silo grids) held by the `responding` silos, in `[0, 1]`.
///
/// The denominator is `sum₀` over the same cells — cell-wise, the silo
/// grids sum to `g₀`, so this is exactly the mass share a degraded
/// fan-out answer is backed by. An empty range (no in-range mass at all)
/// counts as fully covered: there is nothing left to miss.
pub fn reachable_mass_fraction(
    federation: &Federation,
    range: &Range,
    responding: &[SiloId],
) -> f64 {
    let total = sum0(federation, range).count;
    if total <= 0.0 {
        return 1.0;
    }
    let reached: f64 = responding
        .iter()
        .map(|&k| sum_k(federation, k, range).count)
        .sum();
    (reached / total).clamp(0.0, 1.0)
}

/// Fraction of the in-range grid mass that `g₀` answers *exactly* (cells
/// fully covered by the range), in `[0, 1]` — the coverage a provider-only
/// grid answer honestly carries when no silo is reachable at all
/// (DESIGN.md §5i). Boundary cells are the uncertain remainder: their
/// area-fraction fill-in can be off by up to the full cell mass. An empty
/// range counts as fully covered.
pub fn grid_certain_fraction(federation: &Federation, range: &Range) -> f64 {
    let grid = federation.merged_grid();
    let spec = grid.spec();
    let cls = spec.classify(range);
    let covered = grid.aggregate_cells(cls.covered.iter().copied()).count;
    let boundary: f64 = cls.boundary.iter().map(|id| grid.cell(*id).count).sum();
    let total = covered + boundary;
    if total <= 0.0 {
        return 1.0;
    }
    (covered / total).clamp(0.0, 1.0)
}

/// Silos eligible to be sampled for this query: not failure-flagged, not
/// refused by the health tracker's circuit breaker (open breakers admit
/// the occasional probe; a passive tracker refuses nobody), and with at
/// least one object in a cell intersecting the range (the
/// non-overlapping-coverage extension of Sec. 4.2.2: "we sample s_k from
/// silos who have data in the query range").
pub fn candidate_silos(federation: &Federation, range: &Range) -> Vec<SiloId> {
    let failed = federation.failed_silos();
    let health = federation.health();
    (0..federation.num_silos())
        .filter(|k| !failed.contains(k))
        .filter(|&k| health.allows(k))
        .filter(|&k| sum_k(federation, k, range).count > 0.0)
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use fedra_federation::FederationBuilder;
    use fedra_geo::{Point, Rect, SpatialObject};
    use fedra_index::histogram::MinSkewConfig;

    fn federation() -> Federation {
        let bounds = Rect::new(Point::new(0.0, 0.0), Point::new(100.0, 100.0));
        // Silo 0: a dense block in [0,50]²; silo 1: a dense block in
        // [50,100]². Deliberately non-overlapping coverage.
        let left: Vec<SpatialObject> = (0..500)
            .map(|i| SpatialObject::at((i % 25) as f64 * 2.0, (i / 25) as f64 * 2.5, 1.0))
            .collect();
        let right: Vec<SpatialObject> = (0..500)
            .map(|i| {
                SpatialObject::at(
                    50.0 + (i % 25) as f64 * 2.0,
                    (i / 25) as f64 * 2.5 + 50.0,
                    2.0,
                )
            })
            .collect();
        FederationBuilder::new(bounds)
            .grid_cell_len(10.0)
            .histogram_config(MinSkewConfig {
                resolution: 16,
                budget: 16,
            })
            .build(vec![left, right])
    }

    #[test]
    fn rough_count_covers_intersecting_cells() {
        let fed = federation();
        let q = Range::circle(Point::new(25.0, 25.0), 10.0);
        let rc = rough_count(&fed, &q);
        // All data near (25,25) belongs to silo 0's 500-object block.
        assert!(rc > 0.0);
        assert!(rc <= 500.0);
        // sum0's count agrees by definition.
        assert_eq!(rc, sum0(&fed, &q).count);
    }

    #[test]
    fn sum_k_is_per_silo() {
        let fed = federation();
        let q = Range::circle(Point::new(25.0, 25.0), 10.0);
        assert!(sum_k(&fed, 0, &q).count > 0.0);
        assert_eq!(sum_k(&fed, 1, &q).count, 0.0);
    }

    #[test]
    fn candidates_respect_coverage_and_failures() {
        let fed = federation();
        let left_q = Range::circle(Point::new(25.0, 25.0), 10.0);
        let right_q = Range::circle(Point::new(75.0, 75.0), 10.0);
        assert_eq!(candidate_silos(&fed, &left_q), vec![0]);
        assert_eq!(candidate_silos(&fed, &right_q), vec![1]);
        fed.set_silo_failed(0, true);
        assert!(candidate_silos(&fed, &left_q).is_empty());
        fed.set_silo_failed(0, false);
    }

    #[test]
    fn grid_only_estimate_is_close_on_uniform_blocks() {
        let fed = federation();
        let q = Range::rect(Point::new(0.0, 0.0), Point::new(50.0, 50.0));
        let est = grid_only_estimate(&fed, &q);
        // The whole left block: ~500 objects (modulo the block's own edge).
        assert!((est.count - 500.0).abs() < 50.0, "got {}", est.count);
    }

    #[test]
    fn silo_grid_estimates_sum_to_the_merged_estimate() {
        let fed = federation();
        let q = Range::circle(Point::new(50.0, 50.0), 20.0);
        let merged = grid_only_estimate(&fed, &q);
        let mut parts = fedra_index::Aggregate::ZERO;
        for k in 0..fed.num_silos() {
            parts.merge_in(&silo_grid_estimate(&fed, k, &q));
        }
        assert!((parts.count - merged.count).abs() < 1e-9);
        assert!((parts.sum - merged.sum).abs() < 1e-9);
    }

    #[test]
    fn mass_fractions_are_honest() {
        let fed = federation();
        let left_q = Range::circle(Point::new(25.0, 25.0), 10.0);
        // All of the left query's mass is silo 0's.
        assert_eq!(reachable_mass_fraction(&fed, &left_q, &[0]), 1.0);
        assert_eq!(reachable_mass_fraction(&fed, &left_q, &[1]), 0.0);
        assert_eq!(reachable_mass_fraction(&fed, &left_q, &[0, 1]), 1.0);
        // An empty range has nothing to miss.
        let empty_q = Range::circle(Point::new(-400.0, -400.0), 1.0);
        assert_eq!(reachable_mass_fraction(&fed, &empty_q, &[]), 1.0);
        assert_eq!(grid_certain_fraction(&fed, &empty_q), 1.0);
        // The full-bounds rect covers every cell exactly. (A rect merely
        // aligned to interior cell edges is NOT fully certain: a massy
        // cell touching the edge with zero overlap area could still hold
        // an object exactly on the closed edge.)
        let aligned = Range::rect(Point::new(0.0, 0.0), Point::new(100.0, 100.0));
        assert_eq!(grid_certain_fraction(&fed, &aligned), 1.0);
        let interior = Range::rect(Point::new(0.0, 0.0), Point::new(50.0, 50.0));
        let c = grid_certain_fraction(&fed, &interior);
        assert!((0.0..1.0).contains(&c), "edge-touching rect fraction {c}");
        let c = grid_certain_fraction(&fed, &left_q);
        assert!((0.0..1.0).contains(&c), "circle certain fraction {c}");
    }

    #[test]
    fn ratio_scale_components_and_fallback() {
        let s0 = Aggregate {
            count: 20.0,
            sum: 40.0,
            sum_sqr: 100.0,
        };
        let res = Aggregate {
            count: 5.0,
            sum: 10.0,
            sum_sqr: 0.0,
        };
        let sk = Aggregate {
            count: 10.0,
            sum: 20.0,
            sum_sqr: 0.0, // degenerate component
        };
        let fb = Aggregate {
            count: 999.0,
            sum: 999.0,
            sum_sqr: 77.0,
        };
        let out = ratio_scale(&s0, &res, &sk, &fb);
        assert_eq!(out.count, 10.0); // 20 * 5/10
        assert_eq!(out.sum, 20.0); // 40 * 10/20
        assert_eq!(out.sum_sqr, 77.0); // fallback
    }
}
