//! The [`FraAlgorithm`] trait every query algorithm implements.

use fedra_federation::Federation;

use crate::query::{FraError, FraQuery, QueryResult};

/// Accuracy parameters `(ε, δ)` for the LSR-accelerated variants
/// (Tab. 2 defaults: ε = 0.10, δ = 0.01).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AccuracyParams {
    /// Target approximation ratio ε (Definition 3).
    pub epsilon: f64,
    /// Failure-probability upper bound δ (Lemma 1).
    pub delta: f64,
}

impl Default for AccuracyParams {
    fn default() -> Self {
        Self {
            epsilon: 0.10,
            delta: 0.01,
        }
    }
}

impl AccuracyParams {
    /// Creates accuracy parameters.
    ///
    /// # Panics
    /// Panics on out-of-domain values.
    pub fn new(epsilon: f64, delta: f64) -> Self {
        assert!(epsilon > 0.0 && epsilon.is_finite(), "epsilon must be positive");
        assert!(delta > 0.0 && delta < 1.0, "delta must lie in (0, 1)");
        Self { epsilon, delta }
    }
}

/// A federated range aggregation algorithm.
///
/// Implementations are `Send + Sync` so the multi-query framework
/// (Alg. 4) can drive one instance from many worker threads; internal
/// randomness therefore lives behind locks.
pub trait FraAlgorithm: Send + Sync {
    /// The algorithm's display name (matches the paper's legends:
    /// `EXACT`, `OPTA`, `IID-est`, `IID-est+LSR`, `NonIID-est`,
    /// `NonIID-est+LSR`).
    fn name(&self) -> &'static str;

    /// Executes one query, returning the result or a federation error.
    fn try_execute(&self, federation: &Federation, query: &FraQuery)
        -> Result<QueryResult, FraError>;

    /// Executes one query, panicking on federation errors (convenience
    /// for examples and healthy-path code).
    fn execute(&self, federation: &Federation, query: &FraQuery) -> QueryResult {
        match self.try_execute(federation, query) {
            Ok(result) => result,
            Err(e) => panic!("{} failed: {e}", self.name()),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_match_table2() {
        let p = AccuracyParams::default();
        assert_eq!(p.epsilon, 0.10);
        assert_eq!(p.delta, 0.01);
    }

    #[test]
    #[should_panic(expected = "epsilon")]
    fn rejects_zero_epsilon() {
        AccuracyParams::new(0.0, 0.01);
    }

    #[test]
    #[should_panic(expected = "delta")]
    fn rejects_delta_of_one() {
        AccuracyParams::new(0.1, 1.0);
    }
}
