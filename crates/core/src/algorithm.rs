//! The [`FraAlgorithm`] trait every query algorithm implements.

use std::time::Instant;

use fedra_federation::transport::race_calls;
use fedra_federation::{
    Federation, HealthTransition, Poll, RaceWinner, Request, Response, SiloId, TransportError,
};
use fedra_index::Aggregate;
use fedra_obs::{labeled, ObsContext, Span};

use crate::helpers;
use crate::query::{Coverage, FraError, FraQuery, QueryResult};
use crate::theory;

/// Accuracy parameters `(ε, δ)` for the LSR-accelerated variants
/// (Tab. 2 defaults: ε = 0.10, δ = 0.01).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AccuracyParams {
    /// Target approximation ratio ε (Definition 3).
    pub epsilon: f64,
    /// Failure-probability upper bound δ (Lemma 1).
    pub delta: f64,
}

impl Default for AccuracyParams {
    fn default() -> Self {
        Self {
            epsilon: 0.10,
            delta: 0.01,
        }
    }
}

impl AccuracyParams {
    /// Creates accuracy parameters.
    ///
    /// # Panics
    /// Panics on out-of-domain values.
    pub fn new(epsilon: f64, delta: f64) -> Self {
        assert!(
            epsilon > 0.0 && epsilon.is_finite(),
            "epsilon must be positive"
        );
        assert!(delta > 0.0 && delta < 1.0, "delta must lie in (0, 1)");
        Self { epsilon, delta }
    }
}

/// The remote step a planning algorithm wants executed for one query.
///
/// Produced by [`FraAlgorithm::plan`] when the query needs exactly one
/// silo's answer (the single-silo sampling pattern of Algs. 2 and 3).
#[derive(Debug, Clone)]
pub struct RemotePlan {
    /// Candidate silos in visiting order: the head is the sampled silo,
    /// the tail is the resample-on-failure fallback order.
    pub order: Vec<SiloId>,
    /// The request to send to whichever candidate is visited.
    pub request: Request,
}

/// The outcome of planning one query ([`FraAlgorithm::plan`]).
#[derive(Debug)]
pub enum QueryPlan {
    /// The query resolved provider-side — no silo contact needed (or the
    /// algorithm does not split planning from execution).
    Ready(Result<QueryResult, FraError>),
    /// One single-silo request remains; execute it (resampling down
    /// [`RemotePlan::order`] on failure) and hand the response to
    /// [`FraAlgorithm::finish`].
    SingleSilo(RemotePlan),
}

/// A federated range aggregation algorithm.
///
/// Implementations are `Send + Sync` so the multi-query framework
/// (Alg. 4) can drive one instance from many worker threads; internal
/// randomness therefore lives behind locks.
///
/// # One fallible core
///
/// [`try_execute_with`](Self::try_execute_with) is the single required
/// execution method; everything else layers on it. `try_execute` is the
/// uninstrumented convenience (a no-op [`ObsContext`]), and `execute` the
/// panicking convenience over that — so instrumentation and error
/// handling are threaded through exactly one place per algorithm.
///
/// # Planning split
///
/// Single-silo estimators additionally implement the
/// [`plan_with`](Self::plan_with) / [`finish_with`](Self::finish_with)
/// split (and return `true` from
/// [`supports_planning`](Self::supports_planning)): `plan_with` does the
/// provider-side work and names the one remote request, the engine
/// coalesces all same-silo requests of a batch into one wire frame, and
/// `finish_with` re-weights the response. The split changes *where*
/// requests are sent from, not *what* is sent — a planned query consumes
/// the same RNG draws and produces the same result as `try_execute`.
/// Such algorithms get their sequential execution for free from
/// [`drive_planned`].
pub trait FraAlgorithm: Send + Sync {
    /// The algorithm's display name (matches the paper's legends:
    /// `EXACT`, `OPTA`, `IID-est`, `IID-est+LSR`, `NonIID-est`,
    /// `NonIID-est+LSR`).
    fn name(&self) -> &'static str;

    /// Executes one query, recording telemetry into `obs`, returning the
    /// result or a federation error.
    ///
    /// This is the one fallible core every other execution entry point
    /// wraps. Passing [`ObsContext::noop`] makes every recording a single
    /// branch, so uninstrumented callers pay nothing measurable.
    fn try_execute_with(
        &self,
        federation: &Federation,
        query: &FraQuery,
        obs: &ObsContext,
    ) -> Result<QueryResult, FraError>;

    /// Executes one query without instrumentation.
    fn try_execute(
        &self,
        federation: &Federation,
        query: &FraQuery,
    ) -> Result<QueryResult, FraError> {
        self.try_execute_with(federation, query, ObsContext::noop())
    }

    /// Executes one query, panicking on federation errors (convenience
    /// for examples and healthy-path code).
    ///
    /// # Panics
    /// Panics when `try_execute` fails; fallible callers should use
    /// `try_execute` directly.
    fn execute(&self, federation: &Federation, query: &FraQuery) -> QueryResult {
        match self.try_execute(federation, query) {
            Ok(result) => result,
            Err(e) => panic!("{} failed: {e}", self.name()), // fedra-lint: allow(panic-discipline)
        }
    }

    /// Whether this algorithm implements the plan/finish split.
    ///
    /// `false` (the default) means [`plan_with`](Self::plan_with) simply
    /// runs [`try_execute_with`](Self::try_execute_with) — correct, but
    /// it gives the batch engine nothing to coalesce.
    fn supports_planning(&self) -> bool {
        false
    }

    /// Performs the provider-side part of one query, recording telemetry
    /// into `obs`.
    ///
    /// Must consume exactly the same internal randomness as
    /// [`try_execute`](Self::try_execute) would, so batched and
    /// sequential execution of the same query stream stay
    /// fixed-seed-equivalent.
    fn plan_with(&self, federation: &Federation, query: &FraQuery, obs: &ObsContext) -> QueryPlan {
        QueryPlan::Ready(self.try_execute_with(federation, query, obs))
    }

    /// Completes a planned query from the sampled silo's response,
    /// recording telemetry into `obs`.
    ///
    /// `rounds` is the number of silo attempts spent on this query
    /// (1 unless earlier candidates failed and the engine resampled).
    fn finish_with(
        &self,
        federation: &Federation,
        query: &FraQuery,
        silo: SiloId,
        response: Response,
        rounds: u64,
        obs: &ObsContext,
    ) -> Result<QueryResult, FraError> {
        let _ = (federation, query, silo, response, rounds, obs);
        unimplemented!(
            "{}: plan_with() returned SingleSilo but finish_with() is not implemented",
            self.name()
        )
    }

    /// Completes a planned query after *every* candidate silo failed.
    ///
    /// The default degrades to the provider-only grid estimate —
    /// availability over precision, matching the estimators' sequential
    /// behaviour. Under [`fedra_federation::DegradePolicy::Partial`] the
    /// answer carries an
    /// honest [`Coverage`] record (zero responding silos; the certain
    /// fraction of `g₀` as the mass backing) with the inflated bound of
    /// [`theory::degraded_epsilon`] — or fails outright when the policy's
    /// floors are not met.
    fn finish_degraded(
        &self,
        federation: &Federation,
        query: &FraQuery,
        rounds: u64,
    ) -> Result<QueryResult, FraError> {
        let fallback = helpers::grid_only_estimate(federation, &query.range);
        let result = QueryResult::from_aggregate(fallback, query.func).with_rounds(rounds);
        let policy = federation.degrade_policy();
        if !policy.allows_partial() {
            return Ok(result);
        }
        let certain = helpers::grid_certain_fraction(federation, &query.range);
        if !policy.accepts(0, certain) {
            // The trail is backfilled by drive_planned, which saw the
            // per-candidate errors.
            return Err(FraError::AllSilosUnavailable { errors: vec![] });
        }
        Ok(result.with_coverage(Coverage {
            responding: 0,
            total: federation.num_silos(),
            mass_fraction: certain,
            epsilon: theory::degraded_epsilon(0.0, certain),
        }))
    }
}

/// Assembles a degraded fan-out answer (EXACT/OPTA under
/// `DegradePolicy::Partial`): the reachable partials' sum plus a grid
/// estimate of every missing silo's contribution, annotated with an
/// honest [`Coverage`] — or [`FraError::AllSilosUnavailable`] (carrying
/// the per-silo error trail) when the policy's floors are not met.
///
/// `base_epsilon` is the guarantee the reachable share itself carries
/// (0 for exact partials; OPTA's histogram error is unbounded and rides
/// on top exactly as it does undegraded).
pub(crate) fn degrade_fanout(
    federation: &Federation,
    query: &FraQuery,
    reachable_total: Aggregate,
    responding: &[SiloId],
    missing: Vec<(SiloId, TransportError)>,
    base_epsilon: f64,
) -> Result<QueryResult, FraError> {
    let policy = federation.degrade_policy();
    let fraction = helpers::reachable_mass_fraction(federation, &query.range, responding);
    if !policy.accepts(responding.len(), fraction) {
        return Err(FraError::AllSilosUnavailable { errors: missing });
    }
    let mut total = reachable_total;
    for (k, _) in &missing {
        total.merge_in(&helpers::silo_grid_estimate(federation, *k, &query.range));
    }
    Ok(
        QueryResult::from_aggregate(total, query.func).with_coverage(Coverage {
            responding: responding.len(),
            total: federation.num_silos(),
            mass_fraction: fraction,
            epsilon: theory::degraded_epsilon(base_epsilon, fraction),
        }),
    )
}

/// Surfaces a coverage-annotated (degraded-mode) answer as metrics:
/// `fedra_degraded_answers_total` plus the `fedra_coverage_ppm` gauge
/// (mass fraction in parts-per-million). No-op for full answers.
pub(crate) fn note_coverage(obs: &ObsContext, result: &QueryResult) {
    if let Some(coverage) = &result.coverage {
        obs.inc("fedra_degraded_answers_total");
        obs.set_gauge(
            "fedra_coverage_ppm",
            (coverage.mass_fraction * 1_000_000.0).round(),
        );
    }
}

/// Sequentially executes one query through an algorithm's plan/finish
/// split: plan, call the sampled silo (resampling down the candidate
/// order on failure), finish — recording the full lifecycle into `obs`.
///
/// This is the shared fallible core for every planning algorithm's
/// [`FraAlgorithm::try_execute_with`], so the sequential path and the
/// batched engine drive the *same* plan/finish code instead of each
/// estimator duplicating its execution loop. Generic over `?Sized` so it
/// also serves `dyn FraAlgorithm`.
pub fn drive_planned<A: FraAlgorithm + ?Sized>(
    algorithm: &A,
    federation: &Federation,
    query: &FraQuery,
    obs: &ObsContext,
) -> Result<QueryResult, FraError> {
    let trace = obs.start_trace("query", algorithm.name());
    let plan = {
        let _plan_span = Span::enter(&trace, "plan");
        algorithm.plan_with(federation, query, obs)
    };
    let outcome = match plan {
        QueryPlan::Ready(result) => {
            obs.inc("fedra_plan_ready_total");
            result
        }
        QueryPlan::SingleSilo(remote) => {
            obs.inc("fedra_plan_remote_total");
            let mut rounds = 0u64;
            let mut answer = None;
            let mut trail: Vec<(SiloId, TransportError)> = Vec::new();
            {
                let _remote_span = Span::enter(&trace, "remote");
                let mut idx = 0usize;
                while idx < remote.order.len() {
                    let silo = remote.order[idx];
                    // The breaker may have opened since the plan picked its
                    // candidates — skip silos it refuses right now. This is
                    // a may_call check, not allows(): a half-open silo is
                    // the probe the plan already admitted, and refusing it
                    // here would strand the breaker in HalfOpen.
                    if !federation.health().may_call(silo) {
                        obs.inc("fedra_breaker_skipped_total");
                        idx += 1;
                        continue;
                    }
                    let hedge = remote.order.get(idx + 1).copied();
                    match attempt_silo(federation, &remote.request, silo, hedge, &mut rounds, obs) {
                        Ok(won) => {
                            answer = Some(won);
                            break;
                        }
                        Err(e) => {
                            obs.inc("fedra_resamples_total");
                            trail.push((silo, e));
                            idx += 1;
                        }
                    }
                }
            }
            match answer {
                Some((silo, response)) => {
                    if obs.is_enabled() {
                        obs.inc(&labeled("fedra_sampled_silo_total", "silo", silo));
                    }
                    trace.attr("silo", silo);
                    let _finish_span = Span::enter(&trace, "finish");
                    algorithm.finish_with(federation, query, silo, response, rounds, obs)
                }
                None => {
                    obs.inc("fedra_degraded_total");
                    match algorithm.finish_degraded(federation, query, rounds) {
                        // finish_degraded never saw the per-candidate
                        // errors — backfill the trail it stands for.
                        Err(FraError::AllSilosUnavailable { errors }) if errors.is_empty() => {
                            Err(FraError::AllSilosUnavailable { errors: trail })
                        }
                        other => other,
                    }
                }
            }
        }
    };
    if let Ok(result) = &outcome {
        trace.attr("rounds", result.rounds);
        if let Some(level) = result.lsr_level {
            trace.attr("level", level);
        }
        note_coverage(obs, result);
    }
    obs.finish_trace(&trace);
    outcome
}

/// Surfaces a breaker transition as a labelled counter (no-op for
/// [`HealthTransition::None`]).
pub(crate) fn note_transition(obs: &ObsContext, transition: HealthTransition) {
    let to = match transition {
        HealthTransition::None => return,
        HealthTransition::Opened => "open",
        HealthTransition::HalfOpened => "half_open",
        HealthTransition::Closed => "closed",
    };
    obs.inc(&labeled("fedra_breaker_transitions_total", "to", to));
}

/// Records a failed call against the health tracker and the deadline-miss
/// counter.
fn record_failure(federation: &Federation, obs: &ObsContext, error: &TransportError) {
    if error.is_deadline() && obs.is_enabled() {
        obs.inc(&labeled(
            "fedra_deadline_missed_total",
            "silo",
            error.silo(),
        ));
    }
    note_transition(obs, federation.health().record_failure(error.silo()));
}

/// One candidate's full attempt lifecycle for [`drive_planned`]:
/// deadline-bounded call, capped exponential retries (with deterministic
/// jitter) on transient refusals, and — when the policy sets a hedge
/// threshold and a next candidate exists — a hedged resample: the same
/// request is fired at the next candidate once the primary overruns the
/// threshold, and the first completed reply wins. Returns the winning
/// `(silo, response)` (the hedge's id when the hedge won) or the final
/// error once the retry budget is spent.
fn attempt_silo(
    federation: &Federation,
    request: &Request,
    silo: SiloId,
    hedge: Option<SiloId>,
    rounds: &mut u64,
    obs: &ObsContext,
) -> Result<(SiloId, Response), TransportError> {
    // Hedged races without an overall deadline still need a time bound;
    // an hour is "unbounded" at this layer's time scales.
    const UNBOUNDED: std::time::Duration = std::time::Duration::from_secs(3600);
    let policy = federation.call_policy();
    let mut attempt = 0u32;
    loop {
        *rounds += 1;
        if obs.is_enabled() {
            obs.inc(&labeled("fedra_silo_requests_total", "silo", silo));
        }
        // Retry/hedge deadlines and the health EWMA are wall-clock by
        // design (DESIGN.md §5e); the clock gates transport pacing, never
        // a result value.
        // fedra-lint: allow(determinism-discipline)
        let started = Instant::now();
        let deadline = policy.deadline.map(|d| started + d);
        let (winner, outcome) = match federation.channel(silo).begin_call_with(request, deadline) {
            Err(e) => (silo, Err(e)),
            Ok(pending) => match (policy.hedge_after, hedge) {
                (Some(after), Some(hedge_silo)) if hedge_silo != silo => {
                    match pending.poll_deadline(started + after) {
                        Poll::Ready(result) => (silo, result),
                        Poll::Pending(primary) => race_hedge(
                            federation,
                            request,
                            primary,
                            hedge_silo,
                            deadline.unwrap_or(started + UNBOUNDED),
                            rounds,
                            obs,
                        ),
                    }
                }
                _ => (silo, pending.wait()),
            },
        };
        match outcome {
            Ok(response) => {
                note_transition(
                    obs,
                    federation
                        .health()
                        .record_success(winner, started.elapsed()),
                );
                return Ok((winner, response));
            }
            Err(e) => {
                record_failure(federation, obs, &e);
                if e.is_retryable() && attempt < policy.retries {
                    attempt += 1;
                    obs.inc("fedra_retries_total");
                    std::thread::sleep(policy.backoff(silo, attempt));
                    continue;
                }
                return Err(e);
            }
        }
    }
}

/// Fires the hedge request at `hedge_silo` and races it against the
/// still-pending primary until `deadline`; first completed reply wins and
/// the loser is abandoned.
fn race_hedge(
    federation: &Federation,
    request: &Request,
    primary: fedra_federation::PendingCall,
    hedge_silo: SiloId,
    deadline: Instant,
    rounds: &mut u64,
    obs: &ObsContext,
) -> (SiloId, Result<Response, TransportError>) {
    let primary_silo = primary.silo();
    obs.inc("fedra_hedges_fired_total");
    *rounds += 1;
    if obs.is_enabled() {
        obs.inc(&labeled("fedra_silo_requests_total", "silo", hedge_silo));
    }
    let hedge_deadline = federation
        .call_policy()
        .deadline
        // Hedge deadlines are wall-clock budgets by design; both racers
        // compute identical bits.
        // fedra-lint: allow(determinism-discipline)
        .map(|d| Instant::now() + d);
    match federation
        .channel(hedge_silo)
        .begin_call_with(request, hedge_deadline)
    {
        // The hedge could not even start — fall back to the primary alone.
        Err(_) => (primary_silo, primary.wait()),
        Ok(hedge) => match race_calls(primary, hedge, deadline) {
            RaceWinner::Primary(result) => (primary_silo, result),
            RaceWinner::Hedge(result) => {
                obs.inc("fedra_hedges_won_total");
                (hedge_silo, result)
            }
            RaceWinner::Timeout => {
                // Both overran the budget: charge the miss to the hedge
                // here; the caller charges the primary's.
                record_failure(
                    federation,
                    obs,
                    &TransportError::DeadlineExceeded { silo: hedge_silo },
                );
                (
                    primary_silo,
                    Err(TransportError::DeadlineExceeded { silo: primary_silo }),
                )
            }
        },
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_match_table2() {
        let p = AccuracyParams::default();
        assert_eq!(p.epsilon, 0.10);
        assert_eq!(p.delta, 0.01);
    }

    #[test]
    #[should_panic(expected = "epsilon")]
    fn rejects_zero_epsilon() {
        AccuracyParams::new(0.0, 0.01);
    }

    #[test]
    #[should_panic(expected = "delta")]
    fn rejects_delta_of_one() {
        AccuracyParams::new(0.1, 1.0);
    }
}
