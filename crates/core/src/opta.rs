//! The OPTA baseline: histogram answers from every silo.
//!
//! The paper's second competitor (Sec. 8.1): an optimal histogram-based
//! approximate solution. Each silo answers the range query from its local
//! MinSkew histogram — fast (no tree traversal, no data scan) but lossy at
//! bucket boundaries — and the provider, lacking any cross-silo statistics
//! of its own, still fans out to **all** `m` silos and sums the partial
//! estimates. That gives OPTA the same O(m) communication profile as
//! EXACT (Figs. 3c–9c show them close) and the worst accuracy of the
//! compared algorithms (Figs. 3a–9a).

use fedra_federation::{Federation, Request, Response};
use fedra_index::Aggregate;
use fedra_obs::{labeled, ObsContext, Span};

use crate::algorithm::{degrade_fanout, note_coverage, FraAlgorithm};
use crate::query::{FraError, FraQuery, QueryResult};

/// The OPTA fan-out histogram algorithm.
#[derive(Debug, Clone, Copy, Default)]
pub struct Opta;

impl Opta {
    /// Creates the algorithm.
    pub fn new() -> Self {
        Self
    }
}

impl FraAlgorithm for Opta {
    fn name(&self) -> &'static str {
        "OPTA"
    }

    fn try_execute_with(
        &self,
        federation: &Federation,
        query: &FraQuery,
        obs: &ObsContext,
    ) -> Result<QueryResult, FraError> {
        let trace = obs.start_trace("query", self.name());
        let request = Request::HistogramEstimate { range: query.range };
        if obs.is_enabled() {
            for k in 0..federation.num_silos() {
                obs.inc(&labeled("fedra_silo_requests_total", "silo", k));
            }
        }
        // Same fan-out as EXACT: broadcast over the persistent silo
        // workers, no per-query threads.
        let policy = federation.degrade_policy();
        let outcome = (|| {
            let _fanout = Span::enter(&trace, "fanout");
            let mut total = Aggregate::ZERO;
            let mut responding = Vec::new();
            let mut missing = Vec::new();
            for (k, partial) in federation.broadcast(&request).into_iter().enumerate() {
                match partial {
                    Ok(Response::Agg(a)) => {
                        total.merge_in(&a);
                        responding.push(k);
                    }
                    Ok(_) => {
                        return Err(FraError::ProtocolViolation {
                            silo: k,
                            expected: "Agg",
                        })
                    }
                    // Under Partial, a missing silo's histogram share is
                    // filled from its g_k; OPTA's own histogram error
                    // rides on top exactly as it does undegraded.
                    Err(e) if policy.allows_partial() => missing.push((k, e)),
                    Err(e) => return Err(FraError::SiloFailed(e)),
                }
            }
            let rounds = federation.num_silos() as u64;
            if missing.is_empty() {
                return Ok(QueryResult::from_aggregate(total, query.func).with_rounds(rounds));
            }
            degrade_fanout(federation, query, total, &responding, missing, 0.0)
                .map(|r| r.with_rounds(rounds))
        })();
        if let Ok(result) = &outcome {
            note_coverage(obs, result);
        }
        obs.finish_trace(&trace);
        outcome
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::exact::Exact;
    use fedra_federation::FederationBuilder;
    use fedra_geo::{Point, Rect, SpatialObject};
    use fedra_index::histogram::MinSkewConfig;
    use fedra_index::AggFunc;

    fn setup(n_per_silo: usize) -> Federation {
        let bounds = Rect::new(Point::new(0.0, 0.0), Point::new(100.0, 100.0));
        let mut state = 77u64;
        let partitions: Vec<Vec<SpatialObject>> = (0..3)
            .map(|_| {
                (0..n_per_silo)
                    .map(|i| {
                        state = state
                            .wrapping_mul(6364136223846793005)
                            .wrapping_add(1442695040888963407);
                        let x = (state >> 11) as f64 / (1u64 << 53) as f64 * 100.0;
                        state = state
                            .wrapping_mul(6364136223846793005)
                            .wrapping_add(1442695040888963407);
                        let y = (state >> 11) as f64 / (1u64 << 53) as f64 * 100.0;
                        SpatialObject::at(x, y, (i % 5) as f64 + 1.0)
                    })
                    .collect()
            })
            .collect();
        FederationBuilder::new(bounds)
            .grid_cell_len(10.0)
            .histogram_config(MinSkewConfig {
                resolution: 64,
                budget: 128,
            })
            .build(partitions)
    }

    #[test]
    fn opta_is_close_to_exact_on_large_ranges() {
        let fed = setup(5000);
        let q = FraQuery::circle(Point::new(50.0, 50.0), 30.0, AggFunc::Count);
        let exact = Exact::new().execute(&fed, &q).value;
        let opta = Opta::new().execute(&fed, &q).value;
        let rel = (opta - exact).abs() / exact;
        assert!(rel < 0.15, "OPTA rel error {rel} ({opta} vs {exact})");
    }

    #[test]
    fn opta_uses_m_rounds() {
        let fed = setup(200);
        fed.reset_query_comm();
        let q = FraQuery::circle(Point::new(50.0, 50.0), 10.0, AggFunc::Count);
        let r = Opta::new().execute(&fed, &q);
        assert_eq!(r.rounds, 3);
        assert_eq!(fed.query_comm().rounds, 3);
    }

    #[test]
    fn opta_fails_when_a_silo_is_down() {
        let fed = setup(100);
        fed.set_silo_failed(0, true);
        let q = FraQuery::circle(Point::new(50.0, 50.0), 10.0, AggFunc::Count);
        assert!(matches!(
            Opta::new().try_execute(&fed, &q),
            Err(FraError::SiloFailed(_))
        ));
    }

    #[test]
    fn opta_sum_tracks_exact_sum() {
        let fed = setup(5000);
        let q = FraQuery::circle(Point::new(40.0, 60.0), 25.0, AggFunc::Sum);
        let exact = Exact::new().execute(&fed, &q).value;
        let opta = Opta::new().execute(&fed, &q).value;
        let rel = (opta - exact).abs() / exact;
        assert!(rel < 0.15, "OPTA SUM rel error {rel}");
    }
}
